(* The paper's §5 walkthrough, end to end:

     dune exec examples/migratory_demo.exe

   Takes the rendezvous migratory protocol of Figures 2-3, shows the
   request/reply pairs the analysis finds, derives the refined automata of
   Figures 4-5, model-checks coherence at both levels, demonstrates the
   state-space gap of Table 3 and verifies the soundness equation. *)

open Ccr_core
open Ccr_protocols
module Explore = Ccr_modelcheck.Explore
module Async = Ccr_refine.Async

let hr title = Fmt.pr "@.--- %s ---@.@." title

let () =
  let sys = Migratory.system () in

  hr "the rendezvous protocol (Figures 2-3)";
  Fmt.pr "%a@." Ccr_viz.Ascii.pp_system sys;

  hr "request/reply analysis (§3.3)";
  let report = Reqrep.analyze sys in
  List.iter (fun p -> Fmt.pr "  pair: %a@." Reqrep.pp_pair p) report.pairs;
  List.iter
    (fun (m, why) -> Fmt.pr "  kept generic: %-4s (%s)@." m why)
    report.rejected;

  hr "the refined asynchronous protocol (Figures 4-5)";
  let prog = Link.compile ~n:2 sys in
  Fmt.pr "%a@.%a@." Ccr_viz.Ascii.pp_automaton
    (Ccr_refine.Compile.home_automaton prog)
    Ccr_viz.Ascii.pp_automaton
    (Ccr_refine.Compile.remote_automaton prog);

  hr "coherence at both levels";
  List.iter
    (fun n ->
      let prog = Link.compile ~n sys in
      let rv =
        Explore.run
          ~invariants:(Migratory.rv_invariants prog)
          Explore.
            {
              init = Ccr_semantics.Rendezvous.initial prog;
              succ = Ccr_semantics.Rendezvous.successors prog;
              encode = Ccr_semantics.Rendezvous.encode;
              canon = None;
            }
      in
      let cfg = Async.{ k = 2 } in
      let asy =
        Explore.run ~check_deadlock:true
          ~invariants:(Migratory.async_invariants prog)
          Explore.
            {
              init = Async.initial prog cfg;
              succ = Async.successors prog cfg;
              encode = Async.encode;
              canon = None;
            }
      in
      let ok o = match o with Explore.Complete -> "ok" | _ -> "FAILED" in
      Fmt.pr
        "  n=%d: rendezvous %5d states (%s)   asynchronous %7d states (%s) — \
         a %3.0fx gap@."
        n rv.states (ok rv.outcome) asy.states (ok asy.outcome)
        (float_of_int asy.states /. float_of_int rv.states))
    [ 2; 3; 4 ];

  hr "the point of the method (Table 3)";
  Fmt.pr
    "  The designer verifies the left column; the refinement makes the \
     right column correct without ever enumerating it.  At n=8 the \
     asynchronous space is out of reach (run the bench harness), while the \
     rendezvous one barely grows:@.";
  List.iter
    (fun n ->
      let prog = Link.compile ~n sys in
      let rv =
        Explore.run
          Explore.
            {
              init = Ccr_semantics.Rendezvous.initial prog;
              succ = Ccr_semantics.Rendezvous.successors prog;
              encode = Ccr_semantics.Rendezvous.encode;
              canon = None;
            }
      in
      Fmt.pr "  rendezvous n=%-3d %6d states@." n rv.states)
    [ 8; 16; 32 ];

  hr "soundness (Eq. 1, §4)";
  let v = Ccr_refine.Absmap.check_eq1 prog Async.{ k = 2 } in
  Fmt.pr "  %a@." Ccr_refine.Absmap.pp_verdict v;

  hr "message cost (completes the §5 comparison)";
  List.iter
    (fun (name, prog) ->
      let m =
        Ccr_simulate.Sim.run ~steps:50_000 prog Async.{ k = 2 }
          Ccr_simulate.Sched.uniform
      in
      Fmt.pr "  %-28s %.2f msgs/rendezvous@." name
        (Ccr_simulate.Sim.per_rendezvous m))
    [
      ("refined (req/repl pairs)", Link.compile ~n:3 sys);
      ("generic (all acks)", Link.compile ~reqrep:false ~n:3 sys);
      ("hand-designed (unacked LR)", Migratory_hand.prog ~n:3 ());
    ]
