(* Quickstart: write a protocol at the rendezvous level, verify it there,
   and let the refinement produce the asynchronous implementation.

     dune exec examples/quickstart.exe

   The protocol: a counter service.  Remotes fetch-and-increment a counter
   held at the home.  At the rendezvous level this is two lines per party;
   the refined protocol's request/buffer/nack machinery is derived. *)

open Ccr_core

(* 1. Specify.  The home hands the counter value to one remote at a time
   ([fetch]/[value]) and accepts it back incremented ([store]).  The value
   lives in a small modular domain so the state space stays finite. *)
let counter_service =
  let open Dsl in
  let home =
    process "home"
      ~vars:[ ("c", Value.Dint (0, 3)); ("who", Value.Drid) ]
      ~init:"Idle"
      [
        state "Idle" [ recv_any "who" "fetch" [] ~goto:"Handing" ];
        state "Handing" [ send_to (v "who") "value" [ v "c" ] ~goto:"Lent" ];
        state "Lent" [ recv_from (v "who") "store" [ "c" ] ~goto:"Idle" ];
      ]
  in
  let remote =
    process "remote"
      ~vars:[ ("mine", Value.Dint (0, 3)) ]
      ~init:"Think"
      [
        state "Think" [ tau "want" ~goto:"Ask" ];
        state "Ask" [ send_home "fetch" [] ~goto:"Wait" ];
        state "Wait" [ recv_home "value" [ "mine" ] ~goto:"Use" ];
        state "Use"
          [
            (* increment modulo 4, then return the counter *)
            tau "bump"
              ~cond:(not_ (v "mine" ==~ int 3))
              ~assigns:[ ("mine", Expr.Succ (v "mine")) ]
              ~goto:"Give";
            tau "wrap" ~cond:(v "mine" ==~ int 3)
              ~assigns:[ ("mine", int 0) ]
              ~goto:"Give";
          ];
        state "Give" [ send_home "store" [ v "mine" ] ~goto:"Think" ];
      ]
  in
  system "counter-service" ~home ~remote

let () =
  (* 2. Validate: typing, star topology, the §2.4 syntactic restrictions. *)
  (match Validate.check counter_service with
  | Ok sigs ->
    Fmt.pr "validated; messages:@.";
    List.iter
      (fun (s : Validate.signature) ->
        Fmt.pr "  %-6s %s, %d payload value(s)@." s.msg
          (match s.direction with
          | Validate.Remote_to_home -> "remote->home"
          | Validate.Home_to_remote -> "home->remote")
          (List.length s.payload))
      sigs
  | Error es ->
    Fmt.pr "invalid: %a@." Fmt.(list ~sep:cut Validate.pp_error) es;
    exit 1);

  (* 3. The request/reply analysis (§3.3) finds what can skip acks. *)
  let report = Reqrep.analyze counter_service in
  List.iter (fun p -> Fmt.pr "optimized pair: %a@." Reqrep.pp_pair p) report.pairs;

  (* 4. Model-check the rendezvous protocol: tiny state space. *)
  let prog = Link.compile ~n:3 counter_service in
  let mutual_exclusion st =
    (* at most one remote holds the counter *)
    Ccr_protocols.Props.rv_remotes_in prog [ "Use"; "Give" ] st <= 1
  in
  let rv =
    Ccr_modelcheck.Explore.run
      ~invariants:[ ("mutual_exclusion", mutual_exclusion) ]
      Ccr_modelcheck.Explore.
        {
          init = Ccr_semantics.Rendezvous.initial prog;
          succ = Ccr_semantics.Rendezvous.successors prog;
          encode = Ccr_semantics.Rendezvous.encode;
          canon = None;
        }
  in
  Fmt.pr "rendezvous level: %d states — %s@." rv.states
    (match rv.outcome with
    | Ccr_modelcheck.Explore.Complete -> "all invariants hold"
    | _ -> "PROBLEM");

  (* 5. The refined asynchronous protocol comes for free... *)
  let cfg = Ccr_refine.Async.{ k = 2 } in
  let asy =
    Ccr_modelcheck.Explore.run ~check_deadlock:true
      ~invariants:
        [
          (* asynchronously a remote parks in [Give] until the ack of its
             [store] arrives, by which time the home may already have lent
             the counter again — so only [Use] means "holding" here.  This
             is the usual observation shift when moving from atomic
             rendezvous to split transactions (cf. paper §4). *)
          ( "mutual_exclusion",
            fun st ->
              Ccr_protocols.Props.as_remotes_in prog [ "Use" ] st <= 1 );
        ]
      Ccr_modelcheck.Explore.
        {
          init = Ccr_refine.Async.initial prog cfg;
          succ = Ccr_refine.Async.successors prog cfg;
          encode = Ccr_refine.Async.encode;
          canon = None;
        }
  in
  Fmt.pr "asynchronous level: %d states — %s@." asy.states
    (match asy.outcome with
    | Ccr_modelcheck.Explore.Complete ->
      "no deadlock, invariants hold (with a 2-slot home buffer)"
    | _ -> "PROBLEM");

  (* 6. ... and is sound by construction: check Eq. 1 anyway. *)
  let v = Ccr_refine.Absmap.check_eq1 prog cfg in
  Fmt.pr "%a@." Ccr_refine.Absmap.pp_verdict v;

  (* 7. Look at what was derived. *)
  Fmt.pr "@.refined remote automaton:@.%a@." Ccr_viz.Ascii.pp_automaton
    (Ccr_refine.Compile.remote_automaton prog)
