(* Buffers and fairness (paper §2.5 and §6):

     dune exec examples/starvation_demo.exe

   The refinement guarantees weak fairness — some remote always makes
   progress — with a two-slot home buffer.  Per-remote fairness is a
   scheduling/buffering property: an adversary can starve a chosen victim,
   and small buffers make nacks (hence retries) common. *)

open Ccr_core
open Ccr_protocols
module Async = Ccr_refine.Async
module Sim = Ccr_simulate.Sim
module Sched = Ccr_simulate.Sched

let () =
  let n = 4 in
  let prog = Link.compile ~n (Migratory.system ()) in

  Fmt.pr "1. Weak fairness under an adversary (k = 2):@.";
  List.iter
    (fun (name, sched) ->
      let m = Sim.run ~steps:60_000 prog Async.{ k = 2 } sched in
      Fmt.pr "   %-12s completions per remote: %s   (total %d)@." name
        (String.concat " "
           (Array.to_list (Array.map string_of_int m.Sim.per_remote)))
        m.Sim.rendezvous)
    [
      ("uniform", Sched.uniform);
      ("starve-r0", Sched.starve 0);
      ("starve-r3", Sched.starve 3);
    ];
  Fmt.pr
    "   The victim gets nothing, everyone else speeds up: exactly the \
     guarantee of §2.5 — progress for SOME remote, not for EVERY \
     remote.@.@.";

  Fmt.pr "2. Buffer capacity vs nacks (the §6 trade-off), n = %d:@." n;
  Fmt.pr "   %-4s %8s %10s %12s@." "k" "nacks" "rendezv" "nacks/rdv";
  List.iter
    (fun k ->
      let m = Sim.run ~steps:60_000 prog Async.{ k } Sched.uniform in
      Fmt.pr "   %-4d %8d %10d %12.3f@." k m.Sim.nacks m.Sim.rendezvous
        (float_of_int m.Sim.nacks /. float_of_int (max 1 m.Sim.rendezvous)))
    [ 2; 3; 4 ];
  Fmt.pr
    "   With k = n the home can hold one request per remote and (under \
     fair processing) nobody is ever nacked:@.";
  let m = Sim.run ~steps:60_000 prog Async.{ k = n } Sched.uniform in
  Fmt.pr "   k = %d: %d nacks@.@." n m.Sim.nacks;

  Fmt.pr
    "3. Why not always use big buffers?  §6's arithmetic: a 64-node \
     machine with 1024 lines per home and per-remote guarantees would \
     reserve 64 x 1024 = %d message slots per node; the refinement's \
     2-slot scheme plus weak fairness is what makes the derived protocols \
     practical.  (Sharing a 513-slot pool across lines, as §6 suggests, \
     recovers per-line per-remote progress for CPUs with 8 outstanding \
     transactions.)@."
    (64 * 1024);

  Fmt.pr
    "@.4. Deadlock-freedom is unconditional (model-checked, k = 2):@.";
  let cfg = Async.{ k = 2 } in
  let prog2 = Link.compile ~n:3 (Migratory.system ()) in
  let r =
    Ccr_modelcheck.Explore.run ~check_deadlock:true
      Ccr_modelcheck.Explore.
        {
          init = Async.initial prog2 cfg;
          succ = Async.successors prog2 cfg;
          encode = Async.encode;
          canon = None;
        }
  in
  Fmt.pr "   n=3: %d states, %s@." r.states
    (match r.outcome with
    | Ccr_modelcheck.Explore.Complete -> "no deadlock anywhere"
    | _ -> "PROBLEM")
