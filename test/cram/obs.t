With --metrics-json -, stdout is exactly one JSON object (the human
report moves to stderr).  The values vary run to run, so assert on the
key set:

  $ ../../bin/ccr.exe check invalidate -n 2 --level async --metrics-json - 2>/dev/null \
  >   | tr ',{' '\n\n' | grep -o '"[a-z_.]*":' | sort -u
  "buckets":
  "canon.calls":
  "canon.fallbacks":
  "canon.orbit_states":
  "canon.perms":
  "canon.tie_group_size":
  "canon.time_share":
  "count":
  "hi":
  "home_buffer_occupancy":
  "lo":
  "max_depth":
  "mem_bytes":
  "msg.ack":
  "msg.data":
  "msg.nack":
  "msg.req":
  "n":
  "peak_frontier":
  "raw_bytes":
  "states_per_sec":
  "sum":

The object is brace-balanced (parseable JSON):

  $ ../../bin/ccr.exe check invalidate -n 2 --level async --metrics-json - 2>/dev/null \
  >   | awk '{ o += gsub(/{/,"x"); c += gsub(/}/,"x") } END { print (o == c && o > 0) ? "balanced" : "unbalanced" }'
  balanced

The human report still lands on stderr, and the exit code stays 0:

  $ ../../bin/ccr.exe check invalidate -n 2 --level async --metrics-json - 2>&1 >/dev/null \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  invalidate (async, n=2, k=2, sym=auto): 604 states, 1201 transitions, TIME
  outcome: complete, invariants hold

Writing metrics to a file leaves stdout alone:

  $ ../../bin/ccr.exe check invalidate -n 2 --level async --metrics-json m.json \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  invalidate (async, n=2, k=2, sym=auto): 604 states, 1201 transitions, TIME
  outcome: complete, invariants hold
  $ grep -c '"msg.req"' m.json
  1

The same flags work on sim; the message counters there come from the
picked labels and the latency histogram appears:

  $ ../../bin/ccr.exe sim invalidate -n 2 --steps 2000 --metrics-json - 2>/dev/null \
  >   | tr ',{' '\n\n' | grep -o '"[a-z_.]*":' | sort -u
  "buckets":
  "count":
  "hi":
  "home_buffer_occupancy":
  "lo":
  "msg.ack":
  "msg.data":
  "msg.nack":
  "msg.req":
  "n":
  "rendezvous":
  "rendezvous_latency_steps":
  "steps_per_sec":
  "sum":

A trace file is valid Chrome trace_event JSON with the expected spans:

  $ ../../bin/ccr.exe check invalidate -n 2 --level async --trace t.json >/dev/null
  $ grep -c '"traceEvents"' t.json
  1
  $ grep -o '"name": "instantiate"' t.json | sort -u
  "name": "instantiate"
  $ grep -o '"name": "explore"' t.json | sort -u
  "name": "explore"
