Symmetry reduction is driven by --symmetry: off explores the full state
space, auto canonicalizes with the fast signature-sort canonicalizer,
brute uses the n! oracle.  auto and brute agree on the quotient counts;
off shows the full space:

  $ ../../bin/ccr.exe check migratory -n 3 --level async --symmetry off \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  migratory (async, n=3, k=2): 1650 states, 4530 transitions, TIME
  outcome: complete, invariants hold

  $ ../../bin/ccr.exe check migratory -n 3 --level async --symmetry auto \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  migratory (async, n=3, k=2, sym=auto): 375 states, 1045 transitions, TIME
  outcome: complete, invariants hold

  $ ../../bin/ccr.exe check migratory -n 3 --level async --symmetry brute \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  migratory (async, n=3, k=2, sym=brute): 375 states, 1045 transitions, TIME
  outcome: complete, invariants hold

The quotient is deterministic across job counts — the parallel engine
replays discoveries in sequential BFS order at each level boundary:

  $ ../../bin/ccr.exe check migratory -n 3 --level async --symmetry auto -j 2 \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  migratory (async, n=3, k=2, j=2, sym=auto): 375 states, 1045 transitions, TIME
  outcome: complete, invariants hold

It works at the rendezvous level too:

  $ ../../bin/ccr.exe check migratory -n 4 --level rendezvous --symmetry auto \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  migratory (rendezvous, n=4, sym=auto): 9 states, 19 transitions, TIME
  outcome: complete, invariants hold

Canonicalization publishes its own metrics:

  $ ../../bin/ccr.exe check migratory -n 3 --level async --symmetry auto \
  >   --metrics-json - 2>/dev/null \
  >   | tr ',{' '\n\n' | grep -o '"canon[a-z_.]*":' | sort -u
  "canon.calls":
  "canon.fallbacks":
  "canon.orbit_states":
  "canon.perms":
  "canon.tie_group_size":
  "canon.time_share":

Counterexamples stay concrete under symmetry reduction: the visited set
is keyed by canonical encodings, but the states kept — and printed in
traces — are the concrete ones, so a violation is a replayable run with
real remote identities (note r0, r1 and r2 acting in turn below, not a
collapsed representative).  This home consumes requests without ever
replying, so once every remote is waiting the system is dead:

  $ cat > broken.ccr <<'EOF'
  > system broken
  > 
  > home {
  >   var j : rid
  > 
  >   state F {
  >     recv any j ? req() goto F
  >   }
  > }
  > 
  > remote {
  >   state I {
  >     send h ! req() goto W
  >   }
  > 
  >   state W {
  >     recv h ? gr() goto I
  >   }
  > }
  > EOF

  $ ../../bin/ccr.exe check broken.ccr -n 3 --level async --symmetry auto \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  broken (async, n=3, k=2, sym=auto): 58 states, 142 transitions, TIME
  outcome: deadlock at
  home: F j=r2 rot=0
  r0: W  ->h:  h->:
  r1: W  ->h:  h->:
  r2: W  ->h:  h->:
  
  counterexample (12 steps):
  home        r0          r1          r2    
  |<----------+           |           |       R-C1[r0,req]
  |<----------|-----------+           |       R-C1[r1,req]
  |<----------|-----------|-----------+       R-C1[r2,req]
  o           |           |           |       H-admit[r0,req]
  +---------->|           |           |       H-C1[r0,req]
  |           o           |           |       R-T1[r0]
  o           |           |           |       H-admit[r1,req]
  +-----------|---------->|           |       H-C1[r1,req]
  |           |           o           |       R-T1[r1]
  o           |           |           |       H-admit[r2,req]
  +-----------|-----------|---------->|       H-C1[r2,req]
  |           |           |           o       R-T1[r2]
  
  home: F j=r0 rot=0
  r0: I  ->h:  h->:
  r1: I  ->h:  h->:
  r2: I  ->h:  h->:
  
  home: F j=r0 rot=0
  r0: I (transient)  ->h:req:req()  h->:
  r1: I  ->h:  h->:
  r2: I  ->h:  h->:
  
  home: F j=r0 rot=0
  r0: I (transient)  ->h:req:req()  h->:
  r1: I (transient)  ->h:req:req()  h->:
  r2: I  ->h:  h->:
  
  home: F j=r0 rot=0
  r0: I (transient)  ->h:req:req()  h->:
  r1: I (transient)  ->h:req:req()  h->:
  r2: I (transient)  ->h:req:req()  h->:
  
  home: F j=r0 rot=0 [r0:req]
  r0: I (transient)  ->h:  h->:
  r1: I (transient)  ->h:req:req()  h->:
  r2: I (transient)  ->h:req:req()  h->:
  
  home: F j=r0 rot=0
  r0: I (transient)  ->h:  h->:ack
  r1: I (transient)  ->h:req:req()  h->:
  r2: I (transient)  ->h:req:req()  h->:
  
  home: F j=r0 rot=0
  r0: W  ->h:  h->:
  r1: I (transient)  ->h:req:req()  h->:
  r2: I (transient)  ->h:req:req()  h->:
  
  home: F j=r0 rot=0 [r1:req]
  r0: W  ->h:  h->:
  r1: I (transient)  ->h:  h->:
  r2: I (transient)  ->h:req:req()  h->:
  
  home: F j=r1 rot=0
  r0: W  ->h:  h->:
  r1: I (transient)  ->h:  h->:ack
  r2: I (transient)  ->h:req:req()  h->:
  
  home: F j=r1 rot=0
  r0: W  ->h:  h->:
  r1: W  ->h:  h->:
  r2: I (transient)  ->h:req:req()  h->:
  
  home: F j=r1 rot=0 [r2:req]
  r0: W  ->h:  h->:
  r1: W  ->h:  h->:
  r2: I (transient)  ->h:  h->:
  
  home: F j=r2 rot=0
  r0: W  ->h:  h->:
  r1: W  ->h:  h->:
  r2: I (transient)  ->h:  h->:ack
  
  home: F j=r2 rot=0
  r0: W  ->h:  h->:
  r1: W  ->h:  h->:
  r2: W  ->h:  h->:
  













