The checking service (DESIGN.md §6i): [ccr serve] is a loopback HTTP
daemon over a bounded job queue and a content-addressed result cache,
and [ccr client] is its command-line face.  Start one on an ephemeral
port and wait for the port file:

  $ ../../bin/ccr.exe serve --port 0 --port-file port --cache-dir cache --journal serve.jsonl >serve.log 2>&1 &
  $ SERVE_PID=$!
  $ for i in $(seq 1 150); do test -s port && break; sleep 0.1; done

A cold submission is explored; resubmitting the same configuration is
answered from the cache with the byte-identical verdict (job ids are
submission-order, elided here):

  $ ../../bin/ccr.exe client submit invalidate -n 2 --wait --port $(cat port) | sed -e 's/"id":"j[0-9]*"/"id":"*"/'
  {"id":"*","status":"done","cached":false,"verdict":{"protocol":"invalidate","level":"async","outcome":"complete","explored":"complete","ok":true,"states":604,"transitions":1201,"max_depth":32,"canon_fallbacks":0,"sym":true,"invariant":null,"starved":null,"rules":null,"outcome_line":"complete, invariants hold","trace":[],"msc":null,"liveness":null}}
  $ ../../bin/ccr.exe client submit invalidate -n 2 --wait --port $(cat port) | sed -e 's/"id":"j[0-9]*"/"id":"*"/'
  {"id":"*","status":"done","cached":true,"verdict":{"protocol":"invalidate","level":"async","outcome":"complete","explored":"complete","ok":true,"states":604,"transitions":1201,"max_depth":32,"canon_fallbacks":0,"sym":true,"invariant":null,"starved":null,"rules":null,"outcome_line":"complete, invariants hold","trace":[],"msc":null,"liveness":null}}

The metrics endpoint is OpenMetrics text, terminated by the # EOF frame:

  $ ../../bin/ccr.exe client metrics --port $(cat port) | tail -1
  # EOF

SIGTERM is a clean shutdown: the daemon stops accepting, drains, and its
journal ends with the outcome (the one cache hit did not re-explore, so
only one job was done):

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ sed -e 's/127\.0\.0\.1:[0-9]*/127.0.0.1:PORT/' serve.log
  ccr serve: listening on 127.0.0.1:PORT
  $ tail -1 serve.jsonl
  {"v":1,"ev":"end","outcome":"shutdown","jobs_done":1}

Argument errors report through the journal too — the end event carries
the reason instead of the file being left unwritten:

  $ ../../bin/ccr.exe check migratory -n 2 --level rendezvous --faults drop=1 --journal bad.jsonl
  the rendezvous level has no channels: only pause=K applies (got drop=1)
  [1]
  $ tail -1 bad.jsonl
  {"v":1,"ev":"end","outcome":"error","reason":"the rendezvous level has no channels: only pause=K applies (got drop=1)"}
