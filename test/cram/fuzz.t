The differential fuzzer is deterministic in the seed: the report (per-
oracle pass/fail counters and the Tables 1-2 rule-coverage matrix)
carries no timings, so a small campaign is an exact regression.

  $ ../../bin/ccr.exe fuzz --seed 7 --count 5 --max-states 3000
  fuzz: seed 7, 5 cases, max-states 3000
  
  oracle             pass   fail
  validate              5      0
  roundtrip             5      0
  rv-explore            5      0
  async-explore         5      0
  eq1                   5      0
  symmetry              5      0
  par                   5      0
  faults                5      0
  store                 5      0
  engine                5      0
  resume                5      0
  serve                 5      0
  
  rule coverage (Tables 1-2, transitions enumerated per family):
    rule                 legacy  general
    R-C1                   2379     4722
    R-C2                      0       34  (new)
    R-C3-ack                197      352
    R-C3-silent               0       42  (new)
    R-C3-nack                 0        0
    R-T1                    621     2038
    R-T2                    453      520
    R-T3                      0      305  (new)
    R-tau                  3231     6323
    R-reply-send              0       34  (new)
    R-repl-recv            1056      389
    R-deliver               416      856
    H-C1                    442     1352
    H-C1-silent             721      681
    H-C2                    607     1814
    H-T1                   1148      402
    H-T1-repl                 0       90  (new)
    H-T2                      0        0
    H-T3                      0       64  (new)
    H-T4                    216      975
    H-T5                      0        0
    H-T6                    280      225
    H-tau                   793      567
    H-reply-send            276      381
    H-admit                1206     2340
    H-admit-progress        124      300
    H-nack-full               0       96  (new)
  rows exercised only by the generalized family: 7 (R-C2, R-C3-silent, R-T3, R-reply-send, H-T1-repl, H-T3, H-nack-full)
  
  no oracle failures.





An oracle subset skips the others; without async-explore there is no
coverage to report, so the matrix section disappears:

  $ ../../bin/ccr.exe fuzz --seed 7 --count 2 --max-states 2000 --oracles validate,eq1
  fuzz: seed 7, 2 cases, max-states 2000
  
  oracle             pass   fail
  validate              2      0
  eq1                   2      0
  
  no oracle failures.



Unknown oracle names are rejected up front:

  $ ../../bin/ccr.exe fuzz --oracles bogus --count 1
  unknown oracle "bogus" (known: validate, roundtrip, rv-explore, async-explore, eq1, symmetry, par, faults, store, engine, resume, serve)
  [1]
