The run journal is schema-versioned JSONL and byte-identical at every
parallelism setting.  A complete check emits config, one level event per
BFS depth, the canon summary and an end event with the final counts:

  $ ../../bin/ccr.exe check migratory -n 2 --level async --journal j1.jsonl >/dev/null
  $ ../../bin/ccr.exe check migratory -n 2 --level async -j 4 --journal j4.jsonl >/dev/null
  $ ../../bin/ccr.exe check migratory -n 2 --level async --workers 2 --journal w2.jsonl >/dev/null
  $ cmp j1.jsonl j4.jsonl && cmp j1.jsonl w2.jsonl && echo identical
  identical
  $ head -2 j1.jsonl
  {"v":1,"ev":"config","cmd":"check","protocol":"migratory","n":2,"k":2,"level":"async","generic":false,"symmetry":"auto","harden":false,"max_states":1000000}
  {"v":1,"ev":"level","depth":0,"states":1}
  $ tail -1 j1.jsonl
  {"v":1,"ev":"end","outcome":"complete","states":77,"transitions":145,"max_depth":23}

A violating run journals the counterexample's rule labels — and stays
byte-identical across the sequential, domain-parallel and multi-process
engines, with either provenance backend:

  $ ../../bin/ccr.exe check lock -n 1 --faults drop=1 --journal v1.jsonl >/dev/null 2>&1
  [2]
  $ ../../bin/ccr.exe check lock -n 1 --faults drop=1 -j 4 --prov mem --journal v4.jsonl >/dev/null 2>&1
  [2]
  $ ../../bin/ccr.exe check lock -n 1 --faults drop=1 --workers 2 --prov disk --journal vw.jsonl >/dev/null 2>&1
  [2]
  $ cmp v1.jsonl v4.jsonl && cmp v1.jsonl vw.jsonl && echo identical
  identical
  $ grep '"ev":"violation"' v1.jsonl
  {"v":1,"ev":"violation","kind":"deadlock","rules":["R-tau[r0,work]","R-C1[r0,acq]","fault: drop head of r0→h"]}
  $ tail -1 v1.jsonl
  {"v":1,"ev":"end","outcome":"deadlock"}

The fuzzer journals its rule-coverage totals (legacy and generalized
schemes, indexed by the Tables 1-2 rule names):

  $ ../../bin/ccr.exe fuzz --seed 7 --count 30 --journal f.jsonl >/dev/null
  $ head -1 f.jsonl
  {"v":1,"ev":"config","cmd":"fuzz","seed":7,"count":30,"max_states":10000,"oracles":"all"}
  $ grep -c '"ev":"coverage"' f.jsonl
  2

ccr report rebuilds the run table, violation paths and the coverage
matrix from the journals alone:

  $ ../../bin/ccr.exe report . | sed -n '1,14p'
  # ccr run report
  
  artifacts: 7 journal runs, 0 bench files
  
  ## Runs
  
  | journal | cmd | protocol | level | n | outcome | states | depth |
  | --- | --- | --- | --- | --- | --- | --- | --- |
  | f.jsonl | fuzz | - | - | - | complete | - | - |
  | j1.jsonl | check | migratory | async | 2 | complete | 77 | 23 |
  | j4.jsonl | check | migratory | async | 2 | complete | 77 | 23 |
  | v1.jsonl | check | lock | async | 1 | deadlock | - | - |
  | v4.jsonl | check | lock | async | 1 | deadlock | - | - |
  | vw.jsonl | check | lock | async | 1 | deadlock | - | - |




  $ ../../bin/ccr.exe report . | grep -A 5 '### v1'
  ### v1.jsonl — lock (deadlock)
  
  ```
    1. R-tau[r0,work]
    2. R-C1[r0,acq]
    3. fault: drop head of r0→h


  $ ../../bin/ccr.exe report . | grep -E 'R-C2|H-T3'
  | R-C2 | 0 | 186 | new |
  | H-T3 | 0 | 360 | new |

The report is deterministic — two runs over the same artifacts are
byte-identical — and the HTML mode wraps the same content:

  $ ../../bin/ccr.exe report . > r1.md && ../../bin/ccr.exe report . > r2.md
  $ cmp r1.md r2.md && echo identical
  identical
  $ ../../bin/ccr.exe report . --html | head -3
  <!doctype html>
  <html><head><meta charset="utf-8">
  <title>ccr run report</title>

ccr explain annotates counterexamples with the rule path and flow chart;
--state replays any visited id out of the provenance side-table:

  $ ../../bin/ccr.exe explain lock -n 1 --faults drop=1 --violation | sed -n '1,6p'
  lock (async, n=1, k=2, faults=drop=1): deadlock
  rule path (3 steps):
      1. R-tau[r0,work]
      2. R-C1[r0,acq]
      3. fault: drop head of r0→h
  flow (message-sequence chart):

  $ ../../bin/ccr.exe explain migratory -n 2 --state 10 | head -2
  migratory (async, n=2, k=2): state 10
  rule path (4 steps):

Nothing to explain on a clean protocol is a distinct, nonzero exit:

  $ ../../bin/ccr.exe explain migratory -n 2 --violation
  migratory (async, n=2, k=2): nothing to explain (129 states, invariants hold)
  [1]
