The fault model: --faults SPEC gives the checker a finite budget of
network faults.  The paper's refinement assumes reliable in-order
channels (2.2); with that assumption revoked, a single dropped message
kills the smallest protocol outright — the lock server with one client
deadlocks when its acq request is lost:

  $ ../../bin/ccr.exe check lock -n 1 --faults drop=1 \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  lock (async, n=1, k=2, faults=drop=1, vanilla): 6 states, 5 transitions, TIME
  outcome: deadlock at
  home: U c=r0 rot=0
  r0: A (awaiting grant)  ->h:  h->:
  
  counterexample (3 steps):
  home: U c=r0 rot=0
  r0: T  ->h:  h->:
  
  [budget left: drop=1 dup=0 delay=0 pause=0]
  home: U c=r0 rot=0
  r0: A  ->h:  h->:
  
  [budget left: drop=1 dup=0 delay=0 pause=0]
  home: U c=r0 rot=0
  r0: A (awaiting grant)  ->h:req:acq()  h->:
  
  [budget left: drop=1 dup=0 delay=0 pause=0]
  home: U c=r0 rot=0
  r0: A (awaiting grant)  ->h:  h->:
  






  $ ../../bin/ccr.exe check lock -n 1 --faults drop=1 >/dev/null 2>&1
  [2]

With a second remote the system keeps moving, so the failure is subtler:
coherence still holds, but a single dropped ack starves the waiting
remote forever — a liveness violation with a concrete trace:

  $ ../../bin/ccr.exe check migratory -n 2 --faults drop=1@ack \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  migratory (async, n=2, k=2, faults=drop=1@ack, vanilla): 153 states, 290 transitions, TIME
  outcome: complete, invariants hold
  liveness violation: remote 0 can be starved forever (12 reachable states lose its completion)
  starvation witness (10 steps):
    R-C1[r0,req]
    H-admit[r0,req]
    H-C1-silent[r0,req]
    H-reply-send[r0,gr]
    R-repl-recv[r0,gr]
    R-tau[r0,evict]
    R-C1[r0,LR]
    H-admit[r0,LR]
    H-C1[r0,LR]
    fault: drop head of h→r0
  stuck state:
  home: F o=r0 j=r0 rot=0
  r0: Ev (transient)  ->h:  h->:
  r1: I  ->h:  h->:
  


--harden swaps in the timeout/retransmit/dedup transport; the same
budget is then fully absorbed — safety and liveness both hold, and the
result is deterministic across job counts:

  $ ../../bin/ccr.exe check migratory -n 2 --faults drop=1@ack --harden \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  migratory (async, n=2, k=2, faults=drop=1@ack, hardened): 282 states, 556 transitions, TIME
  outcome: complete, invariants hold
  liveness: every remote can always still complete a rendezvous (quiescence preserved under the fault budget)

  $ ../../bin/ccr.exe check migratory -n 2 --faults drop=1@ack --harden -j 4 \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  migratory (async, n=2, k=2, faults=drop=1@ack, hardened, j=4): 282 states, 556 transitions, TIME
  outcome: complete, invariants hold
  liveness: every remote can always still complete a rendezvous (quiescence preserved under the fault budget)

The rendezvous level has no channels, so only pause faults apply there:

  $ ../../bin/ccr.exe check lock -n 2 --level rendezvous --faults pause=1 \
  >   | sed 's/[0-9.]*s, ~[0-9.]* MB/TIME/'
  lock (rendezvous, n=2, faults=pause=1): 64 states, 142 transitions, TIME
  outcome: complete, invariants hold

  $ ../../bin/ccr.exe check lock --level rendezvous --faults drop=1
  the rendezvous level has no channels: only pause=K applies (got drop=1)
  [1]

Malformed specs are rejected up front:

  $ ../../bin/ccr.exe check lock --faults bogus=3
  bad --faults spec: unknown fault kind "bogus" (drop/dup/delay/pause)
  [1]

The simulator draws one deterministic fault plan from --seed.  On the
bare channels the planned drop deadlocks the run, which prints the
blocked configuration and exits 2:

  $ ../../bin/ccr.exe sim migratory -n 2 --steps 2000 --faults drop=1 --seed 7 \
  >   | sed -n '1,5p;/blocked/,$p'
  43 steps, 11 rendezvous (1.64 msgs/rendezvous)
  messages: 15 req, 3 ack, 0 nack (2 retransmissions)
  per-remote completions: 4 7
  peak in-flight: 2 DEADLOCKED
  faults: injected 1 (1 drop, 0 dup, 0 delay, 0 pause); 0 retransmits, 0 absorbed, 17 delivered clean
  blocked configuration:
  home: I1 o=r0 j=r1 rot=0 (transient -> r0, awaiting ID)
  r0: I (awaiting gr)  ->h:  h->:
  r1: I (awaiting gr)  ->h:  h->:
  


  $ ../../bin/ccr.exe sim migratory -n 2 --steps 2000 --faults drop=1 --seed 7 \
  >   >/dev/null 2>&1
  [2]

Hardened, the same plan is repaired in-flight and the run completes:

  $ ../../bin/ccr.exe sim migratory -n 2 --steps 2000 --faults drop=1 --seed 7 \
  >   --harden | grep -E 'steps,|faults:'
  2000 steps, 561 rendezvous (1.45 msgs/rendezvous)
  faults: injected 1 (1 drop, 0 dup, 0 delay, 0 pause); 1 retransmits, 0 absorbed, 815 delivered clean

The threaded runtime routes every message through the same plan; the
hardened transport keeps the real execution quiescent and coherent
(message counts vary with OS scheduling, so only the verdict is stable):

  $ ../../bin/ccr.exe run migratory -n 2 --budget 20 --faults drop=1,dup=1 \
  >   --harden --seed 3 | grep -E 'terminated|injected [0-9]' | sed 's/;.*//'
  terminated quiescent
  faults: injected 2 (1 drop, 1 dup, 0 delay, 0 pause)
