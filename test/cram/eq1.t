Equation 1 verdict formatting and exit codes.

The full check prints the async/rendezvous state accounting:

  $ ../../bin/ccr.exe eq1 migratory -n 2
  eq1: OK — 129 async states (242 transitions: 162 stutters, 80 rendezvous steps) covering 15 rendezvous states

A state budget truncates the exploration; the verdict still holds on the
explored prefix but says so:

  $ ../../bin/ccr.exe eq1 migratory -n 2 --max-states 50
  eq1: OK — 51 async states (78 transitions: 52 stutters, 26 rendezvous steps) covering 10 rendezvous states (truncated)

The lock server from the quickstart:

  $ ../../bin/ccr.exe eq1 lock -n 2 -k 2
  eq1: OK — 108 async states (204 transitions: 130 stutters, 74 rendezvous steps) covering 16 rendezvous states

Hand-optimized protocols have no rendezvous level, so the refinement
soundness argument does not apply and the check refuses to run:

  $ ../../bin/ccr.exe eq1 migratory-hand -n 2
  migratory-hand is hand-optimized: the refinement soundness argument does not apply.
  [1]

Unknown protocols are rejected with the catalogue:

  $ ../../bin/ccr.exe eq1 nonsense
  ccr: PROTOCOL argument: unknown protocol "nonsense" (try: migratory,
       migratory-data, migratory-hand, invalidate, mesi, write-update, lock,
       barrier, or a .ccr file)
  Usage: ccr eq1 [OPTION]… PROTOCOL
  Try 'ccr eq1 --help' or 'ccr --help' for more information.
  [124]
