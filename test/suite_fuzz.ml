(* The differential fuzzer's own tests: the splittable PRNG is pinned
   bit-for-bit, generated specs are valid and their codecs round-trip,
   the shrinker is a deterministic local-minimum search, the driver's
   battery passes on fixed seeds, and every committed repro in
   [test/corpus/] still parses and replays through the oracles. *)

open Ccr_fuzz
open Test_util

let seeds lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

let spec_at family seed = Gen.generate ~family (Rng.make seed)

let over_specs family lo hi f =
  List.iter (fun s -> f s (spec_at family s)) (seeds lo hi)

(* ---- PRNG ---------------------------------------------------------------- *)

let rng_tests =
  [
    case "splitmix64 stream is pinned bit-for-bit" (fun () ->
        (* regression anchors: corpus seeds must survive compiler and
           stdlib upgrades, so the stream is part of the contract *)
        let r = Rng.make 42 in
        List.iter
          (fun expect ->
            check Alcotest.int64 "bits64" expect (Rng.bits64 r))
          [
            0x989b3f130a063869L;
            0x290db4bf2570ded7L;
            0x2a990be63a01b2d5L;
            0x0c4b6b24ef01890eL;
          ];
        let s = Rng.split (Rng.make 42) in
        check Alcotest.int64 "split stream" 0x5599b3e06d073327L
          (Rng.bits64 s));
    case "same seed, same stream" (fun () ->
        let a = Rng.make 7 and b = Rng.make 7 in
        for _ = 1 to 100 do
          check Alcotest.int64 "draw" (Rng.bits64 a) (Rng.bits64 b)
        done);
    case "split decorrelates from the parent" (fun () ->
        let a = Rng.make 7 in
        let child = Rng.split a in
        let differs = ref false in
        for _ = 1 to 16 do
          if Rng.bits64 a <> Rng.bits64 child then differs := true
        done;
        checkb "streams diverge" true !differs);
    case "int stays within bound and non-negative" (fun () ->
        let r = Rng.make 1 in
        for bound = 1 to 50 do
          for _ = 1 to 20 do
            let v = Rng.int r bound in
            if v < 0 || v >= bound then
              Alcotest.failf "Rng.int %d returned %d" bound v
          done
        done);
  ]

(* ---- generator and codecs ------------------------------------------------ *)

let gen_tests =
  [
    case "generated specs are valid (both families)" (fun () ->
        List.iter
          (fun family ->
            over_specs family 0 199 (fun seed spec ->
                if not (Gen.valid spec) then
                  Alcotest.failf "seed %d: invalid spec %a" seed Gen.pp spec))
          [ Gen.Legacy; Gen.General ]);
    case "generation is deterministic in the seed" (fun () ->
        over_specs Gen.General 0 99 (fun seed spec ->
            checkb "same seed, same spec" true
              (spec = spec_at Gen.General seed)));
    case "spec string codec round-trips" (fun () ->
        List.iter
          (fun family ->
            over_specs family 0 199 (fun seed spec ->
                match Gen.spec_of_string (Gen.spec_to_string spec) with
                | Ok spec' when spec' = spec -> ()
                | Ok spec' ->
                  Alcotest.failf "seed %d: %a reparsed as %a" seed Gen.pp
                    spec Gen.pp spec'
                | Error e ->
                  Alcotest.failf "seed %d: %S did not parse: %s" seed
                    (Gen.spec_to_string spec) e))
          [ Gen.Legacy; Gen.General ]);
    case ".ccr print/parse round-trip preserves the system" (fun () ->
        (* satellite of the roundtrip oracle: generated system →
           pretty-print → Parse yields an identical Ir.system *)
        over_specs Gen.General 0 99 (fun seed spec ->
            let sys = Gen.build spec in
            let sys' = Ccr_core.Parse.system (Ccr_core.Parse.to_string sys) in
            if sys <> sys' then
              Alcotest.failf "seed %d: round-trip changed the system for %a"
                seed Gen.pp spec));
    case "repro files round-trip" (fun () ->
        over_specs Gen.General 0 49 (fun seed spec ->
            let ccr =
              Gen.to_ccr ~seed ~oracle:"eq1" ~detail:"synthetic" spec
            in
            match Gen.of_ccr ccr with
            | Ok (seed', oracle, spec')
              when seed' = seed && oracle = "eq1" && spec' = spec ->
              ()
            | Ok _ -> Alcotest.failf "seed %d: header fields changed" seed
            | Error e -> Alcotest.failf "seed %d: of_ccr failed: %s" seed e);
        (* the body itself must stay parseable *)
        let spec = spec_at Gen.General 3 in
        let ccr = Gen.to_ccr ~seed:3 ~oracle:"eq1" ~detail:"d" spec in
        checkb "body parses" true
          (Ccr_core.Parse.system ccr = Gen.build spec));
  ]

(* ---- shrinker ------------------------------------------------------------ *)

let shrink_tests =
  let fails_if pred s = if pred s then Some (Oracle.Eq1, "synthetic") else None in
  [
    case "candidates strictly decrease the size measure" (fun () ->
        over_specs Gen.General 0 99 (fun seed spec ->
            List.iter
              (fun c ->
                if not (Gen.valid c) then
                  Alcotest.failf "seed %d: invalid candidate %a" seed Gen.pp c;
                if Gen.size c >= Gen.size spec then
                  Alcotest.failf "seed %d: candidate %a does not shrink %a"
                    seed Gen.pp c Gen.pp spec)
              (Shrink.candidates spec)));
    case "minimize reaches a local minimum" (fun () ->
        (* synthetic failure: any spec with >= 2 transactions *)
        let pred (s : Gen.spec) = List.length s.Gen.txns >= 2 in
        let fails = fails_if pred in
        over_specs Gen.General 0 49 (fun seed spec ->
            if pred spec then begin
              let shrunk, (o, _) = Shrink.minimize ~fails spec in
              checkb "still fails" true (pred shrunk);
              checkb "oracle name" true (o = Oracle.Eq1);
              List.iter
                (fun c ->
                  if pred c then
                    Alcotest.failf
                      "seed %d: not a local minimum, %a still fails" seed
                      Gen.pp c)
                (Shrink.candidates shrunk)
            end));
    case "minimize is deterministic" (fun () ->
        let fails = fails_if (fun (s : Gen.spec) -> s.Gen.n >= 2) in
        over_specs Gen.General 0 49 (fun _ spec ->
            if spec.Gen.n >= 2 then
              let a, _ = Shrink.minimize ~fails spec in
              let b, _ = Shrink.minimize ~fails spec in
              checkb "same minimum" true (a = b)));
    case "minimize rejects passing specs" (fun () ->
        let spec = spec_at Gen.General 0 in
        match Shrink.minimize ~fails:(fun _ -> None) spec with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* ---- oracles and driver -------------------------------------------------- *)

let driver_tests =
  [
    slow_case "battery passes on fixed general-family seeds" (fun () ->
        over_specs Gen.General 0 9 (fun seed spec ->
            match
              Oracle.failures (Oracle.run_battery ~max_states:3_000 spec)
            with
            | [] -> ()
            | (o, detail) :: _ ->
              Alcotest.failf "seed %d: %s failed on %a: %s" seed
                (Oracle.name_to_string o) Gen.pp spec detail));
    slow_case "driver run is deterministic and failure-free" (fun () ->
        let run () =
          Driver.run ~legacy_matrix:true ~seed:10 ~count:6 ~max_states:2_000
            ()
        in
        let a = run () in
        let b = run () in
        checki "no failures" 0 (List.length a.Driver.failures);
        List.iter
          (fun (o, c) ->
            checki ("pass " ^ Oracle.name_to_string o) 6 c;
            ignore o)
          a.Driver.passes;
        checkb "coverage populated" true
          (Array.exists (fun c -> c > 0) a.Driver.coverage);
        checkb "coverage deterministic" true
          (a.Driver.coverage = b.Driver.coverage);
        checkb "legacy baseline deterministic" true
          (a.Driver.legacy_coverage = b.Driver.legacy_coverage));
  ]

(* ---- committed repro corpus ---------------------------------------------- *)

let corpus_dir = "corpus"

let corpus_files () =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ccr")
    |> List.sort compare
    |> List.map (Filename.concat corpus_dir)
  else []

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus_tests =
  [
    slow_case "every committed repro parses and replays the battery"
      (fun () ->
        List.iter
          (fun path ->
            let contents = read_file path in
            match Gen.of_ccr contents with
            | Error e -> Alcotest.failf "%s: bad repro header: %s" path e
            | Ok (_seed, oracle, spec) ->
              (match Oracle.name_of_string oracle with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "%s: %s" path e);
              (* the body must be the spec's own system *)
              checkb (path ^ ": body matches spec") true
                (Ccr_core.Parse.system contents = Gen.build spec);
              (* replay: the battery must run to completion; we log but do
                 not require the original verdict, so fixed bugs keep
                 their repro as a regression input *)
              let results = Oracle.run_battery ~max_states:5_000 spec in
              checki (path ^ ": battery ran all oracles")
                (List.length Oracle.all) (List.length results))
          (corpus_files ()))
  ]

let suite =
  ("fuzz", rng_tests @ gen_tests @ shrink_tests @ driver_tests @ corpus_tests)
