(* The domain-sharded loop engine and its SPSC ring mailboxes.

   The threaded runtime (suite_runtime) is the differential baseline:
   everything it guarantees — quiescence, coherence of the final global
   state, fault-soak survival — must hold when the same workload runs
   through the compiled microcode tables, sharded or not.  On top of
   that the engine is deterministic per seed, so its traced schedules
   can be replayed exactly through the reference interpreter. *)

open Ccr_protocols
open Ccr_faults
open Test_util
module Runtime = Ccr_runtime.Runtime
module Engine = Ccr_runtime.Engine
module Ring = Ccr_runtime.Ring
module Async = Ccr_refine.Async

let k2 = Async.{ k = 2 }

let fspec s =
  match Fault.parse s with
  | Ok sp -> sp
  | Error m -> Alcotest.failf "Fault.parse %S: %s" s m

let assert_clean name (s : Runtime.stats) =
  if not s.quiescent then
    Alcotest.failf "%s: did not reach quiescence (%a)" name Runtime.pp_stats s;
  if s.protocol_errors <> [] then
    Alcotest.failf "%s: protocol errors: %s" name
      (String.concat "; " s.protocol_errors);
  if s.invariant_failures <> [] then
    Alcotest.failf "%s: final-state invariants failed: %s" name
      (String.concat ", " s.invariant_failures)

let registry_entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "no registry entry %S" name

let traced ?(budget = 3) ?(n = 2) name =
  let e = registry_entry name in
  let prog = e.Registry.instantiate ~reqrep:true ~n in
  let trace = ref [] in
  let s =
    Engine.run ~seed:0 ~budget
      ~invariants:(e.Registry.async_invariants prog)
      ~on_step:(fun l -> trace := l :: !trace)
      prog k2
  in
  (prog, s, List.rev !trace)

let tests =
  [
    case "ring: FIFO across wrap-around" (fun () ->
        let r = Ring.create ~dummy:(-1) 4 in
        checki "power-of-two capacity" 4 (Ring.capacity r);
        (* interleave pushes and pops so the counters lap the slot array
           several times *)
        let popped = ref [] in
        for i = 0 to 19 do
          checkb "push accepted" true (Ring.push r i);
          if i mod 2 = 1 then begin
            (match Ring.pop r with
            | Some x -> popped := x :: !popped
            | None -> Alcotest.fail "pop on non-empty ring");
            match Ring.pop r with
            | Some x -> popped := x :: !popped
            | None -> Alcotest.fail "pop on non-empty ring"
          end
        done;
        checkb "drained in order" true
          (List.rev !popped = List.init 20 (fun i -> i));
        checkb "empty at the end" true (Ring.is_empty r));
    case "ring: full mailbox exerts backpressure" (fun () ->
        let r = Ring.create ~dummy:(-1) 4 in
        for i = 0 to 3 do
          checkb "fills" true (Ring.push r i)
        done;
        checki "no free slots" 0 (Ring.free r);
        checkb "push on full is refused" false (Ring.push r 99);
        checkb "refused element not enqueued" true
          (Ring.to_list r = [ 0; 1; 2; 3 ]);
        checkb "pop frees a slot" true (Ring.pop r = Some 0);
        checkb "then push succeeds" true (Ring.push r 4);
        checkb "order preserved" true (Ring.to_list r = [ 1; 2; 3; 4 ]));
    case "ring: cross-domain SPSC visibility" (fun () ->
        (* one producer domain, consumer on the test thread: every
           element arrives, in order, through a ring much smaller than
           the stream so the pair wraps and backpressures constantly *)
        let r = Ring.create ~dummy:(-1) 8 in
        let total = 20_000 in
        let producer =
          Domain.spawn (fun () ->
              for i = 0 to total - 1 do
                while not (Ring.push r i) do
                  Domain.cpu_relax ()
                done
              done)
        in
        let next = ref 0 in
        while !next < total do
          match Ring.pop r with
          | Some x ->
            if x <> !next then Alcotest.failf "got %d, expected %d" x !next;
            incr next
          | None -> Domain.cpu_relax ()
        done;
        Domain.join producer;
        checkb "stream fully delivered" true (Ring.is_empty r));
    case "whole registry: engine matches the threaded runtime's outcome"
      (fun () ->
        List.iter
          (fun (e : Registry.t) ->
            let prog = e.Registry.instantiate ~reqrep:true ~n:4 in
            let invariants = e.Registry.async_invariants prog in
            let thr = Runtime.run ~seed:1 ~budget:20 ~invariants prog k2 in
            let loop = Engine.run ~seed:1 ~budget:20 ~invariants prog k2 in
            assert_clean (e.Registry.name ^ " (threads)") thr;
            assert_clean (e.Registry.name ^ " (loop)") loop;
            checkb (e.Registry.name ^ ": engine tagged") true
              (loop.engine = "loop" && thr.engine = "threads");
            (* budgets are spent on both engines: every remote completes
               its 20 cycles, each worth at least one rendezvous — the
               tail above that floor (home-initiated completions still
               in flight at shutdown) is scheduling-dependent and not
               comparable exactly *)
            checkb (e.Registry.name ^ ": both engines spend the budget") true
              (loop.rendezvous >= 4 * 20 && thr.rendezvous >= 4 * 20))
          Registry.all);
    case "sharded runs stay coherent (-j 1/2/4)" (fun () ->
        let e = registry_entry "lock" in
        let prog = e.Registry.instantiate ~reqrep:true ~n:4 in
        let invariants = e.Registry.async_invariants prog in
        List.iter
          (fun domains ->
            let s =
              Engine.run ~seed:2 ~domains ~budget:100 ~invariants prog k2
            in
            assert_clean (Fmt.str "lock -j %d" domains) s;
            checkb "every remote spent its budget" true
              (s.rendezvous >= 4 * 100))
          [ 1; 2; 4 ]);
    case "tiny mailboxes: backpressure does not wedge the engine" (fun () ->
        let e = registry_entry "invalidate" in
        let prog = e.Registry.instantiate ~reqrep:true ~n:4 in
        let s =
          Engine.run ~seed:0 ~ring_cap:4 ~budget:50
            ~invariants:(e.Registry.async_invariants prog)
            prog k2
        in
        assert_clean "ring_cap=4" s);
    case "traced schedules are deterministic per seed" (fun () ->
        let _, s1, t1 = traced ~budget:4 "migratory" in
        let _, s2, t2 = traced ~budget:4 "migratory" in
        assert_clean "run 1" s1;
        assert_clean "run 2" s2;
        checki "same step count" s1.steps s2.steps;
        checki "same messages" s1.messages s2.messages;
        checkb "identical label traces" true (t1 = t2);
        checki "trace covers every step" s1.steps (List.length t1));
    case "every traced step is a legal interpreter transition" (fun () ->
        (* frontier replay: after each engine label the set of
           interpreter states reachable by the labels so far must be
           non-empty, and a quiescent report must contain a truly
           quiescent configuration *)
        let prog, s, trace = traced ~budget:2 "migratory" in
        assert_clean "traced run" s;
        let frontier = ref [ Async.initial prog k2 ] in
        List.iteri
          (fun i (l : Async.label) ->
            let next =
              List.concat_map
                (fun st ->
                  List.filter_map
                    (fun (l', st') -> if l' = l then Some st' else None)
                    (Async.successors prog k2 st))
                !frontier
            in
            if next = [] then
              Alcotest.failf "step %d (%a) is not offered by the interpreter"
                (i + 1) Async.pp_label l;
            frontier := next)
          trace;
        checkb "final frontier contains the quiescent state" true
          (List.exists
             (fun (st : Async.state) ->
               st.Async.h.Async.h_mode = Async.Hcomm
               && Array.for_all
                    (fun (r : Async.remote) -> r.Async.r_mode = Async.Rcomm)
                    st.Async.r
               && Array.for_all (( = ) []) st.Async.to_h
               && Array.for_all (( = ) []) st.Async.to_r)
             !frontier));
    case "step cap stops the engine like the threaded runtime" (fun () ->
        let e = registry_entry "lock" in
        let prog = e.Registry.instantiate ~reqrep:true ~n:4 in
        let loop =
          Engine.run ~seed:0 ~max_steps:50 ~budget:10_000 ~invariants:[] prog
            k2
        in
        let thr =
          Runtime.run ~seed:0 ~max_steps:50 ~budget:10_000 ~invariants:[] prog
            k2
        in
        checkb "loop capped" true (not loop.quiescent);
        checks "loop cause" "step-cap" loop.stop_cause;
        checks "threads cause" "step-cap" thr.stop_cause;
        (* domains drain in batches, so the cap is a stop signal, not an
           exact count — but it must be the same order of magnitude *)
        checkb "loop stopped promptly" true (loop.steps < 50 + 1024);
        checkb "watchdog names the engine" true
          (List.exists
             (fun (_, d) -> contains_sub ~sub:"loop engine" d)
             loop.watchdog
          || loop.watchdog <> []));
    case "hardened fault soak at engine rates loses nothing" (fun () ->
        let e = registry_entry "migratory" in
        let prog = e.Registry.instantiate ~reqrep:true ~n:2 in
        let s =
          Engine.run ~seed:3
            ~faults:
              ( Injected.Hardened,
                Plan.random ~n:2 ~seed:3 (fspec "drop=10,dup=10") )
            ~budget:100
            ~invariants:(e.Registry.async_invariants prog)
            prog k2
        in
        assert_clean "hardened soak" s;
        checkb "faults actually injected" true (Fault.injected s.faults >= 10);
        checkb "ARQ repaired the drops" true
          (s.faults.Fault.f_retransmits >= 1));
    case "tracing a fault-injected run is refused" (fun () ->
        let e = registry_entry "migratory" in
        let prog = e.Registry.instantiate ~reqrep:true ~n:2 in
        match
          Engine.run ~seed:0
            ~faults:(Injected.Hardened, Plan.random ~n:2 ~seed:1 (fspec "drop=1"))
            ~on_step:(fun _ -> ())
            ~budget:2 ~invariants:[] prog k2
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let suite = ("engine", tests)
