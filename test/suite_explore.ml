open Test_util
module Explore = Ccr_modelcheck.Explore
module Graph = Ccr_modelcheck.Graph

(* A tiny synthetic system: a bounded counter with a fork.  Known state
   count, known deadlock, controllable invariant violations. *)
let counter_system ~limit =
  Explore.
    {
      init = 0;
      succ =
        (fun s ->
          if s >= limit then []
          else [ ("inc", s + 1); ("double", min limit (2 * s + 1)) ]);
      encode = string_of_int;
      canon = None;
    }

(* k independent bits: 2^k states, no deadlock (self loops). *)
let bits_system k =
  Explore.
    {
      init = 0;
      succ =
        (fun s -> List.init k (fun i -> (Fmt.str "flip%d" i, s lxor (1 lsl i))));
      encode = string_of_int;
      canon = None;
    }

let tests =
  [
    case "full enumeration counts states and transitions" (fun () ->
        let r = Explore.run (bits_system 5) in
        checki "states" 32 r.states;
        checki "transitions" 160 r.transitions;
        checkb "complete" true (outcome_complete r.outcome);
        (* BFS depth of the all-ones state: one flip per bit *)
        checki "max_depth" 5 r.max_depth;
        (* the largest BFS level is C(5,2) = 10; the queue watermark can
           only be larger (it mixes adjacent levels), bounded by the
           state count *)
        checkb "peak_frontier >= largest level" true (r.peak_frontier >= 10);
        checkb "peak_frontier <= states" true (r.peak_frontier <= r.states));
    case "depth and frontier of a chain" (fun () ->
        (* a pure chain: frontier never exceeds 1, depth = length *)
        let chain =
          Explore.
            {
              init = 0;
              succ = (fun s -> if s >= 17 then [] else [ ("n", s + 1) ]);
              encode = string_of_int;
              canon = None;
            }
        in
        let r = Explore.run chain in
        checki "max_depth" 17 r.max_depth;
        checki "peak_frontier" 1 r.peak_frontier;
        let d = Explore.run ~strategy:Explore.Dfs chain in
        checki "dfs max_depth" 17 d.max_depth;
        checki "dfs peak_frontier" 1 d.peak_frontier);
    case "on_progress fires with monotone counts" (fun () ->
        let samples = ref [] in
        let r =
          Explore.run
            ~on_progress:(fun s -> samples := s :: !samples)
            ~progress_every:100 (bits_system 10)
        in
        checkb "fired" true (List.length !samples >= 9);
        let ordered = List.rev !samples in
        let rec monotone = function
          | (a : Ccr_obs.Progress.sample) :: (b :: _ as rest) ->
            a.states <= b.states && a.transitions <= b.transitions
            && monotone rest
          | _ -> true
        in
        checkb "monotone" true (monotone ordered);
        List.iter
          (fun (s : Ccr_obs.Progress.sample) ->
            checkb "depth bounded" true (s.depth >= 0 && s.depth <= 10);
            checkb "states bounded" true (s.states <= r.states))
          ordered);
    case "counter reaches its limit and deadlocks" (fun () ->
        let r = Explore.run ~check_deadlock:true ~trace:true (counter_system ~limit:10) in
        (match r.outcome with
        | Explore.Deadlock s -> checki "deadlock at limit" 10 s
        | _ -> Alcotest.fail "expected deadlock");
        match r.trace with
        | Some path ->
          let labels = List.filter_map fst path in
          checkb "path nonempty" true (List.length path > 1);
          checkb "path ends at 10" true (snd (List.nth path (List.length path - 1)) = 10);
          checkb "labels recorded" true (List.length labels = List.length path - 1)
        | None -> Alcotest.fail "expected a trace");
    case "invariant violation is caught with a shortest-ish trace" (fun () ->
        let r =
          Explore.run ~trace:true
            ~invariants:[ ("below7", fun s -> s < 7) ]
            (counter_system ~limit:100)
        in
        (match r.outcome with
        | Explore.Violation { invariant; state } ->
          checks "name" "below7" invariant;
          checkb "state breaks it" true (state >= 7)
        | _ -> Alcotest.fail "expected violation");
        match r.trace with
        | Some path ->
          let final = snd (List.nth path (List.length path - 1)) in
          checkb "trace ends at the violation" true (final >= 7);
          (* BFS: every prefix state satisfies the invariant *)
          List.iteri
            (fun i (_, s) ->
              if i < List.length path - 1 then checkb "prefix ok" true (s < 7))
            path
        | None -> Alcotest.fail "expected a trace");
    case "violation in the initial state" (fun () ->
        let r =
          Explore.run ~trace:true
            ~invariants:[ ("never", fun _ -> false) ]
            (bits_system 3)
        in
        match r.outcome with
        | Explore.Violation _ -> checki "only the root" 1 r.states
        | _ -> Alcotest.fail "expected violation");
    case "state cap reports Unfinished" (fun () ->
        let r = Explore.run ~max_states:10 (bits_system 8) in
        (match r.outcome with
        | Explore.Limit Explore.L_states -> ()
        | _ -> Alcotest.fail "expected state cap");
        checki "stopped at cap" 10 r.states);
    case "memory cap reports Unfinished" (fun () ->
        let r = Explore.run ~max_mem_bytes:500 (bits_system 10) in
        match r.outcome with
        | Explore.Limit Explore.L_memory ->
          checkb "mem accounted" true (r.mem_bytes >= 500)
        | _ -> Alcotest.fail "expected memory cap");
    case "memory estimate grows with states" (fun () ->
        let r1 = Explore.run (bits_system 4) in
        let r2 = Explore.run (bits_system 8) in
        checkb "monotone" true (r2.mem_bytes > r1.mem_bytes));
    case "graph build matches explore" (fun () ->
        let g = Graph.build (bits_system 4) in
        checki "states" 16 (Array.length g.states);
        checkb "untruncated" true (not g.truncated);
        checkb "edges complete" true
          (Array.for_all (fun out -> List.length out = 4) g.edges));
    case "graph deadlocks" (fun () ->
        let g = Graph.build (counter_system ~limit:6) in
        let ds = Graph.deadlocks g in
        checki "one deadlock" 1 (List.length ds);
        checki "it is the limit" 6 g.states.(List.hd ds));
    case "ag_ef: progress reachable from everywhere or not" (fun () ->
        (* progress = the "double" label; in the counter every non-final
           state can still double, the final state cannot *)
        let g = Graph.build (counter_system ~limit:6) in
        let bad = Graph.violates_ag_ef g ~progress:(fun l -> l = "double") in
        checki "only the sink violates" 1 (List.length bad);
        let g2 = Graph.build (bits_system 3) in
        checki "bits never violate" 0
          (List.length (Graph.violates_ag_ef g2 ~progress:(fun l -> l = "flip0"))));
    case "path_to returns a labeled path from the root" (fun () ->
        let g = Graph.build (counter_system ~limit:6) in
        let target = 4 in
        let idx = ref (-1) in
        Array.iteri (fun i s -> if s = g.states.(i) && s = target then idx := i) g.states;
        checkb "target found" true (!idx >= 0);
        let path = Graph.path_to g !idx in
        checkb "starts at init" true (snd (List.hd path) = 0);
        checkb "ends at target" true
          (snd (List.nth path (List.length path - 1)) = target));
    case "forward progress of refined protocols (AG EF completion)"
      (fun () ->
        (* paper §2.5: from every reachable state some rendezvous can
           still complete *)
        let check_progress prog =
          let g = Graph.build (async_system prog) in
          checkb "untruncated" true (not g.truncated);
          let progress (l : Ccr_refine.Async.label) =
            match l.rule with
            | Ccr_refine.Async.H_C1 | Ccr_refine.Async.H_C1_silent
            | Ccr_refine.Async.R_C3_ack | Ccr_refine.Async.R_C3_silent
            | Ccr_refine.Async.R_repl_recv | Ccr_refine.Async.H_T1_repl ->
              true
            | _ -> false
          in
          checki "no state loses progress" 0
            (List.length (Graph.violates_ag_ef g ~progress))
        in
        check_progress (compile ~n:2 (Ccr_protocols.Migratory.system ()));
        check_progress (compile ~reqrep:false ~n:2 (Ccr_protocols.Migratory.system ()));
        check_progress (compile ~n:2 Ccr_protocols.Invalidate.system);
        check_progress (compile ~n:3 Ccr_protocols.Lock_server.system));
    case "DFS enumerates the same reachable set as BFS" (fun () ->
        List.iter
          (fun sys ->
            let bfs = Explore.run ~strategy:Explore.Bfs sys in
            let dfs = Explore.run ~strategy:Explore.Dfs sys in
            checki "states equal" bfs.states dfs.states;
            checki "transitions equal" bfs.transitions dfs.transitions)
          [ bits_system 6; counter_system ~limit:25 ];
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let bfs = Explore.run ~strategy:Explore.Bfs (async_system prog) in
        let dfs = Explore.run ~strategy:Explore.Dfs (async_system prog) in
        checki "protocol states equal" bfs.states dfs.states);
    case "DFS finds violations too (possibly via longer traces)" (fun () ->
        let r =
          Explore.run ~strategy:Explore.Dfs ~trace:true
            ~invariants:[ ("below7", fun s -> s < 7) ]
            (counter_system ~limit:100)
        in
        match r.outcome with
        | Explore.Violation { state; _ } -> checkb "found" true (state >= 7)
        | _ -> Alcotest.fail "expected violation");
    case "bitstate hashing is a sound under-approximation" (fun () ->
        let exact = Explore.run (bits_system 10) in
        checki "exact" 1024 exact.states;
        (* a generous table: almost everything found *)
        let big = Explore.run ~visited:(Explore.Bitstate 22) (bits_system 10) in
        checkb "close to exact" true
          (big.states <= exact.states && big.states > 900);
        (* a tiny table: heavy pruning but bounded memory *)
        let small =
          Explore.run ~visited:(Explore.Bitstate 10) (bits_system 10)
        in
        checkb "undercounts" true (small.states <= exact.states);
        checki "memory is the table size" 128 small.mem_bytes);
    case "bitstate on a protocol approaches the exact count" (fun () ->
        let prog = compile ~n:3 (Ccr_protocols.Migratory.system ()) in
        let exact = Explore.run (async_system prog) in
        let bit =
          Explore.run ~visited:(Explore.Bitstate 24) (async_system prog)
        in
        checkb "lower bound" true (bit.states <= exact.states);
        checkb "within 2 percent" true
          (float_of_int bit.states
          >= 0.98 *. float_of_int exact.states));
    case "ag_implies_ef restricts the witnesses" (fun () ->
        let g = Graph.build (counter_system ~limit:6) in
        (* only even sinks count as 'from' states *)
        let bad =
          Graph.violates_ag_implies_ef g
            ~from:(fun s -> s mod 2 = 0)
            ~progress:(fun l -> l = "double")
        in
        checki "the even sink" 1 (List.length bad);
        let none =
          Graph.violates_ag_implies_ef g
            ~from:(fun s -> s mod 2 = 1)
            ~progress:(fun l -> l = "double")
        in
        checki "no odd sink" 0 (List.length none));
    case "per-remote response possibility (AG waiting => EF completion)"
      (fun () ->
        (* whenever remote 0 is waiting for the line, its own completion
           stays reachable — stronger than plain AG EF progress *)
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let g = Graph.build (async_system prog) in
        let waiting (st : Ccr_refine.Async.state) =
          match st.Ccr_refine.Async.r.(0).r_mode with
          | Ccr_refine.Async.Rwait _ | Ccr_refine.Async.Rtrans _ -> true
          | Ccr_refine.Async.Rcomm -> false
        in
        let completes_r0 (l : Ccr_refine.Async.label) =
          l.Ccr_refine.Async.actor = 0
          &&
          match l.Ccr_refine.Async.rule with
          | Ccr_refine.Async.R_repl_recv | Ccr_refine.Async.R_T1
          | Ccr_refine.Async.H_T1_repl ->
            true
          | _ -> false
        in
        checki "never wedged" 0
          (List.length
             (Graph.violates_ag_implies_ef g ~from:waiting
                ~progress:completes_r0)));
    case "bitstate hash positions are independent (h1 <> h2)" (fun () ->
        (* regression for the seeded-hash scheme: the two bitstate
           positions must stay distinct or double bitstate degenerates to
           single-hash supertrace *)
        let keys =
          List.init 200 (fun i ->
              Fmt.str "key-%d-%s" i (String.make (i mod 11) (Char.chr (65 + (i mod 26)))))
        in
        let distinct =
          List.filter
            (fun k ->
              let h1, h2 = Explore.bitstate_positions ~bits:20 k in
              checkb "h1 in range" true (h1 >= 0 && h1 < 1 lsl 20);
              checkb "h2 in range" true (h2 >= 0 && h2 < 1 lsl 20);
              h1 <> h2)
            keys
        in
        (* all 200 sampled keys hash to two distinct positions *)
        checki "all distinct" (List.length keys) (List.length distinct));
    case "time cap is consulted before every expansion" (fun () ->
        (* regression: with the old every-256-pops check, 256 slow succ
           calls (20 ms each) overshoot a 50 ms cap by ~5 s.  The per-pop
           check bounds the overshoot by a single succ call. *)
        let t0 = Unix.gettimeofday () in
        let very_slow =
          Explore.
            {
              init = 0;
              succ =
                (fun s ->
                  ignore (Unix.select [] [] [] 0.02);
                  [ ("n", s + 1) ]);
              encode = string_of_int;
              canon = None;
            }
        in
        let r = Explore.run ~max_time_s:0.05 very_slow in
        let elapsed = Unix.gettimeofday () -. t0 in
        (match r.outcome with
        | Explore.Limit Explore.L_time -> ()
        | _ -> Alcotest.fail "expected time cap");
        checkb "no 256-expansion overshoot" true (elapsed < 1.0));
    case "time cap triggers" (fun () ->
        (* an expensive successor function; generous state space *)
        let slow =
          Explore.
            {
              init = 0;
              succ =
                (fun s ->
                  ignore (Sys.opaque_identity (List.init 2000 Fun.id));
                  [ ("n", (s + 1) mod 1000000); ("m", (s + 7) mod 1000000) ]);
              encode = string_of_int;
              canon = None;
            }
        in
        let r = Explore.run ~max_time_s:0.05 slow in
        match r.outcome with
        | Explore.Limit Explore.L_time -> ()
        | Explore.Complete -> Alcotest.fail "space too small for the cap"
        | _ -> Alcotest.fail "expected time cap");
  ]

let suite = ("explore", tests)
