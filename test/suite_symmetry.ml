open Ccr_core
open Ccr_semantics
open Ccr_refine
open Test_util

let k2 = Async.{ k = 2 }
let mig n = compile ~n (Ccr_protocols.Migratory.system ())

let explore_with encode succ init =
  Ccr_modelcheck.Explore.run
    Ccr_modelcheck.Explore.{ init; succ; encode; canon = None }
  |> fun (r : (_, _) Ccr_modelcheck.Explore.stats) -> (r.states, r.outcome)

let rv_quotient prog =
  explore_with
    (Symmetry.canonical_rv prog)
    (Rendezvous.successors prog)
    (Rendezvous.initial prog)

let rv_exact prog =
  explore_with Rendezvous.encode (Rendezvous.successors prog)
    (Rendezvous.initial prog)

let async_quotient ?(k = 2) prog =
  explore_with
    (Symmetry.canonical_async prog)
    (Async.successors prog Async.{ k })
    (Async.initial prog Async.{ k })

let async_exact ?(k = 2) prog =
  explore_with Async.encode
    (Async.successors prog Async.{ k })
    (Async.initial prog Async.{ k })

let identity n = Array.init n Fun.id
let swap01 n =
  let p = Array.init n Fun.id in
  p.(0) <- 1;
  p.(1) <- 0;
  p

(* ---- shared machinery for the property tests --------------------------- *)

(* Registry protocols instantiated at [n] (the request/reply-optimized
   refinement, as `ccr check` uses). *)
let registry_progs n =
  List.map
    (fun (e : Ccr_protocols.Registry.t) ->
      (e.name, e.instantiate ~reqrep:true ~n))
    Ccr_protocols.Registry.all

(* BFS sample of up to [budget] distinct reachable states. *)
let sample_states ~encode ~succ init budget =
  let seen = Hashtbl.create 64 in
  let q = Queue.create () in
  let out = ref [] in
  let budget = ref budget in
  let push st =
    let key = encode st in
    if (not (Hashtbl.mem seen key)) && !budget > 0 then begin
      decr budget;
      Hashtbl.add seen key ();
      out := st :: !out;
      Queue.push st q
    end
  in
  push init;
  while not (Queue.is_empty q) do
    let st = Queue.pop q in
    List.iter (fun (_, s) -> push s) (succ st)
  done;
  !out

let sample_async prog budget =
  sample_states ~encode:Async.encode
    ~succ:(Async.successors prog k2)
    (Async.initial prog k2) budget

let sample_rv prog budget =
  sample_states ~encode:Rendezvous.encode
    ~succ:(Rendezvous.successors prog)
    (Rendezvous.initial prog) budget

let random_perm rng n =
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

(* Quotient exploration through the [canon] hook, sequential or parallel. *)
let quotient_count ~jobs sys canon_key =
  let sys =
    Ccr_modelcheck.Explore.
      {
        sys with
        canon =
          Some
            {
              canon_key;
              canon_fresh = None;
              canon_fallbacks = (fun () -> 0);
            };
      }
  in
  let r =
    if jobs > 1 then Ccr_modelcheck.Explore.par_run ~jobs sys
    else Ccr_modelcheck.Explore.run sys
  in
  assert_complete "quotient" r;
  r.states

let tests =
  [
    case "permuting with the identity is the identity" (fun () ->
        let prog = mig 3 in
        let st = Async.initial prog k2 in
        let st = fire prog st (by_rule ~actor:1 Async.R_C1) in
        let st' = Symmetry.permute_async prog (identity 3) st in
        checks "same" (Async.encode st) (Async.encode st'));
    case "permutation renames consistently" (fun () ->
        let prog = mig 2 in
        let st = Async.initial prog k2 in
        (* r0 requests; swapping 0<->1 must move the request to r1 *)
        let st = fire prog st (by_rule ~actor:0 Async.R_C1) in
        let st' = Symmetry.permute_async prog (swap01 2) st in
        checkb "r1 now waits" true
          (match st'.Async.r.(1).r_mode with
          | Async.Rwait _ -> true
          | _ -> false);
        checkb "r0 now idle" true (st'.Async.r.(0).r_mode = Async.Rcomm);
        checki "channel moved" 1 (List.length st'.Async.to_h.(1));
        checki "old channel empty" 0 (List.length st'.Async.to_h.(0)));
    case "permutation renames directory variables and sets" (fun () ->
        let prog = compile ~n:3 Ccr_protocols.Invalidate.system in
        let st = Rendezvous.initial prog in
        let sh = Prog.var_index prog.home "sh" in
        let env = Array.copy st.Rendezvous.h.env in
        env.(sh) <- Value.set_of_list [ 0; 2 ];
        let st = { st with Rendezvous.h = { st.Rendezvous.h with env } } in
        let p = [| 1; 0; 2 |] in
        let st' = Symmetry.permute_rv prog p st in
        checkb "set renamed" true
          (Value.equal
             st'.Rendezvous.h.env.(sh)
             (Value.set_of_list [ 1; 2 ])));
    case "permute_slots is total on the empty array" (fun () ->
        checki "empty" 0 (Array.length (Symmetry.permute_slots [||] [||] Fun.id)));
    case "canonical encoding is permutation-invariant" (fun () ->
        let prog = mig 3 in
        List.iter
          (fun st ->
            (* every permutation of the state canonicalizes identically *)
            let c = Symmetry.canonical_async prog st in
            List.iter
              (fun p ->
                checks "invariant" c
                  (Symmetry.canonical_async prog
                     (Symmetry.permute_async prog (Array.of_list p) st)))
              [ [ 1; 0; 2 ]; [ 2; 1; 0 ]; [ 1; 2; 0 ] ])
          (sample_async prog 500));
    case "encode_perm matches encode-of-permuted, both levels" (fun () ->
        let rng = Random.State.make [| 0x5e7 |] in
        List.iter
          (fun (name, prog) ->
            let n = prog.Prog.n in
            let inv_of p =
              let inv = Array.make n 0 in
              Array.iteri (fun i j -> inv.(j) <- i) p;
              inv
            in
            List.iter
              (fun st ->
                let p = random_perm rng n in
                checks (name ^ " async")
                  (Async.encode (Symmetry.permute_async prog p st))
                  (Async.encode_perm ~p ~inv:(inv_of p) st))
              (sample_async prog 60);
            if
              List.exists
                (fun (e : Ccr_protocols.Registry.t) ->
                  e.name = name && e.system <> None)
                Ccr_protocols.Registry.all
            then
              List.iter
                (fun st ->
                  let p = random_perm rng n in
                  checks (name ^ " rv")
                    (Rendezvous.encode (Symmetry.permute_rv prog p st))
                    (Rendezvous.encode_perm ~p ~inv:(inv_of p) st))
                (sample_rv prog 60))
          (registry_progs 3));
    case "fast and brute canonicalizers induce the same partition"
      (fun () ->
        (* The two canonicalizers may pick different orbit representatives
           (fast minimizes over the signature-consistent permutations, brute
           over all), but they must merge exactly the same states: the key
           equivalences coincide.  That is the property the quotient counts
           and verdicts depend on. *)
        let rng = Random.State.make [| 0xb0b |] in
        List.iter
          (fun n ->
            List.iter
              (fun (name, prog) ->
                let base = sample_async prog (if n = 3 then 120 else 60) in
                (* include permuted variants so cross-orbit merging is
                   actually exercised, not just hit by luck *)
                let sts =
                  base
                  @ List.map
                      (fun st ->
                        Symmetry.permute_async prog (random_perm rng n) st)
                      base
                in
                let brute_to_fast = Hashtbl.create 64 in
                let fast_to_brute = Hashtbl.create 64 in
                List.iter
                  (fun st ->
                    let b = Symmetry.canonical_async prog st in
                    let f = Symmetry.canonical_async_fast prog st in
                    (match Hashtbl.find_opt brute_to_fast b with
                    | None -> Hashtbl.add brute_to_fast b f
                    | Some f' -> checks (name ^ " merge") f' f);
                    match Hashtbl.find_opt fast_to_brute f with
                    | None -> Hashtbl.add fast_to_brute f b
                    | Some b' -> checks (name ^ " split") b' b)
                  sts)
              (registry_progs n))
          [ 3; 4 ]);
    case "fast canonical is permutation-invariant (random perms)" (fun () ->
        let rng = Random.State.make [| 0xfa57 |] in
        List.iter
          (fun (name, prog) ->
            List.iter
              (fun st ->
                let c = Symmetry.canonical_async_fast prog st in
                for _ = 1 to 4 do
                  let p = random_perm rng prog.Prog.n in
                  checks name c
                    (Symmetry.canonical_async_fast prog
                       (Symmetry.permute_async prog p st))
                done)
              (sample_async prog 80))
          (registry_progs 4));
    case "fast rendezvous canonical is permutation-invariant" (fun () ->
        let rng = Random.State.make [| 0xca4 |] in
        List.iter
          (fun (name, prog) ->
            List.iter
              (fun st ->
                let c = Symmetry.canonical_rv_fast prog st in
                for _ = 1 to 4 do
                  let p = random_perm rng prog.Prog.n in
                  checks name c
                    (Symmetry.canonical_rv_fast prog
                       (Symmetry.permute_rv prog p st))
                done)
              (sample_rv prog 120))
          (List.filter_map
             (fun (e : Ccr_protocols.Registry.t) ->
               if e.system = None then None
               else Some (e.name, e.instantiate ~reqrep:true ~n:4))
             Ccr_protocols.Registry.all));
    case "quotient counts: fast = brute at jobs 1/2/4, rendezvous n=3..4"
      (fun () ->
        List.iter
          (fun n ->
            List.iter
              (fun (e : Ccr_protocols.Registry.t) ->
                match e.system with
                | None -> ()
                | Some _ ->
                  let prog = e.instantiate ~reqrep:true ~n in
                  let sys = rv_system prog in
                  let brute =
                    quotient_count ~jobs:1 sys (Symmetry.canonical_rv prog)
                  in
                  List.iter
                    (fun jobs ->
                      checki
                        (Fmt.str "%s rv n=%d j=%d" e.name n jobs)
                        brute
                        (quotient_count ~jobs sys
                           (Symmetry.canonical_rv_fast prog)))
                    [ 1; 2; 4 ])
              Ccr_protocols.Registry.all)
          [ 3; 4 ]);
    case "quotient counts: fast = brute at jobs 1/2/4, async n=3..4"
      (fun () ->
        (* full registry at n=3; n=4 on the protocols whose brute-force
           quotient stays small enough for a test run *)
        let sweep n names =
          List.iter
            (fun (e : Ccr_protocols.Registry.t) ->
              if names = [] || List.mem e.name names then begin
                let prog = e.instantiate ~reqrep:true ~n in
                let sys = async_system prog in
                let brute =
                  quotient_count ~jobs:1 sys (Symmetry.canonical_async prog)
                in
                List.iter
                  (fun jobs ->
                    checki
                      (Fmt.str "%s async n=%d j=%d" e.name n jobs)
                      brute
                      (quotient_count ~jobs sys
                         (Symmetry.canonical_async_fast prog)))
                  [ 1; 2; 4 ]
              end)
            Ccr_protocols.Registry.all
        in
        sweep 3 [ "migratory"; "migratory-hand"; "invalidate"; "lock"; "barrier" ];
        sweep 4 [ "migratory"; "lock"; "barrier" ]);
    case "quotient counts sit between exact/n! and exact" (fun () ->
        let rec fact = function 0 | 1 -> 1 | k -> k * fact (k - 1) in
        List.iter
          (fun n ->
            let prog = mig n in
            let exact, _ = rv_exact prog in
            let quotient, _ = rv_quotient prog in
            checkb "reduced" true (quotient <= exact);
            checkb "not over-reduced" true (quotient * fact n >= exact))
          [ 2; 3; 4 ]);
    case "quotient preserves invariants and deadlock-freedom" (fun () ->
        let prog = mig 3 in
        let r =
          Ccr_modelcheck.Explore.run ~check_deadlock:true
            ~invariants:(Ccr_protocols.Migratory.async_invariants prog)
            Ccr_modelcheck.Explore.
              {
                init = Async.initial prog k2;
                succ = Async.successors prog k2;
                encode = Symmetry.canonical_async prog;
                canon = None;
              }
        in
        checkb "complete" true (outcome_complete r.outcome));
    case "async quotient reduction factor grows with n" (fun () ->
        let e2, _ = async_exact (mig 2) in
        let q2, _ = async_quotient (mig 2) in
        let e3, _ = async_exact (mig 3) in
        let q3, _ = async_quotient (mig 3) in
        let f2 = float_of_int e2 /. float_of_int q2 in
        let f3 = float_of_int e3 /. float_of_int q3 in
        checkb "reduces at n=2" true (f2 > 1.5);
        checkb "reduces more at n=3" true (f3 > f2));
    case "orbit sizes from the stabilizer count" (fun () ->
        let prog = mig 3 in
        let st0 = Async.initial prog k2 in
        (* migratory's home starts with owner [o = rid 0], which
           distinguishes remote 0; remotes 1 and 2 tie, so the stabilizer
           is 2! and the initial orbit 3!/2! = 3 *)
        ignore (Symmetry.canonical_async_fast prog st0);
        checki "initial orbit" 3 (Symmetry.last_orbit ());
        (* remote 1 fires C1: now all three slots are distinguished (0 by
           the owner var, 1 by its control state), stabilizer 1, orbit 3! *)
        let st1 = fire prog st0 (by_rule ~actor:1 Async.R_C1) in
        ignore (Symmetry.canonical_async_fast prog st1);
        checki "one-requester orbit" 6 (Symmetry.last_orbit ()));
    case "beyond max_fact the brute encoding falls back, counted" (fun () ->
        let prog = mig 3 in
        let st = Async.initial prog k2 in
        let stats = Symmetry.make_stats () in
        checks "identity fallback"
          (Async.encode st)
          (Symmetry.canonical_async ~stats ~max_fact:2 prog st);
        checki "fallback counted" 1 (Symmetry.fallbacks stats);
        checki "one call" 1 (Symmetry.calls stats));
    case "fast tie cap falls back soundly, counted" (fun () ->
        let prog = mig 3 in
        let st = Async.initial prog k2 in
        let stats = Symmetry.make_stats () in
        (* the initial state's remotes all tie: 3! arrangements > 1 *)
        let k1 = Symmetry.canonical_async_fast ~stats ~max_perms:1 prog st in
        checki "fallback counted" 1 (Symmetry.fallbacks stats);
        checki "orbit unknown" 0 (Symmetry.last_orbit ());
        checks "deterministic" k1
          (Symmetry.canonical_async_fast ~max_perms:1 prog st);
        (* capped quotient still lands between true quotient and exact *)
        let capped =
          explore_with
            (Symmetry.canonical_async_fast ~max_perms:1 prog)
            (Async.successors prog k2)
            (Async.initial prog k2)
          |> fst
        in
        let q, _ = async_quotient prog in
        let e, _ = async_exact prog in
        checkb "sound" true (q <= capped && capped <= e));
    case "explorer surfaces canonicalization fallbacks" (fun () ->
        let prog = mig 3 in
        let stats = Symmetry.make_stats () in
        let sys =
          Ccr_modelcheck.Explore.
            {
              (async_system prog) with
              canon =
                Some
                  {
                    canon_key =
                      Symmetry.canonical_async ~stats ~max_fact:2 prog;
                    canon_fresh = None;
                    canon_fallbacks = (fun () -> Symmetry.fallbacks stats);
                  };
            }
        in
        let r = Ccr_modelcheck.Explore.run sys in
        assert_complete "capped" r;
        (* one canonicalization per discovered successor plus the initial
           state, every one of them beyond max_fact *)
        checki "fallbacks surfaced" (r.transitions + 1) r.canon_fallbacks);
    case "canonicalization stats add up" (fun () ->
        let prog = mig 3 in
        let stats = Symmetry.make_stats () in
        let sts = sample_async prog 200 in
        List.iter
          (fun st -> ignore (Symmetry.canonical_async_fast ~stats prog st))
          sts;
        checki "calls" (List.length sts) (Symmetry.calls stats);
        checkb "perms >= calls" true
          (Symmetry.perms_tried stats >= Symmetry.calls stats);
        checkb "time measured" true (Symmetry.canon_seconds stats >= 0.);
        let tied = ref 0 in
        Symmetry.iter_tie_groups stats (fun ~size ~count ->
            checkb "tie sizes >= 2" true (size >= 2);
            tied := !tied + count);
        checkb "tied calls counted" true
          ((!tied > 0) = (Symmetry.tied_calls stats > 0)));
  ]

let suite = ("symmetry", tests)
