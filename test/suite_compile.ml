open Ccr_core
open Ccr_refine
open Test_util

let mig n = compile ~n (Ccr_protocols.Migratory.system ())

let edge_exists (a : Compile.automaton) ~from_ ~to_ pred =
  List.exists
    (fun (e : Compile.edge) -> e.e_from = from_ && e.e_to = to_ && pred e)
    a.a_edges

let tests =
  [
    case "refined migratory remote matches Figure 5" (fun () ->
        let a = Compile.remote_automaton (mig 2) in
        checki "states" 6 (Compile.n_states a);
        checki "transients" 2 (Compile.n_transient a);
        checki "edges" 12 (Compile.n_edges a);
        (* the wait state Wg is bypassed by the request/reply transient *)
        checkb "Wg pruned" true (not (List.mem_assoc "Wg" a.a_states));
        checkb "request edge" true
          (edge_exists a ~from_:"I" ~to_:"I'" (fun e ->
               e.e_kind = Compile.E_send_req));
        checkb "reply consumes gr" true
          (edge_exists a ~from_:"I'" ~to_:"V" (fun e ->
               e.e_kind = Compile.E_repl_in && e.e_label = "h??gr"));
        checkb "nack returns" true
          (edge_exists a ~from_:"I'" ~to_:"I" (fun e ->
               e.e_kind = Compile.E_nack_in));
        checkb "h??* self loop" true
          (edge_exists a ~from_:"I'" ~to_:"I'" (fun e ->
               e.e_kind = Compile.E_ignore));
        checkb "LR goes through an acked transient" true
          (edge_exists a ~from_:"Ev'" ~to_:"I" (fun e ->
               e.e_kind = Compile.E_ack_in));
        checkb "ID is fire-and-forget" true
          (edge_exists a ~from_:"Iv" ~to_:"I" (fun e ->
               e.e_kind = Compile.E_reply_send));
        checkb "inv consumed silently" true
          (edge_exists a ~from_:"V" ~to_:"Iv" (fun e ->
               e.e_kind = Compile.E_recv_req `Silent)));
    case "refined migratory home matches Figure 4" (fun () ->
        let a = Compile.home_automaton (mig 2) in
        checki "states" 6 (Compile.n_states a);
        checki "transients" 1 (Compile.n_transient a);
        checkb "I2 pruned (bypassed by the reply)" true
          (not (List.mem_assoc "I2" a.a_states));
        checkb "inv transient awaits ID into I3" true
          (edge_exists a ~from_:"I1'inv" ~to_:"I3" (fun e ->
               e.e_kind = Compile.E_repl_in));
        checkb "[nack] retry edge" true
          (edge_exists a ~from_:"I1'inv" ~to_:"I1" (fun e ->
               e.e_kind = Compile.E_nack_in && e.e_label = "[nack]"));
        checkb "grants are fire-and-forget" true
          (edge_exists a ~from_:"Fg" ~to_:"E" (fun e ->
               e.e_kind = Compile.E_reply_send)
          && edge_exists a ~from_:"I3" ~to_:"E" (fun e ->
                 e.e_kind = Compile.E_reply_send));
        checkb "requests consumed silently" true
          (edge_exists a ~from_:"F" ~to_:"Fg" (fun e ->
               e.e_kind = Compile.E_recv_req `Silent));
        checkb "LR acked" true
          (edge_exists a ~from_:"E" ~to_:"F" (fun e ->
               e.e_kind = Compile.E_recv_req `Ack)));
    case "generic scheme materializes more transients" (fun () ->
        let prog = compile ~reqrep:false ~n:2 (Ccr_protocols.Migratory.system ()) in
        let r = Compile.remote_automaton prog in
        let h = Compile.home_automaton prog in
        checki "remote transients" 3 (Compile.n_transient r);
        checkb "Wg kept" true (List.mem_assoc "Wg" r.a_states);
        checki "home transients" 3 (Compile.n_transient h);
        checkb "I2 kept" true (List.mem_assoc "I2" h.a_states));
    case "every edge references known states" (fun () ->
        List.iter
          (fun (a : Compile.automaton) ->
            List.iter
              (fun (e : Compile.edge) ->
                checkb "from known" true (List.mem_assoc e.e_from a.a_states);
                checkb "to known" true (List.mem_assoc e.e_to a.a_states))
              a.a_edges;
            checkb "init known" true (List.mem_assoc a.a_init a.a_states))
          [
            Compile.remote_automaton (mig 2);
            Compile.home_automaton (mig 2);
            Compile.remote_automaton (compile ~n:2 Ccr_protocols.Invalidate.system);
            Compile.home_automaton (compile ~n:2 Ccr_protocols.Invalidate.system);
          ]);
    case "invalidate home automaton has one transient per output guard"
      (fun () ->
        let prog = compile ~n:2 Ccr_protocols.Invalidate.system in
        let a = Compile.home_automaton prog in
        (* grS/grM are replies; inv appears at Inv, MwS, MwM *)
        checki "transients" 3 (Compile.n_transient a));
    case "ascii rendering mentions every state" (fun () ->
        let a = Compile.remote_automaton (mig 2) in
        let s = Fmt.str "%a" Ccr_viz.Ascii.pp_automaton a in
        List.iter
          (fun (st, _) -> checkb st true (contains_sub ~sub:("state " ^ st) s))
          a.a_states);
    case "dot output is well formed" (fun () ->
        let a = Compile.home_automaton (mig 2) in
        let dot = Ccr_viz.Dot.of_automaton a in
        checkb "digraph" true (contains_sub ~sub:"digraph" dot);
        checkb "dashed transients" true (contains_sub ~sub:"style=dashed" dot);
        checkb "closes" true (contains_sub ~sub:"}" dot);
        let dotp =
          Ccr_viz.Dot.of_process (Ccr_protocols.Migratory.system ()).Ir.home
        in
        checkb "process digraph" true (contains_sub ~sub:"digraph" dotp);
        checkb "init marker" true (contains_sub ~sub:"__init" dotp));
    case "codegen emits a dispatch arm per state" (fun () ->
        let a = Compile.remote_automaton (mig 2) in
        let c = Codegen.emit_c a in
        List.iter
          (fun (st, _) ->
            let id =
              String.map
                (fun ch ->
                  match ch with
                  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> ch
                  | _ -> '_')
                st
            in
            checkb st true (contains_sub ~sub:("case S_" ^ id ^ ":") c))
          a.a_states;
        checkb "commit action" true
          (contains_sub ~sub:"commit_rendezvous" c));
    case "promela export contains the expected skeleton" (fun () ->
        let p = Ccr_viz.Promela.of_system ~n:2 (Ccr_protocols.Migratory.system ()) in
        List.iter
          (fun sub -> checkb sub true (contains_sub ~sub p))
          [
            "mtype = {";
            "chan to_h[2] = [0] of { mtype };";
            "proctype home()";
            "proctype remote(byte me)";
            "to_h[0]?req";
            "to_r[o]!inv";
            "run remote(1);";
            "goto F";
          ]);
    case "promela export handles payloads and sets" (fun () ->
        let p = Ccr_viz.Promela.of_system ~n:2 Ccr_protocols.Invalidate.system in
        checkb "set decl" true (contains_sub ~sub:"int sh = 0;" p);
        checkb "choose unrolled" true (contains_sub ~sub:"(1 << 0)" p);
        let pd =
          Ccr_viz.Promela.of_system ~n:2
            (Ccr_protocols.Migratory.system ~with_data:true ())
        in
        checkb "payload fields" true
          (contains_sub ~sub:"of { mtype, byte }" pd));
    case "promela export rejects n > 8" (fun () ->
        checkb "raises" true
          (match
             Ccr_viz.Promela.of_system ~n:9 (Ccr_protocols.Migratory.system ())
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "hardened automata add only timeout/dedup self-loops" (fun () ->
        let check_pair plain hard =
          checki "states unchanged" (Compile.n_states plain)
            (Compile.n_states hard);
          checki "transients unchanged" (Compile.n_transient plain)
            (Compile.n_transient hard);
          let kinds k =
            List.filter
              (fun (e : Compile.edge) -> e.e_kind = k)
              hard.Compile.a_edges
          in
          let timeouts = kinds Compile.E_timeout in
          let dedups = kinds Compile.E_dedup in
          checki "one timeout per transient" (Compile.n_transient hard)
            (List.length timeouts);
          checkb "dedup guards every receiver" true (dedups <> []);
          checkb "all additions are self-loops" true
            (List.for_all
               (fun (e : Compile.edge) -> e.e_from = e.e_to)
               (timeouts @ dedups));
          checki "and nothing else changed"
            (Compile.n_edges plain + List.length timeouts + List.length dedups)
            (Compile.n_edges hard)
        in
        let prog = mig 2 in
        check_pair
          (Compile.remote_automaton prog)
          (Compile.remote_automaton ~harden:true prog);
        check_pair
          (Compile.home_automaton prog)
          (Compile.home_automaton ~harden:true prog));
  ]

let suite = ("compile", tests)
