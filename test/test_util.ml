(* Shared helpers for the test suites. *)
open Ccr_core

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0
let slow_case name f = Alcotest.test_case name `Slow f

let qcase ?(count = 100) ?print name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ?print gen prop)

(* ---- tiny protocols used across suites -------------------------------- *)

(* Ping: the smallest level protocol — remote requests, home acknowledges
   by granting, remote releases.  Isomorphic to the lock server but local
   to the tests so suites do not depend on protocol-library changes. *)
let ping_system =
  let open Dsl in
  let home =
    process "ping_home" ~vars:[ ("c", Value.Drid) ] ~init:"U"
      [
        state "U" [ recv_any "c" "acq" [] ~goto:"G" ];
        state "G" [ send_to (v "c") "grant" [] ~goto:"L" ];
        state "L"
          [ recv_from (v "c") "rel" [] ~assigns:[ ("c", rid 0) ] ~goto:"U" ];
      ]
  in
  let remote =
    process "ping_remote" ~vars:[] ~init:"T"
      [
        state "T" [ send_home "acq" [] ~goto:"W" ];
        state "W" [ recv_home "grant" [] ~goto:"C" ];
        state "C" [ send_home "rel" [] ~goto:"T" ];
      ]
  in
  system "ping" ~home ~remote

(* A protocol with no request/reply pairs at all: the home answers [ask]
   with a separate plain rendezvous [tell] only after a detour, and the
   remote does not wait immediately.  Exercises the generic scheme even
   when reqrep analysis is on. *)
let plain_system =
  let open Dsl in
  let home =
    process "plain_home" ~vars:[ ("c", Value.Drid) ] ~init:"U"
      [
        state "U" [ recv_any "c" "ask" [] ~goto:"D" ];
        state "D" [ tau "think" ~goto:"G" ];
        state "G" [ send_to (v "c") "tell" [] ~goto:"U" ];
      ]
  in
  let remote =
    process "plain_remote" ~vars:[] ~init:"T"
      [
        state "T" [ send_home "ask" [] ~goto:"P" ];
        state "P" [ tau "pause" ~goto:"W" ];
        state "W" [ recv_home "tell" [] ~goto:"T" ];
      ]
  in
  system "plain" ~home ~remote

let compile ?reqrep ?fire_and_forget ~n sys =
  Link.compile ?reqrep ?fire_and_forget ~n sys

let rv_system prog =
  Ccr_modelcheck.Explore.
    {
      init = Ccr_semantics.Rendezvous.initial prog;
      succ = Ccr_semantics.Rendezvous.successors prog;
      encode = Ccr_semantics.Rendezvous.encode;
      canon = None;
    }

let async_system ?(k = 2) prog =
  let cfg = Ccr_refine.Async.{ k } in
  Ccr_modelcheck.Explore.
    {
      init = Ccr_refine.Async.initial prog cfg;
      succ = Ccr_refine.Async.successors prog cfg;
      encode = Ccr_refine.Async.encode;
      canon = None;
    }

let explore_rv ?invariants ?max_states prog =
  Ccr_modelcheck.Explore.run ?invariants ?max_states ~trace:true
    (rv_system prog)

let explore_async ?invariants ?max_states ?(k = 2) ?(check_deadlock = true)
    prog =
  Ccr_modelcheck.Explore.run ?invariants ?max_states ~check_deadlock
    ~trace:true (async_system ~k prog)

(* Drive the asynchronous system one chosen transition at a time. *)
let fire ?(k = 2) prog st pred =
  let cfg = Ccr_refine.Async.{ k } in
  let succs = Ccr_refine.Async.successors prog cfg st in
  match List.filter (fun (l, _) -> pred l) succs with
  | [ (_, st') ] -> st'
  | [] ->
    Alcotest.failf "no matching transition; enabled: %a"
      Fmt.(list ~sep:sp Ccr_refine.Async.pp_label)
      (List.map fst succs)
  | many ->
    Alcotest.failf "ambiguous transition (%d matches): %a" (List.length many)
      Fmt.(list ~sep:sp Ccr_refine.Async.pp_label)
      (List.map fst many)

let by_rule ?actor ?subject rule (l : Ccr_refine.Async.label) =
  l.rule = rule
  && (match actor with None -> true | Some a -> l.actor = a)
  && match subject with None -> true | Some s -> l.subject = s

let outcome_complete = function
  | Ccr_modelcheck.Explore.Complete -> true
  | _ -> false

let assert_complete name (r : (_, _) Ccr_modelcheck.Explore.stats) =
  if not (outcome_complete r.outcome) then
    Alcotest.failf "%s: exploration did not complete cleanly (%d states)"
      name r.states
