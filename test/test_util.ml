(* Shared helpers for the test suites. *)
open Ccr_core

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0
let slow_case name f = Alcotest.test_case name `Slow f

let qcase ?(count = 100) ?print name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ?print gen prop)

(* ---- tiny protocols used across suites -------------------------------- *)

(* Ping: the smallest level protocol — remote requests, home acknowledges
   by granting, remote releases.  Isomorphic to the lock server but local
   to the tests so suites do not depend on protocol-library changes. *)
let ping_system =
  let open Dsl in
  let home =
    process "ping_home" ~vars:[ ("c", Value.Drid) ] ~init:"U"
      [
        state "U" [ recv_any "c" "acq" [] ~goto:"G" ];
        state "G" [ send_to (v "c") "grant" [] ~goto:"L" ];
        state "L"
          [ recv_from (v "c") "rel" [] ~assigns:[ ("c", rid 0) ] ~goto:"U" ];
      ]
  in
  let remote =
    process "ping_remote" ~vars:[] ~init:"T"
      [
        state "T" [ send_home "acq" [] ~goto:"W" ];
        state "W" [ recv_home "grant" [] ~goto:"C" ];
        state "C" [ send_home "rel" [] ~goto:"T" ];
      ]
  in
  system "ping" ~home ~remote

(* A protocol with no request/reply pairs at all: the home answers [ask]
   with a separate plain rendezvous [tell] only after a detour, and the
   remote does not wait immediately.  Exercises the generic scheme even
   when reqrep analysis is on. *)
let plain_system =
  let open Dsl in
  let home =
    process "plain_home" ~vars:[ ("c", Value.Drid) ] ~init:"U"
      [
        state "U" [ recv_any "c" "ask" [] ~goto:"D" ];
        state "D" [ tau "think" ~goto:"G" ];
        state "G" [ send_to (v "c") "tell" [] ~goto:"U" ];
      ]
  in
  let remote =
    process "plain_remote" ~vars:[] ~init:"T"
      [
        state "T" [ send_home "ask" [] ~goto:"P" ];
        state "P" [ tau "pause" ~goto:"W" ];
        state "W" [ recv_home "tell" [] ~goto:"T" ];
      ]
  in
  system "plain" ~home ~remote

let compile ?reqrep ?fire_and_forget ~n sys =
  Link.compile ?reqrep ?fire_and_forget ~n sys

let rv_system prog =
  Ccr_modelcheck.Explore.
    {
      init = Ccr_semantics.Rendezvous.initial prog;
      succ = Ccr_semantics.Rendezvous.successors prog;
      encode = Ccr_semantics.Rendezvous.encode;
      canon = None;
    }

let async_system ?(k = 2) prog =
  let cfg = Ccr_refine.Async.{ k } in
  Ccr_modelcheck.Explore.
    {
      init = Ccr_refine.Async.initial prog cfg;
      succ = Ccr_refine.Async.successors prog cfg;
      encode = Ccr_refine.Async.encode;
      canon = None;
    }

let explore_rv ?invariants ?max_states prog =
  Ccr_modelcheck.Explore.run ?invariants ?max_states ~trace:true
    (rv_system prog)

let explore_async ?invariants ?max_states ?(k = 2) ?(check_deadlock = true)
    prog =
  Ccr_modelcheck.Explore.run ?invariants ?max_states ~check_deadlock
    ~trace:true (async_system ~k prog)

(* Drive the asynchronous system one chosen transition at a time. *)
let fire ?(k = 2) prog st pred =
  let cfg = Ccr_refine.Async.{ k } in
  let succs = Ccr_refine.Async.successors prog cfg st in
  match List.filter (fun (l, _) -> pred l) succs with
  | [ (_, st') ] -> st'
  | [] ->
    Alcotest.failf "no matching transition; enabled: %a"
      Fmt.(list ~sep:sp Ccr_refine.Async.pp_label)
      (List.map fst succs)
  | many ->
    Alcotest.failf "ambiguous transition (%d matches): %a" (List.length many)
      Fmt.(list ~sep:sp Ccr_refine.Async.pp_label)
      (List.map fst many)

let by_rule ?actor ?subject rule (l : Ccr_refine.Async.label) =
  l.rule = rule
  && (match actor with None -> true | Some a -> l.actor = a)
  && match subject with None -> true | Some s -> l.subject = s

(* ---- synthetic systems shared by the engine suites --------------------- *)

(* A little DAG: distinct states 0..limit, two successors each. *)
let counter_system ~limit =
  Ccr_modelcheck.Explore.
    {
      init = 0;
      succ =
        (fun s ->
          if s >= limit then []
          else [ ("inc", s + 1); ("double", min limit (2 * s + 1)) ]);
      encode = string_of_int;
      canon = None;
    }

(* The k-bit hypercube: 2^k states, k successors each. *)
let bits_system k =
  Ccr_modelcheck.Explore.
    {
      init = 0;
      succ =
        (fun s -> List.init k (fun i -> (Fmt.str "flip%d" i, s lxor (1 lsl i))));
      encode = string_of_int;
      canon = None;
    }

(* ---- processes and scratch space --------------------------------------- *)

(* A fresh scratch directory, removed (recursively) when [f] returns. *)
let temp_dir_seq = ref 0

let with_temp_dir prefix f =
  incr temp_dir_seq;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "%s-%d-%d" prefix (Unix.getpid ()) !temp_dir_seq)
    in
    let rec rm p =
      match Unix.lstat p with
      | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun entry -> rm (Filename.concat p entry)) (Sys.readdir p);
        (try Unix.rmdir p with Unix.Unix_error _ -> ())
      | _ -> ( try Sys.remove p with Sys_error _ -> ())
      | exception Unix.Unix_error _ -> ()
    in
    rm dir;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

(* Fork-first discipline (see suite_mpx.ml): the OCaml 5 runtime refuses
   [Unix.fork] once any domain has ever been spawned in the process, so
   every suite using this helper must be registered before the first
   domain-spawning case.  The child runs a real [ccr serve] daemon on an
   ephemeral loopback port and reports the port over a pipe; [f ~port]
   runs in the parent, and the daemon is SIGTERMed (clean shutdown:
   running explorations are interrupted at their next safe point) when it
   returns. *)
let with_forked_daemon ?(workers = 1) ?(queue_cap = 64) ?cache_dir
    ?(max_states_cap = 10_000_000) f =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* the daemon process: [_exit], never [exit] — no inherited alcotest
       at_exit machinery, no doubly-flushed buffers *)
    Unix.close r;
    (try
       let t =
         Ccr_serve.Daemon.start ~port:0 ~workers ~queue_cap ?cache_dir
           ~max_states_cap ()
       in
       let oc = Unix.out_channel_of_descr w in
       output_string oc (string_of_int (Ccr_serve.Daemon.port t) ^ "\n");
       flush oc;
       let stop = ref false in
       Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
       while not !stop do
         try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
       done;
       Ccr_serve.Daemon.stop t
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close w;
    let ic = Unix.in_channel_of_descr r in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        close_in_noerr ic)
      (fun () ->
        let port =
          match int_of_string_opt (String.trim (input_line ic)) with
          | Some p -> p
          | None | (exception End_of_file) ->
            Alcotest.fail "daemon child did not report a port"
        in
        f ~port)

let outcome_complete = function
  | Ccr_modelcheck.Explore.Complete -> true
  | _ -> false

let assert_complete name (r : (_, _) Ccr_modelcheck.Explore.stats) =
  if not (outcome_complete r.outcome) then
    Alcotest.failf "%s: exploration did not complete cleanly (%d states)"
      name r.states
