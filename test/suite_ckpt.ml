(* Crash-safe checkpoint/resume (DESIGN.md §6h).

   The contract: a checkpoint taken at any save point, loaded back and
   resumed, reproduces the uninterrupted run's states, transitions and
   outcome exactly — for the sequential engine at any mid-level cut, and
   for the multi-process engine at level boundaries.  Damaged files
   (truncation at every byte, corruption) are refused with a message,
   never a crash; manifest mismatches are refused before any state is
   trusted.

   Fork discipline: the [Mpx] cases fork, so this suite runs before any
   suite that spawns a domain (see suite_mpx.ml); the [par_run] resume
   case spawns domains and therefore lives in [par_suite], registered
   after every forking suite. *)

open Test_util
module Explore = Ccr_modelcheck.Explore
module Mpx = Ccr_modelcheck.Mpx
module Vstore = Ccr_modelcheck.Vstore
module Ckpt = Ccr_modelcheck.Ckpt
module J = Ccr_obs.Journal

(* counter_system / bits_system come from Test_util. *)

(* Scratch checkpoint directories are scoped: removed when the case
   body returns, pass or fail. *)
let in_dir f = with_temp_dir "ccr-test-ckpt" f

let manifest = [ ("spec_hash", J.Str "test") ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let ckpt_to dir =
  Explore.
    { ck_resume = None; ck_save = Ckpt.saver ~dir ~manifest ~prov:None () }

let resume_of (l : _ Ckpt.loaded) =
  Explore.
    {
      ck_resume =
        Some
          {
            r_states = l.Ckpt.l_states;
            r_transitions = l.Ckpt.l_transitions;
            r_frontier = l.Ckpt.l_frontier;
            r_keys = l.Ckpt.l_keys;
          };
      ck_save = ignore;
    }

let load_ok dir =
  match Ckpt.load ~dir with
  | Ok l -> l
  | Error msg -> Alcotest.failf "checkpoint refused: %s" msg

(* Interrupt [run] at [cap] states with a checkpoint, then resume with
   [run] again and require the uninterrupted pin. *)
let check_resume name ?store run sys =
  let seq = Explore.run ?store sys in
  let caps = [ 1; seq.Explore.states / 3; seq.Explore.states / 2 ] in
  List.iter
    (fun cap ->
      let cap = max 1 cap in
      in_dir @@ fun dir ->
      let first = run ~max_states:cap ~ckpt:(ckpt_to dir) in
      checkb
        (Fmt.str "%s cap=%d: first leg capped" name cap)
        true
        (first.Explore.outcome = Explore.Limit Explore.L_states);
      let l = load_ok dir in
      checki (Fmt.str "%s cap=%d: saved states" name cap) first.Explore.states
        l.Ckpt.l_states;
      let r = run ~max_states:max_int ~ckpt:(resume_of l) in
      checki (Fmt.str "%s cap=%d: states" name cap) seq.Explore.states
        r.Explore.states;
      checki
        (Fmt.str "%s cap=%d: transitions" name cap)
        seq.Explore.transitions r.Explore.transitions;
      checki
        (Fmt.str "%s cap=%d: max_depth" name cap)
        seq.Explore.max_depth r.Explore.max_depth;
      checkb
        (Fmt.str "%s cap=%d: complete" name cap)
        true
        (r.Explore.outcome = Explore.Complete))
    caps

let tests =
  [
    (* ---- multi-process first: these fork ---- *)
    case "mpx: boundary checkpoint resumes to the sequential pin" (fun () ->
        let sys = bits_system 10 in
        let seq = Explore.run sys in
        in_dir @@ fun dir ->
        let first =
          Mpx.run ~workers:2 ~max_states:(seq.Explore.states / 2)
            ~ckpt:(ckpt_to dir) sys
        in
        checkb "first leg capped" true
          (first.Explore.outcome = Explore.Limit Explore.L_states);
        let l = load_ok dir in
        checki "boundary is a whole level" 0
          (Array.fold_left (fun a (_, _, o, _) -> max a o) 0 l.Ckpt.l_frontier);
        let r = Mpx.run ~workers:2 ~ckpt:(resume_of l) sys in
        checki "states" seq.Explore.states r.Explore.states;
        checki "transitions" seq.Explore.transitions r.Explore.transitions;
        checki "max_depth" seq.Explore.max_depth r.Explore.max_depth;
        (* a worker-count change between sessions is fine: ids are
           assigned by rank, not by worker *)
        let r3 = Mpx.run ~workers:3 ~ckpt:(resume_of (load_ok dir)) sys in
        checki "states (w=3)" seq.Explore.states r3.Explore.states);
    case "mpx: a sequential mid-level checkpoint is refused" (fun () ->
        let sys = counter_system ~limit:100 in
        in_dir @@ fun dir ->
        (* cap 5 lands mid-level in the sequential engine: some frontier
           entries carry a non-zero resume ordinal *)
        ignore (Explore.run ~max_states:5 ~ckpt:(ckpt_to dir) sys);
        let l = load_ok dir in
        checkb "really mid-level" true
          (Array.exists (fun (_, _, o, _) -> o > 0) l.Ckpt.l_frontier);
        match Mpx.run ~workers:2 ~ckpt:(resume_of l) sys with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "mpx: a crashed worker is respawned and the pin holds" (fun () ->
        let sys = bits_system 12 in
        let seq = Explore.run sys in
        let respawns = ref 0 in
        Unix.putenv "CCR_CRASH_AT" "worker=1,level=4";
        let r =
          Fun.protect
            ~finally:(fun () -> Unix.putenv "CCR_CRASH_AT" "")
            (fun () ->
              Mpx.run ~workers:2
                ~on_respawn:(fun ~worker:_ -> incr respawns)
                sys)
        in
        checkb "at least one respawn" true (!respawns >= 1);
        checki "states" seq.Explore.states r.Explore.states;
        checki "transitions" seq.Explore.transitions r.Explore.transitions);
    (* ---- sequential: fork-free, domain-free ---- *)
    case "seq: resume matches the uninterrupted run (all stores)" (fun () ->
        let sys = counter_system ~limit:400 in
        check_resume "counter mem"
          (fun ~max_states ~ckpt -> Explore.run ~max_states ~ckpt sys)
          sys;
        (* component boundaries, constant arity: the whole key is one
           component *)
        let split k = [| String.length k |] in
        check_resume "counter collapse" ~store:(Vstore.Collapse split)
          (fun ~max_states ~ckpt ->
            Explore.run ~store:(Vstore.Collapse split) ~max_states ~ckpt sys)
          sys;
        check_resume "counter disk" ~store:Vstore.Disk
          (fun ~max_states ~ckpt ->
            Explore.run ~store:Vstore.Disk ~max_states ~ckpt sys)
          sys);
    case "seq: every registry protocol resumes to its pin" (fun () ->
        List.iter
          (fun (e : Ccr_protocols.Registry.t) ->
            let prog = e.Ccr_protocols.Registry.instantiate ~reqrep:true ~n:2 in
            let sys = async_system prog in
            check_resume
              (e.Ccr_protocols.Registry.name ^ " async n=2")
              (fun ~max_states ~ckpt -> Explore.run ~max_states ~ckpt sys)
              sys)
          Ccr_protocols.Registry.all);
    case "seq: provenance rides the checkpoint" (fun () ->
        let sys = counter_system ~limit:100 in
        in_dir @@ fun dir ->
        let prov = Vstore.Prov.create () in
        ignore
          (Explore.run ~max_states:20 ~prov
             ~ckpt:
               Explore.
                 {
                   ck_resume = None;
                   ck_save = Ckpt.saver ~dir ~manifest ~prov:(Some prov) ();
                 }
             sys);
        let l = load_ok dir in
        checki "one slot per state" l.Ckpt.l_states
          (Array.length l.Ckpt.l_prov);
        (* replay provenance, resume, and require a valid counterexample *)
        let prov2 = Vstore.Prov.create () in
        Array.iteri
          (fun id (parent, ord) -> Vstore.Prov.record prov2 ~id ~parent ~ord)
          l.Ckpt.l_prov;
        let r =
          Explore.run ~prov:prov2 ~trace:true
            ~invariants:[ ("small", fun s -> s < 90) ]
            ~ckpt:(resume_of l) sys
        in
        (match r.Explore.outcome with
        | Explore.Violation { state; _ } -> checkb "violates" true (state >= 90)
        | _ -> Alcotest.fail "expected violation");
        match r.Explore.trace with
        | Some path ->
          checkb "trace ends at the violation" true
            (snd (List.nth path (List.length path - 1)) >= 90)
        | None -> Alcotest.fail "expected a trace");
    case "save is atomic and refuses every truncation" (fun () ->
        let sys = counter_system ~limit:60 in
        in_dir @@ fun dir ->
        ignore (Explore.run ~max_states:15 ~ckpt:(ckpt_to dir) sys);
        let ic = open_in_bin (Ckpt.file dir) in
        let n = in_channel_length ic in
        let bytes = really_input_string ic n in
        close_in ic;
        checkb "small enough to truncate exhaustively" true (n < 200_000);
        in_dir @@ fun dir2 ->
        ignore (Explore.run ~max_states:15 ~ckpt:(ckpt_to dir2) sys);
        let torn = ref 0 in
        for len = 0 to n - 1 do
          let oc = open_out_bin (Ckpt.file dir2) in
          output_string oc (String.sub bytes 0 len);
          close_out oc;
          match Ckpt.load ~dir:dir2 with
          | Error _ -> incr torn
          | Ok _ ->
            Alcotest.failf "truncation to %d bytes loaded successfully" len
        done;
        checki "every prefix refused" n !torn;
        (* flipping one payload byte must trip a CRC *)
        let b = Bytes.of_string bytes in
        Bytes.set b (n / 2) (Char.chr (Char.code (Bytes.get b (n / 2)) lxor 1));
        let oc = open_out_bin (Ckpt.file dir2) in
        output_bytes oc b;
        close_out oc;
        match Ckpt.load ~dir:dir2 with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "corrupted checkpoint loaded successfully");
    case "manifest mismatch is refused field by field" (fun () ->
        let found =
          [
            ("spec_hash", J.Str "aaa");
            ("protocol", J.Str "invalidate");
            ("n", J.Int 3);
          ]
        in
        checkb "same manifest resumes" true
          (Ckpt.mismatch ~expected:found ~found = None);
        (match
           Ckpt.mismatch
             ~expected:
               [
                 ("spec_hash", J.Str "bbb");
                 ("protocol", J.Str "invalidate");
                 ("n", J.Int 4);
               ]
             ~found
         with
        | None -> Alcotest.fail "expected a mismatch"
        | Some diff ->
          checkb "names spec_hash" true (contains diff "spec_hash");
          checkb "names n" true (contains diff "n:"));
        (* caps and engine shape are not guarded *)
        checkb "jobs may change" true
          (Ckpt.mismatch
             ~expected:(("jobs", J.Int 4) :: found)
             ~found:(("jobs", J.Int 1) :: found)
          = None));
    case "--checkpoint-every parses counts and periods" (fun () ->
        (match Ckpt.parse_every "50000" with
        | Ok (Ckpt.E_states 50000) -> ()
        | _ -> Alcotest.fail "state count form");
        (match Ckpt.parse_every "30s" with
        | Ok (Ckpt.E_secs s) -> checkb "30s" true (s = 30.0)
        | _ -> Alcotest.fail "seconds form");
        match Ckpt.parse_every "nope" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage accepted");
  ]

let par_tests =
  [
    case "par (j=4): boundary checkpoint resumes to the pin" (fun () ->
        let sys = bits_system 12 in
        let seq = Explore.run sys in
        in_dir @@ fun dir ->
        let first =
          Explore.par_run ~jobs:4 ~max_states:(seq.Explore.states / 2)
            ~ckpt:(ckpt_to dir) sys
        in
        checkb "first leg capped" true
          (first.Explore.outcome = Explore.Limit Explore.L_states);
        let l = load_ok dir in
        let r = Explore.par_run ~jobs:4 ~ckpt:(resume_of l) sys in
        checki "states" seq.Explore.states r.Explore.states;
        checki "transitions" seq.Explore.transitions r.Explore.transitions;
        checki "max_depth" seq.Explore.max_depth r.Explore.max_depth;
        (* cross-engine: a boundary checkpoint resumes sequentially too *)
        let rs = Explore.run ~ckpt:(resume_of (load_ok dir)) sys in
        checki "states (seq resume)" seq.Explore.states rs.Explore.states);
  ]

let suite = ("ckpt", tests)
let par_suite = ("ckpt-par", par_tests)
