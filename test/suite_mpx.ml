(* Multi-process exploration.

   The contract of [Mpx.run] (DESIGN.md §6e): state and transition
   counts are byte-identical to the sequential [Explore.run] at every
   worker and job count — ownership partitions the key space, so
   freshness is race-free, and the parent assigns global indices by
   sequential-BFS rank.  Violations and deadlocks surface through the
   same sequential fallback re-run as the in-process parallel engine. *)

open Test_util
module Explore = Ccr_modelcheck.Explore
module Mpx = Ccr_modelcheck.Mpx
module Vstore = Ccr_modelcheck.Vstore
module Async = Ccr_refine.Async
module Registry = Ccr_protocols.Registry

(* counter_system / bits_system come from Test_util. *)

(* The OCaml 5 runtime refuses [Unix.fork] once any domain has ever been
   spawned in the process — even one long since joined.  So this suite
   runs FIRST in the binary (see test_main.ml), every forking case comes
   before the one case that spawns in-process domains (the workers=1
   delegation, kept last), and the worker counts here all fork.  The
   (w=1, j=1) config delegates to the plain sequential engine, which is
   fork-safe. *)
let configs = [ (1, 1); (2, 1); (2, 2) ]

let check_equiv ?store name sys =
  let seq = Explore.run sys in
  List.iter
    (fun (workers, jobs) ->
      let r = Mpx.run ~workers ~jobs ?store sys in
      checki
        (Fmt.str "%s: states (w=%d j=%d)" name workers jobs)
        seq.states r.states;
      checki
        (Fmt.str "%s: transitions (w=%d j=%d)" name workers jobs)
        seq.transitions r.transitions;
      checkb
        (Fmt.str "%s: complete (w=%d j=%d)" name workers jobs)
        true
        (outcome_complete r.outcome);
      checki
        (Fmt.str "%s: max_depth (w=%d j=%d)" name workers jobs)
        seq.max_depth r.max_depth)
    configs

let tests =
  [
    case "mpx matches seq on synthetic systems" (fun () ->
        check_equiv "bits-8" (bits_system 8);
        check_equiv "counter-50" (counter_system ~limit:50));
    case "every registry protocol: async counts match across worker configs"
      (fun () ->
        List.iter
          (fun (e : Registry.t) ->
            let prog = e.Registry.instantiate ~reqrep:true ~n:2 in
            check_equiv (e.Registry.name ^ " async n=2") (async_system prog))
          Registry.all);
    case "workers compose with the compressed stores" (fun () ->
        let prog = compile ~n:3 (Ccr_protocols.Migratory.system ()) in
        let sys = async_system prog in
        check_equiv ~store:(Vstore.Collapse (Async.split_key prog))
          "migratory n=3 collapse" sys;
        check_equiv ~store:Vstore.Disk "migratory n=3 disk" sys);
    case "per-worker stores hold disjoint partitions" (fun () ->
        let seq = Explore.run (bits_system 10) in
        let r = Mpx.run ~workers:2 (bits_system 10) in
        (* mem/raw sum the per-worker stores; each worker holds a strict
           subset, so the totals match the state count, not exceed it *)
        checki "states" seq.states r.states;
        checkb "raw accounted" true (r.raw_bytes > 0);
        checkb "split across workers" true (r.mem_bytes > 0));
    case "violation is detected with a valid trace" (fun () ->
        let r =
          Mpx.run ~workers:2 ~trace:true
            ~invariants:[ ("below7", fun s -> s < 7) ]
            (counter_system ~limit:100)
        in
        (match r.outcome with
        | Explore.Violation { invariant; state } ->
          checks "name" "below7" invariant;
          checkb "state breaks it" true (state >= 7)
        | _ -> Alcotest.fail "expected violation");
        match r.trace with
        | Some path ->
          checkb "trace ends at the violation" true
            (snd (List.nth path (List.length path - 1)) >= 7)
        | None -> Alcotest.fail "expected a trace");
    case "deadlock is detected via the sequential fallback" (fun () ->
        let r =
          Mpx.run ~workers:2 ~check_deadlock:true ~trace:true
            (counter_system ~limit:10)
        in
        match r.outcome with
        | Explore.Deadlock s -> checki "deadlock at limit" 10 s
        | _ -> Alcotest.fail "expected deadlock");
    case "state cap applies at level granularity" (fun () ->
        let r = Mpx.run ~workers:2 ~max_states:10 (bits_system 8) in
        (match r.outcome with
        | Explore.Limit Explore.L_states -> ()
        | _ -> Alcotest.fail "expected state cap");
        checkb "at least the cap" true (r.states >= 10));
    case "prov counterexample matches the legacy fallback (workers=2)"
      (fun () ->
        let prog =
          (Option.get (Registry.find "migratory")).Registry.instantiate
            ~reqrep:true ~n:2
        in
        let sys = async_system prog in
        let g = Ccr_modelcheck.Graph.build sys in
        let states = g.Ccr_modelcheck.Graph.states in
        let target = Async.encode states.(Array.length states - 1) in
        let invariants =
          [ ("not-last", fun st -> Async.encode st <> target) ]
        in
        let sig_of (r : (_, _) Explore.stats) =
          match r.Explore.trace with
          | None -> []
          | Some path ->
            List.map
              (fun (l, st) ->
                (Option.map (Fmt.str "%a" Async.pp_label) l, Async.encode st))
              path
        in
        let legacy = Mpx.run ~workers:2 ~trace:true ~invariants sys in
        checkb "legacy violates" true
          (match legacy.Explore.outcome with
          | Explore.Violation _ -> true
          | _ -> false);
        List.iter
          (fun kind ->
            let prov = Vstore.Prov.create ~kind () in
            let r = Mpx.run ~workers:2 ~prov ~trace:true ~invariants sys in
            checkb
              (Vstore.Prov.pkind_name kind ^ ": trace matches fallback")
              true
              (sig_of r = sig_of legacy))
          [ Vstore.Prov.P_mem; Vstore.Prov.P_disk ]);
    case "journal is byte-identical to the sequential engine (workers=2)"
      (fun () ->
        let journal_of run =
          let j = Ccr_obs.Journal.create () in
          let on_level ~depth ~states =
            Ccr_obs.Journal.event j "level"
              [
                ("depth", Ccr_obs.Journal.Int depth);
                ("states", Ccr_obs.Journal.Int states);
              ]
          in
          ignore (run ~on_level);
          Ccr_obs.Journal.contents j
        in
        (* complete run *)
        let sys = counter_system ~limit:400 in
        let seq = journal_of (fun ~on_level -> Explore.run ~on_level sys) in
        checkb "non-empty" true (String.length seq > 0);
        checks "complete run identical"
          seq
          (journal_of (fun ~on_level -> Mpx.run ~workers:2 ~on_level sys));
        (* violating run, with provenance *)
        let invariants = [ ("small", fun s -> s < 210) ] in
        let vseq =
          journal_of (fun ~on_level ->
              Explore.run
                ~prov:(Vstore.Prov.create ())
                ~on_level ~invariants ~trace:true sys)
        in
        checks "violating run identical"
          vseq
          (journal_of (fun ~on_level ->
               Mpx.run ~workers:2
                 ~prov:(Vstore.Prov.create ())
                 ~on_level ~invariants ~trace:true sys)));
    (* keep last: spawns domains in this process, which forbids any
       further fork in the binary *)
    case "workers=1 delegates to the in-process engines" (fun () ->
        let seq = Explore.run (bits_system 8) in
        List.iter
          (fun jobs ->
            let r = Mpx.run ~workers:1 ~jobs (bits_system 8) in
            checki (Fmt.str "states (j=%d)" jobs) seq.states r.states;
            checki
              (Fmt.str "transitions (j=%d)" jobs)
              seq.transitions r.transitions)
          [ 1; 2 ]);
  ]

let suite = ("mpx", tests)
