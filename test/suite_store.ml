(* The visited-store zoo: collapse compression and the out-of-core disk
   store must be *exact* — byte-identical state and transition counts to
   the plain interned store — while resident memory drops.  These tests
   pin the codec round-trips, the splitter contracts the collapse store
   builds on, cross-store count agreement on every registry protocol,
   and the headline regression: migratory async n=5 completes under an
   8 MB cap that the plain store blows through. *)

open Test_util
module Explore = Ccr_modelcheck.Explore
module Vstore = Ccr_modelcheck.Vstore
module Async = Ccr_refine.Async
module Sym = Ccr_refine.Symmetry
module Rendezvous = Ccr_semantics.Rendezvous
module Fault = Ccr_faults.Fault
module Injected = Ccr_faults.Injected
module Registry = Ccr_protocols.Registry

(* ---- generators -------------------------------------------------------- *)

(* Short strings over a 4-letter alphabet: plenty of duplicate keys and
   duplicate components, which is what the stores must get right. *)
let keys_gen =
  QCheck2.Gen.(
    list_size (int_range 1 200)
      (string_size ~gen:(char_range 'a' 'd') (int_range 1 24)))

let print_keys = QCheck2.Print.(list string)

(* Cut a key into 4 components at the quarter points (possibly empty for
   short keys): a fixed-arity splitter for arbitrary strings, as the
   per-position intern tables require. *)
let split3 key =
  let len = String.length key in
  Array.init 4 (fun i -> (i + 1) * len / 4)

(* Feed the same key sequence to [store] and to an exact reference;
   every [add] verdict and the final counts must agree. *)
let agrees_with_exact store keys =
  let exact = Vstore.exact () in
  List.for_all
    (fun k -> store.Vstore.add k = exact.Vstore.add k)
    keys
  && store.Vstore.count () = exact.Vstore.count ()

(* ---- splitter contract -------------------------------------------------- *)

(* Collect every distinct key an exploration encodes. *)
let reachable_keys sys =
  let seen = Hashtbl.create 256 in
  let encode st =
    let k = sys.Explore.encode st in
    Hashtbl.replace seen k ();
    k
  in
  ignore (Explore.run { sys with Explore.encode });
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

let check_splitter what split ~arity keys =
  checkb (what ^ ": some keys collected") true (keys <> []);
  List.iter
    (fun key ->
      let bs = split key in
      checki (what ^ ": component arity") arity (Array.length bs);
      let prev = ref 0 in
      Array.iter
        (fun b ->
          checkb (what ^ ": boundaries strictly increase") true (b > !prev);
          prev := b)
        bs;
      checki (what ^ ": boundaries cover the key") (String.length key)
        bs.(Array.length bs - 1))
    keys

(* ---- cross-store agreement on real systems ------------------------------ *)

let stores_for prog =
  [
    ("collapse", Vstore.Collapse (Async.split_key prog));
    ("disk", Vstore.Disk);
  ]

let check_stores_equal name prog sys =
  let seq = Explore.run sys in
  assert_complete name seq;
  List.iter
    (fun (sname, kind) ->
      let r = Explore.run ~store:kind sys in
      checki (Fmt.str "%s: states (%s)" name sname) seq.states r.states;
      checki
        (Fmt.str "%s: transitions (%s)" name sname)
        seq.transitions r.transitions;
      checkb
        (Fmt.str "%s: complete (%s)" name sname)
        true
        (outcome_complete r.outcome);
      List.iter
        (fun jobs ->
          let p = Explore.par_run ~jobs ~store:kind sys in
          checki
            (Fmt.str "%s: states (%s, j=%d)" name sname jobs)
            seq.states p.states;
          checki
            (Fmt.str "%s: transitions (%s, j=%d)" name sname jobs)
            seq.transitions p.transitions)
        [ 2; 4 ])
    (stores_for prog)

(* ---- the tests ---------------------------------------------------------- *)

let tests =
  [
    case "intern: ids are dense, get inverts id, unknowns raise" (fun () ->
        let t = Vstore.Intern.create () in
        let words = [ "alpha"; "beta"; "alpha"; ""; "gamma"; "beta" ] in
        let ids = List.map (Vstore.Intern.id t) words in
        checki "ids" 0 (List.nth ids 0);
        checki "ids" 1 (List.nth ids 1);
        checki "re-intern returns the first id" 0 (List.nth ids 2);
        checki "empty component interns" 2 (List.nth ids 3);
        checki "count" 4 (Vstore.Intern.count t);
        List.iter2
          (fun w id -> checks "get inverts id" w (Vstore.Intern.get t id))
          words ids;
        match Vstore.Intern.get t 99 with
        | exception Invalid_argument _ -> ()
        | s -> Alcotest.failf "unknown id returned %S" s);
    qcase ~count:200 ~print:print_keys
      "collapse add/count agree with the exact store on random keys"
      keys_gen
      (fun keys ->
        agrees_with_exact (Vstore.collapse ~split:split3 ()) keys);
    qcase ~count:200 ~print:print_keys
      "disk store with a tiny spill buffer agrees with the exact store"
      keys_gen
      (fun keys ->
        (* tail_cap=16 forces nearly every key through the file and the
           read-back comparison path *)
        agrees_with_exact (Vstore.disk ~tail_cap:16 ()) keys);
    qcase ~count:200 ~print:print_keys
      "shared-intern collapse shards partition like one exact store"
      keys_gen
      (fun keys ->
        let shards = Vstore.collapse_shared ~split:split3 4 in
        let exact = Vstore.exact () in
        List.for_all
          (fun k ->
            let s = shards.(Hashtbl.hash k land 3) in
            s.Vstore.add k = exact.Vstore.add k)
          keys
        && Array.fold_left (fun a s -> a + s.Vstore.count ()) 0 shards
           = exact.Vstore.count ());
    case "async split_key parses every reachable key" (fun () ->
        let prog = compile ~n:2 ping_system in
        let keys = reachable_keys (async_system prog) in
        check_splitter "ping async" (Async.split_key prog) ~arity:(1 + (3 * 2))
          keys;
        let prog = compile ~n:3 (Ccr_protocols.Migratory.system ()) in
        let keys = reachable_keys (async_system prog) in
        check_splitter "migratory async"
          (Async.split_key prog)
          ~arity:(1 + (3 * 3))
          keys);
    case "rendezvous split_key parses every reachable key" (fun () ->
        let prog = compile ~n:3 ping_system in
        let keys = reachable_keys (rv_system prog) in
        check_splitter "ping rv" (Rendezvous.split_key prog) ~arity:(1 + 3)
          keys);
    case "faults split_key parses every reachable key" (fun () ->
        let prog = compile ~n:2 ping_system in
        let cfg = Async.{ k = 2 } in
        let budget = { Fault.none with Fault.drop = 1 } in
        let sys =
          Explore.
            {
              init = Injected.initial budget prog cfg;
              succ = Injected.successors Injected.Hardened budget prog cfg;
              encode = Injected.encode;
              canon = None;
            }
        in
        let keys = reachable_keys sys in
        check_splitter "ping faults"
          (Injected.split_key prog)
          ~arity:(1 + (3 * 2) + 1)
          keys);
    case "every registry protocol: stores agree at async n=2" (fun () ->
        List.iter
          (fun (e : Registry.t) ->
            let prog = e.Registry.instantiate ~reqrep:true ~n:2 in
            check_stores_equal (e.Registry.name ^ " async n=2") prog
              (async_system prog))
          Registry.all);
    case "stores compose with symmetry reduction" (fun () ->
        (* canonical keys are valid encode layouts, so the splitter
           parses them and the quotient counts match across stores *)
        let prog = compile ~n:3 (Ccr_protocols.Migratory.system ()) in
        let quotient kind =
          let stats = Sym.make_stats () in
          Explore.run ~store:kind
            {
              (async_system prog) with
              Explore.canon =
                Some
                  Explore.
                    {
                      canon_key = Sym.canonical_async_fast ~stats prog;
                      canon_fresh = None;
                      canon_fallbacks = (fun () -> Sym.fallbacks stats);
                    };
            }
        in
        let m = quotient Vstore.Mem in
        assert_complete "migratory quotient" m;
        List.iter
          (fun (sname, kind) ->
            let r = quotient kind in
            checki (Fmt.str "quotient states (%s)" sname) m.states r.states;
            checki
              (Fmt.str "quotient transitions (%s)" sname)
              m.transitions r.transitions)
          (stores_for prog));
    case "collapse resident memory beats raw on a real run" (fun () ->
        let prog = compile ~n:3 (Ccr_protocols.Migratory.system ()) in
        let r =
          Explore.run
            ~store:(Vstore.Collapse (Async.split_key prog))
            (async_system prog)
        in
        assert_complete "migratory n=3 collapse" r;
        checkb "raw accounted" true (r.raw_bytes > 0);
        checkb "compressed below raw" true (r.mem_bytes < r.raw_bytes));
    case "prov: mem and disk backends record and replay identically"
      (fun () ->
        (* tail_cap=32 forces the disk backend through its spill +
           read-back path on even this small a chain *)
        let mem = Vstore.Prov.create () in
        let disk = Vstore.Prov.create ~kind:Vstore.Prov.P_disk ~tail_cap:32 () in
        let entries =
          (* (parent, ord) per id; id 0 is the root *)
          [| (0, -1); (0, 0); (0, 1); (1, 0); (2, 3); (4, 2); (4, 0) |]
        in
        Array.iteri
          (fun id (parent, ord) ->
            Vstore.Prov.record mem ~id ~parent ~ord;
            Vstore.Prov.record disk ~id ~parent ~ord)
          entries;
        List.iter
          (fun (name, p) ->
            checki (name ^ ": count") (Array.length entries)
              (Vstore.Prov.count p);
            checki (name ^ ": bytes") (8 * Array.length entries)
              (Vstore.Prov.bytes p);
            checkb (name ^ ": mem accounted") true
              (Vstore.Prov.mem_bytes p > 0);
            Array.iteri
              (fun id e ->
                checkb
                  (Fmt.str "%s: entry %d" name id)
                  true
                  (Vstore.Prov.entry p id = e))
              entries;
            (* 0 -ord:1-> 2 -ord:3-> 4 -ord:2-> 5 *)
            checkb (name ^ ": chain to 5") true
              (Vstore.Prov.chain p 5 = [ 1; 3; 2 ]);
            checkb (name ^ ": chain to root") true
              (Vstore.Prov.chain p 0 = []))
          [ ("mem", mem); ("disk", disk) ]);
    case "prov: malformed records are rejected" (fun () ->
        let expect_invalid what f =
          match f () with
          | exception Invalid_argument _ -> ()
          | () -> Alcotest.failf "%s: accepted" what
        in
        let p = Vstore.Prov.create () in
        Vstore.Prov.record p ~id:0 ~parent:0 ~ord:(-1);
        expect_invalid "out-of-order id" (fun () ->
            Vstore.Prov.record p ~id:2 ~parent:0 ~ord:0);
        expect_invalid "parent not preceding child" (fun () ->
            Vstore.Prov.record p ~id:1 ~parent:1 ~ord:0);
        expect_invalid "ordinal too small" (fun () ->
            Vstore.Prov.record p ~id:1 ~parent:0 ~ord:(-2));
        expect_invalid "ordinal too large" (fun () ->
            Vstore.Prov.record p ~id:1 ~parent:0 ~ord:65535);
        Vstore.Prov.record p ~id:1 ~parent:0 ~ord:65534;
        checki "good records kept" 2 (Vstore.Prov.count p));
    case "prov replay equals the legacy trace (both backends)" (fun () ->
        let prog = compile ~n:2 ping_system in
        let sys = async_system prog in
        let g = Ccr_modelcheck.Graph.build sys in
        let states = g.Ccr_modelcheck.Graph.states in
        let target = Async.encode states.(Array.length states - 1) in
        let invariants = [ ("not-last", fun st -> Async.encode st <> target) ] in
        let legacy = Explore.run ~trace:true ~invariants sys in
        let sig_of r =
          match r.Explore.trace with
          | None -> []
          | Some path ->
            List.map
              (fun (l, st) ->
                (Option.map (Fmt.str "%a" Async.pp_label) l, Async.encode st))
              path
        in
        checkb "legacy violates" true
          (match legacy.Explore.outcome with
          | Explore.Violation _ -> true
          | _ -> false);
        List.iter
          (fun kind ->
            let prov = Vstore.Prov.create ~kind ~tail_cap:64 () in
            let r = Explore.run ~prov ~trace:true ~invariants sys in
            checkb
              (Vstore.Prov.pkind_name kind ^ ": trace matches legacy")
              true
              (sig_of r = sig_of legacy))
          [ Vstore.Prov.P_mem; Vstore.Prov.P_disk ]);
    slow_case "memory cliff: migratory n=5 completes at 8 MB with collapse"
      (fun () ->
        let prog = compile ~n:5 (Ccr_protocols.Migratory.system ()) in
        let sys = async_system prog in
        let cap = 8 * 1024 * 1024 in
        let mem = Explore.run ~max_mem_bytes:cap sys in
        (match mem.Explore.outcome with
        | Explore.Limit Explore.L_memory -> ()
        | o ->
          Alcotest.failf "plain store expected to hit the cap, got %a"
            (Explore.pp_outcome (Async.pp_state prog))
            o);
        let col =
          Explore.run ~max_mem_bytes:cap
            ~store:(Vstore.Collapse (Async.split_key prog))
            sys
        in
        assert_complete "migratory n=5 collapse @8MB" col;
        checkb "cliff was real: plain stopped short" true
          (mem.Explore.states < col.Explore.states);
        checkb "under the cap" true (col.Explore.mem_bytes <= cap));
  ]

let suite = ("store", tests)
