(* Property-based testing over the generated star-protocol families.

   The generator now lives in [Ccr_fuzz.Gen] (shared with the [ccr fuzz]
   subcommand); this suite drives it over {e fixed} seed ranges, so the
   regression is deterministic — a failure here names the seed, and
   [ccr fuzz --seed S --count 1] replays the same instance under the
   full oracle battery.  The legacy family keeps the original knobs
   (remote pause, payload arity, home detour); the checks hold the
   refinement pipeline to its promise end to end: validation,
   exploration without protocol errors or deadlock, and the Eq. 1
   simulation with the original 20k-state budget. *)

open Ccr_core
open Ccr_fuzz
open Test_util

let seeds lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

(* Iterate a property over legacy-family specs drawn at fixed seeds,
   naming the failing seed and spec. *)
let over_legacy lo hi f =
  List.iter
    (fun seed ->
      let spec = Gen.generate ~family:Gen.Legacy (Rng.make seed) in
      match f spec with
      | true -> ()
      | false ->
        Alcotest.failf "seed %d: property failed on %a" seed Gen.pp spec
      | exception e ->
        Alcotest.failf "seed %d: %s on %a" seed (Printexc.to_string e)
          Gen.pp spec)
    (seeds lo hi)

let tests =
  [
    case "generated protocols validate" (fun () ->
        over_legacy 0 119 (fun s ->
            match Validate.check (Gen.build s) with
            | Ok _ -> true
            | Error _ -> false));
    case "no pause means a request/reply pair" (fun () ->
        over_legacy 0 59 (fun s ->
            let report = Reqrep.analyze (Gen.build s) in
            List.for_all
              (fun i ->
                let t = List.nth s.Gen.txns i in
                let is_pair =
                  List.exists
                    (fun (p : Reqrep.pair) -> p.req = "a" ^ string_of_int i)
                    report.pairs
                in
                is_pair = not t.Gen.t_pause)
              (List.init (List.length s.Gen.txns) Fun.id)));
    slow_case "async exploration: no deadlock, no protocol error" (fun () ->
        over_legacy 0 59 (fun s ->
            let prog = Gen.compile s in
            let r = explore_async ~k:s.Gen.k ~max_states:30_000 prog in
            match r.outcome with
            | Ccr_modelcheck.Explore.Complete
            | Ccr_modelcheck.Explore.Limit Ccr_modelcheck.Explore.L_states ->
              true
            | _ -> false));
    slow_case "Eq. 1 holds across the family" (fun () ->
        over_legacy 0 39 (fun s ->
            let prog = Gen.compile s in
            let v =
              Ccr_refine.Absmap.check_eq1 ~max_states:20_000 prog
                Ccr_refine.Async.{ k = s.Gen.k }
            in
            v.ok));
    slow_case "Eq. 1 holds on the generalized family too" (fun () ->
        (* ownership transactions, home-initiated pairs, n up to 4 *)
        List.iter
          (fun seed ->
            let s = Gen.generate ~family:Gen.General (Rng.make seed) in
            let prog = Gen.compile s in
            let v =
              Ccr_refine.Absmap.check_eq1 ~max_states:10_000 prog
                Ccr_refine.Async.{ k = s.Gen.k }
            in
            if not v.ok then
              Alcotest.failf "seed %d: Eq. 1 failed on %a" seed Gen.pp s)
          (seeds 0 19));
    slow_case "simulation completes transactions and accounts messages"
      (fun () ->
        over_legacy 0 29 (fun s ->
            let prog = Gen.compile s in
            let m =
              Ccr_simulate.Sim.run ~steps:3000 prog
                Ccr_refine.Async.{ k = s.Gen.k }
                Ccr_simulate.Sched.uniform
            in
            (not m.Ccr_simulate.Sim.deadlocked)
            && m.Ccr_simulate.Sim.rendezvous > 0
            && m.Ccr_simulate.Sim.acks + m.Ccr_simulate.Sim.nacks
               <= m.Ccr_simulate.Sim.reqs));
    slow_case "fire-and-forget requests keep the family deadlock-free"
      (fun () ->
        over_legacy 0 39 (fun s ->
            (* mark the first transaction's request fire-and-forget (the
               hand-optimization machinery): sender moves on, home always
               admits; the reply still arrives as a plain send *)
            let sys = Gen.build s in
            let prog =
              Link.compile ~reqrep:s.Gen.reqrep ~fire_and_forget:[ "a0" ]
                ~n:s.Gen.n sys
            in
            let r = explore_async ~k:s.Gen.k ~max_states:30_000 prog in
            match r.outcome with
            | Ccr_modelcheck.Explore.Complete
            | Ccr_modelcheck.Explore.Limit Ccr_modelcheck.Explore.L_states ->
              true
            | _ -> false));
    slow_case "abs maps into the reachable rendezvous space" (fun () ->
        over_legacy 0 29 (fun s ->
            let prog = Gen.compile s in
            (* enumerate rendezvous states (these protocols are small) *)
            let rv_seen = Hashtbl.create 64 in
            let q = Queue.create () in
            let push st =
              let key = Ccr_semantics.Rendezvous.encode st in
              if not (Hashtbl.mem rv_seen key) then begin
                Hashtbl.add rv_seen key ();
                Queue.push st q
              end
            in
            push (Ccr_semantics.Rendezvous.initial prog);
            while not (Queue.is_empty q) do
              let st = Queue.pop q in
              List.iter
                (fun (_, x) -> push x)
                (Ccr_semantics.Rendezvous.successors prog st)
            done;
            let cfg = Ccr_refine.Async.{ k = s.Gen.k } in
            let ok = ref true in
            let seen = Hashtbl.create 64 in
            let qa = Queue.create () in
            let budget = ref 10_000 in
            let pusha st =
              let key = Ccr_refine.Async.encode st in
              if (not (Hashtbl.mem seen key)) && !budget > 0 then begin
                decr budget;
                Hashtbl.add seen key ();
                if
                  not
                    (Hashtbl.mem rv_seen
                       (Ccr_semantics.Rendezvous.encode
                          (Ccr_refine.Absmap.abs prog st)))
                then ok := false;
                Queue.push st qa
              end
            in
            pusha (Ccr_refine.Async.initial prog cfg);
            while not (Queue.is_empty qa) do
              let st = Queue.pop qa in
              List.iter
                (fun (_, x) -> pusha x)
                (Ccr_refine.Async.successors prog cfg st)
            done;
            !ok));
  ]

let suite = ("random", tests)
