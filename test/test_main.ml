let () =
  Alcotest.run "ccrefine"
    [
      (* must run first: their forking cases are illegal once any other
         suite has spawned a domain (see suite_mpx.ml); suite_ckpt's
         domain-spawning cases are split off into [par_suite] below *)
      Suite_ckpt.suite;
      Suite_serve.suite;
      Suite_mpx.suite;
      Suite_journal.suite;
      Suite_value.suite;
      Suite_expr.suite;
      Suite_validate.suite;
      Suite_reqrep.suite;
      Suite_link.suite;
      Suite_rendezvous.suite;
      Suite_async.suite;
      Suite_absmap.suite;
      Suite_explore.suite;
      Suite_par_explore.suite;
      Suite_store.suite;
      Suite_obs.suite;
      Suite_compile.suite;
      Suite_sim.suite;
      Suite_protocols.suite;
      Suite_faults.suite;
      Suite_runtime.suite;
      Suite_engine.suite;
      Suite_symmetry.suite;
      Suite_viz.suite;
      Suite_prog.suite;
      Suite_parse.suite;
      Suite_random.suite;
      Suite_fuzz.suite;
      Suite_ckpt.par_suite;
    ]
