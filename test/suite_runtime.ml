open Ccr_core
open Ccr_protocols
open Ccr_faults
open Test_util
module Runtime = Ccr_runtime.Runtime
module Channel = Ccr_runtime.Channel

let k2 = Ccr_refine.Async.{ k = 2 }

let fspec s =
  match Fault.parse s with
  | Ok sp -> sp
  | Error m -> Alcotest.failf "Fault.parse %S: %s" s m

(* Aim one fault at a known message: with the generic (reqrep-off) ping,
   the first message remote 0 sends is its acq request and the first
   message the home sends back is the matching ack. *)
let one_fault kind chan =
  Plan.make ~n:1 (fspec "drop=1,dup=1")
    [ { Plan.ev_kind = kind; ev_on = Fault.Kany; ev_chan = chan; ev_ord = 1 } ]

let assert_clean name (s : Runtime.stats) =
  if not s.quiescent then
    Alcotest.failf "%s: did not reach quiescence (%a)" name Runtime.pp_stats s;
  if s.protocol_errors <> [] then
    Alcotest.failf "%s: protocol errors: %s" name
      (String.concat "; " s.protocol_errors);
  if s.invariant_failures <> [] then
    Alcotest.failf "%s: final-state invariants failed: %s" name
      (String.concat ", " s.invariant_failures)

let tests =
  [
    case "channel is FIFO with peek semantics" (fun () ->
        let c = Channel.create () in
        checkb "empty" true (Channel.is_empty c);
        Channel.send c 1;
        Channel.send c 2;
        checki "length" 2 (Channel.length c);
        checkb "peek oldest" true (Channel.peek c = Some 1);
        checkb "peek does not consume" true (Channel.peek c = Some 1);
        checkb "pop oldest" true (Channel.pop c = Some 1);
        checkb "then next" true (Channel.pop c = Some 2);
        checkb "then empty" true (Channel.pop c = None));
    case "channel survives concurrent producers and one consumer" (fun () ->
        let c = Channel.create () in
        let producers =
          List.init 4 (fun p ->
              Thread.create
                (fun () ->
                  for i = 0 to 249 do
                    Channel.send c ((p * 1000) + i)
                  done)
                ())
        in
        List.iter Thread.join producers;
        let seen = ref [] in
        let rec drain () =
          match Channel.pop c with
          | Some x ->
            seen := x :: !seen;
            drain ()
          | None -> ()
        in
        drain ();
        checki "all received" 1000 (List.length !seen);
        (* per-producer order is preserved *)
        List.iter
          (fun p ->
            let mine =
              List.rev (List.filter (fun x -> x / 1000 = p) !seen)
            in
            checkb "in order" true (List.sort compare mine = mine))
          [ 0; 1; 2; 3 ]);
    case "migratory runs concurrently and ends coherent" (fun () ->
        let prog = Link.compile ~n:4 (Migratory.system ()) in
        let s =
          Runtime.run ~budget:50
            ~invariants:(Migratory.async_invariants prog)
            prog k2
        in
        assert_clean "migratory" s;
        checkb "work happened" true (s.rendezvous > 4 * 50 / 2));
    case "invalidate runs concurrently and ends coherent" (fun () ->
        let prog = Link.compile ~n:3 Invalidate.system in
        let s =
          Runtime.run ~budget:60
            ~invariants:(Invalidate.async_invariants prog)
            prog k2
        in
        assert_clean "invalidate" s);
    case "lock server: mutual exclusion end to end" (fun () ->
        let prog = Link.compile ~n:4 Lock_server.system in
        let s =
          Runtime.run ~budget:40
            ~invariants:(Lock_server.async_invariants prog)
            prog k2
        in
        assert_clean "lock" s;
        (* every budgeted cycle acquires and releases: two rendezvous *)
        checkb "completions per remote" true
          (Array.for_all (fun c -> c >= 40) s.completions));
    case "barrier: equal budgets synchronize to quiescence" (fun () ->
        let prog = Link.compile ~n:3 Barrier.system in
        let s =
          Runtime.run ~budget:30
            ~invariants:(Barrier.async_invariants prog)
            prog k2
        in
        assert_clean "barrier" s;
        (* every remote completes one arrive and one go per round *)
        Array.iter (fun c -> checki "rounds" 60 c) s.completions);
    case "mesi under real concurrency" (fun () ->
        let prog = Link.compile ~n:3 Mesi.system in
        let s =
          Runtime.run ~budget:50 ~invariants:(Mesi.async_invariants prog)
            prog k2
        in
        assert_clean "mesi" s);
    case "write-update under real concurrency" (fun () ->
        let prog = Link.compile ~n:3 Write_update.system in
        let s =
          Runtime.run ~budget:50
            ~invariants:(Write_update.async_invariants prog)
            prog k2
        in
        assert_clean "write-update" s);
    case "hand-optimized migratory under real concurrency" (fun () ->
        let prog = Migratory_hand.prog ~n:3 () in
        let s =
          Runtime.run ~budget:50
            ~invariants:(Migratory_hand.async_invariants prog)
            prog k2
        in
        assert_clean "hand" s);
    case "bigger buffers work too" (fun () ->
        let prog = Link.compile ~n:4 (Migratory.system ()) in
        let s =
          Runtime.run ~budget:40
            ~invariants:(Migratory.async_invariants prog)
            prog Ccr_refine.Async.{ k = 4 }
        in
        assert_clean "k=4" s);
    case "workload budget bounds the run" (fun () ->
        (* thread interleavings vary, but the budget caps the work: a
           migratory cycle completes at most four rendezvous (request +
           grant + revoke + done), so two remotes with 25 cycles each can
           never exceed 4 * 2 * 25 *)
        let prog = Link.compile ~n:2 (Migratory.system ()) in
        let s =
          Runtime.run ~budget:25
            ~invariants:(Migratory.async_invariants prog)
            prog k2
        in
        assert_clean "bounds" s;
        checkb "not more rendezvous than cycles allow" true
          (s.rendezvous <= 4 * 2 * 25);
        checkb "and real work happened" true (s.rendezvous >= 25));
    case "closed channels poison senders and readers" (fun () ->
        let c = Channel.create () in
        Channel.send c 1;
        checkb "open" false (Channel.is_closed c);
        Channel.close c;
        checkb "closed" true (Channel.is_closed c);
        checkb "pending messages discarded" true (Channel.pop c = None);
        Channel.send c 2;
        checkb "send after close is a no-op" true (Channel.peek c = None));
    case "double close is a no-op, not an error" (fun () ->
        (* error paths poison the same transport twice: once from the
           failing node, once from the shared wind-down *)
        let c = Channel.create () in
        Channel.send c 1;
        Channel.close c;
        Channel.close c;
        checkb "still closed" true (Channel.is_closed c);
        checkb "still empty" true (Channel.pop c = None);
        Channel.send c 2;
        Channel.close c;
        checkb "and still poisoned" true (Channel.peek c = None));
    case "deadline hit: the watchdog names the stuck node" (fun () ->
        (* drop remote 0's acq request: in the vanilla transport it waits
           for an ack that can never come, and the run must end at the
           deadline pointing at it — not hang, not crash *)
        let prog = compile ~reqrep:false ~n:1 ping_system in
        let s =
          Runtime.run ~deadline_s:0.5
            ~faults:(Injected.Vanilla, one_fault Plan.Drop (Fault.To_h 0))
            ~budget:3 ~invariants:[] prog k2
        in
        checkb "not quiescent" false s.quiescent;
        checki "the drop was injected" 1 s.faults.Fault.f_drops;
        let remote_desc =
          try List.assoc "remote 0" s.watchdog
          with Not_found ->
            Alcotest.failf "no watchdog entry for remote 0 (%a)"
              Runtime.pp_stats s
        in
        checkb "remote 0 reported awaiting its ack" true
          (contains_sub ~sub:"awaiting" remote_desc));
    case "protocol error mid-run: reported, and the threads still wind \
          down" (fun () ->
        (* duplicate the home's first ack: the remote consumes the real
           one, then meets the stale copy outside its transient state —
           Async.Protocol_error.  The transport is poisoned so every
           thread exits promptly instead of blocking the join. *)
        let prog = compile ~reqrep:false ~n:1 ping_system in
        let t0 = Unix.gettimeofday () in
        let s =
          Runtime.run ~deadline_s:20.
            ~faults:(Injected.Vanilla, one_fault Plan.Dup (Fault.To_r 0))
            ~budget:3 ~invariants:[] prog k2
        in
        checkb "protocol error surfaced" true (s.protocol_errors <> []);
        checkb "error names the stale ack" true
          (List.exists (contains_sub ~sub:"ack") s.protocol_errors);
        checkb "run ended promptly, not at the deadline" true
          (Unix.gettimeofday () -. t0 < 10.));
    case "fault-injected runs are deterministic per seed" (fun () ->
        let prog = Link.compile ~n:2 (Migratory.system ()) in
        let go () =
          Runtime.run
            ~faults:
              (Injected.Hardened, Plan.random ~n:2 ~seed:5 (fspec "drop=1,dup=1"))
            ~budget:20
            ~invariants:(Migratory.async_invariants prog)
            prog k2
        in
        let s1 = go () and s2 = go () in
        assert_clean "hardened run 1" s1;
        assert_clean "hardened run 2" s2;
        (* interleavings are the OS scheduler's, but the injected faults
           are the plan's alone *)
        checkb "identical injections" true
          (s1.faults.Fault.f_drops = s2.faults.Fault.f_drops
          && s1.faults.Fault.f_dups = s2.faults.Fault.f_dups
          && s1.faults.Fault.f_delays = s2.faults.Fault.f_delays);
        checki "both faults fired" 2
          (s1.faults.Fault.f_drops + s1.faults.Fault.f_dups));
    case "hardened transport survives drops, dups and delays" (fun () ->
        let prog = Link.compile ~n:3 Invalidate.system in
        let s =
          Runtime.run
            ~faults:
              ( Injected.Hardened,
                Plan.random ~n:3 ~seed:13 (fspec "drop=2,dup=2,delay=2") )
            ~budget:40
            ~invariants:(Invalidate.async_invariants prog)
            prog k2
        in
        assert_clean "hardened invalidate" s;
        checkb "faults actually injected" true (Fault.injected s.faults >= 4);
        checkb "repair traffic flowed" true (s.faults.Fault.f_retransmits >= 1));
  ]

let suite = ("runtime", tests)
