(* The network-fault model: budget parsing, the fault-injected checker
   semantics (vanilla loses quiescence/liveness, hardened restores it),
   deterministic plans, and the simulator's fault driver. *)
open Ccr_refine
open Ccr_faults
open Test_util
module Explore = Ccr_modelcheck.Explore
module Graph = Ccr_modelcheck.Graph

let spec s =
  match Fault.parse s with
  | Ok sp -> sp
  | Error m -> Alcotest.failf "Fault.parse %S: %s" s m

let injected_system mode sp prog cfg =
  Explore.
    {
      init = Injected.initial sp prog cfg;
      succ = Injected.successors mode sp prog cfg;
      encode = Injected.encode;
      canon = None;
    }

let k2 = Async.{ k = 2 }
let mig n = compile ~n (Ccr_protocols.Migratory.system ())

let explore ?(jobs = 1) ?(max_states = 200_000) ~invariants sys =
  if jobs > 1 then
    Explore.par_run ~jobs ~max_states ~check_deadlock:true ~trace:true
      ~invariants sys
  else
    Explore.run ~max_states ~check_deadlock:true ~trace:true ~invariants sys

let lifted prog invs =
  Injected.no_wedge :: List.map Injected.lift_invariant (invs prog)

(* Per-remote liveness on the injected graph: can remote [i] always still
   complete a rendezvous? *)
let starved_remotes ?(max_states = 200_000) ~n sys =
  let g = Graph.build ~max_states sys in
  checkb "graph complete" false g.Graph.truncated;
  List.filter
    (fun i ->
      Graph.violates_ag_ef g
        ~progress:(fun l ->
          match l with
          | Injected.Step al -> Injected.completes al && al.Async.actor = i
          | Injected.Fault _ -> false)
      <> [])
    (List.init n (fun i -> i))

let tests =
  [
    case "fault spec parses, prints, re-parses" (fun () ->
        let sp = spec "drop=1@ack,dup=2,delay=1@req,pause=1" in
        checki "drop" 1 sp.Fault.drop;
        checkb "drop filter" true (sp.Fault.drop_on = Fault.Kack);
        checki "dup" 2 sp.Fault.dup;
        checkb "dup filter" true (sp.Fault.dup_on = Fault.Kany);
        checki "delay" 1 sp.Fault.delay;
        checkb "delay filter" true (sp.Fault.delay_on = Fault.Kreq);
        checki "pause" 1 sp.Fault.pause;
        checki "total" 5 (Fault.total sp);
        let rendered = Fmt.str "%a" Fault.pp sp in
        checkb "round-trips" true (spec rendered = sp);
        checkb "none" true (Fault.is_none (spec ""));
        List.iter
          (fun bad ->
            checkb bad true (Result.is_error (Fault.parse bad)))
          [ "drop"; "drop=x"; "pause=1@ack"; "frob=1"; "drop=1@wat" ]);
    case "vanilla drop=1 deadlocks the smallest protocol" (fun () ->
        let prog = compile ~n:1 ping_system in
        let r =
          explore ~invariants:(lifted prog (fun _ -> []))
            (injected_system Injected.Vanilla (spec "drop=1") prog k2)
        in
        match r.Explore.outcome with
        | Explore.Deadlock _ ->
          checkb "trace is concrete" true (r.Explore.trace <> None)
        | o ->
          Alcotest.failf "expected a deadlock, got %a"
            (Explore.pp_outcome (Injected.pp_fstate prog))
            o);
    case "hardened drop=1 restores quiescence on the smallest protocol"
      (fun () ->
        let prog = compile ~n:1 ping_system in
        let sys =
          injected_system Injected.Hardened (spec "drop=1") prog k2
        in
        let r = explore ~invariants:(lifted prog (fun _ -> [])) sys in
        assert_complete "hardened ping" r;
        checkb "no remote starves" true (starved_remotes ~n:1 sys = []));
    case "vanilla dup wedges on a stale ack; hardened absorbs it" (fun () ->
        let prog = compile ~reqrep:false ~n:1 ping_system in
        let vanilla =
          explore ~invariants:(lifted prog (fun _ -> []))
            (injected_system Injected.Vanilla (spec "dup=1@ack") prog k2)
        in
        (match vanilla.Explore.outcome with
        | Explore.Violation { invariant; _ } ->
          checks "which invariant" "no_protocol_error" invariant
        | o ->
          Alcotest.failf "expected a wedge violation, got %a"
            (Explore.pp_outcome (Injected.pp_fstate prog))
            o);
        let hardened =
          explore ~invariants:(lifted prog (fun _ -> []))
            (injected_system Injected.Hardened (spec "dup=1@ack") prog k2)
        in
        assert_complete "hardened dup" hardened);
    case "a single dropped ack starves a migratory remote (liveness, not \
          safety)" (fun () ->
        let prog = mig 2 in
        let sp = spec "drop=1@ack" in
        let sys = injected_system Injected.Vanilla sp prog k2 in
        let r =
          explore
            ~invariants:
              (lifted prog Ccr_protocols.Migratory.async_invariants)
            sys
        in
        (* coherence survives — the failure is pure liveness *)
        assert_complete "vanilla migratory safety" r;
        checkb "some remote is starvable" true (starved_remotes ~n:2 sys <> []);
        (* the hardened transport repairs it under the same budget *)
        let hsys = injected_system Injected.Hardened sp prog k2 in
        let hr =
          explore
            ~invariants:
              (lifted prog Ccr_protocols.Migratory.async_invariants)
            hsys
        in
        assert_complete "hardened migratory" hr;
        checkb "nobody starves hardened" true (starved_remotes ~n:2 hsys = []));
    case "fault exploration is deterministic across -j" (fun () ->
        let prog = mig 2 in
        let invariants =
          lifted prog Ccr_protocols.Migratory.async_invariants
        in
        let sys () =
          injected_system Injected.Vanilla (spec "drop=1@ack") prog k2
        in
        let r1 = explore ~invariants (sys ()) in
        let r4 = explore ~jobs:4 ~invariants (sys ()) in
        assert_complete "j=1" r1;
        assert_complete "j=4" r4;
        checki "states agree" r1.Explore.states r4.Explore.states;
        checki "transitions agree" r1.Explore.transitions
          r4.Explore.transitions);
    case "pause faults apply at the rendezvous level and resolve" (fun () ->
        let prog = compile ~n:2 ping_system in
        let sp = spec "pause=1" in
        let init = Injected.rv_initial sp prog in
        let labels = List.map fst (Injected.rv_successors prog init) in
        checkb "a pause is offered" true
          (List.exists
             (function Injected.Rv_pause _ -> true | _ -> false)
             labels);
        let r =
          Explore.run ~max_states:200_000 ~trace:true ~invariants:[]
            Explore.
              {
                init;
                succ = Injected.rv_successors prog;
                encode = Injected.rv_encode;
                canon = None;
              }
        in
        assert_complete "rv pause" r);
    case "plan cursors count per channel and filter" (fun () ->
        let sp = spec "drop=1@ack" in
        let plan =
          Plan.make ~n:2 sp
            [
              {
                Plan.ev_kind = Plan.Drop;
                ev_on = Fault.Kack;
                ev_chan = Fault.To_r 0;
                ev_ord = 2;
              };
            ]
        in
        let cur = Plan.cursor plan in
        let decide ch w = Plan.decide plan cur ch w in
        (* nacks advance the @any counter but not the @ack one *)
        checkb "nack delivered" true
          (decide (Fault.To_r 0) Wire.Nack = Plan.Deliver);
        checkb "first ack delivered" true
          (decide (Fault.To_r 0) Wire.Ack = Plan.Deliver);
        (* other channels have independent counters *)
        checkb "other channel untouched" true
          (decide (Fault.To_r 1) Wire.Ack = Plan.Deliver);
        checkb "second ack dropped" true
          (decide (Fault.To_r 0) Wire.Ack = Plan.Drop);
        checkb "third ack delivered" true
          (decide (Fault.To_r 0) Wire.Ack = Plan.Deliver));
    case "random plans are a pure function of the seed" (fun () ->
        let sp = spec "drop=2,dup=1,delay=1,pause=1" in
        let p1 = Plan.random ~n:3 ~seed:9 sp in
        let p2 = Plan.random ~n:3 ~seed:9 sp in
        checkb "same seed, same plan" true (p1 = p2);
        let p3 = Plan.random ~n:3 ~seed:10 sp in
        checkb "different seed, different plan" true (p1 <> p3);
        checki "every channel fault placed" 4 (List.length p1.Plan.events);
        checki "every pause windowed" 1 (List.length p1.Plan.windows));
    case "sim: vanilla drop deadlocks and reports the blocked \
          configuration" (fun () ->
        let prog = mig 2 in
        let plan = Plan.random ~n:2 ~seed:7 (spec "drop=1") in
        let m =
          Ccr_simulate.Sim.run ~seed:7
            ~faults:(Injected.Vanilla, plan)
            ~steps:2000 prog k2 Ccr_simulate.Sched.uniform
        in
        checkb "deadlocked" true m.Ccr_simulate.Sim.deadlocked;
        checkb "blocked configuration reported" true
          (m.Ccr_simulate.Sim.blocked <> None);
        checki "the drop was injected" 1
          m.Ccr_simulate.Sim.faults.Fault.f_drops);
    case "sim: hardened run retransmits through the same plan and \
          completes" (fun () ->
        let prog = mig 2 in
        let plan = Plan.random ~n:2 ~seed:7 (spec "drop=1") in
        let m =
          Ccr_simulate.Sim.run ~seed:7
            ~faults:(Injected.Hardened, plan)
            ~steps:2000 prog k2 Ccr_simulate.Sched.uniform
        in
        checkb "no deadlock" false m.Ccr_simulate.Sim.deadlocked;
        checkb "no wedge" true (m.Ccr_simulate.Sim.wedged = None);
        checki "drop injected" 1 m.Ccr_simulate.Sim.faults.Fault.f_drops;
        checkb "retransmit repaired it" true
          (m.Ccr_simulate.Sim.faults.Fault.f_retransmits >= 1);
        checkb "work still happened" true
          (m.Ccr_simulate.Sim.rendezvous > 100));
    case "sim fault injection is deterministic given the seed" (fun () ->
        let prog = mig 2 in
        let go () =
          let plan = Plan.random ~n:2 ~seed:5 (spec "drop=2,dup=1,delay=1") in
          Ccr_simulate.Sim.run ~seed:5
            ~faults:(Injected.Hardened, plan)
            ~steps:3000 prog k2 Ccr_simulate.Sched.uniform
        in
        let m1 = go () and m2 = go () in
        checki "steps" m1.Ccr_simulate.Sim.steps m2.Ccr_simulate.Sim.steps;
        checki "rendezvous" m1.Ccr_simulate.Sim.rendezvous
          m2.Ccr_simulate.Sim.rendezvous;
        checkb "fault counts identical" true
          (m1.Ccr_simulate.Sim.faults = m2.Ccr_simulate.Sim.faults);
        checkb "faults actually fired" true
          (Fault.injected m1.Ccr_simulate.Sim.faults = 4));
    case "budget bounds the injected faults" (fun () ->
        (* every explored vanilla path spends at most the budget *)
        let prog = compile ~n:1 ping_system in
        let sp = spec "drop=1,dup=1" in
        let seen = Hashtbl.create 64 in
        let rec walk fs =
          let key = Injected.encode fs in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            let b = fs.Injected.left in
            checkb "budget never negative" true
              (b.Injected.b_drop >= 0 && b.Injected.b_dup >= 0);
            List.iter
              (fun (_, fs') -> walk fs')
              (Injected.successors Injected.Vanilla sp prog k2 fs)
          end
        in
        walk (Injected.initial sp prog k2);
        checkb "explored something" true (Hashtbl.length seen > 10));
  ]

let suite = ("faults", tests)
