(* The run journal: the JSON codec (render + parse round-trips), the
   JSONL event buffer, and the load-bearing determinism property — a
   journal fed by the engines' [on_level] hook and the provenance-derived
   trace is byte-identical at every [-j] setting, including runs that end
   in a violation.  The [--workers] half of that property forks, so it
   lives in suite_mpx (which must run before any domain spawns). *)

open Test_util
module J = Ccr_obs.Journal
module Explore = Ccr_modelcheck.Explore
module Graph = Ccr_modelcheck.Graph
module Prov = Ccr_modelcheck.Vstore.Prov
module Async = Ccr_refine.Async
module Registry = Ccr_protocols.Registry

let counter_system ~limit =
  Explore.
    {
      init = 0;
      succ =
        (fun s ->
          if s >= limit then []
          else [ ("inc", s + 1); ("double", min limit (2 * s + 1)) ]);
      encode = string_of_int;
      canon = None;
    }

(* ---- codec -------------------------------------------------------------- *)

let codec_tests =
  [
    case "render: compact, caller field order" (fun () ->
        checks "object"
          {|{"b":1,"a":[true,null,"x"]}|}
          (J.to_string
             (J.Obj
                [ ("b", J.Int 1); ("a", J.List [ J.Bool true; J.Null; J.Str "x" ]) ])));
    case "render: string escapes" (fun () ->
        checks "escapes" {|"a\"b\\c\nd\u0001"|}
          (J.to_string (J.Str "a\"b\\c\nd\001")));
    case "render: floats" (fun () ->
        checks "finite" "1.5" (J.to_string (J.Float 1.5));
        checks "nan is null" "null" (J.to_string (J.Float Float.nan)));
    case "parse: round-trips rendered values" (fun () ->
        List.iter
          (fun v ->
            match J.parse (J.to_string v) with
            | Some v' -> checks "round-trip" (J.to_string v) (J.to_string v')
            | None -> Alcotest.failf "failed to parse %s" (J.to_string v))
          [
            J.Null; J.Bool false; J.Int (-42); J.Float 2.5;
            J.Str "he\"llo\n\\world";
            J.List [ J.Int 1; J.List []; J.Obj [] ];
            J.Obj [ ("k", J.Str "v"); ("l", J.List [ J.Bool true ]) ];
          ]);
    case "parse: whitespace, exponents, unicode" (fun () ->
        (match J.parse "  { \"a\" : 1e3 , \"b\" : [ 1 , 2 ] }  " with
        | Some v ->
          checkb "1e3 is float" true (J.get_float (J.find v "a") = Some 1000.);
          checkb "list" true
            (J.get_list (J.find v "b") = Some [ J.Int 1; J.Int 2 ])
        | None -> Alcotest.fail "parse failed");
        match J.parse {|"éA"|} with
        | Some (J.Str s) -> checks "utf-8" "\xc3\xa9A" s
        | _ -> Alcotest.fail "unicode escape failed");
    case "parse: rejects malformed input" (fun () ->
        List.iter
          (fun s -> checkb ("rejects " ^ s) true (J.parse s = None))
          [ "{"; "[1,]"; "\"open"; "tru"; "1 2"; "{\"a\":}"; "" ]);
    case "accessors tolerate shape mismatches" (fun () ->
        let v = J.Obj [ ("i", J.Int 3); ("f", J.Float 4.0); ("s", J.Str "x") ] in
        checkb "int" true (J.get_int (J.find v "i") = Some 3);
        checkb "integral float as int" true (J.get_int (J.find v "f") = Some 4);
        checkb "str not int" true (J.get_int (J.find v "s") = None);
        checkb "missing" true (J.find v "zzz" = None);
        checkb "find on non-object" true (J.find (J.Int 1) "k" = None));
  ]

(* ---- the buffer ---------------------------------------------------------- *)

let buffer_tests =
  [
    case "events carry the schema version and kind" (fun () ->
        let j = J.create () in
        J.event j "config" [ ("n", J.Int 2) ];
        J.event j "end" [];
        checki "count" 2 (J.count j);
        let lines =
          String.split_on_char '\n' (J.contents j)
          |> List.filter (fun l -> l <> "")
        in
        checki "two lines" 2 (List.length lines);
        List.iter
          (fun l ->
            match J.parse l with
            | Some v ->
              checkb "versioned" true
                (J.get_int (J.find v "v") = Some J.schema_version);
              checkb "kinded" true (J.get_str (J.find v "ev") <> None)
            | None -> Alcotest.fail "journal line does not parse")
          lines;
        checki "bytes tracks contents" (String.length (J.contents j))
          (J.bytes j));
    case "append_to_file accumulates line blocks" (fun () ->
        let path = Filename.temp_file "ccr_journal" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let j1 = J.create () in
            J.event j1 "config" [];
            J.append_to_file j1 path;
            let j2 = J.create () in
            J.event j2 "config" [];
            J.event j2 "end" [];
            J.append_to_file j2 path;
            let ic = open_in path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            checks "both blocks, in order"
              (J.contents j1 ^ J.contents j2)
              s));
  ]

(* ---- engine determinism --------------------------------------------------- *)

(* A journal fed by [on_level], as bin/ccr wires it. *)
let journal_of_run run =
  let j = J.create () in
  let on_level ~depth ~states =
    J.event j "level" [ ("depth", J.Int depth); ("states", J.Int states) ]
  in
  let r = run ~on_level in
  (J.contents j, r)

let trace_sig pp_label encode (r : (_, _) Explore.stats) =
  match r.Explore.trace with
  | None -> []
  | Some path ->
    List.map
      (fun (l, st) -> (Option.map (Fmt.str "%a" pp_label) l, encode st))
      path

(* Every registry protocol at n=2, async level, with an artificial
   invariant that rejects the last state sequential BFS discovers — so
   every engine must find a violation deep in the space and rebuild the
   same counterexample. *)
let registry_violation_cases jobs_list =
  List.iter
    (fun (e : Registry.t) ->
      let prog = e.Registry.instantiate ~reqrep:true ~n:2 in
      let cfg = Async.{ k = 2 } in
      let sys =
        Explore.
          {
            init = Async.initial prog cfg;
            succ = Async.successors prog cfg;
            encode = Async.encode;
            canon = None;
          }
      in
      let g = Graph.build sys in
      let target = Async.encode g.Graph.states.(Array.length g.Graph.states - 1) in
      let invariants =
        [ ("not-last", fun st -> Async.encode st <> target) ]
      in
      let legacy = Explore.run ~trace:true ~invariants sys in
      let legacy_sig = trace_sig Async.pp_label Async.encode legacy in
      checkb
        (Fmt.str "%s: legacy run violates" e.Registry.name)
        true
        (match legacy.Explore.outcome with
        | Explore.Violation _ -> true
        | _ -> false);
      List.iter
        (fun jobs ->
          let prov = Prov.create () in
          let r =
            if jobs = 0 then Explore.run ~prov ~trace:true ~invariants sys
            else Explore.par_run ~jobs ~prov ~trace:true ~invariants sys
          in
          checkb
            (Fmt.str "%s: prov trace matches legacy (j=%d)" e.Registry.name
               jobs)
            true
            (trace_sig Async.pp_label Async.encode r = legacy_sig))
        jobs_list)
    Registry.all

let engine_tests =
  [
    case "journal is byte-identical across -j (complete run)" (fun () ->
        let sys = counter_system ~limit:400 in
        let seq, rs =
          journal_of_run (fun ~on_level -> Explore.run ~on_level sys)
        in
        assert_complete "seq" rs;
        checkb "seq journal non-empty" true (String.length seq > 0);
        List.iter
          (fun jobs ->
            let par, rp =
              journal_of_run (fun ~on_level ->
                  Explore.par_run ~jobs ~on_level sys)
            in
            assert_complete (Fmt.str "par j=%d" jobs) rp;
            checks (Fmt.str "identical at j=%d" jobs) seq par)
          [ 2; 4 ]);
    case "journal is byte-identical across -j (violation, prov)" (fun () ->
        let invariants = [ ("small", fun s -> s < 210) ] in
        let sys = counter_system ~limit:400 in
        let run_with engine =
          let prov = Prov.create () in
          journal_of_run (fun ~on_level ->
              engine ~prov ~on_level ~invariants sys)
        in
        let seq, rs =
          run_with (fun ~prov ~on_level ~invariants sys ->
              Explore.run ~prov ~on_level ~invariants ~trace:true sys)
        in
        let seq_sig = trace_sig Fmt.string string_of_int rs in
        checkb "violates" true
          (match rs.Explore.outcome with
          | Explore.Violation _ -> true
          | _ -> false);
        List.iter
          (fun jobs ->
            let par, rp =
              run_with (fun ~prov ~on_level ~invariants sys ->
                  Explore.par_run ~jobs ~prov ~on_level ~invariants
                    ~trace:true sys)
            in
            checks (Fmt.str "identical at j=%d" jobs) seq par;
            checkb
              (Fmt.str "same trace at j=%d" jobs)
              true
              (trace_sig Fmt.string string_of_int rp = seq_sig))
          [ 2; 4 ]);
    slow_case
      "registry: prov counterexamples match the legacy fallback (-j 1/4)"
      (fun () -> registry_violation_cases [ 0; 1; 4 ]);
    case "violation at discovery wins over a same-level deadlock"
      (fun () ->
        (* state 3 deadlocks; state 4 violates.  Invariants are checked
           when a state is {e discovered} (while expanding 0), deadlock
           only when a state is {e expanded} (next level) — so the
           sequential order is the violation, and every engine must agree
           on it. *)
        let sys =
          Explore.
            {
              init = 0;
              succ =
                (fun s ->
                  if s = 0 then [ ("a", 3); ("b", 4) ]
                  else if s = 3 then []
                  else [ ("c", s + 10) ]);
              encode = string_of_int;
              canon = None;
            }
        in
        let invariants = [ ("not4", fun s -> s <> 4) ] in
        let expect engine name =
          let prov = Prov.create () in
          let r =
            engine ~prov ~check_deadlock:true ~trace:true ~invariants sys
          in
          match r.Explore.outcome with
          | Explore.Violation { invariant; state } ->
            checks (name ^ ": invariant") "not4" invariant;
            checki (name ^ ": state") 4 state;
            checkb (name ^ ": trace 0->4") true
              (trace_sig Fmt.string string_of_int r
              = [ (None, "0"); (Some "b", "4") ])
          | o ->
            Alcotest.failf "%s: expected violation, got %a" name
              (Explore.pp_outcome Fmt.int) o
        in
        expect
          (fun ~prov ~check_deadlock ~trace ~invariants sys ->
            Explore.run ~prov ~check_deadlock ~trace ~invariants sys)
          "seq";
        expect
          (fun ~prov ~check_deadlock ~trace ~invariants sys ->
            Explore.par_run ~jobs:4 ~prov ~check_deadlock ~trace ~invariants
              sys)
          "par")
  ]

let tests = codec_tests @ buffer_tests @ engine_tests
let suite = ("journal", tests)
