(* The observability layer: metrics registry (sharded counters, gauges,
   log-scale histograms), the trace collector, progress rendering, and
   the checker-side message meter agreeing across engine configurations. *)

open Test_util
module M = Ccr_obs.Metrics
module T = Ccr_obs.Trace
module P = Ccr_obs.Progress
module Explore = Ccr_modelcheck.Explore
module Async = Ccr_refine.Async
module Wire = Ccr_refine.Wire

let counter_total snap name =
  match List.assoc_opt name snap.M.counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %s missing from snapshot" name

let gauge_value snap name =
  match List.assoc_opt name snap.M.gauges with
  | Some v -> v
  | None -> Alcotest.failf "gauge %s missing from snapshot" name

let hist snap name =
  match List.assoc_opt name snap.M.hists with
  | Some h -> h
  | None -> Alcotest.failf "histogram %s missing from snapshot" name

(* The checker-side message meter over a protocol's async system: counts
   per enumerated transition, as bin/ccr wires it. *)
let metered_async_system reg prog =
  let req = M.counter reg "msg.req"
  and ack = M.counter reg "msg.ack"
  and nack = M.counter reg "msg.nack"
  and data = M.counter reg "msg.data" in
  let occ = M.histogram reg "home_buffer_occupancy" in
  let meter =
    Async.
      {
        m_sent =
          (fun w ->
            match w with
            | Wire.Req m ->
              M.incr req;
              if m.Wire.m_payload <> [] then M.incr data
            | Wire.Ack -> M.incr ack
            | Wire.Nack -> M.incr nack);
        m_buf = (fun o -> M.observe occ o);
      }
  in
  let cfg = Async.{ k = 2 } in
  Explore.
    {
      init = Async.initial prog cfg;
      succ = Async.successors ~meter prog cfg;
      encode = Async.encode;
      canon = None;
    }

let tests =
  [
    case "histogram bucket boundaries" (fun () ->
        checki "v=0 -> bucket 0" 0 (M.bucket_of 0);
        checki "v<0 -> bucket 0" 0 (M.bucket_of (-5));
        checki "v=1 -> bucket 1" 1 (M.bucket_of 1);
        checki "v=2 -> bucket 2" 2 (M.bucket_of 2);
        checki "v=3 -> bucket 2" 2 (M.bucket_of 3);
        checki "v=4 -> bucket 3" 3 (M.bucket_of 4);
        checki "v=7 -> bucket 3" 3 (M.bucket_of 7);
        checki "v=8 -> bucket 4" 4 (M.bucket_of 8);
        (* every power of two opens a new bucket, until the top one *)
        for b = 1 to M.n_buckets - 2 do
          checki (Fmt.str "2^%d opens bucket" (b - 1)) b
            (M.bucket_of (1 lsl (b - 1)));
          checki
            (Fmt.str "2^%d - 1 closes bucket" b)
            b
            (M.bucket_of ((1 lsl b) - 1))
        done;
        (* the top bucket absorbs everything beyond the last boundary *)
        checki "max_int lands in the top bucket" (M.n_buckets - 1)
          (M.bucket_of max_int);
        (* ranges tile the integers: bucket b starts where b-1 ended *)
        for b = 1 to M.n_buckets - 1 do
          let _, hi_prev = M.bucket_range (b - 1) in
          let lo, _ = M.bucket_range b in
          checki (Fmt.str "bucket %d contiguous" b) (hi_prev + 1) lo
        done;
        let lo0, hi0 = M.bucket_range 0 in
        checkb "bucket 0 starts at min_int" true (lo0 = min_int);
        checki "bucket 0 ends at 0" 0 hi0;
        let _, hi_top = M.bucket_range (M.n_buckets - 1) in
        checkb "top bucket ends at max_int" true (hi_top = max_int));
    case "histogram observe fills the right buckets" (fun () ->
        let reg = M.create () in
        let h = M.histogram reg "h" in
        List.iter (M.observe h) [ 0; 1; 1; 3; 8; 1000 ];
        let s = hist (M.snapshot reg) "h" in
        checki "count" 6 s.M.count;
        checkb "sum" true (s.M.sum = 1013.0);
        checki "bucket 0" 1 s.M.buckets.(0);
        checki "bucket 1 (v=1)" 2 s.M.buckets.(1);
        checki "bucket 2 (v in 2..3)" 1 s.M.buckets.(2);
        checki "bucket 4 (v in 8..15)" 1 s.M.buckets.(4);
        checki "bucket 10 (v in 512..1023)" 1 s.M.buckets.(10));
    case "observe_n is observe repeated" (fun () ->
        let reg = M.create () in
        let a = M.histogram reg "a" and b = M.histogram reg "b" in
        M.observe_n a 5 3;
        M.observe_n a 0 2;
        M.observe_n a 9 0;
        for _ = 1 to 3 do
          M.observe b 5
        done;
        M.observe b 0;
        M.observe b 0;
        let s = M.snapshot reg in
        let ha = hist s "a" and hb = hist s "b" in
        checki "counts agree" hb.M.count ha.M.count;
        checkb "sums agree" true (ha.M.sum = hb.M.sum);
        checkb "buckets agree" true (ha.M.buckets = hb.M.buckets));
    case "counters merge across domains" (fun () ->
        let reg = M.create () in
        let c = M.counter reg "c" in
        let per_domain = 10_000 in
        let body () =
          for _ = 1 to per_domain do
            M.incr c
          done
        in
        let doms = List.init 4 (fun _ -> Domain.spawn body) in
        body ();
        List.iter Domain.join doms;
        checki "five shards sum" (5 * per_domain)
          (counter_total (M.snapshot reg) "c"));
    case "gauges merge by maximum across domains" (fun () ->
        let reg = M.create () in
        let g = M.gauge reg "g" in
        let doms =
          List.init 4 (fun i ->
              Domain.spawn (fun () -> M.set g (float_of_int (10 * (i + 1)))))
        in
        M.set g 5.0;
        List.iter Domain.join doms;
        checkb "max wins" true (gauge_value (M.snapshot reg) "g" = 40.0));
    case "re-registering a name returns the same metric" (fun () ->
        let reg = M.create () in
        M.incr (M.counter reg "x");
        M.incr (M.counter reg "x");
        checki "one counter, two increments" 2
          (counter_total (M.snapshot reg) "x");
        checki "one entry" 1 (List.length (M.snapshot reg).M.counters));
    case "reset zeroes every shard" (fun () ->
        let reg = M.create () in
        let c = M.counter reg "c" and h = M.histogram reg "h" in
        M.add c 7;
        M.observe h 3;
        M.reset reg;
        let s = M.snapshot reg in
        checki "counter zero" 0 (counter_total s "c");
        checki "hist empty" 0 (hist s "h").M.count);
    case "meter counts agree across jobs 1, 2, 4" (fun () ->
        (* per-enumerated-transition semantics: a Complete run expands
           every reachable state exactly once whatever the engine, so the
           metered message counts must match exactly *)
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let totals jobs =
          let reg = M.create () in
          let sys = metered_async_system reg prog in
          let r =
            if jobs = 1 then Explore.run sys else Explore.par_run ~jobs sys
          in
          assert_complete (Fmt.str "j=%d" jobs) r;
          let s = M.snapshot reg in
          ( counter_total s "msg.req",
            counter_total s "msg.ack",
            counter_total s "msg.nack",
            counter_total s "msg.data",
            (hist s "home_buffer_occupancy").M.count )
        in
        let seq = totals 1 in
        let req, _, _, _, succ_calls = seq in
        checkb "messages were counted" true (req > 0);
        checkb "one occupancy sample per expansion" true (succ_calls > 0);
        checkb "j=2 agrees" true (totals 2 = seq);
        checkb "j=4 agrees" true (totals 4 = seq));
    case "metrics JSON carries every metric" (fun () ->
        let reg = M.create () in
        M.add (M.counter reg "msg.req") 41;
        M.set (M.gauge reg "states_per_sec") 1234.5;
        M.observe (M.histogram reg "lat") 6;
        let json = M.to_json (M.snapshot reg) in
        checkb "object" true
          (String.length json > 2 && json.[0] = '{');
        List.iter
          (fun sub -> checkb ("contains " ^ sub) true (contains_sub ~sub json))
          [
            "\"msg.req\": 41";
            "\"states_per_sec\": 1234.5";
            "\"lat\": {\"count\": 1";
            "\"buckets\":";
          ]);
    case "trace collector emits spans and instants" (fun () ->
        T.start ();
        checkb "enabled" true (T.enabled ());
        let v = T.with_span "work" ~args:[ ("n", T.Int 3) ] (fun () -> 17) in
        checki "span returns the thunk's value" 17 v;
        T.instant "nack";
        let json = T.stop () in
        checkb "disabled after stop" true (not (T.enabled ()));
        List.iter
          (fun sub -> checkb ("contains " ^ sub) true (contains_sub ~sub json))
          [
            "\"traceEvents\"";
            "\"name\": \"work\"";
            "\"ph\": \"X\"";
            "\"dur\":";
            "\"args\": {\"n\": 3}";
            "\"name\": \"nack\"";
            "\"ph\": \"i\"";
            "\"s\": \"g\"";
            "\"dropped\": 0";
          ]);
    case "span survives an exception" (fun () ->
        T.start ();
        (try T.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
        let json = T.stop () in
        checkb "span recorded" true (contains_sub ~sub:"\"boom\"" json));
    case "tracer disabled is a no-op" (fun () ->
        checkb "off" true (not (T.enabled ()));
        T.instant "ignored";
        checki "thunk still runs" 9 (T.with_span "ignored" (fun () -> 9)));
    case "trace cap drops events past the ring and flags it" (fun () ->
        T.start ~cap:3 ();
        for i = 1 to 5 do
          T.instant (Fmt.str "ev%d" i)
        done;
        checki "dropped counted live" 2 (T.dropped ());
        let json = T.stop () in
        List.iter
          (fun sub -> checkb ("contains " ^ sub) true (contains_sub ~sub json))
          [ "\"ev1\""; "\"ev2\""; "\"ev3\""; "\"dropped\": 2" ];
        List.iter
          (fun sub ->
            checkb ("capped out " ^ sub) true (not (contains_sub ~sub json)))
          [ "\"ev4\""; "\"ev5\"" ];
        checki "dropped resets with the collector" 0 (T.dropped ()));
    case "OpenMetrics rendering of a snapshot" (fun () ->
        let reg = M.create () in
        M.add (M.counter reg "msg.req") 41;
        M.set (M.gauge reg "states_per_sec") 1234.5;
        let h = M.histogram reg "lat" in
        M.observe h 1;
        M.observe h 6;
        let om = M.to_openmetrics (M.snapshot reg) in
        List.iter
          (fun sub -> checkb ("contains " ^ sub) true (contains_sub ~sub om))
          [
            (* dots sanitized, counters get the _total suffix *)
            "# TYPE msg_req counter";
            "msg_req_total 41";
            "# TYPE states_per_sec gauge";
            "states_per_sec 1234.5";
            "# TYPE lat histogram";
            "lat_bucket{le=";
            (* cumulative: the +Inf bucket equals the count *)
            "lat_bucket{le=\"+Inf\"} 2";
            "lat_sum 7";
            "lat_count 2";
          ];
        checkb "ends with EOF marker" true
          (let tail = "# EOF\n" in
           String.length om >= String.length tail
           && String.sub om
                (String.length om - String.length tail)
                (String.length tail)
              = tail);
        (* buckets are cumulative and non-decreasing *)
        let lines = String.split_on_char '\n' om in
        let bucket_counts =
          List.filter_map
            (fun l ->
              if
                String.length l > 11
                && String.sub l 0 11 = "lat_bucket{"
              then
                match String.rindex_opt l ' ' with
                | Some i ->
                  int_of_string_opt
                    (String.sub l (i + 1) (String.length l - i - 1))
                | None -> None
              else None)
            lines
        in
        checkb "at least two buckets rendered" true
          (List.length bucket_counts >= 2);
        let rec nondecreasing = function
          | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
          | _ -> true
        in
        checkb "cumulative buckets" true (nondecreasing bucket_counts));
    case "progress render mentions the load-bearing numbers" (fun () ->
        let s =
          P.
            {
              states = 123_456;
              transitions = 700_000;
              depth = 17;
              frontier = 999;
              rate = 250_000.0;
              mem_bytes = 3 * 1024 * 1024;
              shard_balance = 1.25;
              elapsed_s = 2.5;
            }
        in
        let line = P.render s in
        List.iter
          (fun sub -> checkb ("mentions " ^ sub) true (contains_sub ~sub line))
          [ "123456"; "depth 17"; "999" ];
        checkb "single line" true (not (String.contains line '\n')));
  ]

let suite = ("obs", tests)
