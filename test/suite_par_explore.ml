(* Parallel/sequential equivalence of the exploration engines.

   The contract of [Explore.par_run] (DESIGN.md "Parallel exploration"):
   for runs that complete, [states] and [transitions] equal the sequential
   [Explore.run]'s exactly, for any number of domains; violations and
   deadlocks are still detected, with the canonical counterexample coming
   from the documented sequential fallback re-run. *)

open Test_util
module Explore = Ccr_modelcheck.Explore
module Registry = Ccr_protocols.Registry

let jobs_list = [ 1; 2; 4 ]

(* Same synthetic systems as suite_explore: known counts. *)
let counter_system ~limit =
  Explore.
    {
      init = 0;
      succ =
        (fun s ->
          if s >= limit then []
          else [ ("inc", s + 1); ("double", min limit (2 * s + 1)) ]);
      encode = string_of_int;
      canon = None;
    }

let bits_system k =
  Explore.
    {
      init = 0;
      succ =
        (fun s -> List.init k (fun i -> (Fmt.str "flip%d" i, s lxor (1 lsl i))));
      encode = string_of_int;
      canon = None;
    }

let check_equiv name sys =
  let seq = Explore.run sys in
  List.iter
    (fun jobs ->
      let par = Explore.par_run ~jobs sys in
      checki (Fmt.str "%s: states (j=%d)" name jobs) seq.states par.states;
      checki
        (Fmt.str "%s: transitions (j=%d)" name jobs)
        seq.transitions par.transitions;
      checkb
        (Fmt.str "%s: complete (j=%d)" name jobs)
        true
        (outcome_complete par.outcome);
      checki
        (Fmt.str "%s: max_depth (j=%d)" name jobs)
        seq.max_depth par.max_depth;
      checkb
        (Fmt.str "%s: peak_frontier positive (j=%d)" name jobs)
        true (par.peak_frontier > 0))
    jobs_list

let tests =
  [
    case "par matches seq on synthetic systems" (fun () ->
        check_equiv "bits-8" (bits_system 8);
        check_equiv "counter-50" (counter_system ~limit:50));
    case "every registry protocol: rendezvous counts match for j in 1,2,4"
      (fun () ->
        List.iter
          (fun (e : Registry.t) ->
            match e.Registry.system with
            | None -> () (* hand-optimized: no rendezvous level *)
            | Some _ ->
              let prog = e.Registry.instantiate ~reqrep:true ~n:2 in
              check_equiv (e.Registry.name ^ " rv n=2") (rv_system prog))
          Registry.all);
    case "every registry protocol: async counts match for j in 1,2,4"
      (fun () ->
        List.iter
          (fun (e : Registry.t) ->
            let prog = e.Registry.instantiate ~reqrep:true ~n:2 in
            check_equiv (e.Registry.name ^ " async n=2") (async_system prog))
          Registry.all);
    case "async n=3 migratory: counts match across domain counts" (fun () ->
        let prog =
          compile ~n:3 (Ccr_protocols.Migratory.system ())
        in
        check_equiv "migratory async n=3" (async_system prog));
    case "seeded invariant violation is detected with a valid trace"
      (fun () ->
        List.iter
          (fun jobs ->
            let r =
              Explore.par_run ~jobs ~trace:true
                ~invariants:[ ("below7", fun s -> s < 7) ]
                (counter_system ~limit:100)
            in
            (match r.outcome with
            | Explore.Violation { invariant; state } ->
              checks "name" "below7" invariant;
              checkb "state breaks it" true (state >= 7)
            | _ -> Alcotest.fail "expected violation");
            match r.trace with
            | Some path ->
              let final = snd (List.nth path (List.length path - 1)) in
              checkb "trace ends at the violation" true (final >= 7);
              (* the fallback re-run is BFS: every prefix state holds *)
              List.iteri
                (fun i (_, s) ->
                  if i < List.length path - 1 then
                    checkb "prefix ok" true (s < 7))
                path
            | None -> Alcotest.fail "expected a trace")
          jobs_list);
    case "violation on a protocol invariant, parallel" (fun () ->
        (* seed an invariant the migratory protocol cannot satisfy: the
           home never being in its exclusive state *)
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let bad_inv =
          ( "home-never-moves",
            fun (st : Ccr_refine.Async.state) ->
              st.Ccr_refine.Async.h.h_ctl
              = (Ccr_refine.Async.initial prog { k = 2 }).Ccr_refine.Async.h
                  .h_ctl )
        in
        let r =
          Explore.par_run ~jobs:2 ~trace:true ~invariants:[ bad_inv ]
            (async_system prog)
        in
        (match r.outcome with
        | Explore.Violation { invariant; _ } ->
          checks "name" "home-never-moves" invariant
        | _ -> Alcotest.fail "expected violation");
        match r.trace with
        | Some path -> checkb "trace nonempty" true (List.length path > 1)
        | None -> Alcotest.fail "expected a trace");
    case "deadlock is detected via the sequential fallback" (fun () ->
        let r =
          Explore.par_run ~jobs:2 ~check_deadlock:true ~trace:true
            (counter_system ~limit:10)
        in
        (match r.outcome with
        | Explore.Deadlock s -> checki "deadlock at limit" 10 s
        | _ -> Alcotest.fail "expected deadlock");
        match r.trace with
        | Some path ->
          checkb "path ends at 10" true
            (snd (List.nth path (List.length path - 1)) = 10)
        | None -> Alcotest.fail "expected a trace");
    case "violation in the initial state, parallel" (fun () ->
        let r =
          Explore.par_run ~jobs:2 ~trace:true
            ~invariants:[ ("never", fun _ -> false) ]
            (bits_system 3)
        in
        match r.outcome with
        | Explore.Violation _ -> checki "only the root" 1 r.states
        | _ -> Alcotest.fail "expected violation");
    case "state cap reports Unfinished (level granularity)" (fun () ->
        let r = Explore.par_run ~jobs:2 ~max_states:10 (bits_system 8) in
        (match r.outcome with
        | Explore.Limit Explore.L_states -> ()
        | _ -> Alcotest.fail "expected state cap");
        (* the cap applies at BFS-level boundaries: at least the cap, at
           most one extra level *)
        checkb "at least the cap" true (r.states >= 10));
    case "memory cap reports Unfinished" (fun () ->
        let r = Explore.par_run ~jobs:2 ~max_mem_bytes:500 (bits_system 10) in
        match r.outcome with
        | Explore.Limit Explore.L_memory ->
          checkb "mem accounted" true (r.mem_bytes >= 500)
        | _ -> Alcotest.fail "expected memory cap");
    case "time cap triggers in the parallel engine" (fun () ->
        let slow =
          Explore.
            {
              init = 0;
              succ =
                (fun s ->
                  ignore (Sys.opaque_identity (List.init 2000 Fun.id));
                  [ ("n", (s + 1) mod 1000000); ("m", (s + 7) mod 1000000) ]);
              encode = string_of_int;
              canon = None;
            }
        in
        let r = Explore.par_run ~jobs:2 ~max_time_s:0.05 slow in
        match r.outcome with
        | Explore.Limit Explore.L_time -> ()
        | Explore.Complete -> Alcotest.fail "space too small for the cap"
        | _ -> Alcotest.fail "expected time cap");
    case "parallel peak_frontier is the largest BFS level" (fun () ->
        (* level-synchronous BFS over the 8-bit hypercube: level d holds
           C(8,d) states, so the watermark is C(8,4) = 70 exactly *)
        let r = Explore.par_run ~jobs:2 (bits_system 8) in
        checki "largest level" 70 r.peak_frontier;
        checki "max_depth" 8 r.max_depth);
    case "parallel bitstate is a sound under-approximation" (fun () ->
        let exact = Explore.run (bits_system 10) in
        let par =
          Explore.par_run ~jobs:2 ~visited:(Explore.Bitstate 22)
            (bits_system 10)
        in
        checkb "lower bound" true (par.states <= exact.states);
        checkb "most states found" true (par.states > 900);
        (* total table memory equals the sequential table's 2^22 bits,
           spread over the shards *)
        checki "table bytes" (1 lsl 22 / 8) par.mem_bytes);
  ]

let suite = ("par_explore", tests)
