(* Black-box conformance harness for the [ccr serve] daemon.

   Every case drives a REAL daemon — forked by [Test_util.with_forked_daemon],
   listening on an ephemeral loopback port — through its HTTP API only: the
   same bytes [ccr client] or curl would exchange.  The contract under test
   (DESIGN.md §6i): job lifecycle and error codes, content-addressed cache
   hits that skip exploration entirely yet return byte-identical verdicts,
   bounded-queue 429 backpressure, per-job budgets reporting caps rather
   than failing, linearizable job ids under concurrent submission, and
   daemon verdicts byte-matching the in-process [Api.check] across the
   whole protocol registry.

   Fork discipline: this suite forks, so it is registered before any
   domain-spawning suite (see test_main.ml). *)

open Test_util
module Api = Ccr_serve.Api
module Http = Ccr_serve.Http
module J = Ccr_obs.Journal
module Registry = Ccr_protocols.Registry

(* ---- tiny HTTP/JSON client helpers ------------------------------------- *)

let req ~port ?body meth path =
  match Http.request ~port ~meth ~path ?body () with
  | Ok (status, body) -> (status, body)
  | Error msg -> Alcotest.failf "HTTP %s %s: %s" meth path msg

let parse body =
  match J.parse body with
  | Some v -> v
  | None -> Alcotest.failf "unparsable JSON: %s" body

let jstr v field =
  match J.get_str (J.find v field) with
  | Some s -> s
  | None -> Alcotest.failf "missing field %S in %s" field (J.to_string v)

let jbool v field =
  match J.find v field with
  | Some (J.Bool b) -> b
  | _ -> Alcotest.failf "missing bool %S in %s" field (J.to_string v)

let jint v field =
  match J.get_int (J.find v field) with
  | Some i -> i
  | None -> Alcotest.failf "missing int %S in %s" field (J.to_string v)

let verdict_of job =
  match J.find job "verdict" with
  | Some v -> v
  | None -> Alcotest.failf "job has no verdict: %s" (J.to_string job)

let submit ~port cfg =
  let status, body =
    req ~port ~body:(J.to_string (Api.config_to_json cfg)) "POST" "/jobs"
  in
  (status, parse body)

let rec wait_done ~port ?(attempts = 600) id =
  let _, body = req ~port "GET" ("/jobs/" ^ id) in
  let v = parse body in
  match jstr v "status" with
  | "done" -> v
  | "failed" -> Alcotest.failf "job %s failed: %s" id (J.to_string v)
  | _ ->
    if attempts = 0 then Alcotest.failf "job %s never finished" id
    else begin
      Unix.sleepf 0.05;
      wait_done ~port ~attempts:(attempts - 1) id
    end

(* "name value" lines of the OpenMetrics text format *)
let metric ~port name =
  let _, body = req ~port "GET" "/metrics" in
  let prefix = name ^ " " in
  let np = String.length prefix in
  match
    List.find_map
      (fun line ->
        if String.length line > np && String.sub line 0 np = prefix then
          float_of_string_opt (String.sub line np (String.length line - np))
        else None)
      (String.split_on_char '\n' body)
  with
  | Some f -> f
  | None -> Alcotest.failf "metric %s absent from /metrics" name

(* ---- the jobs ----------------------------------------------------------- *)

(* 604 states: enough to be a real exploration, quick enough to poll *)
let invalidate_cfg =
  { Api.default with Api.spec = Api.Named "invalidate"; level = `Async; n = 2 }

(* 10 states: the fast job for submission storms *)
let lock_rv_cfg =
  { Api.default with Api.spec = Api.Named "lock"; level = `Rv; n = 2 }

(* ~2.5 s of exploration: keeps the worker busy while a burst piles up *)
let slow_cfg =
  {
    Api.default with
    Api.spec = Api.Named "invalidate";
    level = `Async;
    n = 4;
    symmetry = `Off;
    max_states = 400_000;
  }

let tests =
  [
    case "lifecycle: submit, poll, verdict" (fun () ->
        with_forked_daemon @@ fun ~port ->
        let status, j = submit ~port invalidate_cfg in
        checki "fresh job is accepted with 202" 202 status;
        checks "ids are sequential from j1" "j1" (jstr j "id");
        checkb "not a cache hit" false (jbool j "cached");
        checkb "starts queued or running" true
          (List.mem (jstr j "status") [ "queued"; "running" ]);
        let j = wait_done ~port "j1" in
        let v = verdict_of j in
        checks "protocol" "invalidate" (jstr v "protocol");
        checks "level" "async" (jstr v "level");
        checks "explored" "complete" (jstr v "explored");
        checkb "ok" true (jbool v "ok");
        checki "states" 604 (jint v "states");
        checki "transitions" 1201 (jint v "transitions"));
    case "protocol errors: 404, 405, 400, and the root banner" (fun () ->
        with_forked_daemon @@ fun ~port ->
        let status, body = req ~port "GET" "/jobs/j99" in
        checki "unknown job is 404" 404 status;
        checks "unknown job message" "unknown job" (jstr (parse body) "error");
        let status, _ = req ~port "DELETE" "/jobs/j99" in
        checki "wrong method is 405" 405 status;
        let status, _ = req ~port "GET" "/nope" in
        checki "unknown endpoint is 404" 404 status;
        let status, body = req ~port ~body:"{nope" "POST" "/jobs" in
        checki "malformed JSON is 400" 400 status;
        checkb "malformed JSON names the problem" true
          (String.length (jstr (parse body) "error") > 0);
        let status, body =
          submit ~port { Api.default with Api.spec = Api.Named "nosuch" }
        in
        checki "unknown protocol is 400" 400 status;
        checkb "unknown protocol is named" true
          (contains_sub ~sub:"unknown protocol" (jstr body "error"));
        let status, _ = submit ~port { invalidate_cfg with Api.n = 99 } in
        checki "out-of-range n is 400" 400 status;
        let status, body = req ~port "GET" "/" in
        checki "root is 200" 200 status;
        checks "root names the service" "ccr-serve"
          (jstr (parse body) "service"));
    case "cache: a warm hit skips exploration, verdict byte-identical"
      (fun () ->
        with_temp_dir "ccr-test-serve-cache" @@ fun cache_dir ->
        with_forked_daemon ~cache_dir @@ fun ~port ->
        let status, _ = submit ~port invalidate_cfg in
        checki "cold submit queues" 202 status;
        let cold = wait_done ~port "j1" in
        let explored = metric ~port "serve_states_explored_total" in
        let status, warm = submit ~port invalidate_cfg in
        checki "warm submit answers immediately" 200 status;
        checks "warm job is already done" "done" (jstr warm "status");
        checkb "marked as a cache hit" true (jbool warm "cached");
        checks "verdicts byte-identical"
          (J.to_string (verdict_of cold))
          (J.to_string (verdict_of warm));
        checkb "zero states explored by the hit" true
          (metric ~port "serve_states_explored_total" = explored);
        checkb "one hit, one miss" true
          (metric ~port "serve_cache_hits_total" = 1.0
          && metric ~port "serve_cache_misses_total" = 1.0));
    case "cache: results survive a daemon restart" (fun () ->
        with_temp_dir "ccr-test-serve-cache" @@ fun cache_dir ->
        let cold =
          with_forked_daemon ~cache_dir @@ fun ~port ->
          ignore (submit ~port invalidate_cfg);
          J.to_string (verdict_of (wait_done ~port "j1"))
        in
        with_forked_daemon ~cache_dir @@ fun ~port ->
        let status, warm = submit ~port invalidate_cfg in
        checki "fresh daemon answers from disk" 200 status;
        checkb "cached" true (jbool warm "cached");
        checks "verdict unchanged across restart" cold
          (J.to_string (verdict_of warm)));
    case "backpressure: a full queue answers 429" (fun () ->
        with_forked_daemon ~workers:1 ~queue_cap:1 @@ fun ~port ->
        (* one slow job occupies the worker, one fills the queue; the
           rest of the burst must bounce with 429.  Daemon teardown
           interrupts the running exploration, so no long wait. *)
        let codes =
          List.init 4 (fun _ -> fst (submit ~port slow_cfg))
        in
        checkb "at least one accepted" true (List.mem 202 codes);
        checkb "at least one rejected" true (List.mem 429 codes);
        checkb "nothing but 202/429 in the burst" true
          (List.for_all (fun c -> c = 202 || c = 429) codes);
        checkb "rejections counted" true
          (metric ~port "serve_rejected_queue_full_total" >= 1.0));
    case "budget: an exceeded cap reports limit-states, not an error"
      (fun () ->
        with_forked_daemon @@ fun ~port ->
        let status, _ =
          submit ~port { invalidate_cfg with Api.max_states = 10 }
        in
        checki "capped job is accepted" 202 status;
        let j = wait_done ~port "j1" in
        let v = verdict_of j in
        checks "done, not failed" "done" (jstr j "status");
        checks "explored tag" "limit-states" (jstr v "explored");
        checkb "not ok" false (jbool v "ok");
        checki "stopped at the cap" 10 (jint v "states"));
    case "budget: the service clamps per-job max_states" (fun () ->
        with_forked_daemon ~max_states_cap:10 @@ fun ~port ->
        let status, _ =
          submit ~port { invalidate_cfg with Api.max_states = 1_000_000 }
        in
        checki "accepted" 202 status;
        let v = verdict_of (wait_done ~port "j1") in
        checks "service cap applies" "limit-states" (jstr v "explored");
        checki "states" 10 (jint v "states"));
    slow_case "concurrency: 4 threads, ids linearize to j1..j12" (fun () ->
        with_forked_daemon ~workers:2 @@ fun ~port ->
        let lock = Mutex.create () in
        let ids = ref [] in
        let worker () =
          for _ = 1 to 3 do
            let status, j = submit ~port lock_rv_cfg in
            if status <> 202 && status <> 200 then
              Alcotest.failf "submit answered %d" status;
            let id = jstr j "id" in
            Mutex.lock lock;
            ids := id :: !ids;
            Mutex.unlock lock
          done
        in
        let threads = List.init 4 (fun _ -> Thread.create worker ()) in
        List.iter Thread.join threads;
        let ids = List.sort_uniq compare !ids in
        checki "12 distinct ids" 12 (List.length ids);
        let expected =
          List.sort_uniq compare (List.init 12 (fun i -> Fmt.str "j%d" (i + 1)))
        in
        checkb "exactly j1..j12, no gaps" true (ids = expected);
        List.iter
          (fun id ->
            let v = verdict_of (wait_done ~port id) in
            checkb (id ^ " ok") true (jbool v "ok");
            checki (id ^ " states") 10 (jint v "states"))
          (List.init 12 (fun i -> Fmt.str "j%d" (i + 1))));
    case "events: the stream is the schema-v1 journal, warm equals cold"
      (fun () ->
        with_temp_dir "ccr-test-serve-cache" @@ fun cache_dir ->
        with_forked_daemon ~cache_dir @@ fun ~port ->
        let events id =
          ignore (wait_done ~port id);
          let status, body = req ~port "GET" ("/jobs/" ^ id ^ "/events") in
          checki (id ^ " events status") 200 status;
          List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
        in
        ignore (submit ~port invalidate_cfg);
        let cold = events "j1" in
        checkb "stream is non-trivial" true (List.length cold >= 2);
        List.iter
          (fun line ->
            let v = parse line in
            checki "schema v1" 1 (jint v "v");
            checkb "has an event kind" true (jstr v "ev" <> ""))
          cold;
        checks "first event" "config" (jstr (parse (List.hd cold)) "ev");
        let last = List.nth cold (List.length cold - 1) in
        checks "last event" "end" (jstr (parse last) "ev");
        checks "end outcome" "complete" (jstr (parse last) "outcome");
        ignore (submit ~port invalidate_cfg);
        let warm = events "j2" in
        checks "replayed journal byte-identical"
          (String.concat "\n" cold) (String.concat "\n" warm));
    case "inline: a .ccr body checks like a registry protocol" (fun () ->
        with_forked_daemon @@ fun ~port ->
        let src = Ccr_core.Parse.to_string ping_system in
        let cfg =
          { Api.default with Api.spec = Api.Inline src; level = `Async; n = 2 }
        in
        let status, _ = submit ~port cfg in
        checki "inline spec accepted" 202 status;
        let v = verdict_of (wait_done ~port "j1") in
        checks "protocol name from the source" "ping" (jstr v "protocol");
        checkb "ok" true (jbool v "ok");
        (* pin against the in-process entry point *)
        match Api.check cfg with
        | Error msg -> Alcotest.failf "in-process check failed: %s" msg
        | Ok (direct, _) ->
          checks "matches in-process verdict"
            (J.to_string (Api.verdict_to_json direct))
            (J.to_string v));
    slow_case "registry: daemon verdicts byte-match in-process verdicts"
      (fun () ->
        with_forked_daemon @@ fun ~port ->
        let seq = ref 0 in
        List.iter
          (fun (e : Registry.t) ->
            List.iter
              (fun level ->
                let cfg =
                  {
                    Api.default with
                    Api.spec = Api.Named e.Registry.name;
                    level;
                    n = 2;
                  }
                in
                let direct =
                  match Api.check cfg with
                  | Ok (v, _) -> J.to_string (Api.verdict_to_json v)
                  | Error msg ->
                    Alcotest.failf "%s: in-process check failed: %s"
                      e.Registry.name msg
                in
                let status, j = submit ~port cfg in
                checkb
                  (Fmt.str "%s %s: accepted" e.Registry.name
                     (Api.level_name cfg))
                  true
                  (status = 202 || status = 200);
                incr seq;
                let id = jstr j "id" in
                checks "sequential id" (Fmt.str "j%d" !seq) id;
                let v = verdict_of (wait_done ~port id) in
                checks
                  (Fmt.str "%s %s: byte-match" e.Registry.name
                     (Api.level_name cfg))
                  direct (J.to_string v))
              [ `Rv; `Async ])
          Registry.all);
    case "metrics: OpenMetrics framing ends with # EOF" (fun () ->
        with_forked_daemon @@ fun ~port ->
        let _, body = req ~port "GET" "/metrics" in
        checkb "requests counted" true
          (contains_sub ~sub:"serve_requests_total" body);
        checkb "submissions exported" true
          (contains_sub ~sub:"serve_jobs_submitted_total" body);
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
        in
        checks "EOF-framed" "# EOF" (List.nth lines (List.length lines - 1)));
    case "fd pressure: the daemon accepts on descriptors above FD_SETSIZE"
      (fun () ->
        (* select(2)'s fd_set tops out at 1024 descriptors; an accept loop
           built on [Unix.select] goes silently deaf when the listen socket
           lands above that.  Pin the select-free loop: hoist the daemon's
           fds past 1024 and demand a live round trip.  In-process (threads
           only), so this forks nothing. *)
        let ballast =
          Array.init 1100 (fun _ ->
              Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0)
        in
        Fun.protect
          ~finally:(fun () ->
            Array.iter (fun fd -> try Unix.close fd with _ -> ()) ballast)
          (fun () ->
            let t = Ccr_serve.Daemon.start ~port:0 () in
            Fun.protect
              ~finally:(fun () -> Ccr_serve.Daemon.stop t)
              (fun () ->
                let port = Ccr_serve.Daemon.port t in
                let status, body = req ~port "GET" "/" in
                checki "high-fd round trip" 200 status;
                checkb "service banner" true
                  (contains_sub ~sub:"ccr-serve" body))));
  ]

let suite = ("serve", tests)
