(* ccr: command-line front end to the refinement framework.

   Subcommands:
     list        catalogue of shipped protocols
     show        render a protocol (rendezvous or refined; ascii/dot/
                 promela/c)
     pairs       request/reply analysis report (§3.3)
     export      print a protocol in the textual .ccr syntax
     explain     derivation report: what the refinement did and why
     check       model-check a protocol level with its invariants
                 (--faults adds a budget of network faults; --harden
                 checks the retransmit/dedup-hardened transport)
     eq1         verify the §4 stuttering simulation
     sim         simulate the refined protocol and report efficiency
     run         execute the protocol on real threads, optionally through
                 the fault-injecting transport
     msc         message-sequence chart of a simulated execution
     progress    deadlock + AG-EF-progress analysis (§2.5)

   PROTOCOL arguments are registry names or .ccr file paths. *)

open Ccr_core
open Ccr_protocols
module Explore = Ccr_modelcheck.Explore
module Vstore = Ccr_modelcheck.Vstore
module Mpx = Ccr_modelcheck.Mpx
module Ckpt = Ccr_modelcheck.Ckpt
module Graph = Ccr_modelcheck.Graph
module Async = Ccr_refine.Async
module Fault = Ccr_faults.Fault
module Injected = Ccr_faults.Injected
module Plan = Ccr_faults.Plan
module Api = Ccr_serve.Api

(* A protocol argument is a registry name or a path to a [.ccr] file.
   File-based protocols get no built-in invariants; everything else
   (analysis, refinement, Eq. 1, simulation) applies unchanged. *)
let entry_of_file path =
  match Parse.system_of_file path with
  | sys ->
    (match Validate.check sys with
    | Ok _ ->
      Ok
        Registry.
          {
            name = sys.Ir.sys_name;
            doc = "loaded from " ^ path;
            system = Some sys;
            instantiate = (fun ~reqrep ~n -> Link.compile ~reqrep ~n sys);
            rv_invariants = (fun _ -> []);
            async_invariants = (fun _ -> []);
          }
    | Error es ->
      Error
        (`Msg
          (Fmt.str "%s does not validate:@,%a" path
             Fmt.(list ~sep:cut Validate.pp_error)
             es)))
  | exception exn -> Error (`Msg (Fmt.str "%a" Parse.pp_error exn))

let protocol_conv =
  let parse s =
    if Filename.check_suffix s ".ccr" then entry_of_file s
    else
      match Registry.find s with
      | Some e -> Ok e
      | None ->
        Error
          (`Msg
            (Fmt.str "unknown protocol %S (try: %s, or a .ccr file)" s
               (String.concat ", " (Registry.names ()))))
  in
  Cmdliner.Arg.conv (parse, fun ppf e -> Fmt.string ppf e.Registry.name)

open Cmdliner

let protocol_arg =
  Arg.(
    required
    & pos 0 (some protocol_conv) None
    & info [] ~docv:"PROTOCOL" ~doc:"Protocol name (see $(b,ccr list)).")

let n_arg =
  Arg.(
    value & opt int 2
    & info [ "n"; "remotes" ] ~docv:"N" ~doc:"Number of remote nodes.")

let k_arg =
  Arg.(
    value & opt int 2
    & info [ "k"; "buffer" ] ~docv:"K"
        ~doc:"Home buffer capacity (>= 2, Table 2).")

let generic_arg =
  Arg.(
    value & flag
    & info [ "generic" ]
        ~doc:
          "Disable the request/reply optimization (§3.3): every rendezvous \
           costs a request plus an ack.")

let max_states_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-states" ] ~docv:"S" ~doc:"State cap for explorations.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"J"
        ~doc:
          "Worker domains for state-space exploration (1 = sequential).  \
           With J > 1, counterexample traces come from a sequential re-run \
           after the parallel search finds a violation or deadlock.")

let store_arg =
  Arg.(
    value
    & opt (enum [ ("mem", `Mem); ("collapse", `Collapse); ("disk", `Disk) ])
        `Mem
    & info [ "store" ] ~docv:"KIND"
        ~doc:
          "Visited-set representation: $(b,mem) (exact in-memory hash set), \
           $(b,collapse) (SPIN-style collapse compression: per-component \
           intern tables, states stored as tuples of small indices), or \
           $(b,disk) (out-of-core: key bytes in an unlinked temp file, only \
           the index in RAM).  All three give identical state and \
           transition counts; only memory use differs.  The report prints \
           resident vs raw bytes for the compressed stores.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"W"
        ~doc:
          "Partition the state space over W forked worker processes (each \
           running $(b,-j) domains), exchanging frontier batches over \
           pipes.  State and transition counts are byte-identical to \
           sequential and $(b,-j) runs; memory caps meter the summed \
           per-worker stores.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject network faults from a budget spec: comma-separated \
           $(b,drop=K), $(b,dup=K), $(b,delay=K), $(b,pause=K), each \
           channel fault optionally filtered by message class as in \
           $(b,drop=1\\@ack) ($(b,\\@req), $(b,\\@ack), $(b,\\@nack)).  \
           $(b,check) explores every placement within the budget; \
           $(b,sim) and $(b,run) draw one deterministic plan from \
           $(b,--seed).")

let harden_arg =
  Arg.(
    value & flag
    & info [ "harden" ]
        ~doc:
          "Replace the paper's bare reliable channels with the hardened \
           transport: timeouts, sequence-numbered retransmission and \
           duplicate suppression.  Coherence and quiescence must then \
           survive the fault budget.")

(* Parse --faults, or die with a usage error. *)
let fault_spec_of = function
  | None -> None
  | Some s -> (
    match Fault.parse s with
    | Ok spec -> Some spec
    | Error msg ->
      Fmt.epr "bad --faults spec: %s@." msg;
      exit 1)

let instantiate (e : Registry.t) ~generic ~n =
  Ccr_obs.Trace.with_span "instantiate"
    ~args:[ ("protocol", Ccr_obs.Trace.Str e.Registry.name) ]
    (fun () -> e.Registry.instantiate ~reqrep:(not generic) ~n)

(* ---- observability flags -------------------------------------------------- *)

module Obs = struct
  module M = Ccr_obs.Metrics
  module T = Ccr_obs.Trace
  module J = Ccr_obs.Journal

  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Render a live status line on stderr while the engine runs.")

  let progress_interval_arg =
    Arg.(
      value & opt (some int) None
      & info [ "progress-interval" ] ~docv:"N"
          ~doc:
            "Sample $(b,--progress) every $(docv) state discoveries \
             (default 8192) in the sequential engine; tiny runs need a \
             small $(docv) to show any progress at all.  The parallel \
             engines always sample at BFS level boundaries.")

  let journal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append this run's events to $(docv) as schema-versioned \
             JSONL (one JSON object per line): configuration, level \
             boundaries, cap hits, fault budgets, violations with their \
             provenance-derived rule path, rule coverage, final stats.  \
             Journals are byte-identical across $(b,-j)/$(b,--workers) \
             settings; read them back with $(b,ccr report).")

  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON timeline of the run to \
             $(docv); open it in chrome://tracing or Perfetto.")

  let metrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry as one JSON object to $(docv).  \
             With $(b,-), the JSON goes to stdout and the human report \
             moves to stderr.")

  let write_file path s =
    let oc = open_out path in
    output_string oc s;
    output_char oc '\n';
    close_out oc

  (* Call before the instrumented work: installs the trace collector and
     makes the registry. *)
  let setup ~trace_file =
    if trace_file <> None then T.start ();
    M.create ()

  (* Where the human-readable report goes: stderr when stdout carries the
     metrics JSON. *)
  let report_ppf ~metrics_file =
    if metrics_file = Some "-" then Fmt.stderr else Fmt.stdout

  (* One run's journal.  Events buffer in memory; [jflush] appends them
     (plus the pending [end] event) to the file exactly once, so every
     exit path — success, violation, starvation — can call it first. *)
  type journal = {
    j : J.t;
    j_file : string;
    mutable j_end : (string * J.value) list;
    mutable j_flushed : bool;
  }

  let journal_of =
    Option.map (fun f ->
        { j = J.create (); j_file = f; j_end = []; j_flushed = false })

  let jev jnl ev fields = Option.iter (fun jn -> J.event jn.j ev fields) jnl
  let jend jnl fields = Option.iter (fun jn -> jn.j_end <- fields) jnl

  (* Append fields to the pending [end] event (after [journal_outcome]
     has set the base fields): interruption reason, resume command. *)
  let jend_extend jnl fields =
    Option.iter (fun jn -> jn.j_end <- jn.j_end @ fields) jnl

  let jflush jnl =
    Option.iter
      (fun jn ->
        if not jn.j_flushed then begin
          J.event jn.j "end" jn.j_end;
          J.append_to_file jn.j jn.j_file;
          jn.j_flushed <- true
        end)
      jnl

  (* Argument-error exits still end the journal: without this, a bad
     --faults spec or checkpoint mismatch left the journal file silently
     unwritten. *)
  let jfail jnl ~reason =
    jend jnl [ ("outcome", J.Str "error"); ("reason", J.Str reason) ];
    jflush jnl

  (* Level boundaries flow into the journal through the engines'
     [on_level] hook — the engines emit them at equivalent points, so the
     journal stays parallelism-independent. *)
  let on_level_of jnl =
    Option.map
      (fun jn ~depth ~states ->
        J.event jn.j "level" [ ("depth", J.Int depth); ("states", J.Int states) ])
      jnl

  (* Call after the instrumented work, before anything that may [exit]. *)
  let emit reg ~trace_file ~metrics_file =
    (match trace_file with
    | Some f ->
      (* Cap truncation must be loud: the trace footer carries the
         dropped count, and the metrics surface it too. *)
      let d = T.dropped () in
      if d > 0 then M.add (M.counter reg "trace.dropped_events") d;
      write_file f (T.stop ())
    | None -> ());
    match metrics_file with
    | Some "-" ->
      print_endline (M.to_json (M.snapshot reg));
      flush stdout
    | Some f -> write_file f (M.to_json (M.snapshot reg))
    | None -> ()

  (* The checker's per-enumerated-transition message meter, plus nack
     instants for the tracer.  Registered eagerly so the metric keys
     exist (as zeros) even for levels that never send a message. *)
  let meter reg =
    let open M in
    let req = counter reg "msg.req"
    and ack = counter reg "msg.ack"
    and nack = counter reg "msg.nack"
    and data = counter reg "msg.data" in
    let occ = histogram reg "home_buffer_occupancy" in
    Async.
      {
        m_sent =
          (fun w ->
            match w with
            | Ccr_refine.Wire.Req m ->
              incr req;
              if m.Ccr_refine.Wire.m_payload <> [] then incr data
            | Ccr_refine.Wire.Ack -> incr ack
            | Ccr_refine.Wire.Nack ->
              incr nack;
              if T.enabled () then T.instant "nack");
        m_buf = (fun o -> observe occ o);
      }
end

(* ---- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Registry.t) ->
        Fmt.pr "%-16s %s%s@." e.name e.doc
          (if e.system = None then " [refined level only]" else ""))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the shipped protocols.")
    Term.(const run $ const ())

(* ---- show ---------------------------------------------------------------- *)

let show_cmd =
  let level =
    Arg.(
      value
      & opt (enum [ ("rendezvous", `Rv); ("refined", `Refined) ]) `Rv
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Which protocol to render: $(b,rendezvous) or $(b,refined).")
  in
  let format =
    Arg.(
      value
      & opt
          (enum
             [
               ("ascii", `Ascii); ("dot", `Dot); ("promela", `Promela);
               ("c", `C);
             ])
          `Ascii
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,ascii), $(b,dot), $(b,promela) (rendezvous \
             only), or $(b,c) (refined dispatch tables).")
  in
  let run (e : Registry.t) n generic level format harden =
    if harden && level = `Rv then begin
      Fmt.epr "--harden applies to the refined level only.@.";
      exit 1
    end;
    match (level, format, e.Registry.system) with
    | `Rv, `Ascii, Some sys -> Fmt.pr "%a@." Ccr_viz.Ascii.pp_system sys
    | `Rv, `Dot, Some sys ->
      print_string (Ccr_viz.Dot.of_process sys.Ir.home);
      print_string (Ccr_viz.Dot.of_process sys.Ir.remote)
    | `Rv, `Promela, Some sys ->
      print_string (Ccr_viz.Promela.of_system ~n sys)
    | `Rv, `C, Some _ ->
      Fmt.epr "C output applies to the refined level only.@.";
      exit 1
    | `Rv, _, None ->
      Fmt.epr "%s has no rendezvous level.@." e.name;
      exit 1
    | `Refined, fmt, _ -> (
      let prog = instantiate e ~generic ~n in
      let home = Ccr_refine.Compile.home_automaton ~harden prog in
      let remote = Ccr_refine.Compile.remote_automaton ~harden prog in
      match fmt with
      | `Ascii ->
        Fmt.pr "%a@.%a@." Ccr_viz.Ascii.pp_automaton home
          Ccr_viz.Ascii.pp_automaton remote
      | `Dot ->
        print_string (Ccr_viz.Dot.of_automaton home);
        print_string (Ccr_viz.Dot.of_automaton remote)
      | `C ->
        print_string (Ccr_refine.Codegen.emit_c home);
        print_string (Ccr_refine.Codegen.emit_c remote)
      | `Promela ->
        Fmt.epr "Promela export applies to the rendezvous level only.@.";
        exit 1)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Render a protocol or its refined automata.")
    Term.(
      const run $ protocol_arg $ n_arg $ generic_arg $ level $ format
      $ harden_arg)

(* ---- pairs --------------------------------------------------------------- *)

let pairs_cmd =
  let run (e : Registry.t) =
    match e.Registry.system with
    | None ->
      Fmt.epr "%s has no rendezvous level.@." e.name;
      exit 1
    | Some sys ->
      let r = Reqrep.analyze sys in
      if r.pairs = [] then Fmt.pr "no request/reply pairs@."
      else List.iter (fun p -> Fmt.pr "pair: %a@." Reqrep.pp_pair p) r.pairs;
      List.iter
        (fun (m, why) -> Fmt.pr "not optimizable: %-8s %s@." m why)
        r.rejected
  in
  Cmd.v
    (Cmd.info "pairs"
       ~doc:"Report the request/reply analysis (§3.3) for a protocol.")
    Term.(const run $ protocol_arg)

(* ---- export -------------------------------------------------------------- *)

let export_cmd =
  let run (e : Registry.t) =
    match e.Registry.system with
    | None ->
      Fmt.epr "%s has no rendezvous level to export.@." e.name;
      exit 1
    | Some sys -> print_string (Parse.to_string sys)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Print a protocol in the textual .ccr syntax (editable, reloadable \
          with any command that takes a protocol).")
    Term.(const run $ protocol_arg)

(* ---- explain ------------------------------------------------------------- *)

let explain_cmd =
  let violation_arg =
    Arg.(
      value & flag
      & info [ "violation" ]
          ~doc:
            "Explore the refined level with provenance on and explain the \
             first safety violation, deadlock, or (under $(b,--faults)) \
             starvation witness: the rule-annotated path (Tables 1-2 row \
             names), the per-transaction message flow, and the final \
             state.  Exits 1 when there is nothing to explain.")
  in
  let state_arg =
    Arg.(
      value & opt (some int) None
      & info [ "state" ] ~docv:"ID"
          ~doc:
            "Explain visited state $(docv) of the refined level: walk the \
             provenance chain back to the initial state and print the \
             rule-annotated path.  Ids are BFS discovery order — the \
             same at any $(b,-j)/$(b,--workers) setting.")
  in
  (* The rule-annotated path: row names from Tables 1-2, one step per
     line, plus the per-transaction flow as an MSC when the labels carry
     async messages. *)
  let pp_path ppf ~lbl ~msc path =
    Fmt.pf ppf "rule path (%d steps):@." (List.length path - 1);
    let i = ref 0 in
    List.iter
      (fun (l, _) ->
        match l with
        | None -> ()
        | Some l ->
          incr i;
          Fmt.pf ppf "  %3d. %s@." !i (lbl l))
      path;
    match msc with
    | Some render ->
      Fmt.pf ppf "flow (message-sequence chart):@.%s@."
        (render (List.filter_map fst path))
    | None -> ()
  in
  let run (e : Registry.t) n k generic violation state_id faults harden
      max_states =
    match (violation, state_id) with
    | false, None -> (
      match e.Registry.system with
      | None ->
        Fmt.epr "%s has no rendezvous level to derive from.@." e.name;
        exit 1
      | Some sys -> print_string (Ccr_refine.Report.derive ~n sys))
    | _ -> (
      let prog = instantiate e ~generic ~n in
      let cfg = Async.{ k } in
      let fspec = fault_spec_of faults in
      let prov = Vstore.Prov.create () in
      match fspec with
      | None -> (
        let sys =
          Explore.
            {
              init = Async.initial prog cfg;
              succ = Async.successors prog cfg;
              encode = Async.encode;
              canon = None;
            }
        in
        let lbl = Fmt.str "%a" Async.pp_label in
        match state_id with
        | Some id ->
          (* BFS ids are dense in discovery order, so capping the
             exploration at id+1 states is enough to assign id. *)
          let _ =
            Explore.run ~prov ~max_states:(max max_states (id + 1))
              ~trace:false
              ~invariants:(e.Registry.async_invariants prog)
              sys
          in
          if id < 0 || id >= Vstore.Prov.count prov then begin
            Fmt.epr "state %d not reached (%d states discovered)@." id
              (Vstore.Prov.count prov);
            exit 1
          end;
          let path = Explore.replay_path prov sys id in
          Fmt.pr "%s (async, n=%d, k=%d): state %d@." e.name n k id;
          pp_path Fmt.stdout ~lbl ~msc:(Some (Ccr_viz.Msc.render prog)) path;
          (match List.rev path with
          | (_, st) :: _ ->
            Fmt.pr "state %d:@.%a@." id (Async.pp_state prog) st
          | [] -> ())
        | None -> (
          let r =
            Explore.run ~prov ~max_states ~check_deadlock:true ~trace:true
              ~invariants:(e.Registry.async_invariants prog)
              sys
          in
          match (r.Explore.outcome, r.Explore.trace) with
          | Explore.Violation { invariant; _ }, Some path ->
            Fmt.pr "%s (async, n=%d, k=%d): invariant %s violated@." e.name
              n k invariant;
            pp_path Fmt.stdout ~lbl ~msc:(Some (Ccr_viz.Msc.render prog))
              path;
            (match List.rev path with
            | (_, st) :: _ ->
              Fmt.pr "violating state:@.%a@." (Async.pp_state prog) st
            | [] -> ())
          | Explore.Deadlock _, Some path ->
            Fmt.pr "%s (async, n=%d, k=%d): deadlock@." e.name n k;
            pp_path Fmt.stdout ~lbl ~msc:(Some (Ccr_viz.Msc.render prog))
              path
          | _ ->
            Fmt.pr
              "%s (async, n=%d, k=%d): nothing to explain (%d states, \
               invariants hold)@."
              e.name n k r.Explore.states;
            exit 1))
      | Some spec -> (
        if state_id <> None then begin
          Fmt.epr "--state applies to the fault-free level only.@.";
          exit 1
        end;
        let mode = if harden then Injected.Hardened else Injected.Vanilla in
        let sys =
          Explore.
            {
              init = Injected.initial spec prog cfg;
              succ = Injected.successors mode spec prog cfg;
              encode = Injected.encode;
              canon = None;
            }
        in
        let lbl = Fmt.str "%a" Injected.pp_label in
        let msc render labels =
          render
            (List.filter_map
               (function Injected.Step al -> Some al | Injected.Fault _ -> None)
               labels)
        in
        let invariants =
          Injected.no_wedge
          :: List.map Injected.lift_invariant
               (e.Registry.async_invariants prog)
        in
        let r =
          Explore.run ~prov ~max_states ~check_deadlock:true ~trace:true
            ~invariants sys
        in
        match (r.Explore.outcome, r.Explore.trace) with
        | Explore.Violation { invariant; _ }, Some path ->
          Fmt.pr "%s (async, n=%d, k=%d, faults=%a): invariant %s violated@."
            e.name n k Fault.pp spec invariant;
          pp_path Fmt.stdout ~lbl
            ~msc:(Some (msc (Ccr_viz.Msc.render prog)))
            path
        | Explore.Deadlock _, Some path ->
          Fmt.pr "%s (async, n=%d, k=%d, faults=%a): deadlock@." e.name n k
            Fault.pp spec;
          pp_path Fmt.stdout ~lbl
            ~msc:(Some (msc (Ccr_viz.Msc.render prog)))
            path
        | Explore.Complete, _ -> (
          (* Safety held: the remaining explainable artifact is a
             starvation witness from the liveness analysis — rebuilt by
             the provenance-backed O(depth) parent-chain walk. *)
          let g = Graph.build ~max_states sys in
          if g.Graph.truncated then begin
            Fmt.epr "graph truncated; raise --max-states@.";
            exit 1
          end;
          let progress_of pred l =
            match l with
            | Injected.Step al -> Injected.completes al && pred al
            | Injected.Fault _ -> false
          in
          let starved =
            List.concat
              (List.init n (fun i ->
                   match
                     Graph.violates_ag_ef g
                       ~progress:(progress_of (fun al -> al.Async.actor = i))
                   with
                   | [] -> []
                   | bad -> [ (i, bad) ]))
          in
          match starved with
          | [] ->
            Fmt.pr
              "%s (async, n=%d, k=%d, faults=%a): nothing to explain \
               (safety, deadlock-freedom and liveness all hold)@."
              e.name n k Fault.pp spec;
            exit 1
          | (i, bad) :: _ ->
            let path = Graph.path_to g (List.hd bad) in
            Fmt.pr
              "%s (async, n=%d, k=%d, faults=%a): remote %d can starve@."
              e.name n k Fault.pp spec i;
            pp_path Fmt.stdout ~lbl
              ~msc:(Some (msc (Ccr_viz.Msc.render prog)))
              path;
            (match List.rev path with
            | (_, st) :: _ ->
              Fmt.pr "stuck state:@.%a@." (Injected.pp_fstate prog) st
            | [] -> ()))
        | _ ->
          Fmt.pr "nothing to explain (exploration hit a cap)@.";
          exit 1))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a protocol: the refinement derivation report by \
          default; with $(b,--violation) or $(b,--state), the \
          provenance-derived rule-annotated path to a violation, \
          starvation witness, or visited state.")
    Term.(
      const run $ protocol_arg $ n_arg $ k_arg $ generic_arg $ violation_arg
      $ state_arg $ faults_arg $ harden_arg $ max_states_arg)

(* ---- check --------------------------------------------------------------- *)

let check_cmd =
  let level =
    Arg.(
      value
      & opt (enum [ ("rendezvous", `Rv); ("async", `Async) ]) `Async
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Check the $(b,rendezvous) or the refined $(b,async) system.")
  in
  let mem =
    Arg.(
      value & opt (some int) None
      & info [ "mem" ] ~docv:"MB" ~doc:"Memory cap in megabytes.")
  in
  let symmetry =
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("off", `Off); ("brute", `Brute) ]) `Auto
      & info [ "symmetry" ] ~docv:"MODE"
          ~doc:
            "Symmetry reduction over remote identities: $(b,auto) (the \
             default: fast signature-sort canonicalization, explore one \
             state per orbit), $(b,off) (explore the full space), or \
             $(b,brute) (the n! oracle canonicalizer, for cross-checking; \
             falls back past 6 remotes).  Counterexample traces are always \
             concrete, replayable runs.")
  in
  let prov_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("mem", Vstore.Prov.P_mem); ("disk", Vstore.Prov.P_disk) ]))
          None
      & info [ "prov" ] ~docv:"KIND"
          ~doc:
            "Record per-state provenance (parent id + fired-rule ordinal, \
             8 bytes per state) in $(b,mem) or out-of-core in $(b,disk).  \
             Counterexamples are then rebuilt by an O(depth) parent-chain \
             walk instead of the sequential re-exploration fallback that \
             $(b,-j)/$(b,--workers) runs otherwise need.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock cap for the exploration; when hit, the run stops \
             (exit 2) with an $(b,unfinished) outcome — and, with \
             $(b,--checkpoint), a final checkpoint to resume from.")
  in
  let checkpoint_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "Write crash-safe exploration checkpoints into $(docv) \
             (created if missing): at BFS level boundaries per \
             $(b,--checkpoint-every), and always when stopping at a cap, \
             deadline or SIGINT/SIGTERM.  Writes are atomic \
             (temp-file + fsync + rename), so a kill at any instant \
             leaves a resumable file.  Implies $(b,--prov mem) unless \
             $(b,--prov) is given.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint-every" ] ~docv:"N|Ns"
          ~doc:
            "Checkpoint write policy: a plain integer writes once \
             $(i,N) new states have accumulated, an $(b,s)-suffixed \
             number (e.g. $(b,30s)) writes once that many seconds have \
             passed — both evaluated at BFS level boundaries.  Default: \
             every boundary.")
  in
  let resume_arg =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"DIR"
          ~doc:
            "Resume the exploration checkpointed in $(docv) and keep \
             checkpointing there.  The checkpoint's spec hash, instance \
             parameters and semantics flags must match this command line \
             (a mismatch is refused with a field-by-field diff); store, \
             provenance kind, $(b,-j) and $(b,--workers) may change \
             freely.  Counts, traces and journal tails are byte-identical \
             to the uninterrupted run.")
  in
  let run (e : Registry.t) n k generic level symmetry faults harden max_states
      mem jobs store_sel workers prov_sel deadline checkpoint_dir
      checkpoint_every resume_dir progress progress_interval trace_file
      metrics_file journal_file =
    let workers = max 1 workers in
    let cfg =
      {
        Api.spec = Api.Named e.Registry.name;
        level;
        n;
        k;
        generic;
        symmetry;
        faults;
        harden;
        max_states;
        max_mem_mb = mem;
        deadline_s = deadline;
        store = store_sel;
        jobs;
      }
    in
    (* --resume DIR keeps checkpointing into DIR *)
    let ckpt_dir =
      match resume_dir with Some _ -> resume_dir | None -> checkpoint_dir
    in
    (* Checkpoints persist traces as provenance slots (the in-memory
       parent arrays of a plain --trace run cannot survive a restart),
       so checkpointing forces provenance on. *)
    let prov_sel =
      if ckpt_dir <> None && prov_sel = None then Some Vstore.Prov.P_mem
      else prov_sel
    in
    let reg = Obs.setup ~trace_file in
    let ppf = Obs.report_ppf ~metrics_file in
    let meter = Obs.meter reg in
    let module J = Obs.J in
    let jnl = Obs.journal_of journal_file in
    let on_level = Obs.on_level_of jnl in
    (* Argument errors below this point still end the journal: the file
       gets an [end] event with outcome "error" instead of silently never
       appearing. *)
    let fail_usage msg =
      Obs.jfail jnl ~reason:msg;
      Fmt.epr "%s@." msg;
      exit 1
    in
    let fspec =
      match Api.fault_spec cfg with Ok s -> s | Error msg -> fail_usage msg
    in
    let ckpt_every =
      Option.map
        (fun s ->
          match Ckpt.parse_every s with
          | Ok e -> e
          | Error msg -> fail_usage msg)
        checkpoint_every
    in
    let prov = Option.map (fun kind -> Vstore.Prov.create ~kind ()) prov_sel in
    let sym_name = Api.symmetry_name cfg in
    let level_name = Api.level_name cfg in
    let faults_name = Api.faults_name cfg in
    (* Pins *what* is being explored (Ckpt.guard_keys); the marshalled IR
       catches two different .ccr files sharing a registry name. *)
    let spec_hash = Api.spec_hash e cfg in
    (* The static checkpoint manifest — loaded back, compared over
       [Ckpt.guard_keys], and carried across sessions of one run. *)
    let loaded =
      match resume_dir with
      | None -> None
      | Some dir -> (
        match (Ckpt.load ~dir : (Obj.t Ckpt.loaded, string) result) with
        | Error msg -> fail_usage msg
        | Ok l -> Some l)
    in
    let run_id, resumes =
      match loaded with
      | Some l -> (
        ( (match J.get_str (J.find (J.Obj l.Ckpt.l_manifest) "run_id") with
          | Some id -> id
          | None -> "unknown"),
          match J.get_int (J.find (J.Obj l.Ckpt.l_manifest) "resumes") with
          | Some r -> r + 1
          | None -> 1 ))
      | None ->
        ( String.sub
            (Digest.to_hex
               (Digest.string
                  (Fmt.str "%s %f %d" spec_hash (Unix.gettimeofday ())
                     (Unix.getpid ()))))
            0 12,
          0 )
    in
    let ckpt_manifest =
      [
        ("spec_hash", J.Str spec_hash);
        ("protocol", J.Str e.Registry.name);
        ("level", J.Str level_name);
        ("n", J.Int n);
        ("k", J.Int k);
        ("generic", J.Bool generic);
        ("symmetry", J.Str sym_name);
        ("faults", J.Str faults_name);
        ("harden", J.Bool harden);
        ("run_id", J.Str run_id);
        ("resumes", J.Int resumes);
        ("store", J.Str (Api.store_name cfg));
        ("max_states", J.Int max_states);
        ("jobs", J.Int jobs);
        ("workers", J.Int workers);
      ]
    in
    (match loaded with
    | Some l -> (
      match Ckpt.mismatch ~expected:ckpt_manifest ~found:l.Ckpt.l_manifest with
      | Some diff ->
        fail_usage
          (Fmt.str "cannot resume from %s: %s" (Option.get resume_dir) diff)
      | None ->
        Fmt.pf ppf "resuming from %s: %d states, %d transitions, depth %d@."
          (Option.get resume_dir) l.Ckpt.l_states l.Ckpt.l_transitions
          l.Ckpt.l_depth)
    | None -> ());
    (* SIGINT/SIGTERM ask the engines to stop at the next safe point, so
       the final checkpoint and journal are written before exit *)
    let interrupted = ref false in
    let interrupt =
      match ckpt_dir with
      | None -> None
      | Some _ ->
        List.iter
          (fun s ->
            try
              Sys.set_signal s
                (Sys.Signal_handle (fun _ -> interrupted := true))
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigint; Sys.sigterm ];
        Some (fun () -> !interrupted)
    in
    (* The exact command that continues this run, for the report and the
       journal's end event: current argv minus the checkpoint flags, plus
       --resume DIR. *)
    let resume_command ?(drop_cap = false) dir =
      let quote a =
        if String.exists (fun c -> c = ' ' || c = '"' || c = '\'') a then
          Filename.quote a
        else a
      in
      (* --max-states is cumulative, so after an L_states stop repeating
         it would stop the resumed run before it expands anything *)
      let dropped =
        [ "--checkpoint"; "--checkpoint-every"; "--resume" ]
        @ if drop_cap then [ "--max-states" ] else []
      in
      let is_dropped a =
        List.exists
          (fun f -> a = f || String.starts_with ~prefix:(f ^ "=") a)
          dropped
      in
      let rec strip = function
        | [] -> []
        | a :: _ :: rest when List.mem a dropped -> strip rest
        | a :: rest when is_dropped a -> strip rest
        | a :: rest -> quote a :: strip rest
      in
      String.concat " "
        (strip (Array.to_list Sys.argv) @ [ "--resume"; quote dir ])
    in
    Obs.jev jnl "config"
      (Api.journal_config ~protocol:e.Registry.name cfg
      @
      (* only checkpointed runs carry a run identity: it is derived from
         the wall clock, and journals of plain runs must stay
         byte-identical across invocations *)
      match ckpt_dir with
      | None -> []
      | Some _ ->
        ("run_id", J.Str run_id)
        ::
        (if resume_dir <> None then
           [ ("resumed", J.Bool true); ("resumes", J.Int resumes) ]
         else []));
    (match fspec with
    | Some spec ->
      Obs.jev jnl "faults" [ ("budget", J.Str (Fmt.str "%a" Fault.pp spec)) ]
    | None -> ());
    let module Sym = Ccr_refine.Symmetry in
    let sym_stats = Sym.make_stats () in
    (* Orbit sizes are harvested from the canonicalizing domain's local
       storage, readable only when freshness is decided right there:
       sequential, single-process, fault-free auto runs. *)
    let on_orbit =
      if symmetry = `Auto && fspec = None && jobs <= 1 && workers <= 1 then begin
        let h = Obs.M.histogram reg "canon.orbit_states" in
        Some (fun o -> Obs.M.observe h o)
      end
      else None
    in
    let mem_bytes = Option.map (fun mb -> mb * 1024 * 1024) mem in
    let on_progress, finish_progress =
      if progress then
        let cb, fin = Ccr_obs.Progress.reporter () in
        (Some cb, fin)
      else (None, fun () -> ())
    in
    (* The store selector resolves per system: collapse needs the
       system's component splitter.  A system without one (the rv-faults
       wrapper) falls back to whole-key interning — correct, but no
       compression. *)
    let store_of split =
      match store_sel with
      | `Mem -> Vstore.Mem
      | `Disk -> Vstore.Disk
      | `Collapse ->
        Vstore.Collapse
          (match split with
          | Some s -> s
          | None -> fun key -> [| String.length key |])
    in
    (* The CLI's full-featured engine behind [Api.check_entry]:
       checkpointing, the multi-process Mpx engine, provenance and the
       progress UI — none of which the serve daemon needs. *)
    let explorer =
      {
        Api.explore =
          (fun ~check_deadlock ~split ~invariants sys ->
            let store = store_of split in
            (* Checkpoint control for this run's state type.  The
               marshalled frontier carries no type information, so the
               loaded payload is cast here — this is safe exactly because
               [Ckpt.mismatch] accepted the manifest above (same spec
               hash, instance and semantics flags imply the same state
               type). *)
            let ckpt_ctl =
              match ckpt_dir with
              | None -> None
              | Some dir ->
                let ck_resume =
                  match loaded with
                  | None -> None
                  | Some l ->
                    let l : _ Ckpt.loaded = Obj.magic l in
                    Option.iter
                      (fun p ->
                        Array.iteri
                          (fun id (parent, ord) ->
                            Vstore.Prov.record p ~id ~parent ~ord)
                          l.Ckpt.l_prov)
                      prov;
                    Some
                      {
                        Explore.r_states = l.Ckpt.l_states;
                        r_transitions = l.Ckpt.l_transitions;
                        r_frontier = l.Ckpt.l_frontier;
                        r_keys = l.Ckpt.l_keys;
                      }
                in
                let wrote = Obs.M.counter reg "checkpoint.writes" in
                let wrote_bytes = Obs.M.gauge reg "checkpoint.bytes" in
                let on_save ~bytes ~states:_ ~depth:_ =
                  Obs.M.incr wrote;
                  Obs.M.set wrote_bytes (float_of_int bytes)
                in
                Some
                  {
                    Explore.ck_resume;
                    ck_save =
                      Ckpt.saver ~dir ~manifest:ckpt_manifest ~prov
                        ?every:ckpt_every ~on_save ();
                  }
            in
            Obs.T.with_span "explore" (fun () ->
                try
                  if workers > 1 then
                    Mpx.run ~workers ~jobs ~store ~max_states
                      ?max_mem_bytes:mem_bytes ?max_time_s:deadline
                      ~check_deadlock ~trace:true ~invariants ?on_progress
                      ~metrics:reg ?prov ?on_level ?interrupt ?ckpt:ckpt_ctl
                      sys
                  else if jobs > 1 then
                    Explore.par_run ~jobs ~store ~max_states
                      ?max_mem_bytes:mem_bytes ?max_time_s:deadline
                      ~check_deadlock ~trace:true ~invariants ?on_progress
                      ?prov ?on_level ?interrupt ?ckpt:ckpt_ctl sys
                  else
                    Explore.run ~store ~max_states ?max_mem_bytes:mem_bytes
                      ?max_time_s:deadline ~check_deadlock ~trace:true
                      ~invariants ?on_progress
                      ?progress_every:progress_interval ?prov ?on_level
                      ?interrupt ?ckpt:ckpt_ctl sys
                with Invalid_argument msg when resume_dir <> None ->
                  (* a mid-level (sequential) checkpoint fed to a parallel
                     engine: the engines refuse with an actionable message *)
                  fail_usage msg));
      }
    in
    (* The implicit-nack tracer hook: rules H_T3/R_T3 are the refined
       protocol answering a request it cannot serve yet. *)
    let observe_label =
      if trace_file = None then None
      else
        Some
          (fun (l : Async.label) ->
            match l.Async.rule with
            | Async.H_T3 | Async.R_T3 -> Obs.T.instant "implicit-nack"
            | _ -> ())
    in
    match
      Api.check_entry ~explorer ~meter ?observe_label ~sym_stats ?on_orbit e
        cfg
    with
    | Error msg -> fail_usage msg
    | Ok (v, m) ->
      (* Emit the trace and metrics artifacts before the report below,
         which exits non-zero on any non-Complete outcome. *)
      finish_progress ();
      (match v.Api.v_explored with
      | "violation" ->
        Obs.T.instant
          ~args:
            [
              ( "invariant",
                Obs.T.Str (Option.value ~default:"" v.Api.v_invariant) );
            ]
          "violation"
      | "deadlock" -> Obs.T.instant "deadlock"
      | "complete" -> ()
      | _ -> Obs.T.instant "cap-hit");
      Obs.M.set
        (Obs.M.gauge reg "states_per_sec")
        (if m.Api.m_time_s > 0. then
           float_of_int v.Api.v_states /. m.Api.m_time_s
         else 0.);
      Obs.M.set
        (Obs.M.gauge reg "peak_frontier")
        (float_of_int m.Api.m_peak_frontier);
      Obs.M.set (Obs.M.gauge reg "max_depth") (float_of_int v.Api.v_max_depth);
      Obs.M.set (Obs.M.gauge reg "mem_bytes") (float_of_int m.Api.m_mem_bytes);
      Obs.M.set (Obs.M.gauge reg "raw_bytes") (float_of_int m.Api.m_raw_bytes);
      if symmetry <> `Off then begin
        Obs.M.add (Obs.M.counter reg "canon.calls") (Sym.calls sym_stats);
        Obs.M.add
          (Obs.M.counter reg "canon.fallbacks")
          (Sym.fallbacks sym_stats);
        Obs.M.add (Obs.M.counter reg "canon.perms") (Sym.perms_tried sym_stats);
        let tg = Obs.M.histogram reg "canon.tie_group_size" in
        Sym.iter_tie_groups sym_stats (fun ~size ~count ->
            Obs.M.observe_n tg size count);
        (* summed across domains, so the share may exceed 1 with -j *)
        Obs.M.set
          (Obs.M.gauge reg "canon.time_share")
          (if m.Api.m_time_s > 0. then
             Sym.canon_seconds sym_stats /. m.Api.m_time_s
           else 0.)
      end;
      List.iter
        (fun (ev, fields) -> Obs.jev jnl ev fields)
        (Api.journal_events v);
      Obs.jend jnl (Api.journal_end v);
      (match v.Api.v_explored with
      | "limit-states" | "limit-memory" | "limit-time" | "interrupted" -> (
        match ckpt_dir with
        | Some dir ->
          (* every cap/interrupt stop wrote a final checkpoint (or kept
             the previous one when the boundary was partial): tell the
             user — and the journal — exactly how to continue *)
          let cmd =
            resume_command ~drop_cap:(v.Api.v_explored = "limit-states") dir
          in
          Obs.jend_extend jnl
            [ ("reason", J.Str "interrupted"); ("resume", J.Str cmd) ];
          Fmt.epr "checkpoint saved in %s; resume with:@.  %s@." dir cmd
        | None -> ())
      | _ -> ());
      Option.iter
        (fun p ->
          Obs.M.set
            (Obs.M.gauge reg "provenance_bytes")
            (float_of_int (Vstore.Prov.bytes p)))
        prov;
      Option.iter
        (fun jn ->
          Obs.M.set
            (Obs.M.gauge reg "journal_bytes")
            (float_of_int (J.bytes jn.Obs.j)))
        jnl;
      Obs.emit reg ~trace_file ~metrics_file;
      let jobs_tag =
        String.concat ""
          [
            (if jobs > 1 then Fmt.str ", j=%d" jobs else "");
            (if workers > 1 then Fmt.str ", w=%d" workers else "");
            (match store_sel with
            | `Mem -> ""
            | `Collapse -> ", store=collapse"
            | `Disk -> ", store=disk");
          ]
      in
      let sym_tag =
        match symmetry with
        | `Off -> ""
        | `Auto -> ", sym=auto"
        | `Brute -> ", sym=brute"
      in
      let name =
        match (level, fspec) with
        | `Rv, Some spec ->
          Fmt.str "%s (rendezvous, n=%d, faults=%a%s)" e.Registry.name n
            Fault.pp spec jobs_tag
        | `Async, Some spec ->
          Fmt.str "%s (async, n=%d, k=%d%s, faults=%a, %s%s)" e.Registry.name
            n k
            (if generic then ", generic" else "")
            Fault.pp spec
            (if harden then "hardened" else "vanilla")
            jobs_tag
        | `Rv, None ->
          Fmt.str "%s (rendezvous, n=%d%s%s)" e.Registry.name n jobs_tag
            sym_tag
        | `Async, None ->
          Fmt.str "%s (async, n=%d, k=%d%s%s%s)" e.Registry.name n k
            (if generic then ", generic" else "")
            jobs_tag sym_tag
      in
      Fmt.pf ppf "%s: %d states, %d transitions, %.2fs, ~%.1f MB@." name
        v.Api.v_states v.Api.v_transitions m.Api.m_time_s
        (float_of_int m.Api.m_mem_bytes /. 1048576.);
      (if store_sel <> `Mem then
         let kind =
           match store_sel with
           | `Collapse -> "collapse"
           | `Disk -> "disk"
           | `Mem -> "mem"
         in
         Fmt.pf ppf "storage: %s, ~%.1f MB resident vs ~%.1f MB raw (%.1fx)@."
           kind
           (float_of_int m.Api.m_mem_bytes /. 1048576.)
           (float_of_int m.Api.m_raw_bytes /. 1048576.)
           (if m.Api.m_mem_bytes > 0 then
              float_of_int m.Api.m_raw_bytes /. float_of_int m.Api.m_mem_bytes
            else 0.));
      (match prov with
      | Some p ->
        Fmt.pf ppf "provenance: %s, %d entries, ~%.1f KB@."
          (Vstore.Prov.pkind_name (Option.get prov_sel))
          (Vstore.Prov.count p)
          (float_of_int (Vstore.Prov.bytes p) /. 1024.)
      | None -> ());
      if v.Api.v_canon_fallbacks > 0 then
        Fmt.pf ppf
          "warning: %d canonicalizations fell back to a non-canonical key \
           (symmetry reduction partial; counts are a sound upper bound)@."
          v.Api.v_canon_fallbacks;
      Fmt.pf ppf "outcome: %s@." v.Api.v_outcome_line;
      (match v.Api.v_trace with
      | _ :: _ ->
        Fmt.pf ppf "counterexample (%d steps):@."
          (List.length v.Api.v_trace - 1);
        (match v.Api.v_msc with
        | Some msc -> Fmt.pf ppf "%s@." msc
        | None -> ());
        List.iter (fun st -> Fmt.pf ppf "%s@." st) v.Api.v_trace;
        Obs.jflush jnl;
        exit 2
      | [] ->
        if v.Api.v_explored <> "complete" then begin
          Obs.jflush jnl;
          exit 2
        end);
      (match v.Api.v_liveness with
      | Some block -> Fmt.pf ppf "%s@." block
      | None -> ());
      if not v.Api.v_ok then begin
        Obs.jflush jnl;
        exit 2
      end;
      Obs.jflush jnl
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check a protocol level: reachability, coherence invariants, \
          deadlock.")
    Term.(
      const run $ protocol_arg $ n_arg $ k_arg $ generic_arg $ level
      $ symmetry $ faults_arg $ harden_arg $ max_states_arg $ mem $ jobs_arg
      $ store_arg $ workers_arg $ prov_arg $ deadline_arg $ checkpoint_arg
      $ checkpoint_every_arg $ resume_arg $ Obs.progress_arg
      $ Obs.progress_interval_arg $ Obs.trace_arg $ Obs.metrics_arg
      $ Obs.journal_arg)

(* ---- eq1 ----------------------------------------------------------------- *)

let eq1_cmd =
  let run (e : Registry.t) n k generic max_states =
    if e.Registry.system = None then begin
      Fmt.epr
        "%s is hand-optimized: the refinement soundness argument does not \
         apply.@."
        e.name;
      exit 1
    end;
    let prog = instantiate e ~generic ~n in
    let v = Ccr_refine.Absmap.check_eq1 ~max_states prog Async.{ k } in
    Fmt.pr "%a@." Ccr_refine.Absmap.pp_verdict v;
    match v.failure with
    | None -> ()
    | Some f ->
      Fmt.pr "violating transition: %a@.from (abs):@.%a@.to (abs):@.%a@."
        Async.pp_label f.label
        (Ccr_semantics.Rendezvous.pp_state prog)
        f.from_abs
        (Ccr_semantics.Rendezvous.pp_state prog)
        f.to_abs;
      exit 2
  in
  Cmd.v
    (Cmd.info "eq1"
       ~doc:
         "Verify the paper's Equation 1: every asynchronous transition maps \
          to a stutter or a rendezvous transition.")
    Term.(
      const run $ protocol_arg $ n_arg $ k_arg $ generic_arg $ max_states_arg)

(* ---- sim ----------------------------------------------------------------- *)

let sim_cmd =
  let steps =
    Arg.(
      value & opt int 100_000
      & info [ "steps" ] ~docv:"STEPS" ~doc:"Transitions to execute.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let sched =
    Arg.(
      value & opt string "uniform"
      & info [ "sched" ] ~docv:"SCHED"
          ~doc:
            "Scheduler: $(b,uniform), $(b,home-first), or $(b,starve:I) \
             (adversary that never schedules remote I).")
  in
  let run (e : Registry.t) n k generic steps seed sched faults harden progress
      trace_file metrics_file journal_file =
    let reg = Obs.setup ~trace_file in
    let ppf = Obs.report_ppf ~metrics_file in
    let module J = Obs.J in
    let jnl = Obs.journal_of journal_file in
    Obs.jev jnl "config"
      [
        ("cmd", J.Str "sim");
        ("protocol", J.Str e.Registry.name);
        ("n", J.Int n);
        ("k", J.Int k);
        ("generic", J.Bool generic);
        ("steps", J.Int steps);
        ("seed", J.Int seed);
        ("sched", J.Str sched);
        ("harden", J.Bool harden);
      ];
    (match fault_spec_of faults with
    | Some spec ->
      Obs.jev jnl "faults" [ ("budget", J.Str (Fmt.str "%a" Fault.pp spec)) ]
    | None -> ());
    let prog = instantiate e ~generic ~n in
    let fplan =
      Option.map
        (fun spec ->
          ( (if harden then Injected.Hardened else Injected.Vanilla),
            Plan.random ~n ~seed spec ))
        (fault_spec_of faults)
    in
    let sched =
      match String.split_on_char ':' sched with
      | [ "uniform" ] -> Ccr_simulate.Sched.uniform
      | [ "home-first" ] -> Ccr_simulate.Sched.home_first
      | [ "starve"; i ] -> Ccr_simulate.Sched.starve (int_of_string i)
      | _ ->
        Fmt.epr "unknown scheduler %S@." sched;
        exit 1
    in
    let t0 = Unix.gettimeofday () in
    let on_progress =
      if progress then
        Some
          (fun executed ->
            let el = Unix.gettimeofday () -. t0 in
            let rate = if el > 0. then float_of_int executed /. el else 0. in
            Printf.eprintf "\r  sim: %d/%d steps (%.0f steps/s)%!" executed
              steps rate)
      else None
    in
    let m =
      Obs.T.with_span "simulate" (fun () ->
          Ccr_simulate.Sim.run ~seed ~metrics:reg ?faults:fplan ?on_progress
            ~steps prog Async.{ k } sched)
    in
    if progress then Printf.eprintf "\r%s\r%!" (String.make 79 ' ');
    let el = Unix.gettimeofday () -. t0 in
    Obs.M.set
      (Obs.M.gauge reg "steps_per_sec")
      (if el > 0. then float_of_int m.Ccr_simulate.Sim.steps /. el else 0.);
    Obs.emit reg ~trace_file ~metrics_file;
    Obs.jev jnl "coverage"
      [
        ("family", J.Str "sim");
        ( "rules",
          J.List
            (List.filter_map
               (fun (r, c) ->
                 if c > 0 then
                   Some (J.List [ J.Str (Async.rule_name r); J.Int c ])
                 else None)
               m.Ccr_simulate.Sim.rule_counts) );
      ];
    Obs.jend jnl
      [
        ("outcome",
         J.Str
           (if m.Ccr_simulate.Sim.blocked = None then "complete"
            else "blocked"));
        ("steps", J.Int m.Ccr_simulate.Sim.steps);
        ("rendezvous", J.Int m.Ccr_simulate.Sim.rendezvous);
      ];
    Obs.jflush jnl;
    Fmt.pf ppf "%a@." Ccr_simulate.Sim.pp m;
    Fmt.pf ppf "rule counts:@.";
    List.iter
      (fun (r, c) ->
        if c > 0 then Fmt.pf ppf "  %-18s %d@." (Async.rule_name r) c)
      m.Ccr_simulate.Sim.rule_counts;
    match m.Ccr_simulate.Sim.blocked with
    | Some cfg ->
      (* deadlocked or wedged: show where the system got stuck *)
      Fmt.pf ppf "blocked configuration:@.%s@." cfg;
      exit 2
    | None -> ()
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Simulate the refined protocol and report efficiency metrics.  \
          Deadlocked or wedged runs print the blocked configuration and \
          exit 2.")
    Term.(
      const run $ protocol_arg $ n_arg $ k_arg $ generic_arg $ steps $ seed
      $ sched $ faults_arg $ harden_arg $ Obs.progress_arg $ Obs.trace_arg
      $ Obs.metrics_arg $ Obs.journal_arg)

(* ---- run ------------------------------------------------------------------ *)

let run_cmd =
  let budget =
    Arg.(
      value & opt int 100
      & info [ "budget" ] ~docv:"CYCLES"
          ~doc:"Protocol cycles each remote thread performs.")
  in
  let deadline =
    Arg.(
      value & opt float 10.
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock deadline; when hit, the per-node watchdog names \
             the stuck node and its control state.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Fault-plan seed.  Thread interleavings come from the OS \
             scheduler; the injected faults are deterministic in the \
             seed alone.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("threads", `Threads); ("loop", `Loop) ]) `Threads
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution engine: $(b,threads) runs one interpreting OS \
             thread per node (the differential oracle); $(b,loop) runs \
             the domain-sharded event loop over compiled microcode \
             tables ($(b,--domains), $(b,--batch)).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains"; "j" ] ~docv:"D"
          ~doc:
            "Loop engine only: shard the nodes over $(docv) OCaml \
             domains (clamped to the node count).")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"B"
          ~doc:
            "Loop engine only: drain up to $(docv) messages per mailbox \
             visit and fire up to $(docv) local transitions per node \
             sweep.")
  in
  let steps =
    Arg.(
      value & opt (some int) None
      & info [ "steps" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) node transitions (both engines honour \
             the same cap; the run then reports a step-cap stop instead \
             of quiescence).")
  in
  let run (e : Registry.t) n k generic budget deadline seed engine domains
      batch steps faults harden metrics_file journal_file =
    let reg = Obs.setup ~trace_file:None in
    let ppf = Obs.report_ppf ~metrics_file in
    let module J = Obs.J in
    let jnl = Obs.journal_of journal_file in
    Obs.jev jnl "config"
      [
        ("cmd", J.Str "run");
        ("protocol", J.Str e.Registry.name);
        ("n", J.Int n);
        ("k", J.Int k);
        ("generic", J.Bool generic);
        ("budget", J.Int budget);
        ("seed", J.Int seed);
        ("harden", J.Bool harden);
        ( "engine",
          J.Str (match engine with `Threads -> "threads" | `Loop -> "loop") );
        ("domains", J.Int domains);
      ];
    (match fault_spec_of faults with
    | Some spec ->
      Obs.jev jnl "faults" [ ("budget", J.Str (Fmt.str "%a" Fault.pp spec)) ]
    | None -> ());
    let prog = instantiate e ~generic ~n in
    let fplan =
      Option.map
        (fun spec ->
          ( (if harden then Injected.Hardened else Injected.Vanilla),
            Plan.random ~n ~seed spec ))
        (fault_spec_of faults)
    in
    let s =
      match engine with
      | `Threads ->
        Ccr_runtime.Runtime.run ~seed ~deadline_s:deadline ?max_steps:steps
          ~metrics:reg ?faults:fplan ~budget
          ~invariants:(e.Registry.async_invariants prog)
          prog
          Async.{ k }
      | `Loop ->
        Ccr_runtime.Engine.run ~seed ~deadline_s:deadline ?max_steps:steps
          ~domains ~batch ~metrics:reg ?faults:fplan ~budget
          ~invariants:(e.Registry.async_invariants prog)
          prog
          Async.{ k }
    in
    Obs.emit reg ~trace_file:None ~metrics_file;
    Obs.jend jnl
      [
        ( "outcome",
          J.Str
            (if
               s.Ccr_runtime.Runtime.quiescent
               && s.Ccr_runtime.Runtime.invariant_failures = []
               && s.Ccr_runtime.Runtime.protocol_errors = []
             then "quiescent"
             else "stuck") );
        ( "invariant_failures",
          J.Int (List.length s.Ccr_runtime.Runtime.invariant_failures) );
        ( "protocol_errors",
          J.Int (List.length s.Ccr_runtime.Runtime.protocol_errors) );
      ];
    Obs.jflush jnl;
    Fmt.pf ppf "%a@." Ccr_runtime.Runtime.pp_stats s;
    if
      (not s.Ccr_runtime.Runtime.quiescent)
      || s.Ccr_runtime.Runtime.invariant_failures <> []
      || s.Ccr_runtime.Runtime.protocol_errors <> []
    then exit 2
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute the refined protocol — on real threads or on the \
          domain-sharded loop engine ($(b,--engine)), optionally through \
          the fault-injecting transport — and check the coherence \
          invariants on the final configuration.  Non-quiescent runs \
          report the stuck node and exit 2.")
    Term.(
      const run $ protocol_arg $ n_arg $ k_arg $ generic_arg $ budget
      $ deadline $ seed $ engine $ domains $ batch $ steps $ faults_arg
      $ harden_arg $ Obs.metrics_arg $ Obs.journal_arg)

(* ---- fuzz ---------------------------------------------------------------- *)

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign seed.  Case $(b,i) is drawn from the single integer \
             SEED+i, so any reported failing seed re-runs alone with \
             $(b,--seed S --count 1).")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of generated protocols.")
  in
  let max_states =
    Arg.(
      value & opt int 10_000
      & info [ "max-states" ] ~docv:"S"
          ~doc:
            "State cap for each oracle exploration (hitting the cap \
             bounds the work, it is not a failure).")
  in
  let oracles =
    Arg.(
      value & opt string "all"
      & info [ "oracles" ] ~docv:"LIST"
          ~doc:
            "Comma-separated oracle subset: $(b,validate), $(b,roundtrip), \
             $(b,rv-explore), $(b,async-explore), $(b,eq1), $(b,symmetry), \
             $(b,par), $(b,faults), $(b,store), $(b,engine), $(b,resume), \
             $(b,serve), or $(b,all).")
  in
  let out_dir =
    Arg.(
      value & opt string "_fuzz"
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:
            "Where shrunk counterexamples are written as $(b,.ccr) repro \
             files (created on the first failure).")
  in
  let no_matrix =
    Arg.(
      value & flag
      & info [ "no-matrix" ]
          ~doc:
            "Skip the legacy-family baseline pass and its Tables 1-2 \
             rule-coverage matrix.")
  in
  let run seed count max_states oracles out_dir no_matrix progress trace_file
      metrics_file journal_file =
    let only =
      if oracles = "all" then Ccr_fuzz.Oracle.all
      else
        List.map
          (fun s ->
            match Ccr_fuzz.Oracle.name_of_string (String.trim s) with
            | Ok o -> o
            | Error msg ->
              Fmt.epr "%s@." msg;
              exit 1)
          (String.split_on_char ',' oracles)
    in
    let reg = Obs.setup ~trace_file in
    let ppf = Obs.report_ppf ~metrics_file in
    let module J = Obs.J in
    let jnl = Obs.journal_of journal_file in
    Obs.jev jnl "config"
      [
        ("cmd", J.Str "fuzz");
        ("seed", J.Int seed);
        ("count", J.Int count);
        ("max_states", J.Int max_states);
        ("oracles", J.Str oracles);
      ];
    let on_case =
      if progress then
        Some (fun i -> Printf.eprintf "\r  fuzz: %d/%d cases%!" (i + 1) count)
      else None
    in
    let report =
      Obs.T.with_span "fuzz" (fun () ->
          Ccr_fuzz.Driver.run ~only ~legacy_matrix:(not no_matrix)
            ~metrics:reg ?on_case ~seed ~count ~max_states ())
    in
    if progress then Printf.eprintf "\r%s\r%!" (String.make 40 ' ');
    (* All artifacts — trace, metrics, journal — land before the failure
       exit below, so a failing campaign still leaves its record. *)
    Obs.emit reg ~trace_file ~metrics_file;
    let coverage_pairs arr =
      List.mapi
        (fun i rule ->
          J.List [ J.Str (Async.rule_name rule); J.Int arr.(i) ])
        Async.all_rules
    in
    Obs.jev jnl "coverage"
      [
        ("family", J.Str "general");
        ("rules", J.List (coverage_pairs report.Ccr_fuzz.Driver.coverage));
      ];
    (match report.Ccr_fuzz.Driver.legacy_coverage with
    | Some legacy ->
      Obs.jev jnl "coverage"
        [
          ("family", J.Str "legacy");
          ("rules", J.List (coverage_pairs legacy));
        ]
    | None -> ());
    Obs.jend jnl
      [
        ( "outcome",
          J.Str
            (if report.Ccr_fuzz.Driver.failures = [] then "complete"
             else "failures") );
        ("cases", J.Int count);
        ("failures", J.Int (List.length report.Ccr_fuzz.Driver.failures));
      ];
    Obs.jflush jnl;
    Fmt.pf ppf "%a"
      (Ccr_fuzz.Driver.pp
         ~matrix:
           ((not no_matrix) && List.mem Ccr_fuzz.Oracle.Async_explore only))
      report;
    match Ccr_fuzz.Driver.write_failures ~out_dir report with
    | [] -> ()
    | paths ->
      List.iter (fun p -> Fmt.pf ppf "wrote %s@." p) paths;
      exit 2
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the whole pipeline: generate seeded \
          valid-by-construction protocols far beyond the shipped family, \
          run every oracle (validation, exploration, Eq. 1, symmetry and \
          parallel agreement, hardened faults, print/parse round-trip), \
          shrink any failure to a minimal committed .ccr repro, and report \
          the Tables 1-2 rule-coverage matrix.")
    Term.(
      const run $ seed $ count $ max_states $ oracles $ out_dir $ no_matrix
      $ Obs.progress_arg $ Obs.trace_arg $ Obs.metrics_arg $ Obs.journal_arg)

(* ---- report -------------------------------------------------------------- *)

let report_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:
            "Artifact directory: run journals ($(b,*.jsonl), written by \
             $(b,--journal)) and benchmark dumps ($(b,BENCH_*.json), \
             written by $(b,make bench-json)).")
  in
  let html_arg =
    Arg.(
      value & flag
      & info [ "html" ] ~doc:"Emit a self-contained HTML page instead of \
                              markdown.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the report to $(docv) instead of stdout.")
  in
  let run dir html out =
    let md = Ccr_obs.Run_report.to_markdown ~dir in
    let s = if html then Ccr_obs.Run_report.html_of_markdown md else md in
    match out with
    | None -> print_string s
    | Some f ->
      let oc = open_out f in
      output_string oc s;
      close_out oc;
      Fmt.pr "wrote %s@." f
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate run journals and benchmark JSON from a directory into \
          one markdown (or HTML) report: run table, violation paths, the \
          fuzz rule-coverage matrix, state-count tables, histograms.")
    Term.(const run $ dir_arg $ html_arg $ out_arg)

(* ---- msc ----------------------------------------------------------------- *)

let msc_cmd =
  let steps =
    Arg.(
      value & opt int 40
      & info [ "steps" ] ~docv:"STEPS" ~doc:"Transitions to render.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run (e : Registry.t) n k generic steps seed =
    let prog = instantiate e ~generic ~n in
    print_string (Ccr_viz.Msc.render_run ~seed ~steps prog Async.{ k })
  in
  Cmd.v
    (Cmd.info "msc"
       ~doc:
         "Render a message-sequence chart of a uniformly scheduled \
          execution of the refined protocol.")
    Term.(
      const run $ protocol_arg $ n_arg $ k_arg $ generic_arg $ steps $ seed)

(* ---- progress ------------------------------------------------------------ *)

let progress_cmd =
  let run (e : Registry.t) n k generic max_states =
    let prog = instantiate e ~generic ~n in
    let cfg = Async.{ k } in
    let g =
      Ccr_modelcheck.Graph.build ~max_states
        Explore.
          {
            init = Async.initial prog cfg;
            succ = Async.successors prog cfg;
            encode = Async.encode;
            canon = None;
          }
    in
    let progress_label (l : Async.label) =
      match l.rule with
      | Async.H_C1 | Async.H_C1_silent | Async.R_C3_ack | Async.R_C3_silent
      | Async.R_repl_recv | Async.H_T1_repl ->
        true
      | _ -> false
    in
    let dead = Ccr_modelcheck.Graph.deadlocks g in
    let bad = Ccr_modelcheck.Graph.violates_ag_ef g ~progress:progress_label in
    Fmt.pr
      "%d states%s; %d deadlocks; %d states from which no rendezvous can \
       complete@."
      (Array.length g.states)
      (if g.truncated then " (truncated: raise --max-states)" else "")
      (List.length dead) (List.length bad);
    (match bad with
    | b :: _ ->
      Fmt.pr "example losing state:@.%a@." (Async.pp_state prog) g.states.(b)
    | [] -> ());
    if dead <> [] || bad <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "progress"
       ~doc:
         "Check forward progress (§2.5): no deadlock, and from every \
          reachable state some rendezvous can still complete.")
    Term.(
      const run $ protocol_arg $ n_arg $ k_arg $ generic_arg $ max_states_arg)

(* ---- serve --------------------------------------------------------------- *)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 8377
      & info [ "port" ] ~docv:"P"
          ~doc:
            "TCP port to listen on (loopback only).  $(b,0) picks an \
             ephemeral port — read it back with $(b,--port-file).")
  in
  let port_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the bound port number to $(docv) once listening.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Worker threads draining the job queue.  Explorations are \
             serialized on one engine lock (the canonicalizers keep \
             domain-local scratch); extra workers pipeline queueing, \
             caching and I/O.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Pending-job queue capacity; a full queue answers 429.")
  in
  let cache_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache: one JSON file per (spec \
             hash, level, n, k, symmetry, faults, harden, max-states, \
             store) key.  Hits return the recorded verdict and journal \
             with zero states explored.")
  in
  let cap_arg =
    Arg.(
      value & opt int 10_000_000
      & info [ "max-states" ] ~docv:"S"
          ~doc:"Clamp submitted per-job state caps to $(docv).")
  in
  let run port port_file workers queue cache_dir cap journal_file =
    let module J = Obs.J in
    let t =
      Ccr_serve.Daemon.start ~port ~workers ~queue_cap:queue ?cache_dir
        ~max_states_cap:cap ()
    in
    let bound = Ccr_serve.Daemon.port t in
    let jnl = Obs.journal_of journal_file in
    Obs.jev jnl "config"
      [
        ("cmd", J.Str "serve");
        ("port", J.Int bound);
        ("workers", J.Int workers);
        ("queue", J.Int queue);
        ("cache", J.Bool (cache_dir <> None));
      ];
    Option.iter (fun f -> Obs.write_file f (string_of_int bound)) port_file;
    Fmt.pr "ccr serve: listening on 127.0.0.1:%d@." bound;
    let stop = ref false in
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop := true))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ];
    while not !stop do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Ccr_serve.Daemon.stop t;
    Obs.jend jnl
      [
        ("outcome", J.Str "shutdown");
        ("jobs_done", J.Int (Ccr_serve.Daemon.jobs_done t));
      ];
    Obs.jflush jnl
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the checking-as-a-service daemon: a loopback HTTP/1.1 JSON \
          API ($(b,POST /jobs), $(b,GET /jobs/ID), $(b,GET \
          /jobs/ID/events), $(b,GET /metrics)) over a bounded job queue \
          and an optional content-addressed result cache.")
    Term.(
      const run $ port_arg $ port_file_arg $ workers_arg $ queue_arg
      $ cache_dir_arg $ cap_arg $ Obs.journal_arg)

(* ---- client -------------------------------------------------------------- *)

let client_cmd =
  let port_arg =
    Arg.(
      value & opt int 8377
      & info [ "port" ] ~docv:"P" ~doc:"Daemon port on 127.0.0.1.")
  in
  let fail_request = function
    | Ok r -> r
    | Error msg ->
      Fmt.epr "ccr client: %s@." msg;
      exit 1
  in
  let sleep_poll () =
    try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let submit_cmd =
    let spec_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"PROTOCOL"
            ~doc:"Registry protocol name, or a .ccr file (sent inline).")
    in
    let level_arg =
      Arg.(
        value
        & opt (enum [ ("rendezvous", `Rv); ("async", `Async) ]) `Async
        & info [ "level" ] ~docv:"LEVEL"
            ~doc:"Check the $(b,rendezvous) or the refined $(b,async) system.")
    in
    let symmetry_arg =
      Arg.(
        value
        & opt (enum [ ("auto", `Auto); ("off", `Off); ("brute", `Brute) ]) `Auto
        & info [ "symmetry" ] ~docv:"MODE"
            ~doc:"Symmetry reduction: $(b,auto), $(b,off) or $(b,brute).")
    in
    let wait_arg =
      Arg.(
        value & flag
        & info [ "wait" ]
            ~doc:"Poll until the job finishes and print the final job object.")
    in
    let run port spec_str n k generic level symmetry faults harden max_states
        store_sel wait =
      let module J = Obs.J in
      let spec =
        if Filename.check_suffix spec_str ".ccr" then begin
          match
            let ic = open_in_bin spec_str in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          with
          | s -> Api.Inline s
          | exception Sys_error msg ->
            Fmt.epr "ccr client: %s@." msg;
            exit 1
        end
        else Api.Named spec_str
      in
      let cfg =
        {
          Api.default with
          Api.spec;
          level;
          n;
          k;
          generic;
          symmetry;
          faults;
          harden;
          max_states;
          store = store_sel;
        }
      in
      let body = J.to_string (Api.config_to_json cfg) in
      let status, resp =
        fail_request
          (Ccr_serve.Http.request ~port ~meth:"POST" ~path:"/jobs" ~body ())
      in
      if status >= 400 then begin
        print_endline resp;
        exit 1
      end;
      if not wait then print_endline resp
      else begin
        let id =
          match
            Option.bind (J.parse resp) (fun j -> J.get_str (J.find j "id"))
          with
          | Some id -> id
          | None ->
            print_endline resp;
            exit 1
        in
        let rec poll () =
          let _, body =
            fail_request
              (Ccr_serve.Http.request ~port ~meth:"GET"
                 ~path:("/jobs/" ^ id) ())
          in
          match
            Option.bind (J.parse body) (fun j -> J.get_str (J.find j "status"))
          with
          | Some "done" -> print_endline body
          | Some "failed" ->
            print_endline body;
            exit 1
          | _ ->
            sleep_poll ();
            poll ()
        in
        poll ()
      end
    in
    Cmd.v
      (Cmd.info "submit" ~doc:"Submit a check job ($(b,POST /jobs)).")
      Term.(
        const run $ port_arg $ spec_arg $ n_arg $ k_arg $ generic_arg
        $ level_arg $ symmetry_arg $ faults_arg $ harden_arg $ max_states_arg
        $ store_arg $ wait_arg)
  in
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOB" ~doc:"Job id (from $(b,submit)).")
  in
  let status_cmd =
    let run port id =
      let status, body =
        fail_request
          (Ccr_serve.Http.request ~port ~meth:"GET" ~path:("/jobs/" ^ id) ())
      in
      print_endline body;
      if status >= 400 then exit 1
    in
    Cmd.v
      (Cmd.info "status" ~doc:"Fetch a job ($(b,GET /jobs/ID)).")
      Term.(const run $ port_arg $ id_arg)
  in
  let events_cmd =
    let run port id =
      let status, body =
        fail_request
          (Ccr_serve.Http.request ~port ~meth:"GET"
             ~path:("/jobs/" ^ id ^ "/events") ())
      in
      print_string body;
      if status >= 400 then exit 1
    in
    Cmd.v
      (Cmd.info "events"
         ~doc:
           "Stream a job's schema-v1 journal events \
            ($(b,GET /jobs/ID/events)).")
      Term.(const run $ port_arg $ id_arg)
  in
  let metrics_cmd =
    let run port =
      let status, body =
        fail_request
          (Ccr_serve.Http.request ~port ~meth:"GET" ~path:"/metrics" ())
      in
      print_string body;
      if status >= 400 then exit 1
    in
    Cmd.v
      (Cmd.info "metrics"
         ~doc:"Fetch the service metrics in OpenMetrics text format.")
      Term.(const run $ port_arg)
  in
  Cmd.group
    (Cmd.info "client"
       ~doc:"Talk to a running $(b,ccr serve) daemon over its JSON API.")
    [ submit_cmd; status_cmd; events_cmd; metrics_cmd ]

let () =
  let info =
    Cmd.info "ccr" ~version:"1.0.0"
      ~doc:
        "Derive efficient asynchronous cache-coherence protocols from \
         rendezvous specifications by refinement (Nalumasu & \
         Gopalakrishnan, IPPS 1998)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; show_cmd; pairs_cmd; export_cmd; explain_cmd; check_cmd; eq1_cmd;
            sim_cmd; run_cmd; fuzz_cmd; report_cmd; msc_cmd; progress_cmd;
            serve_cmd; client_cmd;
          ]))
