(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the experiments DESIGN.md section 5 adds (rule
   coverage, Eq. 1, message efficiency, buffers/fairness, progress).

   Environment:
     CCR_BENCH_FAST=1    lower caps (quick smoke run)
     CCR_BENCH_MEM=MB    memory cap for Table 3 (default 64, as the paper)
     CCR_BENCH_JOBS=J    worker domains for the parallel-exploration section
                         (default: the recommended domain count)
     CCR_BENCH_JSON=path write machine-readable per-row results (JSON array)
                         to [path], e.g. BENCH_20260807.json
     CCR_BENCH_SERVE=1   include the checking-service section (spins up an
                         in-process [ccr serve] daemon on a loopback port)

   See EXPERIMENTS.md for the recorded paper-vs-measured discussion. *)

open Ccr_core
open Ccr_protocols
module Explore = Ccr_modelcheck.Explore
module Async = Ccr_refine.Async
module Sim = Ccr_simulate.Sim
module Sched = Ccr_simulate.Sched

let fast = Sys.getenv_opt "CCR_BENCH_FAST" = Some "1"

let mem_cap_mb =
  match Sys.getenv_opt "CCR_BENCH_MEM" with
  | Some s -> ( try int_of_string s with _ -> 64)
  | None -> if fast then 8 else 64

let time_cap = if fast then 5.0 else 120.0

let bench_jobs =
  match Sys.getenv_opt "CCR_BENCH_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> max 2 (Domain.recommended_domain_count ())

let bench_json = Sys.getenv_opt "CCR_BENCH_JSON"
let bench_serve = Sys.getenv_opt "CCR_BENCH_SERVE" = Some "1"

let section title = Fmt.pr "@.=== %s ===@.@." title

(* ---- machine-readable results ------------------------------------------ *)

let json_rows : string list ref = ref []

let outcome_tag = function
  | Explore.Complete -> "complete"
  | Explore.Limit Explore.L_states -> "limit-states"
  | Explore.Limit Explore.L_memory -> "limit-memory"
  | Explore.Limit Explore.L_time -> "limit-time"
  | Explore.Limit Explore.L_interrupt -> "limit-interrupt"
  | Explore.Violation _ -> "violation"
  | Explore.Deadlock _ -> "deadlock"

(* Protocol names are normalized to lowercase so the same workload keys
   identically whichever section emitted it (table3 used to say
   "Migratory" where the parallel section said "migratory"). *)
let record_row ?metrics ?store ?workers ?journal_bytes ?provenance_bytes
    ?checkpoint_bytes ?resumes ~protocol ~n ~level ~jobs
    (r : (_, _) Explore.stats) =
  if bench_json <> None then
    json_rows :=
      Fmt.str
        {|  {"protocol": %S, "n": %d, "level": %S, "states": %d, "transitions": %d, "time_s": %.6f, "mem_bytes": %d, "outcome": %S, "jobs": %d%s%s%s%s%s%s%s}|}
        (String.lowercase_ascii protocol)
        n level r.states r.transitions r.time_s r.mem_bytes
        (outcome_tag r.outcome) jobs
        (match store with
        | None -> ""
        | Some s ->
          Fmt.str {|, "store": %S, "raw_bytes": %d|} s r.raw_bytes)
        (match workers with
        | None -> ""
        | Some w -> Fmt.str {|, "workers": %d|} w)
        (match journal_bytes with
        | None -> ""
        | Some b -> Fmt.str {|, "journal_bytes": %d|} b)
        (match provenance_bytes with
        | None -> ""
        | Some b -> Fmt.str {|, "provenance_bytes": %d|} b)
        (match checkpoint_bytes with
        | None -> ""
        | Some b -> Fmt.str {|, "checkpoint_bytes": %d|} b)
        (match resumes with
        | None -> ""
        | Some c -> Fmt.str {|, "resumes": %d|} c)
        (match metrics with
        | None -> ""
        | Some j -> Fmt.str {|, "metrics": %s|} j)
      :: !json_rows

let record_sim_row ~protocol ~variant ~n ~metrics (m : Sim.metrics) =
  if bench_json <> None then
    json_rows :=
      Fmt.str
        {|  {"protocol": %S, "variant": %S, "n": %d, "level": "sim", "steps": %d, "rendezvous": %d, "msgs_per_rdv": %.4f, "metrics": %s}|}
        (String.lowercase_ascii protocol)
        variant n m.Sim.steps m.Sim.rendezvous
        (if m.Sim.rendezvous = 0 then 0.0 else Sim.per_rendezvous m)
        metrics
      :: !json_rows

let write_json () =
  match bench_json with
  | None -> ()
  | Some path -> (
    let rows = List.rev !json_rows in
    match open_out path with
    | exception Sys_error msg ->
      Fmt.epr "@.CCR_BENCH_JSON: cannot write %s (%s); results above stand@."
        path msg
    | oc ->
      output_string oc "[\n";
      output_string oc (String.concat ",\n" rows);
      output_string oc "\n]\n";
      close_out oc;
      Fmt.pr "@.wrote %d benchmark rows to %s@." (List.length rows) path)

(* ---- Table 3 ----------------------------------------------------------- *)

let run_rv prog =
  Explore.run ~max_mem_bytes:(mem_cap_mb * 1024 * 1024) ~max_time_s:time_cap
    Explore.
      {
        init = Ccr_semantics.Rendezvous.initial prog;
        succ = Ccr_semantics.Rendezvous.successors prog;
        encode = Ccr_semantics.Rendezvous.encode;
        canon = None;
      }

let run_async ?(k = 2) prog =
  let cfg = Async.{ k } in
  Explore.run ~max_mem_bytes:(mem_cap_mb * 1024 * 1024) ~max_time_s:time_cap
    Explore.
      {
        init = Async.initial prog cfg;
        succ = Async.successors prog cfg;
        encode = Async.encode;
        canon = None;
      }

(* Like {!run_async} but with a metrics registry metered through the
   successor relation; returns the stats plus the registry's JSON
   snapshot, to be embedded in the row. *)
let run_async_metered ?(k = 2) prog =
  let module M = Ccr_obs.Metrics in
  let cfg = Async.{ k } in
  let reg = M.create () in
  let req = M.counter reg "msg.req"
  and ack = M.counter reg "msg.ack"
  and nack = M.counter reg "msg.nack"
  and data = M.counter reg "msg.data" in
  let occ = M.histogram reg "home_buffer_occupancy" in
  let meter =
    Async.
      {
        m_sent =
          (fun w ->
            match w with
            | Ccr_refine.Wire.Req m ->
              M.incr req;
              if m.Ccr_refine.Wire.m_payload <> [] then M.incr data
            | Ccr_refine.Wire.Ack -> M.incr ack
            | Ccr_refine.Wire.Nack -> M.incr nack);
        m_buf = (fun o -> M.observe occ o);
      }
  in
  let r =
    Explore.run ~max_mem_bytes:(mem_cap_mb * 1024 * 1024) ~max_time_s:time_cap
      Explore.
        {
          init = Async.initial prog cfg;
          succ = Async.successors ~meter prog cfg;
          encode = Async.encode;
          canon = None;
        }
  in
  M.set
    (M.gauge reg "states_per_sec")
    (if r.Explore.time_s > 0. then
       float_of_int r.Explore.states /. r.Explore.time_s
     else 0.);
  (r, M.to_json (M.snapshot reg))

let cell (r : (_, _) Explore.stats) =
  match r.outcome with
  | Explore.Complete -> Fmt.str "%d/%.2f" r.states r.time_s
  | Explore.Limit _ -> Fmt.str "Unfinished (%d+/%.1fs)" r.states r.time_s
  | Explore.Violation _ -> "INVARIANT VIOLATED"
  | Explore.Deadlock _ -> "DEADLOCK"

let table3 () =
  section
    (Fmt.str
       "Table 3: states visited / time (s) for reachability analysis, %d MB \
        cap"
       mem_cap_mb);
  Fmt.pr "%-12s %-3s %-28s %-28s %-24s@." "Protocol" "N" "Asynchronous"
    "Rendezvous" "Paper (async | rdv)";
  let row name sys ~paper_async ~paper_rv n =
    let prog = Link.compile ~n sys in
    let rv = run_rv prog in
    let asy, asy_metrics = run_async_metered prog in
    record_row ~protocol:name ~n ~level:"rendezvous" ~jobs:1 rv;
    record_row ~metrics:asy_metrics ~protocol:name ~n ~level:"async" ~jobs:1
      asy;
    Fmt.pr "%-12s %-3d %-28s %-28s %-24s@." name n (cell asy) (cell rv)
      (Fmt.str "%s | %s" paper_async paper_rv)
  in
  let mig = Migratory.system () in
  row "Migratory" mig 2 ~paper_async:"23163/2.84" ~paper_rv:"54/0.1";
  row "Migratory" mig 4 ~paper_async:"Unfinished" ~paper_rv:"235/0.4";
  row "Migratory" mig
    (if fast then 5 else 8)
    ~paper_async:"Unfinished" ~paper_rv:"965/0.5";
  let inv = Invalidate.system in
  row "Invalidate" inv 2 ~paper_async:"193389/19.23" ~paper_rv:"546/0.6";
  row "Invalidate" inv
    (if fast then 3 else 4)
    ~paper_async:"Unfinished" ~paper_rv:"18686/2.3";
  row "Invalidate" inv
    (if fast then 4 else 6)
    ~paper_async:"Unfinished" ~paper_rv:"228334/18.4";
  Fmt.pr
    "@.(Absolute counts differ from SPIN's — different state encodings — \
     but the shape matches: the rendezvous column stays small while the \
     asynchronous column explodes and hits the cap.)@."

let table3_64 () =
  section "Table 3 follow-up: rendezvous migratory at large N (§5 claim)";
  List.iter
    (fun n ->
      let prog = Link.compile ~n (Migratory.system ()) in
      let r = run_rv prog in
      Fmt.pr "  N = %-3d : %s (mem ~ %.1f MB)@." n (cell r)
        (float_of_int r.mem_bytes /. 1048576.))
    (if fast then [ 16; 32 ] else [ 16; 32; 64 ]);
  Fmt.pr
    "@.(The paper model-checked the rendezvous migratory protocol for 64 \
     nodes in 32 MB while the asynchronous version exhausted 64 MB at two \
     nodes.)@."

(* ---- storage: collapse compression and the out-of-core store ------------- *)

let storage () =
  let module Vstore = Ccr_modelcheck.Vstore in
  let module Mpx = Ccr_modelcheck.Mpx in
  section
    "Storage: collapse compression, the out-of-core store and \
     multi-process exploration vs the Table 3 memory cliff";
  let sys_of prog =
    Explore.
      {
        init = Async.initial prog Async.{ k = 2 };
        succ = Async.successors prog Async.{ k = 2 };
        encode = Async.encode;
        canon = None;
      }
  in
  Fmt.pr "%-26s %9s %10s %8s %9s %9s %7s %s@." "workload" "states" "trans"
    "time(s)" "resident" "raw" "ratio" "outcome";
  let row ~protocol ~n ?(jobs = 1) ?workers ~store:(sname, kind) ?cap_mb
      ?max_time prog =
    let sys = sys_of prog in
    let max_mem_bytes = Option.map (fun mb -> mb * 1024 * 1024) cap_mb in
    let max_time_s = Option.value max_time ~default:time_cap in
    let r =
      match workers with
      | Some w when w > 1 ->
        Mpx.run ~workers:w ~jobs ~store:kind ?max_mem_bytes ~max_time_s sys
      | _ ->
        if jobs > 1 then
          Explore.par_run ~jobs ~store:kind ?max_mem_bytes ~max_time_s sys
        else Explore.run ~store:kind ?max_mem_bytes ~max_time_s sys
    in
    record_row ~protocol ~n ~level:"async" ~jobs ~store:sname ?workers r;
    let name =
      Fmt.str "%s n=%d %s%s%s%s" protocol n sname
        (if jobs > 1 then Fmt.str " j=%d" jobs else "")
        (match workers with Some w when w > 1 -> Fmt.str " w=%d" w | _ -> "")
        (match cap_mb with Some mb -> Fmt.str " @%dMB" mb | None -> "")
    in
    Fmt.pr "%-26s %9d %10d %8.2f %7.1fMB %7.1fMB %6.1fx %s@." name r.states
      r.transitions r.time_s
      (float_of_int r.mem_bytes /. 1048576.)
      (float_of_int r.raw_bytes /. 1048576.)
      (float_of_int r.raw_bytes /. float_of_int (max 1 r.mem_bytes))
      (outcome_tag r.outcome);
    r
  in
  (* The cliff itself: migratory n=5 under an 8 MB cap.  The plain store
     blows through it; collapse and disk complete with room to spare. *)
  let mig n = Link.compile ~n (Migratory.system ()) in
  let m5 = mig 5 in
  let split5 = Async.split_key m5 in
  let mem5 =
    row ~protocol:"migratory" ~n:5 ~store:("mem", Vstore.Mem) ~cap_mb:8 m5
  in
  let col5 =
    row ~protocol:"migratory" ~n:5
      ~store:("collapse", Vstore.Collapse split5)
      ~cap_mb:8 m5
  in
  ignore
    (row ~protocol:"migratory" ~n:5 ~store:("disk", Vstore.Disk) ~cap_mb:8 m5);
  (* Out-of-core headline: one size past the cliff, uncapped wall-clock,
     still a few tens of MB resident. *)
  let m6 = mig 6 in
  ignore
    (row ~protocol:"migratory" ~n:6 ~store:("disk", Vstore.Disk)
       ~max_time:(max time_cap 60.0) m6);
  (* Multi-process: two workers, each with its own collapse store — the
     counts must equal the sequential run's exactly.  These rows fork,
     which the runtime forbids after any Domain.spawn, so they precede
     every jobs>1 row (the workers' own domain pools live in the
     children). *)
  let m3 = mig 3 in
  let seq3 =
    row ~protocol:"migratory" ~n:3 ~store:("mem", Vstore.Mem) m3
  in
  let mpx3 =
    row ~protocol:"migratory" ~n:3 ~workers:2 ~jobs:2
      ~store:("collapse", Vstore.Collapse (Async.split_key m3))
      m3
  in
  ignore
    (row ~protocol:"migratory" ~n:5
       ~store:("collapse", Vstore.Collapse split5)
       ~cap_mb:8 ~jobs:bench_jobs m5);
  Fmt.pr "@.workers=2 determinism: %s (%d/%d states, %d/%d transitions)@."
    (if
       seq3.Explore.states = mpx3.Explore.states
       && seq3.Explore.transitions = mpx3.Explore.transitions
     then "counts identical to sequential"
     else "MISMATCH")
    mpx3.Explore.states seq3.Explore.states mpx3.Explore.transitions
    seq3.Explore.transitions;
  Fmt.pr
    "(The plain store stopped at %d states; collapse finished all %d in the \
     same 8 MB — the Table 3 'Unfinished' wall is a storage artifact, not a \
     state-count one.)@."
    mem5.Explore.states col5.Explore.states

(* ---- parallel exploration ----------------------------------------------- *)

let parallel () =
  section
    (Fmt.str
       "Parallel exploration: sequential vs %d domains on the Table 3 \
        asynchronous workloads (available cores: %d)"
       bench_jobs
       (Domain.recommended_domain_count ()));
  Fmt.pr "%-22s %10s %12s %10s %10s %8s %8s@." "workload" "states" "trans"
    "seq (s)" "par (s)" "speedup" "equal";
  let row protocol n prog =
    let name = Fmt.str "%s n=%d" protocol n in
    let sys =
      Explore.
        {
          init = Async.initial prog Async.{ k = 2 };
          succ = Async.successors prog Async.{ k = 2 };
          encode = Async.encode;
          canon = None;
        }
    in
    let mem = mem_cap_mb * 1024 * 1024 in
    let seq = Explore.run ~max_mem_bytes:mem ~max_time_s:time_cap sys in
    let par =
      Explore.par_run ~jobs:bench_jobs ~max_mem_bytes:mem ~max_time_s:time_cap
        sys
    in
    record_row ~protocol ~n ~level:"async" ~jobs:1 seq;
    record_row ~protocol ~n ~level:"async" ~jobs:bench_jobs par;
    let equal = seq.states = par.states && seq.transitions = par.transitions in
    Fmt.pr "%-22s %10d %12d %10.3f %10.3f %7.2fx %8s@." name seq.states
      seq.transitions seq.time_s par.time_s
      (seq.time_s /. max 1e-9 par.time_s)
      (if equal then "yes" else "NO");
    if not equal then
      Fmt.pr "  MISMATCH: par %d states / %d transitions@." par.states
        par.transitions
  in
  let mig = Migratory.system () in
  row "migratory" 2 (Link.compile ~n:2 mig);
  let mig_big = if fast then 3 else 4 in
  row "migratory" mig_big (Link.compile ~n:mig_big mig);
  row "invalidate" 2 (Link.compile ~n:2 Invalidate.system);
  if not fast then row "invalidate" 3 (Link.compile ~n:3 Invalidate.system);
  Fmt.pr
    "@.(Counts must agree exactly with the sequential engine — that is the \
     determinism contract of Explore.par_run.  Wall-clock speedup depends \
     on the cores the container actually grants; on a single-core host the \
     parallel engine degrades to roughly sequential speed plus \
     synchronization overhead.)@."

(* ---- Figures ----------------------------------------------------------- *)

let figures () =
  section "Figure 1: communication-state shapes (examples of §2.4)";
  let open Dsl in
  let example_home =
    process "fig1a_home" ~vars:[ ("i", Value.Drid); ("j", Value.Drid) ]
      ~init:"s"
      [
        state "s"
          [
            recv_any "i" "m1" [] ~goto:"s";
            send_to (v "i") "m2" [] ~goto:"s";
            recv_any "j" "m3" [] ~goto:"s";
          ];
      ]
  in
  let example_active =
    process "fig1b_remote" ~vars:[] ~init:"s"
      [ state "s" [ send_home "m" [] ~goto:"s" ] ]
  in
  let example_passive =
    process "fig1c_remote" ~vars:[] ~init:"s"
      [
        state "s"
          [
            recv_home "m1" [] ~goto:"s";
            recv_home "m2" [] ~goto:"s";
            tau "tau" ~goto:"s";
          ];
      ]
  in
  Fmt.pr "%a@.%a@.%a@." Ccr_viz.Ascii.pp_process example_home
    Ccr_viz.Ascii.pp_process example_active Ccr_viz.Ascii.pp_process
    example_passive;
  let mig = Migratory.system () in
  section "Figures 2-3: rendezvous migratory protocol";
  Fmt.pr "%a@." Ccr_viz.Ascii.pp_system mig;
  section "Figures 4-5: refined (asynchronous) migratory protocol";
  let prog = Link.compile ~n:2 mig in
  Fmt.pr "%a@.%a@." Ccr_viz.Ascii.pp_automaton
    (Ccr_refine.Compile.home_automaton prog)
    Ccr_viz.Ascii.pp_automaton
    (Ccr_refine.Compile.remote_automaton prog);
  Fmt.pr
    "(request/reply pairs applied: %a — req/gr and inv/ID need two messages, \
     LR keeps its ack: exactly the dotted-edge discussion of §5)@."
    Fmt.(list ~sep:comma Reqrep.pp_pair)
    prog.pairs

(* ---- Tables 1-2 rule coverage ------------------------------------------ *)

let rule_coverage () =
  section "Tables 1-2: refinement-rule coverage over reachable executions";
  let coverage prog k =
    let cfg = Async.{ k } in
    let fired = Hashtbl.create 32 in
    let seen = Hashtbl.create 1024 in
    let q = Queue.create () in
    let push st =
      let key = Async.encode st in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Queue.push st q
      end
    in
    push (Async.initial prog cfg);
    while not (Queue.is_empty q) do
      let st = Queue.pop q in
      List.iter
        (fun ((l : Async.label), st') ->
          Hashtbl.replace fired l.rule ();
          push st')
        (Async.successors prog cfg st)
    done;
    fired
  in
  let tables =
    [
      ("mig n=3 k=2", coverage (Link.compile ~n:3 (Migratory.system ())) 2);
      ( "mig n=3 generic",
        coverage (Link.compile ~reqrep:false ~n:3 (Migratory.system ())) 2 );
      ("inv n=2 k=2", coverage (Link.compile ~n:2 Invalidate.system) 2);
      ("inv n=3 k=4", coverage (Link.compile ~n:3 Invalidate.system) 4);
    ]
  in
  Fmt.pr "%-18s" "rule";
  List.iter (fun (n, _) -> Fmt.pr " %-16s" n) tables;
  Fmt.pr "@.";
  List.iter
    (fun rule ->
      Fmt.pr "%-18s" (Async.rule_name rule);
      List.iter
        (fun (_, tbl) ->
          Fmt.pr " %-16s" (if Hashtbl.mem tbl rule then "fired" else "-"))
        tables;
      Fmt.pr "@.")
    Async.all_rules;
  Fmt.pr
    "@.(H-T2 needs an explicit nack of a home request: these protocols' \
     remotes always either match it or cross it with their own request \
     (implicit nack, H-T3).  H-T5 needs a satisfying foreign request at \
     exactly two free slots; the unit tests exercise both rows directly.)@."

(* ---- Eq. 1 -------------------------------------------------------------- *)

let eq1 () =
  section "Eq. 1 (§4): stuttering simulation of the rendezvous protocol";
  let check name prog =
    let v =
      Ccr_refine.Absmap.check_eq1
        ~max_states:(if fast then 20_000 else 200_000)
        prog Async.{ k = 2 }
    in
    Fmt.pr "  %-34s %a@." name Ccr_refine.Absmap.pp_verdict v
  in
  check "migratory n=2" (Link.compile ~n:2 (Migratory.system ()));
  check "migratory n=3" (Link.compile ~n:3 (Migratory.system ()));
  check "migratory n=2 (generic)"
    (Link.compile ~reqrep:false ~n:2 (Migratory.system ()));
  check "migratory n=2 (data)"
    (Link.compile ~n:2 (Migratory.system ~with_data:true ()));
  check "invalidate n=2" (Link.compile ~n:2 Invalidate.system);
  check "invalidate n=2 (generic)"
    (Link.compile ~reqrep:false ~n:2 Invalidate.system);
  check "lock n=3" (Link.compile ~n:3 Lock_server.system)

(* ---- message efficiency -------------------------------------------------- *)

let message_efficiency () =
  section
    "Message efficiency: request/ack/nack per completed rendezvous (§1's \
     quality measure; quantifies the §5 comparison the paper left open)";
  let steps = if fast then 20_000 else 200_000 in
  Fmt.pr "%-34s %8s %8s %8s %8s %10s %9s@." "protocol" "req" "ack" "nack"
    "rendezv" "msgs/rdv" "latency";
  let row ~protocol ~variant ~n display prog =
    let module M = Ccr_obs.Metrics in
    let reg = M.create () in
    let m = Sim.run ~metrics:reg ~steps prog Async.{ k = 2 } Sched.uniform in
    record_sim_row ~protocol ~variant ~n
      ~metrics:(M.to_json (M.snapshot reg))
      m;
    Fmt.pr "%-34s %8d %8d %8d %8d %10.2f %9.1f@." display m.Sim.reqs
      m.Sim.acks m.Sim.nacks m.Sim.rendezvous (Sim.per_rendezvous m)
      (Sim.mean_latency m)
  in
  List.iter
    (fun n ->
      row ~protocol:"migratory" ~variant:"refined" ~n
        (Fmt.str "migratory n=%d refined" n)
        (Link.compile ~n (Migratory.system ()));
      row ~protocol:"migratory" ~variant:"generic" ~n
        (Fmt.str "migratory n=%d generic (no 3.3)" n)
        (Link.compile ~reqrep:false ~n (Migratory.system ()));
      row ~protocol:"migratory" ~variant:"hand" ~n
        (Fmt.str "migratory n=%d hand (unacked LR)" n)
        (Migratory_hand.prog ~n ()))
    [ 2; 4; 8 ];
  row ~protocol:"invalidate" ~variant:"refined" ~n:4
    "invalidate n=4 refined"
    (Link.compile ~n:4 Invalidate.system);
  row ~protocol:"invalidate" ~variant:"generic" ~n:4 "invalidate n=4 generic"
    (Link.compile ~reqrep:false ~n:4 Invalidate.system);
  Fmt.pr
    "@.(Refined ~2 msgs/rendezvous vs ~3.5-4 generic: the §3.3 optimization \
     halves traffic.  The hand design saves only the LR ack — 'we believe \
     the loss of efficiency due to the extra ack is small'.  Latency is \
     mean scheduler steps from a remote's first request to its own \
     completion, so it also prices contention: the generic scheme's extra \
     round trips lengthen every transaction, while the unacked-LR variant \
     recycles relinquishers faster and makes requesters queue behind more \
     traffic.  The revocation chain req->inv->ID->gr dominates the \
     contended cases — the hop the paper's §8 future work, direct \
     remote-to-remote transfers, would remove.)@."

(* ---- fault model --------------------------------------------------------- *)

let faults_bench () =
  section
    "Fault model: the refinement without its §2.2 channel assumption \
     (vanilla) vs the timeout/retransmit/dedup hardening";
  let module F = Ccr_faults.Fault in
  let module I = Ccr_faults.Injected in
  let module P = Ccr_faults.Plan in
  let spec s =
    match F.parse s with Ok sp -> sp | Error m -> failwith m
  in
  let cfg = Async.{ k = 2 } in
  let n = 2 in
  (* Checker: what the fault budget costs in states, and which mode keeps
     liveness.  Vanilla typically stays coherent (safety) yet lets one
     drop starve a remote forever; hardened restores quiescence. *)
  Fmt.pr "model checker, budget drop=1@@ack, n=%d:@." n;
  Fmt.pr "  %-12s %-9s %9s %12s %-10s %s@." "protocol" "mode" "states"
    "transitions" "outcome" "liveness";
  let check_one name invariants prog mode =
    let sp = spec "drop=1@ack" in
    let sys =
      Explore.
        {
          init = I.initial sp prog cfg;
          succ = I.successors mode sp prog cfg;
          encode = I.encode;
          canon = None;
        }
    in
    let invariants = I.no_wedge :: List.map I.lift_invariant invariants in
    let r =
      Explore.run ~max_states:500_000 ~check_deadlock:true ~invariants sys
    in
    let mode_tag = match mode with I.Vanilla -> "vanilla" | I.Hardened -> "hardened" in
    let liveness =
      match r.Explore.outcome with
      | Explore.Complete ->
        let g = Ccr_modelcheck.Graph.build ~max_states:500_000 sys in
        if g.Ccr_modelcheck.Graph.truncated then "(truncated)"
        else
          let starved =
            List.filter
              (fun i ->
                Ccr_modelcheck.Graph.violates_ag_ef g
                  ~progress:(fun l ->
                    match l with
                    | I.Step al -> I.completes al && al.Async.actor = i
                    | I.Fault _ -> false)
                <> [])
              (List.init n (fun i -> i))
          in
          if starved = [] then "live"
          else
            Fmt.str "remote %s starvable"
              (String.concat "," (List.map string_of_int starved))
      | _ -> "-"
    in
    record_row ~protocol:name ~n
      ~level:(Fmt.str "async-faults-%s" mode_tag)
      ~jobs:1 r;
    Fmt.pr "  %-12s %-9s %9d %12d %-10s %s@." name mode_tag r.Explore.states
      r.Explore.transitions
      (outcome_tag r.Explore.outcome)
      liveness
  in
  List.iter
    (fun (name, invs, prog) ->
      check_one name invs prog I.Vanilla;
      check_one name invs prog I.Hardened)
    [
      (let p = Link.compile ~n (Migratory.system ()) in
       ("migratory", Migratory.async_invariants p, p));
      (let p = Link.compile ~n Invalidate.system in
       ("invalidate", Invalidate.async_invariants p, p));
      (let p = Link.compile ~n Lock_server.system in
       ("lock", Lock_server.async_invariants p, p));
    ];
  (* Simulator: the message-overhead price of riding out faults on the
     hardened transport, against the same workload fault-free. *)
  let steps = if fast then 20_000 else 100_000 in
  let prog = Link.compile ~n (Migratory.system ()) in
  Fmt.pr "@.simulator overhead (migratory n=%d, %d steps, seed 7):@." n steps;
  Fmt.pr "  %-26s %10s %10s %9s %9s %9s@." "variant" "messages" "rendezv"
    "msgs/rdv" "retrans" "absorbed";
  let sim_row display variant faults =
    let module M = Ccr_obs.Metrics in
    let reg = M.create () in
    let m = Sim.run ~seed:7 ~metrics:reg ?faults ~steps prog cfg Sched.uniform in
    record_sim_row ~protocol:"migratory" ~variant ~n
      ~metrics:(M.to_json (M.snapshot reg))
      m;
    Fmt.pr "  %-26s %10d %10d %9.2f %9d %9d@." display (Sim.messages m)
      m.Sim.rendezvous (Sim.per_rendezvous m)
      m.Sim.faults.F.f_retransmits m.Sim.faults.F.f_absorbed;
    m
  in
  let base = sim_row "fault-free" "faults-none" None in
  let sp = spec "drop=2,dup=2,delay=2" in
  let hard =
    sim_row "hardened, drop/dup/delay=2" "faults-hardened"
      (Some (I.Hardened, P.random ~n ~seed:7 sp))
  in
  Fmt.pr
    "@.(Hardened overhead: %+.2f%% messages per rendezvous over the \
     fault-free run — the retransmits and re-acks that buy survival.  The \
     vanilla transport is not in this table: under the same plan it \
     deadlocks, which ccr sim reports with the blocked configuration and \
     exit 2.)@."
    (100.
    *. ((Sim.per_rendezvous hard /. Sim.per_rendezvous base) -. 1.))

(* ---- buffers and fairness ------------------------------------------------ *)

let buffers_fairness () =
  section "Buffers and fairness (§2.5, §6)";
  let steps = if fast then 20_000 else 100_000 in
  let n = 6 in
  let prog = Link.compile ~n (Migratory.system ()) in
  Fmt.pr "nack rate vs home buffer capacity k (migratory n=%d, uniform):@." n;
  Fmt.pr "  %-4s %8s %8s %10s %12s@." "k" "nacks" "retrans" "rendezv"
    "nacks/rdv";
  List.iter
    (fun k ->
      let m = Sim.run ~steps prog Async.{ k } Sched.uniform in
      Fmt.pr "  %-4d %8d %8d %10d %12.3f@." k m.Sim.nacks
        m.Sim.retransmissions m.Sim.rendezvous
        (float_of_int m.Sim.nacks /. float_of_int (max 1 m.Sim.rendezvous)))
    [ 2; 3; 4; 6 ];
  Fmt.pr
    "@.starvation (§6): an adversarial scheduler can deny r0 forever while \
     the others progress (weak fairness — §2.5 guarantees only that SOME \
     remote advances):@.";
  let prog3 = Link.compile ~n:3 (Migratory.system ()) in
  List.iter
    (fun (name, sched) ->
      let m = Sim.run ~steps prog3 Async.{ k = 2 } sched in
      Fmt.pr "  %-12s per-remote completions: %s@." name
        (String.concat " "
           (Array.to_list (Array.map string_of_int m.Sim.per_remote))))
    [ ("uniform", Sched.uniform); ("starve-r0", Sched.starve 0) ];
  Fmt.pr
    "@.§6's sizing rule: per-remote progress needs home buffering for every \
     outstanding request.  For 64 nodes x 8 outstanding transactions, the \
     home needs %d buffer slots (+1 ack buffer) = 513, as the paper \
     computes; with the k = 2 scheme it needs just 2 per line.@."
    (64 * 8)

(* ---- forward progress ----------------------------------------------------- *)

let progress () =
  section
    "Forward progress (§2.5): from every reachable asynchronous state a \
     rendezvous can still complete (AG EF), and no deadlock exists";
  let check name prog k =
    let cfg = Async.{ k } in
    let g =
      Ccr_modelcheck.Graph.build
        ~max_states:(if fast then 30_000 else 300_000)
        Explore.
          {
            init = Async.initial prog cfg;
            succ = Async.successors prog cfg;
            encode = Async.encode;
            canon = None;
          }
    in
    let progress_label (l : Async.label) =
      match l.rule with
      | Async.H_C1 | Async.H_C1_silent | Async.R_C3_ack | Async.R_C3_silent
      | Async.R_repl_recv | Async.H_T1_repl ->
        true
      | _ -> false
    in
    let deadlocks = Ccr_modelcheck.Graph.deadlocks g in
    let bad = Ccr_modelcheck.Graph.violates_ag_ef g ~progress:progress_label in
    Fmt.pr "  %-28s %7d states%s: %d deadlocks, %d states losing progress@."
      name
      (Array.length g.states)
      (if g.truncated then " (truncated)" else "")
      (List.length deadlocks) (List.length bad)
  in
  check "migratory n=2 k=2" (Link.compile ~n:2 (Migratory.system ())) 2;
  check "migratory n=3 k=2" (Link.compile ~n:3 (Migratory.system ())) 2;
  check "migratory n=2 (generic)"
    (Link.compile ~reqrep:false ~n:2 (Migratory.system ()))
    2;
  check "invalidate n=2 k=2" (Link.compile ~n:2 Invalidate.system) 2;
  check "lock n=3 k=2" (Link.compile ~n:3 Lock_server.system) 2

(* ---- extension: symmetry reduction ---------------------------------------- *)

let symmetry () =
  let module Sym = Ccr_refine.Symmetry in
  section
    "Extension (beyond the paper): symmetry reduction over remote \
     identities — fast canonicalization (signature sort + tie refinement)";
  (* Quotient runners: canonical key in the visited set, concrete states
     explored (the [canon] hook of [Explore]); fallbacks counted per run. *)
  let canon_of stats key =
    Some
      Explore.
        {
          canon_key = key;
          canon_fresh = None;
          canon_fallbacks = (fun () -> Sym.fallbacks stats);
        }
  in
  let rv_q ?(brute = false) prog =
    let stats = Sym.make_stats () in
    let key =
      if brute then Sym.canonical_rv ~stats prog
      else Sym.canonical_rv_fast ~stats prog
    in
    let r =
      Explore.run ~max_mem_bytes:(mem_cap_mb * 1024 * 1024)
        ~max_time_s:time_cap
        Explore.
          {
            init = Ccr_semantics.Rendezvous.initial prog;
            succ = Ccr_semantics.Rendezvous.successors prog;
            encode = Ccr_semantics.Rendezvous.encode;
            canon = canon_of stats key;
          }
    in
    (r, stats)
  in
  let as_q ?(brute = false) prog =
    let cfg = Async.{ k = 2 } in
    let stats = Sym.make_stats () in
    let key =
      if brute then Sym.canonical_async ~stats prog
      else Sym.canonical_async_fast ~stats prog
    in
    let r =
      Explore.run ~max_mem_bytes:(mem_cap_mb * 1024 * 1024)
        ~max_time_s:time_cap
        Explore.
          {
            init = Async.initial prog cfg;
            succ = Async.successors prog cfg;
            encode = Async.encode;
            canon = canon_of stats key;
          }
    in
    (r, stats)
  in
  let record ~protocol ~n ~level ((r : (_, _) Explore.stats), stats) =
    record_row ~protocol ~n ~level ~jobs:1
      ~metrics:
        (Fmt.str
           {|{"canon_calls": %d, "canon_fallbacks": %d, "canon_seconds": %.6f}|}
           (Sym.calls stats) (Sym.fallbacks stats) (Sym.canon_seconds stats))
      r;
    (r, stats)
  in
  let factor exact (q : (_, _) Explore.stats) =
    match (exact.Explore.outcome, q.Explore.outcome) with
    | Explore.Complete, Explore.Complete ->
      Fmt.str "%.1fx" (float_of_int exact.Explore.states /. float_of_int q.states)
    | _ -> "-"
  in
  (* Part 1 — the fast canonicalizer against the brute-force oracle, on
     sizes where n! re-encodes are still affordable.  "agree" asserts the
     two quotients have identical state counts (they provably induce the
     same partition; this is the bench re-checking it). *)
  Fmt.pr "%-22s %12s %14s %7s %14s %6s@." "system" "exact" "fast quotient"
    "factor" "brute oracle" "agree";
  let oracle name exact ((q, _) : _ * Sym.stats) (b, _) =
    Fmt.pr "%-22s %12s %14s %7s %14s %6s@." name (cell exact) (cell q)
      (factor exact q) (cell b)
      (if b.Explore.states = q.Explore.states then "yes" else "NO")
  in
  let mig = Migratory.system () in
  let inv = Invalidate.system in
  let oracle_rv name sys n =
    let prog = Link.compile ~n sys in
    let exact = run_rv prog in
    record_row ~protocol:name ~n ~level:"rendezvous" ~jobs:1 exact;
    let q = record ~protocol:name ~n ~level:"rendezvous-quotient" (rv_q prog) in
    oracle
      (Fmt.str "%s rdv n=%d" name n)
      exact q (rv_q ~brute:true prog)
  and oracle_as name sys n =
    let prog = Link.compile ~n sys in
    let exact = run_async prog in
    record_row ~protocol:name ~n ~level:"async" ~jobs:1 exact;
    let q = record ~protocol:name ~n ~level:"async-quotient" (as_q prog) in
    oracle
      (Fmt.str "%s async n=%d" name n)
      exact q (as_q ~brute:true prog)
  in
  List.iter
    (fun n -> oracle_rv "migratory" mig n)
    (if fast then [ 3; 4 ] else [ 3; 4; 5 ]);
  List.iter (fun n -> oracle_rv "invalidate" inv n) (if fast then [ 3 ] else [ 3; 4 ]);
  List.iter
    (fun n -> oracle_as "migratory" mig n)
    (if fast then [ 2; 3 ] else [ 2; 3; 4 ]);
  List.iter (fun n -> oracle_as "invalidate" inv n) (if fast then [ 3 ] else [ 3; 4 ]);
  (* Part 2 — past the old n! cliff.  The brute canonicalizer was unusable
     beyond max_fact = 6 remotes; signature sorting makes n = 7+ routine.
     Exact exploration of the async systems is shown hitting the resource
     cap where it does — the quotient completes.  A non-zero fb column
     means that many states fell back to a non-canonical key (partial
     reduction, counts a sound upper bound). *)
  Fmt.pr "@.%-22s %22s %14s %7s %4s %7s@." "system" "exact" "fast quotient"
    "factor" "fb" "canon%";
  let cliff name exact (q, qs) =
    Fmt.pr "%-22s %22s %14s %7s %4d %6.0f%%@." name (cell exact) (cell q)
      (factor exact q) (Sym.fallbacks qs)
      (if q.Explore.time_s > 0. then
         100. *. Sym.canon_seconds qs /. q.Explore.time_s
       else 0.)
  in
  let cliff_rv n =
    let prog = Link.compile ~n mig in
    cliff
      (Fmt.str "migratory rdv n=%d" n)
      (run_rv prog)
      (record ~protocol:"migratory" ~n ~level:"rendezvous-quotient" (rv_q prog))
  and cliff_as n =
    let prog = Link.compile ~n mig in
    cliff
      (Fmt.str "migratory async n=%d" n)
      (run_async prog)
      (record ~protocol:"migratory" ~n ~level:"async-quotient" (as_q prog))
  in
  List.iter cliff_rv (if fast then [ 7 ] else [ 7; 8 ]);
  List.iter cliff_as (if fast then [ 6 ] else [ 6; 7 ]);
  Fmt.pr
    "@.(The factor approaches n! where remote identities are fully \
     interchangeable.  1997 SPIN had no symmetry reduction; with it, the \
     asynchronous protocols regain several remotes before the Table 3 \
     wall.)@."

(* ---- library breadth ------------------------------------------------------ *)

let breadth () =
  section
    "Protocol library: every shipped protocol, derived and verified the \
     same way (n = 2, k = 2)";
  Fmt.pr "%-16s %10s %10s %8s %8s %-30s@." "protocol" "rdv states"
    "async" "eq1" "inv" "request/reply pairs";
  List.iter
    (fun (e : Registry.t) ->
      let prog = e.Registry.instantiate ~reqrep:true ~n:2 in
      let rv =
        match e.Registry.system with
        | None -> "-"
        | Some _ -> string_of_int (run_rv prog).states
      in
      let asy =
        Explore.run ~check_deadlock:true
          ~invariants:(e.Registry.async_invariants prog)
          Explore.
            {
              init = Async.initial prog Async.{ k = 2 };
              succ = Async.successors prog Async.{ k = 2 };
              encode = Async.encode;
              canon = None;
            }
      in
      let eq1 =
        if e.Registry.system = None then "n/a"
        else if
          (Ccr_refine.Absmap.check_eq1 ~max_states:300_000 prog
             Async.{ k = 2 })
            .ok
        then "OK"
        else "FAIL"
      in
      Fmt.pr "%-16s %10s %10d %8s %8s %-30s@." e.name rv asy.states eq1
        (match asy.outcome with
        | Explore.Complete -> "hold"
        | _ -> "FAIL")
        (String.concat ", "
           (List.map
              (fun (p : Reqrep.pair) -> p.req ^ "/" ^ p.repl)
              prog.pairs)))
    Registry.all

(* ---- journal / provenance overhead ---------------------------------------- *)

(* The observability layer's pitch is that recording provenance (8 bytes
   per state) and a run journal costs almost nothing next to the
   exploration itself: target < 3% wall-clock on invalidate async n=4.
   Best-of-3 on both sides to keep scheduler noise out of the ratio. *)
let journal_overhead () =
  section "Journal & provenance overhead (invalidate, async, n=4)";
  let module Prov = Ccr_modelcheck.Vstore.Prov in
  let module J = Ccr_obs.Journal in
  let prog = Link.compile ~n:4 Invalidate.system in
  let cfg = Async.{ k = 2 } in
  let sys =
    Explore.
      {
        init = Async.initial prog cfg;
        succ = Async.successors prog cfg;
        encode = Async.encode;
        canon = None;
      }
  in
  let best f =
    let rec go best n =
      if n = 0 then best
      else
        let r = f () in
        go (if r.Explore.time_s < best.Explore.time_s then r else best)
          (n - 1)
    in
    go (f ()) 2
  in
  let plain = best (fun () -> Explore.run ~max_time_s:time_cap sys) in
  let jbytes = ref 0 and pbytes = ref 0 in
  let journaled =
    best (fun () ->
        let prov = Prov.create () in
        let j = J.create () in
        J.event j "config"
          [ ("cmd", J.Str "bench"); ("protocol", J.Str "invalidate") ];
        let on_level ~depth ~states =
          J.event j "level" [ ("depth", J.Int depth); ("states", J.Int states) ]
        in
        let r = Explore.run ~max_time_s:time_cap ~prov ~on_level sys in
        J.event j "end" [ ("states", J.Int r.Explore.states) ];
        jbytes := J.bytes j;
        pbytes := Prov.bytes prov;
        r)
  in
  let overhead =
    if plain.Explore.time_s > 0. then
      (journaled.Explore.time_s -. plain.Explore.time_s)
      /. plain.Explore.time_s *. 100.
    else 0.
  in
  Fmt.pr "  %-28s %10s %10s %10s@." "" "time" "journal" "provenance";
  Fmt.pr "  %-28s %9.3fs %10s %10s@." "plain exploration"
    plain.Explore.time_s "-" "-";
  Fmt.pr "  %-28s %9.3fs %9db %9db@." "journal + provenance"
    journaled.Explore.time_s !jbytes !pbytes;
  Fmt.pr "  journal overhead: %+.1f%% wall-clock (target < 3%%)@." overhead;
  record_row ~protocol:"invalidate" ~n:4 ~level:"async" ~jobs:1 plain;
  record_row ~protocol:"invalidate" ~n:4 ~level:"async" ~jobs:1
    ~journal_bytes:!jbytes ~provenance_bytes:!pbytes journaled

(* ---- checkpoint overhead (§6h) ------------------------------------------ *)

let checkpoint_overhead () =
  section "Checkpoint overhead (invalidate, async, n=4)";
  let module Ckpt = Ccr_modelcheck.Ckpt in
  let module Sym = Ccr_refine.Symmetry in
  let module J = Ccr_obs.Journal in
  let prog = Link.compile ~n:4 Invalidate.system in
  let cfg = Async.{ k = 2 } in
  let plain_sys =
    Explore.
      {
        init = Async.initial prog cfg;
        succ = Async.successors prog cfg;
        encode = Async.encode;
        canon = None;
      }
  in
  (* the CLI-shaped system: [ccr check] canonicalizes by default, so the
     acceptance configuration explores the symmetry quotient *)
  let sym_sys () =
    let stats = Sym.make_stats () in
    {
      plain_sys with
      Explore.canon =
        Some
          Explore.
            {
              canon_key = Sym.canonical_async_fast ~stats prog;
              canon_fresh = None;
              canon_fallbacks = (fun () -> Sym.fallbacks stats);
            };
    }
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "ccr-bench-ckpt-%d" (Unix.getpid ()))
  in
  let cleanup () =
    (try Sys.remove (Ckpt.file dir) with Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  let manifest = [ ("spec_hash", J.Str "bench") ] in
  let ck_bytes = ref 0 and writes = ref 0 in
  let ckpt_every every =
    ck_bytes := 0;
    writes := 0;
    Explore.
      {
        ck_resume = None;
        ck_save =
          Ckpt.saver ~dir ~manifest ~prov:None ~every:(Ckpt.E_states every)
            ~on_save:(fun ~bytes ~states:_ ~depth:_ ->
              ck_bytes := bytes;
              incr writes)
            ();
      }
  in
  (* interleave plain/checkpointed samples so clock drift and GC
     warm-up hit both sides equally, and keep the fastest of each —
     with the write counters of the kept checkpointed run, not of
     whichever ran last *)
  let paired ~samples fp fc =
    let tp = ref 0. and tc = ref 0. in
    let bp =
      ref
        (let r = fp () in
         tp := r.Explore.time_s;
         r)
    in
    let bc =
      ref
        (let r = fc () in
         tc := r.Explore.time_s;
         (r, !ck_bytes, !writes))
    in
    let take_p () =
      let p = fp () in
      tp := !tp +. p.Explore.time_s;
      if p.Explore.time_s < !bp.Explore.time_s then bp := p
    and take_c () =
      let c = fc () in
      tc := !tc +. c.Explore.time_s;
      let b, _, _ = !bc in
      if c.Explore.time_s < b.Explore.time_s then bc := (c, !ck_bytes, !writes)
    in
    for i = 2 to samples do
      (* alternate which side goes first so monotone drift (GC heap
         growth, frequency scaling) cannot favour one side *)
      if i land 1 = 0 then (
        take_c ();
        take_p ())
      else (
        take_p ();
        take_c ())
    done;
    let c, bytes, ws = !bc in
    ck_bytes := bytes;
    writes := ws;
    (* the table shows the fastest runs; the overhead ratio uses the
       summed interleaved samples — a paired mean is far less exposed to
       scheduler noise than a ratio of two single (best) observations *)
    (!bp, c, (!tc -. !tp) /. !tp *. 100.)
  in
  let row name plain ckptd =
    let overhead =
      if plain > 0. then (ckptd -. plain) /. plain *. 100. else 0.
    in
    Fmt.pr "  %-34s %9.3fs %9.3fs %+6.1f%% %9db %3d@." name plain ckptd
      overhead !ck_bytes !writes;
    overhead
  in
  Fmt.pr "  %-34s %10s %10s %7s %10s %3s@." "" "plain" "ckpt" "ovh" "bytes"
    "writes";
  (* Acceptance configuration: as [ccr check invalidate -n 4 --level
     async --checkpoint DIR --checkpoint-every 100000] — the quotient
     stays under the period, so no mid-run write ever falls due and a
     completed run skips the final one. *)
  let p_sym, c_sym, sym_ovh =
    paired ~samples:5
      (fun () -> Explore.run ~max_time_s:time_cap (sym_sys ()))
      (fun () ->
        Explore.run ~max_time_s:time_cap ~ckpt:(ckpt_every 100_000)
          (sym_sys ()))
  in
  ignore
    (row "symmetry quotient, every=100k" p_sym.Explore.time_s
       c_sym.Explore.time_s);
  Fmt.pr "  checkpoint overhead: %+.1f%% wall-clock (target < 3%%)@." sym_ovh;
  record_row ~protocol:"invalidate" ~n:4 ~level:"async" ~jobs:1
    ~checkpoint_bytes:!ck_bytes c_sym;
  (* Forced writes: the full (unquotiented) space crosses the period
     four times, so this prices the actual serialize+fsync path — the
     visited set dominates each write. *)
  let p_full, c_full, _ =
    paired ~samples:3
      (fun () -> Explore.run ~max_time_s:time_cap plain_sys)
      (fun () ->
        Explore.run ~max_time_s:time_cap ~ckpt:(ckpt_every 100_000)
          plain_sys)
  in
  let full_bytes = !ck_bytes and full_writes = !writes in
  ignore
    (row "full space, every=100k (stress)" p_full.Explore.time_s
       c_full.Explore.time_s);
  if full_writes > 0 then
    Fmt.pr "  per write: %.0f ms for %.1f MB of visited set@."
      ((c_full.Explore.time_s -. p_full.Explore.time_s)
      /. float_of_int full_writes *. 1000.)
      (float_of_int full_bytes /. 1048576.);
  record_row ~protocol:"invalidate" ~n:4 ~level:"async" ~jobs:1
    ~checkpoint_bytes:full_bytes c_full;
  (* One interrupted-then-resumed pass, for the resume-count row: cap
     the first leg halfway, reload, finish, and require the pin. *)
  let resumed =
    let cap = max 1 (p_full.Explore.states / 2) in
    ignore
      (Explore.run ~max_states:cap
         ~ckpt:
           Explore.
             {
               ck_resume = None;
               ck_save = Ckpt.saver ~dir ~manifest ~prov:None ();
             }
         plain_sys);
    match Ckpt.load ~dir with
    | Error msg -> failwith ("bench checkpoint refused: " ^ msg)
    | Ok l ->
      Explore.run ~max_time_s:time_cap
        ~ckpt:
          Explore.
            {
              ck_resume =
                Some
                  {
                    r_states = l.Ckpt.l_states;
                    r_transitions = l.Ckpt.l_transitions;
                    r_frontier = l.Ckpt.l_frontier;
                    r_keys = l.Ckpt.l_keys;
                  };
              ck_save = ignore;
            }
        plain_sys
  in
  cleanup ();
  Fmt.pr "  interrupted at half, resumed: %d states, %d transitions %s@."
    resumed.Explore.states resumed.Explore.transitions
    (if
       resumed.Explore.states = p_full.Explore.states
       && resumed.Explore.transitions = p_full.Explore.transitions
     then "(= uninterrupted)"
     else Fmt.str "(MISMATCH: plain %d, %d)" p_full.Explore.states
         p_full.Explore.transitions);
  record_row ~protocol:"invalidate" ~n:4 ~level:"async" ~jobs:1 ~resumes:1
    resumed

(* ---- Engine throughput (§6g) ------------------------------------------- *)

module Runtime = Ccr_runtime.Runtime
module Engine = Ccr_runtime.Engine

let record_throughput_row ~protocol ~n ~engine ~domains (s : Runtime.stats) =
  if bench_json <> None then
    json_rows :=
      Fmt.str
        {|  {"protocol": %S, "n": %d, "level": "throughput", "engine": %S, "domains": %d, "messages": %d, "steps": %d, "rendezvous": %d, "time_s": %.6f, "msgs_per_sec": %.1f, "quiescent": %b}|}
        (String.lowercase_ascii protocol)
        n engine domains s.Runtime.messages s.Runtime.steps
        s.Runtime.rendezvous s.Runtime.wall_s
        (if s.Runtime.wall_s > 0.0 then
           float_of_int s.Runtime.messages /. s.Runtime.wall_s
         else 0.0)
        s.Runtime.quiescent
      :: !json_rows

(* Both engines are driven to a fixed per-run message budget rather than
   a step count: a short calibration run measures the protocol's
   messages-per-cycle, then the cycle budget is sized so each engine
   moves ~the same number of wire messages and msgs/sec is wall-clock
   normalized.  The threaded runtime is the baseline the ≥10× claim in
   DESIGN.md §6g is measured against (on this one-core container the gap
   is scheduler overhead, not parallelism). *)
let throughput () =
  section "Engine throughput: loop engine vs threaded runtime (msgs/sec)";
  let n = 4 in
  let cfg = Async.{ k = 2 } in
  let target_msgs = if fast then 40_000 else 400_000 in
  Fmt.pr "fixed message budget ~%d msgs/run, n=%d, 1 core@.@." target_msgs n;
  Fmt.pr "  %-12s %-8s %9s %9s %10s %12s %9s@." "protocol" "engine" "msgs"
    "rdv" "time" "msgs/sec" "speedup";
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> ()
      | Some (e : Registry.t) ->
        let prog = e.Registry.instantiate ~reqrep:true ~n in
        let invariants = e.Registry.async_invariants prog in
        let cal =
          Engine.run ~seed:1 ~deadline_s:30.0 ~budget:32 ~invariants prog cfg
        in
        let per_cycle =
          float_of_int cal.Runtime.messages
          /. float_of_int (max 1 cal.Runtime.rendezvous)
        in
        let budget =
          max 8
            (int_of_float
               (float_of_int target_msgs /. (per_cycle *. float_of_int n)))
        in
        let report engine domains (s : Runtime.stats) speedup_vs =
          let rate =
            if s.Runtime.wall_s > 0.0 then
              float_of_int s.Runtime.messages /. s.Runtime.wall_s
            else 0.0
          in
          let ok =
            s.Runtime.quiescent
            && s.Runtime.invariant_failures = []
            && s.Runtime.protocol_errors = []
          in
          Fmt.pr "  %-12s %-8s %9d %9d %8.3fs %12.0f %9s%s@." name
            (if domains > 1 then Fmt.str "%s/j%d" engine domains else engine)
            s.Runtime.messages s.Runtime.rendezvous s.Runtime.wall_s rate
            (match speedup_vs with
            | Some base when base > 0.0 -> Fmt.str "%.1fx" (rate /. base)
            | _ -> "-")
            (if ok then "" else "  [NOT COHERENT]");
          record_throughput_row ~protocol:name ~n ~engine ~domains s;
          rate
        in
        let thr =
          Runtime.run ~seed:1 ~deadline_s:120.0 ~budget ~invariants prog cfg
        in
        let base = report "threads" 1 thr None in
        let loop =
          Engine.run ~seed:1 ~deadline_s:120.0 ~budget ~invariants prog cfg
        in
        ignore (report "loop" 1 loop (Some base));
        if not fast then begin
          let loop2 =
            Engine.run ~seed:1 ~deadline_s:120.0 ~domains:2 ~budget ~invariants
              prog cfg
          in
          ignore (report "loop" 2 loop2 (Some base))
        end;
        (* Home-initiated completions still in flight when the budget
           runs dry are a scheduling-dependent tail, so the counts track
           each other without matching exactly (lock, with no
           home-initiated remote work, matches to the cycle). *)
        if thr.Runtime.rendezvous <> loop.Runtime.rendezvous then
          Fmt.pr
            "  %-12s completed cycles: threads %d vs loop %d \
             (scheduling-dependent tail)@."
            name thr.Runtime.rendezvous loop.Runtime.rendezvous)
    [ "lock"; "invalidate"; "migratory"; "mesi" ]

(* ---- checking service (§6i) ---------------------------------------------- *)

let record_serve_row ~protocol ~n ~phase ~states ~time_s ?speedup ?jobs_per_s
    () =
  if bench_json <> None then
    json_rows :=
      Fmt.str
        {|  {"protocol": %S, "n": %d, "level": "serve", "phase": %S, "states": %d, "time_s": %.6f%s%s}|}
        (String.lowercase_ascii protocol)
        n phase states time_s
        (match speedup with
        | None -> ""
        | Some x -> Fmt.str {|, "speedup": %.1f|} x)
        (match jobs_per_s with
        | None -> ""
        | Some x -> Fmt.str {|, "jobs_per_sec": %.1f|} x)
      :: !json_rows

(* The service's pitch: a warm submission costs one HTTP round trip and a
   cache read, never an exploration.  Thread-based (no forks, no
   domains), so this section is safe to run after the parallel ones. *)
let serve_bench () =
  section
    "Checking service: cold vs warm submission on the content-addressed \
     result cache, and raw API throughput";
  let module Sapi = Ccr_serve.Api in
  let module Sdaemon = Ccr_serve.Daemon in
  let module Shttp = Ccr_serve.Http in
  let module J = Ccr_obs.Journal in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ccr-bench-serve-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let t = Sdaemon.start ~port:0 ~cache_dir:dir () in
  let port = Sdaemon.port t in
  let http meth path body =
    match Shttp.request ~port ~meth ~path ?body () with
    | Ok (status, body) ->
      if status >= 400 then failwith (Fmt.str "%s %s: %d" meth path status)
      else body
    | Error msg -> failwith (Fmt.str "%s %s: %s" meth path msg)
  in
  let jstr v f = Option.get (J.get_str (J.find v f)) in
  (* wall-clock from POST to verdict; warm hits answer on the POST itself *)
  let submit_wait cfg =
    let t0 = Unix.gettimeofday () in
    let job =
      Option.get
        (J.parse
           (http "POST" "/jobs" (Some (J.to_string (Sapi.config_to_json cfg)))))
    in
    let id = jstr job "id" in
    let rec wait job =
      match jstr job "status" with
      | "done" ->
        let states =
          match J.get_int (J.find (Option.get (J.find job "verdict")) "states")
          with
          | Some s -> s
          | None -> 0
        in
        (Unix.gettimeofday () -. t0, states)
      | "failed" -> failwith ("bench job failed: " ^ id)
      | _ ->
        Unix.sleepf 0.002;
        wait (Option.get (J.parse (http "GET" ("/jobs/" ^ id) None)))
    in
    wait job
  in
  let inv4 =
    { Sapi.default with Sapi.spec = Sapi.Named "invalidate"; level = `Async; n = 4 }
  in
  let cold_s, cold_states = submit_wait inv4 in
  let warm_s, warm_states = submit_wait inv4 in
  let speedup = cold_s /. max 1e-9 warm_s in
  Fmt.pr "  %-34s %9s %10s@." "" "time" "states";
  Fmt.pr "  %-34s %8.3fs %10d@." "cold: invalidate async n=4" cold_s
    cold_states;
  Fmt.pr "  %-34s %8.3fs %10d  (explored: 0 — served from cache)@."
    "warm: same configuration" warm_s warm_states;
  Fmt.pr "  cache-hit speedup: %.0fx (target >= 100x)@." speedup;
  record_serve_row ~protocol:"invalidate" ~n:4 ~phase:"cold"
    ~states:cold_states ~time_s:cold_s ();
  record_serve_row ~protocol:"invalidate" ~n:4 ~phase:"warm"
    ~states:warm_states ~time_s:warm_s ~speedup ();
  (* load generator: many small jobs through the full HTTP + queue +
     explore path (distinct cache keys), then the same count of pure
     cache hits *)
  let jobs = if fast then 20 else 50 in
  let lock_cfg i =
    {
      Sapi.default with
      Sapi.spec = Sapi.Named "lock";
      level = `Rv;
      n = 2;
      (* max_states is part of the cache key: each job is a distinct
         workload, so the "fresh" pass never hits the cache *)
      max_states = 100_000 + i;
    }
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let fresh_s =
    timed (fun () ->
        for i = 1 to jobs do
          ignore (submit_wait (lock_cfg i))
        done)
  in
  let hit_s =
    timed (fun () ->
        for _ = 1 to jobs do
          ignore (submit_wait (lock_cfg 1))
        done)
  in
  let fresh_rate = float_of_int jobs /. max 1e-9 fresh_s in
  let hit_rate = float_of_int jobs /. max 1e-9 hit_s in
  Fmt.pr "@.  load: %d fresh lock rv n=2 jobs: %8.1f jobs/sec@." jobs
    fresh_rate;
  Fmt.pr "  load: %d cache-hit submissions:  %8.1f jobs/sec@." jobs hit_rate;
  record_serve_row ~protocol:"lock" ~n:2 ~phase:"load-fresh" ~states:10
    ~time_s:fresh_s ~jobs_per_s:fresh_rate ();
  record_serve_row ~protocol:"lock" ~n:2 ~phase:"load-hit" ~states:10
    ~time_s:hit_s ~jobs_per_s:hit_rate ();
  Sdaemon.stop t;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* ---- Bechamel micro-benchmarks ------------------------------------------- *)

let microbench () =
  section "Microbenchmarks (Bechamel): one kernel per experiment";
  let open Bechamel in
  let mig2 = Link.compile ~n:2 (Migratory.system ()) in
  let mig4 = Link.compile ~n:4 (Migratory.system ()) in
  let cfg2 = Async.{ k = 2 } in
  let rv_init = Ccr_semantics.Rendezvous.initial mig4 in
  let as_init = Async.initial mig4 cfg2 in
  let tests =
    Test.make_grouped ~name:"ccrefine"
      [
        (* Table 3 kernels *)
        Test.make ~name:"table3/rendezvous-successors"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Ccr_semantics.Rendezvous.successors mig4 rv_init)));
        Test.make ~name:"table3/async-successors"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Async.successors mig4 cfg2 as_init)));
        Test.make ~name:"table3/async-encode"
          (Staged.stage (fun () -> Sys.opaque_identity (Async.encode as_init)));
        Test.make ~name:"table3/reachability-mig-rv-n2"
          (Staged.stage (fun () -> Sys.opaque_identity (run_rv mig2)));
        (* figures *)
        Test.make ~name:"figures/compile-automata"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 ( Ccr_refine.Compile.home_automaton mig2,
                   Ccr_refine.Compile.remote_automaton mig2 )));
        (* Eq. 1 *)
        Test.make ~name:"eq1/abs"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Ccr_refine.Absmap.abs mig4 as_init)));
        (* message efficiency *)
        Test.make ~name:"msg/sim-1000-steps"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Sim.run ~steps:1000 mig2 cfg2 Sched.uniform)));
        (* refinement/link *)
        Test.make ~name:"link/compile-migratory-n4"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Link.compile ~n:4 (Migratory.system ()))));
      ]
  in
  let benchmark_cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if fast then 0.2 else 1.0))
      ~kde:None ()
  in
  let raw =
    Benchmark.all benchmark_cfg [ Toolkit.Instance.monotonic_clock ] tests
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Fmt.pr "%-44s %14s %8s@." "kernel" "ns/run" "r^2";
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Fmt.str "%14.1f" e
        | _ -> Fmt.str "%14s" "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Fmt.str "%8.4f" r
        | None -> Fmt.str "%8s" "-"
      in
      Fmt.pr "%-44s %s %s@." name est r2)
    rows

let () =
  Fmt.pr "ccrefine benchmark harness (%s mode)@."
    (if fast then "fast" else "full");
  figures ();
  table3 ();
  table3_64 ();
  (* storage forks worker processes, which the OCaml 5 runtime only
     allows before the first Domain.spawn — so it runs before any
     parallel section *)
  storage ();
  parallel ();
  rule_coverage ();
  eq1 ();
  message_efficiency ();
  faults_bench ();
  buffers_fairness ();
  progress ();
  symmetry ();
  breadth ();
  journal_overhead ();
  checkpoint_overhead ();
  throughput ();
  if bench_serve then serve_bench ();
  microbench ();
  write_json ();
  Fmt.pr "@.done.@."
