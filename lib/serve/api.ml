(* Reusable model-checking entry point (config in, verdict out).

   This is the logic of [ccr check] extracted from the CLI so the
   [ccr serve] daemon, the fuzz serve oracle and the CLI all run one code
   path.  Byte-compatibility is the design constraint: the rendered
   outcome line, counterexample states, starvation witnesses and journal
   events produced here must match what the CLI printed before the
   extraction — cram tests pin those bytes. *)

open Ccr_core
module Explore = Ccr_modelcheck.Explore
module Graph = Ccr_modelcheck.Graph
module Vstore = Ccr_modelcheck.Vstore
module Async = Ccr_refine.Async
module Sym = Ccr_refine.Symmetry
module Fault = Ccr_faults.Fault
module Injected = Ccr_faults.Injected
module Registry = Ccr_protocols.Registry
module J = Ccr_obs.Journal

type spec_src = Named of string | Inline of string

type config = {
  spec : spec_src;
  level : [ `Rv | `Async ];
  n : int;
  k : int;
  generic : bool;
  symmetry : [ `Auto | `Off | `Brute ];
  faults : string option;
  harden : bool;
  max_states : int;
  max_mem_mb : int option;
  deadline_s : float option;
  store : [ `Mem | `Collapse | `Disk ];
  jobs : int;
}

let default =
  {
    spec = Named "";
    level = `Async;
    n = 2;
    k = 2;
    generic = false;
    symmetry = `Auto;
    faults = None;
    harden = false;
    max_states = 1_000_000;
    max_mem_mb = None;
    deadline_s = None;
    store = `Mem;
    jobs = 1;
  }

let level_name cfg =
  match cfg.level with `Rv -> "rendezvous" | `Async -> "async"

let symmetry_name cfg =
  match cfg.symmetry with `Auto -> "auto" | `Off -> "off" | `Brute -> "brute"

let store_name cfg =
  match cfg.store with `Mem -> "mem" | `Collapse -> "collapse" | `Disk -> "disk"

let fault_spec cfg =
  match cfg.faults with
  | None -> Ok None
  | Some s -> (
    match Fault.parse s with
    | Ok spec -> Ok (Some spec)
    | Error msg -> Error (Fmt.str "bad --faults spec: %s" msg))

let faults_name cfg =
  match fault_spec cfg with
  | Ok (Some spec) -> Fmt.str "%a" Fault.pp spec
  | _ -> "none"

(* ---- explorer ------------------------------------------------------------ *)

type explorer = {
  explore :
    'st 'lbl.
    check_deadlock:bool ->
    split:(string -> int array) option ->
    invariants:(string * ('st -> bool)) list ->
    ('st, 'lbl) Explore.system ->
    ('st, 'lbl) Explore.stats;
}

let default_explorer ?on_level ?interrupt cfg =
  let store_of split =
    match cfg.store with
    | `Mem -> Vstore.Mem
    | `Disk -> Vstore.Disk
    | `Collapse ->
      Vstore.Collapse
        (match split with
        | Some s -> s
        | None -> fun key -> [| String.length key |])
  in
  let mem_bytes = Option.map (fun mb -> mb * 1024 * 1024) cfg.max_mem_mb in
  {
    explore =
      (fun ~check_deadlock ~split ~invariants sys ->
        let store = store_of split in
        if cfg.jobs > 1 then
          Explore.par_run ~jobs:cfg.jobs ~store ~max_states:cfg.max_states
            ?max_mem_bytes:mem_bytes ?max_time_s:cfg.deadline_s
            ~check_deadlock ~trace:true ~invariants ?on_level ?interrupt sys
        else
          Explore.run ~store ~max_states:cfg.max_states
            ?max_mem_bytes:mem_bytes ?max_time_s:cfg.deadline_s
            ~check_deadlock ~trace:true ~invariants ?on_level ?interrupt sys);
  }

(* ---- verdicts ------------------------------------------------------------ *)

type verdict = {
  v_protocol : string;
  v_level : string;
  v_outcome : string;
  v_explored : string;
  v_ok : bool;
  v_states : int;
  v_transitions : int;
  v_max_depth : int;
  v_canon_fallbacks : int;
  v_sym : bool;
  v_invariant : string option;
  v_starved : int option;
  v_rules : string list option;
  v_outcome_line : string;
  v_trace : string list;
  v_msc : string option;
  v_liveness : string option;
}

type meta = {
  m_time_s : float;
  m_mem_bytes : int;
  m_raw_bytes : int;
  m_peak_frontier : int;
}

let outcome_tag = function
  | Explore.Complete -> "complete"
  | Explore.Limit Explore.L_states -> "limit-states"
  | Explore.Limit Explore.L_memory -> "limit-memory"
  | Explore.Limit Explore.L_time -> "limit-time"
  | Explore.Limit Explore.L_interrupt -> "interrupted"
  | Explore.Violation _ -> "violation"
  | Explore.Deadlock _ -> "deadlock"

(* Build the deterministic verdict from one exploration's stats.  All
   rendering goes through [Fmt.str], whose fresh formatter has the same
   margin as stdout's — bytes match the pre-extraction CLI output. *)
let assemble ~protocol ~level ~sym ~lbl ~pp_state ?msc
    (r : (_, _) Explore.stats) =
  let explored = outcome_tag r.Explore.outcome in
  let rules =
    Option.map
      (fun path -> List.filter_map (fun (l, _) -> Option.map lbl l) path)
      r.Explore.trace
  in
  let invariant =
    match r.Explore.outcome with
    | Explore.Violation { invariant; _ } -> Some invariant
    | _ -> None
  in
  let outcome_line =
    match r.Explore.outcome with
    | Explore.Complete -> "complete, invariants hold"
    | o -> Fmt.str "%a" (Explore.pp_outcome pp_state) o
  in
  let trace, msc_str =
    match r.Explore.trace with
    | Some path when List.length path > 1 ->
      ( List.map (fun (_, st) -> Fmt.str "%a" pp_state st) path,
        Option.map (fun render -> render (List.filter_map fst path)) msc )
    | _ -> ([], None)
  in
  ( {
      v_protocol = protocol;
      v_level = level;
      v_outcome = explored;
      v_explored = explored;
      v_ok = explored = "complete";
      v_states = r.Explore.states;
      v_transitions = r.Explore.transitions;
      v_max_depth = r.Explore.max_depth;
      v_canon_fallbacks = r.Explore.canon_fallbacks;
      v_sym = sym;
      v_invariant = invariant;
      v_starved = None;
      v_rules = rules;
      v_outcome_line = outcome_line;
      v_trace = trace;
      v_msc = msc_str;
      v_liveness = None;
    },
    {
      m_time_s = r.Explore.time_s;
      m_mem_bytes = r.Explore.mem_bytes;
      m_raw_bytes = r.Explore.raw_bytes;
      m_peak_frontier = r.Explore.peak_frontier;
    } )

(* ---- spec resolution and identity ---------------------------------------- *)

let resolve = function
  | Named name -> (
    match Registry.find name with
    | Some e -> Ok e
    | None ->
      Error
        (Fmt.str "unknown protocol %S (try: %s, or a .ccr file)" name
           (String.concat ", " (Registry.names ()))))
  | Inline src -> (
    match Parse.system src with
    | sys -> (
      match Validate.check sys with
      | Ok _ ->
        Ok
          Registry.
            {
              name = sys.Ir.sys_name;
              doc = "inline spec";
              system = Some sys;
              instantiate = (fun ~reqrep ~n -> Link.compile ~reqrep ~n sys);
              rv_invariants = (fun _ -> []);
              async_invariants = (fun _ -> []);
            }
      | Error es ->
        Error
          (Fmt.str "spec does not validate:@,%a"
             Fmt.(list ~sep:cut Validate.pp_error)
             es))
    | exception exn -> Error (Fmt.str "%a" Parse.pp_error exn))

let spec_hash (e : Registry.t) cfg =
  let ir =
    try Marshal.to_string e.Registry.system [] with _ -> e.Registry.name
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            ir; string_of_int cfg.n; string_of_int cfg.k;
            string_of_bool cfg.generic; level_name cfg; symmetry_name cfg;
            faults_name cfg; string_of_bool cfg.harden;
          ]))

let cache_key (e : Registry.t) cfg =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ spec_hash e cfg; string_of_int cfg.max_states; store_name cfg ]))

let cacheable v =
  match v.v_explored with
  (* BFS order is deterministic at jobs=1, so even a limit-states stop is
     machine-independent; time/memory caps and interrupts are not. *)
  | "complete" | "violation" | "deadlock" | "limit-states" -> true
  | _ -> false

(* ---- the check ----------------------------------------------------------- *)

let check_entry ?explorer ?meter ?observe_label ?sym_stats ?on_orbit
    (e : Registry.t) cfg =
  match fault_spec cfg with
  | Error msg -> Error msg
  | Ok fspec -> (
    let explorer =
      match explorer with Some x -> x | None -> default_explorer cfg
    in
    let sym_stats =
      match sym_stats with Some s -> s | None -> Sym.make_stats ()
    in
    let protocol = e.Registry.name in
    let level = level_name cfg in
    try
      let prog =
        Ccr_obs.Trace.with_span "instantiate"
          ~args:[ ("protocol", Ccr_obs.Trace.Str protocol) ]
          (fun () ->
            e.Registry.instantiate ~reqrep:(not cfg.generic) ~n:cfg.n)
      in
      (* Symmetry hooks: dedup by canonical key, keep concrete states.
         Orbit-size harvesting ([on_orbit]) reads the canonicalizing
         domain's local storage, so callers only pass it for sequential
         single-process runs. *)
      let canon_of ~orbits key =
        Some
          {
            Explore.canon_key = key;
              canon_fresh =
                (if orbits then
                   Option.map
                     (fun observe _ ->
                       let o = Sym.last_orbit () in
                       if o > 0 then observe o)
                     on_orbit
                 else None);
              canon_fallbacks = (fun () -> Sym.fallbacks sym_stats);
            }
      in
      let rv_canon () =
        match cfg.symmetry with
        | `Off -> None
        | `Auto ->
          canon_of ~orbits:true (Sym.canonical_rv_fast ~stats:sym_stats prog)
        | `Brute ->
          canon_of ~orbits:false (Sym.canonical_rv ~stats:sym_stats prog)
      in
      let async_canon () =
        match cfg.symmetry with
        | `Off -> None
        | `Auto ->
          canon_of ~orbits:true
            (Sym.canonical_async_fast ~stats:sym_stats prog)
        | `Brute ->
          canon_of ~orbits:false (Sym.canonical_async ~stats:sym_stats prog)
      in
      (* Fault budgets break the interchangeability of remote identities,
         so symmetry reduction is forced off under --faults. *)
      match (cfg.level, fspec) with
      | `Rv, Some spec ->
        if Fault.total spec > spec.Fault.pause then
          Error
            (Fmt.str
               "the rendezvous level has no channels: only pause=K applies \
                (got %a)"
               Fault.pp spec)
        else begin
          let invariants =
            List.map
              (fun (nm, f) ->
                (nm, fun (fs : Injected.rv_fstate) -> f fs.Injected.rv_base))
              (e.Registry.rv_invariants prog)
          in
          let r =
            explorer.explore ~check_deadlock:false ~split:None ~invariants
              Explore.
                {
                  init = Injected.rv_initial spec prog;
                  succ = Injected.rv_successors prog;
                  encode = Injected.rv_encode;
                  canon = None;
                }
          in
          Ok
            (assemble ~protocol ~level ~sym:false
               ~lbl:(Fmt.str "%a" Injected.pp_rv_label)
               ~pp_state:(Injected.pp_rv_fstate prog)
               r)
        end
      | `Async, Some spec ->
        let acfg = { Async.k = cfg.k } in
        let mode = if cfg.harden then Injected.Hardened else Injected.Vanilla in
        let invariants =
          Injected.no_wedge
          :: List.map Injected.lift_invariant
               (e.Registry.async_invariants prog)
        in
        let sys =
          Explore.
            {
              init = Injected.initial spec prog acfg;
              succ = Injected.successors mode spec prog acfg;
              encode = Injected.encode;
              canon = None;
            }
        in
        let r =
          explorer.explore ~check_deadlock:true
            ~split:(Some (Injected.split_key prog))
            ~invariants sys
        in
        let v, m =
          assemble ~protocol ~level ~sym:false
            ~lbl:(Fmt.str "%a" Injected.pp_label)
            ~pp_state:(Injected.pp_fstate prog)
            r
        in
        (* Safety held and no deadlock: the remaining question is
           liveness — a dropped message can leave a remote stuck in its
           transient state forever while the rest of the system keeps
           running (starvation, not deadlock), so ask the reachability
           graph: can every remote always still complete? *)
        let v =
          if not (v.v_trace = [] && r.Explore.outcome = Explore.Complete)
          then v
          else begin
            let g = Graph.build ~max_states:cfg.max_states sys in
            if g.Graph.truncated then
              {
                v with
                v_liveness =
                  Some
                    "liveness: not assessed (graph truncated; raise \
                     --max-states)";
              }
            else begin
              let progress_of pred l =
                match l with
                | Injected.Step al -> Injected.completes al && pred al
                | Injected.Fault _ -> false
              in
              let starved =
                List.concat
                  (List.init cfg.n (fun i ->
                       match
                         Graph.violates_ag_ef g
                           ~progress:
                             (progress_of (fun al -> al.Async.actor = i))
                       with
                       | [] -> []
                       | bad -> [ (i, bad) ]))
              in
              match starved with
              | [] ->
                {
                  v with
                  v_liveness =
                    Some
                      "liveness: every remote can always still complete a \
                       rendezvous (quiescence preserved under the fault \
                       budget)";
                }
              | (i, bad) :: _ ->
                let witness = List.hd bad in
                let path = Graph.path_to g witness in
                (* one fresh formatter per line: each [%a] renderer must
                   open its boxes at column 0, exactly as the CLI's
                   per-line [Fmt.pf ... "@."] calls did *)
                let lines =
                  [
                    Fmt.str
                      "liveness violation: remote %d can be starved forever \
                       (%d reachable states lose its completion)"
                      i (List.length bad);
                    Fmt.str "starvation witness (%d steps):"
                      (List.length path - 1);
                  ]
                  @ List.filter_map
                      (fun (l, _) ->
                        Option.map
                          (fun l -> Fmt.str "  %a" Injected.pp_label l)
                          l)
                      path
                  @
                  match List.rev path with
                  | (_, st) :: _ ->
                    [
                      "stuck state:";
                      Fmt.str "%a" (Injected.pp_fstate prog) st;
                    ]
                  | [] -> []
                in
                {
                  v with
                  v_outcome = "starvation";
                  v_ok = false;
                  v_starved = Some i;
                  v_rules =
                    Some
                      (List.filter_map
                         (fun (l, _) ->
                           Option.map
                             (fun l -> Fmt.str "%a" Injected.pp_label l)
                             l)
                         path);
                  v_liveness = Some (String.concat "\n" lines);
                }
            end
          end
        in
        Ok (v, m)
      | `Rv, None ->
        let r =
          explorer.explore ~check_deadlock:false
            ~split:(Some (Ccr_semantics.Rendezvous.split_key prog))
            ~invariants:(e.Registry.rv_invariants prog)
            Explore.
              {
                init = Ccr_semantics.Rendezvous.initial prog;
                succ = Ccr_semantics.Rendezvous.successors prog;
                encode = Ccr_semantics.Rendezvous.encode;
                canon = rv_canon ();
              }
        in
        Ok
          (assemble ~protocol ~level
             ~sym:(cfg.symmetry <> `Off)
             ~lbl:(Fmt.str "%a" Ccr_semantics.Rendezvous.pp_label)
             ~pp_state:(Ccr_semantics.Rendezvous.pp_state prog)
             r)
      | `Async, None ->
        let acfg = { Async.k = cfg.k } in
        let succ_base = Async.successors ?meter prog acfg in
        let succ =
          match observe_label with
          | None -> succ_base
          | Some f ->
            fun st ->
              let outs = succ_base st in
              List.iter (fun ((l : Async.label), _) -> f l) outs;
              outs
        in
        let r =
          explorer.explore ~check_deadlock:true
            ~split:(Some (Async.split_key prog))
            ~invariants:(e.Registry.async_invariants prog)
            Explore.
              {
                init = Async.initial prog acfg;
                succ;
                encode = Async.encode;
                canon = async_canon ();
              }
        in
        Ok
          (assemble ~protocol ~level
             ~sym:(cfg.symmetry <> `Off)
             ~lbl:(Fmt.str "%a" Async.pp_label)
             ~pp_state:(Async.pp_state prog)
             ~msc:(Ccr_viz.Msc.render prog) r)
    with exn -> Error (Printexc.to_string exn))

let check ?explorer cfg =
  match resolve cfg.spec with
  | Error msg -> Error msg
  | Ok e -> check_entry ?explorer e cfg

(* ---- journal rendering --------------------------------------------------- *)

let journal_config ~protocol cfg =
  [
    ("cmd", J.Str "check");
    ("protocol", J.Str protocol);
    ("n", J.Int cfg.n);
    ("k", J.Int cfg.k);
    ("level", J.Str (level_name cfg));
    ("generic", J.Bool cfg.generic);
    ("symmetry", J.Str (symmetry_name cfg));
    ("harden", J.Bool cfg.harden);
    ("max_states", J.Int cfg.max_states);
  ]

let rules_field v =
  match v.v_rules with
  | None -> []
  | Some rs -> [ ("rules", J.List (List.map (fun r -> J.Str r) rs)) ]

let journal_events v =
  (match v.v_explored with
  | "complete" -> []
  | "violation" ->
    [
      ( "violation",
        ("kind", J.Str "invariant")
        :: ("invariant", J.Str (Option.value ~default:"" v.v_invariant))
        :: rules_field v );
    ]
  | "deadlock" ->
    [ ("violation", ("kind", J.Str "deadlock") :: rules_field v) ]
  | tag -> [ ("limit", [ ("kind", J.Str tag) ]) ])
  @ (if v.v_sym && v.v_explored = "complete" then
       [ ("canon", [ ("fallbacks", J.Int v.v_canon_fallbacks) ]) ]
     else [])
  @
  match v.v_starved with
  | Some i ->
    [
      ( "violation",
        [ ("kind", J.Str "starvation"); ("remote", J.Int i) ]
        @ rules_field v );
    ]
  | None -> []

let journal_end v =
  ("outcome", J.Str v.v_explored)
  ::
  (if v.v_explored = "complete" then
     [
       ("states", J.Int v.v_states);
       ("transitions", J.Int v.v_transitions);
       ("max_depth", J.Int v.v_max_depth);
     ]
   else [])

(* ---- JSON codecs --------------------------------------------------------- *)

let opt_str = function None -> J.Null | Some s -> J.Str s
let opt_int = function None -> J.Null | Some i -> J.Int i

let config_to_json cfg =
  J.Obj
    [
      ( "spec",
        match cfg.spec with
        | Named s -> J.Obj [ ("name", J.Str s) ]
        | Inline src -> J.Obj [ ("source", J.Str src) ] );
      ("level", J.Str (level_name cfg));
      ("n", J.Int cfg.n);
      ("k", J.Int cfg.k);
      ("generic", J.Bool cfg.generic);
      ("symmetry", J.Str (symmetry_name cfg));
      ("faults", opt_str cfg.faults);
      ("harden", J.Bool cfg.harden);
      ("max_states", J.Int cfg.max_states);
      ("max_mem_mb", opt_int cfg.max_mem_mb);
      ( "deadline_s",
        match cfg.deadline_s with None -> J.Null | Some d -> J.Float d );
      ("store", J.Str (store_name cfg));
      ("jobs", J.Int cfg.jobs);
    ]

let get_bool = function Some (J.Bool b) -> Some b | _ -> None

let get_num = function
  | Some (J.Int i) -> Some (float_of_int i)
  | Some (J.Float f) -> Some f
  | _ -> None

let config_of_json json =
  match json with
  | J.Obj _ -> (
    let field k = J.find json k in
    let str k = J.get_str (field k) in
    let int k = J.get_int (field k) in
    let bool k = get_bool (field k) in
    let spec =
      match field "spec" with
      | Some (J.Obj _ as sp) -> (
        match (J.get_str (J.find sp "name"), J.get_str (J.find sp "source"))
        with
        | Some name, _ -> Ok (Named name)
        | None, Some src -> Ok (Inline src)
        | None, None -> Error "spec needs a \"name\" or \"source\" field")
      | Some (J.Str name) -> Ok (Named name)
      | _ -> Error "missing \"spec\" field"
    in
    match spec with
    | Error msg -> Error msg
    | Ok spec -> (
      let level =
        match str "level" with
        | None -> Ok default.level
        | Some "rendezvous" -> Ok `Rv
        | Some "async" -> Ok `Async
        | Some other -> Error (Fmt.str "bad level %S" other)
      in
      let symmetry =
        match str "symmetry" with
        | None -> Ok default.symmetry
        | Some "auto" -> Ok `Auto
        | Some "off" -> Ok `Off
        | Some "brute" -> Ok `Brute
        | Some other -> Error (Fmt.str "bad symmetry %S" other)
      in
      let store =
        match str "store" with
        | None -> Ok default.store
        | Some "mem" -> Ok `Mem
        | Some "collapse" -> Ok `Collapse
        | Some "disk" -> Ok `Disk
        | Some other -> Error (Fmt.str "bad store %S" other)
      in
      match (level, symmetry, store) with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok level, Ok symmetry, Ok store ->
        Ok
          {
            spec;
            level;
            n = Option.value ~default:default.n (int "n");
            k = Option.value ~default:default.k (int "k");
            generic = Option.value ~default:false (bool "generic");
            symmetry;
            faults = str "faults";
            harden = Option.value ~default:false (bool "harden");
            max_states =
              Option.value ~default:default.max_states (int "max_states");
            max_mem_mb = int "max_mem_mb";
            deadline_s = get_num (field "deadline_s");
            store;
            jobs = Option.value ~default:1 (int "jobs");
          }))
  | _ -> Error "config must be a JSON object"

let verdict_to_json v =
  J.Obj
    [
      ("protocol", J.Str v.v_protocol);
      ("level", J.Str v.v_level);
      ("outcome", J.Str v.v_outcome);
      ("explored", J.Str v.v_explored);
      ("ok", J.Bool v.v_ok);
      ("states", J.Int v.v_states);
      ("transitions", J.Int v.v_transitions);
      ("max_depth", J.Int v.v_max_depth);
      ("canon_fallbacks", J.Int v.v_canon_fallbacks);
      ("sym", J.Bool v.v_sym);
      ("invariant", opt_str v.v_invariant);
      ("starved", opt_int v.v_starved);
      ( "rules",
        match v.v_rules with
        | None -> J.Null
        | Some rs -> J.List (List.map (fun r -> J.Str r) rs) );
      ("outcome_line", J.Str v.v_outcome_line);
      ("trace", J.List (List.map (fun s -> J.Str s) v.v_trace));
      ("msc", opt_str v.v_msc);
      ("liveness", opt_str v.v_liveness);
    ]

let verdict_of_json json =
  match json with
  | J.Obj _ -> (
    let field k = J.find json k in
    let str k = J.get_str (field k) in
    let int k = J.get_int (field k) in
    let bool k = get_bool (field k) in
    let str_list k =
      Option.map
        (List.filter_map (function J.Str s -> Some s | _ -> None))
        (J.get_list (field k))
    in
    match (str "protocol", str "outcome", str "explored") with
    | Some protocol, Some outcome, Some explored ->
      Ok
        {
          v_protocol = protocol;
          v_level = Option.value ~default:"async" (str "level");
          v_outcome = outcome;
          v_explored = explored;
          v_ok = Option.value ~default:false (bool "ok");
          v_states = Option.value ~default:0 (int "states");
          v_transitions = Option.value ~default:0 (int "transitions");
          v_max_depth = Option.value ~default:0 (int "max_depth");
          v_canon_fallbacks =
            Option.value ~default:0 (int "canon_fallbacks");
          v_sym = Option.value ~default:false (bool "sym");
          v_invariant = str "invariant";
          v_starved = int "starved";
          v_rules =
            (match field "rules" with
            | Some J.Null | None -> None
            | _ -> str_list "rules");
          v_outcome_line = Option.value ~default:"" (str "outcome_line");
          v_trace = Option.value ~default:[] (str_list "trace");
          v_msc = str "msc";
          v_liveness = str "liveness";
        }
    | _ -> Error "verdict missing protocol/outcome/explored fields")
  | _ -> Error "verdict must be a JSON object"
