(** Content-addressed result cache: one JSON file per {!Api.cache_key},
    holding the config, the deterministic verdict and the job's journal
    lines.  Writes are atomic (temp file + rename) so a concurrent reader
    never sees a torn entry; eviction removes the oldest entries (mtime)
    past [max_entries]. *)

type t

type entry = {
  e_key : string;
  e_config : Ccr_obs.Journal.value;
  e_verdict : Api.verdict;
  e_journal : string list;  (** the job's journal, one JSON line each *)
}

val create : dir:string -> ?max_entries:int -> unit -> t
val dir : t -> string

val find : t -> string -> entry option

val store : t -> entry -> unit

(** Number of entries currently on disk. *)
val count : t -> int
