(** Minimal HTTP/1.1 over [Unix] file descriptors — hand-rolled like the
    journal's JSON codec, so the daemon needs no new dependencies.  One
    request per connection ([Connection: close]); bodies are either
    [Content-Length]-framed or chunked (responses only). *)

type request = {
  meth : string;  (** "GET", "POST", ... *)
  target : string;  (** request target, e.g. "/jobs/j1" *)
  headers : (string * string) list;  (** header names lowercased *)
  body : string;
}

(** Read one request.  [`Bad] covers malformed request lines/headers and
    oversized heads (64 KB) or bodies (4 MB). *)
val read_request : Unix.file_descr -> (request, [ `Eof | `Bad of string ]) result

val header : request -> string -> string option

(** Write a complete response with [Content-Length] framing. *)
val respond :
  ?content_type:string ->
  ?headers:(string * string) list ->
  status:int ->
  body:string ->
  Unix.file_descr ->
  unit

(** Chunked-transfer responses, for event streams. *)
val start_chunked : ?content_type:string -> status:int -> Unix.file_descr -> unit

val write_chunk : Unix.file_descr -> string -> unit
val end_chunked : Unix.file_descr -> unit

(** {2 Loopback client} (tests, [ccr client], the fuzz oracle) *)

(** One request against [127.0.0.1:port]; returns (status, body) with
    chunked bodies already decoded. *)
val request :
  port:int ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  (int * string, string) result
