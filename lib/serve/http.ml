(* Minimal HTTP/1.1 over Unix file descriptors.  The daemon serves one
   request per connection; keeping the framing this small (no pipelining,
   no keep-alive, no compression) is what lets the whole server stay
   dependency-free and auditable. *)

type request = {
  meth : string;
  target : string;
  headers : (string * string) list;
  body : string;
}

let max_head_bytes = 64 * 1024
let max_body_bytes = 4 * 1024 * 1024

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

(* ---- reading ------------------------------------------------------------- *)

let find_sub buf sub from =
  let n = Buffer.length buf and m = String.length sub in
  let rec at i j =
    if j = m then true
    else if Buffer.nth buf (i + j) = sub.[j] then at i (j + 1)
    else false
  in
  let rec go i = if i + m > n then None else if at i 0 then Some i else go (i + 1) in
  go (max 0 from)

let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  (* accumulate until the blank line ending the head *)
  let rec head_end () =
    match find_sub buf "\r\n\r\n" (Buffer.length buf - String.length "\r\n\r\n" - 4096) with
    | Some i -> Ok i
    | None ->
      if Buffer.length buf > max_head_bytes then Error (`Bad "head too large")
      else begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then Error `Eof else Error (`Bad "truncated head")
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          head_end ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Error `Eof
      end
  in
  match head_end () with
  | Error _ as e -> e
  | Ok head_len -> (
    let head = Buffer.sub buf 0 head_len in
    let rest_off = head_len + 4 in
    match String.split_on_char '\n' head with
    | [] -> Error (`Bad "empty head")
    | req_line :: header_lines -> (
      let req_line = String.trim req_line in
      match String.split_on_char ' ' req_line with
      | meth :: target :: _ -> (
        let headers =
          List.filter_map
            (fun line ->
              let line = String.trim line in
              match String.index_opt line ':' with
              | None -> None
              | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1))
                  ))
            header_lines
        in
        let content_length =
          match List.assoc_opt "content-length" headers with
          | None -> 0
          | Some s -> ( try int_of_string (String.trim s) with _ -> -1)
        in
        if content_length < 0 || content_length > max_body_bytes then
          Error (`Bad "bad content-length")
        else begin
          let body = Buffer.create content_length in
          Buffer.add_string body
            (Buffer.sub buf rest_off (Buffer.length buf - rest_off));
          let rec fill () =
            if Buffer.length body < content_length then begin
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> Error (`Bad "truncated body")
              | n ->
                Buffer.add_subbytes body chunk 0 n;
                fill ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                Error (`Bad "connection reset")
            end
            else Ok ()
          in
          match fill () with
          | Error _ as e -> e
          | Ok () ->
            Ok { meth; target; headers; body = Buffer.sub body 0 content_length }
        end)
      | _ -> Error (`Bad "malformed request line")))

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

(* ---- writing ------------------------------------------------------------- *)

let reason_of = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let respond ?(content_type = "application/json") ?(headers = []) ~status ~body
    fd =
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_of status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "Connection: close\r\n\r\n";
  Buffer.add_string b body;
  try write_all fd (Buffer.contents b)
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let start_chunked ?(content_type = "application/x-ndjson") ~status fd =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nTransfer-Encoding: \
        chunked\r\nConnection: close\r\n\r\n"
       status (reason_of status) content_type)

let write_chunk fd s =
  if s <> "" then
    write_all fd (Printf.sprintf "%x\r\n%s\r\n" (String.length s) s)

let end_chunked fd = write_all fd "0\r\n\r\n"

(* ---- client -------------------------------------------------------------- *)

let contains_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec at i j =
    if j = m then true
    else if hay.[i + j] = needle.[j] then at i (j + 1)
    else false
  in
  let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
  m = 0 || go 0

let read_until_eof fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Buffer.contents buf
  in
  go ()

let decode_chunked s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec line_end i = if i + 1 < n && s.[i] = '\r' && s.[i + 1] = '\n' then i else if i + 1 < n then line_end (i + 1) else i in
  let rec go i =
    if i >= n then Buffer.contents b
    else begin
      let le = line_end i in
      let size_str = String.sub s i (le - i) in
      let size =
        try int_of_string ("0x" ^ String.trim size_str) with _ -> 0
      in
      if size = 0 then Buffer.contents b
      else begin
        let data_off = le + 2 in
        let avail = min size (n - data_off) in
        Buffer.add_string b (String.sub s data_off avail);
        go (data_off + size + 2)
      end
    end
  in
  go 0

let request ~port ~meth ~path ?(body = "") () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | sock -> (
    let finish r =
      (try Unix.close sock with _ -> ());
      r
    in
    (* a wedged or dead server must surface as an [Error], not a hang *)
    (try
       Unix.setsockopt_float sock Unix.SO_RCVTIMEO 60.0;
       Unix.setsockopt_float sock Unix.SO_SNDTIMEO 60.0
     with _ -> ());
    match
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    with
    | exception Unix.Unix_error (e, _, _) ->
      finish (Error (Printf.sprintf "connect 127.0.0.1:%d: %s" port (Unix.error_message e)))
    | () -> (
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: 127.0.0.1:%d\r\nContent-Length: \
           %d\r\nConnection: close\r\n\r\n%s"
          meth path port (String.length body) body
      in
      match write_all sock req with
      | exception Unix.Unix_error (e, _, _) ->
        finish (Error (Printf.sprintf "write: %s" (Unix.error_message e)))
      | () -> (
        match read_until_eof sock with
        | exception Unix.Unix_error (e, _, _) ->
          finish
            (Error (Printf.sprintf "read: %s" (Unix.error_message e)))
        | raw -> (
        match String.index_opt raw '\n' with
        | None -> finish (Error "empty response")
        | Some _ -> (
          match String.split_on_char ' ' raw with
          | _http :: code :: _ -> (
            match int_of_string_opt (String.trim code) with
            | None -> finish (Error "malformed status line")
            | Some status -> (
              match
                let i = ref 0 in
                let n = String.length raw in
                let rec find () =
                  if !i + 3 < n then
                    if
                      raw.[!i] = '\r' && raw.[!i + 1] = '\n'
                      && raw.[!i + 2] = '\r' && raw.[!i + 3] = '\n'
                    then Some (!i + 4)
                    else begin
                      incr i;
                      find ()
                    end
                  else None
                in
                find ()
              with
              | None -> finish (Ok (status, ""))
              | Some body_off ->
                let head = String.lowercase_ascii (String.sub raw 0 body_off) in
                let body =
                  String.sub raw body_off (String.length raw - body_off)
                in
                let body =
                  if
                    (* crude but sufficient: our own servers only ever set
                       chunked via this exact header *)
                    contains_sub head "transfer-encoding: chunked"
                  then decode_chunked body
                  else body
                in
                finish (Ok (status, body))))
          | _ -> finish (Error "malformed status line"))))))
