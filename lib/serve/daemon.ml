(* The ccr serve daemon: thread-per-connection HTTP front end, a bounded
   FIFO queue drained by worker threads, and the content-addressed result
   cache.  Everything protocol-semantic happens in Api; this file is only
   scheduling, framing and bookkeeping. *)

module M = Ccr_obs.Metrics
module J = Ccr_obs.Journal
module Registry = Ccr_protocols.Registry

type status = Queued | Running | Done | Failed of string

type job = {
  jb_id : string;
  jb_key : string;
  jb_config : Api.config;
  jb_config_json : J.value;
  jb_entry : Registry.t;
  jb_lock : Mutex.t;
  jb_cond : Condition.t;
  mutable jb_status : status;
  mutable jb_cached : bool;
  mutable jb_verdict : Api.verdict option;
  mutable jb_rev_events : string list;  (** journal lines, newest first *)
  mutable jb_n_events : int;
}

type t = {
  sock : Unix.file_descr;
  d_port : int;
  queue : job Queue.t;
  queue_cap : int;
  qlock : Mutex.t;
  qcond : Condition.t;
  jobs : (string, job) Hashtbl.t;
  jlock : Mutex.t;
  cache : Cache.t option;
  max_states_cap : int;
  reg : M.t;
  stopping : bool Atomic.t;
  engine : Mutex.t;  (** serializes explorations: see daemon.mli *)
  mutable threads : Thread.t list;  (** accept loop + workers *)
  mutable seq : int;
  mutable done_count : int;
  conn_count : int Atomic.t;
}

let port t = t.d_port
let metrics t = t.reg
let jobs_done t = t.done_count

(* ---- job plumbing -------------------------------------------------------- *)

let event_line ev fields =
  J.to_string
    (J.Obj ((("v", J.Int J.schema_version) :: ("ev", J.Str ev) :: fields)))

let push_event j line =
  Mutex.lock j.jb_lock;
  j.jb_rev_events <- line :: j.jb_rev_events;
  j.jb_n_events <- j.jb_n_events + 1;
  Condition.broadcast j.jb_cond;
  Mutex.unlock j.jb_lock

let set_status j st =
  Mutex.lock j.jb_lock;
  j.jb_status <- st;
  Condition.broadcast j.jb_cond;
  Mutex.unlock j.jb_lock

let status_name j =
  match j.jb_status with
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"

let job_json j =
  let base =
    [
      ("id", J.Str j.jb_id);
      ("status", J.Str (status_name j));
      ("cached", J.Bool j.jb_cached);
    ]
  in
  let extra =
    match (j.jb_status, j.jb_verdict) with
    | Done, Some v -> [ ("verdict", Api.verdict_to_json v) ]
    | Failed msg, _ -> [ ("error", J.Str msg) ]
    | _ -> []
  in
  J.to_string (J.Obj (base @ extra))

(* Run one queued job: emit the same journal events the CLI would, explore
   under the engine lock, cache deterministic verdicts. *)
let run_job t j =
  set_status j Running;
  let cfg = j.jb_config in
  push_event j
    (event_line "config"
       (Api.journal_config ~protocol:j.jb_entry.Registry.name cfg));
  (match Api.fault_spec cfg with
  | Ok (Some spec) ->
    push_event j
      (event_line "faults"
         [ ("budget", J.Str (Fmt.str "%a" Ccr_faults.Fault.pp spec)) ])
  | _ -> ());
  let on_level ~depth ~states =
    push_event j
      (event_line "level" [ ("depth", J.Int depth); ("states", J.Int states) ])
  in
  let explorer =
    Api.default_explorer ~on_level
      ~interrupt:(fun () -> Atomic.get t.stopping)
      cfg
  in
  let result =
    Mutex.lock t.engine;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.engine)
      (fun () -> Api.check_entry ~explorer j.jb_entry cfg)
  in
  match result with
  | Ok (v, _meta) ->
    List.iter
      (fun (ev, fields) -> push_event j (event_line ev fields))
      (Api.journal_events v);
    push_event j (event_line "end" (Api.journal_end v));
    M.add (M.counter t.reg "serve.states_explored") v.Api.v_states;
    Mutex.lock j.jb_lock;
    j.jb_verdict <- Some v;
    Mutex.unlock j.jb_lock;
    (match t.cache with
    | Some cache when Api.cacheable v ->
      Mutex.lock j.jb_lock;
      let journal = List.rev j.jb_rev_events in
      Mutex.unlock j.jb_lock;
      Cache.store cache
        {
          Cache.e_key = j.jb_key;
          e_config = j.jb_config_json;
          e_verdict = v;
          e_journal = journal;
        }
    | _ -> ());
    M.incr (M.counter t.reg "serve.jobs_done");
    t.done_count <- t.done_count + 1;
    set_status j Done
  | Error msg ->
    push_event j
      (event_line "end"
         [ ("outcome", J.Str "error"); ("reason", J.Str msg) ]);
    M.incr (M.counter t.reg "serve.jobs_failed");
    set_status j (Failed msg)

let worker t =
  let rec loop () =
    Mutex.lock t.qlock;
    let rec wait () =
      if Atomic.get t.stopping then None
      else if Queue.is_empty t.queue then begin
        Condition.wait t.qcond t.qlock;
        wait ()
      end
      else Some (Queue.pop t.queue)
    in
    let job = wait () in
    M.set (M.gauge t.reg "serve.queue_depth")
      (float_of_int (Queue.length t.queue));
    Mutex.unlock t.qlock;
    match job with
    | None -> ()
    | Some j ->
      (try run_job t j
       with exn -> set_status j (Failed (Printexc.to_string exn)));
      loop ()
  in
  loop ()

(* ---- request handling ---------------------------------------------------- *)

let find_job t id =
  Mutex.lock t.jlock;
  let j = Hashtbl.find_opt t.jobs id in
  Mutex.unlock t.jlock;
  j

let bad t fd msg =
  M.incr (M.counter t.reg "serve.bad_requests");
  Http.respond ~status:400
    ~body:(J.to_string (J.Obj [ ("error", J.Str msg) ]))
    fd

let submit t fd body =
  M.incr (M.counter t.reg "serve.jobs_submitted");
  match J.parse body with
  | None -> bad t fd "body is not valid JSON"
  | Some json -> (
    match Api.config_of_json json with
    | Error msg -> bad t fd msg
    | Ok cfg -> (
      match Api.resolve cfg.Api.spec with
      | Error msg -> bad t fd msg
      | Ok entry ->
        if cfg.Api.n < 1 || cfg.Api.n > 16 then bad t fd "n out of range [1,16]"
        else if cfg.Api.k < 2 || cfg.Api.k > 64 then
          bad t fd "k out of range [2,64]"
        else begin
          (* The daemon owns execution strategy: jobs always explore
             sequentially (deterministic traces, fork/domain-free), and
             per-job budgets are clamped to the service cap. *)
          let cfg =
            {
              cfg with
              Api.jobs = 1;
              max_states = min cfg.Api.max_states t.max_states_cap;
            }
          in
          let key = Api.cache_key entry cfg in
          let fresh_id () =
            Mutex.lock t.jlock;
            t.seq <- t.seq + 1;
            let id = "j" ^ string_of_int t.seq in
            Mutex.unlock t.jlock;
            id
          in
          let make_job ~id ~cached ~status ~verdict ~events =
            let rev = List.rev events in
            {
              jb_id = id;
              jb_key = key;
              jb_config = cfg;
              jb_config_json = Api.config_to_json cfg;
              jb_entry = entry;
              jb_lock = Mutex.create ();
              jb_cond = Condition.create ();
              jb_status = status;
              jb_cached = cached;
              jb_verdict = verdict;
              jb_rev_events = rev;
              jb_n_events = List.length rev;
            }
          in
          let cached_entry =
            match t.cache with
            | None -> None
            | Some cache -> Cache.find cache key
          in
          match cached_entry with
          | Some e ->
            M.incr (M.counter t.reg "serve.cache_hits");
            let id = fresh_id () in
            let j =
              make_job ~id ~cached:true ~status:Done
                ~verdict:(Some e.Cache.e_verdict) ~events:e.Cache.e_journal
            in
            Mutex.lock t.jlock;
            Hashtbl.replace t.jobs id j;
            Mutex.unlock t.jlock;
            Http.respond ~status:200 ~body:(job_json j) fd
          | None ->
            M.incr (M.counter t.reg "serve.cache_misses");
            Mutex.lock t.qlock;
            if Queue.length t.queue >= t.queue_cap then begin
              Mutex.unlock t.qlock;
              M.incr (M.counter t.reg "serve.rejected_queue_full");
              Http.respond ~status:429
                ~body:
                  (J.to_string
                     (J.Obj
                        [
                          ("error", J.Str "queue full");
                          ("queue_cap", J.Int t.queue_cap);
                        ]))
                fd
            end
            else begin
              let id = fresh_id () in
              let j =
                make_job ~id ~cached:false ~status:Queued ~verdict:None
                  ~events:[]
              in
              Mutex.lock t.jlock;
              Hashtbl.replace t.jobs id j;
              Mutex.unlock t.jlock;
              Queue.push j t.queue;
              M.set (M.gauge t.reg "serve.queue_depth")
                (float_of_int (Queue.length t.queue));
              Condition.signal t.qcond;
              Mutex.unlock t.qlock;
              Http.respond ~status:202 ~body:(job_json j) fd
            end
        end))

let stream_events t fd j =
  Http.start_chunked ~status:200 fd;
  let cursor = ref 0 in
  let finished = ref false in
  while not !finished do
    Mutex.lock j.jb_lock;
    let rec wait () =
      if
        j.jb_n_events > !cursor
        || (match j.jb_status with Done | Failed _ -> true | _ -> false)
        || Atomic.get t.stopping
      then ()
      else begin
        Condition.wait j.jb_cond j.jb_lock;
        wait ()
      end
    in
    wait ();
    let n = j.jb_n_events in
    let fresh =
      if n > !cursor then
        (* newest first in jb_rev_events; take the slice we have not
           streamed yet, oldest first *)
        List.filteri (fun i _ -> i < n - !cursor) j.jb_rev_events |> List.rev
      else []
    in
    let terminal =
      match j.jb_status with
      | Done | Failed _ -> n = !cursor + List.length fresh
      | _ -> Atomic.get t.stopping
    in
    Mutex.unlock j.jb_lock;
    (try
       List.iter (fun line -> Http.write_chunk fd (line ^ "\n")) fresh;
       cursor := !cursor + List.length fresh;
       if terminal then begin
         Http.end_chunked fd;
         finished := true
       end
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
       finished := true)
  done

let handle t fd =
  match Http.read_request fd with
  | Error `Eof -> ()
  | Error (`Bad msg) -> bad t fd msg
  | Ok req -> (
    M.incr (M.counter t.reg "serve.requests");
    let parts =
      List.filter (fun s -> s <> "") (String.split_on_char '/' req.Http.target)
    in
    match (req.Http.meth, parts) with
    | "POST", [ "jobs" ] -> submit t fd req.Http.body
    | "GET", [ "jobs"; id ] -> (
      match find_job t id with
      | None ->
        Http.respond ~status:404
          ~body:(J.to_string (J.Obj [ ("error", J.Str "unknown job") ]))
          fd
      | Some j ->
        Mutex.lock j.jb_lock;
        let body = job_json j in
        Mutex.unlock j.jb_lock;
        Http.respond ~status:200 ~body fd)
    | "GET", [ "jobs"; id; "events" ] -> (
      match find_job t id with
      | None ->
        Http.respond ~status:404
          ~body:(J.to_string (J.Obj [ ("error", J.Str "unknown job") ]))
          fd
      | Some j -> stream_events t fd j)
    | "GET", [ "metrics" ] ->
      Http.respond ~status:200
        ~content_type:
          "application/openmetrics-text; version=1.0.0; charset=utf-8"
        ~body:(M.to_openmetrics (M.snapshot t.reg))
        fd
    | "GET", [] ->
      Http.respond ~status:200
        ~body:
          (J.to_string
             (J.Obj
                [
                  ("service", J.Str "ccr-serve");
                  ( "endpoints",
                    J.List
                      [
                        J.Str "POST /jobs";
                        J.Str "GET /jobs/ID";
                        J.Str "GET /jobs/ID/events";
                        J.Str "GET /metrics";
                      ] );
                ]))
        fd
    | _, ([ "jobs" ] | [ "jobs"; _ ] | [ "jobs"; _; "events" ] | [ "metrics" ])
      ->
      Http.respond ~status:405
        ~body:(J.to_string (J.Obj [ ("error", J.Str "method not allowed") ]))
        fd
    | _ ->
      Http.respond ~status:404
        ~body:(J.to_string (J.Obj [ ("error", J.Str "no such endpoint") ]))
        fd)

(* No [Unix.select] here: select(2)'s fd_set silently stops reporting
   readiness for descriptors >= FD_SETSIZE (1024), and a long-lived host
   process can hand the listen socket an arbitrarily high fd.  The listen
   socket carries SO_RCVTIMEO (set in [start]) instead, so a plain
   blocking [accept] wakes every 250 ms to check [stopping]. *)
let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.accept t.sock with
    | exception
        Unix.Unix_error
          ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.EBADF
            | Unix.ETIMEDOUT ),
            _,
            _ ) ->
      ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | fd, _addr ->
      if Atomic.get t.stopping then (try Unix.close fd with _ -> ())
      else begin
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0 with _ -> ());
        Atomic.incr t.conn_count;
        ignore
          (Thread.create
             (fun () ->
               Fun.protect
                 ~finally:(fun () ->
                   (try Unix.close fd with _ -> ());
                   Atomic.decr t.conn_count)
                 (fun () -> try handle t fd with _ -> ()))
             ())
      end
  done

(* ---- lifecycle ----------------------------------------------------------- *)

let start ?(port = 0) ?(workers = 1) ?(queue_cap = 64) ?cache_dir
    ?(max_states_cap = 10_000_000) () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  (* wakes the select-free accept loop periodically; see [accept_loop] *)
  (try Unix.setsockopt_float sock Unix.SO_RCVTIMEO 0.25 with _ -> ());
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      d_port = actual_port;
      queue = Queue.create ();
      queue_cap;
      qlock = Mutex.create ();
      qcond = Condition.create ();
      jobs = Hashtbl.create 64;
      jlock = Mutex.create ();
      cache = Option.map (fun dir -> Cache.create ~dir ()) cache_dir;
      max_states_cap;
      reg = M.create ();
      stopping = Atomic.make false;
      engine = Mutex.create ();
      threads = [];
      seq = 0;
      done_count = 0;
      conn_count = Atomic.make 0;
    }
  in
  (* touch the serve counters so /metrics shows them as zeros from the
     first scrape *)
  List.iter
    (fun name -> ignore (M.counter t.reg name))
    [
      "serve.requests"; "serve.jobs_submitted"; "serve.jobs_done";
      "serve.jobs_failed"; "serve.cache_hits"; "serve.cache_misses";
      "serve.rejected_queue_full"; "serve.bad_requests";
      "serve.states_explored";
    ];
  let ws = List.init (max 1 workers) (fun _ -> Thread.create (fun () -> worker t) ()) in
  let acc = Thread.create (fun () -> accept_loop t) () in
  t.threads <- acc :: ws;
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* wake the workers and every event stream *)
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    Mutex.lock t.jlock;
    Hashtbl.iter
      (fun _ j ->
        Mutex.lock j.jb_lock;
        Condition.broadcast j.jb_cond;
        Mutex.unlock j.jb_lock)
      t.jobs;
    Mutex.unlock t.jlock;
    List.iter Thread.join t.threads;
    (try Unix.close t.sock with _ -> ());
    (* connection handlers are detached; wait briefly for them to drain *)
    let deadline = Unix.gettimeofday () +. 5.0 in
    while Atomic.get t.conn_count > 0 && Unix.gettimeofday () < deadline do
      Thread.yield ()
    done
  end
