(** The checking-as-a-service daemon: a loopback HTTP/1.1 JSON API over a
    bounded FIFO job queue and a content-addressed result cache.

    Endpoints:
    - [POST /jobs] — body is an {!Api.config} JSON object; returns the
      job id.  Cache hits return an already-done job (status 200); fresh
      jobs are queued (202); a full queue answers 429 and a malformed or
      unresolvable spec 400.
    - [GET /jobs/ID] — job status plus verdict once done (404 unknown).
    - [GET /jobs/ID/events] — chunked NDJSON stream of the job's
      schema-v1 journal events, as produced.
    - [GET /metrics] — the service metrics in OpenMetrics text format
      (terminated by [# EOF]).

    Jobs always explore sequentially (jobs=1): worker threads pipeline
    queue draining and I/O, while the exploration itself is serialized on
    one engine lock — OCaml threads share a single runtime anyway, and
    the canonicalizers keep domain-local scratch that must not be shared
    mid-flight. *)

type t

val start :
  ?port:int ->
  ?workers:int ->
  ?queue_cap:int ->
  ?cache_dir:string ->
  ?max_states_cap:int ->
  unit ->
  t
(** Bind [127.0.0.1:port] (default an ephemeral port: pass [0], read
    {!port}) and start accepting.  [workers] worker threads (default 1)
    drain a queue of at most [queue_cap] (default 64) pending jobs.
    Without [cache_dir] results are not cached.  Submitted [max_states]
    are clamped to [max_states_cap] (default 10_000_000). *)

val port : t -> int
val metrics : t -> Ccr_obs.Metrics.t
val jobs_done : t -> int

val stop : t -> unit
(** Graceful shutdown: stop accepting, interrupt the running exploration
    at its next safe point, wake every event stream, join all threads.
    Idempotent. *)
