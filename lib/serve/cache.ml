(* Content-addressed result cache.  Keys are hex digests, so they are
   safe as file names; entries are self-describing JSON objects written
   through the journal codec. *)

module J = Ccr_obs.Journal

type t = { cdir : string; max_entries : int; lock : Mutex.t }

type entry = {
  e_key : string;
  e_config : J.value;
  e_verdict : Api.verdict;
  e_journal : string list;
}

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir ?(max_entries = 4096) () =
  mkdir_p dir;
  { cdir = dir; max_entries; lock = Mutex.create () }

let dir t = t.cdir

let safe_key key =
  String.for_all
    (fun c ->
      (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
    key
  && key <> ""

let path t key = Filename.concat t.cdir (key ^ ".json")

let entries t =
  match Sys.readdir t.cdir with
  | exception Sys_error _ -> [||]
  | names -> Array.of_list
      (List.filter (fun n -> Filename.check_suffix n ".json")
         (Array.to_list names))

let count t = Array.length (entries t)

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let find t key =
  if not (safe_key key) then None
  else
    let p = path t key in
    match read_file p with
    | exception Sys_error _ -> None
    | raw -> (
      match J.parse raw with
      | None -> None
      | Some json -> (
        let verdict =
          match J.find json "verdict" with
          | Some vj -> Api.verdict_of_json vj
          | None -> Error "no verdict"
        in
        match verdict with
        | Error _ -> None
        | Ok v ->
          let journal =
            match J.get_list (J.find json "journal") with
            | Some lines ->
              List.filter_map
                (function J.Str s -> Some s | _ -> None)
                lines
            | None -> []
          in
          Some
            {
              e_key = key;
              e_config =
                Option.value ~default:J.Null (J.find json "config");
              e_verdict = v;
              e_journal = journal;
            }))

let evict_locked t =
  let names = entries t in
  let excess = Array.length names - t.max_entries in
  if excess > 0 then begin
    let with_mtime =
      Array.map
        (fun n ->
          let p = Filename.concat t.cdir n in
          let mt = try (Unix.stat p).Unix.st_mtime with _ -> 0. in
          (mt, p))
        names
    in
    Array.sort compare with_mtime;
    Array.iteri
      (fun i (_, p) -> if i < excess then try Sys.remove p with _ -> ())
      with_mtime
  end

let store t e =
  if safe_key e.e_key then begin
    let json =
      J.Obj
        [
          ("key", J.Str e.e_key);
          ("config", e.e_config);
          ("verdict", Api.verdict_to_json e.e_verdict);
          ("journal", J.List (List.map (fun l -> J.Str l) e.e_journal));
        ]
    in
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let final = path t e.e_key in
        let tmp = final ^ ".tmp" in
        let oc = open_out_bin tmp in
        output_string oc (J.to_string json);
        output_char oc '\n';
        close_out oc;
        Sys.rename tmp final;
        evict_locked t)
  end
