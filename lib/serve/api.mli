(** Reusable model-checking entry point: configuration record in, verdict
    record out.

    Extracted from the [ccr check] command so the CLI and the [ccr serve]
    daemon run the exact same code path.  The CLI injects a full-featured
    {!explorer} (checkpointing, multi-process Mpx, provenance, progress);
    the daemon uses {!default_explorer}.  Everything user-visible — the
    rendered outcome line, counterexample states, starvation witnesses,
    journal events — is produced here so that a daemon verdict is
    byte-identical to the in-process one. *)

module Explore = Ccr_modelcheck.Explore
module J = Ccr_obs.Journal

(** A protocol either by registry name or as inline [.ccr] source. *)
type spec_src = Named of string | Inline of string

type config = {
  spec : spec_src;
  level : [ `Rv | `Async ];
  n : int;  (** remote nodes *)
  k : int;  (** home buffer capacity *)
  generic : bool;  (** disable the request/reply optimization *)
  symmetry : [ `Auto | `Off | `Brute ];
  faults : string option;  (** fault budget spec, e.g. ["drop=1@ack"] *)
  harden : bool;
  max_states : int;
  max_mem_mb : int option;
  deadline_s : float option;
  store : [ `Mem | `Collapse | `Disk ];
  jobs : int;  (** worker domains; the daemon always runs 1 *)
}

(** [default] is [ccr check]'s defaults with an empty spec. *)
val default : config

val level_name : config -> string
val symmetry_name : config -> string
val store_name : config -> string

(** Normalized fault-budget name ("none" when absent or unparsable);
    feeds {!spec_hash} and checkpoint manifests. *)
val faults_name : config -> string

val fault_spec :
  config -> (Ccr_faults.Fault.spec option, string) result

(** The exploration engine a caller plugs into {!check_entry}.  The field
    is explicitly polymorphic: one record serves every (state, label)
    instantiation of the four check branches. *)
type explorer = {
  explore :
    'st 'lbl.
    check_deadlock:bool ->
    split:(string -> int array) option ->
    invariants:(string * ('st -> bool)) list ->
    ('st, 'lbl) Explore.system ->
    ('st, 'lbl) Explore.stats;
}

(** Sequential (or [jobs]-domain) exploration honouring the config's
    store/caps; no checkpointing, no progress UI. *)
val default_explorer :
  ?on_level:(depth:int -> states:int -> unit) ->
  ?interrupt:(unit -> bool) ->
  config ->
  explorer

(** The deterministic part of a check result.  Wall-clock and memory
    figures live in {!meta} so verdicts are byte-comparable across
    machines and cache hits. *)
type verdict = {
  v_protocol : string;
  v_level : string;  (** "rendezvous" | "async" *)
  v_outcome : string;
      (** service outcome: "complete", "violation", "deadlock",
          "starvation", "limit-states", "limit-memory", "limit-time",
          "interrupted" *)
  v_explored : string;
      (** raw exploration outcome tag; differs from [v_outcome] only for
          starvation, where exploration itself completed *)
  v_ok : bool;
  v_states : int;
  v_transitions : int;
  v_max_depth : int;
  v_canon_fallbacks : int;
  v_sym : bool;  (** symmetry reduction was active *)
  v_invariant : string option;  (** violated invariant, if any *)
  v_starved : int option;  (** starved remote, if any *)
  v_rules : string list option;
      (** rule labels of the counterexample / witness path; [None] when
          the engine produced no trace at all *)
  v_outcome_line : string;  (** rendered text after "outcome: " *)
  v_trace : string list;  (** rendered counterexample states *)
  v_msc : string option;  (** rendered message-sequence chart *)
  v_liveness : string option;  (** rendered liveness block, async+faults *)
}

type meta = {
  m_time_s : float;
  m_mem_bytes : int;
  m_raw_bytes : int;
  m_peak_frontier : int;
}

val outcome_tag : _ Explore.outcome -> string

(** Resolve a spec source to a registry entry.  Inline sources are parsed
    and validated; they get no built-in invariants, like [.ccr] files. *)
val resolve : spec_src -> (Ccr_protocols.Registry.t, string) result

(** Pins *what* is being explored: marshalled IR plus instance parameters
    and semantics flags.  Store/caps excluded — they may change across a
    checkpoint resume. *)
val spec_hash : Ccr_protocols.Registry.t -> config -> string

(** Content-addressed result-cache key: {!spec_hash} plus the
    verdict-affecting execution knobs (max_states, store). *)
val cache_key : Ccr_protocols.Registry.t -> config -> string

(** Only machine-independent outcomes may be cached: complete, violation,
    deadlock, limit-states (BFS order is deterministic at jobs=1).
    Time/memory caps and interrupts depend on the machine. *)
val cacheable : verdict -> bool

(** Run one check.  [meter], [observe_label], [sym_stats] and [on_orbit]
    are CLI observability hooks; the daemon omits them. *)
val check_entry :
  ?explorer:explorer ->
  ?meter:Ccr_refine.Async.meter ->
  ?observe_label:(Ccr_refine.Async.label -> unit) ->
  ?sym_stats:Ccr_refine.Symmetry.stats ->
  ?on_orbit:(int -> unit) ->
  Ccr_protocols.Registry.t ->
  config ->
  (verdict * meta, string) result

(** {!resolve} + {!check_entry}. *)
val check : ?explorer:explorer -> config -> (verdict * meta, string) result

(** {2 Journal rendering}

    These reproduce the [ccr check] journal byte-for-byte: the daemon and
    the CLI call the same functions. *)

(** The schema-v1 "config" event fields (sans run-identity extras). *)
val journal_config : protocol:string -> config -> (string * J.value) list

(** Post-exploration events in emission order: cap/violation, canon,
    starvation. *)
val journal_events : verdict -> (string * (string * J.value) list) list

(** Fields of the pending "end" event. *)
val journal_end : verdict -> (string * J.value) list

(** {2 JSON codecs} (journal-codec values, HTTP bodies) *)

val config_to_json : config -> J.value
val config_of_json : J.value -> (config, string) result
val verdict_to_json : verdict -> J.value
val verdict_of_json : J.value -> (verdict, string) result
