type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop; advanced by the consumer *)
  tail : int Atomic.t;  (* next slot to push; advanced by the producer *)
}

let create ~dummy cap =
  if cap <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let cap2 = ref 1 in
  while !cap2 < cap do
    cap2 := !cap2 * 2
  done;
  {
    buf = Array.make !cap2 dummy;
    mask = !cap2 - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1
let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
let free t = capacity t - length t

let push t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- x;
    (* publish: the slot write must be visible before the new tail *)
    Atomic.set t.tail (tail + 1);
    true
  end

let unsafe_peek t = t.buf.(Atomic.get t.head land t.mask)

let pop_drop t =
  let head = Atomic.get t.head in
  (* clear before publishing so the producer's next overwrite is the only
     remaining reference to the element *)
  t.buf.(head land t.mask) <- t.dummy;
  Atomic.set t.head (head + 1)

let pop t =
  if is_empty t then None
  else begin
    let x = unsafe_peek t in
    pop_drop t;
    Some x
  end

let to_list t =
  let head = Atomic.get t.head and tail = Atomic.get t.tail in
  List.init (tail - head) (fun i -> t.buf.((head + i) land t.mask))
