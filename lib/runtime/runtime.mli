(** Concurrent execution of a refined protocol.

    The paper's output is a protocol "that can be implemented directly,
    for example in microcode" — this module is that implementation in
    software: the home and each remote run as {e real threads}, each
    interpreting its own node-local slice of the refinement rules
    ({!Async.home_local}/{!Async.home_recv}/{!Async.remote_local}/
    {!Async.remote_recv}) and exchanging {!Wire} messages over in-order
    {!Channel}s — through the fault-injecting {!Faultlink} transport when
    a fault plan is given.  Nothing coordinates the nodes besides the
    messages — the interleavings are whatever the OS scheduler produces.

    Workload: each remote runs [budget] protocol cycles (a cycle starts
    whenever the remote leaves its initial control state) and then goes
    quiet, still answering home requests.  The run ends when every node
    is idle with empty channels, or at [deadline_s].

    The final configuration is reassembled into a global {!Async.state}
    and handed to the caller's invariants: coherence must hold at the
    end of a real concurrent execution, not only in the model. *)

open Ccr_core
open Ccr_refine
open Ccr_faults

type stats = {
  completions : int array;  (** per-remote completed rendezvous *)
  rendezvous : int;
  messages : int;  (** wire messages actually sent *)
  reqs : int;  (** request messages (incl. replies) *)
  acks : int;
  nacks : int;
  data_msgs : int;  (** requests carrying a non-empty payload *)
  buf_occupancy : int array;
      (** histogram over home transitions: index [i] counts transitions
          that left [i] requests buffered at the home *)
  steps : int;  (** node transitions executed *)
  quiescent : bool;  (** clean termination before the deadline *)
  invariant_failures : string list;  (** on the final global state *)
  protocol_errors : string list;  (** {!Async.Protocol_error} from any thread *)
  faults : Fault.fcounts;
      (** injection accounting (all zero without a fault plan) *)
  watchdog : (string * string) list;
      (** per-node snapshot taken after the join: control state, mode,
          remaining budget, inbox depth — on a deadline hit this names
          the stuck node instead of a bare [quiescent = false] *)
  wall_s : float;
  engine : string;  (** which engine produced the run: ["threads"] or ["loop"] *)
  stop_cause : string;
      (** why the run ended: ["quiescent"], ["deadline"], ["step-cap"],
          ["stall"] (loop engine only: deterministic no-progress exit
          before the deadline) or ["error"] *)
}

val run :
  ?seed:int ->
  ?deadline_s:float ->
  ?max_steps:int ->
  ?metrics:Ccr_obs.Metrics.t ->
  ?faults:Injected.mode * Plan.t ->
  budget:int ->
  invariants:(string * (Async.state -> bool)) list ->
  Prog.t ->
  Async.config ->
  stats
(** @param budget protocol cycles per remote (default deadline 30 s).
    [max_steps] (default: unlimited) stops the run once that many node
    transitions have executed, with [stop_cause = "step-cap"] — the same
    cap {!Engine.run} honours, so [--steps] behaves identically on both
    engines.
    [metrics] (default: none) fills [msg.req]/[msg.ack]/[msg.nack]/
    [msg.data]/[rendezvous] counters and the [home_buffer_occupancy]
    histogram in the given registry once, after the threads join — the
    node loops themselves only bump atomics.  [faults] (default: none)
    routes every message through {!Faultlink} under the given plan:
    [Vanilla] executes drops/dups/delays on the paper's unprotected
    channels (expect a deadline hit or a protocol error — that is the
    point), [Hardened] runs the timeout/retransmit/dedup transport and
    must stay quiescent and coherent; [fault.*] counters are added to
    [metrics] when a plan is given.  A thread that raises
    {!Async.Protocol_error} poisons the transport ({!Channel.close}) so
    the other node threads exit promptly. *)

val pp_stats : stats Fmt.t
