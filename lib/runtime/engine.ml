open Ccr_core
open Ccr_refine
open Ccr_faults

type transport =
  | Rings of { to_h : Wire.t Ring.t array; to_r : Wire.t Ring.t array }
  | Link of Faultlink.t

(* Per-domain accounting.  The mutable fields are touched only by the
   owning domain; [d_steps]/[d_idle] are the owner's published view for
   the leader's termination checks (stale reads are fine — the final
   verdict is recomputed race-free after the joins). *)
type dacct = {
  mutable a_msgs : int;
  mutable a_reqs : int;
  mutable a_acks : int;
  mutable a_nacks : int;
  mutable a_datas : int;
  mutable a_steps : int;
  d_steps : int Atomic.t;
  d_idle : bool Atomic.t;
  batch_hist : int array;  (* Metrics log-buckets *)
  mbox_hist : int array;  (* mailbox occupancy at non-empty drains *)
}

let dacct () =
  {
    a_msgs = 0;
    a_reqs = 0;
    a_acks = 0;
    a_nacks = 0;
    a_datas = 0;
    a_steps = 0;
    d_steps = Atomic.make 0;
    d_idle = Atomic.make false;
    batch_hist = Array.make Ccr_obs.Metrics.n_buckets 0;
    mbox_hist = Array.make Ccr_obs.Metrics.n_buckets 0;
  }

let count_msg a (w : Wire.t) =
  a.a_msgs <- a.a_msgs + 1;
  match w with
  | Wire.Req m ->
    a.a_reqs <- a.a_reqs + 1;
    if m.Wire.m_payload <> [] then a.a_datas <- a.a_datas + 1
  | Wire.Ack -> a.a_acks <- a.a_acks + 1
  | Wire.Nack -> a.a_nacks <- a.a_nacks + 1

let bump hist v =
  let b = Ccr_obs.Metrics.bucket_of v in
  hist.(b) <- hist.(b) + 1

let run ?(seed = 42) ?(deadline_s = 30.0) ?max_steps ?(domains = 1)
    ?(batch = 64) ?(ring_cap = 1024) ?metrics ?faults ?on_step ~budget
    ~invariants (prog : Prog.t) (cfg : Async.config) =
  let t0 = Unix.gettimeofday () in
  let n = prog.n in
  if on_step <> None && faults <> None then
    invalid_arg "Engine.run: tracing (on_step) requires a fault-free run";
  let batch = max 1 batch in
  let nd =
    if on_step <> None then 1 else max 1 (min domains (max 1 n))
  in
  let no_faults = Option.is_none faults in
  let mode, plan =
    match faults with
    | Some (m, p) -> (m, p)
    | None -> (Injected.Vanilla, Plan.make ~n Fault.none [])
  in
  let fcounts = Fault.zero () in
  let tr =
    match faults with
    | Some _ -> Link (Faultlink.make ~n ~mode ~plan ~counts:fcounts)
    | None ->
      Rings
        {
          to_h = Array.init n (fun _ -> Ring.create ~dummy:Wire.Ack ring_cap);
          to_r = Array.init n (fun _ -> Ring.create ~dummy:Wire.Ack ring_cap);
        }
  in
  let tbl = Mcode.compile prog in
  let hm = Mcode.home_make tbl ~k:cfg.k ~seed in
  let rms = Array.init n (fun i -> Mcode.remote_make tbl ~seed i) in
  let budgets = Array.make n budget in
  let accts = Array.init nd (fun _ -> dacct ()) in
  let completions = Array.init n (fun _ -> Atomic.make 0) in
  let stop = Atomic.make false in
  let stop_cause = Atomic.make "deadline" in
  let halt cause =
    if Atomic.compare_and_set stop false true then Atomic.set stop_cause cause
  in
  let errors_mutex = Mutex.create () in
  let errors = ref [] in
  let record_error e =
    Mutex.lock errors_mutex;
    errors := e :: !errors;
    Mutex.unlock errors_mutex;
    halt "error";
    (* make sure a poisoned deadline-length run cannot outlive the error *)
    Atomic.set stop_cause "error";
    match tr with Link l -> Faultlink.close l | Rings _ -> ()
  in
  let tick_now () = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
  let paused_now i =
    (not no_faults) && Plan.paused_at plan i (tick_now ())
  in
  let any_paused () =
    (not no_faults)
    &&
    let t = tick_now () in
    let rec go i = i < n && (Plan.paused_at plan i t || go (i + 1)) in
    go 0
  in
  (* home-buffer occupancy histogram, domain 0 only (it owns the home) *)
  let hb_occ = Array.make (cfg.k + 1) 0 in
  let record_hocc () =
    let o = min (Mcode.home_buf_len hm) cfg.k in
    hb_occ.(o) <- hb_occ.(o) + 1
  in
  let trace_home, trace_remote =
    match on_step with
    | None -> ((fun _ -> ()), fun _ _ -> ())
    | Some f ->
      ( (fun code ->
          f
            {
              Async.rule = Mcode.rule_of_code code;
              actor = Mcode.home_last_actor hm;
              subject = Mcode.home_last_subject hm;
            }),
        fun i code ->
          f
            {
              Async.rule = Mcode.rule_of_code code;
              actor = i;
              subject = Mcode.remote_last_subject rms.(i);
            } )
  in
  let count_home a code =
    a.a_steps <- a.a_steps + 1;
    if Mcode.completes code then
      Atomic.incr completions.(Mcode.home_last_actor hm);
    trace_home code
  in
  let count_remote a i code =
    a.a_steps <- a.a_steps + 1;
    if Mcode.completes code then Atomic.incr completions.(i);
    trace_remote i code
  in
  (* ---- transport-specialized node sweeps -------------------------------- *)
  (* Emission closures are built once per channel so the hot path never
     allocates a closure; [emit_rs.(i)] captures remote [i]'s owning
     domain's accounting. *)
  let hnext = ref 0 in
  let home_sweep, remote_sweep =
    match tr with
    | Rings { to_h; to_r } ->
      let a0 = accts.(0) in
      let emit_h j w =
        count_msg a0 w;
        if not (Ring.push to_r.(j) w) then
          failwith "Engine: home overran a checked ring"
      in
      let room_r j = Ring.free to_r.(j) > 0 in
      let emit_rs =
        Array.init n (fun i ->
            let a = accts.(i mod nd) in
            let rg = to_h.(i) in
            fun w ->
              count_msg a w;
              if not (Ring.push rg w) then
                failwith "Engine: remote overran a checked ring")
      in
      let home_sweep a =
        let worked = ref false in
        (* 1. drain every incoming mailbox in batches; the rotation base
           is snapshotted so each sweep still visits all n channels (a
           moving base can skip a channel every sweep and starve it) *)
        let start = !hnext in
        hnext := (start + 1) mod n;
        for off = 0 to n - 1 do
          let i = (start + off) mod n in
          let rg = to_h.(i) in
          let avail = Ring.length rg in
          if avail > 0 then begin
            bump a.mbox_hist avail;
            let out = to_r.(i) in
            let k = ref 0 in
            (* a nack may go back to the sender: require return room *)
            while
              !k < batch && (not (Ring.is_empty rg)) && Ring.free out > 0
            do
              let w = Ring.unsafe_peek rg in
              let code = Mcode.home_recv hm i w ~emit:emit_h in
              Ring.pop_drop rg;
              count_home a code;
              record_hocc ();
              incr k
            done;
            if !k > 0 then begin
              bump a.batch_hist !k;
              worked := true
            end
          end
        done;
        (* 2. a burst of local transitions (C1/C2/tau) *)
        let k = ref 0 in
        let live = ref true in
        while !k < batch && !live do
          let code = Mcode.home_local hm ~room:room_r ~emit:emit_h in
          if code >= 0 then begin
            count_home a code;
            record_hocc ();
            worked := true;
            incr k
          end
          else live := false
        done;
        !worked
      in
      let remote_sweep a i =
        let worked = ref false in
        let rg = to_r.(i) in
        let rm = rms.(i) in
        let avail = Ring.length rg in
        if avail > 0 then begin
          bump a.mbox_hist avail;
          let k = ref 0 in
          let live = ref true in
          while !k < batch && !live && not (Ring.is_empty rg) do
            let w = Ring.unsafe_peek rg in
            let code = Mcode.remote_recv rm w in
            if code = -2 then live := false (* one-slot buffer full *)
            else begin
              Ring.pop_drop rg;
              count_remote a i code;
              incr k
            end
          done;
          if !k > 0 then begin
            bump a.batch_hist !k;
            worked := true
          end
        end;
        let out = to_h.(i) in
        let emit = emit_rs.(i) in
        let k = ref 0 in
        let live = ref true in
        while !k < batch && !live do
          let at_start = Mcode.remote_at_start rm in
          if at_start && budgets.(i) <= 0 then live := false
          else begin
            let code =
              Mcode.remote_local rm ~room_h:(Ring.free out > 0) ~emit
            in
            if code >= 0 then begin
              if at_start then budgets.(i) <- budgets.(i) - 1;
              count_remote a i code;
              worked := true;
              incr k
            end
            else live := false
          end
        done;
        !worked
      in
      (home_sweep, remote_sweep)
    | Link l ->
      let a0 = accts.(0) in
      let emit_h j w =
        count_msg a0 w;
        Faultlink.send l (Fault.To_r j) w
      in
      let room_r _ = true in
      let emit_rs =
        Array.init n (fun i ->
            let a = accts.(i mod nd) in
            fun w ->
              count_msg a w;
              Faultlink.send l (Fault.To_h i) w)
      in
      let home_sweep a =
        for j = 0 to n - 1 do
          Faultlink.tick l (Fault.To_r j)
        done;
        let worked = ref false in
        let start = !hnext in
        hnext := (start + 1) mod n;
        for off = 0 to n - 1 do
          let i = (start + off) mod n in
          let avail = Faultlink.inbox_length l (Fault.To_h i) in
          if avail > 0 then bump a.mbox_hist avail;
          let k = ref 0 in
          let live = ref true in
          while !k < batch && !live do
            match Faultlink.peek l (Fault.To_h i) with
            | Some w ->
              let code = Mcode.home_recv hm i w ~emit:emit_h in
              ignore (Faultlink.pop l (Fault.To_h i));
              count_home a code;
              record_hocc ();
              incr k
            | None -> live := false
          done;
          if !k > 0 then begin
            bump a.batch_hist !k;
            worked := true
          end
        done;
        let k = ref 0 in
        let live = ref true in
        while !k < batch && !live do
          let code = Mcode.home_local hm ~room:room_r ~emit:emit_h in
          if code >= 0 then begin
            count_home a code;
            record_hocc ();
            worked := true;
            incr k
          end
          else live := false
        done;
        !worked
      in
      let remote_sweep a i =
        if paused_now i then false
        else begin
          Faultlink.tick l (Fault.To_h i);
          let worked = ref false in
          let rm = rms.(i) in
          let avail = Faultlink.inbox_length l (Fault.To_r i) in
          if avail > 0 then bump a.mbox_hist avail;
          let k = ref 0 in
          let live = ref true in
          while !k < batch && !live do
            match Faultlink.peek l (Fault.To_r i) with
            | Some w ->
              let code = Mcode.remote_recv rm w in
              if code = -2 then live := false
              else begin
                ignore (Faultlink.pop l (Fault.To_r i));
                count_remote a i code;
                incr k
              end
            | None -> live := false
          done;
          if !k > 0 then begin
            bump a.batch_hist !k;
            worked := true
          end;
          let emit = emit_rs.(i) in
          let k = ref 0 in
          let live = ref true in
          while !k < batch && !live do
            let at_start = Mcode.remote_at_start rm in
            if at_start && budgets.(i) <= 0 then live := false
            else begin
              let code = Mcode.remote_local rm ~room_h:true ~emit in
              if code >= 0 then begin
                if at_start then budgets.(i) <- budgets.(i) - 1;
                count_remote a i code;
                worked := true;
                incr k
              end
              else live := false
            end
          done;
          !worked
        end
      in
      (home_sweep, remote_sweep)
  in
  (* ---- leader termination checks ---------------------------------------- *)
  let total_steps () =
    Array.fold_left (fun acc a -> acc + Atomic.get a.d_steps) 0 accts
  in
  let transport_quiet () =
    match tr with
    | Rings { to_h; to_r } ->
      Array.for_all Ring.is_empty to_h && Array.for_all Ring.is_empty to_r
    | Link l -> Faultlink.quiet l
  in
  let all_idle () = Array.for_all (fun a -> Atomic.get a.d_idle) accts in
  let spent () = Array.for_all (fun b -> b <= 0) budgets in
  let stable = ref (-1) in
  let stable_n = ref 0 in
  let leader_check iters worked =
    if max_steps <> None || iters land 63 = 0 || not worked then
      if Unix.gettimeofday () -. t0 > deadline_s then halt "deadline"
      else begin
        (match max_steps with
        | Some cap when total_steps () >= cap -> halt "step-cap"
        | _ -> ());
        if not (Atomic.get stop) then
          if nd = 1 && no_faults then begin
            (* single domain, no timers: one full no-progress sweep is
               already proof that nothing can ever fire again *)
            if not worked then halt "stall"
          end
          else if
            (not worked)
            && all_idle ()
            && transport_quiet ()
            && (no_faults || (spent () && not (any_paused ())))
          then begin
            (* candidate exit: confirm the step count is frozen across
               repeated delayed looks before concluding *)
            let s = total_steps () in
            if s = !stable then begin
              incr stable_n;
              if !stable_n >= 3 then halt "stall" else Unix.sleepf 0.0005
            end
            else begin
              stable := s;
              stable_n := 0;
              Unix.sleepf 0.0005
            end
          end
          else begin
            stable := -1;
            stable_n := 0
          end
      end
  in
  (* ---- domain bodies ----------------------------------------------------- *)
  let domain_body d () =
    let a = accts.(d) in
    let owned =
      Array.of_list
        (List.filter (fun i -> i mod nd = d) (List.init n (fun i -> i)))
    in
    let iters = ref 0 in
    let idle_streak = ref 0 in
    (try
       while not (Atomic.get stop) do
         let worked = ref false in
         if d = 0 then begin
           try if home_sweep a then worked := true
           with Async.Protocol_error e -> record_error ("home: " ^ e)
         end;
         Array.iter
           (fun i ->
             try if remote_sweep a i then worked := true
             with Async.Protocol_error e ->
               record_error (Fmt.str "remote %d: %s" i e))
           owned;
         Atomic.set a.d_steps a.a_steps;
         Atomic.set a.d_idle (not !worked);
         incr iters;
         if d = 0 then leader_check !iters !worked;
         if !worked then idle_streak := 0
         else if not (Atomic.get stop) then begin
           (* brief spin keeps cross-domain latency low when cores are
              plentiful; a sustained idle streak falls back to real sleeps
              so that on an oversubscribed machine (one core, many
              domains) the kernel gives the quantum to a domain that has
              work instead of letting this one burn it on pause loops *)
           incr idle_streak;
           if !idle_streak <= 32 then Domain.cpu_relax ()
           else Unix.sleepf (Float.min 0.0005 (0.00002 *. float_of_int (!idle_streak - 32)))
         end
       done
     with e -> record_error (Fmt.str "domain %d: %s" d (Printexc.to_string e)));
    Atomic.set a.d_steps a.a_steps
  in
  let others =
    Array.init (nd - 1) (fun i -> Domain.spawn (domain_body (i + 1)))
  in
  domain_body 0 ();
  Array.iter Domain.join others;
  (* ---- post-join: everything below is race-free ------------------------- *)
  fcounts.pauses <-
    (if no_faults then 0
     else
       List.length
         (List.filter
            (fun (w : Plan.window) -> w.w_start < tick_now ())
            plan.Plan.windows));
  let hsnap = Mcode.home_snapshot hm in
  let rsnaps = Array.map Mcode.remote_snapshot rms in
  let inbox_len ch =
    match tr with
    | Rings { to_h; to_r } -> (
      match ch with
      | Fault.To_h i -> Ring.length to_h.(i)
      | Fault.To_r i -> Ring.length to_r.(i))
    | Link l -> Faultlink.inbox_length l ch
  in
  let hmode_desc = function
    | Async.Hcomm -> "comm"
    | Async.Htrans { peer; await; _ } ->
      Fmt.str "transient→r%d awaiting %s" peer
        (match await with `Ack -> "ack" | `Repl m -> "reply " ^ m)
  in
  let rmode_desc = function
    | Async.Rcomm -> "comm"
    | Async.Rtrans _ -> "transient awaiting ack/nack"
    | Async.Rwait { repl; _ } -> "awaiting reply " ^ repl
  in
  let watchdog =
    ( "home",
      Fmt.str "ctl=%s, %s, %d buffered, inbox %d"
        prog.home.p_states.(hsnap.Async.h_ctl).cs_name
        (hmode_desc hsnap.Async.h_mode)
        (List.length hsnap.Async.h_buf)
        (Array.fold_left ( + ) 0
           (Array.init n (fun i -> inbox_len (Fault.To_h i)))) )
    :: List.init n (fun i ->
           ( Fmt.str "remote %d" i,
             Fmt.str "ctl=%s, %s, budget left %d, inbox %d"
               prog.remote.p_states.(rsnaps.(i).Async.r_ctl).cs_name
               (rmode_desc rsnaps.(i).Async.r_mode)
               budgets.(i)
               (inbox_len (Fault.To_r i)) ))
  in
  let final =
    {
      Async.h = hsnap;
      r = rsnaps;
      to_h =
        (match tr with
        | Rings { to_h; _ } -> Array.map Ring.to_list to_h
        | Link l -> Array.init n (fun i -> Faultlink.drain l (Fault.To_h i)));
      to_r =
        (match tr with
        | Rings { to_r; _ } -> Array.map Ring.to_list to_r
        | Link l -> Array.init n (fun i -> Faultlink.drain l (Fault.To_r i)));
    }
  in
  let invariant_failures =
    List.filter_map
      (fun (name, check) -> if check final then None else Some name)
      invariants
  in
  (* the "stall" verdict is only tentative: promoted to quiescent when
     the joined configuration really is one *)
  let chans_empty =
    Array.for_all (fun l -> l = []) final.Async.to_h
    && Array.for_all (fun l -> l = []) final.Async.to_r
  in
  let modes_comm =
    hsnap.Async.h_mode = Async.Hcomm
    && Array.for_all (fun r -> r.Async.r_mode = Async.Rcomm) rsnaps
  in
  let cause0 = Atomic.get stop_cause in
  let quiescent =
    cause0 = "stall" && spent () && chans_empty && modes_comm && !errors = []
  in
  let cause = if quiescent then "quiescent" else cause0 in
  let wall_s = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun acc a -> acc + f a) 0 accts in
  (match metrics with
  | Some reg ->
    let open Ccr_obs.Metrics in
    add (counter reg "msg.req") (sum (fun a -> a.a_reqs));
    add (counter reg "msg.ack") (sum (fun a -> a.a_acks));
    add (counter reg "msg.nack") (sum (fun a -> a.a_nacks));
    add (counter reg "msg.data") (sum (fun a -> a.a_datas));
    add
      (counter reg "rendezvous")
      (Array.fold_left (fun acc c -> acc + Atomic.get c) 0 completions);
    let h = histogram reg "home_buffer_occupancy" in
    Array.iteri (fun occ cnt -> observe_n h occ cnt) hb_occ;
    let rep b = if b = 0 then 0 else fst (bucket_range b) in
    let fill name sel =
      let h = histogram reg name in
      Array.iter
        (fun a ->
          Array.iteri
            (fun b cnt -> if cnt > 0 then observe_n h (rep b) cnt)
            (sel a))
        accts
    in
    fill "engine.batch_size" (fun a -> a.batch_hist);
    fill "engine.mailbox_occupancy" (fun a -> a.mbox_hist);
    set (gauge reg "engine.domains") (float_of_int nd);
    Array.iteri
      (fun d a ->
        set
          (gauge reg (Fmt.str "engine.msgs_per_sec.d%d" d))
          (float_of_int a.a_msgs /. Float.max wall_s 1e-9))
      accts;
    if not no_faults then begin
      add (counter reg "fault.drop") fcounts.drops;
      add (counter reg "fault.dup") fcounts.dups;
      add (counter reg "fault.delay") fcounts.delays;
      add (counter reg "fault.pause") fcounts.pauses;
      add (counter reg "fault.retransmit") fcounts.retransmits;
      add (counter reg "fault.absorbed") fcounts.absorbed;
      add (counter reg "fault.delivered") fcounts.delivered
    end
  | None -> ());
  {
    Runtime.completions = Array.map Atomic.get completions;
    rendezvous =
      Array.fold_left (fun acc c -> acc + Atomic.get c) 0 completions;
    messages = sum (fun a -> a.a_msgs);
    reqs = sum (fun a -> a.a_reqs);
    acks = sum (fun a -> a.a_acks);
    nacks = sum (fun a -> a.a_nacks);
    data_msgs = sum (fun a -> a.a_datas);
    buf_occupancy = hb_occ;
    steps = sum (fun a -> a.a_steps);
    quiescent;
    invariant_failures;
    protocol_errors = List.rev !errors;
    faults = Fault.freeze fcounts;
    watchdog;
    wall_s;
    engine = "loop";
    stop_cause = cause;
  }
