(** Domain-sharded event-loop engine over compiled microcode tables.

    Where {!Runtime.run} gives every node an OS thread interpreting
    {!Async} rules over mutex-guarded {!Channel}s, this engine executes
    the {!Mcode} dispatch tables directly: nodes are sharded over OCaml 5
    domains (home on domain 0, remote [i] on domain [i mod domains]) and
    exchange {!Wire} messages through preallocated SPSC {!Ring}
    mailboxes, drained in batches of up to [batch] messages per node
    visit.  Steady-state message passing takes no locks and allocates
    nothing beyond the payloads themselves (acks and nacks are constant
    constructors), which is what buys the throughput gap over the
    threaded runtime — the threaded runtime stays alongside as the
    differential oracle.

    The workload, stop conditions and result shape are {!Runtime}'s:
    each remote runs [budget] protocol cycles, the run ends quiescent,
    at [deadline_s], at [max_steps], or — unlike the threaded runtime,
    which can only poll until the deadline — with a deterministic
    [stop_cause = "stall"] when no transition can ever fire again
    (single-domain fault-free runs detect this after one full
    no-progress sweep; sharded runs after the step count stays frozen
    across repeated idle checks).  Quiescence is verified after the
    domains join, race-free: all modes communicating, transport
    drained, budgets spent.

    With [faults] the rings are replaced by the {!Faultlink} transport
    (same plans, same [Vanilla]/[Hardened] split as the threaded
    runtime), trading peak rate for fault-model soak at engine rates.

    [on_step] observes every executed transition as an {!Async.label}
    in execution order; tracing forces [domains = 1] and requires a
    fault-free run ([Invalid_argument] otherwise) so the label sequence
    is a deterministic legal schedule of the refined semantics — the
    [engine] fuzz oracle replays it through {!Async.successors}. *)

open Ccr_core
open Ccr_refine
open Ccr_faults

val run :
  ?seed:int ->
  ?deadline_s:float ->
  ?max_steps:int ->
  ?domains:int ->
  ?batch:int ->
  ?ring_cap:int ->
  ?metrics:Ccr_obs.Metrics.t ->
  ?faults:Injected.mode * Plan.t ->
  ?on_step:(Async.label -> unit) ->
  budget:int ->
  invariants:(string * (Async.state -> bool)) list ->
  Prog.t ->
  Async.config ->
  Runtime.stats
(** Returns {!Runtime.stats} with [engine = "loop"].  [domains]
    (default 1) is clamped to [[1, n]]; [batch] (default 64) bounds both
    the mailbox drain and the local-transition burst per node visit;
    [ring_cap] (default 1024, rounded up to a power of two) sizes each
    mailbox — the protocol's in-flight occupancy per channel is O(1), so
    the default never exerts backpressure.  [metrics] additionally fills
    [engine.batch_size] and [engine.mailbox_occupancy] histograms
    (sampled at non-empty mailbox drains) and per-domain
    [engine.msgs_per_sec.d<i>] gauges. *)
