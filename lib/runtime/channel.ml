type 'a t = { mutex : Mutex.t; queue : 'a Queue.t; mutable closed : bool }

let create () =
  { mutex = Mutex.create (); queue = Queue.create (); closed = false }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let send t x = with_lock t (fun () -> if not t.closed then Queue.push x t.queue)

let peek t =
  with_lock t (fun () -> if t.closed then None else Queue.peek_opt t.queue)

let pop t =
  with_lock t (fun () -> if t.closed then None else Queue.take_opt t.queue)

let length t = with_lock t (fun () -> Queue.length t.queue)
let is_empty t = length t = 0

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Queue.clear t.queue)

let is_closed t = with_lock t (fun () -> t.closed)
