type 'a t = { mutex : Mutex.t; queue : 'a Queue.t; mutable closed : bool }

let create () =
  { mutex = Mutex.create (); queue = Queue.create (); closed = false }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let send t x = with_lock t (fun () -> if not t.closed then Queue.push x t.queue)

let peek t =
  with_lock t (fun () -> if t.closed then None else Queue.peek_opt t.queue)

let pop t =
  with_lock t (fun () -> if t.closed then None else Queue.take_opt t.queue)

let length t = with_lock t (fun () -> Queue.length t.queue)
let is_empty t = length t = 0

let close t =
  (* explicitly a no-op on an already-closed channel: error paths may
     poison the same transport twice (e.g. a protocol error after a
     deadline already closed it), and double-close must never raise *)
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Queue.clear t.queue
      end)

let is_closed t = with_lock t (fun () -> t.closed)
