(** Single-producer single-consumer ring buffer.

    The engine's mailboxes: one ring per channel direction, preallocated
    at start-up, so steady-state message passing allocates nothing and
    takes no locks.  Exactly one domain may push and exactly one domain
    may pop; the star topology of the refined protocol (every message
    travels home↔remote [i]) makes each direction naturally SPSC.

    Memory model: [head]/[tail] are {!Atomic.t} monotonic counters
    (sequentially consistent), masked into a power-of-two slot array.
    The producer writes the slot {e before} publishing [tail]; the
    consumer overwrites the slot with [dummy] {e before} advancing
    [head], so a slot is never observed by the other side outside its
    published window and consumed elements don't outlive their stay
    (no ghost references keeping dead messages alive). *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy cap] rounds [cap] up to a power of two.  [dummy]
    fills empty slots; it is never returned by the read operations. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Snapshot; exact from either endpoint's own side. *)

val is_empty : 'a t -> bool
val free : 'a t -> int

val push : 'a t -> 'a -> bool
(** Producer side.  [false] when full (backpressure) — the element is
    not enqueued. *)

val unsafe_peek : 'a t -> 'a
(** Consumer side; the oldest element.  Undefined (returns [dummy]) on
    an empty ring — guard with {!is_empty}/{!length}. *)

val pop_drop : 'a t -> unit
(** Consumer side; drop the oldest element (after {!unsafe_peek}).
    Must not be called on an empty ring. *)

val pop : 'a t -> 'a option
(** Consumer side; convenience for drains and tests. *)

val to_list : 'a t -> 'a list
(** Oldest first, without consuming.  Consumer side (or after the
    producer has stopped). *)
