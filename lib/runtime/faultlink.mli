(** Fault-injecting transport between the runtime's node threads.

    Wraps the raw {!Channel}s with the fault layer: every protocol send
    is given its planned fate ({!Ccr_faults.Plan.decide}) — delivered,
    dropped, duplicated or delayed.  In [Vanilla] mode the faults hit the
    receiver directly, exactly as the paper's channels would misbehave.
    In [Hardened] mode the link runs the timeout/retransmit transport the
    checker models abstractly in {!Ccr_faults.Injected}: frames carry
    sequence numbers, the sender keeps unacknowledged frames and
    retransmits them after [rto]; the receiver deduplicates, resequences
    out-of-order arrivals, and returns cumulative transport acks on the
    reverse pipe.  Transport acks and retransmissions are exempt from the
    fault plan (the budget is spent on protocol messages), so a finite
    budget is always survivable.

    Thread ownership: for each direction, the sender-side state is only
    touched by [send]/[tick] (the sending thread) and the receiver-side
    state only by [peek]/[pop] (the receiving thread); the pipes between
    them are mutex-guarded {!Channel}s. *)

open Ccr_refine
open Ccr_faults

type t

val make :
  n:int -> mode:Injected.mode -> plan:Plan.t -> counts:Fault.counts -> t

val send : t -> Fault.chan -> Wire.t -> unit
(** Called by the channel's sending thread only. *)

val peek : t -> Fault.chan -> Wire.t option
(** Next deliverable message (pumps the pipe first).  Called by the
    channel's receiving thread only. *)

val pop : t -> Fault.chan -> Wire.t option

val tick : t -> Fault.chan -> unit
(** Sender-side timers: flush due delayed frames, retransmit frames
    unacknowledged past the timeout.  Call regularly from the sending
    thread. *)

val quiet : t -> bool
(** Nothing in flight anywhere: pipes, ready queues, resequencing
    buffers, unacked lists and delay queues all empty. *)

val close : t -> unit
(** Poison every pipe and ready queue (see {!Channel.close}). *)

val inbox_length : t -> Fault.chan -> int
(** Frames queued toward the receiver (pipe + deliverable), for watchdog
    reports. *)

val drain : t -> Fault.chan -> Wire.t list
(** Remaining undelivered messages in FIFO-ish order (deliverable first,
    then in-flight, then resequencing buffer), for reassembling the final
    global state after the threads join. *)
