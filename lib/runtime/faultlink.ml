open Ccr_refine
open Ccr_faults

let rto_s = 0.02
let delay_s = 0.01

type frame = Data of int * Wire.t | Tack of int

(* One direction of a duplex pair.  Sender-side fields are only touched
   by the sending thread, receiver-side fields only by the receiving
   thread; the [pipe] and [ready] channels carry data between them. *)
type dir = {
  pipe : frame Channel.t;
  (* sender side *)
  mutable next_seq : int;
  mutable unacked : (int * float * Wire.t) list;  (** seq, last sent, msg *)
  mutable delayed : (float * frame) list;
  (* receiver side *)
  mutable expected : int;
  mutable reseq : (int * Wire.t) list;  (** sorted by seq *)
  ready : Wire.t Channel.t;
}

type t = {
  mode : Injected.mode;
  plan : Plan.t;
  cur : Plan.cursor;
  counts : Fault.counts;
  hr : dir array;  (** home → remote i *)
  rh : dir array;  (** remote i → home *)
}

let dir0 () =
  {
    pipe = Channel.create ();
    next_seq = 1;
    unacked = [];
    delayed = [];
    expected = 1;
    reseq = [];
    ready = Channel.create ();
  }

let make ~n ~mode ~plan ~counts =
  {
    mode;
    plan;
    cur = Plan.cursor plan;
    counts;
    hr = Array.init n (fun _ -> dir0 ());
    rh = Array.init n (fun _ -> dir0 ());
  }

(* The direction a channel name denotes, and its reverse (which carries
   the transport acks for it). *)
let dirs t = function
  | Fault.To_r i -> (t.hr.(i), t.rh.(i))
  | Fault.To_h i -> (t.rh.(i), t.hr.(i))

let now () = Unix.gettimeofday ()

let send t ch w =
  let d, _ = dirs t ch in
  let decision = Plan.decide t.plan t.cur ch w in
  match t.mode with
  | Injected.Vanilla -> (
    match decision with
    | Plan.Deliver ->
      t.counts.delivered <- t.counts.delivered + 1;
      Channel.send d.pipe (Data (0, w))
    | Plan.Drop -> t.counts.drops <- t.counts.drops + 1
    | Plan.Dup ->
      t.counts.dups <- t.counts.dups + 1;
      Channel.send d.pipe (Data (0, w));
      Channel.send d.pipe (Data (0, w))
    | Plan.Delay ->
      t.counts.delays <- t.counts.delays + 1;
      d.delayed <- d.delayed @ [ (now () +. delay_s, Data (0, w)) ])
  | Injected.Hardened -> (
    let seq = d.next_seq in
    d.next_seq <- seq + 1;
    d.unacked <- d.unacked @ [ (seq, now (), w) ];
    match decision with
    | Plan.Deliver ->
      t.counts.delivered <- t.counts.delivered + 1;
      Channel.send d.pipe (Data (seq, w))
    | Plan.Drop ->
      (* lost on the wire; the retransmit timeout recovers it *)
      t.counts.drops <- t.counts.drops + 1
    | Plan.Dup ->
      t.counts.dups <- t.counts.dups + 1;
      Channel.send d.pipe (Data (seq, w));
      Channel.send d.pipe (Data (seq, w))
    | Plan.Delay ->
      t.counts.delays <- t.counts.delays + 1;
      d.delayed <- d.delayed @ [ (now () +. delay_s, Data (seq, w)) ])

(* Receiver side: move pipe frames into [ready], acking the reverse
   direction's unacked list on transport acks. *)
let rec pump t ch =
  let d, rev = dirs t ch in
  match Channel.pop d.pipe with
  | None -> ()
  | Some (Tack k) ->
    rev.unacked <- List.filter (fun (s, _, _) -> s > k) rev.unacked;
    pump t ch
  | Some (Data (seq, w)) ->
    (match t.mode with
    | Injected.Vanilla -> Channel.send d.ready w
    | Injected.Hardened ->
      if seq = d.expected then begin
        Channel.send d.ready w;
        d.expected <- seq + 1;
        let rec flush () =
          match d.reseq with
          | (s, w') :: rest when s = d.expected ->
            Channel.send d.ready w';
            d.expected <- s + 1;
            d.reseq <- rest;
            flush ()
          | _ -> ()
        in
        flush ();
        Channel.send rev.pipe (Tack (d.expected - 1))
      end
      else if seq > d.expected then begin
        if not (List.mem_assoc seq d.reseq) then
          d.reseq <-
            List.sort (fun (a, _) (b, _) -> compare a b) ((seq, w) :: d.reseq)
      end
      else begin
        (* stale duplicate: dedup, re-ack so the sender stops *)
        t.counts.absorbed <- t.counts.absorbed + 1;
        Channel.send rev.pipe (Tack (d.expected - 1))
      end);
    pump t ch

let peek t ch =
  pump t ch;
  let d, _ = dirs t ch in
  Channel.peek d.ready

let pop t ch =
  pump t ch;
  let d, _ = dirs t ch in
  Channel.pop d.ready

let tick t ch =
  let d, _ = dirs t ch in
  let tnow = now () in
  let due, later = List.partition (fun (at, _) -> at <= tnow) d.delayed in
  d.delayed <- later;
  List.iter (fun (_, f) -> Channel.send d.pipe f) due;
  if t.mode = Injected.Hardened then
    d.unacked <-
      List.map
        (fun (seq, last, w) ->
          if tnow -. last > rto_s then begin
            t.counts.retransmits <- t.counts.retransmits + 1;
            Channel.send d.pipe (Data (seq, w));
            (seq, tnow, w)
          end
          else (seq, last, w))
        d.unacked

let dir_quiet d =
  Channel.is_empty d.pipe && Channel.is_empty d.ready && d.reseq = []
  && d.unacked = [] && d.delayed = []

let quiet t = Array.for_all dir_quiet t.hr && Array.for_all dir_quiet t.rh

let close t =
  let cl d =
    Channel.close d.pipe;
    Channel.close d.ready
  in
  Array.iter cl t.hr;
  Array.iter cl t.rh

let inbox_length t ch =
  let d, _ = dirs t ch in
  Channel.length d.pipe + Channel.length d.ready + List.length d.reseq

let drain t ch =
  let d, _ = dirs t ch in
  let rec take acc = function
    | None -> List.rev acc
    | Some w -> take (w :: acc) (Channel.pop d.ready)
  in
  let ready = take [] (Channel.pop d.ready) in
  let rec pipe acc =
    match Channel.pop d.pipe with
    | None -> List.rev acc
    | Some (Data (_, w)) -> pipe (w :: acc)
    | Some (Tack _) -> pipe acc
  in
  ready @ pipe [] @ List.map snd d.reseq
