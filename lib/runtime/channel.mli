(** Thread-safe FIFO channels with single-consumer peek semantics.

    Models the paper's network assumption (§2.2): reliable, in-order,
    point-to-point delivery with unbounded buffering.  The consumer may
    {!peek} before committing to {!pop} — remotes must leave a request
    queued while their one-slot buffer is full (Table 1).

    A channel can be {!close}d (poisoned): sends are dropped and
    consumers see an empty channel, so node threads polling it wind down
    immediately instead of blocking the join behind a wedged peer. *)

type 'a t

val create : unit -> 'a t
val send : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** The oldest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the oldest element. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val close : 'a t -> unit
(** Poison the channel: discard its contents, make every later [send] a
    no-op and every [peek]/[pop] return [None].  Idempotent: closing an
    already-closed channel is a no-op, never an error — error paths may
    poison the same transport twice. *)

val is_closed : 'a t -> bool
