open Ccr_core
open Ccr_refine
open Ccr_faults

type stats = {
  completions : int array;
  rendezvous : int;
  messages : int;
  reqs : int;
  acks : int;
  nacks : int;
  data_msgs : int;
  buf_occupancy : int array;
  steps : int;
  quiescent : bool;
  invariant_failures : string list;
  protocol_errors : string list;
  faults : Fault.fcounts;
  watchdog : (string * string) list;
  wall_s : float;
  engine : string;
  stop_cause : string;
}

(* Per-node shared cell: the node's state, guarded by a mutex so the
   monitor (and the final assembly) can read it consistently. *)
type 'a cell = { mutex : Mutex.t; mutable v : 'a; mutable idle : bool }

let cell v = { mutex = Mutex.create (); v; idle = false }

let with_cell c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) (fun () -> f c)

(* Completion counting mirrors {!Sim}: each rendezvous is counted exactly
   once, at the transition that commits it on the passive side (or at the
   reply completion). *)
let completes (l : Async.label) =
  match l.rule with
  | Async.H_C1 | Async.H_C1_silent | Async.H_T1_repl | Async.R_C3_ack
  | Async.R_C3_silent | Async.R_repl_recv ->
    true
  | _ -> false

let run ?(seed = 42) ?(deadline_s = 30.0) ?max_steps ?metrics ?faults ~budget
    ~invariants (prog : Prog.t) (cfg : Async.config) =
  let t0 = Unix.gettimeofday () in
  let n = prog.n in
  let mode, plan =
    match faults with
    | Some (m, p) -> (m, p)
    | None -> (Injected.Vanilla, Plan.make ~n Fault.none [])
  in
  let fcounts = Fault.zero () in
  let link = Faultlink.make ~n ~mode ~plan ~counts:fcounts in
  let stop = Atomic.make false in
  let messages = Atomic.make 0 in
  (* Per-kind message counters.  The node loops are systhreads, not
     domains, so they must not write DLS metric shards directly; they
     bump atomics and the registry is filled once at the end. *)
  let reqs_a = Atomic.make 0
  and acks_a = Atomic.make 0
  and nacks_a = Atomic.make 0
  and datas_a = Atomic.make 0 in
  let send_counted ch (w : Wire.t) =
    Atomic.incr messages;
    (match w with
    | Wire.Req m ->
      Atomic.incr reqs_a;
      if m.Wire.m_payload <> [] then Atomic.incr datas_a
    | Wire.Ack -> Atomic.incr acks_a
    | Wire.Nack -> Atomic.incr nacks_a);
    Faultlink.send link ch w
  in
  (* Pause windows: one plan tick = one millisecond of wall time. *)
  let tick_now () = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
  let paused_now i = Plan.paused_at plan i (tick_now ()) in
  (* Written by the home thread only; read after the joins. *)
  let occ_hist = Array.make (cfg.k + 1) 0 in
  let record_occ (h : Async.home) =
    let occ = min (List.length h.Async.h_buf) cfg.k in
    occ_hist.(occ) <- occ_hist.(occ) + 1
  in
  let steps = Atomic.make 0 in
  let rendezvous_by = Array.init n (fun _ -> Atomic.make 0) in
  let errors_mutex = Mutex.create () in
  let errors = ref [] in
  let stop_cause = ref "deadline" in
  let record_error e =
    Mutex.lock errors_mutex;
    errors := e :: !errors;
    stop_cause := "error";
    Mutex.unlock errors_mutex;
    Atomic.set stop true;
    (* poison the transport so every other node thread winds down now
       instead of polling until the deadline *)
    Faultlink.close link
  in
  let count l =
    Atomic.incr steps;
    if completes l then Atomic.incr rendezvous_by.(l.Async.actor)
  in
  let pick rng = function
    | [] -> None
    | l -> Some (List.nth l (Random.State.int rng (List.length l)))
  in
  (* ---- home thread ----------------------------------------------------- *)
  let hcell = cell (Async.initial_home prog) in
  let home_thread () =
    let rng = Random.State.make [| seed; 7919 |] in
    let next = ref 0 in
    try
      while not (Atomic.get stop) do
        for j = 0 to n - 1 do
          Faultlink.tick link (Fault.To_r j)
        done;
        let worked = ref false in
        (* 1. serve incoming messages, round-robin over the remotes *)
        for off = 0 to n - 1 do
          let i = (!next + off) mod n in
          if not !worked then
            match Faultlink.peek link (Fault.To_h i) with
            | Some w ->
              with_cell hcell (fun c ->
                  match pick rng (Async.home_recv prog cfg c.v i w) with
                  | Some (l, h', outs) ->
                    ignore (Faultlink.pop link (Fault.To_h i));
                    c.v <- h';
                    record_occ h';
                    List.iter
                      (fun (j, w) -> send_counted (Fault.To_r j) w)
                      outs;
                    count l;
                    worked := true;
                    next := (i + 1) mod n
                  | None -> ())
            | None -> ()
        done;
        (* 2. otherwise take a local transition (C1/C2/tau) *)
        if not !worked then
          with_cell hcell (fun c ->
              match pick rng (Async.home_local prog cfg c.v) with
              | Some (l, h', outs) ->
                c.v <- h';
                record_occ h';
                List.iter (fun (j, w) -> send_counted (Fault.To_r j) w) outs;
                count l;
                worked := true
              | None -> ());
        with_cell hcell (fun c -> c.idle <- not !worked);
        if not !worked then Thread.yield ()
      done
    with Async.Protocol_error e -> record_error ("home: " ^ e)
  in
  (* ---- remote threads --------------------------------------------------- *)
  let rcells = Array.init n (fun _ -> cell (Async.initial_remote prog)) in
  let budgets = Array.make n budget in
  let remote_thread i () =
    let rng = Random.State.make [| seed; i |] in
    try
      while not (Atomic.get stop) do
        if paused_now i then begin
          (* injected fault: the node stops reacting for a while *)
          with_cell rcells.(i) (fun c -> c.idle <- true);
          Thread.delay 0.001
        end
        else begin
          Faultlink.tick link (Fault.To_h i);
          let worked = ref false in
          (* 1. consume a message from the home if possible *)
          (match Faultlink.peek link (Fault.To_r i) with
          | Some w ->
            with_cell rcells.(i) (fun c ->
                match pick rng (Async.remote_recv prog c.v i w) with
                | Some (l, r', outs) ->
                  ignore (Faultlink.pop link (Fault.To_r i));
                  c.v <- r';
                  List.iter (fun w -> send_counted (Fault.To_h i) w) outs;
                  count l;
                  worked := true
                | None -> () (* one-slot buffer full: leave it queued *))
          | None -> ());
          (* 2. otherwise act locally; a fresh protocol cycle consumes
             budget, and a spent remote stays quiet in its initial state *)
          if not !worked then
            with_cell rcells.(i) (fun c ->
                let at_start =
                  c.v.Async.r_ctl = prog.remote.p_init
                  && c.v.Async.r_mode = Async.Rcomm
                in
                if not (at_start && budgets.(i) <= 0) then
                  match pick rng (Async.remote_local prog c.v i) with
                  | Some (l, r', outs) ->
                    if at_start then budgets.(i) <- budgets.(i) - 1;
                    c.v <- r';
                    List.iter (fun w -> send_counted (Fault.To_h i) w) outs;
                    count l;
                    worked := true
                  | None -> ());
          with_cell rcells.(i) (fun c -> c.idle <- not !worked);
          if not !worked then Thread.yield ()
        end
      done
    with Async.Protocol_error e ->
      record_error (Fmt.str "remote %d: %s" i e)
  in
  let threads =
    Thread.create home_thread ()
    :: List.init n (fun i -> Thread.create (remote_thread i) ())
  in
  (* ---- monitor: detect quiescence or the deadline ----------------------- *)
  let quiescent = ref false in
  let step_capped () =
    match max_steps with None -> false | Some cap -> Atomic.get steps >= cap
  in
  let rec monitor () =
    if Atomic.get stop then ()
    else if Unix.gettimeofday () -. t0 > deadline_s then Atomic.set stop true
    else if step_capped () then begin
      stop_cause := "step-cap";
      Atomic.set stop true
    end
    else begin
      let channels_empty = Faultlink.quiet link in
      let spent = Array.for_all (fun b -> b <= 0) budgets in
      let all_idle =
        with_cell hcell (fun c -> c.idle && c.v.Async.h_mode = Async.Hcomm)
        && Array.for_all
             (fun rc ->
               with_cell rc (fun c ->
                   c.idle && c.v.Async.r_mode = Async.Rcomm))
             rcells
      in
      if channels_empty && spent && all_idle then begin
        (* double-check after a pause: idleness must be stable *)
        Thread.delay 0.005;
        let still =
          Faultlink.quiet link
          && with_cell hcell (fun c -> c.idle)
          && Array.for_all (fun rc -> with_cell rc (fun c -> c.idle)) rcells
        in
        if still then begin
          quiescent := true;
          stop_cause := "quiescent";
          Atomic.set stop true
        end
        else monitor ()
      end
      else begin
        Thread.delay 0.001;
        monitor ()
      end
    end
  in
  monitor ();
  List.iter Thread.join threads;
  (* pause windows the run lived through *)
  fcounts.pauses <-
    List.length
      (List.filter
         (fun (w : Plan.window) -> w.w_start < tick_now ())
         plan.Plan.windows);
  (* ---- watchdog: who is stuck where ------------------------------------- *)
  let hmode_desc = function
    | Async.Hcomm -> "comm"
    | Async.Htrans { peer; await; _ } ->
      Fmt.str "transient→r%d awaiting %s" peer
        (match await with `Ack -> "ack" | `Repl m -> "reply " ^ m)
  in
  let rmode_desc = function
    | Async.Rcomm -> "comm"
    | Async.Rtrans _ -> "transient awaiting ack/nack"
    | Async.Rwait { repl; _ } -> "awaiting reply " ^ repl
  in
  let watchdog =
    ( "home",
      with_cell hcell (fun c ->
          Fmt.str "ctl=%s, %s, %d buffered, inbox %d"
            prog.home.p_states.(c.v.Async.h_ctl).cs_name
            (hmode_desc c.v.Async.h_mode)
            (List.length c.v.Async.h_buf)
            (Array.fold_left ( + ) 0
               (Array.init n (fun i ->
                    Faultlink.inbox_length link (Fault.To_h i)))) ) )
    :: List.init n (fun i ->
           ( Fmt.str "remote %d" i,
             with_cell rcells.(i) (fun c ->
                 Fmt.str "ctl=%s, %s, budget left %d, inbox %d"
                   prog.remote.p_states.(c.v.Async.r_ctl).cs_name
                   (rmode_desc c.v.Async.r_mode)
                   budgets.(i)
                   (Faultlink.inbox_length link (Fault.To_r i))) ))
  in
  (* ---- reassemble the final global state and check it ------------------- *)
  let final =
    {
      Async.h = with_cell hcell (fun c -> c.v);
      r = Array.map (fun rc -> with_cell rc (fun c -> c.v)) rcells;
      to_h = Array.init n (fun i -> Faultlink.drain link (Fault.To_h i));
      to_r = Array.init n (fun i -> Faultlink.drain link (Fault.To_r i));
    }
  in
  let invariant_failures =
    List.filter_map
      (fun (name, check) -> if check final then None else Some name)
      invariants
  in
  (match metrics with
  | Some reg ->
    let open Ccr_obs.Metrics in
    add (counter reg "msg.req") (Atomic.get reqs_a);
    add (counter reg "msg.ack") (Atomic.get acks_a);
    add (counter reg "msg.nack") (Atomic.get nacks_a);
    add (counter reg "msg.data") (Atomic.get datas_a);
    add
      (counter reg "rendezvous")
      (Array.fold_left (fun a c -> a + Atomic.get c) 0 rendezvous_by);
    let h = histogram reg "home_buffer_occupancy" in
    Array.iteri (fun occ cnt -> observe_n h occ cnt) occ_hist;
    if faults <> None then begin
      add (counter reg "fault.drop") fcounts.drops;
      add (counter reg "fault.dup") fcounts.dups;
      add (counter reg "fault.delay") fcounts.delays;
      add (counter reg "fault.pause") fcounts.pauses;
      add (counter reg "fault.retransmit") fcounts.retransmits;
      add (counter reg "fault.absorbed") fcounts.absorbed;
      add (counter reg "fault.delivered") fcounts.delivered
    end
  | None -> ());
  {
    completions = Array.map Atomic.get rendezvous_by;
    rendezvous = Array.fold_left (fun a c -> a + Atomic.get c) 0 rendezvous_by;
    messages = Atomic.get messages;
    reqs = Atomic.get reqs_a;
    acks = Atomic.get acks_a;
    nacks = Atomic.get nacks_a;
    data_msgs = Atomic.get datas_a;
    buf_occupancy = occ_hist;
    steps = Atomic.get steps;
    quiescent = !quiescent;
    invariant_failures;
    protocol_errors = List.rev !errors;
    faults = Fault.freeze fcounts;
    watchdog;
    wall_s = Unix.gettimeofday () -. t0;
    engine = "threads";
    stop_cause = !stop_cause;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>%d rendezvous over %d messages in %.2fs (%d node transitions)@,\
     per-remote: %s@,\
     %s%s%s%a%a@]"
    s.rendezvous s.messages s.wall_s s.steps
    (String.concat " "
       (Array.to_list (Array.map string_of_int s.completions)))
    (if s.quiescent then "terminated quiescent"
     else
       match s.stop_cause with
       | "deadline" -> "DEADLINE HIT"
       | "step-cap" -> "STEP CAP HIT"
       | "stall" -> "STALLED"
       | _ -> "STOPPED")
    (match s.invariant_failures with
    | [] -> "; final state coherent"
    | l -> "; INVARIANTS FAILED: " ^ String.concat ", " l)
    (match s.protocol_errors with
    | [] -> ""
    | l -> "; PROTOCOL ERRORS: " ^ String.concat "; " l)
    (fun ppf f ->
      if Fault.injected f > 0 || f.Fault.f_retransmits > 0 then
        Fmt.pf ppf "@,faults: %a" Fault.pp_fcounts f)
    s.faults
    (fun ppf wd ->
      if not s.quiescent then begin
        Fmt.pf ppf "@,stopped: %s [%s engine]" s.stop_cause s.engine;
        List.iter (fun (who, what) -> Fmt.pf ppf "@,stuck? %s: %s" who what) wd
      end)
    s.watchdog
