open Ccr_core
open Ccr_refine

type stats = {
  completions : int array;
  rendezvous : int;
  messages : int;
  reqs : int;
  acks : int;
  nacks : int;
  data_msgs : int;
  buf_occupancy : int array;
  steps : int;
  quiescent : bool;
  invariant_failures : string list;
  protocol_errors : string list;
  wall_s : float;
}

(* Per-node shared cell: the node's state, guarded by a mutex so the
   monitor (and the final assembly) can read it consistently. *)
type 'a cell = { mutex : Mutex.t; mutable v : 'a; mutable idle : bool }

let cell v = { mutex = Mutex.create (); v; idle = false }

let with_cell c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) (fun () -> f c)

(* Completion counting mirrors {!Sim}: each rendezvous is counted exactly
   once, at the transition that commits it on the passive side (or at the
   reply completion). *)
let completes (l : Async.label) =
  match l.rule with
  | Async.H_C1 | Async.H_C1_silent | Async.H_T1_repl | Async.R_C3_ack
  | Async.R_C3_silent | Async.R_repl_recv ->
    true
  | _ -> false

let run ?(seed = 42) ?(deadline_s = 30.0) ?metrics ~budget ~invariants
    (prog : Prog.t) (cfg : Async.config) =
  let t0 = Unix.gettimeofday () in
  let n = prog.n in
  let to_h = Array.init n (fun _ -> Channel.create ()) in
  let to_r = Array.init n (fun _ -> Channel.create ()) in
  let stop = Atomic.make false in
  let messages = Atomic.make 0 in
  (* Per-kind message counters.  The node loops are systhreads, not
     domains, so they must not write DLS metric shards directly; they
     bump atomics and the registry is filled once at the end. *)
  let reqs_a = Atomic.make 0
  and acks_a = Atomic.make 0
  and nacks_a = Atomic.make 0
  and datas_a = Atomic.make 0 in
  let send_counted ch (w : Wire.t) =
    Atomic.incr messages;
    (match w with
    | Wire.Req m ->
      Atomic.incr reqs_a;
      if m.Wire.m_payload <> [] then Atomic.incr datas_a
    | Wire.Ack -> Atomic.incr acks_a
    | Wire.Nack -> Atomic.incr nacks_a);
    Channel.send ch w
  in
  (* Written by the home thread only; read after the joins. *)
  let occ_hist = Array.make (cfg.k + 1) 0 in
  let record_occ (h : Async.home) =
    let occ = min (List.length h.Async.h_buf) cfg.k in
    occ_hist.(occ) <- occ_hist.(occ) + 1
  in
  let steps = Atomic.make 0 in
  let rendezvous_by = Array.init n (fun _ -> Atomic.make 0) in
  let errors_mutex = Mutex.create () in
  let errors = ref [] in
  let record_error e =
    Mutex.lock errors_mutex;
    errors := e :: !errors;
    Mutex.unlock errors_mutex;
    Atomic.set stop true
  in
  let count l =
    Atomic.incr steps;
    if completes l then Atomic.incr rendezvous_by.(l.Async.actor)
  in
  let pick rng = function
    | [] -> None
    | l -> Some (List.nth l (Random.State.int rng (List.length l)))
  in
  (* ---- home thread ----------------------------------------------------- *)
  let hcell = cell (Async.initial_home prog) in
  let home_thread () =
    let rng = Random.State.make [| seed; 7919 |] in
    let next = ref 0 in
    try
      while not (Atomic.get stop) do
        let worked = ref false in
        (* 1. serve incoming messages, round-robin over the remotes *)
        for off = 0 to n - 1 do
          let i = (!next + off) mod n in
          if not !worked then
            match Channel.peek to_h.(i) with
            | Some w ->
              with_cell hcell (fun c ->
                  match pick rng (Async.home_recv prog cfg c.v i w) with
                  | Some (l, h', outs) ->
                    ignore (Channel.pop to_h.(i));
                    c.v <- h';
                    record_occ h';
                    List.iter (fun (j, w) -> send_counted to_r.(j) w) outs;
                    count l;
                    worked := true;
                    next := (i + 1) mod n
                  | None -> ())
            | None -> ()
        done;
        (* 2. otherwise take a local transition (C1/C2/tau) *)
        if not !worked then
          with_cell hcell (fun c ->
              match pick rng (Async.home_local prog cfg c.v) with
              | Some (l, h', outs) ->
                c.v <- h';
                record_occ h';
                List.iter (fun (j, w) -> send_counted to_r.(j) w) outs;
                count l;
                worked := true
              | None -> ());
        with_cell hcell (fun c -> c.idle <- not !worked);
        if not !worked then Thread.yield ()
      done
    with Async.Protocol_error e -> record_error ("home: " ^ e)
  in
  (* ---- remote threads --------------------------------------------------- *)
  let rcells = Array.init n (fun _ -> cell (Async.initial_remote prog)) in
  let budgets = Array.make n budget in
  let remote_thread i () =
    let rng = Random.State.make [| seed; i |] in
    try
      while not (Atomic.get stop) do
        let worked = ref false in
        (* 1. consume a message from the home if possible *)
        (match Channel.peek to_r.(i) with
        | Some w ->
          with_cell rcells.(i) (fun c ->
              match pick rng (Async.remote_recv prog c.v i w) with
              | Some (l, r', outs) ->
                ignore (Channel.pop to_r.(i));
                c.v <- r';
                List.iter (fun w -> send_counted to_h.(i) w) outs;
                count l;
                worked := true
              | None -> () (* one-slot buffer full: leave it queued *))
        | None -> ());
        (* 2. otherwise act locally; a fresh protocol cycle consumes
           budget, and a spent remote stays quiet in its initial state *)
        if not !worked then
          with_cell rcells.(i) (fun c ->
              let at_start =
                c.v.Async.r_ctl = prog.remote.p_init
                && c.v.Async.r_mode = Async.Rcomm
              in
              if not (at_start && budgets.(i) <= 0) then
                match pick rng (Async.remote_local prog c.v i) with
                | Some (l, r', outs) ->
                  if at_start then budgets.(i) <- budgets.(i) - 1;
                  c.v <- r';
                  List.iter (fun w -> send_counted to_h.(i) w) outs;
                  count l;
                  worked := true
                | None -> ());
        with_cell rcells.(i) (fun c -> c.idle <- not !worked);
        if not !worked then Thread.yield ()
      done
    with Async.Protocol_error e ->
      record_error (Fmt.str "remote %d: %s" i e)
  in
  let threads =
    Thread.create home_thread ()
    :: List.init n (fun i -> Thread.create (remote_thread i) ())
  in
  (* ---- monitor: detect quiescence or the deadline ----------------------- *)
  let quiescent = ref false in
  let rec monitor () =
    if Atomic.get stop then ()
    else if Unix.gettimeofday () -. t0 > deadline_s then Atomic.set stop true
    else begin
      let channels_empty =
        Array.for_all Channel.is_empty to_h
        && Array.for_all Channel.is_empty to_r
      in
      let spent = Array.for_all (fun b -> b <= 0) budgets in
      let all_idle =
        with_cell hcell (fun c -> c.idle && c.v.Async.h_mode = Async.Hcomm)
        && Array.for_all
             (fun rc ->
               with_cell rc (fun c ->
                   c.idle && c.v.Async.r_mode = Async.Rcomm))
             rcells
      in
      if channels_empty && spent && all_idle then begin
        (* double-check after a pause: idleness must be stable *)
        Thread.delay 0.005;
        let still =
          Array.for_all Channel.is_empty to_h
          && Array.for_all Channel.is_empty to_r
          && with_cell hcell (fun c -> c.idle)
          && Array.for_all (fun rc -> with_cell rc (fun c -> c.idle)) rcells
        in
        if still then begin
          quiescent := true;
          Atomic.set stop true
        end
        else monitor ()
      end
      else begin
        Thread.delay 0.001;
        monitor ()
      end
    end
  in
  monitor ();
  List.iter Thread.join threads;
  (* ---- reassemble the final global state and check it ------------------- *)
  let final =
    {
      Async.h = with_cell hcell (fun c -> c.v);
      r = Array.map (fun rc -> with_cell rc (fun c -> c.v)) rcells;
      to_h =
        Array.map
          (fun ch ->
            let rec drain acc =
              match Channel.pop ch with
              | Some w -> drain (w :: acc)
              | None -> List.rev acc
            in
            drain [])
          to_h;
      to_r =
        Array.map
          (fun ch ->
            let rec drain acc =
              match Channel.pop ch with
              | Some w -> drain (w :: acc)
              | None -> List.rev acc
            in
            drain [])
          to_r;
    }
  in
  let invariant_failures =
    List.filter_map
      (fun (name, check) -> if check final then None else Some name)
      invariants
  in
  (match metrics with
  | Some reg ->
    let open Ccr_obs.Metrics in
    add (counter reg "msg.req") (Atomic.get reqs_a);
    add (counter reg "msg.ack") (Atomic.get acks_a);
    add (counter reg "msg.nack") (Atomic.get nacks_a);
    add (counter reg "msg.data") (Atomic.get datas_a);
    add
      (counter reg "rendezvous")
      (Array.fold_left (fun a c -> a + Atomic.get c) 0 rendezvous_by);
    let h = histogram reg "home_buffer_occupancy" in
    Array.iteri (fun occ cnt -> observe_n h occ cnt) occ_hist
  | None -> ());
  {
    completions = Array.map Atomic.get rendezvous_by;
    rendezvous = Array.fold_left (fun a c -> a + Atomic.get c) 0 rendezvous_by;
    messages = Atomic.get messages;
    reqs = Atomic.get reqs_a;
    acks = Atomic.get acks_a;
    nacks = Atomic.get nacks_a;
    data_msgs = Atomic.get datas_a;
    buf_occupancy = occ_hist;
    steps = Atomic.get steps;
    quiescent = !quiescent;
    invariant_failures;
    protocol_errors = List.rev !errors;
    wall_s = Unix.gettimeofday () -. t0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>%d rendezvous over %d messages in %.2fs (%d node transitions)@,\
     per-remote: %s@,\
     %s%s%s@]"
    s.rendezvous s.messages s.wall_s s.steps
    (String.concat " "
       (Array.to_list (Array.map string_of_int s.completions)))
    (if s.quiescent then "terminated quiescent" else "DEADLINE HIT")
    (match s.invariant_failures with
    | [] -> "; final state coherent"
    | l -> "; INVARIANTS FAILED: " ^ String.concat ", " l)
    (match s.protocol_errors with
    | [] -> ""
    | l -> "; PROTOCOL ERRORS: " ^ String.concat "; " l)
