(* [ccr report]: one markdown/HTML report over a directory of artifacts.

   Inputs are the run journals ([*.jsonl], written by [--journal]) and
   the benchmark dumps ([BENCH_*.json], written by [make bench-json]);
   both parse with the in-tree JSON codec in [Journal], so the report
   layer needs no model-checker types — rule names, outcomes and counts
   all travel as strings and numbers inside the events.  That keeps the
   coverage matrix renderable from journals alone, which is the property
   the acceptance cram test checks.

   Determinism: directory entries are visited in sorted order and
   nothing derived from the clock is emitted, so the same artifact
   directory always renders byte-identical. *)

module J = Journal

type run = { r_file : string; r_events : J.value list }

(* ---- scanning ------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let files_in dir ~keep =
  match Sys.readdir dir with
  | entries ->
    Array.sort compare entries;
    Array.to_list entries
    |> List.filter (fun f -> keep f && not (Sys.is_directory (Filename.concat dir f)))
  | exception Sys_error _ -> []

let split_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

(* One journal line is admissible when it parses, is an object, and its
   schema version is one we know; anything else is skipped silently —
   forward compatibility is part of the schema contract. *)
let event_of_line line =
  match J.parse line with
  | Some (J.Obj _ as v)
    when (match J.get_int (J.find v "v") with
         | Some ver -> ver <= J.schema_version
         | None -> false)
         && J.get_str (J.find v "ev") <> None ->
    Some v
  | _ -> None

(* A checkpointed run carries a [run_id] in its config event; a resumed
   session repeats that id with [resumed: true].  Concatenating such
   segments (in scan order) rebuilds the one logical run: counts are
   cumulative across segments, so levels and the final [end] read as if
   the run had never been interrupted. *)
let config_of run = match run.r_events with c :: _ -> Some c | [] -> None

let run_id_of run =
  Option.bind (config_of run) (fun c -> J.get_str (J.find c "run_id"))

let is_resumed run =
  match Option.map (fun c -> J.find c "resumed") (config_of run) with
  | Some (Some (J.Bool true)) -> true
  | _ -> false

let merge_resumed runs =
  let out = ref [] in
  (* run_id -> the merged run accumulated so far, newest segment last *)
  let by_id = Hashtbl.create 8 in
  List.iter
    (fun run ->
      match run_id_of run with
      | Some id when is_resumed run && Hashtbl.mem by_id id ->
        let prior = Hashtbl.find by_id id in
        let merged =
          { prior with r_events = prior.r_events @ run.r_events }
        in
        Hashtbl.replace by_id id merged;
        out :=
          List.map (fun r -> if r == prior then merged else r) !out
      | id ->
        Option.iter (fun id -> Hashtbl.replace by_id id run) id;
        out := run :: !out)
    runs;
  List.rev !out

let scan_journals dir =
  files_in dir ~keep:(fun f -> Filename.check_suffix f ".jsonl")
  |> List.concat_map (fun f ->
         let events =
           read_file (Filename.concat dir f)
           |> split_lines
           |> List.filter_map event_of_line
         in
         (* A run is a [config] event plus everything up to the next
            [config]: trailing events (e.g. a starvation witness found by
            the post-exploration liveness pass) stay attached to their
            run even when they land after [end]. *)
         let runs = ref [] and cur = ref [] in
         let flush () =
           if !cur <> [] then runs := List.rev !cur :: !runs;
           cur := []
         in
         List.iter
           (fun ev ->
             if J.get_str (J.find ev "ev") = Some "config" then flush ();
             if !cur <> [] || J.get_str (J.find ev "ev") = Some "config" then
               cur := ev :: !cur)
           events;
         flush ();
         (* !runs is newest-first; rev_map restores journal order *)
         List.rev_map (fun evs -> { r_file = f; r_events = evs }) !runs)
  |> merge_resumed

let scan_bench dir =
  files_in dir ~keep:(fun f ->
      String.length f >= 6
      && String.sub f 0 6 = "BENCH_"
      && Filename.check_suffix f ".json")
  |> List.filter_map (fun f ->
         match J.parse (read_file (Filename.concat dir f)) with
         | Some (J.List rows) -> Some (f, rows)
         | _ -> None)

(* ---- field accessors ------------------------------------------------------- *)

let ev_kind v = Option.value ~default:"" (J.get_str (J.find v "ev"))
let all_ev run kind = List.filter (fun v -> ev_kind v = kind) run.r_events

(* A merged resumed run holds one [end] per segment; the last one is the
   run's true outcome (earlier ones all say "interrupted"). *)
let last_ev run kind =
  List.fold_left
    (fun acc v -> if ev_kind v = kind then Some v else acc)
    None run.r_events

let str_field v k = J.get_str (J.find v k)
let int_field v k = J.get_int (J.find v k)

let cell_str = function Some s -> s | None -> "-"
let cell_int = function Some i -> string_of_int i | None -> "-"

(* ---- markdown helpers ------------------------------------------------------ *)

let md_table b header rows =
  let line cells =
    Buffer.add_string b "| ";
    Buffer.add_string b (String.concat " | " cells);
    Buffer.add_string b " |\n"
  in
  line header;
  line (List.map (fun _ -> "---") header);
  List.iter line rows;
  Buffer.add_char b '\n'

let section b title = Buffer.add_string b (Printf.sprintf "## %s\n\n" title)

(* ---- runs table ------------------------------------------------------------ *)

let render_runs b runs =
  section b "Runs";
  if runs = [] then Buffer.add_string b "no journals found\n\n"
  else begin
    let row run =
      let config = List.hd run.r_events in
      let end_ev = last_ev run "end" in
      [
        run.r_file;
        cell_str (str_field config "cmd");
        cell_str (str_field config "protocol");
        cell_str (str_field config "level");
        cell_int (int_field config "n");
        cell_str (Option.bind end_ev (fun e -> str_field e "outcome"));
        cell_int (Option.bind end_ev (fun e -> int_field e "states"));
        cell_int (Option.bind end_ev (fun e -> int_field e "max_depth"));
      ]
    in
    md_table b
      [ "journal"; "cmd"; "protocol"; "level"; "n"; "outcome"; "states";
        "depth" ]
      (List.map row runs);
    let resumed =
      List.filter_map
        (fun run ->
          match all_ev run "config" with
          | _ :: _ :: _ as configs ->
            Some
              (Printf.sprintf "`%s` run `%s`: %d segments (interrupted %d×, then %s)"
                 run.r_file
                 (Option.value ~default:"?" (run_id_of run))
                 (List.length configs)
                 (List.length configs - 1)
                 (cell_str
                    (Option.bind (last_ev run "end") (fun e ->
                         str_field e "outcome"))))
          | _ -> None)
        runs
    in
    if resumed <> [] then begin
      Buffer.add_string b "resumed runs, segments concatenated by run id:\n\n";
      List.iter
        (fun l -> Buffer.add_string b (Printf.sprintf "- %s\n" l))
        resumed;
      Buffer.add_char b '\n'
    end
  end

(* ---- violation paths ------------------------------------------------------- *)

let render_violations b runs =
  let with_viol =
    List.filter_map
      (fun run ->
        match all_ev run "violation" with [] -> None | vs -> Some (run, vs))
      runs
  in
  if with_viol <> [] then begin
    section b "Violations";
    List.iter
      (fun (run, vs) ->
        let config = List.hd run.r_events in
        List.iter
          (fun v ->
            Buffer.add_string b
              (Printf.sprintf "### %s — %s (%s)\n\n" run.r_file
                 (cell_str (str_field config "protocol"))
                 (cell_str (str_field v "kind")));
            (match str_field v "invariant" with
            | Some inv ->
              Buffer.add_string b (Printf.sprintf "invariant: `%s`\n\n" inv)
            | None -> ());
            (match int_field v "remote" with
            | Some r ->
              Buffer.add_string b (Printf.sprintf "starved remote: %d\n\n" r)
            | None -> ());
            match J.get_list (J.find v "rules") with
            | Some rules ->
              Buffer.add_string b "```\n";
              List.iteri
                (fun i r ->
                  Buffer.add_string b
                    (Printf.sprintf "%3d. %s\n" (i + 1)
                       (match r with J.Str s -> s | _ -> "?")))
                rules;
              Buffer.add_string b "```\n\n"
            | None -> ())
          vs)
      with_viol
  end

(* ---- fuzz rule-coverage matrix --------------------------------------------- *)

(* [coverage] events carry ordered [["rule", count], ...] pairs so the
   matrix renders in Tables 1-2 row order without this module knowing
   the rule enumeration. *)
let rules_of_coverage v =
  match J.get_list (J.find v "rules") with
  | None -> []
  | Some l ->
    List.filter_map
      (function
        | J.List [ J.Str name; n ] ->
          Option.map (fun c -> (name, c)) (J.get_int (Some n))
        | _ -> None)
      l

let render_coverage b runs =
  let fuzz_runs =
    List.filter
      (fun run ->
        str_field (List.hd run.r_events) "cmd" = Some "fuzz"
        && all_ev run "coverage" <> [])
      runs
  in
  match List.rev fuzz_runs with
  | [] -> ()
  | run :: _ ->
    section b "Rule coverage (fuzz, Tables 1-2)";
    let family f =
      List.find_opt (fun v -> str_field v "family" = Some f)
        (all_ev run "coverage")
    in
    let general =
      Option.value ~default:[] (Option.map rules_of_coverage (family "general"))
    in
    let legacy = Option.map rules_of_coverage (family "legacy") in
    Buffer.add_string b
      (Printf.sprintf "source: `%s` (transitions enumerated per rule)\n\n"
         run.r_file);
    (match legacy with
    | None ->
      md_table b [ "rule"; "transitions" ]
        (List.map (fun (r, c) -> [ r; string_of_int c ]) general)
    | Some legacy ->
      md_table b
        [ "rule"; "legacy"; "generalized"; "" ]
        (List.map
           (fun (r, c) ->
             let lc =
               Option.value ~default:0 (List.assoc_opt r legacy)
             in
             [
               r; string_of_int lc; string_of_int c;
               (if c > 0 && lc = 0 then "new" else "");
             ])
           general))

(* ---- bench tables ---------------------------------------------------------- *)

let render_bench b bench =
  List.iter
    (fun (file, rows) ->
      section b (Printf.sprintf "Benchmarks — %s" file);
      let explore_rows =
        List.filter (fun r -> J.find r "states" <> None) rows
      in
      let sim_rows =
        List.filter (fun r -> str_field r "level" = Some "sim") rows
      in
      if explore_rows <> [] then
        md_table b
          [ "protocol"; "n"; "level"; "states"; "transitions"; "time_s";
            "outcome" ]
          (List.map
             (fun r ->
               [
                 cell_str (str_field r "protocol");
                 cell_int (int_field r "n");
                 cell_str (str_field r "level");
                 cell_int (int_field r "states");
                 cell_int (int_field r "transitions");
                 (match J.get_float (J.find r "time_s") with
                 | Some t -> Printf.sprintf "%.3f" t
                 | None -> "-");
                 cell_str (str_field r "outcome");
               ])
             explore_rows);
      if sim_rows <> [] then
        md_table b
          [ "protocol"; "variant"; "n"; "steps"; "rendezvous"; "msgs/rdv" ]
          (List.map
             (fun r ->
               [
                 cell_str (str_field r "protocol");
                 cell_str (str_field r "variant");
                 cell_int (int_field r "n");
                 cell_int (int_field r "steps");
                 cell_int (int_field r "rendezvous");
                 (match J.get_float (J.find r "msgs_per_rdv") with
                 | Some t -> Printf.sprintf "%.2f" t
                 | None -> "-");
               ])
             sim_rows))
    bench

(* ---- histogram renders ----------------------------------------------------- *)

(* A metric value shaped {"count": _, "sum": _, "buckets": [...]} is a
   histogram (Metrics.to_json's encoding); render each as an ASCII bar
   chart.  Scanned from the bench rows' "metrics" objects. *)
let histograms_of_row r =
  match J.find r "metrics" with
  | Some (J.Obj fields) ->
    List.filter_map
      (fun (name, v) ->
        match J.get_list (J.find v "buckets") with
        | Some buckets -> Some (name, buckets)
        | None -> None)
      fields
  | _ -> []

let render_histograms b bench =
  let items =
    List.concat_map
      (fun (_, rows) ->
        List.concat_map
          (fun r ->
            List.map
              (fun (name, buckets) ->
                let tag =
                  Printf.sprintf "%s n=%s %s"
                    (cell_str (str_field r "protocol"))
                    (cell_int (int_field r "n"))
                    name
                in
                (tag, buckets))
              (histograms_of_row r))
          rows)
      bench
  in
  if items <> [] then begin
    section b "Histograms";
    List.iter
      (fun (tag, buckets) ->
        let rows =
          List.filter_map
            (fun bkt ->
              match
                (int_field bkt "lo", int_field bkt "hi", int_field bkt "n")
              with
              | Some lo, Some hi, Some n -> Some (lo, hi, n)
              | _ -> None)
            buckets
        in
        let peak = List.fold_left (fun a (_, _, n) -> max a n) 1 rows in
        Buffer.add_string b (Printf.sprintf "`%s`\n\n```\n" tag);
        List.iter
          (fun (lo, hi, n) ->
            let bar = String.make (max 1 (n * 40 / peak)) '#' in
            let range =
              if lo = hi then string_of_int lo
              else Printf.sprintf "%d..%d" lo hi
            in
            Buffer.add_string b
              (Printf.sprintf "%8s | %-40s %d\n" range bar n))
          rows;
        Buffer.add_string b "```\n\n")
      items
  end

(* ---- top level ------------------------------------------------------------- *)

let to_markdown ~dir =
  let runs = scan_journals dir in
  let bench = scan_bench dir in
  let b = Buffer.create 4096 in
  Buffer.add_string b "# ccr run report\n\n";
  Buffer.add_string b
    (Printf.sprintf "artifacts: %d journal run%s, %d bench file%s\n\n"
       (List.length runs)
       (if List.length runs = 1 then "" else "s")
       (List.length bench)
       (if List.length bench = 1 then "" else "s"));
  render_runs b runs;
  render_violations b runs;
  render_coverage b runs;
  render_bench b bench;
  render_histograms b bench;
  Buffer.contents b

(* ---- minimal markdown -> HTML ---------------------------------------------- *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Inline pass: `code` spans only — that is all [to_markdown] emits. *)
let inline s =
  let b = Buffer.create (String.length s) in
  let in_code = ref false in
  String.iter
    (fun c ->
      if c = '`' then begin
        Buffer.add_string b (if !in_code then "</code>" else "<code>");
        in_code := not !in_code
      end
      else Buffer.add_string b (html_escape (String.make 1 c)))
    s;
  if !in_code then Buffer.add_string b "</code>";
  Buffer.contents b

let html_of_markdown md =
  let lines = String.split_on_char '\n' md in
  let b = Buffer.create (String.length md * 2) in
  Buffer.add_string b
    "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>ccr run report</title>\n\
     <style>body{font-family:sans-serif;max-width:60em;margin:2em auto}\n\
     table{border-collapse:collapse}td,th{border:1px solid #999;\n\
     padding:2px 8px;text-align:left}pre{background:#f4f4f4;padding:8px}\n\
     </style></head><body>\n";
  let rec go2 = function
    | [] -> ()
    | l :: _ as lines when String.length l >= 1 && l.[0] = '|' ->
      let rec split_rows acc = function
        | l :: rest when String.length l >= 1 && l.[0] = '|' ->
          split_rows (l :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let rows, rest = split_rows [] lines in
      let cells l =
        String.split_on_char '|' l
        |> List.map String.trim
        |> List.filter (fun c -> c <> "")
      in
      (match rows with
      | header :: _sep :: body ->
        Buffer.add_string b "<table>\n<tr>";
        List.iter
          (fun c -> Buffer.add_string b ("<th>" ^ inline c ^ "</th>"))
          (cells header);
        Buffer.add_string b "</tr>\n";
        List.iter
          (fun row ->
            Buffer.add_string b "<tr>";
            List.iter
              (fun c -> Buffer.add_string b ("<td>" ^ inline c ^ "</td>"))
              (cells row);
            Buffer.add_string b "</tr>\n")
          body;
        Buffer.add_string b "</table>\n"
      | _ -> ());
      go2 rest
    | l :: rest when String.length l >= 2 && String.sub l 0 2 = "# " ->
      Buffer.add_string b
        ("<h1>" ^ inline (String.sub l 2 (String.length l - 2)) ^ "</h1>\n");
      go2 rest
    | l :: rest when String.length l >= 3 && String.sub l 0 3 = "## " ->
      Buffer.add_string b
        ("<h2>" ^ inline (String.sub l 3 (String.length l - 3)) ^ "</h2>\n");
      go2 rest
    | l :: rest when String.length l >= 4 && String.sub l 0 4 = "### " ->
      Buffer.add_string b
        ("<h3>" ^ inline (String.sub l 4 (String.length l - 4)) ^ "</h3>\n");
      go2 rest
    | l :: rest when String.length l >= 3 && String.sub l 0 3 = "```" ->
      let rec code acc = function
        | [] -> (List.rev acc, [])
        | l :: rest when String.length l >= 3 && String.sub l 0 3 = "```" ->
          (List.rev acc, rest)
        | l :: rest -> code (l :: acc) rest
      in
      let body, rest = code [] rest in
      Buffer.add_string b
        ("<pre>" ^ html_escape (String.concat "\n" body) ^ "</pre>\n");
      go2 rest
    | "" :: rest -> go2 rest
    | l :: rest ->
      Buffer.add_string b ("<p>" ^ inline l ^ "</p>\n");
      go2 rest
  in
  go2 lines;
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b
