(** Structured event tracer in Chrome [trace_event] JSON format.

    One process-wide collector: {!start} installs it, instrumentation
    points emit spans and instants, {!stop} returns the JSON document
    (loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}).  When no collector is installed every emitter is a single
    mutable-bool check — the hot paths stay allocation-free.

    The collector caps itself at 200k events by default ([?cap] on
    {!start} overrides); further events are counted in the document's
    ["dropped"] field — and readable live via {!dropped} — rather than
    stored. *)

type arg = Int of int | Str of string | Float of float

val enabled : unit -> bool
(** True between {!start} and {!stop}.  Instrumentation that must build
    arguments eagerly should gate on this. *)

val start : ?cap:int -> unit -> unit
(** Install a fresh collector; timestamps are relative to this call.
    [cap] (default 200_000) bounds the stored events. *)

val dropped : unit -> int
(** Events dropped by the cap so far (0 when no collector is
    installed) — surfaced so callers can flag truncation in metrics
    instead of letting it pass silently. *)

val instant : ?args:(string * arg) list -> string -> unit
(** An instant event (phase ["i"]) — invariant violations, cap hits,
    nacks.  No-op when disabled. *)

val with_span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a complete event (phase ["X"]) spanning its
    duration.  When disabled, just runs the thunk. *)

val to_json : unit -> string
(** Render the current collector's events without uninstalling it. *)

val stop : unit -> string
(** Uninstall the collector and return the final JSON document. *)
