(** Live progress reporting for long explorations.

    The explorer invokes an [on_progress] callback with a {!sample} every
    few thousand discoveries (sequential) or at every BFS level boundary
    (parallel); {!reporter} renders the samples as a single rewriting
    status line on stderr. *)

type sample = {
  states : int;  (** states discovered so far *)
  transitions : int;  (** transitions traversed so far *)
  depth : int;  (** current BFS depth (DFS: deepest discovery) *)
  frontier : int;  (** states awaiting expansion *)
  rate : float;  (** states/second over the whole run *)
  mem_bytes : int;  (** visited-set memory watermark *)
  shard_balance : float;
      (** parallel engine: fullest shard / ideal even share (1.0 =
          perfectly balanced); 1.0 in the sequential engine *)
  elapsed_s : float;
}

val render : sample -> string
(** One-line human rendering (no newline). *)

val reporter :
  ?every_s:float -> ?out:out_channel -> unit -> (sample -> unit) * (unit -> unit)
(** [reporter ()] is [(on_progress, finish)]: [on_progress] rewrites a
    single status line (throttled to one redraw per [every_s], default
    0.1 s), [finish] clears it. *)
