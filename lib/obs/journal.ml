(* Schema-versioned JSONL run journal.

   Every checker invocation can append a stream of events — config, level
   boundaries, cap hits, canon fallbacks, fault budgets, violations with
   their provenance-derived trace, final stats, rule-coverage — to a
   journal file: one JSON object per line, every line carrying
   {"v": <schema_version>, "ev": <kind>, ...}.  Consumers ([ccr report],
   external tooling) parse line by line and skip kinds or versions they
   do not know, so the schema can grow without breaking readers; breaking
   changes bump [schema_version].

   Determinism is the load-bearing property: events are buffered in
   memory in emission order and rendered with a fixed field order and
   float format, and the engines only feed the journal
   parallelism-independent facts (level boundaries as (depth, cumulative
   states), never timings or interleavings) — so journals are
   byte-identical across [-j]/[--workers] counts.  The file write happens
   once, at the end of the run (before any failure exit), in append mode:
   a journal file accumulates one line-block per invocation.

   The [value] type and [parse] double as the repository's minimal JSON
   codec (no external JSON dependency): [ccr report] reads journals and
   BENCH_*.json rows back through it. *)

let schema_version = 1

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

(* ---- rendering ----------------------------------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec render b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    Buffer.add_string b
      (if Float.is_finite f then Printf.sprintf "%.6g" f else "null")
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        render b v)
      l;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\":";
        render b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  render b v;
  Buffer.contents b

(* ---- the journal --------------------------------------------------------- *)

type t = { mutable rev_lines : string list; mutable n : int; mutable len : int }

let create () = { rev_lines = []; n = 0; len = 0 }

let event t ev fields =
  let line = to_string (Obj (("v", Int schema_version) :: ("ev", Str ev) :: fields)) in
  t.rev_lines <- line :: t.rev_lines;
  t.n <- t.n + 1;
  t.len <- t.len + String.length line + 1

let count t = t.n
let bytes t = t.len

let contents t =
  let b = Buffer.create (t.len + 1) in
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    (List.rev t.rev_lines);
  Buffer.contents b

let append_to_file t path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  output_string oc (contents t);
  flush oc;
  (* the journal is the record of what a crashed run achieved — make the
     append durable before reporting it written *)
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc

(* ---- parsing (minimal recursive-descent JSON) ----------------------------- *)

exception Bad of int

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = c then incr pos else raise (Bad !pos)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else raise (Bad !pos)
  in
  let utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let string_body () =
    let b = Buffer.create 16 in
    let fin = ref false in
    while not !fin do
      if !pos >= n then raise (Bad !pos);
      let c = s.[!pos] in
      incr pos;
      if c = '"' then fin := true
      else if c = '\\' then begin
        if !pos >= n then raise (Bad !pos);
        let e = s.[!pos] in
        incr pos;
        match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if !pos + 4 > n then raise (Bad !pos);
          let cp =
            try int_of_string ("0x" ^ String.sub s !pos 4)
            with _ -> raise (Bad !pos)
          in
          pos := !pos + 4;
          utf8 b cp
        | _ -> raise (Bad !pos)
      end
      else Buffer.add_char b c
    done;
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    if peek () = '-' then incr pos;
    let is_float = ref false in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> raise (Bad start)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> raise (Bad start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' ->
      incr pos;
      Str (string_body ())
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        List []
      end
      else begin
        let acc = ref [ value () ] in
        skip_ws ();
        while peek () = ',' do
          incr pos;
          acc := value () :: !acc;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !acc)
      end
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          (k, v)
        in
        let acc = ref [ field () ] in
        skip_ws ();
        while peek () = ',' do
          incr pos;
          acc := field () :: !acc;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !acc)
      end
    | '-' | '0' .. '9' -> number ()
    | _ -> raise (Bad !pos)
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad !pos);
  v

let parse s = try Some (parse_exn s) with Bad _ -> None

(* ---- accessors ------------------------------------------------------------ *)

let find v key =
  match v with Obj kvs -> List.assoc_opt key kvs | _ -> None

let get_int = function
  | Some (Int i) -> Some i
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_float = function
  | Some (Int i) -> Some (float_of_int i)
  | Some (Float f) -> Some f
  | _ -> None

let get_str = function Some (Str s) -> Some s | _ -> None
let get_list = function Some (List l) -> Some l | _ -> None
