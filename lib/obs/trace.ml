(* Structured event tracer emitting Chrome trace_event JSON.

   A single process-wide collector: instrumentation points all over the
   tree can emit without plumbing a handle through every signature, and
   the whole layer costs one mutable-bool read when tracing is off.  The
   collector is mutex-protected (events arrive from several domains) and
   capped, so a pathological run cannot balloon the trace file. *)

type arg = Int of int | Str of string | Float of float

type event = {
  e_name : string;
  e_ph : char; (* 'X' complete (with dur), 'i' instant *)
  e_ts_us : float;
  e_dur_us : float;
  e_tid : int;
  e_args : (string * arg) list;
}

type collector = {
  lock : Mutex.t;
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable dropped : int;
  cap : int;
  t0 : float;
}

let default_cap = 200_000
let current : collector option ref = ref None
let is_enabled = ref false

let enabled () = !is_enabled

let start ?(cap = default_cap) () =
  current :=
    Some
      {
        lock = Mutex.create ();
        events = [];
        count = 0;
        dropped = 0;
        cap;
        t0 = Unix.gettimeofday ();
      };
  is_enabled := true

let push ev =
  match !current with
  | None -> ()
  | Some c ->
    Mutex.lock c.lock;
    if c.count < c.cap then begin
      c.events <- ev :: c.events;
      c.count <- c.count + 1
    end
    else c.dropped <- c.dropped + 1;
    Mutex.unlock c.lock

let dropped () =
  match !current with
  | None -> 0
  | Some c ->
    Mutex.lock c.lock;
    let d = c.dropped in
    Mutex.unlock c.lock;
    d

let now_us c = (Unix.gettimeofday () -. c.t0) *. 1e6

let tid () = (Domain.self () :> int)

let instant ?(args = []) name =
  match !current with
  | None -> ()
  | Some c ->
    push
      {
        e_name = name;
        e_ph = 'i';
        e_ts_us = now_us c;
        e_dur_us = 0.0;
        e_tid = tid ();
        e_args = args;
      }

let with_span ?(args = []) name f =
  match !current with
  | None -> f ()
  | Some c ->
    let t0 = now_us c in
    let finish () =
      push
        {
          e_name = name;
          e_ph = 'X';
          e_ts_us = t0;
          e_dur_us = now_us c -. t0;
          e_tid = tid ();
          e_args = args;
        }
    in
    Fun.protect ~finally:finish f

(* ---- export --------------------------------------------------------------- *)

let arg_json b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    Buffer.add_string b
      (if Float.is_finite f then Printf.sprintf "%.6g" f else "null")
  | Str s ->
    Buffer.add_char b '"';
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | ch when Char.code ch < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
        | ch -> Buffer.add_char b ch)
      s;
    Buffer.add_char b '"'

let event_json b ev =
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\": \"%s\", \"ph\": \"%c\", \"ts\": %.1f, \"pid\": 0, \
        \"tid\": %d"
       ev.e_name ev.e_ph ev.e_ts_us ev.e_tid);
  if ev.e_ph = 'X' then
    Buffer.add_string b (Printf.sprintf ", \"dur\": %.1f" ev.e_dur_us);
  if ev.e_ph = 'i' then Buffer.add_string b ", \"s\": \"g\"";
  (match ev.e_args with
  | [] -> ()
  | args ->
    Buffer.add_string b ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b (Printf.sprintf "\"%s\": " k);
        arg_json b v)
      args;
    Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_json () =
  match !current with
  | None -> "{\"traceEvents\": []}\n"
  | Some c ->
    Mutex.lock c.lock;
    let events = List.rev c.events and dropped = c.dropped in
    Mutex.unlock c.lock;
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\": [\n";
    List.iteri
      (fun i ev ->
        if i > 0 then Buffer.add_string b ",\n";
        event_json b ev)
      events;
    Buffer.add_string b
      (Printf.sprintf "\n], \"displayTimeUnit\": \"ms\", \"dropped\": %d}\n"
         dropped);
    Buffer.contents b

let stop () =
  is_enabled := false;
  let json = to_json () in
  current := None;
  json
