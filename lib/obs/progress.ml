(* Live progress samples and the CLI's single rewriting status line. *)

type sample = {
  states : int;
  transitions : int;
  depth : int;
  frontier : int;
  rate : float;
  mem_bytes : int;
  shard_balance : float;
  elapsed_s : float;
}

let mb bytes = float_of_int bytes /. 1048576.

let human_rate r =
  if r >= 1e6 then Printf.sprintf "%.1fM/s" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk/s" (r /. 1e3)
  else Printf.sprintf "%.0f/s" r

let render s =
  Printf.sprintf
    "%d states %s | depth %d | frontier %d | %.1f MB | balance %.2f | %.1fs"
    s.states (human_rate s.rate) s.depth s.frontier (mb s.mem_bytes)
    s.shard_balance s.elapsed_s

(* The reporter rewrites one status line with [\r]; it throttles itself so
   a chatty caller (the sequential engine samples every few thousand
   discoveries) cannot saturate the terminal. *)
let reporter ?(every_s = 0.1) ?(out = stderr) () =
  let last = ref 0.0 in
  let width = ref 0 in
  let emit s =
    let now = Unix.gettimeofday () in
    if now -. !last >= every_s then begin
      last := now;
      let line = render s in
      let pad = max 0 (!width - String.length line) in
      width := String.length line;
      output_string out ("\r" ^ line ^ String.make pad ' ');
      flush out
    end
  in
  let finish () =
    if !width > 0 then begin
      output_string out ("\r" ^ String.make !width ' ' ^ "\r");
      flush out
    end
  in
  (emit, finish)
