(** Schema-versioned JSONL run journal.

    A journal buffers a run's events in memory — one JSON object per
    {!event} call — and writes them to a file in one append at the end of
    the run, one object per line.  Every line carries
    [{"v": <schema_version>, "ev": <kind>, ...}]: consumers parse line by
    line and skip kinds (or newer versions) they do not know, so the
    schema can grow compatibly; breaking changes bump {!schema_version}.

    Rendering is deterministic (caller field order, fixed float format),
    and the engines only feed parallelism-independent facts, so journals
    are byte-identical across [-j]/[--workers] counts — the property
    [ccr report] and the cram tests rely on.

    {!value} and {!parse} double as the repository's minimal JSON codec
    (there is no external JSON dependency): [ccr report] reads journals
    and bench rows back through them. *)

val schema_version : int
(** Current schema version, stamped as ["v"] on every line.  Version 1:
    events [config], [level], [limit], [canon], [faults], [violation],
    [coverage], [end]. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

val to_string : value -> string
(** Compact JSON, no whitespace; object fields in given order. *)

type t

val create : unit -> t

val event : t -> string -> (string * value) list -> unit
(** [event t kind fields] appends one line
    [{"v": .., "ev": kind, fields...}]. *)

val count : t -> int
(** Events buffered. *)

val bytes : t -> int
(** Size of {!contents} in bytes. *)

val contents : t -> string
(** All lines, oldest first, each newline-terminated. *)

val append_to_file : t -> string -> unit
(** Append {!contents} to a file (created 0644 if missing) — one
    line-block per invocation, [fsync]ed before returning so a crash
    immediately after cannot lose it. *)

(** {2 Parsing} *)

val parse : string -> value option
(** Parse one JSON document ([None] on malformed input).  Accepts the
    full JSON grammar; [\u] escapes decode to UTF-8. *)

val find : value -> string -> value option
(** Object field lookup ([None] on non-objects and missing keys). *)

val get_int : value option -> int option
val get_float : value option -> float option
val get_str : value option -> string option
val get_list : value option -> value list option
