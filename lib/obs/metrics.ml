(* Metrics registry with per-domain shards.

   The hot path (incr/add/set/observe) touches only the calling domain's
   shard: a plain record of mutable int/float arrays reached through
   [Domain.DLS], so parallel explorer workers never contend on a lock or
   an atomic, and a steady-state update allocates nothing.  Readers merge
   the shards under the registry lock; merged values can lag concurrent
   writers by a few updates (metrics are monitoring data, not semantics). *)

type shard = {
  mutable s_counters : int array;
  mutable s_gauges : float array;
  mutable s_hists : int array array;
  mutable s_hist_count : int array;
  mutable s_hist_sum : float array;
}

type t = {
  lock : Mutex.t;
  mutable counter_names : string array;
  mutable n_counters : int;
  mutable gauge_names : string array;
  mutable n_gauges : int;
  mutable hist_names : string array;
  mutable n_hists : int;
  mutable shards : shard list;
  key : shard Domain.DLS.key;
}

type counter = { cr : t; cid : int }
type gauge = { gr : t; gid : int }
type histogram = { hr : t; hid : int }

let no_buckets : int array = [||]

let fresh_shard () =
  {
    s_counters = [||];
    s_gauges = [||];
    s_hists = [||];
    s_hist_count = [||];
    s_hist_sum = [||];
  }

let create () =
  let self = ref None in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = fresh_shard () in
        (match !self with
        | Some t ->
          Mutex.lock t.lock;
          t.shards <- s :: t.shards;
          Mutex.unlock t.lock
        | None -> ());
        s)
  in
  let t =
    {
      lock = Mutex.create ();
      counter_names = [||];
      n_counters = 0;
      gauge_names = [||];
      n_gauges = 0;
      hist_names = [||];
      n_hists = 0;
      shards = [];
      key;
    }
  in
  self := Some t;
  t

(* ---- registration (cold path) ------------------------------------------- *)

let index_of names n name =
  let rec go i = if i >= n then -1 else if names.(i) = name then i else go (i + 1) in
  go 0

let push names n name =
  let names =
    if Array.length names > n then names
    else Array.append names (Array.make (max 8 (Array.length names)) "")
  in
  names.(n) <- name;
  names

let counter t name =
  Mutex.lock t.lock;
  let id =
    match index_of t.counter_names t.n_counters name with
    | -1 ->
      t.counter_names <- push t.counter_names t.n_counters name;
      t.n_counters <- t.n_counters + 1;
      t.n_counters - 1
    | i -> i
  in
  Mutex.unlock t.lock;
  { cr = t; cid = id }

let gauge t name =
  Mutex.lock t.lock;
  let id =
    match index_of t.gauge_names t.n_gauges name with
    | -1 ->
      t.gauge_names <- push t.gauge_names t.n_gauges name;
      t.n_gauges <- t.n_gauges + 1;
      t.n_gauges - 1
    | i -> i
  in
  Mutex.unlock t.lock;
  { gr = t; gid = id }

let histogram t name =
  Mutex.lock t.lock;
  let id =
    match index_of t.hist_names t.n_hists name with
    | -1 ->
      t.hist_names <- push t.hist_names t.n_hists name;
      t.n_hists <- t.n_hists + 1;
      t.n_hists - 1
    | i -> i
  in
  Mutex.unlock t.lock;
  { hr = t; hid = id }

(* ---- hot path ------------------------------------------------------------ *)

let[@inline] shard t = Domain.DLS.get t.key

let ceil_pow2 n =
  let c = ref 8 in
  while !c < n do
    c := !c * 2
  done;
  !c

(* Growth happens at most [log] times per shard and copies the old cells,
   so a concurrent merge reads either the old array (slightly stale) or
   the new one. *)
let counters_for (s : shard) id =
  let a = s.s_counters in
  if id < Array.length a then a
  else begin
    let a' = Array.make (ceil_pow2 (id + 1)) 0 in
    Array.blit a 0 a' 0 (Array.length a);
    s.s_counters <- a';
    a'
  end

let gauges_for (s : shard) id =
  let a = s.s_gauges in
  if id < Array.length a then a
  else begin
    let a' = Array.make (ceil_pow2 (id + 1)) 0.0 in
    Array.blit a 0 a' 0 (Array.length a);
    s.s_gauges <- a';
    a'
  end

let n_buckets = 32

let hist_for (s : shard) id =
  if id >= Array.length s.s_hists then begin
    let n = ceil_pow2 (id + 1) in
    let hs = Array.make n no_buckets in
    Array.blit s.s_hists 0 hs 0 (Array.length s.s_hists);
    s.s_hists <- hs;
    let hc = Array.make n 0 in
    Array.blit s.s_hist_count 0 hc 0 (Array.length s.s_hist_count);
    s.s_hist_count <- hc;
    let hh = Array.make n 0.0 in
    Array.blit s.s_hist_sum 0 hh 0 (Array.length s.s_hist_sum);
    s.s_hist_sum <- hh
  end;
  if s.s_hists.(id) == no_buckets then s.s_hists.(id) <- Array.make n_buckets 0;
  s.s_hists.(id)

let add c n =
  let a = counters_for (shard c.cr) c.cid in
  a.(c.cid) <- a.(c.cid) + n

let incr c = add c 1

(* Gauges merge by [max] across shards (they are watermarks / last-known
   levels, not additive), so [set] within one domain is last-writer-wins
   and the merged reading is the high-water mark. *)
let set g v =
  let a = gauges_for (shard g.gr) g.gid in
  a.(g.gid) <- v

let set_max g v =
  let a = gauges_for (shard g.gr) g.gid in
  if v > a.(g.gid) then a.(g.gid) <- v

(* Log-scale buckets: bucket 0 holds [v <= 0]; bucket [b >= 1] holds
   [2^(b-1) <= v < 2^b]; the top bucket absorbs everything above. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 1 and lim = ref 2 in
    while v >= !lim && !b < n_buckets - 1 do
      b := !b + 1;
      lim := !lim * 2
    done;
    !b
  end

let bucket_range b =
  if b <= 0 then (min_int, 0)
  else if b >= n_buckets - 1 then (1 lsl (n_buckets - 2), max_int)
  else (1 lsl (b - 1), (1 lsl b) - 1)

let observe h v =
  let s = shard h.hr in
  let buckets = hist_for s h.hid in
  let b = bucket_of v in
  buckets.(b) <- buckets.(b) + 1;
  s.s_hist_count.(h.hid) <- s.s_hist_count.(h.hid) + 1;
  s.s_hist_sum.(h.hid) <- s.s_hist_sum.(h.hid) +. float_of_int v

let observe_n h v n =
  if n > 0 then begin
    let s = shard h.hr in
    let buckets = hist_for s h.hid in
    let b = bucket_of v in
    buckets.(b) <- buckets.(b) + n;
    s.s_hist_count.(h.hid) <- s.s_hist_count.(h.hid) + n;
    s.s_hist_sum.(h.hid) <- s.s_hist_sum.(h.hid) +. (float_of_int v *. float_of_int n)
  end

(* ---- merged snapshots ---------------------------------------------------- *)

type hist_snapshot = { buckets : int array; count : int; sum : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist_snapshot) list;
}

let snapshot t =
  Mutex.lock t.lock;
  let shards = t.shards in
  let counters =
    List.init t.n_counters (fun i ->
        ( t.counter_names.(i),
          List.fold_left
            (fun acc s ->
              acc + if i < Array.length s.s_counters then s.s_counters.(i) else 0)
            0 shards ))
  in
  let gauges =
    List.init t.n_gauges (fun i ->
        ( t.gauge_names.(i),
          List.fold_left
            (fun acc s ->
              Float.max acc
                (if i < Array.length s.s_gauges then s.s_gauges.(i) else 0.0))
            0.0 shards ))
  in
  let hists =
    List.init t.n_hists (fun i ->
        let buckets = Array.make n_buckets 0 in
        let count = ref 0 and sum = ref 0.0 in
        List.iter
          (fun s ->
            if i < Array.length s.s_hists && s.s_hists.(i) != no_buckets then begin
              Array.iteri (fun b n -> buckets.(b) <- buckets.(b) + n) s.s_hists.(i);
              count := !count + s.s_hist_count.(i);
              sum := !sum +. s.s_hist_sum.(i)
            end)
          shards;
        (t.hist_names.(i), { buckets; count = !count; sum = !sum }))
  in
  Mutex.unlock t.lock;
  { counters; gauges; hists }

let reset t =
  Mutex.lock t.lock;
  List.iter
    (fun s ->
      Array.fill s.s_counters 0 (Array.length s.s_counters) 0;
      Array.fill s.s_gauges 0 (Array.length s.s_gauges) 0.0;
      Array.iter (fun b -> Array.fill b 0 (Array.length b) 0) s.s_hists;
      Array.fill s.s_hist_count 0 (Array.length s.s_hist_count) 0;
      Array.fill s.s_hist_sum 0 (Array.length s.s_hist_sum) 0.0)
    t.shards;
  Mutex.unlock t.lock

(* ---- renderers ------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let to_json snap =
  let b = Buffer.create 1024 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b "  "
  in
  let name n =
    Buffer.add_char b '"';
    json_escape b n;
    Buffer.add_string b "\": "
  in
  Buffer.add_string b "{\n";
  List.iter
    (fun (n, v) ->
      sep ();
      name n;
      Buffer.add_string b (string_of_int v))
    snap.counters;
  List.iter
    (fun (n, v) ->
      sep ();
      name n;
      Buffer.add_string b (json_float v))
    snap.gauges;
  List.iter
    (fun (n, h) ->
      sep ();
      name n;
      Buffer.add_string b
        (Printf.sprintf "{\"count\": %d, \"sum\": %s, \"buckets\": [" h.count
           (json_float h.sum));
      let bfirst = ref true in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            if !bfirst then bfirst := false else Buffer.add_string b ", ";
            let lo, hi = bucket_range i in
            Buffer.add_string b
              (Printf.sprintf "{\"lo\": %d, \"hi\": %d, \"n\": %d}"
                 (max lo 0) hi c)
          end)
        h.buckets;
      Buffer.add_string b "]}")
    snap.hists;
  Buffer.add_string b "\n}";
  Buffer.contents b

(* OpenMetrics text exposition (the Prometheus scrape surface for the
   roadmap's [ccr serve]): metric names sanitized to [a-zA-Z0-9_:],
   counters suffixed [_total], histograms as cumulative [_bucket{le=..}]
   series with [_sum]/[_count], terminated by [# EOF]. *)
let om_name n =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    n

let om_float f =
  if not (Float.is_finite f) then
    if Float.is_nan f then "NaN"
    else if f > 0.0 then "+Inf"
    else "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let strip_total n =
  let suffix = "_total" in
  let nl = String.length n and sl = String.length suffix in
  if nl > sl && String.sub n (nl - sl) sl = suffix then String.sub n 0 (nl - sl)
  else n

let to_openmetrics snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun (n, v) ->
      let n = strip_total (om_name n) in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s counter\n%s_total %d\n" n n v))
    snap.counters;
  List.iter
    (fun (n, v) ->
      let n = om_name n in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (om_float v)))
    snap.gauges;
  List.iter
    (fun (n, h) ->
      let n = om_name n in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          if c > 0 then begin
            let _, hi = bucket_range i in
            (* the top bucket folds into +Inf below; cumulative counts
               stay correct when empty buckets are elided *)
            if hi <> max_int then
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n hi !cum)
          end)
        h.buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n"
           n h.count n (om_float h.sum) n h.count))
    snap.hists;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let pp_hist ppf h =
  let mean = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count in
  Fmt.pf ppf "count=%d mean=%.2f" h.count mean;
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo, hi = bucket_range i in
        if i = 0 then Fmt.pf ppf " [<=0]:%d" c
        else if hi = max_int then Fmt.pf ppf " [>=%d]:%d" lo c
        else Fmt.pf ppf " [%d-%d]:%d" lo hi c)
    h.buckets

let pp ppf snap =
  List.iter (fun (n, v) -> Fmt.pf ppf "%-32s %d@," n v) snap.counters;
  List.iter (fun (n, v) -> Fmt.pf ppf "%-32s %.6g@," n v) snap.gauges;
  List.iter (fun (n, h) -> Fmt.pf ppf "%-32s %a@," n pp_hist h) snap.hists
