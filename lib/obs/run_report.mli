(** [ccr report]: aggregate run journals and bench rows into one report.

    The scanner walks a directory (non-recursively) for [*.jsonl] run
    journals (see {!Journal}) and [BENCH_*.json] benchmark dumps, both
    parsed with the in-tree JSON codec.  The renderer produces plain
    markdown — a run table, per-run violation paths, the fuzz
    rule-coverage matrix rebuilt from [coverage] events alone,
    state-count tables from the bench rows, and ASCII histogram
    renders — with an optional minimal HTML wrapping.

    Output is deterministic: files are visited in sorted name order and
    nothing timestamped is emitted, so reports over the same artifacts
    are byte-identical (the cram tests rely on this). *)

type run = {
  r_file : string;  (** journal file the run came from (basename) *)
  r_events : Journal.value list;
      (** the run's events, oldest first; every element is an [Obj] with
          at least ["v"] and ["ev"] fields *)
}

val scan_journals : string -> run list
(** All runs in [dir]'s [*.jsonl] files, file-name order.  A run is a
    [config] event and everything up to (but excluding) the next
    [config]; malformed lines and unknown schema versions are skipped,
    not errors.  Segments of one checkpointed run — a [config] carrying
    [run_id], then later configs repeating the id with [resumed: true] —
    are concatenated (even across files) into a single [run] whose
    events span every session; the last [end] event is the run's true
    outcome. *)

val scan_bench : string -> (string * Journal.value list) list
(** All [BENCH_*.json] files in [dir] (sorted), each as its row list.
    Files that fail to parse are skipped. *)

val to_markdown : dir:string -> string
(** The full report over [dir]. *)

val html_of_markdown : string -> string
(** Minimal markdown-to-HTML conversion covering what {!to_markdown}
    emits: headings, pipe tables, fenced code blocks, inline code,
    paragraphs.  Not a general markdown engine. *)
