(** Metrics registry: named counters, gauges, and log-scale histograms.

    Updates are O(1), allocation-free in steady state, and touch only the
    calling domain's shard (via [Domain.DLS]), so the parallel explorer's
    worker domains never contend.  Reads ({!snapshot}) merge the shards:
    counters and histogram buckets sum, gauges take the maximum (they are
    watermarks).  A snapshot taken while writers run can lag them by a few
    updates — metrics are monitoring data, not semantics. *)

type t
(** A registry.  Handles are interned by name: registering the same name
    twice returns the same underlying metric. *)

type counter
type gauge
type histogram

val create : unit -> t
val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit

val set : gauge -> float -> unit
(** Last-writer-wins within a domain; across domains the merged reading
    is the maximum. *)

val set_max : gauge -> float -> unit

val observe : histogram -> int -> unit

val observe_n : histogram -> int -> int -> unit
(** [observe_n h v n] records value [v] [n] times in one update — for
    bulk-loading a histogram from an externally accumulated array. *)

(** {2 Bucket layout}

    [n_buckets] log-scale buckets: bucket [0] holds values [<= 0]; bucket
    [b >= 1] holds [2^(b-1) <= v < 2^b]; the top bucket absorbs all larger
    values. *)

val n_buckets : int
val bucket_of : int -> int
val bucket_range : int -> int * int
(** Inclusive [(lo, hi)] of a bucket ([(min_int, 0)] for bucket 0,
    [(_, max_int)] for the top bucket). *)

(** {2 Merged snapshots and renderers} *)

type hist_snapshot = { buckets : int array; count : int; sum : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot
val reset : t -> unit

val to_json : snapshot -> string
(** One flat JSON object: counters and gauges as numbers, histograms as
    [{"count": _, "sum": _, "buckets": [{"lo": _, "hi": _, "n": _}, ...]}]
    with empty buckets omitted. *)

val to_openmetrics : snapshot -> string
(** OpenMetrics text exposition — the scrape surface for a future
    [ccr serve].  Names are sanitized to [[a-zA-Z0-9_:]] (dots become
    underscores); counters are suffixed [_total]; histograms render as
    cumulative [_bucket{le="..."}] series (log-scale upper bounds, empty
    buckets elided, the top bucket folded into [le="+Inf"]) with [_sum]
    and [_count]; the document ends with [# EOF]. *)

val pp : snapshot Fmt.t
(** Human-readable table, one metric per line. *)

val pp_hist : hist_snapshot Fmt.t
