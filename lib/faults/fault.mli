(** Network-fault vocabulary shared by the checker, the simulator and the
    runtime.

    The paper's refinement (§2.2) assumes reliable, in-order,
    point-to-point FIFO channels.  A {!spec} relaxes that assumption by a
    finite budget of {e faults}: per-channel message drops, duplications
    and delays, plus remote pause/resume (a node that stops reacting for
    a while).  Budgets keep every derived state space finite; per-kind
    wire filters let a fault target a message class (e.g. only acks,
    which is where the vanilla refinement is most fragile). *)

open Ccr_refine

type wire_filter =
  | Kany
  | Kreq  (** requests (including replies) *)
  | Kack
  | Knack

type chan =
  | To_h of int  (** channel remote [i] → home *)
  | To_r of int  (** channel home → remote [i] *)

type spec = {
  drop : int;  (** messages the network may lose *)
  drop_on : wire_filter;
  dup : int;  (** messages the network may duplicate *)
  dup_on : wire_filter;
  delay : int;  (** messages the network may reorder past successors *)
  delay_on : wire_filter;
  pause : int;  (** remotes that may stop reacting for a while *)
}

val none : spec
val total : spec -> int
val is_none : spec -> bool

val parse : string -> (spec, string) result
(** Parse a budget spec such as ["drop=1"], ["drop=1@ack,dup=2"],
    ["delay=1@req,pause=1"].  Kinds: [drop], [dup], [delay], [pause];
    filters: [@any] (default), [@req], [@ack], [@nack]. *)

val pp : spec Fmt.t
val matches : wire_filter -> Wire.t -> bool
val pp_chan : chan Fmt.t

val chan_index : n:int -> chan -> int
(** Dense index in [0, 2n): [To_h i ↦ i], [To_r i ↦ n + i]. *)

(** {2 Injection accounting} *)

type counts = {
  mutable drops : int;  (** messages dropped by the network *)
  mutable dups : int;  (** messages duplicated by the network *)
  mutable delays : int;  (** messages delayed past a successor *)
  mutable pauses : int;  (** remote pause windows *)
  mutable retransmits : int;  (** hardened: retransmissions issued *)
  mutable absorbed : int;  (** hardened: duplicates deduplicated away *)
  mutable delivered : int;  (** fault-eligible messages passed untouched *)
}

val zero : unit -> counts

type fcounts = {
  f_drops : int;
  f_dups : int;
  f_delays : int;
  f_pauses : int;
  f_retransmits : int;
  f_absorbed : int;
  f_delivered : int;
}
(** Immutable snapshot of {!counts}, safe to embed in result records. *)

val freeze : counts -> fcounts
val injected : fcounts -> int
val pp_fcounts : fcounts Fmt.t
