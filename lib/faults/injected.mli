(** Fault-injected transition systems for the model checker.

    Wraps the asynchronous semantics ({!Ccr_refine.Async}) with network
    faults drawn from a finite {!Fault.spec} budget carried inside the
    state, so the composed system stays finite and explorable:

    - {b Vanilla} mode executes the faults literally on the paper's
      channels: a drop removes a channel head, a duplication doubles it,
      a delay reorders it past the rest of its channel.  This is the
      refinement as derived — built on the §2.2 reliability assumption —
      so a single lost ack wedges a remote forever (the counterexample
      [ccr check --faults] exhibits).
    - {b Hardened} mode models the timeout/retransmit/dedup transport of
      {!Ccr_runtime.Faultlink} abstractly ("ghost ARQ"): a dropped or
      delayed message becomes a {e gap} at the head of its channel — the
      channel stalls (in-order delivery cannot proceed past the gap)
      until a retransmission re-injects the lost message at its original
      position; duplicates are absorbed by sequence-number dedup and only
      spend budget.  No sequence numbers enter the state, so the space
      stays finite and small.

    A reception that raises {!Ccr_refine.Async.Protocol_error} (reachable
    under duplication in vanilla mode: a stale ack hitting a
    non-transient process) is folded into a {e wedged} terminal state
    instead of an exception, so exploration can report it as an invariant
    violation with a concrete trace. *)

open Ccr_core
open Ccr_refine

type mode = Vanilla | Hardened

type budget = { b_drop : int; b_dup : int; b_delay : int; b_pause : int }

type fstate = {
  base : Async.state;
  left : budget;  (** remaining fault budget *)
  lost_h : Wire.t option array;
      (** hardened: gap at the head of [to_h.(i)], awaiting retransmit *)
  lost_r : Wire.t option array;
  paused : bool array;  (** remotes currently not reacting *)
  wedged : string option;
      (** a reception raised [Protocol_error]; terminal *)
}

type event =
  | Ev_drop of Fault.chan
  | Ev_dup of Fault.chan
  | Ev_delay of Fault.chan
  | Ev_retransmit of Fault.chan  (** hardened: the gap is refilled *)
  | Ev_pause of int
  | Ev_resume of int
  | Ev_wedge of string

type label = Step of Async.label | Fault of event

val initial : Fault.spec -> Prog.t -> Async.config -> fstate

val successors :
  ?faults:bool ->
  mode ->
  Fault.spec ->
  Prog.t ->
  Async.config ->
  fstate ->
  (label * fstate) list
(** All transitions of the composed system: the protocol's own steps
    (masked by pauses and hardened channel stalls, with [Protocol_error]
    receptions turned into wedge transitions) plus, with [faults]
    (default [true]), the nondeterministic fault transitions the
    remaining budget allows.  A wedged state has no successors. *)

val protocol_successors :
  ?paused:bool array ->
  ?stalled_h:bool array ->
  ?stalled_r:bool array ->
  Prog.t ->
  Async.config ->
  Async.state ->
  (Async.label * Async.state) list * (Fault.chan * string) list
(** The protocol steps alone, on a raw state under the given masks:
    paused remotes take no transition, stalled channels deliver nothing.
    Second component: channels whose head reception raises
    [Protocol_error], with the message (never raises).  Shared with the
    simulator's fault driver ({!Drive}). *)

val encode : fstate -> string

val split_key : Ccr_core.Prog.t -> string -> int array
(** Collapse-store splitter over {!encode}d keys: the async boundaries of
    the embedded base state ({!Async.split_key}) plus one trailing
    component holding the fault bookkeeping.  Last offset equals
    [String.length key]. *)

val no_wedge : string * (fstate -> bool)
(** Invariant: the run never wedged on a protocol error. *)

val lift_invariant :
  string * (Async.state -> bool) -> string * (fstate -> bool)

val completes : Async.label -> bool
(** The label commits a rendezvous (the checker's progress notion). *)

val pp_event : event Fmt.t
val pp_label : label Fmt.t
val pp_fstate : Prog.t -> fstate Fmt.t

(** {2 Rendezvous level}

    At the rendezvous level there are no channels, so only pause faults
    apply: a paused process takes part in no transition until resumed. *)

type rv_fstate = {
  rv_base : Ccr_semantics.Rendezvous.state;
  rv_left : int;
  rv_paused : bool array;
}

type rv_label =
  | Rv_step of Ccr_semantics.Rendezvous.label
  | Rv_pause of int
  | Rv_resume of int

val rv_initial : Fault.spec -> Prog.t -> rv_fstate
val rv_successors : Prog.t -> rv_fstate -> (rv_label * rv_fstate) list
val rv_encode : rv_fstate -> string
val pp_rv_label : rv_label Fmt.t
val pp_rv_fstate : Prog.t -> rv_fstate Fmt.t
