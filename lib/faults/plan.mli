(** Deterministic fault plans for the simulator and the runtime.

    The checker explores {e all} fault placements within a budget; a
    single execution needs one concrete placement.  A plan pre-assigns
    every fault of a {!Fault.spec} to a slot — (channel, ordinal of the
    matching message on that channel) — derived from a seed, so the same
    seed injects the same faults regardless of thread scheduling.  A
    {!cursor} counts matching messages per channel at the injection
    point; {!decide} answers "what happens to this message?". *)

open Ccr_refine

type decision = Deliver | Drop | Dup | Delay

type event = {
  ev_kind : decision;  (** never [Deliver] *)
  ev_on : Fault.wire_filter;
  ev_chan : Fault.chan;
  ev_ord : int;  (** 1-based ordinal among matching messages on the channel *)
}

type window = {
  w_remote : int;
  w_start : int;  (** tick the pause begins *)
  w_len : int;  (** ticks it lasts *)
}
(** A remote's pause window, in abstract ticks.  The simulator counts one
    tick per scheduler iteration; the runtime maps a tick to one
    millisecond of wall time. *)

type t = {
  pn : int;  (** number of remotes *)
  events : event list;
  windows : window list;
  spec : Fault.spec;
}

val make : n:int -> ?windows:window list -> Fault.spec -> event list -> t
(** An exact, hand-written plan — the deterministic-failure tests use
    this to aim a single fault at a known message. *)

val random : n:int -> ?horizon:int -> seed:int -> Fault.spec -> t
(** Derive a plan from the seed: each budgeted fault lands on a random
    channel at a random ordinal in [1, horizon] (default 12), no two
    faults on the same slot; each pause budget becomes a window. *)

val paused_at : t -> int -> int -> bool
(** [paused_at t i tick]: is remote [i] inside a pause window? *)

type cursor
(** Mutable per-(channel, filter) message counters.  Each channel's
    counters are only ever advanced by that channel's sender (runtime) or
    the single simulation loop, so no locking is needed. *)

val cursor : t -> cursor

val decide : t -> cursor -> Fault.chan -> Wire.t -> decision
(** Count the message on its channel and look up the planned fate. *)

val pp : t Fmt.t
