(** Deterministic fault injection for a single simulated execution.

    Applies a {!Plan.t} to the asynchronous state the simulator threads
    through {!Ccr_simulate.Sim}: each message {e enqueued} by an executed
    transition is counted on its channel and given its planned fate
    (deliver / drop / duplicate / delay), pause windows mask the affected
    remote's transitions, and — in hardened mode — lost or delayed
    messages re-enter at their original FIFO position after a retransmit
    timeout, mirroring {!Injected}'s ghost-ARQ model tick by tick. *)

open Ccr_core
open Ccr_refine

type t

val create : Injected.mode -> Plan.t -> t

val step_begin : t -> step:int -> Async.state -> Async.state
(** Re-inject messages whose retransmit/delay timer expired. *)

val successors :
  t ->
  step:int ->
  Prog.t ->
  Async.config ->
  Async.state ->
  (Async.label * Async.state) list * string option
(** Protocol transitions under the current pause/stall masks; [Some msg]
    if a head reception would raise [Protocol_error] (the run is wedged). *)

val observe :
  t -> step:int -> before:Async.state -> Async.state -> Async.state
(** Account the executed transition [before → after]: advance gap
    positions past the consumed message and decide the fate of every
    newly enqueued message, editing the channels accordingly. *)

val waiting : t -> step:int -> bool
(** True if a quiet system is only waiting on the fault layer (a pending
    re-injection or an active pause window), so an empty successor list
    is not yet a deadlock. *)

val counts : t -> Fault.counts
