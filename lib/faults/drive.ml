open Ccr_refine

let rto_ticks = 12
let delay_ticks = 6

type pending = {
  p_chan : Fault.chan;
  p_wire : Wire.t;
  mutable p_ahead : int;
      (* messages in front of the gap; -1 = re-enter at the tail
         (vanilla delay) *)
  p_due : int;
  p_retx : bool;
}

type t = {
  d_mode : Injected.mode;
  d_plan : Plan.t;
  d_cur : Plan.cursor;
  d_counts : Fault.counts;
  mutable d_pending : pending list;
}

let create mode plan =
  let counts = Fault.zero () in
  counts.Fault.pauses <- List.length plan.Plan.windows;
  {
    d_mode = mode;
    d_plan = plan;
    d_cur = Plan.cursor plan;
    d_counts = counts;
    d_pending = [];
  }

let counts t = t.d_counts

let set_arr a i x =
  let a' = Array.copy a in
  a'.(i) <- x;
  a'

let get_chan (st : Async.state) = function
  | Fault.To_h i -> st.Async.to_h.(i)
  | Fault.To_r i -> st.Async.to_r.(i)

let set_chan (st : Async.state) ch l =
  match ch with
  | Fault.To_h i -> { st with Async.to_h = set_arr st.Async.to_h i l }
  | Fault.To_r i -> { st with Async.to_r = set_arr st.Async.to_r i l }

let rec insert_at l pos w =
  if pos <= 0 then w :: l
  else
    match l with [] -> [ w ] | x :: rest -> x :: insert_at rest (pos - 1) w

let rec remove_at l pos =
  match (l, pos) with
  | [], _ -> []
  | _ :: rest, 0 -> rest
  | x :: rest, _ -> x :: remove_at rest (pos - 1)

let step_begin t ~step st =
  let due, still =
    List.partition (fun p -> p.p_due <= step) t.d_pending
  in
  t.d_pending <- still;
  List.fold_left
    (fun st p ->
      let l = get_chan st p.p_chan in
      let l' =
        if p.p_ahead < 0 then l @ [ p.p_wire ]
        else insert_at l (min p.p_ahead (List.length l)) p.p_wire
      in
      if p.p_retx then t.d_counts.retransmits <- t.d_counts.retransmits + 1;
      set_chan st p.p_chan l')
    st due

let gap_on t ch =
  List.exists (fun p -> p.p_chan = ch && p.p_ahead >= 0) t.d_pending

let successors t ~step prog cfg (st : Async.state) =
  let n = t.d_plan.Plan.pn in
  let paused = Array.init n (fun i -> Plan.paused_at t.d_plan i step) in
  let stalled_h =
    Array.init n (fun i ->
        List.exists
          (fun p -> p.p_chan = Fault.To_h i && p.p_ahead = 0)
          t.d_pending)
  in
  let stalled_r =
    Array.init n (fun i ->
        List.exists
          (fun p -> p.p_chan = Fault.To_r i && p.p_ahead = 0)
          t.d_pending)
  in
  let steps, wedges =
    Injected.protocol_successors ~paused ~stalled_h ~stalled_r prog cfg st
  in
  (steps, match wedges with [] -> None | (_, m) :: _ -> Some m)

(* Longest-prefix diff of one channel: FIFO transitions pop at most one
   head and append at the tail, so [after] is [before] (minus its head if
   the transition consumed it) followed by the newly sent messages. *)
let rec is_prefix p l =
  match (p, l) with
  | [], _ -> true
  | x :: p', y :: l' -> Wire.equal x y && is_prefix p' l'
  | _ :: _, [] -> false

let rec drop_n n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop_n (n - 1) r

let observe t ~step ~before (after : Async.state) =
  let n = t.d_plan.Plan.pn in
  let chans =
    List.init n (fun i -> Fault.To_h i) @ List.init n (fun i -> Fault.To_r i)
  in
  List.fold_left
    (fun st ch ->
      let b = get_chan before ch and a = get_chan st ch in
      let popped = not (is_prefix b a) in
      if popped then
        (* the consumed head was in front of any gap: the gap moves up *)
        List.iter
          (fun p -> if p.p_chan = ch && p.p_ahead > 0 then p.p_ahead <- p.p_ahead - 1)
          t.d_pending;
      let first_new = List.length b - if popped then 1 else 0 in
      let news = drop_n first_new a in
      let lst = ref a and pos = ref first_new in
      List.iter
        (fun w ->
          match
            (Plan.decide t.d_plan t.d_cur ch w, t.d_mode)
          with
          | Plan.Deliver, _ ->
            t.d_counts.delivered <- t.d_counts.delivered + 1;
            incr pos
          | Plan.Dup, Injected.Vanilla ->
            t.d_counts.dups <- t.d_counts.dups + 1;
            lst := insert_at !lst (!pos + 1) w;
            pos := !pos + 2
          | Plan.Dup, Injected.Hardened ->
            t.d_counts.dups <- t.d_counts.dups + 1;
            t.d_counts.absorbed <- t.d_counts.absorbed + 1;
            incr pos
          | Plan.Drop, Injected.Vanilla ->
            t.d_counts.drops <- t.d_counts.drops + 1;
            lst := remove_at !lst !pos
          | Plan.Drop, Injected.Hardened ->
            if gap_on t ch then begin
              (* one gap per channel; the slot is taken, deliver *)
              t.d_counts.delivered <- t.d_counts.delivered + 1;
              incr pos
            end
            else begin
              t.d_counts.drops <- t.d_counts.drops + 1;
              t.d_pending <-
                t.d_pending
                @ [
                    {
                      p_chan = ch;
                      p_wire = w;
                      p_ahead = !pos;
                      p_due = step + rto_ticks;
                      p_retx = true;
                    };
                  ];
              lst := remove_at !lst !pos
            end
          | Plan.Delay, Injected.Vanilla ->
            t.d_counts.delays <- t.d_counts.delays + 1;
            t.d_pending <-
              t.d_pending
              @ [
                  {
                    p_chan = ch;
                    p_wire = w;
                    p_ahead = -1;
                    p_due = step + delay_ticks;
                    p_retx = false;
                  };
                ];
            lst := remove_at !lst !pos
          | Plan.Delay, Injected.Hardened ->
            if gap_on t ch then begin
              t.d_counts.delivered <- t.d_counts.delivered + 1;
              incr pos
            end
            else begin
              t.d_counts.delays <- t.d_counts.delays + 1;
              t.d_pending <-
                t.d_pending
                @ [
                    {
                      p_chan = ch;
                      p_wire = w;
                      p_ahead = !pos;
                      p_due = step + delay_ticks;
                      p_retx = false;
                    };
                  ];
              lst := remove_at !lst !pos
            end)
        news;
      if !lst == a then st else set_chan st ch !lst)
    after chans

let waiting t ~step =
  t.d_pending <> []
  || List.exists
       (fun (w : Plan.window) -> w.w_start <= step && step < w.w_start + w.w_len)
       t.d_plan.Plan.windows
