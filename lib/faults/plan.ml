open Ccr_refine

type decision = Deliver | Drop | Dup | Delay

type event = {
  ev_kind : decision;
  ev_on : Fault.wire_filter;
  ev_chan : Fault.chan;
  ev_ord : int;
}

type window = { w_remote : int; w_start : int; w_len : int }

type t = {
  pn : int;
  events : event list;
  windows : window list;
  spec : Fault.spec;
}

let make ~n ?(windows = []) spec events = { pn = n; events; windows; spec }

let filter_index = function
  | Fault.Kany -> 0
  | Fault.Kreq -> 1
  | Fault.Kack -> 2
  | Fault.Knack -> 3

let random ~n ?(horizon = 12) ~seed (spec : Fault.spec) =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let used = Hashtbl.create 16 in
  let chan_of i = if i < n then Fault.To_h i else Fault.To_r (i - n) in
  let fresh_slot on =
    (* retry a few times for a slot no other event owns; collisions are
       harmless (first event wins) but waste budget *)
    let rec go tries =
      let ci = Random.State.int rng (2 * n) in
      let ord = 1 + Random.State.int rng horizon in
      let key = (ci, filter_index on, ord) in
      if Hashtbl.mem used key && tries < 64 then go (tries + 1)
      else begin
        Hashtbl.replace used key ();
        (chan_of ci, ord)
      end
    in
    go 0
  in
  let gen count kind on =
    List.init count (fun _ ->
        let ev_chan, ev_ord = fresh_slot on in
        { ev_kind = kind; ev_on = on; ev_chan; ev_ord })
  in
  let events =
    gen spec.drop Drop spec.drop_on
    @ gen spec.dup Dup spec.dup_on
    @ gen spec.delay Delay spec.delay_on
  in
  let windows =
    List.init spec.pause (fun _ ->
        let w_remote = Random.State.int rng n in
        let w_start = Random.State.int rng 200 in
        let w_len = 20 + Random.State.int rng 100 in
        { w_remote; w_start; w_len })
  in
  { pn = n; events; windows; spec }

let paused_at t i tick =
  List.exists
    (fun w -> w.w_remote = i && w.w_start <= tick && tick < w.w_start + w.w_len)
    t.windows

type cursor = int array (* (channel, filter) -> messages seen *)

let cursor t = Array.make (2 * t.pn * 4) 0

let decide t (cur : cursor) ch (w : Wire.t) =
  let ci = Fault.chan_index ~n:t.pn ch in
  (* advance every filter the message matches *)
  List.iter
    (fun f ->
      if Fault.matches f w then begin
        let idx = (ci * 4) + filter_index f in
        cur.(idx) <- cur.(idx) + 1
      end)
    [ Fault.Kany; Fault.Kreq; Fault.Kack; Fault.Knack ];
  let hit =
    List.find_opt
      (fun ev ->
        ev.ev_chan = ch
        && Fault.matches ev.ev_on w
        && cur.((ci * 4) + filter_index ev.ev_on) = ev.ev_ord)
      t.events
  in
  match hit with Some ev -> ev.ev_kind | None -> Deliver

let pp_decision ppf = function
  | Deliver -> Fmt.string ppf "deliver"
  | Drop -> Fmt.string ppf "drop"
  | Dup -> Fmt.string ppf "dup"
  | Delay -> Fmt.string ppf "delay"

let pp ppf t =
  Fmt.pf ppf "@[<v>spec %a@,%a%a@]" Fault.pp t.spec
    Fmt.(
      list ~sep:nop (fun ppf ev ->
          Fmt.pf ppf "%a msg #%d on %a@," pp_decision ev.ev_kind ev.ev_ord
            Fault.pp_chan ev.ev_chan))
    t.events
    Fmt.(
      list ~sep:nop (fun ppf w ->
          Fmt.pf ppf "pause r%d ticks [%d, %d)@," w.w_remote w.w_start
            (w.w_start + w.w_len)))
    t.windows
