open Ccr_refine

type wire_filter = Kany | Kreq | Kack | Knack

type chan = To_h of int | To_r of int

type spec = {
  drop : int;
  drop_on : wire_filter;
  dup : int;
  dup_on : wire_filter;
  delay : int;
  delay_on : wire_filter;
  pause : int;
}

let none =
  {
    drop = 0;
    drop_on = Kany;
    dup = 0;
    dup_on = Kany;
    delay = 0;
    delay_on = Kany;
    pause = 0;
  }

let total s = s.drop + s.dup + s.delay + s.pause
let is_none s = total s = 0

let filter_of_string = function
  | "any" -> Ok Kany
  | "req" -> Ok Kreq
  | "ack" -> Ok Kack
  | "nack" -> Ok Knack
  | f -> Error (Fmt.str "unknown message filter %S (any/req/ack/nack)" f)

let filter_name = function
  | Kany -> "any"
  | Kreq -> "req"
  | Kack -> "ack"
  | Knack -> "nack"

let parse s =
  let item acc part =
    match acc with
    | Error _ as e -> e
    | Ok spec -> (
      let kind, count, filt =
        match String.index_opt part '=' with
        | None -> (part, Error "missing =COUNT", Ok Kany)
        | Some i -> (
          let kind = String.sub part 0 i in
          let rest = String.sub part (i + 1) (String.length part - i - 1) in
          let countstr, filt =
            match String.index_opt rest '@' with
            | None -> (rest, Ok Kany)
            | Some j ->
              ( String.sub rest 0 j,
                filter_of_string
                  (String.sub rest (j + 1) (String.length rest - j - 1)) )
          in
          match int_of_string_opt countstr with
          | Some c when c >= 0 -> (kind, Ok c, filt)
          | _ -> (kind, Error (Fmt.str "bad count %S" countstr), filt))
      in
      match (count, filt) with
      | Error e, _ | _, Error e -> Error (Fmt.str "%s: %s" part e)
      | Ok c, Ok f -> (
        match kind with
        | "drop" -> Ok { spec with drop = c; drop_on = f }
        | "dup" -> Ok { spec with dup = c; dup_on = f }
        | "delay" -> Ok { spec with delay = c; delay_on = f }
        | "pause" ->
          if f <> Kany then
            Error "pause takes no message filter"
          else Ok { spec with pause = c }
        | k ->
          Error (Fmt.str "unknown fault kind %S (drop/dup/delay/pause)" k)))
  in
  String.split_on_char ',' (String.trim s)
  |> List.filter (fun p -> String.trim p <> "")
  |> List.map String.trim
  |> List.fold_left item (Ok none)

let pp ppf s =
  let part name c f =
    if c = 0 then None
    else if f = Kany then Some (Fmt.str "%s=%d" name c)
    else Some (Fmt.str "%s=%d@%s" name c (filter_name f))
  in
  let parts =
    List.filter_map Fun.id
      [
        part "drop" s.drop s.drop_on;
        part "dup" s.dup s.dup_on;
        part "delay" s.delay s.delay_on;
        (if s.pause = 0 then None else Some (Fmt.str "pause=%d" s.pause));
      ]
  in
  Fmt.string ppf (if parts = [] then "none" else String.concat "," parts)

let matches f (w : Wire.t) =
  match (f, w) with
  | Kany, _ -> true
  | Kreq, Wire.Req _ -> true
  | Kack, Wire.Ack -> true
  | Knack, Wire.Nack -> true
  | _ -> false

let pp_chan ppf = function
  | To_h i -> Fmt.pf ppf "r%d→h" i
  | To_r i -> Fmt.pf ppf "h→r%d" i

let chan_index ~n = function To_h i -> i | To_r i -> n + i

type counts = {
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable pauses : int;
  mutable retransmits : int;
  mutable absorbed : int;
  mutable delivered : int;
}

let zero () =
  {
    drops = 0;
    dups = 0;
    delays = 0;
    pauses = 0;
    retransmits = 0;
    absorbed = 0;
    delivered = 0;
  }

type fcounts = {
  f_drops : int;
  f_dups : int;
  f_delays : int;
  f_pauses : int;
  f_retransmits : int;
  f_absorbed : int;
  f_delivered : int;
}

let freeze c =
  {
    f_drops = c.drops;
    f_dups = c.dups;
    f_delays = c.delays;
    f_pauses = c.pauses;
    f_retransmits = c.retransmits;
    f_absorbed = c.absorbed;
    f_delivered = c.delivered;
  }

let injected f = f.f_drops + f.f_dups + f.f_delays + f.f_pauses

let pp_fcounts ppf f =
  Fmt.pf ppf
    "injected %d (%d drop, %d dup, %d delay, %d pause); %d retransmits, %d \
     absorbed, %d delivered clean"
    (injected f) f.f_drops f.f_dups f.f_delays f.f_pauses f.f_retransmits
    f.f_absorbed f.f_delivered
