open Ccr_core
open Ccr_refine
module Rv = Ccr_semantics.Rendezvous

type mode = Vanilla | Hardened

type budget = { b_drop : int; b_dup : int; b_delay : int; b_pause : int }

type fstate = {
  base : Async.state;
  left : budget;
  lost_h : Wire.t option array;
  lost_r : Wire.t option array;
  paused : bool array;
  wedged : string option;
}

type event =
  | Ev_drop of Fault.chan
  | Ev_dup of Fault.chan
  | Ev_delay of Fault.chan
  | Ev_retransmit of Fault.chan
  | Ev_pause of int
  | Ev_resume of int
  | Ev_wedge of string

type label = Step of Async.label | Fault of event

let set_arr a i x =
  let a' = Array.copy a in
  a'.(i) <- x;
  a'

(* ---- reassembly of global steps from the node-local rules -------------- *)

let send_to_r st j w =
  { st with Async.to_r = set_arr st.Async.to_r j (st.Async.to_r.(j) @ [ w ]) }

let send_to_h st i w =
  { st with Async.to_h = set_arr st.Async.to_h i (st.Async.to_h.(i) @ [ w ]) }

let apply_home st (l, h', outs) =
  ( l,
    List.fold_left
      (fun st (j, w) -> send_to_r st j w)
      { st with Async.h = h' }
      outs )

let apply_remote st i (l, r', outs) =
  ( l,
    List.fold_left
      (fun st w -> send_to_h st i w)
      { st with Async.r = set_arr st.Async.r i r' }
      outs )

let protocol_successors ?paused ?stalled_h ?stalled_r prog cfg
    (st : Async.state) =
  let n = Array.length st.Async.r in
  let flag a i = match a with None -> false | Some a -> a.(i) in
  let acc = ref [] and wedges = ref [] in
  let emit x = acc := x :: !acc in
  List.iter
    (fun o -> emit (apply_home st o))
    (Async.home_local prog cfg st.Async.h);
  for i = 0 to n - 1 do
    if not (flag paused i) then
      List.iter
        (fun o -> emit (apply_remote st i o))
        (Async.remote_local prog st.Async.r.(i) i)
  done;
  for i = 0 to n - 1 do
    (match st.Async.to_h.(i) with
    | w :: rest when not (flag stalled_h i) -> (
      let st' = { st with Async.to_h = set_arr st.Async.to_h i rest } in
      match Async.home_recv prog cfg st.Async.h i w with
      | outs -> List.iter (fun o -> emit (apply_home st' o)) outs
      | exception Async.Protocol_error e ->
        wedges := (Fault.To_h i, Fmt.str "home ← r%d: %s" i e) :: !wedges)
    | _ -> ());
    if not (flag paused i) then
      match st.Async.to_r.(i) with
      | w :: rest when not (flag stalled_r i) -> (
        let st' = { st with Async.to_r = set_arr st.Async.to_r i rest } in
        match Async.remote_recv prog st.Async.r.(i) i w with
        | outs -> List.iter (fun o -> emit (apply_remote st' i o)) outs
        | exception Async.Protocol_error e ->
          wedges := (Fault.To_r i, Fmt.str "r%d ← home: %s" i e) :: !wedges)
      | _ -> ()
  done;
  (List.rev !acc, List.rev !wedges)

(* ---- fault transitions -------------------------------------------------- *)

let initial (spec : Fault.spec) prog cfg =
  let st = Async.initial prog cfg in
  let n = Array.length st.Async.r in
  {
    base = st;
    left =
      {
        b_drop = spec.drop;
        b_dup = spec.dup;
        b_delay = spec.delay;
        b_pause = spec.pause;
      };
    lost_h = Array.make n None;
    lost_r = Array.make n None;
    paused = Array.make n false;
    wedged = None;
  }

let chan_head st = function
  | Fault.To_h i -> (
    match st.Async.to_h.(i) with w :: rest -> Some (w, rest) | [] -> None)
  | Fault.To_r i -> (
    match st.Async.to_r.(i) with w :: rest -> Some (w, rest) | [] -> None)

let set_chan st ch l =
  match ch with
  | Fault.To_h i -> { st with Async.to_h = set_arr st.Async.to_h i l }
  | Fault.To_r i -> { st with Async.to_r = set_arr st.Async.to_r i l }

let get_chan st = function
  | Fault.To_h i -> st.Async.to_h.(i)
  | Fault.To_r i -> st.Async.to_r.(i)

let lost fs = function
  | Fault.To_h i -> fs.lost_h.(i)
  | Fault.To_r i -> fs.lost_r.(i)

let set_lost fs ch v =
  match ch with
  | Fault.To_h i -> { fs with lost_h = set_arr fs.lost_h i v }
  | Fault.To_r i -> { fs with lost_r = set_arr fs.lost_r i v }

let fault_transitions mode (spec : Fault.spec) fs =
  let n = Array.length fs.base.Async.r in
  let chans =
    List.init n (fun i -> Fault.To_h i) @ List.init n (fun i -> Fault.To_r i)
  in
  let acc = ref [] in
  let emit x = acc := x :: !acc in
  if fs.left.b_drop > 0 then
    List.iter
      (fun ch ->
        match chan_head fs.base ch with
        | Some (w, rest) when Fault.matches spec.drop_on w -> (
          let left = { fs.left with b_drop = fs.left.b_drop - 1 } in
          match mode with
          | Vanilla ->
            emit
              ( Fault (Ev_drop ch),
                { fs with base = set_chan fs.base ch rest; left } )
          | Hardened ->
            (* one outstanding gap per channel: the transport retransmits
               in order, so a second loss waits for the first *)
            if lost fs ch = None then
              emit
                ( Fault (Ev_drop ch),
                  set_lost
                    { fs with base = set_chan fs.base ch rest; left }
                    ch (Some w) ))
        | _ -> ())
      chans;
  if fs.left.b_dup > 0 then
    List.iter
      (fun ch ->
        match chan_head fs.base ch with
        | Some (w, rest) when Fault.matches spec.dup_on w -> (
          let left = { fs.left with b_dup = fs.left.b_dup - 1 } in
          match mode with
          | Vanilla ->
            emit
              ( Fault (Ev_dup ch),
                { fs with base = set_chan fs.base ch (w :: w :: rest); left }
              )
          | Hardened ->
            (* sequence-number dedup absorbs the duplicate instantly *)
            emit (Fault (Ev_dup ch), { fs with left }))
        | _ -> ())
      chans;
  if fs.left.b_delay > 0 then
    List.iter
      (fun ch ->
        match chan_head fs.base ch with
        | Some (w, rest) when Fault.matches spec.delay_on w -> (
          let left = { fs.left with b_delay = fs.left.b_delay - 1 } in
          match mode with
          | Vanilla ->
            (* reorder the head past the rest of its channel *)
            if rest <> [] then
              emit
                ( Fault (Ev_delay ch),
                  { fs with base = set_chan fs.base ch (rest @ [ w ]); left }
                )
          | Hardened ->
            (* resequencing turns a delayed head into a gap until the
               late frame (or its retransmission) arrives *)
            if lost fs ch = None then
              emit
                ( Fault (Ev_delay ch),
                  set_lost
                    { fs with base = set_chan fs.base ch rest; left }
                    ch (Some w) ))
        | _ -> ())
      chans;
  List.iter
    (fun ch ->
      match lost fs ch with
      | Some w ->
        let refilled = set_chan fs.base ch (w :: get_chan fs.base ch) in
        emit (Fault (Ev_retransmit ch), set_lost { fs with base = refilled } ch None)
      | None -> ())
    chans;
  if fs.left.b_pause > 0 then
    for i = 0 to n - 1 do
      if not fs.paused.(i) then
        emit
          ( Fault (Ev_pause i),
            {
              fs with
              left = { fs.left with b_pause = fs.left.b_pause - 1 };
              paused = set_arr fs.paused i true;
            } )
    done;
  for i = 0 to n - 1 do
    if fs.paused.(i) then
      emit (Fault (Ev_resume i), { fs with paused = set_arr fs.paused i false })
  done;
  List.rev !acc

let successors ?(faults = true) mode spec prog cfg fs =
  if fs.wedged <> None then []
  else begin
    let stalled_h = Array.map Option.is_some fs.lost_h in
    let stalled_r = Array.map Option.is_some fs.lost_r in
    let steps, wedges =
      protocol_successors ~paused:fs.paused ~stalled_h ~stalled_r prog cfg
        fs.base
    in
    let acc = List.map (fun (l, st') -> (Step l, { fs with base = st' })) steps in
    let acc =
      acc
      @ List.map
          (fun (_, msg) ->
            (Fault (Ev_wedge msg), { fs with wedged = Some msg }))
          wedges
    in
    if faults then acc @ fault_transitions mode spec fs else acc
  end

(* ---- encoding and invariants ------------------------------------------- *)

let encode fs =
  let b = Buffer.create 128 in
  Buffer.add_string b (Async.encode fs.base);
  Buffer.add_char b '\xfd';
  Value.encode_int b fs.left.b_drop;
  Value.encode_int b fs.left.b_dup;
  Value.encode_int b fs.left.b_delay;
  Value.encode_int b fs.left.b_pause;
  let enc_lost o =
    match o with
    | None -> Buffer.add_char b 'n'
    | Some w ->
      Buffer.add_char b 'l';
      Wire.encode b w
  in
  Array.iter enc_lost fs.lost_h;
  Array.iter enc_lost fs.lost_r;
  Array.iter (fun p -> Buffer.add_char b (if p then 'P' else '.')) fs.paused;
  (match fs.wedged with
  | None -> ()
  | Some m ->
    Buffer.add_char b 'W';
    Buffer.add_string b m);
  Buffer.contents b

(* Collapse-store splitter: the async boundaries of the prefix (the fault
   markers after [\xfd] never look like async state bytes to the parser —
   the async part is self-delimiting, so the parse stops exactly at the
   marker) plus one trailing component holding all fault bookkeeping. *)
let split_key prog key =
  let base = Async.split_key prog key in
  let bounds = Array.make (Array.length base + 1) 0 in
  Array.blit base 0 bounds 0 (Array.length base);
  bounds.(Array.length base) <- String.length key;
  bounds

let no_wedge = ("no_protocol_error", fun fs -> fs.wedged = None)
let lift_invariant (name, f) = (name, fun fs -> f fs.base)

let completes (l : Async.label) =
  match l.rule with
  | Async.H_C1 | Async.H_C1_silent | Async.H_T1_repl | Async.R_C3_ack
  | Async.R_C3_silent | Async.R_repl_recv ->
    true
  | _ -> false

let pp_event ppf = function
  | Ev_drop ch -> Fmt.pf ppf "fault: drop head of %a" Fault.pp_chan ch
  | Ev_dup ch -> Fmt.pf ppf "fault: duplicate head of %a" Fault.pp_chan ch
  | Ev_delay ch -> Fmt.pf ppf "fault: delay head of %a" Fault.pp_chan ch
  | Ev_retransmit ch -> Fmt.pf ppf "retransmit refills %a" Fault.pp_chan ch
  | Ev_pause i -> Fmt.pf ppf "fault: pause r%d" i
  | Ev_resume i -> Fmt.pf ppf "resume r%d" i
  | Ev_wedge m -> Fmt.pf ppf "protocol error: %s" m

let pp_label ppf = function
  | Step l -> Async.pp_label ppf l
  | Fault e -> pp_event ppf e

let pp_fstate prog ppf fs =
  let extras =
    List.concat
      [
        (let b = fs.left in
         if b.b_drop + b.b_dup + b.b_delay + b.b_pause = 0 then []
         else
           [
             Fmt.str "budget left: drop=%d dup=%d delay=%d pause=%d" b.b_drop
               b.b_dup b.b_delay b.b_pause;
           ]);
        List.concat
          (List.init (Array.length fs.lost_h) (fun i ->
               match fs.lost_h.(i) with
               | Some w -> [ Fmt.str "gap on r%d→h: %a" i Wire.pp w ]
               | None -> []));
        List.concat
          (List.init (Array.length fs.lost_r) (fun i ->
               match fs.lost_r.(i) with
               | Some w -> [ Fmt.str "gap on h→r%d: %a" i Wire.pp w ]
               | None -> []));
        List.concat
          (List.init (Array.length fs.paused) (fun i ->
               if fs.paused.(i) then [ Fmt.str "r%d paused" i ] else []));
        (match fs.wedged with
        | Some m -> [ "WEDGED: " ^ m ]
        | None -> []);
      ]
  in
  if extras = [] then Async.pp_state prog ppf fs.base
  else
    Fmt.pf ppf "@[<v>%a@,[%s]@]" (Async.pp_state prog) fs.base
      (String.concat "; " extras)

(* ---- rendezvous level: pause faults only -------------------------------- *)

type rv_fstate = {
  rv_base : Rv.state;
  rv_left : int;
  rv_paused : bool array;
}

type rv_label =
  | Rv_step of Rv.label
  | Rv_pause of int
  | Rv_resume of int

let rv_initial (spec : Fault.spec) (prog : Prog.t) =
  {
    rv_base = Rv.initial prog;
    rv_left = spec.pause;
    rv_paused = Array.make prog.n false;
  }

let rv_involves_paused paused (l : Rv.label) =
  let p = function Rv.Ph -> false | Rv.Pr i -> paused.(i) in
  match l with
  | Rv.L_tau (pid, _) -> p pid
  | Rv.L_rendezvous { active; passive; _ } -> p active || p passive

let rv_successors prog fs =
  let steps =
    Rv.successors prog fs.rv_base
    |> List.filter (fun (l, _) -> not (rv_involves_paused fs.rv_paused l))
    |> List.map (fun (l, st') -> (Rv_step l, { fs with rv_base = st' }))
  in
  let n = Array.length fs.rv_paused in
  let acc = ref [] in
  if fs.rv_left > 0 then
    for i = 0 to n - 1 do
      if not fs.rv_paused.(i) then
        acc :=
          ( Rv_pause i,
            {
              fs with
              rv_left = fs.rv_left - 1;
              rv_paused = set_arr fs.rv_paused i true;
            } )
          :: !acc
    done;
  for i = 0 to n - 1 do
    if fs.rv_paused.(i) then
      acc :=
        (Rv_resume i, { fs with rv_paused = set_arr fs.rv_paused i false })
        :: !acc
  done;
  steps @ List.rev !acc

let rv_encode fs =
  let b = Buffer.create 64 in
  Buffer.add_string b (Rv.encode fs.rv_base);
  Buffer.add_char b '\xfd';
  Value.encode_int b fs.rv_left;
  Array.iter (fun p -> Buffer.add_char b (if p then 'P' else '.')) fs.rv_paused;
  Buffer.contents b

let pp_rv_label ppf = function
  | Rv_step l -> Rv.pp_label ppf l
  | Rv_pause i -> Fmt.pf ppf "fault: pause r%d" i
  | Rv_resume i -> Fmt.pf ppf "resume r%d" i

let pp_rv_fstate prog ppf fs =
  let extras =
    (if fs.rv_left > 0 then [ Fmt.str "pause budget left: %d" fs.rv_left ]
     else [])
    @ List.concat
        (List.init (Array.length fs.rv_paused) (fun i ->
             if fs.rv_paused.(i) then [ Fmt.str "r%d paused" i ] else []))
  in
  if extras = [] then Rv.pp_state prog ppf fs.rv_base
  else
    Fmt.pf ppf "@[<v>%a@,[%s]@]" (Rv.pp_state prog) fs.rv_base
      (String.concat "; " extras)
