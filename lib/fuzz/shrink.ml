open Gen

(* Replace element [i] of [l] by [f (List.nth l i)]. *)
let map_nth i f l = List.mapi (fun j x -> if i = j then f x else x) l

let drop_nth i l = List.filteri (fun j _ -> j <> i) l

let candidates (s : spec) : spec list =
  let txn_ops (t : txn) =
    (if t.t_pause then [ { t with t_pause = false } ] else [])
    @ (if t.t_detour then [ { t with t_detour = false } ] else [])
    @ if t.t_arity > 0 then [ { t with t_arity = t.t_arity - 1 } ] else []
  in
  let own_ops (o : own) =
    (if o.o_evict then [ { o with o_evict = false } ] else [])
    @ (if o.o_detour then [ { o with o_detour = false } ] else [])
    @ if o.o_arity > 0 then [ { o with o_arity = o.o_arity - 1 } ] else []
  in
  List.concat
    [
      (* structure first: dropping a whole transaction shrinks fastest *)
      List.mapi (fun i _ -> { s with txns = drop_nth i s.txns }) s.txns;
      (match s.own with None -> [] | Some _ -> [ { s with own = None } ]);
      (* then the per-transaction knobs *)
      List.concat
        (List.mapi
           (fun i t ->
             List.map
               (fun t' -> { s with txns = map_nth i (fun _ -> t') s.txns })
               (txn_ops t))
           s.txns);
      (match s.own with
      | None -> []
      | Some o -> List.map (fun o' -> { s with own = Some o' }) (own_ops o));
      (* finally the instance parameters *)
      (if s.n > 1 then [ { s with n = s.n - 1 } ] else []);
      (if s.k > 2 then [ { s with k = s.k - 1 } ] else []);
      (if s.reqrep then [ { s with reqrep = false } ] else []);
    ]
  |> List.filter valid

let minimize ~fails spec =
  match fails spec with
  | None -> invalid_arg "Shrink.minimize: the initial spec does not fail"
  | Some why ->
    let rec go spec why =
      let rec first = function
        | [] -> (spec, why)
        | c :: rest -> (
          match fails c with
          | Some why' -> go c why'
          | None -> first rest)
      in
      first (candidates spec)
    in
    go spec why
