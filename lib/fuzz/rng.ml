(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): one mutable 64-bit
   word, a fixed odd gamma, and a finalizing mixer.  Chosen over
   [Random.State] because its output is specified bit-for-bit — repro
   seeds stored in the corpus must survive compiler and stdlib
   upgrades. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state gamma;
  mix64 t.state

let make seed =
  (* pre-mix the seed so consecutive integers give uncorrelated streams *)
  { state = mix64 (Int64.of_int seed) }

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* 62 non-negative bits modulo the bound ([max_int] is 2^62 - 1 on a
     64-bit host); the modulo bias is < 2^-50 for the tiny bounds used
     in spec generation *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))
