(** Valid-by-construction star-protocol specs and their generator.

    A {!spec} describes a protocol in the generalized fuzz family:

    - {e remote-initiated transactions} ([txns]): the remote sends [aI]
      (payload arity 0–2) and waits for the home's reply [bI], optionally
      pausing between the two (which defeats the request/reply analysis)
      while the home may take an internal detour before replying — the
      family of the original [test/suite_random.ml];
    - at most one {e ownership transaction} ([own]): the remote acquires
      a grant ([acq]/[gr]) and holds it in a passive state until the home
      revokes it with a {e home-initiated} rendezvous ([inv]/[ID], the
      migratory pattern) on behalf of a second acquirer, optionally
      racing a spontaneous [tau] eviction ([LR]).  This puts the home in
      a second hub state ([E]) from which all other transactions are also
      served, so generated systems exercise home-initiated request/reply
      pairs, multiple home hub states, and crossing-request races that
      the original family never reached.

    Every spec in {!valid} builds ({!build}) into a system that passes
    {!Ccr_core.Validate.check} and is deadlock-free at the rendezvous
    level by construction; the differential oracles ({!Oracle}) then hold
    the whole refinement pipeline to that promise. *)

open Ccr_core

type txn = {
  t_pause : bool;  (** remote taus between send and wait (not a pair) *)
  t_arity : int;  (** 0, 1 or 2 payload values on both messages *)
  t_detour : bool;  (** home taus before replying *)
}

type own = {
  o_arity : int;  (** payload on [acq] and [gr] *)
  o_evict : bool;  (** holder may spontaneously evict ([tau]; sends [LR]) *)
  o_detour : bool;  (** home taus before the first grant *)
}

type spec = {
  txns : txn list;
  own : own option;
  n : int;  (** remote nodes, 1–4 *)
  k : int;  (** home buffer capacity, 2–4 *)
  reqrep : bool;  (** apply the §3.3 request/reply optimization *)
}

type family =
  | Legacy
      (** the original [suite_random.ml] knobs: 1–3 remote-initiated
          transactions, no ownership, n ∈ 1–2, k ∈ 2–3 *)
  | General  (** the full family above: n ∈ 1–4, k ∈ 2–4, ownership *)

val valid : spec -> bool
(** Structural constraints: at least one transaction, arities in 0–2,
    [n >= 1], [k >= 2], and — since a holder that can neither evict nor
    be revoked deadlocks the n=1 system — [own] without eviction
    requires [n >= 2]. *)

val generate : family:family -> Rng.t -> spec
(** Draw a spec from the family; always {!valid}. *)

val build : spec -> Ir.system
val compile : spec -> Prog.t
(** [Link.compile ~reqrep ~n] of {!build}. *)

val size : spec -> int
(** Structural size; every {!Shrink} step strictly decreases it. *)

val pp : spec Fmt.t

val spec_to_string : spec -> string
(** Compact machine-readable form, e.g.
    ["n=2 k=3 reqrep=t own=1tf txns=2tf,0ff"] ([own] is [-] when absent;
    each coded triple is arity digit, then [t]/[f] for the two flags). *)

val spec_of_string : string -> (spec, string) result
(** Inverse of {!spec_to_string}. *)

(** {2 Committed repro files}

    A shrunk counterexample is written as a parseable [.ccr] file whose
    header comments carry everything needed to re-run the oracles: the
    failing case seed, the oracle name, and the spec line. *)

val to_ccr : seed:int -> oracle:string -> detail:string -> spec -> string

val of_ccr : string -> (int * string * spec, string) result
(** Parse a repro file's contents back to (seed, oracle, spec). *)
