(** Splittable seeded PRNG (SplitMix64).

    Every fuzz case is reproducible from a single integer: the generator
    state is one 64-bit word advanced by a fixed odd gamma and finalized
    by an avalanching mixer, so the stream depends only on the seed — not
    on platform word size, hash randomization, or any global state.
    [split] forks an independent stream (seeded from the parent's next
    output), letting sub-generators draw without perturbing the parent's
    sequence. *)

type t

val make : int -> t
(** A fresh stream seeded by [seed].  Equal seeds give equal streams. *)

val split : t -> t
(** An independent child stream; advances the parent by one draw. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from [lo, hi] inclusive. *)

val bool : t -> bool

val choose : t -> 'a list -> 'a
(** Uniform pick.  @raise Invalid_argument on the empty list. *)
