(** The fuzz campaign driver behind [ccr fuzz].

    Case [i] of a campaign is reproducible from the single integer
    [seed + i]: the spec is drawn from {!Rng.make}[ (seed + i)], so
    re-running with [--seed (seed + i) --count 1] regenerates the same
    spec, the same oracle verdicts, and — through the deterministic
    {!Shrink} — the same shrunk [.ccr] byte for byte. *)

open Ccr_refine

type failure = {
  f_seed : int;  (** the failing case's own seed *)
  f_spec : Gen.spec;  (** as generated *)
  f_oracle : string;  (** first failing oracle on the generated spec *)
  f_detail : string;
  f_shrunk : Gen.spec;  (** local minimum reached by {!Shrink} *)
  f_shrunk_oracle : string;  (** failing oracle at the minimum *)
  f_shrunk_detail : string;
  f_ccr : string;  (** repro file contents ({!Gen.to_ccr} of the minimum) *)
}

type report = {
  seed : int;
  count : int;
  max_states : int;
  oracles : Oracle.name list;
  passes : (Oracle.name * int) list;
  fails : (Oracle.name * int) list;
  failures : failure list;
  coverage : int array;  (** per-{!Async.all_rules} transition counts *)
  legacy_coverage : int array option;
      (** same case seeds through the Legacy family, async oracle only *)
}

val run :
  ?only:Oracle.name list ->
  ?legacy_matrix:bool ->
  ?metrics:Ccr_obs.Metrics.t ->
  ?on_case:(int -> unit) ->
  seed:int ->
  count:int ->
  max_states:int ->
  unit ->
  report
(** Run the campaign.  [legacy_matrix] (default [true]) additionally
    runs each case seed through the {!Gen.Legacy} family to produce the
    before/after rule-coverage matrix.  [metrics] (default none) mirrors
    the campaign into a {!Ccr_obs.Metrics} registry: [fuzz.cases],
    per-oracle [fuzz.pass.*]/[fuzz.fail.*] counters, and per-rule
    [fuzz.rule.general.*] / [fuzz.rule.legacy.*] counters.  [on_case]
    is called with each finished case index. *)

val newly_covered : report -> Async.rule_id list
(** Rules with transitions in the generalized family's coverage but none
    in the legacy baseline (empty without [legacy_matrix]). *)

val write_failures : out_dir:string -> report -> string list
(** Write each failure's repro under [out_dir] as
    [seed-<S>-<oracle>.ccr]; creates the directory, returns the paths. *)

val pp : ?matrix:bool -> Format.formatter -> report -> unit
(** The CLI report: per-oracle pass/fail table, the Tables 1–2 coverage
    matrix (with newly exercised rows flagged), and shrunk failures.
    Contains no timings, so output is deterministic in the seed.
    [matrix] (default [true]) controls the coverage section; pass
    [false] when coverage was not collected (e.g. the [Async_explore]
    oracle was excluded). *)
