(** The differential oracle battery.

    Every generated spec is valid by construction, so each oracle states
    a property the refinement pipeline must satisfy on it — a failure is
    a bug in the pipeline (or in the generator's validity argument), and
    is handed to {!Shrink}:

    - [Validate]: the built system passes {!Ccr_core.Validate.check};
    - [Roundtrip]: pretty-printing to the [.ccr] syntax and re-parsing
      yields a structurally identical {!Ccr_core.Ir.system};
    - [Rv]: rendezvous-level exploration finds no deadlock;
    - [Async]: refined-level exploration finds no deadlock and no
      {!Ccr_refine.Async.Protocol_error};
    - [Eq1]: the §4 stuttering simulation (Equation 1) holds;
    - [Symmetry]: the fast and brute-force symmetry quotients agree, and
      are no larger than the full space;
    - [Par]: the 4-domain parallel explorer reports the same state and
      transition counts as the sequential one;
    - [Faults]: under a one-drop budget the hardened transport stays
      safe — no wedge, no deadlock;
    - [Store]: the collapse-compressed and disk-backed visited stores
      report the same state and transition counts as the exact in-memory
      store (sequentially even under a state cap — the discovery order
      is shared — and with a tiny spill buffer forcing the disk
      read-back path; in parallel with 2 domains when the baseline
      completed);
    - [Engine]: a budgeted traced run of the loop engine
      ({!Ccr_runtime.Engine}) replays label-for-label through
      {!Ccr_refine.Async.successors} — every transition the compiled
      microcode tables execute must be one the interpreter offers from
      the same configuration (strictly stronger than label-count
      agreement with the simulator, which draws from that same successor
      function), the completing-label count must match the reported
      rendezvous, a reported quiescence must be a real quiescent
      configuration, and the trace must be deterministic in the seed;
    - [Resume]: interrupting the refined-level exploration halfway with
      a state cap, checkpointing it ({!Ccr_modelcheck.Ckpt}) to a
      temporary directory, reloading the file, and resuming reproduces
      the uninterrupted run's states, transitions and outcome exactly;
    - [Serve]: round-tripping the spec through a live in-process
      [ccr serve] daemon ({!Ccr_serve.Daemon}) as an inline [.ccr] body
      yields a verdict byte-identical to the in-process
      {!Ccr_serve.Api.check} — cold, and again warm, where a cacheable
      verdict must additionally be answered from the result cache.

    All explorations are capped at [max_states]; hitting the cap passes
    the oracle (the budget bounds work, it is not a verdict). *)

open Ccr_refine

type name =
  | Validate
  | Roundtrip
  | Rv
  | Async_explore
  | Eq1
  | Symmetry
  | Par
  | Faults
  | Store
  | Engine
  | Resume
  | Serve

val all : name list
val name_to_string : name -> string
val name_of_string : string -> (name, string) result

type outcome = Pass | Fail of string

type result = { oracle : name; outcome : outcome }

val n_rules : int
val rule_index : Async.rule_id -> int
(** Dense index into a coverage array, aligned with {!Async.all_rules}. *)

val run_battery :
  ?only:name list ->
  ?rules:int array ->
  max_states:int ->
  Gen.spec ->
  result list
(** Run the oracles in the fixed order of {!all} (restricted to [only]).
    [rules] (length {!n_rules}) accumulates per-rule transition counts
    enumerated during the [Async_explore] oracle — the Tables 1–2
    coverage matrix.  Compilation and the asynchronous exploration are
    shared across oracles, so the battery costs a handful of capped
    explorations per spec.  Any exception an oracle raises is folded
    into its [Fail]. *)

val failures : result list -> (name * string) list

val coverage_of_spec :
  ?rules:int array -> max_states:int -> Gen.spec -> unit
(** Just the [Async_explore] rule accounting, for coverage baselines. *)
