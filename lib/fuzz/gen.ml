open Ccr_core

type txn = { t_pause : bool; t_arity : int; t_detour : bool }
type own = { o_arity : int; o_evict : bool; o_detour : bool }

type spec = {
  txns : txn list;
  own : own option;
  n : int;
  k : int;
  reqrep : bool;
}

type family = Legacy | General

let valid s =
  s.n >= 1 && s.k >= 2
  && (s.txns <> [] || s.own <> None)
  && List.for_all (fun t -> t.t_arity >= 0 && t.t_arity <= 2) s.txns
  && (match s.own with
     | None -> true
     | Some o -> o.o_arity >= 0 && o.o_arity <= 2 && (o.o_evict || s.n >= 2))

(* ---- generation --------------------------------------------------------- *)

let gen_txn r =
  { t_pause = Rng.bool r; t_arity = Rng.int r 3; t_detour = Rng.bool r }

let generate ~family r =
  match family with
  | Legacy ->
    let txns = List.init (Rng.range r 1 3) (fun _ -> gen_txn r) in
    let n = Rng.range r 1 2 in
    let k = Rng.range r 2 3 in
    let reqrep = Rng.bool r in
    { txns; own = None; n; k; reqrep }
  | General ->
    let own =
      if Rng.bool r then
        Some
          {
            o_arity = Rng.int r 3;
            o_evict = Rng.bool r;
            o_detour = Rng.bool r;
          }
      else None
    in
    let lo = if own = None then 1 else 0 in
    let txns = List.init (Rng.range r lo 3) (fun _ -> gen_txn r) in
    let n = Rng.range r 1 4 in
    let k = Rng.range r 2 4 in
    let reqrep = Rng.bool r in
    (* an unevictable holder deadlocks the 1-remote system: nobody is
       left to trigger the revocation *)
    let own =
      match own with
      | Some o when n = 1 -> Some { o with o_evict = true }
      | o -> o
    in
    { txns; own; n; k; reqrep }

(* ---- building the Ir.system --------------------------------------------- *)

let build (s : spec) : Ir.system =
  let open Dsl in
  let tn i = string_of_int i in
  let pv arity = List.init arity (fun p -> Fmt.str "p%d" p) in
  let self_args arity = List.init arity (fun _ -> self) in
  (* one reply chain per (hub, transaction): the hub's recv jumps to a
     detour or directly to the granting state, which returns to the hub *)
  let serve_guard ~hub i (t : txn) =
    recv_any "c" ("a" ^ tn i) (pv t.t_arity)
      ~goto:((if t.t_detour then "D" else "G") ^ hub ^ tn i)
  in
  let serve_states ~hub goto_hub =
    List.concat
      (List.mapi
         (fun i (t : txn) ->
           let g =
             state ("G" ^ hub ^ tn i)
               [
                 send_to (v "c") ("b" ^ tn i)
                   (List.map v (pv t.t_arity))
                   ~goto:goto_hub;
               ]
           in
           if t.t_detour then
             [
               state ("D" ^ hub ^ tn i)
                 [ tau ("d" ^ hub ^ tn i) ~goto:("G" ^ hub ^ tn i) ];
               g;
             ]
           else [ g ])
         s.txns)
  in
  let home =
    let vars =
      ("c", Value.Drid)
      :: (if s.own <> None then [ ("o", Value.Drid) ] else [])
      @ List.map (fun p -> (p, Value.Drid)) (pv 2)
    in
    let hub_u =
      state "U"
        (List.mapi (serve_guard ~hub:"U") s.txns
        @
        match s.own with
        | None -> []
        | Some o ->
          [
            recv_any "c" "acq" (pv o.o_arity)
              ~goto:(if o.o_detour then "DA" else "GA");
          ])
    in
    let own_states =
      match s.own with
      | None -> []
      | Some o ->
        let grant name ~goto =
          state name
            [
              send_to (v "c") "gr"
                (List.map v (pv o.o_arity))
                ~assigns:[ ("o", v "c") ] ~goto;
            ]
        in
        (if o.o_detour then [ state "DA" [ tau "da" ~goto:"GA" ] ] else [])
        @ [
            grant "GA" ~goto:"E";
            state "E"
              ((if o.o_evict then
                  [ recv_from (v "o") "LR" [] ~goto:"U" ]
                else [])
              @ [ recv_any "c" "acq" (pv o.o_arity) ~goto:"I1" ]
              @ List.mapi (serve_guard ~hub:"E") s.txns);
            state "I1"
              (send_to (v "o") "inv" [] ~goto:"I2"
              ::
              (if o.o_evict then
                 [ recv_from (v "o") "LR" [] ~goto:"I3" ]
               else []));
            state "I2" [ recv_from (v "o") "ID" [] ~goto:"I3" ];
            grant "I3" ~goto:"E";
          ]
        @ serve_states ~hub:"E" "E"
    in
    process "home" ~vars ~init:"U"
      ((hub_u :: serve_states ~hub:"U" "U") @ own_states)
  in
  let remote =
    let vars = List.map (fun p -> (p, Value.Drid)) (pv 2) in
    let picks =
      List.mapi (fun i (_ : txn) -> tau ("pick" ^ tn i) ~goto:("S" ^ tn i))
        s.txns
      @
      match s.own with
      | None -> []
      | Some _ -> [ tau "pickacq" ~goto:"SA" ]
    in
    let txn_states =
      List.concat
        (List.mapi
           (fun i (t : txn) ->
             let send =
               state ("S" ^ tn i)
                 [
                   send_home ("a" ^ tn i) (self_args t.t_arity)
                     ~goto:((if t.t_pause then "P" else "W") ^ tn i);
                 ]
             in
             let wait =
               state ("W" ^ tn i)
                 [ recv_home ("b" ^ tn i) (pv t.t_arity) ~goto:"T" ]
             in
             if t.t_pause then
               [
                 send;
                 state ("P" ^ tn i) [ tau ("z" ^ tn i) ~goto:("W" ^ tn i) ];
                 wait;
               ]
             else [ send; wait ])
           s.txns)
    in
    let own_states =
      match s.own with
      | None -> []
      | Some o ->
        [
          state "SA"
            [ send_home "acq" (self_args o.o_arity) ~goto:"WA" ];
          state "WA" [ recv_home "gr" (pv o.o_arity) ~goto:"V" ];
          state "V"
            ((if o.o_evict then [ tau "evict" ~goto:"EV" ] else [])
            @ [ recv_home "inv" [] ~goto:"IV" ]);
        ]
        @ (if o.o_evict then
             [ state "EV" [ send_home "LR" [] ~goto:"T" ] ]
           else [])
        @ [ state "IV" [ send_home "ID" [] ~goto:"T" ] ]
    in
    process "remote" ~vars ~init:"T" ((state "T" picks :: txn_states) @ own_states)
  in
  system "fuzz" ~home ~remote

let compile s = Link.compile ~reqrep:s.reqrep ~n:s.n (build s)

let size s =
  let txn t =
    (2 + t.t_arity) + (if t.t_pause then 1 else 0)
    + if t.t_detour then 1 else 0
  in
  List.fold_left (fun acc t -> acc + txn t) 0 s.txns
  + (match s.own with
    | None -> 0
    | Some o ->
      (3 + o.o_arity) + (if o.o_evict then 1 else 0)
      + if o.o_detour then 1 else 0)
  + s.n + s.k
  + if s.reqrep then 1 else 0

(* ---- printing and parsing ------------------------------------------------ *)

let pp ppf s =
  Fmt.pf ppf "{n=%d k=%d reqrep=%b own=%s txns=[%s]}" s.n s.k s.reqrep
    (match s.own with
    | None -> "none"
    | Some o ->
      Fmt.str "arity=%d evict=%b detour=%b" o.o_arity o.o_evict o.o_detour)
    (String.concat "; "
       (List.map
          (fun t ->
            Fmt.str "pause=%b arity=%d detour=%b" t.t_pause t.t_arity
              t.t_detour)
          s.txns))

let flag b = if b then 't' else 'f'

let spec_to_string s =
  let triple a b c = Fmt.str "%d%c%c" a (flag b) (flag c) in
  Fmt.str "n=%d k=%d reqrep=%c own=%s txns=%s" s.n s.k (flag s.reqrep)
    (match s.own with
    | None -> "-"
    | Some o -> triple o.o_arity o.o_evict o.o_detour)
    (if s.txns = [] then "-"
     else
       String.concat ","
         (List.map (fun t -> triple t.t_arity t.t_pause t.t_detour) s.txns))

let spec_of_string str =
  let ( let* ) = Result.bind in
  let parse_flag = function
    | 't' -> Ok true
    | 'f' -> Ok false
    | c -> Error (Fmt.str "bad flag %C" c)
  in
  let parse_triple t =
    if String.length t <> 3 || t.[0] < '0' || t.[0] > '9' then
      Error (Fmt.str "bad triple %S" t)
    else
      let* b = parse_flag t.[1] in
      let* c = parse_flag t.[2] in
      Ok (Char.code t.[0] - Char.code '0', b, c)
  in
  let field key =
    let fields =
      List.filter_map
        (fun f ->
          match String.index_opt f '=' with
          | Some i ->
            Some
              ( String.sub f 0 i,
                String.sub f (i + 1) (String.length f - i - 1) )
          | None -> None)
        (String.split_on_char ' ' (String.trim str))
    in
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Fmt.str "missing field %s=" key)
  in
  let* n = field "n" in
  let* k = field "k" in
  let* rr = field "reqrep" in
  let* ow = field "own" in
  let* tx = field "txns" in
  let* n =
    match int_of_string_opt n with
    | Some n -> Ok n
    | None -> Error "bad n"
  in
  let* k =
    match int_of_string_opt k with
    | Some k -> Ok k
    | None -> Error "bad k"
  in
  let* reqrep =
    if String.length rr = 1 then parse_flag rr.[0] else Error "bad reqrep"
  in
  let* own =
    if ow = "-" then Ok None
    else
      let* a, e, d = parse_triple ow in
      Ok (Some { o_arity = a; o_evict = e; o_detour = d })
  in
  let* txns =
    if tx = "-" then Ok []
    else
      List.fold_right
        (fun t acc ->
          let* acc = acc in
          let* a, p, d = parse_triple t in
          Ok ({ t_arity = a; t_pause = p; t_detour = d } :: acc))
        (String.split_on_char ',' tx)
        (Ok [])
  in
  let s = { txns; own; n; k; reqrep } in
  if valid s then Ok s else Error "spec violates the family constraints"

(* ---- committed repro files ----------------------------------------------- *)

let sanitize_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let to_ccr ~seed ~oracle ~detail spec =
  Fmt.str
    "# ccr fuzz counterexample — reproduce with: ccr fuzz --seed %d --count \
     1\n\
     # seed: %d\n\
     # oracle: %s\n\
     # detail: %s\n\
     # spec: %s\n\
     # instantiate with the n/reqrep above; k bounds the home buffer.\n\
     %s"
    seed seed oracle
    (sanitize_line detail)
    (spec_to_string spec)
    (Parse.to_string (build spec))

let of_ccr contents =
  let ( let* ) = Result.bind in
  let line key =
    let prefix = "# " ^ key ^ ": " in
    match
      List.find_opt
        (fun l -> String.starts_with ~prefix l)
        (String.split_on_char '\n' contents)
    with
    | Some l ->
      Ok
        (String.sub l (String.length prefix)
           (String.length l - String.length prefix))
    | None -> Error (Fmt.str "missing %S header line" prefix)
  in
  let* seed = line "seed" in
  let* oracle = line "oracle" in
  let* spec = line "spec" in
  let* seed =
    match int_of_string_opt (String.trim seed) with
    | Some s -> Ok s
    | None -> Error "bad seed"
  in
  let* spec = spec_of_string spec in
  Ok (seed, oracle, spec)
