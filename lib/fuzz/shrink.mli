(** Greedy structural counterexample shrinking.

    Given a failing spec, repeatedly try simpler variants — drop a
    transaction, drop the ownership transaction, clear a pause/detour/
    eviction flag, lower a payload arity, lower [n] or [k], turn off the
    request/reply optimization — and keep the first variant that still
    fails {e any} oracle.  Every candidate strictly decreases
    {!Gen.size}, so the loop terminates at a local minimum: a spec whose
    every one-step simplification passes the whole battery.

    Shrinking is deterministic: candidates are tried in a fixed order
    and the oracles themselves are deterministic, so a given failing
    seed always produces the same shrunk [.ccr], byte for byte. *)

val candidates : Gen.spec -> Gen.spec list
(** All one-step simplifications, in the order tried; each is
    {!Gen.valid} and strictly smaller. *)

val minimize :
  fails:(Gen.spec -> (Oracle.name * string) option) ->
  Gen.spec ->
  Gen.spec * (Oracle.name * string)
(** [minimize ~fails spec] greedily walks to a local minimum.  [spec]
    must itself fail ([fails spec <> None] — raises [Invalid_argument]
    otherwise); returns the minimal spec and its failing oracle. *)
