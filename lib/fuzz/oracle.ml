open Ccr_core
module Explore = Ccr_modelcheck.Explore
module Vstore = Ccr_modelcheck.Vstore
module Ckpt = Ccr_modelcheck.Ckpt
module Async = Ccr_refine.Async
module Absmap = Ccr_refine.Absmap
module Sym = Ccr_refine.Symmetry
module Rendezvous = Ccr_semantics.Rendezvous
module Fault = Ccr_faults.Fault
module Injected = Ccr_faults.Injected
module Engine = Ccr_runtime.Engine
module Runtime = Ccr_runtime.Runtime
module J = Ccr_obs.Journal
module Sapi = Ccr_serve.Api
module Sdaemon = Ccr_serve.Daemon
module Shttp = Ccr_serve.Http

type name =
  | Validate
  | Roundtrip
  | Rv
  | Async_explore
  | Eq1
  | Symmetry
  | Par
  | Faults
  | Store
  | Engine
  | Resume
  | Serve

let all =
  [
    Validate;
    Roundtrip;
    Rv;
    Async_explore;
    Eq1;
    Symmetry;
    Par;
    Faults;
    Store;
    Engine;
    Resume;
    Serve;
  ]

let name_to_string = function
  | Validate -> "validate"
  | Roundtrip -> "roundtrip"
  | Rv -> "rv-explore"
  | Async_explore -> "async-explore"
  | Eq1 -> "eq1"
  | Symmetry -> "symmetry"
  | Par -> "par"
  | Faults -> "faults"
  | Store -> "store"
  | Engine -> "engine"
  | Resume -> "resume"
  | Serve -> "serve"

let name_of_string s =
  match List.find_opt (fun o -> name_to_string o = s) all with
  | Some o -> Ok o
  | None ->
    Error
      (Fmt.str "unknown oracle %S (known: %s)" s
         (String.concat ", " (List.map name_to_string all)))

type outcome = Pass | Fail of string

type result = { oracle : name; outcome : outcome }

(* ---- rule coverage ------------------------------------------------------- *)

let n_rules = List.length Async.all_rules

let rule_index =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i r -> Hashtbl.add tbl r i) Async.all_rules;
  fun r -> Hashtbl.find tbl r

(* ---- shared per-spec context --------------------------------------------- *)

(* The battery shares the compiled program and the (rule-counting)
   asynchronous exploration across oracles; lazies are materialized as
   results so a failing stage reports identically however often it is
   consulted. *)
type ctx = {
  spec : Gen.spec;
  max_states : int;
  prog : (Prog.t, exn) Result.t Lazy.t;
  async_stats :
    ((Async.state, Async.label) Explore.stats, exn) Result.t Lazy.t;
}

let capture f = try Ok (f ()) with e -> Error e

let async_sys prog cfg =
  Explore.
    {
      init = Async.initial prog cfg;
      succ = Async.successors prog cfg;
      encode = Async.encode;
      canon = None;
    }

let make_ctx ?rules ~max_states spec =
  let prog = lazy (capture (fun () -> Gen.compile spec)) in
  let async_stats =
    lazy
      (match Lazy.force prog with
      | Error e -> Error e
      | Ok p ->
        capture (fun () ->
            let cfg = Async.{ k = spec.Gen.k } in
            let base = async_sys p cfg in
            let succ =
              match rules with
              | None -> base.Explore.succ
              | Some arr ->
                fun st ->
                  let outs = base.Explore.succ st in
                  List.iter
                    (fun ((l : Async.label), _) ->
                      let i = rule_index l.Async.rule in
                      arr.(i) <- arr.(i) + 1)
                    outs;
                  outs
            in
            Explore.run ~max_states ~check_deadlock:true
              { base with Explore.succ }))
  in
  { spec; max_states; prog; async_stats }

(* ---- the oracles --------------------------------------------------------- *)

let exn_msg e =
  match e with
  | Async.Protocol_error m -> "Protocol_error: " ^ m
  | Invalid_argument m -> "Invalid_argument: " ^ m
  | e -> Printexc.to_string e

let explored_ok what (r : (_, _) Explore.stats) pp_state =
  match r.Explore.outcome with
  | Explore.Complete | Explore.Limit Explore.L_states -> Pass
  | Explore.Limit l ->
    Fail
      (Fmt.str "%s stopped at an unexpected %s limit" what
         (match l with
         | Explore.L_memory -> "memory"
         | Explore.L_time -> "time"
         | Explore.L_interrupt -> "interrupt"
         | Explore.L_states -> "state"))
  | Explore.Violation { invariant; state } ->
    Fail
      (Fmt.str "%s violated %s after %d states:@ %a" what invariant
         r.Explore.states pp_state state)
  | Explore.Deadlock st ->
    Fail
      (Fmt.str "%s deadlocked after %d states:@ %a" what r.Explore.states
         pp_state st)

let o_validate ctx =
  match Validate.check (Gen.build ctx.spec) with
  | Ok _ -> Pass
  | Error es ->
    Fail (Fmt.str "%a" Fmt.(list ~sep:(any "; ") Validate.pp_error) es)

let o_roundtrip ctx =
  let sys = Gen.build ctx.spec in
  let printed = Parse.to_string sys in
  match Parse.system printed with
  | sys' ->
    if sys' = sys then Pass
    else Fail "print/parse round-trip changed the system structurally"
  | exception e ->
    Fail (Fmt.str "printed system does not re-parse: %a" Parse.pp_error e)

let o_rv ctx =
  match Lazy.force ctx.prog with
  | Error e -> Fail (exn_msg e)
  | Ok prog ->
    let r =
      Explore.run ~max_states:ctx.max_states ~check_deadlock:true
        Explore.
          {
            init = Rendezvous.initial prog;
            succ = Rendezvous.successors prog;
            encode = Rendezvous.encode;
            canon = None;
          }
    in
    explored_ok "rendezvous exploration" r (Rendezvous.pp_state prog)

let o_async ctx =
  match (Lazy.force ctx.prog, Lazy.force ctx.async_stats) with
  | Error e, _ | _, Error e -> Fail (exn_msg e)
  | Ok prog, Ok r -> explored_ok "async exploration" r (Async.pp_state prog)

let o_eq1 ctx =
  match Lazy.force ctx.prog with
  | Error e -> Fail (exn_msg e)
  | Ok prog ->
    let v =
      Absmap.check_eq1 ~max_states:ctx.max_states prog
        Async.{ k = ctx.spec.Gen.k }
    in
    if v.Absmap.ok then Pass
    else
      Fail
        (match v.Absmap.failure with
        | Some f ->
          Fmt.str "Eq. 1 violated by %a after %d states" Async.pp_label
            f.Absmap.label v.Absmap.states
        | None -> "Eq. 1 violated")

let o_symmetry ctx =
  match (Lazy.force ctx.prog, Lazy.force ctx.async_stats) with
  | Error e, _ | _, Error e -> Fail (exn_msg e)
  | Ok prog, Ok full ->
    let cfg = Async.{ k = ctx.spec.Gen.k } in
    let quotient canon_key stats =
      Explore.run ~max_states:ctx.max_states
        {
          (async_sys prog cfg) with
          Explore.canon =
            Some
              Explore.
                {
                  canon_key;
                  canon_fresh = None;
                  canon_fallbacks = (fun () -> Sym.fallbacks stats);
                };
        }
    in
    let st_fast = Sym.make_stats () and st_brute = Sym.make_stats () in
    let fast = quotient (Sym.canonical_async_fast ~stats:st_fast prog) st_fast in
    let brute = quotient (Sym.canonical_async ~stats:st_brute prog) st_brute in
    let complete (r : (_, _) Explore.stats) =
      r.Explore.outcome = Explore.Complete
    in
    if
      fast.Explore.canon_fallbacks > 0 || brute.Explore.canon_fallbacks > 0
    then Pass (* counted fallback: the two partitions are incomparable *)
    else if not (complete fast && complete brute) then Pass
    else if
      fast.Explore.states <> brute.Explore.states
      || fast.Explore.transitions <> brute.Explore.transitions
    then
      Fail
        (Fmt.str
           "fast and brute symmetry quotients disagree: %d/%d states, \
            %d/%d transitions"
           fast.Explore.states brute.Explore.states fast.Explore.transitions
           brute.Explore.transitions)
    else if complete full && fast.Explore.states > full.Explore.states then
      Fail
        (Fmt.str "symmetry quotient larger than the full space: %d > %d"
           fast.Explore.states full.Explore.states)
    else Pass

let o_par ctx =
  match (Lazy.force ctx.prog, Lazy.force ctx.async_stats) with
  | Error e, _ | _, Error e -> Fail (exn_msg e)
  | Ok prog, Ok seq ->
    if seq.Explore.outcome <> Explore.Complete then Pass
    else
      let cfg = Async.{ k = ctx.spec.Gen.k } in
      let par =
        Explore.par_run ~jobs:4 ~max_states:ctx.max_states
          ~check_deadlock:true (async_sys prog cfg)
      in
      if par.Explore.outcome <> Explore.Complete then
        Fail
          (Fmt.str "parallel exploration did not complete (%a)"
             (Explore.pp_outcome (Async.pp_state prog))
             par.Explore.outcome)
      else if
        par.Explore.states <> seq.Explore.states
        || par.Explore.transitions <> seq.Explore.transitions
      then
        Fail
          (Fmt.str
             "-j 4 and -j 1 disagree: %d/%d states, %d/%d transitions"
             par.Explore.states seq.Explore.states par.Explore.transitions
             seq.Explore.transitions)
      else Pass

let o_faults ctx =
  match Lazy.force ctx.prog with
  | Error e -> Fail (exn_msg e)
  | Ok prog ->
    let cfg = Async.{ k = ctx.spec.Gen.k } in
    let budget = { Fault.none with Fault.drop = 1 } in
    let r =
      Explore.run ~max_states:ctx.max_states ~check_deadlock:true
        ~invariants:[ Injected.no_wedge ]
        Explore.
          {
            init = Injected.initial budget prog cfg;
            succ = Injected.successors Injected.Hardened budget prog cfg;
            encode = Injected.encode;
            canon = None;
          }
    in
    explored_ok "hardened exploration under drop=1" r
      (Injected.pp_fstate prog)

let o_store ctx =
  match (Lazy.force ctx.prog, Lazy.force ctx.async_stats) with
  | Error e, _ | _, Error e -> Fail (exn_msg e)
  | Ok prog, Ok seq ->
    let cfg = Async.{ k = ctx.spec.Gen.k } in
    let sys = async_sys prog cfg in
    let agree what (r : (_, _) Explore.stats) rest =
      if
        r.Explore.states <> seq.Explore.states
        || r.Explore.transitions <> seq.Explore.transitions
      then
        Fail
          (Fmt.str "%s store disagrees with mem: %d/%d states, %d/%d \
                    transitions"
             what r.Explore.states seq.Explore.states r.Explore.transitions
             seq.Explore.transitions)
      else rest ()
    in
    (* Compressed stores share the sequential engine's discovery order,
       so even an [L_states]-limited baseline pins exact counts. *)
    let collapse_kind = Vstore.Collapse (Async.split_key prog) in
    let collapse =
      Explore.run ~max_states:ctx.max_states ~store:collapse_kind sys
    in
    agree "collapse" collapse @@ fun () ->
    (* The disk run also tees every encoded key into a tiny-tail disk
       store and an exact one: with [tail_cap=64] almost every key
       crosses the spill boundary, so the file read-back path is
       exercised even on fuzz-sized instances. *)
    let tee_disk = Vstore.disk ~tail_cap:64 () in
    let tee_exact = Vstore.exact () in
    let tee_mismatch = ref None in
    let encode st =
      let key = sys.Explore.encode st in
      let d = tee_disk.Vstore.add key and e = tee_exact.Vstore.add key in
      if d <> e && !tee_mismatch = None then tee_mismatch := Some (d, e);
      key
    in
    let disk =
      Explore.run ~max_states:ctx.max_states ~store:Vstore.Disk
        { sys with Explore.encode }
    in
    agree "disk" disk @@ fun () ->
    match !tee_mismatch with
    | Some (d, e) ->
      Fail
        (Fmt.str
           "spilling disk store and exact store disagree on a key: \
            fresh=%b vs %b"
           d e)
    | None ->
      if tee_disk.Vstore.count () <> tee_exact.Vstore.count () then
        Fail
          (Fmt.str "spilling disk store count %d <> exact count %d"
             (tee_disk.Vstore.count ())
             (tee_exact.Vstore.count ()))
      else if seq.Explore.outcome <> Explore.Complete then Pass
      else
        (* Sharded discovery order differs, so the parallel collapse
           comparison needs a complete baseline. *)
        let par =
          Explore.par_run ~jobs:2 ~max_states:ctx.max_states
            ~store:collapse_kind sys
        in
        agree "parallel (j=2) collapse" par (fun () -> Pass)

let o_engine ctx =
  match Lazy.force ctx.prog with
  | Error e -> Fail (exn_msg e)
  | Ok prog ->
    let cfg = Async.{ k = ctx.spec.Gen.k } in
    let traced () =
      let trace = ref [] in
      let s =
        Engine.run ~seed:0 ~deadline_s:5.0 ~max_steps:50_000
          ~on_step:(fun l -> trace := l :: !trace)
          ~budget:2 ~invariants:[] prog cfg
      in
      (s, List.rev !trace)
    in
    let s, trace = traced () in
    if s.Runtime.protocol_errors <> [] then
      Fail
        (Fmt.str "engine protocol error: %s"
           (String.concat "; " s.Runtime.protocol_errors))
    else if s.Runtime.steps <> List.length trace then
      Fail
        (Fmt.str "engine counted %d steps but traced %d labels"
           s.Runtime.steps (List.length trace))
    else begin
      (* Replay the executed schedule through the interpreter: after each
         engine label the frontier holds every interpreter state
         reachable by the labels so far (labels do not pin choose-set
         payloads, so several states can carry the same label; the
         frontier is deduplicated and capped). *)
      let frontier = ref [ Async.initial prog cfg ] in
      let illegal = ref None in
      let stepno = ref 0 in
      List.iter
        (fun (l : Async.label) ->
          if !illegal = None then begin
            incr stepno;
            let seen = Hashtbl.create 16 in
            let next =
              List.concat_map
                (fun st ->
                  List.filter_map
                    (fun ((l' : Async.label), st') ->
                      if l' = l then begin
                        let key = Async.encode st' in
                        if Hashtbl.mem seen key then None
                        else begin
                          Hashtbl.add seen key ();
                          Some st'
                        end
                      end
                      else None)
                    (Async.successors prog cfg st))
                !frontier
            in
            match next with
            | [] -> illegal := Some (!stepno, l)
            | _ ->
              frontier :=
                if List.length next > 64 then
                  List.filteri (fun i _ -> i < 64) next
                else next
          end)
        trace;
      match !illegal with
      | Some (i, l) ->
        Fail
          (Fmt.str
             "engine step %d (%a) is not a transition the interpreter               offers"
             i Async.pp_label l)
      | None ->
        let completes (l : Async.label) =
          match l.Async.rule with
          | Async.H_C1 | Async.H_C1_silent | Async.H_T1_repl | Async.R_C3_ack
          | Async.R_C3_silent | Async.R_repl_recv ->
            true
          | _ -> false
        in
        let comp = List.length (List.filter completes trace) in
        let quiet_state (st : Async.state) =
          st.Async.h.Async.h_mode = Async.Hcomm
          && Array.for_all
               (fun (r : Async.remote) -> r.Async.r_mode = Async.Rcomm)
               st.Async.r
          && Array.for_all (( = ) []) st.Async.to_h
          && Array.for_all (( = ) []) st.Async.to_r
        in
        if comp <> s.Runtime.rendezvous then
          Fail
            (Fmt.str
               "engine reported %d rendezvous but the trace completes %d"
               s.Runtime.rendezvous comp)
        else if s.Runtime.quiescent && not (List.exists quiet_state !frontier)
        then
          Fail
            "engine reported quiescence but no replayed interpreter state              is quiescent"
        else begin
          let s2, trace2 = traced () in
          if trace2 <> trace then
            Fail "engine trace is not deterministic in the seed"
          else if s2.Runtime.messages <> s.Runtime.messages then
            Fail
              (Fmt.str "engine message count is not deterministic: %d vs %d"
                 s.Runtime.messages s2.Runtime.messages)
          else Pass
        end
    end

let o_resume ctx =
  match (Lazy.force ctx.prog, Lazy.force ctx.async_stats) with
  | Error e, _ | _, Error e -> Fail (exn_msg e)
  | Ok prog, Ok seq ->
    (* Too small to interrupt mid-way: the first leg would complete. *)
    if seq.Explore.states < 4 then Pass
    else begin
      let cfg = Async.{ k = ctx.spec.Gen.k } in
      let sys = async_sys prog cfg in
      let dir = Filename.temp_file "ccr-fuzz-ckpt" "" in
      Sys.remove dir;
      Fun.protect ~finally:(fun () ->
          (try Sys.remove (Ckpt.file dir) with Sys_error _ -> ());
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
      @@ fun () ->
      let manifest = [ ("spec_hash", Ccr_obs.Journal.Str "fuzz") ] in
      let cap = max 1 (seq.Explore.states / 2) in
      let first =
        Explore.run ~max_states:cap ~check_deadlock:true
          ~ckpt:
            Explore.
              {
                ck_resume = None;
                ck_save = Ckpt.saver ~dir ~manifest ~prov:None ();
              }
          sys
      in
      match first.Explore.outcome with
      | Explore.Limit Explore.L_states -> (
        match Ckpt.load ~dir with
        | Error msg -> Fail ("checkpoint refused on reload: " ^ msg)
        | Ok l ->
          if
            l.Ckpt.l_states <> first.Explore.states
            || l.Ckpt.l_transitions <> first.Explore.transitions
          then
            Fail
              (Fmt.str
                 "checkpoint recorded %d/%d states, %d/%d transitions"
                 l.Ckpt.l_states first.Explore.states l.Ckpt.l_transitions
                 first.Explore.transitions)
          else
            let resumed =
              Explore.run ~max_states:ctx.max_states ~check_deadlock:true
                ~ckpt:
                  Explore.
                    {
                      ck_resume =
                        Some
                          {
                            r_states = l.Ckpt.l_states;
                            r_transitions = l.Ckpt.l_transitions;
                            r_frontier = l.Ckpt.l_frontier;
                            r_keys = l.Ckpt.l_keys;
                          };
                      ck_save = ignore;
                    }
                sys
            in
            if
              resumed.Explore.states <> seq.Explore.states
              || resumed.Explore.transitions <> seq.Explore.transitions
            then
              Fail
                (Fmt.str
                   "resumed run disagrees with uninterrupted: %d/%d \
                    states, %d/%d transitions"
                   resumed.Explore.states seq.Explore.states
                   resumed.Explore.transitions seq.Explore.transitions)
            else if resumed.Explore.outcome <> seq.Explore.outcome then
              Fail "resumed run reaches a different outcome"
            else Pass)
      | _ ->
        (* The event (or completion) landed before the cap; both legs
           are the same deterministic engine, so there is nothing a
           resume could change. *)
        Pass
    end

(* One shared in-process daemon for the whole battery.  Thread-based —
   [Daemon.start] spawns no domains and no processes — so it is legal
   whatever the [Par] oracle has done to the runtime, and cheap enough
   to keep alive across every spec of a run.  The cache directory is
   per-process: the warm round below must hit this run's own entry. *)
let serve_daemon =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Fmt.str "ccr-fuzz-serve-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     let t = Sdaemon.start ~port:0 ~cache_dir:dir () in
     at_exit (fun () -> Sdaemon.stop t);
     t)

let serve_http ~port ~meth ~path ?body () =
  match Shttp.request ~port ~meth ~path ?body () with
  | Ok (status, body) -> (status, body)
  | Error msg -> failwith (Fmt.str "%s %s: %s" meth path msg)

(* Submit one config and poll to the verdict; returns (verdict JSON text,
   answered-from-cache). *)
let serve_round ~port cfg =
  let status, body =
    serve_http ~port ~meth:"POST" ~path:"/jobs"
      ~body:(J.to_string (Sapi.config_to_json cfg))
      ()
  in
  if status <> 200 && status <> 202 then
    failwith (Fmt.str "POST /jobs answered %d: %s" status body);
  let parse body =
    match J.parse body with
    | Some v -> v
    | None -> failwith ("daemon answered unparsable JSON: " ^ body)
  in
  let jstr v field =
    match J.get_str (J.find v field) with
    | Some s -> s
    | None ->
      failwith (Fmt.str "daemon answer lacks %S: %s" field (J.to_string v))
  in
  let id = jstr (parse body) "id" in
  let rec wait n =
    let _, body = serve_http ~port ~meth:"GET" ~path:("/jobs/" ^ id) () in
    let v = parse body in
    match jstr v "status" with
    | "done" -> (
      let cached = J.find v "cached" = Some (J.Bool true) in
      match J.find v "verdict" with
      | Some verdict -> (J.to_string verdict, cached)
      | None -> failwith ("done job carries no verdict: " ^ body))
    | "failed" -> failwith ("daemon job failed: " ^ body)
    | _ ->
      if n = 0 then failwith "daemon job did not finish"
      else begin
        Unix.sleepf 0.02;
        wait (n - 1)
      end
  in
  wait 1500

let o_serve ctx =
  let src = Parse.to_string (Gen.build ctx.spec) in
  let cfg =
    {
      Sapi.default with
      Sapi.spec = Sapi.Inline src;
      level = `Async;
      n = ctx.spec.Gen.n;
      k = ctx.spec.Gen.k;
      generic = not ctx.spec.Gen.reqrep;
      max_states = ctx.max_states;
    }
  in
  match Sapi.check cfg with
  | Error msg -> Fail ("in-process check refused the spec: " ^ msg)
  | Ok (direct, _) ->
    let expected = J.to_string (Sapi.verdict_to_json direct) in
    let port = Sdaemon.port (Lazy.force serve_daemon) in
    let cold, _ = serve_round ~port cfg in
    if cold <> expected then
      Fail
        (Fmt.str "daemon verdict differs from in-process:@ %s@ vs@ %s" cold
           expected)
    else
      let warm, warm_cached = serve_round ~port cfg in
      if warm <> expected then
        Fail
          (Fmt.str "warm daemon verdict differs from in-process:@ %s@ vs@ %s"
             warm expected)
      else if Sapi.cacheable direct && not warm_cached then
        Fail "cacheable verdict was not served from the cache on resubmission"
      else Pass

let run_oracle ctx o =
  let body =
    match o with
    | Validate -> o_validate
    | Roundtrip -> o_roundtrip
    | Rv -> o_rv
    | Async_explore -> o_async
    | Eq1 -> o_eq1
    | Symmetry -> o_symmetry
    | Par -> o_par
    | Faults -> o_faults
    | Store -> o_store
    | Engine -> o_engine
    | Resume -> o_resume
    | Serve -> o_serve
  in
  let outcome = try body ctx with e -> Fail (exn_msg e) in
  { oracle = o; outcome }

let run_battery ?(only = all) ?rules ~max_states spec =
  let ctx = make_ctx ?rules ~max_states spec in
  List.filter_map
    (fun o -> if List.mem o only then Some (run_oracle ctx o) else None)
    all

let failures results =
  List.filter_map
    (fun r ->
      match r.outcome with
      | Pass -> None
      | Fail msg -> Some (r.oracle, msg))
    results

let coverage_of_spec ?rules ~max_states spec =
  let ctx = make_ctx ?rules ~max_states spec in
  ignore (Lazy.force ctx.async_stats)
