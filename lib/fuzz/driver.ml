module Async = Ccr_refine.Async
module Metrics = Ccr_obs.Metrics

type failure = {
  f_seed : int;
  f_spec : Gen.spec;
  f_oracle : string;
  f_detail : string;
  f_shrunk : Gen.spec;
  f_shrunk_oracle : string;
  f_shrunk_detail : string;
  f_ccr : string;
}

type report = {
  seed : int;
  count : int;
  max_states : int;
  oracles : Oracle.name list;
  passes : (Oracle.name * int) list;
  fails : (Oracle.name * int) list;
  failures : failure list;
  coverage : int array;
  legacy_coverage : int array option;
}

let run ?(only = Oracle.all) ?(legacy_matrix = true) ?metrics ?on_case ~seed
    ~count ~max_states () =
  let pass = Array.make (List.length Oracle.all) 0 in
  let fail = Array.make (List.length Oracle.all) 0 in
  let oracle_idx o =
    let rec go i = function
      | [] -> assert false
      | o' :: rest -> if o = o' then i else go (i + 1) rest
    in
    go 0 Oracle.all
  in
  let coverage = Array.make Oracle.n_rules 0 in
  let legacy_coverage =
    if legacy_matrix then Some (Array.make Oracle.n_rules 0) else None
  in
  let failures = ref [] in
  for i = 0 to count - 1 do
    let case_seed = seed + i in
    let spec =
      Gen.generate ~family:Gen.General (Rng.make case_seed)
    in
    let results =
      Oracle.run_battery ~only ~rules:coverage ~max_states spec
    in
    List.iter
      (fun (r : Oracle.result) ->
        let j = oracle_idx r.Oracle.oracle in
        match r.Oracle.outcome with
        | Oracle.Pass -> pass.(j) <- pass.(j) + 1
        | Oracle.Fail _ -> fail.(j) <- fail.(j) + 1)
      results;
    (match Oracle.failures results with
    | [] -> ()
    | (o, detail) :: _ ->
      (* shrink against the whole battery (without coverage accounting,
         which must reflect only the generated family) *)
      let fails s =
        match
          Oracle.failures (Oracle.run_battery ~only ~max_states s)
        with
        | [] -> None
        | f :: _ -> Some f
      in
      let shrunk, (so, sdetail) = Shrink.minimize ~fails spec in
      let so = Oracle.name_to_string so in
      failures :=
        {
          f_seed = case_seed;
          f_spec = spec;
          f_oracle = Oracle.name_to_string o;
          f_detail = detail;
          f_shrunk = shrunk;
          f_shrunk_oracle = so;
          f_shrunk_detail = sdetail;
          f_ccr =
            Gen.to_ccr ~seed:case_seed ~oracle:so ~detail:sdetail shrunk;
        }
        :: !failures);
    (match legacy_coverage with
    | None -> ()
    | Some arr ->
      let lspec = Gen.generate ~family:Gen.Legacy (Rng.make case_seed) in
      Oracle.coverage_of_spec ~rules:arr ~max_states lspec);
    Option.iter (fun f -> f i) on_case
  done;
  let per arr =
    List.filter_map
      (fun o -> if List.mem o only then Some (o, arr.(oracle_idx o)) else None)
      Oracle.all
  in
  let report =
    {
      seed;
      count;
      max_states;
      oracles = List.filter (fun o -> List.mem o only) Oracle.all;
      passes = per pass;
      fails = per fail;
      failures = List.rev !failures;
      coverage;
      legacy_coverage;
    }
  in
  (match metrics with
  | None -> ()
  | Some reg ->
    Metrics.add (Metrics.counter reg "fuzz.cases") count;
    List.iter
      (fun (o, c) ->
        Metrics.add
          (Metrics.counter reg ("fuzz.pass." ^ Oracle.name_to_string o))
          c)
      report.passes;
    List.iter
      (fun (o, c) ->
        Metrics.add
          (Metrics.counter reg ("fuzz.fail." ^ Oracle.name_to_string o))
          c)
      report.fails;
    let mirror prefix arr =
      List.iteri
        (fun i r ->
          Metrics.add
            (Metrics.counter reg (prefix ^ Async.rule_name r))
            arr.(i))
        Async.all_rules
    in
    mirror "fuzz.rule.general." coverage;
    Option.iter (mirror "fuzz.rule.legacy.") legacy_coverage);
  report

let newly_covered r =
  match r.legacy_coverage with
  | None -> []
  | Some legacy ->
    List.filteri
      (fun i _ -> r.coverage.(i) > 0 && legacy.(i) = 0)
      Async.all_rules

let write_failures ~out_dir r =
  if r.failures = [] then []
  else begin
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    List.map
      (fun f ->
        let path =
          Filename.concat out_dir
            (Fmt.str "seed-%d-%s.ccr" f.f_seed f.f_shrunk_oracle)
        in
        let oc = open_out path in
        output_string oc f.f_ccr;
        close_out oc;
        path)
      r.failures
  end

let pp ?(matrix = true) ppf r =
  Fmt.pf ppf "fuzz: seed %d, %d cases, max-states %d@." r.seed r.count
    r.max_states;
  Fmt.pf ppf "@.%-16s %6s %6s@." "oracle" "pass" "fail";
  List.iter2
    (fun (o, p) (_, f) ->
      Fmt.pf ppf "%-16s %6d %6d@." (Oracle.name_to_string o) p f)
    r.passes r.fails;
  (match r.legacy_coverage with
  | _ when not matrix -> ()
  | None ->
    Fmt.pf ppf "@.rule coverage (Tables 1-2, transitions enumerated):@.";
    List.iteri
      (fun i rule ->
        Fmt.pf ppf "  %-18s %8d@." (Async.rule_name rule) r.coverage.(i))
      Async.all_rules
  | Some legacy ->
    Fmt.pf ppf
      "@.rule coverage (Tables 1-2, transitions enumerated per family):@.";
    Fmt.pf ppf "  %-18s %8s %8s@." "rule" "legacy" "general";
    List.iteri
      (fun i rule ->
        Fmt.pf ppf "  %-18s %8d %8d%s@." (Async.rule_name rule) legacy.(i)
          r.coverage.(i)
          (if r.coverage.(i) > 0 && legacy.(i) = 0 then "  (new)" else ""))
      Async.all_rules;
    let fresh = newly_covered r in
    Fmt.pf ppf "rows exercised only by the generalized family: %d (%s)@."
      (List.length fresh)
      (if fresh = [] then "none"
       else String.concat ", " (List.map Async.rule_name fresh)));
  match r.failures with
  | [] -> Fmt.pf ppf "@.no oracle failures.@."
  | fs ->
    Fmt.pf ppf "@.%d failing case(s):@." (List.length fs);
    List.iter
      (fun f ->
        Fmt.pf ppf
          "  seed %d: %s failed on %a@.    shrunk to %a (still fails %s: \
           %s)@."
          f.f_seed f.f_oracle Gen.pp f.f_spec Gen.pp f.f_shrunk
          f.f_shrunk_oracle f.f_shrunk_detail)
      fs
