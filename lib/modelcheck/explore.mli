(** Explicit-state reachability analysis.

    This is the reproduction's substitute for the paper's use of SPIN
    (§5): breadth-first enumeration of the reachable states of a labeled
    transition system, with invariant checking, deadlock detection,
    counterexample traces, and the resource caps that produce the
    "Unfinished" entries of Table 3. *)

type 's canon = {
  canon_key : 's -> string;
      (** canonical (orbit-representative) encoding used to key the
          visited set; must be deterministic and injective {e across
          orbits} (two states may share a key only if they are related by
          a symmetry of the system) *)
  canon_fresh : ('s -> unit) option;
      (** if given, called on each state right after it is found fresh.
          The sequential engine calls it in the domain that canonicalized
          the state, so per-state canonicalization by-products (e.g. orbit
          sizes held in domain-local storage) are still readable; the
          parallel engine decides freshness in the leader domain at level
          boundaries, so such by-products are {e not} readable there —
          attach domain-local harvesting only for sequential runs *)
  canon_fallbacks : unit -> int;
      (** read at the end of the search: how many canonicalizations gave
          up on exactness and returned a merely injective key (sound, but
          reduces less) — surfaced as {!stats.canon_fallbacks} *)
}
(** Symmetry-reduction hook.  When present, exploration stores
    [canon_key st] in the visited set but keeps the {e concrete} state for
    successor generation, invariant checking and traces — so quotient
    exploration changes which states count as duplicates, while
    counterexamples remain concrete, replayable runs (de-canonicalization
    is free: canonical keys never replace states). *)

type ('s, 'l) system = {
  init : 's;
  succ : 's -> ('l * 's) list;
  encode : 's -> string;  (** injective encoding for visited-state hashing *)
  canon : 's canon option;
      (** optional symmetry reduction; [None] = explore the full space *)
}

val key_fns :
  ('s, 'l) system -> ('s -> string) * ('s -> unit) * (unit -> int)
(** The visited-set key function, fresh-state callback and fallback
    counter of a system ([encode] and no-ops without a [canon] hook).
    Shared with the multi-process engine ({!Mpx}). *)

type limit =
  | L_states
  | L_memory
  | L_time
  | L_interrupt
      (** the [interrupt] callback asked the engine to stop (e.g. a
          SIGINT/SIGTERM handler); work done so far is reported — and,
          with a checkpoint control attached, persisted *)

type strategy = Bfs | Dfs
(** Search order.  Both enumerate the same reachable set; BFS yields
    shortest counterexamples, DFS uses less frontier memory. *)

type visited_mode =
  | Exact  (** hash table of full encodings: exact counts *)
  | Bitstate of int
      (** supertrace/bitstate hashing with a [2^bits]-bit table and two
          independent hash functions, as SPIN's [-DBITSTATE] (Holzmann
          1991, which the paper used).  Collisions silently prune states:
          the visit count is a lower bound, using [2^bits / 8] bytes
          regardless of the state space. *)

type 's outcome =
  | Complete  (** the full reachable state space was enumerated *)
  | Limit of limit  (** exploration stopped at a resource cap *)
  | Violation of { invariant : string; state : 's }
  | Deadlock of 's  (** a state with no successors (when enabled) *)

type ('s, 'l) stats = {
  outcome : 's outcome;
  states : int;  (** distinct states visited *)
  transitions : int;  (** transitions traversed *)
  time_s : float;
  mem_bytes : int;
      (** honest resident bytes of the visited-state set, including index
          tables, headers and tail buffers — what [max_mem_bytes] meters *)
  raw_bytes : int;
      (** what the plain in-memory store would hold for the same states
          (key bytes plus a fixed per-state overhead); with a compressed
          or out-of-core store, [raw_bytes /. mem_bytes] is the
          compression ratio *)
  peak_frontier : int;
      (** most states simultaneously awaiting expansion (BFS: queue
          watermark / largest level; DFS: stack watermark) *)
  max_depth : int;
      (** deepest discovery (BFS: eccentricity of the initial state over
          the explored region; DFS: longest stack path reached) *)
  canon_fallbacks : int;
      (** canonicalizations that fell back to a non-canonical key (0
          without a [canon] hook); a non-zero value means the symmetry
          quotient was computed only partially — counts stay sound upper
          bounds of the quotient, verdicts are unaffected *)
  trace : ('l option * 's) list option;
      (** with [~trace:true]: initial state to offending state, each entry
          carrying the label that led to it *)
}

(** {2 Checkpoint control}

    The engines expose resumable points through this record; the file
    format, write policy and refusal logic live in {!Ckpt}.  A frontier
    entry is [(id, depth, resume_ord, state)]: the state's visited id,
    its BFS depth, and the successor ordinal expansion should resume
    from — 0 everywhere except the sequential engine's in-flight state
    at a mid-level cap, whose already-traversed successors must not be
    re-counted. *)

type 's ckpt_view = {
  v_states : int;
  v_transitions : int;
  v_depth : int;  (** BFS depth of the (deepest) frontier state *)
  v_final : bool;
      (** the engine is stopping at a cap or interrupt: last chance to
          persist *)
  v_frontier : unit -> (int * int * int * 's) array;
      (** materialize the unexpanded frontier (thunked: costs nothing
          when the policy declines the boundary) *)
  v_iter_keys : (string -> unit) -> unit;
      (** visit every visited-set key {e at this boundary} *)
}

type 's ckpt_resume = {
  r_states : int;
  r_transitions : int;
  r_frontier : (int * int * int * 's) array;
  r_keys : (string -> unit) -> unit;
}

type 's ckpt = {
  ck_resume : 's ckpt_resume option;
      (** continue from this payload instead of [sys.init].  The visited
          store is re-populated from [r_keys], counts continue from
          [r_states]/[r_transitions], and the frontier is re-queued.  A
          provenance table passed alongside must already hold
          [r_states] records (see {!Ckpt.load}).  {!par_run} and
          {!Mpx.run} require a level-boundary payload (uniform depth,
          zero resume ordinals, contiguous trailing ids) and raise
          [Invalid_argument] on a sequential mid-level checkpoint. *)
  ck_save : 's ckpt_view -> unit;
      (** called at every BFS level boundary, and once more with
          [v_final = true] when stopping at a cap/interrupt (except
          after a mid-level stop in the parallel engines, where the
          frontier is partial and the previous checkpoint stands) *)
}

val run :
  ?strategy:strategy ->
  ?visited:visited_mode ->
  ?store:Vstore.kind ->
  ?max_states:int ->
  ?max_mem_bytes:int ->
  ?max_time_s:float ->
  ?check_deadlock:bool ->
  ?trace:bool ->
  ?invariants:(string * ('s -> bool)) list ->
  ?on_progress:(Ccr_obs.Progress.sample -> unit) ->
  ?progress_every:int ->
  ?prov:Vstore.Prov.t ->
  ?on_level:(depth:int -> states:int -> unit) ->
  ?interrupt:(unit -> bool) ->
  ?ckpt:'s ckpt ->
  ('s, 'l) system ->
  ('s, 'l) stats
(** Search from [init] (default: breadth-first with an exact in-memory
    visited set).  [interrupt] (polled before every expansion) asks the
    engine to stop with [Limit L_interrupt]; [ckpt] (BFS only) attaches
    the checkpoint control described above.  [store] (default {!Vstore.Mem}) selects the
    visited-set representation — collapse-compressed or out-of-core, see
    {!Vstore}; all kinds produce identical state and transition counts,
    only memory use differs.  A [Bitstate] visited mode takes precedence
    over [store].  Invariants are checked on every state as it is discovered
    (including the initial one); the first violation stops the search.
    [check_deadlock] (default [false]) reports a state with no
    successors.  [trace] (default [false]) keeps parent pointers so the
    offending state's path can be reconstructed — at the cost of
    retaining all visited states in memory, unless [prov] is also given,
    in which case the side-table replaces the in-memory arrays and the
    counterexample is rebuilt by {!replay_path}.  [on_progress] (default:
    none, zero overhead beyond one closure call per discovery) is invoked
    every [progress_every] (default 8192) discoveries with a live
    {!Ccr_obs.Progress.sample}.  [on_level] (BFS only) fires once per
    completed BFS level with its depth and the cumulative state count —
    the same sequence, in the same order, as {!par_run} and {!Mpx.run}
    emit, so journals built from it are parallelism-independent. *)

val par_run :
  ?jobs:int ->
  ?visited:visited_mode ->
  ?store:Vstore.kind ->
  ?max_states:int ->
  ?max_mem_bytes:int ->
  ?max_time_s:float ->
  ?check_deadlock:bool ->
  ?trace:bool ->
  ?invariants:(string * ('s -> bool)) list ->
  ?on_progress:(Ccr_obs.Progress.sample -> unit) ->
  ?prov:Vstore.Prov.t ->
  ?on_level:(depth:int -> states:int -> unit) ->
  ?interrupt:(unit -> bool) ->
  ?ckpt:'s ckpt ->
  ('s, 'l) system ->
  ('s, 'l) stats
(** Parallel breadth-first search over [jobs] OCaml 5 domains (default:
    [Domain.recommended_domain_count ()]).  The visited set is sharded
    across independently locked stores, routed by a seeded hash of the
    encoded key; the frontier is drained level by level in batches, with
    per-domain successor buffers merged at level boundaries, so BFS level
    order is preserved.  Requires [succ] and [encode] to be safe to call
    concurrently from several domains (true of all systems in this
    repository: they only read the compiled program).

    Determinism: for runs that end in [Complete], [states] and
    [transitions] equal the sequential {!run}'s exactly (with the [Exact]
    visited set; [Bitstate] counts are approximate in both engines, with
    different collision patterns).  With a [canon] hook this extends to
    the {e representative} kept per canonical key: workers buffer every
    successor tagged with its discovery position and the leader replays
    the buffers in sequential BFS order at the level boundary, so the
    quotient explored is identical at every job count even for protocols
    that are symmetric only up to dead-variable resets.  When a violation or deadlock is found,
    the engine falls back to a sequential re-run to report the canonical
    first event and — with [~trace:true] — its shortest counterexample,
    so the returned outcome is deterministic too; [time_s] then covers
    both phases.

    [prov] changes that last part: recording provenance forces the
    ordered leader-replay path (ids dense in sequential BFS order, at any
    job count), the leader selects the sequential-first event
    deterministically at the level boundary, and the counterexample is an
    O(depth) {!replay_path} chain walk — the fallback re-exploration is
    gone.  The event's level still completes before the engine stops, so
    on Violation/Deadlock outcomes [states]/[max_depth] may exceed the
    sequential engine's (the {e trace} is identical).  [on_level] fires
    in the leader at each completed level, emitting exactly the
    sequential engine's sequence.  Resource caps are applied at BFS-level granularity:
    a [Limit] outcome may report slightly more than [max_states].
    [on_progress] is invoked by the leader domain at every BFS level
    boundary; its sample's [shard_balance] reports how evenly the visited
    set spreads over the 64 shards.  [peak_frontier] here is the largest
    BFS level (the level-synchronous frontier watermark), and [max_depth]
    equals the sequential engine's on complete runs. *)

val replay_path :
  Vstore.Prov.t -> ('s, 'l) system -> int -> ('l option * 's) list
(** [replay_path prov sys id] rebuilds the path from [sys.init] to the
    state with visited id [id] out of the provenance side-table: an
    O(depth) parent-chain walk followed by one successor expansion per
    step (the recorded ordinal pins the concrete transition).  The result
    has the same shape and contents as {!stats.trace}.  Valid for any
    [prov] filled by {!run}/{!par_run}/{!Mpx.run} over the same system. *)

val bitstate_positions : bits:int -> string -> int * int
(** The two bit-table positions a key occupies under {!Bitstate}
    hashing (seeded hashes 0 and 1 of the key, masked to [2^bits]).
    Exposed so tests can pin the independence of the two positions.
    (Alias of {!Vstore.bitstate_positions}.) *)

val pp_outcome : 's Fmt.t -> 's outcome Fmt.t
