(* Visited-state stores: the exact in-memory set, SPIN-style collapse
   compression, an out-of-core append-file store, and bitstate hashing —
   all behind one record so the exploration engines stay store-agnostic. *)

type t = {
  add : string -> bool;
  mem_bytes : unit -> int;
  raw_bytes : unit -> int;
  count : unit -> int;
  iter_keys : (string -> unit) -> unit;
}

type kind = Mem | Collapse of (string -> int array) | Disk

let kind_name = function
  | Mem -> "mem"
  | Collapse _ -> "collapse"
  | Disk -> "disk"

(* Stable per-state bookkeeping figure used by the *raw* (uncompressed)
   byte count: what a plain interned store pays per state on top of the
   key bytes (hash slot, boxed string header, id).  Kept identical across
   store kinds so bench bytes/state comparisons share one baseline. *)
let per_state_overhead = 64

(* Honest accounting constants for [mem_bytes]: OCaml boxed-string header
   plus word rounding (~24 bytes on 64-bit), and open-addressing slot
   costs.  These make [mem_bytes] track actual RAM, so a memory cap set
   for the machine really is honored — the old figure ignored the tables
   themselves, undercounting by ~30%. *)
let string_overhead = 24
let intern_entry_overhead = 48 (* hashtbl bucket + boxed header *)

(* ---- exact in-memory store ---------------------------------------------

   Insert-only open-addressing string set.  [add] is the visited-set hot
   path: it hashes the key once and walks a single probe sequence to both
   test membership and insert, where the stdlib [Hashtbl.mem] +
   [Hashtbl.add] pair traverses its bucket chain twice and allocates a
   bucket cell per state.  Keys are interned exactly once: the encoded
   string handed to [add] is the string retained in the table. *)
module Strset = struct
  type t = {
    mutable keys : string array;
    mutable hashes : int array;
    mutable count : int;
    mutable key_bytes : int;
  }

  (* Physically unique empty-slot marker ([String.make] allocates a fresh
     block, so no real key can be [==] to it). *)
  let absent = String.make 1 '\000'

  let create ~init_slots =
    {
      keys = Array.make init_slots absent;
      hashes = Array.make init_slots 0;
      count = 0;
      key_bytes = 0;
    }

  let resize t =
    let old_keys = t.keys and old_hashes = t.hashes in
    let cap = 2 * Array.length old_keys in
    let mask = cap - 1 in
    let keys = Array.make cap absent and hashes = Array.make cap 0 in
    Array.iteri
      (fun i k ->
        if k != absent then begin
          let h = old_hashes.(i) in
          let j = ref (h land mask) in
          while keys.(!j) != absent do
            j := (!j + 1) land mask
          done;
          keys.(!j) <- k;
          hashes.(!j) <- h
        end)
      old_keys;
    t.keys <- keys;
    t.hashes <- hashes

  (* true when [key] was absent (in which case it is inserted) *)
  let add t key =
    if 2 * t.count >= Array.length t.keys then resize t;
    let h = Hashtbl.hash key in
    let mask = Array.length t.keys - 1 in
    let j = ref (h land mask) in
    let fresh = ref false and scanning = ref true in
    while !scanning do
      let k = t.keys.(!j) in
      if k == absent then begin
        t.keys.(!j) <- key;
        t.hashes.(!j) <- h;
        t.count <- t.count + 1;
        t.key_bytes <- t.key_bytes + String.length key;
        fresh := true;
        scanning := false
      end
      else if t.hashes.(!j) = h && String.equal k key then scanning := false
      else j := (!j + 1) land mask
    done;
    !fresh
end

let exact ?(init_slots = 4096) () =
  let t = Strset.create ~init_slots in
  {
    add = (fun key -> Strset.add t key);
    mem_bytes =
      (fun () ->
        (* keys + headers, plus the two slot arrays (pointer + hash word) *)
        t.Strset.key_bytes
        + (string_overhead * t.Strset.count)
        + (16 * Array.length t.Strset.keys));
    raw_bytes =
      (fun () -> t.Strset.key_bytes + (per_state_overhead * t.Strset.count));
    count = (fun () -> t.Strset.count);
    iter_keys =
      (fun f ->
        Array.iter (fun k -> if k != Strset.absent then f k) t.Strset.keys);
  }

(* ---- bitstate (supertrace) hashing -------------------------------------- *)

(* Two independent hash positions, as SPIN's double bitstate.  Seeded
   hashing keeps the second position allocation-free (the old scheme
   hashed [key ^ "\x01"], building a fresh string per state). *)
let bitstate_positions ~bits key =
  let bits = max 10 (min 34 bits) in
  let mask = (1 lsl bits) - 1 in
  (Hashtbl.seeded_hash 0 key land mask, Hashtbl.seeded_hash 1 key land mask)

let bitstate bits =
  let bits = max 10 (min 34 bits) in
  let nbits = 1 lsl bits in
  let table = Bytes.make (nbits / 8) '\000' in
  let get i =
    Char.code (Bytes.get table (i lsr 3)) land (1 lsl (i land 7)) <> 0
  in
  let set i =
    Bytes.set table (i lsr 3)
      (Char.chr (Char.code (Bytes.get table (i lsr 3)) lor (1 lsl (i land 7))))
  in
  let marked = ref 0 in
  {
    add =
      (fun key ->
        let h1, h2 = bitstate_positions ~bits key in
        let seen = get h1 && get h2 in
        if not seen then begin
          set h1;
          set h2;
          incr marked
        end;
        not seen);
    mem_bytes = (fun () -> nbits / 8);
    raw_bytes = (fun () -> nbits / 8);
    count = (fun () -> !marked);
    iter_keys =
      (fun _ ->
        (* bitstate drops the keys by construction; checkpointing refuses
           the mode before ever asking *)
        invalid_arg "Vstore.bitstate: keys are not recoverable");
  }

(* ---- component interning (shared with the collapse store) --------------- *)

module Intern = struct
  type t = {
    tbl : (string, int) Hashtbl.t;
    mutable rev : string array;
    mutable n : int;
    mutable str_bytes : int;
  }

  let create () =
    { tbl = Hashtbl.create 64; rev = Array.make 64 ""; n = 0; str_bytes = 0 }

  let id t s =
    match Hashtbl.find_opt t.tbl s with
    | Some i -> i
    | None ->
      let i = t.n in
      Hashtbl.add t.tbl s i;
      if i >= Array.length t.rev then begin
        let rev = Array.make (2 * Array.length t.rev) "" in
        Array.blit t.rev 0 rev 0 i;
        t.rev <- rev
      end;
      t.rev.(i) <- s;
      t.n <- i + 1;
      t.str_bytes <- t.str_bytes + String.length s;
      i

  let get t i =
    if i < 0 || i >= t.n then invalid_arg "Vstore.Intern.get: unknown id";
    t.rev.(i)

  let count t = t.n

  let mem_bytes t =
    t.str_bytes + (intern_entry_overhead * t.n) + (8 * Array.length t.rev)
end

(* ---- collapse-compressed store ------------------------------------------

   SPIN's collapse compression (Holzmann, "State compression in SPIN"):
   each state key is cut into per-component substrings (one per process /
   channel — the [split] function), every distinct component value is
   interned once per position, and the visited set stores only the tuple
   of small component ids.  Component values repeat massively across
   states (a remote cache's local view changes in few transitions), so
   tuples of 1-byte ids replace 50-200 byte keys.

   The tuple set itself is flat: a growable byte arena of
   varint-length-prefixed tuples plus an open-addressing index of arena
   offsets, so a stored state costs its tuple bytes (+1-2 length bytes)
   plus ~9 bytes of index slot — no per-state boxed values at all. *)

(* FNV-1a over scratch bytes, folded to a non-negative OCaml int.  The
   index cannot use [Hashtbl.hash] because tuples live in scratch/arena
   bytes, never as strings. *)
let hash_bytes b len =
  let h = ref 0x5_17_cc_1b_72_72_20_a5 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x100000001b3
  done;
  let h = !h in
  (h lxor (h lsr 29)) land max_int

(* LEB128 for the non-negative ids packed into tuples (internal to the
   tuple set — state keys keep the [Value.encode_int] format).  Intern
   tables routinely exceed a few hundred entries per position, so the
   2-byte middle range matters: it is the difference between ~20-byte and
   ~40-byte tuples on the larger asynchronous instances. *)
let rec put_varint b pos i =
  if i < 0x80 then begin
    Bytes.unsafe_set b pos (Char.unsafe_chr i);
    pos + 1
  end
  else begin
    Bytes.unsafe_set b pos (Char.unsafe_chr (0x80 lor (i land 0x7f)));
    put_varint b (pos + 1) (i lsr 7)
  end

let get_varint b pos =
  let rec go pos shift acc =
    let c = Char.code (Bytes.unsafe_get b pos) in
    if c < 0x80 then (acc lor (c lsl shift), pos + 1)
    else go (pos + 1) (shift + 7) (acc lor ((c land 0x7f) lsl shift))
  in
  go pos 0 0

module Tupleset = struct
  type t = {
    mutable offs : int array; (* arena offset + 1; 0 = empty slot *)
    mutable tags : Bytes.t; (* low byte of the tuple hash, cuts probes *)
    mutable count : int;
    mutable arena : Bytes.t;
    mutable arena_len : int;
  }

  let create ~init_slots =
    {
      offs = Array.make init_slots 0;
      tags = Bytes.make init_slots '\000';
      count = 0;
      arena = Bytes.create 4096;
      arena_len = 0;
    }

  (* tuple stored at [off]: varint length, then the id bytes *)
  let tuple_matches t off b len =
    let stored_len, data = get_varint t.arena off in
    stored_len = len
    &&
    let i = ref 0 in
    while
      !i < len && Bytes.unsafe_get t.arena (data + !i) = Bytes.unsafe_get b !i
    do
      incr i
    done;
    !i = len

  let resize t =
    let old = t.offs in
    let cap = 2 * Array.length old in
    let mask = cap - 1 in
    let offs = Array.make cap 0 and tags = Bytes.make cap '\000' in
    Array.iter
      (fun o ->
        if o <> 0 then begin
          let len, data = get_varint t.arena (o - 1) in
          let h = hash_bytes (Bytes.sub t.arena data len) len in
          let j = ref (h land mask) in
          while offs.(!j) <> 0 do
            j := (!j + 1) land mask
          done;
          offs.(!j) <- o;
          Bytes.set tags !j (Char.chr ((h lsr 24) land 0xff))
        end)
      old;
    t.offs <- offs;
    t.tags <- tags

  let append t b len =
    let need = t.arena_len + 10 + len in
    if need > Bytes.length t.arena then begin
      (* 3/2 growth: the arena is counted at capacity by the honest
         memory figure, so doubling would overstate steady-state use *)
      let cap = ref (Bytes.length t.arena * 3 / 2) in
      while !cap < need do
        cap := !cap * 3 / 2
      done;
      let arena = Bytes.create !cap in
      Bytes.blit t.arena 0 arena 0 t.arena_len;
      t.arena <- arena
    end;
    let off = t.arena_len in
    let pos = put_varint t.arena off len in
    Bytes.blit b 0 t.arena pos len;
    t.arena_len <- pos + len;
    off

  (* true when the tuple in [b.(0..len-1)] was absent (then inserted).
     Load factor 3/4: higher than the string sets' 1/2 because the tag
     byte rejects almost all false probes without touching the arena. *)
  let add t b len =
    if 4 * t.count >= 3 * Array.length t.offs then resize t;
    let h = hash_bytes b len in
    let tag = Char.chr ((h lsr 24) land 0xff) in
    let mask = Array.length t.offs - 1 in
    let j = ref (h land mask) in
    let fresh = ref false and scanning = ref true in
    while !scanning do
      let o = t.offs.(!j) in
      if o = 0 then begin
        t.offs.(!j) <- append t b len + 1;
        Bytes.set t.tags !j tag;
        t.count <- t.count + 1;
        fresh := true;
        scanning := false
      end
      else if Bytes.get t.tags !j = tag && tuple_matches t (o - 1) b len then
        scanning := false
      else j := (!j + 1) land mask
    done;
    !fresh

  let mem_bytes t =
    (* offset array (words) + tag bytes + the arena's full capacity *)
    (9 * Array.length t.offs) + Bytes.length t.arena
end

(* One collapse store over a (possibly shared) intern layer.  [lock]
   guards the intern tables when several stores share them; the tuple set
   stays private to the store (the caller serializes per-store access, as
   the sharded engine's per-shard mutexes do).  [count_interns] lets
   exactly one store of a sharing group account for the intern memory. *)
let collapse_over ~init_slots ~split ~interns ~lock ~count_interns () =
  let tuples = Tupleset.create ~init_slots in
  let scratch = ref (Bytes.create 256) in
  let raw = ref 0 in
  let locked f =
    match lock with
    | None -> f ()
    | Some m ->
      Mutex.lock m;
      let r = f () in
      Mutex.unlock m;
      r
  in
  let add key =
    let bounds = split key in
    let n_comp = Array.length bounds in
    if Bytes.length !scratch < 10 * n_comp then
      scratch := Bytes.create (2 * 10 * n_comp);
    let b = !scratch in
    let pos = ref 0 in
    locked (fun () ->
        (* one intern table per component position, sized on first use *)
        if Array.length !interns = 0 then
          interns := Array.init n_comp (fun _ -> Intern.create ())
        else if Array.length !interns <> n_comp then
          invalid_arg "Vstore.collapse: split returned inconsistent arity";
        let start = ref 0 in
        for c = 0 to n_comp - 1 do
          let stop = bounds.(c) in
          let id =
            Intern.id
              (Array.unsafe_get !interns c)
              (String.sub key !start (stop - !start))
          in
          pos := put_varint b !pos id;
          start := stop
        done;
        if !start <> String.length key then
          invalid_arg "Vstore.collapse: split did not cover the key");
    let fresh = Tupleset.add tuples b !pos in
    if fresh then raw := !raw + String.length key + per_state_overhead;
    fresh
  in
  {
    add;
    mem_bytes =
      (fun () ->
        Tupleset.mem_bytes tuples
        + (if count_interns then
             Array.fold_left
               (fun acc it -> acc + Intern.mem_bytes it)
               0 !interns
           else 0)
        + Bytes.length !scratch);
    raw_bytes = (fun () -> !raw);
    count = (fun () -> tuples.Tupleset.count);
    iter_keys =
      (fun f ->
        (* The arena is a dense sequence of varint-length-prefixed tuples
           in insertion order; components concatenate back to the exact
           key (split covers the key), so this inverts [add]. *)
        let arena = tuples.Tupleset.arena in
        let buf = Buffer.create 256 in
        let off = ref 0 in
        while !off < tuples.Tupleset.arena_len do
          let len, data = get_varint arena !off in
          locked (fun () ->
              Buffer.clear buf;
              let pos = ref data and c = ref 0 in
              while !pos < data + len do
                let id, next = get_varint arena !pos in
                Buffer.add_string buf (Intern.get !interns.(!c) id);
                pos := next;
                incr c
              done);
          f (Buffer.contents buf);
          off := data + len
        done);
  }

let collapse ?(init_slots = 1024) ~split () =
  collapse_over ~init_slots ~split ~interns:(ref [||]) ~lock:None
    ~count_interns:true ()

let collapse_shared ?(init_slots = 256) ~split n =
  let interns = ref [||] and lock = Some (Mutex.create ()) in
  Array.init n (fun i ->
      collapse_over ~init_slots ~split ~interns ~lock ~count_interns:(i = 0) ())

(* ---- out-of-core (append-file) store ------------------------------------

   Key bytes live in an unlinked temporary file (appended through a small
   tail buffer); RAM holds only an open-addressing index of packed
   (offset, length) words plus the key hashes.  Unlike bitstate hashing
   this is exact: a hash hit is confirmed by reading the stored key back
   and comparing bytes, so counts equal the in-memory store's. *)
module Diskset = struct
  (* Index slot layout, one OCaml int per slot:
       0                              — empty
       1 + (off << 20 | tag << 12 | lenfield)
     [off]: byte offset of the key in the file (42 bits, 4 TB);
     [tag]: 8 high bits of the key's hash, rejecting almost all false
     probes without touching the file; [lenfield]: key length, values
     >= 0xfff overflowing into [long_lens].  No per-slot hash word: a
     resize re-reads each stored key once to rehash it — sequential-ish,
     page-cache-friendly I/O, paid O(log n) times — which halves the
     resident index to 8 bytes per slot. *)
  type t = {
    fd : Unix.file_descr;
    mutable file_len : int; (* bytes flushed to [fd] *)
    tail : Buffer.t; (* appended keys not yet flushed *)
    tail_cap : int;
    mutable packed : int array;
    mutable count : int;
    mutable key_bytes : int;
    long_lens : (int, int) Hashtbl.t; (* off -> true len when >= 0xfff *)
    mutable read_buf : Bytes.t;
  }

  let create ?path ~init_slots ~tail_cap () =
    let fd =
      match path with
      | None ->
        (* anonymous: unlinked immediately, vanishes with the process *)
        let p = Filename.temp_file "ccr_vstore" ".keys" in
        let fd = Unix.openfile p [ Unix.O_RDWR ] 0o600 in
        Unix.unlink p;
        fd
      | Some p ->
        (* named: persists on disk so an external checkpoint/reopen flow
           can point at a stable file instead of a vanishing temp *)
        Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let t =
      {
        fd;
        file_len = 0;
        tail = Buffer.create (min tail_cap 65536);
        tail_cap;
        packed = Array.make init_slots 0;
        count = 0;
        key_bytes = 0;
        long_lens = Hashtbl.create 16;
        read_buf = Bytes.create 256;
      }
    in
    (* the store owns the descriptor and nothing else can reach it; a
       dropped store must give the fd back or a long-lived process (the
       serve daemon, a fuzz campaign) exhausts the fd table *)
    Gc.finalise (fun s -> try Unix.close s.fd with Unix.Unix_error _ -> ()) t;
    t

  let tag_of h = (h lsr 22) land 0xff

  let pack ~off ~tag ~lenfield = ((off lsl 20) lor (tag lsl 12) lor lenfield) + 1

  let flush t =
    let s = Buffer.contents t.tail in
    Buffer.clear t.tail;
    let len = String.length s in
    ignore (Unix.lseek t.fd t.file_len Unix.SEEK_SET);
    let written = ref 0 in
    while !written < len do
      written :=
        !written + Unix.write_substring t.fd s !written (len - !written)
    done;
    t.file_len <- t.file_len + len

  let entry_len t off lenfield =
    if lenfield < 0xfff then lenfield else Hashtbl.find t.long_lens off

  (* Copy the [len] stored bytes at [off] into [t.read_buf]. *)
  let read_stored t off len =
    if Bytes.length t.read_buf < len then t.read_buf <- Bytes.create (2 * len);
    if off >= t.file_len then
      (* still in the tail buffer *)
      Buffer.blit t.tail (off - t.file_len) t.read_buf 0 len
    else begin
      ignore (Unix.lseek t.fd off Unix.SEEK_SET);
      let got = ref 0 in
      while !got < len do
        let r = Unix.read t.fd t.read_buf !got (len - !got) in
        if r = 0 then invalid_arg "Vstore.disk: truncated store file";
        got := !got + r
      done
    end

  let stored_matches t off key =
    let len = String.length key in
    read_stored t off len;
    let i = ref 0 in
    while !i < len && Bytes.unsafe_get t.read_buf !i = String.unsafe_get key !i
    do
      incr i
    done;
    !i = len

  let resize t =
    let old = t.packed in
    let cap = 2 * Array.length old in
    let mask = cap - 1 in
    let packed = Array.make cap 0 in
    Array.iter
      (fun p ->
        if p <> 0 then begin
          let off = (p - 1) lsr 20 in
          let len = entry_len t off ((p - 1) land 0xfff) in
          read_stored t off len;
          let h =
            Hashtbl.seeded_hash 3 (Bytes.sub_string t.read_buf 0 len)
          in
          let j = ref (h land mask) in
          while packed.(!j) <> 0 do
            j := (!j + 1) land mask
          done;
          packed.(!j) <- p
        end)
      old;
    t.packed <- packed

  let add t key =
    if 2 * t.count >= Array.length t.packed then resize t;
    let len = String.length key in
    let h = Hashtbl.seeded_hash 3 key in
    let tag = tag_of h in
    let mask = Array.length t.packed - 1 in
    let j = ref (h land mask) in
    let fresh = ref false and scanning = ref true in
    while !scanning do
      let p = t.packed.(!j) in
      if p = 0 then begin
        let off = t.file_len + Buffer.length t.tail in
        Buffer.add_string t.tail key;
        if Buffer.length t.tail >= t.tail_cap then flush t;
        let lenfield = min len 0xfff in
        if lenfield = 0xfff then Hashtbl.replace t.long_lens off len;
        t.packed.(!j) <- pack ~off ~tag ~lenfield;
        t.count <- t.count + 1;
        t.key_bytes <- t.key_bytes + len;
        fresh := true;
        scanning := false
      end
      else begin
        let p = p - 1 in
        let off = p lsr 20 in
        if
          (p lsr 12) land 0xff = tag
          && entry_len t off (p land 0xfff) = len
          && stored_matches t off key
        then scanning := false
        else j := (!j + 1) land mask
      end
    done;
    !fresh

  let mem_bytes t =
    (8 * Array.length t.packed)
    + Buffer.length t.tail
    + (intern_entry_overhead * Hashtbl.length t.long_lens)
    + Bytes.length t.read_buf
end

let disk ?path ?(init_slots = 1024) ?(tail_cap = 1 lsl 16) () =
  let t = Diskset.create ?path ~init_slots ~tail_cap () in
  {
    add = (fun key -> Diskset.add t key);
    mem_bytes = (fun () -> Diskset.mem_bytes t);
    raw_bytes =
      (fun () -> t.Diskset.key_bytes + (per_state_overhead * t.Diskset.count));
    count = (fun () -> t.Diskset.count);
    iter_keys =
      (fun f ->
        (* The index knows (offset, length); visiting offsets in
           ascending order replays insertion order, so serialized
           checkpoints are deterministic for a given exploration. *)
        let entries = ref [] in
        Array.iter
          (fun p ->
            if p <> 0 then begin
              let off = (p - 1) lsr 20 in
              entries := (off, Diskset.entry_len t off ((p - 1) land 0xfff))
                         :: !entries
            end)
          t.Diskset.packed;
        let entries = List.sort compare !entries in
        List.iter
          (fun (off, len) ->
            Diskset.read_stored t off len;
            f (Bytes.sub_string t.Diskset.read_buf 0 len))
          entries);
  }

let make ?init_slots ?tail_cap = function
  | Mem -> exact ?init_slots ()
  | Collapse split -> collapse ?init_slots ~split ()
  | Disk -> disk ?init_slots ?tail_cap ()

(* ---- provenance side-table ----------------------------------------------

   Optional per-state provenance: for each visited state id (dense, in
   discovery order) the parent state's id and the ordinal of the fired
   transition within the parent's successor list.  One packed word per
   state — [parent lsl 16 lor (ord + 1)], the root stored with
   pseudo-ordinal -1 — either in a growable int array ([P_mem]) or as
   8-byte little-endian records appended to an unlinked temporary file
   through a tail buffer ([P_disk], the Diskset discipline), so the
   table stays out-of-core alongside [--store disk].  No labels are
   stored: replaying the i-th recorded ordinal against the current
   state's successor list recovers the label exactly, which turns
   counterexample reconstruction into an O(depth) chain walk plus one
   successor expansion per step instead of a sequential re-exploration. *)
module Prov = struct
  type pkind = P_mem | P_disk

  let pkind_name = function P_mem -> "mem" | P_disk -> "disk"

  let ord_bits = 16
  let ord_mask = (1 lsl ord_bits) - 1

  type disk_state = {
    fd : Unix.file_descr;
    mutable file_len : int; (* bytes flushed to [fd] *)
    tail : Buffer.t; (* records not yet flushed *)
    tail_cap : int;
    read_buf : Bytes.t; (* one 8-byte record *)
  }

  type backend = Arr of int array ref | File of disk_state

  type t = { mutable n : int; backend : backend }

  let create ?(kind = P_mem) ?(tail_cap = 1 lsl 16) () =
    let backend =
      match kind with
      | P_mem -> Arr (ref (Array.make 1024 0))
      | P_disk ->
        let path = Filename.temp_file "ccr_prov" ".log" in
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
        (* unlinked immediately: the file vanishes with the process *)
        Unix.unlink path;
        let ds =
          {
            fd;
            file_len = 0;
            tail = Buffer.create (min tail_cap 65536);
            tail_cap;
            read_buf = Bytes.create 8;
          }
        in
        (* same ownership story as Diskset: reclaim the fd with the table *)
        Gc.finalise
          (fun s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
          ds;
        File ds
    in
    { n = 0; backend }

  let flush d =
    let s = Buffer.contents d.tail in
    Buffer.clear d.tail;
    let len = String.length s in
    ignore (Unix.lseek d.fd d.file_len Unix.SEEK_SET);
    let written = ref 0 in
    while !written < len do
      written :=
        !written + Unix.write_substring d.fd s !written (len - !written)
    done;
    d.file_len <- d.file_len + len

  let record t ~id ~parent ~ord =
    if id <> t.n then
      invalid_arg "Vstore.Prov.record: ids must arrive densely in order";
    if ord < -1 || ord >= ord_mask then
      invalid_arg "Vstore.Prov.record: ordinal out of range";
    if parent < 0 || (parent >= id && ord >= 0) then
      invalid_arg "Vstore.Prov.record: parent must precede the state";
    let w = (parent lsl ord_bits) lor (ord + 1) in
    (match t.backend with
    | Arr slots ->
      if t.n >= Array.length !slots then begin
        let a = Array.make (2 * Array.length !slots) 0 in
        Array.blit !slots 0 a 0 t.n;
        slots := a
      end;
      !slots.(t.n) <- w
    | File d ->
      Bytes.set_int64_le d.read_buf 0 (Int64.of_int w);
      Buffer.add_bytes d.tail d.read_buf;
      if Buffer.length d.tail >= d.tail_cap then flush d);
    t.n <- t.n + 1

  let entry t id =
    if id < 0 || id >= t.n then invalid_arg "Vstore.Prov.entry: unknown id";
    let w =
      match t.backend with
      | Arr slots -> !slots.(id)
      | File d ->
        let off = 8 * id in
        if off >= d.file_len then
          Buffer.blit d.tail (off - d.file_len) d.read_buf 0 8
        else begin
          ignore (Unix.lseek d.fd off Unix.SEEK_SET);
          let got = ref 0 in
          while !got < 8 do
            let r = Unix.read d.fd d.read_buf !got (8 - !got) in
            if r = 0 then
              invalid_arg "Vstore.Prov: truncated provenance file";
            got := !got + r
          done
        end;
        Int64.to_int (Bytes.get_int64_le d.read_buf 0)
    in
    (w lsr ord_bits, (w land ord_mask) - 1)

  (* Ordinals along the chain from the root to [id], root first; the
     root's own pseudo-ordinal is not included. *)
  let chain t id =
    let rec up id acc =
      let parent, ord = entry t id in
      if ord < 0 then acc else up parent (ord :: acc)
    in
    up id []

  let count t = t.n

  let mem_bytes t =
    match t.backend with
    | Arr slots -> 8 * Array.length !slots
    | File d -> Buffer.length d.tail + Bytes.length d.read_buf + 64

  let bytes t = 8 * t.n
end
