(** Multi-process exploration.

    [run] partitions the canonical-key space over [workers] forked OS
    processes — each owning the visited-store shard for its keys, each
    free to run its own OCaml 5 domain pool — and coordinates them from
    the parent over pipes with a level-synchronous frontier-exchange
    protocol (see the implementation header for the wire steps).  Because
    ownership partitions keys and the parent assigns global discovery
    indices by sequential-BFS rank, [states] and [transitions] are
    byte-identical to {!Explore.run} and {!Explore.par_run} at every
    worker and job count (with the default exact stores; bitstate is not
    offered here).

    Use it when one process's heap is the bottleneck: each worker holds
    [1/workers] of the visited set, and with [--store collapse] or
    [--store disk] per worker the per-process resident set shrinks
    further.  For pure CPU parallelism inside one address space,
    {!Explore.par_run} has lower constant costs.

    The parent also supervises.  It retains, per worker, an append-only
    log of the keys merged into that worker's shard, so a worker that
    dies (crash, OOM kill, [CCR_CRASH_AT] injection) is respawned with
    exponential backoff, its store rebuilt from the log, and the
    interrupted protocol step replayed — counts are unaffected.  When
    the respawn budget ([2 * workers], reset on degradation) is
    exhausted, the key space is re-partitioned over one fewer worker and
    the round restarts; only the loss of the last worker fails the run.
    The same logs serve as the checkpoint serialization source, so
    attaching [ckpt] adds no protocol messages.

    Requirements: states and labels must contain no closures (frontier
    batches cross process boundaries via [Marshal]), and [run] must be
    called before any domain is spawned in the calling process (it
    forks).  All systems in this repository satisfy both. *)

val run :
  ?workers:int ->
  ?jobs:int ->
  ?store:Vstore.kind ->
  ?max_states:int ->
  ?max_mem_bytes:int ->
  ?max_time_s:float ->
  ?check_deadlock:bool ->
  ?trace:bool ->
  ?invariants:(string * ('s -> bool)) list ->
  ?on_progress:(Ccr_obs.Progress.sample -> unit) ->
  ?metrics:Ccr_obs.Metrics.t ->
  ?prov:Vstore.Prov.t ->
  ?on_level:(depth:int -> states:int -> unit) ->
  ?interrupt:(unit -> bool) ->
  ?ckpt:'s Explore.ckpt ->
  ?on_respawn:(worker:int -> unit) ->
  ?on_degrade:(workers:int -> unit) ->
  ('s, 'l) Explore.system ->
  ('s, 'l) Explore.stats
(** Explore with [workers] processes (default 2; [1] delegates to the
    in-process engines, forwarding every option including [interrupt]
    and [ckpt]) of [jobs] domains each (default 1).  Resource caps are
    applied at BFS-level granularity, as in {!Explore.par_run};
    [mem_bytes]/[raw_bytes] sum the per-worker stores.  On a violation or
    deadlock the parent falls back to a sequential re-run for the
    canonical first event and (with [~trace:true]) its shortest
    counterexample — unless [prov] is given, in which case the parent
    records provenance at global-index assignment (ids dense in
    sequential discovery order), selects the sequential-first event
    deterministically, and rebuilds the counterexample with
    {!Explore.replay_path}; as in {!Explore.par_run}, the event's level
    still completes, so [states]/[max_depth] may then exceed the
    sequential engine's while the trace is identical.  [metrics]
    (default: none) publishes per-worker [mpx.w<i>.states_per_s] and
    [mpx.w<i>.bytes_per_state] gauges through the obs layer.
    [on_progress] fires in the parent at every level boundary; its
    [shard_balance] reports how evenly states spread over the workers.
    [on_level] fires in the parent once per completed level, emitting
    exactly the sequential engine's (depth, cumulative states)
    sequence.

    [interrupt] is polled in the parent at each level boundary;
    [ckpt.ck_save] fires there too (the boundary is complete: all of the
    level's states are merged and identified), except after a mid-level
    deadline stop, where the frontier would be partial and the previous
    checkpoint stands.  [ckpt.ck_resume] must be a level-boundary
    payload (uniform depth, zero ordinals, contiguous trailing ids) —
    the sequential engine's mid-level checkpoints are refused with
    [Invalid_argument].  [on_respawn]/[on_degrade] observe supervision:
    a worker replaced after a crash, and the worker count dropping after
    a respawn-budget exhaustion. *)
