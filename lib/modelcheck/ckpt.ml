(* Crash-safe exploration checkpoints.

   A checkpoint is one file, [DIR/ckpt], holding everything a BFS engine
   needs to continue from a level boundary: a JSON manifest (spec hash,
   instance parameters, engine flags, cumulative counts), the serialized
   visited set, the unexpanded frontier, and the provenance slots.  Fault
   budgets need no section of their own: they live inside the states of
   the fault-injected semantics, so they ride in the marshalled frontier.

   Durability discipline: the file is written to [DIR/ckpt.tmp], fsynced,
   renamed over [DIR/ckpt], and the directory fsynced — a crash at any
   byte leaves either the previous checkpoint or a complete new one.
   Every section carries its length and CRC32, so a torn or bit-flipped
   file is refused on load with a precise message instead of being
   half-trusted.

   Version policy: [version] is stamped in the header and the manifest.
   Readers refuse newer versions; a format change that keeps old
   checkpoints readable keeps the version, anything else bumps it. *)

module J = Ccr_obs.Journal

let version = 1

let header = "CCRCKPT v1"

let file dir = Filename.concat dir "ckpt"

(* ---- CRC32 (IEEE 802.3, table-driven) ------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* ---- varints (visited-section key framing) ------------------------------- *)

let put_varint buf i =
  let rec go i =
    if i < 0x80 then Buffer.add_char buf (Char.unsafe_chr i)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (i land 0x7f)));
      go (i lsr 7)
    end
  in
  if i < 0 then invalid_arg "Ckpt.put_varint: negative";
  go i

(* returns (value, next position); raises [Exit] on truncation *)
let get_varint s pos =
  let rec go pos shift acc =
    if pos >= String.length s then raise Exit;
    let c = Char.code (String.unsafe_get s pos) in
    if c < 0x80 then (acc lor (c lsl shift), pos + 1)
    else go (pos + 1) (shift + 7) (acc lor ((c land 0x7f) lsl shift))
  in
  go pos 0 0

(* ---- section payloads ---------------------------------------------------- *)

let render_visited iter_keys =
  let buf = Buffer.create 65536 in
  iter_keys (fun k ->
      put_varint buf (String.length k);
      Buffer.add_string buf k);
  Buffer.contents buf

let iter_visited s f =
  let pos = ref 0 in
  (try
     while !pos < String.length s do
       let len, data = get_varint s !pos in
       if data + len > String.length s then raise Exit;
       f (String.sub s data len);
       pos := data + len
     done
   with Exit -> invalid_arg "Ckpt: truncated visited section")

let render_prov prov ~states =
  match prov with
  | None -> ""
  | Some p ->
    let n = Vstore.Prov.count p in
    if n <> states then
      invalid_arg
        (Printf.sprintf
           "Ckpt: provenance table holds %d records for %d states" n states);
    let b = Bytes.create (8 * n) in
    for id = 0 to n - 1 do
      let parent, ord = Vstore.Prov.entry p id in
      let w = (parent lsl 16) lor (ord + 1) in
      Bytes.set_int64_le b (8 * id) (Int64.of_int w)
    done;
    Bytes.unsafe_to_string b

let decode_prov s =
  let n = String.length s / 8 in
  Array.init n (fun id ->
      let w = Int64.to_int (String.get_int64_le s (8 * id)) in
      (w lsr 16, (w land 0xffff) - 1))

(* ---- atomic write -------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_atomically ~dir contents =
  mkdir_p dir;
  let tmp = file dir ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = String.length contents in
      let written = ref 0 in
      while !written < len do
        written :=
          !written + Unix.write_substring fd contents !written (len - !written)
      done;
      (* data must be durable before the rename publishes it *)
      Unix.fsync fd);
  Unix.rename tmp (file dir);
  fsync_dir dir

(* ---- save ---------------------------------------------------------------- *)

let section buf name payload =
  Buffer.add_string buf
    (Printf.sprintf "%s %d %08x\n" name (String.length payload)
       (crc32 payload));
  Buffer.add_string buf payload;
  Buffer.add_char buf '\n'

let save ~dir ~manifest ~prov (v : 's Explore.ckpt_view) =
  let frontier = v.Explore.v_frontier () in
  let manifest =
    manifest
    @ [
        ("ckpt_version", J.Int version);
        ("states", J.Int v.Explore.v_states);
        ("transitions", J.Int v.Explore.v_transitions);
        ("depth", J.Int v.Explore.v_depth);
        ("frontier_len", J.Int (Array.length frontier));
        ("prov_records", J.Int (match prov with
          | Some p -> Vstore.Prov.count p
          | None -> 0));
      ]
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  section buf "manifest" (J.to_string (J.Obj manifest));
  section buf "frontier" (Marshal.to_string frontier []);
  section buf "visited" (render_visited v.Explore.v_iter_keys);
  section buf "prov" (render_prov prov ~states:v.Explore.v_states);
  Buffer.add_string buf "end\n";
  let contents = Buffer.contents buf in
  write_atomically ~dir contents;
  String.length contents

(* ---- load ---------------------------------------------------------------- *)

type 's loaded = {
  l_manifest : (string * J.value) list;
  l_states : int;
  l_transitions : int;
  l_depth : int;
  l_frontier : (int * int * int * 's) array;
  l_keys : (string -> unit) -> unit;
  l_prov : (int * int) array;
  l_bytes : int;
}

exception Damaged of string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One "name len crc\n" + payload + "\n" block; returns (payload, next). *)
let read_section s pos name =
  let nl =
    match String.index_from_opt s pos '\n' with
    | Some i -> i
    | None -> raise (Damaged (Printf.sprintf "missing %s header" name))
  in
  let hdr = String.sub s pos (nl - pos) in
  let len, crc =
    try Scanf.sscanf hdr "%s %d %x" (fun n l c ->
        if n <> name then
          raise (Damaged (Printf.sprintf "expected section %s, found %s" name n));
        (l, c))
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      raise (Damaged (Printf.sprintf "malformed %s header" name))
  in
  let data = nl + 1 in
  if data + len + 1 > String.length s then
    raise
      (Damaged
         (Printf.sprintf "section %s truncated (%d of %d payload bytes)" name
            (String.length s - data) len));
  let payload = String.sub s data len in
  let found = crc32 payload in
  if found <> crc then
    raise
      (Damaged
         (Printf.sprintf "section %s fails its CRC (stored %08x, computed %08x)"
            name crc found));
  if s.[data + len] <> '\n' then
    raise (Damaged (Printf.sprintf "section %s missing terminator" name));
  (payload, data + len + 1)

let manifest_int m key =
  match J.get_int (J.find (J.Obj m) key) with
  | Some i -> i
  | None -> raise (Damaged (Printf.sprintf "manifest lacks %S" key))

let load ~dir =
  let path = file dir in
  try
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "no checkpoint at %s" path)
    else begin
      let s = read_file path in
      let hl = String.length header in
      if String.length s < hl + 1 || String.sub s 0 hl <> header then
        raise (Damaged "bad magic (not a ccr checkpoint, or a newer version)");
      if s.[hl] <> '\n' then raise (Damaged "bad magic terminator");
      let mstr, pos = read_section s (hl + 1) "manifest" in
      let manifest =
        match J.parse mstr with
        | Some (J.Obj fields) -> fields
        | Some _ | None -> raise (Damaged "manifest is not a JSON object")
      in
      let v = manifest_int manifest "ckpt_version" in
      if v > version then
        raise
          (Damaged
             (Printf.sprintf "written by a newer version (%d > %d)" v version));
      let fstr, pos = read_section s pos "frontier" in
      let vstr, pos = read_section s pos "visited" in
      let pstr, pos = read_section s pos "prov" in
      if
        pos + 4 > String.length s
        || String.sub s pos (String.length s - pos) <> "end\n"
      then raise (Damaged "missing end marker");
      let states = manifest_int manifest "states" in
      let frontier : (int * int * int * 's) array =
        try Marshal.from_string fstr 0
        with Failure _ -> raise (Damaged "frontier does not unmarshal")
      in
      if Array.length frontier <> manifest_int manifest "frontier_len" then
        raise (Damaged "frontier length disagrees with the manifest");
      let prov = decode_prov pstr in
      if Array.length prov > 0 && Array.length prov <> states then
        raise (Damaged "provenance record count disagrees with the manifest");
      Ok
        {
          l_manifest = manifest;
          l_states = states;
          l_transitions = manifest_int manifest "transitions";
          l_depth = manifest_int manifest "depth";
          l_frontier = frontier;
          l_keys = iter_visited vstr;
          l_prov = prov;
          l_bytes = String.length s;
        }
    end
  with
  | Damaged msg -> Error (Printf.sprintf "checkpoint %s refused: %s" path msg)
  | Sys_error msg -> Error (Printf.sprintf "checkpoint %s unreadable: %s" path msg)
  | Invalid_argument msg ->
    Error (Printf.sprintf "checkpoint %s refused: %s" path msg)

(* ---- compatibility guard -------------------------------------------------- *)

(* Fields that pin what is being explored: resuming under a different
   value would silently produce garbage counts, so any difference refuses
   with a field-by-field diff.  Store/prov kinds, job/worker counts and
   caps are deliberately absent — they affect how, not what, and may
   change across sessions. *)
let guard_keys =
  [ "spec_hash"; "protocol"; "level"; "n"; "k"; "generic"; "symmetry";
    "faults"; "harden" ]

let pp_value = function
  | J.Null -> "null"
  | v -> J.to_string v

let mismatch ~expected ~found =
  let diffs =
    List.filter_map
      (fun key ->
        match (List.assoc_opt key expected, List.assoc_opt key found) with
        | Some e, Some f when e = f -> None
        | Some e, Some f ->
          Some
            (Printf.sprintf "  %s: checkpoint has %s, this run has %s" key
               (pp_value f) (pp_value e))
        | Some e, None ->
          Some
            (Printf.sprintf "  %s: absent from checkpoint, this run has %s" key
               (pp_value e))
        | None, _ -> None)
      guard_keys
  in
  match diffs with
  | [] -> None
  | ds ->
    Some
      ("the checkpoint records a different exploration:\n"
      ^ String.concat "\n" ds)

(* ---- write policy --------------------------------------------------------- *)

type every = E_states of int | E_secs of float

let parse_every s =
  let num body conv err =
    match conv body with
    | Some v -> Ok v
    | None -> Error err
  in
  if s = "" then Error "empty --checkpoint-every"
  else if s.[String.length s - 1] = 's' then
    num
      (String.sub s 0 (String.length s - 1))
      (fun b -> Option.map (fun f -> E_secs f) (float_of_string_opt b))
      (Printf.sprintf "bad --checkpoint-every %S (expected e.g. 30s)" s)
  else
    num s
      (fun b -> Option.map (fun i -> E_states i) (int_of_string_opt b))
      (Printf.sprintf "bad --checkpoint-every %S (expected a state count or Ns)" s)

(* ---- deterministic crash injection ---------------------------------------- *)

type crash_at = { ca_worker : int option; ca_level : int }

(* CCR_CRASH_AT=level=L kills this process at BFS level L (checkpoint
   writers); CCR_CRASH_AT=worker=W,level=L kills Mpx worker W as it is
   about to expand level L.  Test-only: exercised by the resume smoke and
   the supervision suite. *)
let crash_at () =
  match Sys.getenv_opt "CCR_CRASH_AT" with
  | None | Some "" -> None
  | Some s ->
    let fields = String.split_on_char ',' s in
    let lookup k =
      List.find_map
        (fun f ->
          match String.index_opt f '=' with
          | Some i when String.sub f 0 i = k ->
            int_of_string_opt
              (String.sub f (i + 1) (String.length f - i - 1))
          | _ -> None)
        fields
    in
    (match lookup "level" with
    | Some l -> Some { ca_worker = lookup "worker"; ca_level = l }
    | None -> None)

let crash_here () = Unix.kill (Unix.getpid ()) Sys.sigkill

(* ---- the engine-facing save callback -------------------------------------- *)

let saver ~dir ~manifest ~prov ?every ?on_save () =
  let last_states = ref 0 in
  let last_time = ref (Unix.gettimeofday ()) in
  let crash =
    match crash_at () with
    | Some { ca_worker = None; ca_level } -> Some ca_level
    | _ -> None
  in
  fun (v : 's Explore.ckpt_view) ->
    let due =
      if v.Explore.v_final then
        (* a final view with an empty frontier is a finished exploration
           — complete, or stopped on an event; there is nothing a resume
           could continue, so skip the (large) write *)
        Array.length (v.Explore.v_frontier ()) > 0
      else
        match every with
        | None -> true
        | Some (E_states n) -> v.Explore.v_states - !last_states >= n
        | Some (E_secs secs) -> Unix.gettimeofday () -. !last_time >= secs
    in
    if due then begin
      let bytes = save ~dir ~manifest ~prov v in
      last_states := v.Explore.v_states;
      last_time := Unix.gettimeofday ();
      match on_save with
      | Some f ->
        f ~bytes ~states:v.Explore.v_states ~depth:v.Explore.v_depth
      | None -> ()
    end;
    (* fires after the write, so the smoke's kill point always has a
       fresh checkpoint to resume from *)
    match crash with
    | Some l when v.Explore.v_depth = l -> crash_here ()
    | _ -> ()
