(* Multi-process exploration: the canonical-key space is partitioned over
   [workers] forked OS processes, each owning the visited-set shard for
   its keys (and, with [jobs > 1], running its own OCaml 5 domain pool for
   successor generation and canonicalization).  The parent process is a
   pure coordinator: it routes frontier batches between workers over
   pipes and assigns global discovery indices, which makes state and
   transition counts byte-identical to the sequential engine's.

   Level-synchronous protocol, per BFS level:

   1. parent -> worker: the candidate states owned by that worker, each
      tagged with (parent global index, successor ordinal);
   2. worker: sorts its candidates by tag — exactly the order the
      sequential engine would discover them in — and runs them through
      its visited store, so the representative kept per key is
      deterministic and equal to [Explore.run]'s;
   3. worker -> parent: the tags found fresh (plus store/meter figures);
   4. parent: k-way merges the fresh tags of all workers, assigns each
      fresh state its global index by rank, applies the resource caps at
      level granularity, and answers with the indices (or a stop);
   5. worker: expands its fresh states (optionally over a domain pool)
      and sends every successor up; the parent routes them, closing the
      loop.

   Ownership partitions the key space, so freshness decisions are local
   to one worker and no cross-process race can affect them.  On a
   violation or deadlock the parent finishes the level, stops the
   workers, and falls back to a sequential re-run for the canonical
   first event and trace — the same discipline as [Explore.par_run].

   The parent is also a supervisor.  It keeps, per worker, an
   append-only log of the keys that merged fresh into that worker's
   shard (an unlinked temp file, so worker state is reconstructible
   without any worker cooperation).  A worker that dies — detected as
   EOF/EPIPE on its pipes — is respawned with exponential backoff, its
   store rebuilt from the log, and the in-flight protocol step replayed:
   a dedup round is simply re-sent, an expansion round is re-issued as an
   explicit [P_expand] (the parent retains each worker's fresh slice for
   exactly this purpose).  When the respawn budget runs out the parent
   degrades instead of failing: every worker is stopped, the key space is
   re-partitioned over one fewer worker from the logs, and the round
   restarts — counts are unaffected because global ids are assigned by
   (parent gidx, ordinal) rank, which is worker-count-independent.  The
   same logs double as the checkpoint serialization source, so
   [ckpt] costs no extra protocol messages. *)

(* Key-to-owner routing uses its own hash seed, independent of the exact
   store probe hash, the bitstate positions (0, 1), the in-process shard
   router (2) and the disk index (3). *)
let owner_seed = 4

type 's to_worker =
  | P_preload of string array
      (** add these keys to the store, silently: store reconstruction
          after a respawn, and checkpoint-resume seeding *)
  | P_candidates of (int * int * string * 's) array
      (** (gidx, ord, key, state), unsorted; all owned by the receiver *)
  | P_assign of { gidx : int array; stop : bool; level : int }
      (** global index for each fresh state, in the order the worker
          reported them; [stop] ends the worker after this message;
          [level] is the BFS depth about to be expanded *)
  | P_expand of { frontier : (int * 's) array; level : int }
      (** expand exactly these states (no dedup round): respawn
          recovery and checkpoint-resume *)

(* Events carry their discovery tag so the parent can pick the
   sequential-first one under provenance: a violation is tagged with the
   (parent gidx, successor ordinal) it was discovered from, a deadlock
   with the deadlocked state's own gidx.  Without provenance the tags are
   ignored and the sequential fallback still decides. *)
type event = Ev_violation of string * int * int | Ev_deadlock of int

type fresh_report = {
  tags : (int * int) array;  (** fresh candidates, in sorted tag order *)
  mem : int;
  raw : int;
  count : int;
  fallbacks : int;
  expand_s : float;  (** cumulative seconds spent expanding *)
  f_event : event option;  (** first invariant violation, if any *)
}

type 's exp_report = {
  succs : (int * int * string * 's) list;
      (** successor candidates, unordered; the parent re-buckets *)
  trans : int;  (** transitions generated this level *)
  x_event : event option;
  x_timed_out : bool;
}

type 's to_parent = W_fresh of fresh_report | W_expanded of 's exp_report

let send oc (msg : 'a) =
  Marshal.to_channel oc msg [];
  flush oc

let recv ic : 'a = Marshal.from_channel ic

(* ---- parent-side per-worker key logs -------------------------------------- *)

(* Everything a worker's visited shard contains, in insertion order, as
   varint-framed keys in an unlinked temp file.  Serves three masters:
   respawn preload, degradation re-partitioning, and the checkpoint
   visited section. *)
module Klog = struct
  type t = { fd : Unix.file_descr; buf : Buffer.t; mutable bytes : int }

  let create () =
    let path = Filename.temp_file "ccr-mpx" ".klog" in
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    { fd; buf = Buffer.create 8192; bytes = 0 }

  let flush t =
    if Buffer.length t.buf > 0 then begin
      let s = Buffer.contents t.buf in
      ignore (Unix.lseek t.fd t.bytes Unix.SEEK_SET);
      let len = String.length s in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring t.fd s !off (len - !off)
      done;
      t.bytes <- t.bytes + len;
      Buffer.clear t.buf
    end

  let add t key =
    let n = String.length key in
    let rec varint i =
      if i < 0x80 then Buffer.add_char t.buf (Char.unsafe_chr i)
      else begin
        Buffer.add_char t.buf (Char.unsafe_chr (0x80 lor (i land 0x7f)));
        varint (i lsr 7)
      end
    in
    varint n;
    Buffer.add_string t.buf key;
    if Buffer.length t.buf >= 1 lsl 18 then flush t

  let iter t f =
    flush t;
    ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
    let b = Bytes.create t.bytes in
    let off = ref 0 in
    while !off < t.bytes do
      let n = Unix.read t.fd b !off (t.bytes - !off) in
      if n = 0 then failwith "Mpx.Klog: short read";
      off := !off + n
    done;
    let pos = ref 0 in
    while !pos < t.bytes do
      let len = ref 0 and shift = ref 0 and more = ref true in
      while !more do
        let c = Char.code (Bytes.unsafe_get b !pos) in
        incr pos;
        if c < 0x80 then begin
          len := !len lor (c lsl !shift);
          more := false
        end
        else begin
          len := !len lor ((c land 0x7f) lsl !shift);
          shift := !shift + 7
        end
      done;
      f (Bytes.sub_string b !pos !len);
      pos := !pos + !len
    done

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* Expand [frontier] (an array of (gidx, state)), generating every
   successor tagged (gidx, ordinal) with its canonical key.  With
   [jobs > 1] and enough work the frontier is drained by a domain pool
   off an atomic cursor; order is irrelevant here — the owner sorts. *)
let expand_frontier ~jobs ~key_of ~succ ~check_deadlock ~deadline frontier =
  let len = Array.length frontier in
  let n_dom = if jobs > 1 && len >= 64 then jobs else 1 in
  let cursor = Atomic.make 0 in
  let batch = 16 in
  let one_domain () =
    let acc = ref [] and trans = ref 0 in
    (* min gidx that deadlocked (max_int = none): the minimum is what the
       sequential engine would have hit first *)
    let dead = ref max_int and timed_out = ref false in
    let running = ref true in
    while !running do
      let start = Atomic.fetch_and_add cursor batch in
      if start >= len then running := false
      else begin
        (match deadline with
        | Some d when Unix.gettimeofday () > d ->
          timed_out := true;
          running := false
        | _ -> ());
        if !running then
          for i = start to min len (start + batch) - 1 do
            let gidx, st = frontier.(i) in
            let succs = succ st in
            if check_deadlock && succs = [] && gidx < !dead then dead := gidx;
            trans := !trans + List.length succs;
            List.iteri
              (fun ord (_, st') -> acc := (gidx, ord, key_of st', st') :: !acc)
              succs
          done
      end
    done;
    (!acc, !trans, !dead, !timed_out)
  in
  let results =
    if n_dom = 1 then [ one_domain () ]
    else
      let doms = List.init (n_dom - 1) (fun _ -> Domain.spawn one_domain) in
      let mine = one_domain () in
      mine :: List.map Domain.join doms
  in
  List.fold_left
    (fun (acc, trans, dead, timed_out) (a, t, d, o) ->
      (List.rev_append a acc, trans + t, min dead d, timed_out || o))
    ([], 0, max_int, false)
    results

let worker_main ~wid ~ic ~oc ~jobs ~key_of ~on_fresh ~canon_fallbacks ~succ
    ~invariants ~check_deadlock ~store_kind ~deadline =
  (* interruption is the parent's to field: it reacts at the level
     boundary and stops us with [P_assign stop] — a worker that died to
     Ctrl-C would read as a crash and burn respawn budget *)
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm Sys.Signal_ignore;
  let crash_level =
    match Ckpt.crash_at () with
    | Some { Ckpt.ca_worker = Some w; ca_level } when w = wid -> Some ca_level
    | _ -> None
  in
  let maybe_crash level =
    match crash_level with
    | Some l when l = level -> Ckpt.crash_here ()
    | _ -> ()
  in
  let store = Vstore.make store_kind in
  let expand_s = ref 0. in
  let last_fresh = ref [||] in
  let expand_and_report frontier =
    let t0 = Unix.gettimeofday () in
    let acc, trans, dead, timed_out =
      expand_frontier ~jobs ~key_of ~succ ~check_deadlock ~deadline frontier
    in
    let event = if dead < max_int then Some (Ev_deadlock dead) else None in
    expand_s := !expand_s +. (Unix.gettimeofday () -. t0);
    send oc
      (W_expanded { succs = acc; trans; x_event = event; x_timed_out = timed_out })
  in
  let running = ref true in
  while !running do
    match (recv ic : _ to_worker) with
    | P_preload keys -> Array.iter (fun k -> ignore (store.Vstore.add k)) keys
    | P_candidates cands ->
      Array.sort
        (fun (g1, o1, _, _) (g2, o2, _, _) ->
          if g1 <> g2 then compare g1 g2 else compare o1 o2)
        cands;
      let fresh = ref [] and n_fresh = ref 0 in
      let event = ref None in
      Array.iter
        (fun (g, o, key, st) ->
          if store.Vstore.add key then begin
            on_fresh st;
            fresh := (g, o, st) :: !fresh;
            incr n_fresh;
            if !event = None then
              match
                List.find_opt (fun (_, check) -> not (check st)) invariants
              with
              | Some (name, _) ->
                (* the scan is in sorted tag order, so the first fresh
                   violation is this worker's (g, o)-minimal one *)
                event := Some (Ev_violation (name, g, o))
              | None -> ()
          end)
        cands;
      last_fresh := Array.of_list (List.rev !fresh);
      send oc
        (W_fresh
           {
             tags = Array.map (fun (g, o, _) -> (g, o)) !last_fresh;
             mem = store.Vstore.mem_bytes ();
             raw = store.Vstore.raw_bytes ();
             count = store.Vstore.count ();
             fallbacks = canon_fallbacks ();
             expand_s = !expand_s;
             f_event = !event;
           })
    | P_assign { gidx; stop; level } ->
      if stop then running := false
      else begin
        maybe_crash level;
        (* tags arrive sorted and global indices are assigned by tag
           rank, so the frontier is already in gidx order *)
        expand_and_report
          (Array.mapi (fun i (_, _, st) -> (gidx.(i), st)) !last_fresh)
      end
    | P_expand { frontier; level } ->
      maybe_crash level;
      expand_and_report frontier
  done

let merge_stats ~t0 ~outcome ~n_states ~transitions ~mem ~raw ~peak_frontier
    ~max_depth ~fallbacks =
  {
    Explore.outcome;
    states = n_states;
    transitions;
    time_s = Unix.gettimeofday () -. t0;
    mem_bytes = mem;
    raw_bytes = raw;
    peak_frontier;
    max_depth;
    canon_fallbacks = fallbacks;
    trace = None;
  }

exception Worker_died of int
exception Degrade

let run ?(workers = 2) ?(jobs = 1) ?(store = Vstore.Mem) ?max_states
    ?max_mem_bytes ?max_time_s ?(check_deadlock = false) ?(trace = false)
    ?(invariants = []) ?on_progress ?metrics ?prov ?on_level ?interrupt ?ckpt
    ?on_respawn ?on_degrade (sys : ('s, 'l) Explore.system) =
  let workers = max 1 workers in
  if workers = 1 then
    (* no partitioning to do: run in-process *)
    if jobs > 1 then
      Explore.par_run ~jobs ~store ?max_states ?max_mem_bytes ?max_time_s
        ~check_deadlock ~trace ~invariants ?on_progress ?prov ?on_level
        ?interrupt ?ckpt sys
    else
      Explore.run ~store ?max_states ?max_mem_bytes ?max_time_s
        ~check_deadlock ~trace ~invariants ?on_progress ?prov ?on_level
        ?interrupt ?ckpt sys
  else begin
    let t0 = Unix.gettimeofday () in
    let deadline = Option.map (fun cap -> t0 +. cap) max_time_s in
    let key_of, on_fresh, canon_fallbacks = Explore.key_fns sys in
    let resume =
      match ckpt with
      | Some { Explore.ck_resume = Some r; _ } -> Some r
      | _ -> None
    in
    (match resume with
    | Some r ->
      let len = Array.length r.Explore.r_frontier in
      if len = 0 then invalid_arg "Mpx.run: empty resume frontier";
      let _, d0, _, _ = r.Explore.r_frontier.(0) in
      Array.iteri
        (fun i (id, d, o, _) ->
          if d <> d0 || o <> 0 || id <> r.Explore.r_states - len + i then
            invalid_arg
              "Mpx.run: mid-level checkpoint (saved by the sequential \
               engine); resume it with -j 1 --workers 1")
        r.Explore.r_frontier
    | None -> ());
    (* a worker death turns into EPIPE on our next send; we want the
       Sys_error, not the default fatal signal *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let n_workers = ref workers in
    let spawn ~wid =
      (* fork before any domain is spawned in this process: mixing fork
         with live domains is unsupported in OCaml 5 (the parent never
         spawns domains itself, so respawns stay legal mid-run) *)
      let p2w_r, p2w_w = Unix.pipe ~cloexec:false () in
      let w2p_r, w2p_w = Unix.pipe ~cloexec:false () in
      match Unix.fork () with
      | 0 ->
        Unix.close p2w_w;
        Unix.close w2p_r;
        let ic = Unix.in_channel_of_descr p2w_r in
        let oc = Unix.out_channel_of_descr w2p_w in
        let status =
          try
            worker_main ~wid ~ic ~oc ~jobs ~key_of ~on_fresh ~canon_fallbacks
              ~succ:sys.Explore.succ ~invariants ~check_deadlock
              ~store_kind:store ~deadline;
            0
          with _ -> 1
        in
        (* _exit: skip the parent's at_exit/flush inherited state *)
        Unix._exit status
      | pid ->
        Unix.close p2w_r;
        Unix.close w2p_w;
        ( pid,
          Unix.out_channel_of_descr p2w_w,
          Unix.in_channel_of_descr w2p_r )
    in
    let procs = ref (Array.init workers (fun wid -> spawn ~wid)) in
    (* initial forks inherited the crash directive; clear it so
       respawned workers do not crash again on the same level *)
    (match Ckpt.crash_at () with
    | Some { Ckpt.ca_worker = Some _; _ } -> (
      try Unix.putenv "CCR_CRASH_AT" "" with Unix.Unix_error _ -> ())
    | _ -> ());
    let logs = ref (Array.init workers (fun _ -> Klog.create ())) in
    let respawn_budget = ref (workers * 2) in
    let respawn_attempts = ref 0 in
    let send_to w msg =
      let _, oc, _ = !procs.(w) in
      try send oc msg with Sys_error _ -> raise (Worker_died w)
    in
    let recv_from w : 's to_parent =
      let _, _, ic = !procs.(w) in
      try recv ic
      with End_of_file | Sys_error _ | Failure _ -> raise (Worker_died w)
    in
    let reap w =
      let pid, oc, ic = !procs.(w) in
      (try close_out oc with _ -> ());
      (try close_in ic with _ -> ());
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
    in
    let preload w =
      (* rebuild the worker's shard from its log, in batches so one
         message never holds the whole store *)
      let batch = ref [] and n = ref 0 in
      let flush_batch () =
        if !n > 0 then begin
          send_to w (P_preload (Array.of_list (List.rev !batch)));
          batch := [];
          n := 0
        end
      in
      Klog.iter !logs.(w) (fun k ->
          batch := k :: !batch;
          incr n;
          if !n >= 65536 then flush_batch ());
      flush_batch ()
    in
    let rec recover w =
      reap w;
      if !respawn_budget <= 0 then raise Degrade;
      decr respawn_budget;
      Unix.sleepf (0.05 *. (2. ** float_of_int (min !respawn_attempts 5)));
      incr respawn_attempts;
      !procs.(w) <- spawn ~wid:w;
      (match on_respawn with Some f -> f ~worker:w | None -> ());
      (* the replacement can die during its own preload; that counts
         against the same budget *)
      try preload w with Worker_died _ -> recover w
    in
    let worker_mem = ref (Array.make workers 0) in
    let worker_raw = ref (Array.make workers 0) in
    let worker_count = ref (Array.make workers 0) in
    let worker_fallbacks = ref (Array.make workers 0) in
    let worker_expand_s = ref (Array.make workers 0.) in
    let degrade () =
      (* respawn budget exhausted: re-partition the key space over one
         fewer worker (from the logs — no worker cooperation needed) and
         let the caller restart its round.  Counts are unaffected: global
         ids are assigned by tag rank, which ignores worker count. *)
      for w = 0 to !n_workers - 1 do
        reap w
      done;
      let w' = !n_workers - 1 in
      if w' < 1 then failwith "Mpx: all workers lost, respawn budget exhausted";
      let new_logs = Array.init w' (fun _ -> Klog.create ()) in
      Array.iter
        (fun l ->
          Klog.iter l (fun k ->
              Klog.add new_logs.(Hashtbl.seeded_hash owner_seed k mod w') k))
        !logs;
      Array.iter Klog.close !logs;
      logs := new_logs;
      n_workers := w';
      procs := Array.init w' (fun wid -> spawn ~wid);
      worker_mem := Array.make w' 0;
      worker_raw := Array.make w' 0;
      worker_count := Array.make w' 0;
      worker_fallbacks := Array.make w' 0;
      worker_expand_s := Array.make w' 0.;
      respawn_budget := w' * 2;
      respawn_attempts := 0;
      for w = 0 to w' - 1 do
        try preload w with Worker_died _ -> recover w
      done;
      match on_degrade with Some f -> f ~workers:w' | None -> ()
    in
    let owner w key = Hashtbl.seeded_hash owner_seed key mod w in
    (* One dedup round: bucket the level's candidates by owner, collect
       every W_fresh.  Survives worker deaths (respawn, replay the same
       bucket: dedup against the log-rebuilt store is deterministic) and
       degradation (full restart over fewer workers). *)
    let rec collect_fresh cands_all =
      try
        let w = !n_workers in
        let buckets = Array.make w [] in
        List.iter
          (fun ((_, _, key, _) as c) ->
            let o = owner w key in
            buckets.(o) <- c :: buckets.(o))
          cands_all;
        let sent = Array.map (fun l -> Array.of_list l) buckets in
        let reports = Array.make w None in
        while Array.exists Option.is_none reports do
          (* dispatch to every unreported worker first, then collect:
             workers dedup in parallel *)
          let pending = ref [] in
          for wk = w - 1 downto 0 do
            if reports.(wk) = None then
              try
                send_to wk (P_candidates sent.(wk));
                pending := wk :: !pending
              with Worker_died _ -> recover wk
          done;
          List.iter
            (fun wk ->
              try
                match recv_from wk with
                | W_fresh r -> reports.(wk) <- Some r
                | W_expanded _ -> invalid_arg "Mpx: unexpected expanded"
              with Worker_died _ -> recover wk)
            !pending
        done;
        (sent, Array.map Option.get reports)
      with Degrade ->
        degrade ();
        collect_fresh cands_all
    in
    (* One expansion round.  [slices.(wk)] is the (gidx, state) frontier
       worker [wk] owns — normally reachable via a bare [P_assign]
       (the worker kept its fresh list), but a respawned worker lost it
       and gets the explicit [P_expand].  Reports are staged and merged
       by the caller only once all arrive, so a late death never
       double-counts. *)
    let rec collect_expanded ~level ~assignments ~slices ~via_assign =
      try
        let w = !n_workers in
        let reports = Array.make w None in
        while Array.exists Option.is_none reports do
          let pending = ref [] in
          for wk = w - 1 downto 0 do
            if reports.(wk) = None then
              try
                (if via_assign.(wk) then
                   send_to wk
                     (P_assign { gidx = assignments.(wk); stop = false; level })
                 else send_to wk (P_expand { frontier = slices.(wk); level }));
                pending := wk :: !pending
              with Worker_died _ ->
                recover wk;
                via_assign.(wk) <- false
          done;
          List.iter
            (fun wk ->
              try
                match recv_from wk with
                | W_expanded r -> reports.(wk) <- Some r
                | W_fresh _ -> invalid_arg "Mpx: unexpected fresh"
              with Worker_died _ ->
                recover wk;
                via_assign.(wk) <- false)
            !pending
        done;
        Array.map Option.get reports
      with Degrade ->
        degrade ();
        let w = !n_workers in
        let slices' = Array.make w [] in
        Array.iter
          (Array.iter (fun ((_, st) as e) ->
               let o = owner w (key_of st) in
               slices'.(o) <- e :: slices'.(o)))
          slices;
        collect_expanded ~level
          ~assignments:(Array.make w [||])
          ~slices:(Array.map (fun l -> Array.of_list (List.rev l)) slices')
          ~via_assign:(Array.make w false)
    in
    let stop_workers () =
      for wk = 0 to !n_workers - 1 do
        try send_to wk (P_assign { gidx = [||]; stop = true; level = 0 })
        with Worker_died _ -> reap wk
      done
    in
    let shutdown () =
      Array.iter
        (fun (pid, oc, ic) ->
          (try close_out oc with _ -> ());
          (try close_in ic with _ -> ());
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        !procs;
      Array.iter Klog.close !logs;
      match old_sigpipe with
      | Some h -> ( try ignore (Sys.signal Sys.sigpipe h) with _ -> ())
      | None -> ()
    in
    Fun.protect ~finally:shutdown @@ fun () ->
    let n_states = ref 0 in
    let transitions = ref 0 in
    let peak_frontier = ref 0 in
    let depth = ref 0 in
    let max_depth = ref 0 in
    let event = ref None in
    let limit = ref None in
    let worker_partial = ref false in
    let prov_mode = prov <> None in
    let prov_record ~id ~parent ~ord =
      match prov with
      | Some p -> Vstore.Prov.record p ~id ~parent ~ord
      | None -> ()
    in
    (* With provenance the parent selects the sequential-first event
       itself: violations of the level being merged arrive in this
       iteration's W_fresh, deadlocks of the previous level arrive in the
       previous iteration's W_expanded — both index the same id range, so
       they are compared here before stopping.  [`V (name, id)] /
       [`D id]. *)
    let prov_event = ref None in
    let pending_dead = ref max_int in
    let gauges =
      match metrics with
      | None -> None
      | Some reg ->
        Some
          (Array.init workers (fun w ->
               ( Ccr_obs.Metrics.gauge reg
                   (Printf.sprintf "mpx.w%d.states_per_s" w),
                 Ccr_obs.Metrics.gauge reg
                   (Printf.sprintf "mpx.w%d.bytes_per_state" w) )))
    in
    let update_gauges () =
      match gauges with
      | None -> ()
      | Some gs ->
        Array.iteri
          (fun w (g_rate, g_bytes) ->
            if w < !n_workers then begin
              if !worker_expand_s.(w) > 0. then
                Ccr_obs.Metrics.set g_rate
                  (float_of_int !worker_count.(w) /. !worker_expand_s.(w));
              if !worker_count.(w) > 0 then
                Ccr_obs.Metrics.set g_bytes
                  (float_of_int !worker_mem.(w)
                  /. float_of_int !worker_count.(w))
            end)
          gs
    in
    let emit_progress ~frontier =
      match on_progress with
      | None -> ()
      | Some f ->
        let elapsed = Unix.gettimeofday () -. t0 in
        let maxc = Array.fold_left max 0 !worker_count in
        f
          {
            Ccr_obs.Progress.states = !n_states;
            transitions = !transitions;
            depth = !depth;
            frontier;
            rate =
              (if elapsed > 0. then float_of_int !n_states /. elapsed else 0.);
            mem_bytes = Array.fold_left ( + ) 0 !worker_mem;
            shard_balance =
              (if !n_states = 0 then 1.0
               else
                 float_of_int (maxc * !n_workers) /. float_of_int !n_states);
            elapsed_s = elapsed;
          }
    in
    (* candidates for the next dedup round (the successors of the level
       just expanded), across all owners *)
    let cands_all = ref [] in
    (* collect one expansion round into parent state *)
    let route_expanded reports =
      Array.iter
        (fun xr ->
          transitions := !transitions + xr.trans;
          (match xr.x_event with
          | Some (Ev_deadlock g) when prov_mode ->
            if g < !pending_dead then pending_dead := g
          | Some e when !event = None && not prov_mode -> event := Some e
          | _ -> ());
          if xr.x_timed_out then worker_partial := true;
          cands_all := List.rev_append xr.succs !cands_all)
        reports
    in
    (match resume with
    | None ->
      (* level 0: the initial state, routed to its owner like any other
         candidate, so its freshness/invariant handling is uniform *)
      cands_all := [ (0, 0, key_of sys.Explore.init, sys.Explore.init) ]
    | Some r ->
      (* seed counters, logs and worker shards from the checkpoint, then
         expand the checkpointed frontier directly — its states are
         already in the stores, so a dedup round would find nothing *)
      let len = Array.length r.Explore.r_frontier in
      let _, d0, _, _ = r.Explore.r_frontier.(0) in
      n_states := r.Explore.r_states;
      transitions := r.Explore.r_transitions;
      depth := d0;
      max_depth := d0;
      peak_frontier := len;
      (match max_states with
      | Some cap when !n_states >= cap -> limit := Some Explore.L_states
      | _ -> ());
      if !limit = None then begin
        let w = !n_workers in
        let batches = Array.make w [] in
        r.Explore.r_keys (fun k ->
            let o = owner w k in
            Klog.add !logs.(o) k;
            batches.(o) <- k :: batches.(o));
        Array.iteri
          (fun wk b ->
            try send_to wk (P_preload (Array.of_list (List.rev b)))
            with Worker_died _ -> recover wk (* recover preloads the log *))
          batches;
        let slices = Array.make w [] in
        Array.iter
          (fun (id, _, _, st) ->
            let o = owner w (key_of st) in
            slices.(o) <- (id, st) :: slices.(o))
          r.Explore.r_frontier;
        route_expanded
          (collect_expanded ~level:d0
             ~assignments:(Array.make w [||])
             ~slices:(Array.map (fun l -> Array.of_list (List.rev l)) slices)
             ~via_assign:(Array.make w false))
      end);
    let looping = ref (!limit = None) in
    let assignments = ref [||] in
    let fresh_cands = ref [||] in
    while !looping do
      (* phase 1+2: hand each worker its candidates, collect fresh tags *)
      let level_cands = !cands_all in
      cands_all := [];
      let sent, freshes = collect_fresh level_cands in
      let w = !n_workers in
      let best_viol = ref None in
      Array.iteri
        (fun wk fr ->
          !worker_mem.(wk) <- fr.mem;
          !worker_raw.(wk) <- fr.raw;
          !worker_count.(wk) <- fr.count;
          !worker_fallbacks.(wk) <- fr.fallbacks;
          !worker_expand_s.(wk) <- fr.expand_s;
          match fr.f_event with
          | Some (Ev_violation (name, g, o)) when prov_mode -> (
            (* each worker reports its (g, o)-minimal violation; keep
               the global minimum *)
            match !best_viol with
            | Some (g', o', _) when (g', o') <= (g, o) -> ()
            | _ -> best_viol := Some (g, o, name))
          | Some e when !event = None && not prov_mode -> event := Some e
          | _ -> ())
        freshes;
      (* phase 3: merge the tag streams (each already sorted) and assign
         global indices by overall rank — the sequential discovery order *)
      let worker_tags = Array.map (fun fr -> fr.tags) freshes in
      let total_fresh =
        Array.fold_left (fun a t -> a + Array.length t) 0 worker_tags
      in
      let merged = Array.make total_fresh (0, 0, 0) in
      let k = ref 0 in
      Array.iteri
        (fun wk tags ->
          Array.iteri
            (fun i (g, o) ->
              merged.(!k) <- (g, o, (wk lsl 32) lor i);
              incr k)
            tags)
        worker_tags;
      Array.sort
        (fun (g1, o1, _) (g2, o2, _) ->
          if g1 <> g2 then compare g1 g2 else compare o1 o2)
        merged;
      assignments :=
        Array.map (fun tags -> Array.make (Array.length tags) 0) worker_tags;
      Array.iteri
        (fun rank (g, o, src) ->
          let id = !n_states + rank in
          !assignments.(src lsr 32).(src land 0xffffffff) <- id;
          (* rank order is the sequential discovery order, so provenance
             ids recorded here are dense and engine-independent *)
          prov_record ~id ~parent:g ~ord:(if id = 0 then -1 else o))
        merged;
      (* recover each worker's fresh (key, state)s by matching its sorted
         candidates against the returned tags — tags are unique and both
         sides (g, o)-sorted, so one pointer walk per worker suffices.
         This is what makes workers expendable: the parent can re-issue
         any slice of the level, and serialize the frontier, alone. *)
      fresh_cands :=
        Array.mapi
          (fun wk tags ->
            let cands = Array.copy sent.(wk) in
            Array.sort
              (fun (g1, o1, _, _) (g2, o2, _, _) ->
                if g1 <> g2 then compare g1 g2 else compare o1 o2)
              cands;
            let out =
              Array.make (Array.length tags) (0, 0, "", sys.Explore.init)
            in
            let j = ref 0 in
            Array.iteri
              (fun i (g, o) ->
                while
                  (let g', o', _, _ = cands.(!j) in
                   (g', o') <> (g, o))
                do
                  incr j
                done;
                out.(i) <- cands.(!j))
              tags;
            out)
          worker_tags;
      (* the logs must mirror the stores before any checkpoint or
         respawn can rely on them *)
      Array.iteri
        (fun wk fc ->
          Array.iter (fun (_, _, key, _) -> Klog.add !logs.(wk) key) fc)
        !fresh_cands;
      (* deterministic event selection under provenance: compare this
         level's first violation with the previous level's first deadlock
         — the sequential engine hits a deadlock at gidx [d] before any
         discovery from [d], so the deadlock wins iff [d <= g] *)
      (if prov_mode && !prov_event = None && not !worker_partial then begin
         let d = !pending_dead in
         pending_dead := max_int;
         match !best_viol with
         | Some (g, o, name) when d = max_int || d > g ->
           let rank = ref (-1) in
           Array.iteri
             (fun r (g', o', _) ->
               if !rank < 0 && g' = g && o' = o then rank := r)
             merged;
           prov_event := Some (`V (name, !n_states + !rank))
         | _ when d < max_int -> prov_event := Some (`D d)
         | _ -> ()
       end);
      (* level boundary: previous level fully merged (depth and cumulative
         count only — deterministic across engines and parallelism) *)
      (match on_level with
      | Some f when total_fresh > 0 && !n_states > 0 ->
        f ~depth:!depth ~states:!n_states
      | _ -> ());
      n_states := !n_states + total_fresh;
      if total_fresh > !peak_frontier then peak_frontier := total_fresh;
      if total_fresh > 0 && !n_states > 1 then begin
        incr depth;
        max_depth := !depth
      end;
      emit_progress ~frontier:total_fresh;
      update_gauges ();
      (match interrupt with
      | Some f when f () -> limit := Some Explore.L_interrupt
      | _ -> ());
      (* caps, at level granularity as in [Explore.par_run] *)
      (match (max_states, max_mem_bytes) with
      | Some cap, _ when !n_states >= cap -> limit := Some Explore.L_states
      | _, Some cap when Array.fold_left ( + ) 0 !worker_mem >= cap ->
        limit := Some Explore.L_memory
      | _ -> ());
      (match deadline with
      | Some d when Unix.gettimeofday () > d -> limit := Some Explore.L_time
      | _ -> ());
      if !worker_partial then limit := Some Explore.L_time;
      let stop =
        total_fresh = 0 || !limit <> None || !event <> None
        || !prov_event <> None
      in
      (* checkpoint the boundary — unless the merged level is partial
         (a worker hit the deadline mid-expansion: the previous
         checkpoint stands) or the run ends in a definitive verdict *)
      (match ckpt with
      | Some c
        when total_fresh > 0 && (not !worker_partial) && !event = None
             && !prov_event = None ->
        let base = !n_states - total_fresh in
        let fc = !fresh_cands and asg = !assignments in
        c.Explore.ck_save
          {
            Explore.v_states = !n_states;
            v_transitions = !transitions;
            v_depth = !depth;
            v_final = stop;
            v_frontier =
              (fun () ->
                let arr =
                  Array.make total_fresh (0, 0, 0, sys.Explore.init)
                in
                Array.iteri
                  (fun wk slice ->
                    Array.iteri
                      (fun i (_, _, _, st) ->
                        let id = asg.(wk).(i) in
                        arr.(id - base) <- (id, !depth, 0, st))
                      slice)
                  fc;
                arr);
            v_iter_keys =
              (fun f -> Array.iter (fun l -> Klog.iter l f) !logs);
          }
      | _ -> ());
      if stop then begin
        stop_workers ();
        looping := false
      end
      else begin
        (* phase 4+5: expand the level, stage and route the successors *)
        let slices =
          Array.init w (fun wk ->
              Array.mapi
                (fun i (_, _, _, st) -> (!assignments.(wk).(i), st))
                !fresh_cands.(wk))
        in
        route_expanded
          (collect_expanded ~level:!depth ~assignments:!assignments ~slices
             ~via_assign:(Array.make w true))
      end
    done;
    match (!prov_event, !event) with
    | Some pe, _ ->
      (* the parent holds the provenance table and [sys]: replay the
         chain to the selected event's id — no re-exploration *)
      let p = match prov with Some p -> p | None -> assert false in
      let id = match pe with `V (_, id) | `D id -> id in
      let path = Explore.replay_path p sys id in
      let bad_state =
        match List.rev path with
        | (_, st) :: _ -> st
        | [] -> sys.Explore.init
      in
      let outcome =
        match pe with
        | `V (name, _) ->
          Explore.Violation { invariant = name; state = bad_state }
        | `D _ -> Explore.Deadlock bad_state
      in
      {
        (merge_stats ~t0 ~outcome ~n_states:!n_states
           ~transitions:!transitions
           ~mem:(Array.fold_left ( + ) 0 !worker_mem)
           ~raw:(Array.fold_left ( + ) 0 !worker_raw)
           ~peak_frontier:!peak_frontier ~max_depth:!max_depth
           ~fallbacks:(Array.fold_left ( + ) 0 !worker_fallbacks))
        with
        Explore.trace = (if trace then Some path else None);
      }
    | None, Some _ ->
      (* deterministic event + trace: sequential fallback, as par_run *)
      let r =
        Explore.run ~strategy:Explore.Bfs ~store ?max_states ?max_mem_bytes
          ?max_time_s ~check_deadlock ~trace ~invariants ?on_progress sys
      in
      { r with Explore.time_s = Unix.gettimeofday () -. t0 }
    | None, None ->
      merge_stats ~t0
        ~outcome:
          (match !limit with
          | Some l -> Explore.Limit l
          | None -> Explore.Complete)
        ~n_states:!n_states ~transitions:!transitions
        ~mem:(Array.fold_left ( + ) 0 !worker_mem)
        ~raw:(Array.fold_left ( + ) 0 !worker_raw)
        ~peak_frontier:!peak_frontier ~max_depth:!max_depth
        ~fallbacks:(Array.fold_left ( + ) 0 !worker_fallbacks)
  end
