(* Multi-process exploration: the canonical-key space is partitioned over
   [workers] forked OS processes, each owning the visited-set shard for
   its keys (and, with [jobs > 1], running its own OCaml 5 domain pool for
   successor generation and canonicalization).  The parent process is a
   pure coordinator: it routes frontier batches between workers over
   pipes and assigns global discovery indices, which makes state and
   transition counts byte-identical to the sequential engine's.

   Level-synchronous protocol, per BFS level:

   1. parent -> worker: the candidate states owned by that worker, each
      tagged with (parent global index, successor ordinal);
   2. worker: sorts its candidates by tag — exactly the order the
      sequential engine would discover them in — and runs them through
      its visited store, so the representative kept per key is
      deterministic and equal to [Explore.run]'s;
   3. worker -> parent: the tags found fresh (plus store/meter figures);
   4. parent: k-way merges the fresh tags of all workers, assigns each
      fresh state its global index by rank, applies the resource caps at
      level granularity, and answers with the indices (or a stop);
   5. worker: expands its fresh states (optionally over a domain pool),
      buckets every successor by [seeded_hash owner_seed key mod workers]
      and sends the buckets up; the parent routes them, closing the loop.

   Ownership partitions the key space, so freshness decisions are local
   to one worker and no cross-process race can affect them.  On a
   violation or deadlock the parent finishes the level, stops the
   workers, and falls back to a sequential re-run for the canonical
   first event and trace — the same discipline as [Explore.par_run]. *)

(* Key-to-owner routing uses its own hash seed, independent of the exact
   store probe hash, the bitstate positions (0, 1), the in-process shard
   router (2) and the disk index (3). *)
let owner_seed = 4

type 's to_worker =
  | P_candidates of (int * int * string * 's) array
      (** (gidx, ord, key, state), unsorted; all owned by the receiver *)
  | P_assign of { gidx : int array; stop : bool }
      (** global index for each fresh state, in the order the worker
          reported them; [stop] ends the worker after this message *)

(* Events carry their discovery tag so the parent can pick the
   sequential-first one under provenance: a violation is tagged with the
   (parent gidx, successor ordinal) it was discovered from, a deadlock
   with the deadlocked state's own gidx.  Without provenance the tags are
   ignored and the sequential fallback still decides. *)
type event = Ev_violation of string * int * int | Ev_deadlock of int

type 's to_parent =
  | W_fresh of {
      tags : (int * int) array;  (** fresh candidates, in sorted tag order *)
      mem : int;
      raw : int;
      count : int;
      fallbacks : int;
      expand_s : float;  (** cumulative seconds spent expanding *)
      event : event option;  (** first invariant violation, if any *)
    }
  | W_expanded of {
      buckets : (int * int * string * 's) list array;
          (** successor candidates per owner, unordered *)
      trans : int;  (** transitions generated this level *)
      event : event option;
      timed_out : bool;
    }

let send oc (msg : 'a) =
  Marshal.to_channel oc msg [];
  flush oc

let recv ic : 'a = Marshal.from_channel ic

(* Expand [frontier] (an array of (gidx, state)), generating every
   successor tagged (gidx, ordinal) with its canonical key.  With
   [jobs > 1] and enough work the frontier is drained by a domain pool
   off an atomic cursor; order is irrelevant here — the owner sorts. *)
let expand_frontier ~jobs ~key_of ~succ ~check_deadlock ~deadline frontier =
  let len = Array.length frontier in
  let n_dom = if jobs > 1 && len >= 64 then jobs else 1 in
  let cursor = Atomic.make 0 in
  let batch = 16 in
  let one_domain () =
    let acc = ref [] and trans = ref 0 in
    (* min gidx that deadlocked (max_int = none): the minimum is what the
       sequential engine would have hit first *)
    let dead = ref max_int and timed_out = ref false in
    let running = ref true in
    while !running do
      let start = Atomic.fetch_and_add cursor batch in
      if start >= len then running := false
      else begin
        (match deadline with
        | Some d when Unix.gettimeofday () > d ->
          timed_out := true;
          running := false
        | _ -> ());
        if !running then
          for i = start to min len (start + batch) - 1 do
            let gidx, st = frontier.(i) in
            let succs = succ st in
            if check_deadlock && succs = [] && gidx < !dead then dead := gidx;
            trans := !trans + List.length succs;
            List.iteri
              (fun ord (_, st') -> acc := (gidx, ord, key_of st', st') :: !acc)
              succs
          done
      end
    done;
    (!acc, !trans, !dead, !timed_out)
  in
  let results =
    if n_dom = 1 then [ one_domain () ]
    else
      let doms = List.init (n_dom - 1) (fun _ -> Domain.spawn one_domain) in
      let mine = one_domain () in
      mine :: List.map Domain.join doms
  in
  List.fold_left
    (fun (acc, trans, dead, timed_out) (a, t, d, o) ->
      (List.rev_append a acc, trans + t, min dead d, timed_out || o))
    ([], 0, max_int, false)
    results

let worker_main ~ic ~oc ~workers ~jobs ~key_of ~on_fresh ~canon_fallbacks
    ~succ ~invariants ~check_deadlock ~store_kind ~deadline =
  let store = Vstore.make store_kind in
  let expand_s = ref 0. in
  let running = ref true in
  while !running do
    let cands =
      match (recv ic : _ to_worker) with
      | P_candidates c -> c
      | P_assign _ -> invalid_arg "Mpx worker: unexpected assign"
    in
    Array.sort
      (fun (g1, o1, _, _) (g2, o2, _, _) ->
        if g1 <> g2 then compare g1 g2 else compare o1 o2)
      cands;
    let fresh = ref [] and n_fresh = ref 0 in
    let event = ref None in
    Array.iter
      (fun (g, o, key, st) ->
        if store.Vstore.add key then begin
          on_fresh st;
          fresh := (g, o, st) :: !fresh;
          incr n_fresh;
          if !event = None then
            match
              List.find_opt (fun (_, check) -> not (check st)) invariants
            with
            | Some (name, _) ->
              (* the scan is in sorted tag order, so the first fresh
                 violation is this worker's (g, o)-minimal one *)
              event := Some (Ev_violation (name, g, o))
            | None -> ()
        end)
      cands;
    let fresh = Array.of_list (List.rev !fresh) in
    send oc
      (W_fresh
         {
           tags = Array.map (fun (g, o, _) -> (g, o)) fresh;
           mem = store.Vstore.mem_bytes ();
           raw = store.Vstore.raw_bytes ();
           count = store.Vstore.count ();
           fallbacks = canon_fallbacks ();
           expand_s = !expand_s;
           event = !event;
         });
    (match (recv ic : _ to_worker) with
    | P_assign { gidx; stop } ->
      if stop then running := false
      else begin
        let frontier =
          Array.mapi (fun i (_, _, st) -> (gidx.(i), st)) fresh
        in
        (* tags arrive sorted and global indices are assigned by tag
           rank, so the frontier is already in gidx order *)
        let t0 = Unix.gettimeofday () in
        let acc, trans, dead, timed_out =
          expand_frontier ~jobs ~key_of ~succ ~check_deadlock ~deadline
            frontier
        in
        let event = if dead < max_int then Some (Ev_deadlock dead) else None in
        expand_s := !expand_s +. (Unix.gettimeofday () -. t0);
        let buckets = Array.make workers [] in
        List.iter
          (fun ((_, _, key, _) as entry) ->
            let w = Hashtbl.seeded_hash owner_seed key mod workers in
            buckets.(w) <- entry :: buckets.(w))
          acc;
        send oc (W_expanded { buckets; trans; event; timed_out })
      end
    | P_candidates _ -> invalid_arg "Mpx worker: unexpected candidates")
  done

let merge_stats ~t0 ~outcome ~n_states ~transitions ~mem ~raw ~peak_frontier
    ~max_depth ~fallbacks =
  {
    Explore.outcome;
    states = n_states;
    transitions;
    time_s = Unix.gettimeofday () -. t0;
    mem_bytes = mem;
    raw_bytes = raw;
    peak_frontier;
    max_depth;
    canon_fallbacks = fallbacks;
    trace = None;
  }

let run ?(workers = 2) ?(jobs = 1) ?(store = Vstore.Mem) ?max_states
    ?max_mem_bytes ?max_time_s ?(check_deadlock = false) ?(trace = false)
    ?(invariants = []) ?on_progress ?metrics ?prov ?on_level
    (sys : ('s, 'l) Explore.system) =
  let workers = max 1 workers in
  if workers = 1 then
    (* no partitioning to do: run in-process *)
    if jobs > 1 then
      Explore.par_run ~jobs ~store ?max_states ?max_mem_bytes ?max_time_s
        ~check_deadlock ~trace ~invariants ?on_progress ?prov ?on_level sys
    else
      Explore.run ~store ?max_states ?max_mem_bytes ?max_time_s
        ~check_deadlock ~trace ~invariants ?on_progress ?prov ?on_level sys
  else begin
    let t0 = Unix.gettimeofday () in
    let deadline = Option.map (fun cap -> t0 +. cap) max_time_s in
    let key_of, on_fresh, canon_fallbacks = Explore.key_fns sys in
    (* fork before any domain is spawned in this process: mixing fork
       with live domains is unsupported in OCaml 5 *)
    let procs =
      Array.init workers (fun _ ->
          let p2w_r, p2w_w = Unix.pipe ~cloexec:false () in
          let w2p_r, w2p_w = Unix.pipe ~cloexec:false () in
          match Unix.fork () with
          | 0 ->
            Unix.close p2w_w;
            Unix.close w2p_r;
            let ic = Unix.in_channel_of_descr p2w_r in
            let oc = Unix.out_channel_of_descr w2p_w in
            let status =
              try
                worker_main ~ic ~oc ~workers ~jobs ~key_of ~on_fresh
                  ~canon_fallbacks ~succ:sys.Explore.succ ~invariants
                  ~check_deadlock ~store_kind:store ~deadline;
                0
              with _ -> 1
            in
            (* _exit: skip the parent's at_exit/flush inherited state *)
            Unix._exit status
          | pid ->
            Unix.close p2w_r;
            Unix.close w2p_w;
            ( pid,
              Unix.out_channel_of_descr p2w_w,
              Unix.in_channel_of_descr w2p_r ))
    in
    let send_to w msg =
      let _, oc, _ = procs.(w) in
      send oc msg
    in
    let recv_from w : 's to_parent =
      let _, _, ic = procs.(w) in
      recv ic
    in
    let shutdown () =
      Array.iter
        (fun (pid, oc, ic) ->
          (try close_out oc with _ -> ());
          (try close_in ic with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        procs
    in
    let finally () = shutdown () in
    Fun.protect ~finally @@ fun () ->
    let n_states = ref 0 in
    let transitions = ref 0 in
    let peak_frontier = ref 0 in
    let depth = ref 0 in
    let max_depth = ref 0 in
    let event = ref None in
    let limit = ref None in
    let timed_out = ref false in
    let prov_mode = prov <> None in
    let prov_record ~id ~parent ~ord =
      match prov with
      | Some p -> Vstore.Prov.record p ~id ~parent ~ord
      | None -> ()
    in
    (* With provenance the parent selects the sequential-first event
       itself: violations of the level being merged arrive in this
       iteration's W_fresh, deadlocks of the previous level arrive in the
       previous iteration's W_expanded — both index the same id range, so
       they are compared here before stopping.  [`V (name, id)] /
       [`D id]. *)
    let prov_event = ref None in
    let pending_dead = ref max_int in
    let worker_mem = Array.make workers 0 in
    let worker_raw = Array.make workers 0 in
    let worker_count = Array.make workers 0 in
    let worker_fallbacks = Array.make workers 0 in
    let worker_expand_s = Array.make workers 0. in
    let gauges =
      match metrics with
      | None -> None
      | Some reg ->
        Some
          (Array.init workers (fun w ->
               ( Ccr_obs.Metrics.gauge reg
                   (Printf.sprintf "mpx.w%d.states_per_s" w),
                 Ccr_obs.Metrics.gauge reg
                   (Printf.sprintf "mpx.w%d.bytes_per_state" w) )))
    in
    let update_gauges () =
      match gauges with
      | None -> ()
      | Some gs ->
        Array.iteri
          (fun w (g_rate, g_bytes) ->
            if worker_expand_s.(w) > 0. then
              Ccr_obs.Metrics.set g_rate
                (float_of_int worker_count.(w) /. worker_expand_s.(w));
            if worker_count.(w) > 0 then
              Ccr_obs.Metrics.set g_bytes
                (float_of_int worker_mem.(w) /. float_of_int worker_count.(w)))
          gs
    in
    let emit_progress ~frontier =
      match on_progress with
      | None -> ()
      | Some f ->
        let elapsed = Unix.gettimeofday () -. t0 in
        let maxc = Array.fold_left max 0 worker_count in
        f
          {
            Ccr_obs.Progress.states = !n_states;
            transitions = !transitions;
            depth = !depth;
            frontier;
            rate =
              (if elapsed > 0. then float_of_int !n_states /. elapsed else 0.);
            mem_bytes = Array.fold_left ( + ) 0 worker_mem;
            shard_balance =
              (if !n_states = 0 then 1.0
               else
                 float_of_int (maxc * workers) /. float_of_int !n_states);
            elapsed_s = elapsed;
          }
    in
    let owner key = Hashtbl.seeded_hash owner_seed key mod workers in
    (* level 0: the initial state, routed to its owner like any other
       candidate, so its freshness/invariant handling is uniform *)
    let buckets = Array.make workers [] in
    let key0 = key_of sys.Explore.init in
    buckets.(owner key0) <- [ (0, 0, key0, sys.Explore.init) ];
    let looping = ref true in
    while !looping do
      (* phase 1+2: hand each worker its candidates, collect fresh tags *)
      Array.iteri
        (fun w b ->
          send_to w (P_candidates (Array.of_list b));
          buckets.(w) <- [])
        buckets;
      let best_viol = ref None in
      let worker_tags =
        Array.init workers (fun w ->
            match recv_from w with
            | W_fresh { tags; mem; raw; count; fallbacks; expand_s; event = e }
              ->
              worker_mem.(w) <- mem;
              worker_raw.(w) <- raw;
              worker_count.(w) <- count;
              worker_fallbacks.(w) <- fallbacks;
              worker_expand_s.(w) <- expand_s;
              (match e with
              | Some (Ev_violation (name, g, o)) when prov_mode -> (
                (* each worker reports its (g, o)-minimal violation; keep
                   the global minimum *)
                match !best_viol with
                | Some (g', o', _) when (g', o') <= (g, o) -> ()
                | _ -> best_viol := Some (g, o, name))
              | Some e when !event = None && not prov_mode -> event := Some e
              | _ -> ());
              tags
            | W_expanded _ -> invalid_arg "Mpx: unexpected expanded")
      in
      (* phase 3: merge the tag streams (each already sorted) and assign
         global indices by overall rank — the sequential discovery order *)
      let total_fresh = Array.fold_left (fun a t -> a + Array.length t) 0 worker_tags in
      let merged = Array.make total_fresh (0, 0, 0) in
      let k = ref 0 in
      Array.iteri
        (fun w tags ->
          Array.iteri
            (fun i (g, o) ->
              merged.(!k) <- (g, o, (w lsl 32) lor i);
              incr k)
            tags)
        worker_tags;
      Array.sort
        (fun (g1, o1, _) (g2, o2, _) ->
          if g1 <> g2 then compare g1 g2 else compare o1 o2)
        merged;
      let assignments = Array.map (fun tags -> Array.make (Array.length tags) 0) worker_tags in
      Array.iteri
        (fun rank (g, o, src) ->
          let id = !n_states + rank in
          assignments.(src lsr 32).(src land 0xffffffff) <- id;
          (* rank order is the sequential discovery order, so provenance
             ids recorded here are dense and engine-independent *)
          prov_record ~id ~parent:g ~ord:(if id = 0 then -1 else o))
        merged;
      (* deterministic event selection under provenance: compare this
         level's first violation with the previous level's first deadlock
         — the sequential engine hits a deadlock at gidx [d] before any
         discovery from [d], so the deadlock wins iff [d <= g] *)
      (if prov_mode && !prov_event = None && not !timed_out then begin
         let d = !pending_dead in
         pending_dead := max_int;
         match !best_viol with
         | Some (g, o, name) when d = max_int || d > g ->
           let rank = ref (-1) in
           Array.iteri
             (fun r (g', o', _) ->
               if !rank < 0 && g' = g && o' = o then rank := r)
             merged;
           prov_event := Some (`V (name, !n_states + !rank))
         | _ when d < max_int -> prov_event := Some (`D d)
         | _ -> ()
       end);
      (* level boundary: previous level fully merged (depth and cumulative
         count only — deterministic across engines and parallelism) *)
      (match on_level with
      | Some f when total_fresh > 0 && !n_states > 0 ->
        f ~depth:!depth ~states:!n_states
      | _ -> ());
      n_states := !n_states + total_fresh;
      if total_fresh > !peak_frontier then peak_frontier := total_fresh;
      if total_fresh > 0 && !n_states > 1 then begin
        incr depth;
        max_depth := !depth
      end;
      emit_progress ~frontier:total_fresh;
      update_gauges ();
      (* caps, at level granularity as in [Explore.par_run] *)
      (match (max_states, max_mem_bytes) with
      | Some cap, _ when !n_states >= cap -> limit := Some Explore.L_states
      | _, Some cap when Array.fold_left ( + ) 0 worker_mem >= cap ->
        limit := Some Explore.L_memory
      | _ -> ());
      (match deadline with
      | Some d when Unix.gettimeofday () > d ->
        timed_out := true;
        limit := Some Explore.L_time
      | _ -> ());
      if !timed_out then limit := Some Explore.L_time;
      let stop =
        total_fresh = 0 || !limit <> None || !event <> None
        || !prov_event <> None
      in
      Array.iteri
        (fun w gidx -> send_to w (P_assign { gidx; stop }))
        assignments;
      if stop then looping := false
      else
        (* phase 4+5: collect expansions, route successor buckets *)
        Array.iteri
          (fun w _ ->
            match recv_from w with
            | W_expanded { buckets = b; trans; event = e; timed_out = o } ->
              transitions := !transitions + trans;
              (match e with
              | Some (Ev_deadlock g) when prov_mode ->
                if g < !pending_dead then pending_dead := g
              | Some e when !event = None && not prov_mode -> event := Some e
              | _ -> ());
              if o then timed_out := true;
              Array.iteri
                (fun dst entries ->
                  buckets.(dst) <- List.rev_append entries buckets.(dst))
                b
            | W_fresh _ -> invalid_arg "Mpx: unexpected fresh")
          procs
    done;
    shutdown ();
    match (!prov_event, !event) with
    | Some pe, _ ->
      (* the parent holds the provenance table and [sys]: replay the
         chain to the selected event's id — no re-exploration *)
      let p = match prov with Some p -> p | None -> assert false in
      let id = match pe with `V (_, id) | `D id -> id in
      let path = Explore.replay_path p sys id in
      let bad_state =
        match List.rev path with
        | (_, st) :: _ -> st
        | [] -> sys.Explore.init
      in
      let outcome =
        match pe with
        | `V (name, _) ->
          Explore.Violation { invariant = name; state = bad_state }
        | `D _ -> Explore.Deadlock bad_state
      in
      {
        (merge_stats ~t0 ~outcome ~n_states:!n_states
           ~transitions:!transitions
           ~mem:(Array.fold_left ( + ) 0 worker_mem)
           ~raw:(Array.fold_left ( + ) 0 worker_raw)
           ~peak_frontier:!peak_frontier ~max_depth:!max_depth
           ~fallbacks:(Array.fold_left ( + ) 0 worker_fallbacks))
        with
        Explore.trace = (if trace then Some path else None);
      }
    | None, Some _ ->
      (* deterministic event + trace: sequential fallback, as par_run *)
      let r =
        Explore.run ~strategy:Explore.Bfs ~store ?max_states ?max_mem_bytes
          ?max_time_s ~check_deadlock ~trace ~invariants ?on_progress sys
      in
      { r with Explore.time_s = Unix.gettimeofday () -. t0 }
    | None, None ->
      merge_stats ~t0
        ~outcome:
          (match !limit with Some l -> Explore.Limit l | None -> Explore.Complete)
        ~n_states:!n_states ~transitions:!transitions
        ~mem:(Array.fold_left ( + ) 0 worker_mem)
        ~raw:(Array.fold_left ( + ) 0 worker_raw)
        ~peak_frontier:!peak_frontier ~max_depth:!max_depth
        ~fallbacks:(Array.fold_left ( + ) 0 worker_fallbacks)
  end
