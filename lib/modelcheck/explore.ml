type 's canon = {
  canon_key : 's -> string;
  canon_fresh : ('s -> unit) option;
  canon_fallbacks : unit -> int;
}

type ('s, 'l) system = {
  init : 's;
  succ : 's -> ('l * 's) list;
  encode : 's -> string;
  canon : 's canon option;
}

(* Visited-set key function and fresh-state callback: under symmetry
   reduction states are deduplicated by canonical key while the concrete
   state flows on to successor generation and traces. *)
let key_fns sys =
  match sys.canon with
  | None -> (sys.encode, (fun _ -> ()), fun () -> 0)
  | Some c ->
    ( c.canon_key,
      (match c.canon_fresh with None -> fun _ -> () | Some f -> f),
      c.canon_fallbacks )

type limit = L_states | L_memory | L_time | L_interrupt

type strategy = Bfs | Dfs

type visited_mode = Exact | Bitstate of int

type 's outcome =
  | Complete
  | Limit of limit
  | Violation of { invariant : string; state : 's }
  | Deadlock of 's

type ('s, 'l) stats = {
  outcome : 's outcome;
  states : int;
  transitions : int;
  time_s : float;
  mem_bytes : int;
  raw_bytes : int;
  peak_frontier : int;
  max_depth : int;
  canon_fallbacks : int;
  trace : ('l option * 's) list option;
}

(* ---- checkpoint control ---------------------------------------------------

   The engines know nothing about checkpoint files; they expose resumable
   points through this control record.  A frontier entry is
   [(id, depth, resume_ord, state)]: the state's visited id, its BFS
   depth, and the successor ordinal expansion should resume from (0
   everywhere except the sequential engine's in-flight state at a
   mid-level cap).  [ck_save] fires at every BFS level boundary — the
   moment every state of the frontier's depth is discovered and none is
   expanded — and once more with [v_final = true] when the engine stops
   at a resource cap or an interrupt; the callback (the [Ckpt] layer)
   decides whether to actually write. *)

type 's ckpt_view = {
  v_states : int;
  v_transitions : int;
  v_depth : int;
  v_final : bool;
  v_frontier : unit -> (int * int * int * 's) array;
  v_iter_keys : (string -> unit) -> unit;
}

type 's ckpt_resume = {
  r_states : int;
  r_transitions : int;
  r_frontier : (int * int * int * 's) array;
  r_keys : (string -> unit) -> unit;
}

type 's ckpt = {
  ck_resume : 's ckpt_resume option;
  ck_save : 's ckpt_view -> unit;
}

let bitstate_positions = Vstore.bitstate_positions

(* Reconstruct the path to state [id] from a provenance table: walk the
   parent chain (O(depth) packed-slot reads), then replay the recorded
   successor ordinals from the initial state.  Exact — each ordinal pins
   one concrete transition, so the labels and intermediate states equal
   what the in-memory trace arrays would have held, including under
   symmetry reduction (the replayed states are the concrete
   representatives the engine expanded). *)
let replay_path prov sys id =
  let rec go st ords acc =
    match ords with
    | [] -> List.rev acc
    | ord :: rest -> (
      match List.nth_opt (sys.succ st) ord with
      | Some (label, st') -> go st' rest ((Some label, st') :: acc)
      | None -> invalid_arg "Explore.replay_path: stale provenance ordinal")
  in
  go sys.init (Vstore.Prov.chain prov id) [ (None, sys.init) ]

(* The visited set: exact in-memory, collapse-compressed or out-of-core
   per the [store] kind, or bitstate when the [visited] mode asks for it
   (bitstate changes the semantics — approximate counts — so it stays a
   mode, not a store, and takes precedence). *)
let make_store ?init_slots ?tail_cap visited kind =
  match visited with
  | Exact -> Vstore.make ?init_slots ?tail_cap kind
  | Bitstate b -> Vstore.bitstate b

let run ?(strategy = Bfs) ?(visited = Exact) ?(store = Vstore.Mem) ?max_states
    ?max_mem_bytes ?max_time_s ?(check_deadlock = false) ?(trace = false)
    ?(invariants = []) ?on_progress ?(progress_every = 8192) ?prov ?on_level
    ?interrupt ?ckpt sys =
  let t0 = Unix.gettimeofday () in
  let key_of, on_fresh, canon_fallbacks = key_fns sys in
  let store = make_store visited store in
  (* With a provenance table the trace arrays are redundant: the packed
     side-table replaces the in-memory parent/state arrays outright. *)
  let keep_arrays = trace && prov = None in
  let prov_record ~id ~parent ~ord =
    match prov with
    | Some p -> Vstore.Prov.record p ~id ~parent ~ord
    | None -> ()
  in
  (* Level boundaries are only meaningful under BFS, where discovery
     depth is monotone. *)
  let emit_level =
    match (on_level, strategy) with
    | Some f, Bfs -> fun ~depth ~states -> f ~depth ~states
    | _ -> fun ~depth:_ ~states:_ -> ()
  in
  (* with [keep_arrays]: states.(id) and parents.(id) = (parent, label) *)
  let parents = ref [||] in
  let states = ref [||] in
  let n_states = ref 0 in
  let record st parent label =
    if keep_arrays then begin
      if !n_states >= Array.length !states then begin
        let cap = max 1024 (2 * Array.length !states) in
        let states' = Array.make cap st
        and parents' = Array.make cap (0, None) in
        Array.blit !states 0 states' 0 !n_states;
        Array.blit !parents 0 parents' 0 !n_states;
        states := states';
        parents := parents'
      end;
      !states.(!n_states) <- st;
      !parents.(!n_states) <- (parent, label)
    end
  in
  let rebuild_trace id =
    if not trace then None
    else
      match prov with
      | Some p -> Some (replay_path p sys id)
      | None ->
        let rec up id acc =
          let parent, label = !parents.(id) in
          let entry = (label, !states.(id)) in
          if parent = id then entry :: acc else up parent (entry :: acc)
        in
        Some (up id [])
  in
  let push_frontier, pop_frontier, frontier_empty, frontier_entries =
    match strategy with
    | Bfs ->
      let q = Queue.create () in
      ( (fun x -> Queue.push x q),
        (fun () -> Queue.pop q),
        (fun () -> Queue.is_empty q),
        fun () -> List.of_seq (Queue.to_seq q) )
    | Dfs ->
      let s = Stack.create () in
      ( (fun x -> Stack.push x s),
        (fun () -> Stack.pop s),
        (fun () -> Stack.is_empty s),
        fun () -> List.of_seq (Stack.to_seq s) )
  in
  let n_transitions = ref 0 in
  let frontier_len = ref 0 in
  let peak_frontier = ref 0 in
  let max_depth = ref 0 in
  let finished = ref None in
  let bad_id = ref 0 in
  let finish ?id o =
    if !finished = None then begin
      finished := Some o;
      match id with Some id -> bad_id := id | None -> ()
    end
  in
  let violated st =
    List.find_opt (fun (_, check) -> not (check st)) invariants
  in
  let emit_progress =
    match on_progress with
    | None -> fun _ -> ()
    | Some f ->
      fun depth ->
        if !n_states mod progress_every = 0 then begin
          let elapsed = Unix.gettimeofday () -. t0 in
          f
            {
              Ccr_obs.Progress.states = !n_states;
              transitions = !n_transitions;
              depth;
              frontier = !frontier_len;
              rate =
                (if elapsed > 0. then float_of_int !n_states /. elapsed
                 else 0.);
              mem_bytes = store.Vstore.mem_bytes ();
              shard_balance = 1.0;
              elapsed_s = elapsed;
            }
        end
  in
  let discover st parent label ~ord ~depth =
    let key = key_of st in
    if store.Vstore.add key then begin
      on_fresh st;
      let id = !n_states in
      record st parent label;
      prov_record ~id ~parent ~ord;
      if depth > !max_depth then begin
        (* first state of a deeper level: the previous level is complete *)
        emit_level ~depth:(depth - 1) ~states:!n_states;
        max_depth := depth
      end;
      incr n_states;
      (match violated st with
      | Some (name, _) ->
        finish ~id (Violation { invariant = name; state = st })
      | None -> ());
      (match (max_states, max_mem_bytes) with
      | Some cap, _ when !n_states >= cap -> finish (Limit L_states)
      | _, Some cap when store.Vstore.mem_bytes () >= cap ->
        finish (Limit L_memory)
      | _ -> ());
      push_frontier (st, id, depth);
      incr frontier_len;
      if !frontier_len > !peak_frontier then peak_frontier := !frontier_len;
      emit_progress depth
    end
  in
  (* Checkpoint control is BFS-only: level boundaries are not meaningful
     under DFS. *)
  let ck = match ckpt with Some c when strategy = Bfs -> Some c | _ -> None in
  let ck_save ~final ~head () =
    match ck with
    | None -> ()
    | Some c ->
      c.ck_save
        {
          v_states = !n_states;
          v_transitions = !n_transitions;
          v_depth = !max_depth;
          v_final = final;
          v_frontier =
            (fun () ->
              let rest =
                List.map
                  (fun (st, id, d) -> (id, d, 0, st))
                  (frontier_entries ())
              in
              Array.of_list
                (match head with
                | Some (st, id, d, o) -> (id, d, o, st) :: rest
                | None -> rest));
          v_iter_keys = store.Vstore.iter_keys;
        }
  in
  (* With an [ord] skip marker a resumed in-flight state re-expands only
     the successors the interrupted run never traversed, so transition
     counts continue exactly where the checkpoint left them. *)
  let pending_skip = ref None in
  (match ck with
  | Some { ck_resume = Some r; _ } ->
    r.r_keys (fun k -> ignore (store.Vstore.add k));
    n_states := r.r_states;
    n_transitions := r.r_transitions;
    Array.iter
      (fun (id, d, o, st) ->
        if d > !max_depth then max_depth := d;
        if o > 0 then pending_skip := Some (id, o);
        push_frontier (st, id, d);
        incr frontier_len)
      r.r_frontier;
    peak_frontier := !frontier_len
  | _ -> discover sys.init 0 None ~ord:(-1) ~depth:0);
  let last_depth = ref 0 in
  let inflight = ref None in
  while (not (frontier_empty ())) && !finished = None do
    let st, id, depth = pop_frontier () in
    decr frontier_len;
    let start_ord =
      match !pending_skip with
      | Some (sid, o) when sid = id ->
        pending_skip := None;
        o
      | _ -> 0
    in
    if ck <> None then begin
      (* first pop of a deeper level: every state of that level is
         discovered and none expanded — the resumable boundary *)
      if depth > !last_depth then
        ck_save ~final:false ~head:(Some (st, id, depth, start_ord)) ();
      inflight := Some (st, id, depth, start_ord)
    end;
    last_depth := depth;
    (* Consult the time cap before every expansion: a throttled check (the
       old every-256-pops scheme) lets a batch of slow [succ] calls
       overshoot the cap by seconds on the asynchronous protocols. *)
    (match max_time_s with
    | Some cap when Unix.gettimeofday () -. t0 > cap ->
      finish (Limit L_time)
    | _ -> ());
    (match interrupt with
    | Some f when f () -> finish (Limit L_interrupt)
    | _ -> ());
    if !finished = None then begin
      let succs = sys.succ st in
      if check_deadlock && succs = [] then finish ~id (Deadlock st);
      List.iteri
        (fun ord (label, st') ->
          if ord >= start_ord && !finished = None then begin
            incr n_transitions;
            discover st' id (Some label) ~ord ~depth:(depth + 1);
            if ck <> None && !finished <> None then
              inflight := Some (st, id, depth, ord + 1)
          end)
        succs
    end
  done;
  let outcome = match !finished with Some o -> o | None -> Complete in
  (match outcome with
  | Limit _ ->
    (* the last chance to persist work before reporting a cap or an
       interrupt: the in-flight state (with its resume ordinal) plus the
       unexpanded queue is exactly the run's remaining obligation *)
    ck_save ~final:true ~head:!inflight ()
  | Complete | Violation _ | Deadlock _ -> ());
  let trace_path =
    match outcome with
    | Violation _ | Deadlock _ -> rebuild_trace !bad_id
    | Complete | Limit _ -> None
  in
  {
    outcome;
    states = !n_states;
    transitions = !n_transitions;
    time_s = Unix.gettimeofday () -. t0;
    mem_bytes = store.Vstore.mem_bytes ();
    raw_bytes = store.Vstore.raw_bytes ();
    peak_frontier = !peak_frontier;
    max_depth = !max_depth;
    canon_fallbacks = canon_fallbacks ();
    trace = trace_path;
  }

(* ---- parallel exploration (OCaml 5 domains) ------------------------------ *)

(* Shard routing uses a third hash seed so it stays independent of both the
   exact store's probe hash (seed 0) and the bitstate positions (0 and 1). *)
let shard_seed = 2
let n_shards = 64 (* power of two; log2 = 6 *)

(* A reusable rendezvous point for [jobs] domains.  Phase counting makes it
   safe to reuse back-to-back (a fast domain cannot lap a slow one). *)
let make_barrier jobs =
  let lock = Mutex.create () and cond = Condition.create () in
  let count = ref 0 and phase = ref 0 in
  fun () ->
    Mutex.lock lock;
    let my = !phase in
    incr count;
    if !count = jobs then begin
      count := 0;
      incr phase;
      Condition.broadcast cond
    end
    else
      while !phase = my do
        Condition.wait cond lock
      done;
    Mutex.unlock lock

let par_run ?jobs ?(visited = Exact) ?(store = Vstore.Mem) ?max_states
    ?max_mem_bytes ?max_time_s ?(check_deadlock = false) ?(trace = false)
    ?(invariants = []) ?on_progress ?prov ?on_level ?interrupt ?ckpt sys =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  let t0 = Unix.gettimeofday () in
  let key_of, on_fresh, canon_fallbacks = key_fns sys in
  let store_kind = store in
  let prov_mode = prov <> None in
  let prov_record ~id ~parent ~ord =
    match prov with
    | Some p -> Vstore.Prov.record p ~id ~parent ~ord
    | None -> ()
  in
  (* Sharded visited set: [n_shards] independent stores, each behind its own
     mutex; states route to a shard by a seeded hash of the encoded key, so
     two domains only contend when they discover states that share a shard.
     Shards start with small index tables and tail buffers: mem_bytes is
     honest about table overhead, so 64 eagerly-sized shards would eat a
     small memory cap up front.  In [Bitstate b] mode each shard holds a
     table of [2^(b - log2 n_shards)] bits, keeping total memory at the
     sequential [2^b] bits (collision patterns differ from the sequential
     table's, so bitstate counts are, as always, approximate). *)
  let shard_stores =
    match (visited, store_kind) with
    | Exact, Vstore.Collapse split ->
      (* shared intern layer: per-shard tables would multiply the
         component-table memory by the shard count *)
      Vstore.collapse_shared ~init_slots:256 ~split n_shards
    | Exact, (Vstore.Mem | Vstore.Disk) ->
      Array.init n_shards (fun _ ->
          Vstore.make ~init_slots:256 ~tail_cap:8192 store_kind)
    | Bitstate b, _ -> Array.init n_shards (fun _ -> Vstore.bitstate (b - 6))
  in
  let shards = Array.map (fun s -> (Mutex.create (), s)) shard_stores in
  let shard_add key =
    let lock, store =
      shards.(Hashtbl.seeded_hash shard_seed key land (n_shards - 1))
    in
    Mutex.lock lock;
    let fresh = store.Vstore.add key in
    Mutex.unlock lock;
    fresh
  in
  let total_bytes () =
    Array.fold_left (fun acc (_, s) -> acc + s.Vstore.mem_bytes ()) 0 shards
  in
  let total_raw () =
    Array.fold_left (fun acc (_, s) -> acc + s.Vstore.raw_bytes ()) 0 shards
  in
  (* Cooperative stop flag, polled by every domain between expansions. *)
  let stop = Atomic.make false in
  let timed_out = Atomic.make false in
  let intr = Atomic.make false in
  (* First violation/deadlock/exception seen by any domain, in arrival
     order (the deterministic report comes from the sequential fallback). *)
  let event_lock = Mutex.create () in
  let event = ref None in
  (* With provenance the event is instead selected deterministically by
     the leader at a level boundary (the sequential-first event), with its
     bad-state id — no fallback re-run needed. *)
  let prov_event = ref None in
  let worker_exn = ref None in
  let record_event e =
    Mutex.lock event_lock;
    if !event = None then event := Some e;
    Mutex.unlock event_lock;
    Atomic.set stop true
  in
  let record_exn exn bt =
    Mutex.lock event_lock;
    if !worker_exn = None then worker_exn := Some (exn, bt);
    Mutex.unlock event_lock;
    Atomic.set stop true
  in
  (* Level-synchronous BFS.  All domains drain the current frontier in
     batches claimed off an atomic cursor; newly discovered states
     accumulate in per-domain buffers; at the level boundary the leader
     (worker 0) splices the buffers into the next frontier and applies the
     resource caps.  Expanding strictly level by level preserves BFS
     semantics, and per-domain buffers keep the shared structures cold
     inside a level. *)
  let frontier = ref [| sys.init |] in
  let cursor = Atomic.make 0 in
  let batch = 32 in
  let next = Array.init jobs (fun _ -> ref []) in
  let trans = Array.init jobs (fun _ -> ref 0) in
  let n_states = ref 0 in
  let limit_hit = ref None in
  let keep_going = ref true in
  let cur_depth = ref 0 in
  let peak_frontier = ref 1 in
  let barrier = make_barrier jobs in
  (* Only the leader (worker 0) emits progress, at level boundaries; the
     reads of other domains' transition counters and shard fills are
     unsynchronized (monitoring data, exactness not required). *)
  let emit_progress () =
    match on_progress with
    | None -> ()
    | Some f ->
      let total = !n_states in
      let maxc =
        Array.fold_left (fun m (_, s) -> max m (s.Vstore.count ())) 0 shards
      in
      let balance =
        if total = 0 then 1.0
        else float_of_int (maxc * n_shards) /. float_of_int total
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      f
        {
          Ccr_obs.Progress.states = total;
          transitions = Array.fold_left (fun acc r -> acc + !r) 0 trans;
          depth = !cur_depth;
          frontier = Array.length !frontier;
          rate = (if elapsed > 0. then float_of_int total /. elapsed else 0.);
          mem_bytes = total_bytes ();
          shard_balance = balance;
          elapsed_s = elapsed;
        }
  in
  let discover wid st' =
    let key = key_of st' in
    if shard_add key then begin
      on_fresh st';
      next.(wid) := st' :: !(next.(wid));
      match List.find_opt (fun (_, check) -> not (check st')) invariants with
      | Some (name, _) -> record_event (Violation { invariant = name; state = st' })
      | None -> ()
    end
  in
  (* Under symmetry reduction which orbit member reaches the visited set
     first decides the concrete representative whose successors get
     explored — and for protocols that are symmetric only up to dead
     rid-variable resets, different representatives reach different key
     sets.  The racy [discover] above would then make counts depend on the
     within-level race.  So with a [canon] hook the workers merely buffer
     every successor, tagged with its (frontier index, successor ordinal),
     and the leader replays the buffers in that order at the level
     boundary: freshness is decided exactly as the sequential engine would,
     so par_run keeps its counts-equal-seq determinism. *)
  let has_canon = sys.canon <> None in
  (* Provenance needs the same discovery order as the sequential engine
     (dense ids in seq-BFS order), so it forces the buffered leader-replay
     path even without a canon hook. *)
  let ordered = has_canon || prov_mode in
  let pend = Array.init jobs (fun _ -> ref []) in
  (* In prov mode deadlocks must not stop the level (the level has to
     complete for deterministic ids); each worker keeps the minimum
     frontier index it saw deadlock at, and the leader compares that with
     the first replayed violation at the boundary. *)
  let dead_idx = Array.init jobs (fun _ -> ref max_int) in
  let expand wid i st =
    (* same cap discipline as the sequential engine: consult the clock
       before every expansion *)
    (match max_time_s with
    | Some cap when Unix.gettimeofday () -. t0 > cap ->
      Atomic.set timed_out true;
      Atomic.set stop true
    | _ -> ());
    (match interrupt with
    | Some f when f () ->
      Atomic.set intr true;
      Atomic.set stop true
    | _ -> ());
    if not (Atomic.get stop) then begin
      let succs = sys.succ st in
      if check_deadlock && succs = [] then
        if prov_mode then begin
          if i < !(dead_idx.(wid)) then dead_idx.(wid) := i
        end
        else record_event (Deadlock st);
      trans.(wid) := !(trans.(wid)) + List.length succs;
      if ordered then
        (* canonicalization (the expensive step) stays in the workers *)
        List.iteri
          (fun ord (_, st') ->
            pend.(wid) := (i, ord, key_of st', st') :: !(pend.(wid)))
          succs
      else List.iter (fun (_, st') -> discover wid st') succs
    end
  in
  let worker wid () =
    let running = ref true in
    while !running do
      let f = !frontier in
      let len = Array.length f in
      let exhausted = ref false in
      while not !exhausted do
        let start = Atomic.fetch_and_add cursor batch in
        if start >= len then exhausted := true
        else
          for i = start to min len (start + batch) - 1 do
            if not (Atomic.get stop) then
              (* exceptions must not break out of the barrier protocol:
                 record, stop everyone, re-raise after the join *)
              try expand wid i f.(i)
              with exn -> record_exn exn (Printexc.get_raw_backtrace ())
          done
      done;
      barrier ();
      if wid = 0 then begin
        (* merge the per-domain discoveries into the next frontier *)
        let base_cur = !n_states - Array.length !frontier in
        let first_viol = ref None in
        let level =
          if ordered then begin
            (* replay the buffered discoveries in (frontier index,
               successor ordinal) order — the order the sequential engine
               discovers them in — so the representative kept per
               canonical key is race-free and identical to [run]'s *)
            let entries =
              Array.of_list
                (List.concat_map
                   (fun r ->
                     let l = !r in
                     r := [];
                     l)
                   (Array.to_list pend))
            in
            Array.sort
              (fun (i1, o1, _, _) (i2, o2, _, _) ->
                if i1 <> i2 then compare i1 i2 else compare o1 o2)
              entries;
            let acc = ref [] in
            let fresh_n = ref 0 in
            Array.iter
              (fun (i, ord, key, st') ->
                if shard_add key then begin
                  on_fresh st';
                  prov_record
                    ~id:(!n_states + !fresh_n)
                    ~parent:(base_cur + i) ~ord;
                  incr fresh_n;
                  acc := st' :: !acc;
                  match
                    List.find_opt (fun (_, check) -> not (check st')) invariants
                  with
                  | Some (name, _) ->
                    if prov_mode then begin
                      if !first_viol = None then
                        first_viol :=
                          Some (i, ord, !n_states + !fresh_n - 1, name, st')
                    end
                    else record_event (Violation { invariant = name; state = st' })
                  | None -> ()
                end)
              entries;
            List.rev !acc
          end
          else
            List.concat_map
              (fun r ->
                let l = !r in
                r := [];
                l)
              (Array.to_list next)
        in
        (* Deterministic event selection: the sequential engine would hit
           a deadlock at frontier index d before any discovery from d, so
           a deadlock wins against a violation replayed at (i, ord) iff
           d <= i.  Only the earliest level with an event reports. *)
        (if prov_mode && !prov_event = None && not (Atomic.get timed_out)
         then begin
           let dmin =
             Array.fold_left
               (fun m r ->
                 let v = !r in
                 r := max_int;
                 min m v)
               max_int dead_idx
           in
           match (!first_viol, dmin) with
           | None, d when d = max_int -> ()
           | Some (i, _ord, id, name, st'), d when d = max_int || d > i ->
             prov_event :=
               Some (Violation { invariant = name; state = st' }, id);
             Atomic.set stop true
           | _, d ->
             prov_event := Some (Deadlock (!frontier).(d), base_cur + d);
             Atomic.set stop true
         end);
        (* Level boundary: the frontier's level is fully expanded.  Depth
           and cumulative state count only — deterministic across engines
           and parallelism, unlike transition interleavings. *)
        (match on_level with
        | Some f when level <> [] -> f ~depth:!cur_depth ~states:!n_states
        | _ -> ());
        n_states := !n_states + List.length level;
        frontier := Array.of_list level;
        Atomic.set cursor 0;
        if Array.length !frontier > 0 then begin
          incr cur_depth;
          if Array.length !frontier > !peak_frontier then
            peak_frontier := Array.length !frontier;
          emit_progress ()
        end;
        (match (max_states, max_mem_bytes) with
        | Some cap, _ when !n_states >= cap ->
          limit_hit := Some (Limit L_states);
          Atomic.set stop true
        | _, Some cap when total_bytes () >= cap ->
          limit_hit := Some (Limit L_memory);
          Atomic.set stop true
        | _ -> ());
        if Atomic.get intr then limit_hit := Some (Limit L_interrupt);
        if Atomic.get timed_out then limit_hit := Some (Limit L_time);
        keep_going := (not (Atomic.get stop)) && Array.length !frontier > 0;
        (* Checkpoint at the level boundary — but not after a mid-level
           stop (time cap or interrupt caught workers part-way through a
           level, so the merged frontier is partial and not resumable;
           the previously written checkpoint stands). *)
        (match ckpt with
        | Some c
          when Array.length !frontier > 0
               && (not (Atomic.get timed_out))
               && (not (Atomic.get intr))
               && !event = None && !prov_event = None ->
          let len = Array.length !frontier in
          let base = !n_states - len in
          let d = !cur_depth in
          c.ck_save
            {
              v_states = !n_states;
              v_transitions = Array.fold_left (fun a r -> a + !r) 0 trans;
              v_depth = d;
              v_final = not !keep_going;
              v_frontier =
                (fun () -> Array.mapi (fun i st -> (base + i, d, 0, st)) !frontier);
              v_iter_keys =
                (fun f -> Array.iter (fun (_, s) -> s.Vstore.iter_keys f) shards);
            }
        | _ -> ())
      end;
      barrier ();
      running := !keep_going
    done
  in
  (* discover the initial state (and its possible violation) up front, as
     the sequential engine does — or, on resume, rebuild the level
     boundary the checkpoint recorded *)
  (match ckpt with
  | Some { ck_resume = Some r; _ } ->
    let len = Array.length r.r_frontier in
    if len = 0 then invalid_arg "Explore.par_run: empty resume frontier";
    let _, d0, _, _ = r.r_frontier.(0) in
    Array.iteri
      (fun i (id, d, o, _) ->
        if d <> d0 || o <> 0 || id <> r.r_states - len + i then
          invalid_arg
            "Explore.par_run: mid-level checkpoint (saved by the \
             sequential engine); resume it with -j 1")
      r.r_frontier;
    r.r_keys (fun k -> ignore (shard_add k));
    n_states := r.r_states;
    trans.(0) := r.r_transitions;
    frontier := Array.map (fun (_, _, _, st) -> st) r.r_frontier;
    cur_depth := d0;
    peak_frontier := len
  | _ ->
    ignore (shard_add (key_of sys.init));
    on_fresh sys.init;
    prov_record ~id:0 ~parent:0 ~ord:(-1);
    n_states := 1;
    (match
       List.find_opt (fun (_, check) -> not (check sys.init)) invariants
     with
    | Some (name, _) ->
      if prov_mode then begin
        prov_event :=
          Some (Violation { invariant = name; state = sys.init }, 0);
        Atomic.set stop true
      end
      else record_event (Violation { invariant = name; state = sys.init })
    | None -> ()));
  (match max_states with
  | Some cap when !n_states >= cap ->
    limit_hit := Some (Limit L_states);
    Atomic.set stop true
  | _ -> ());
  let others = List.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join others;
  (match !worker_exn with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ());
  match (!prov_event, !event) with
  | Some (outcome, bad_id), _ ->
    (* The leader already selected the sequential-first event and its
       state id; the counterexample is an O(depth) provenance chain walk
       — no re-exploration. *)
    let trace_path =
      match (trace, prov) with
      | true, Some p -> Some (replay_path p sys bad_id)
      | _ -> None
    in
    {
      outcome;
      states = !n_states;
      transitions = Array.fold_left (fun acc r -> acc + !r) 0 trans;
      time_s = Unix.gettimeofday () -. t0;
      mem_bytes = total_bytes ();
      raw_bytes = total_raw ();
      peak_frontier = !peak_frontier;
      max_depth = !cur_depth;
      canon_fallbacks = canon_fallbacks ();
      trace = trace_path;
    }
  | None, Some _ ->
    (* A violation or deadlock was found without provenance.  Which one
       the stats report, and the counterexample trace, must be
       deterministic: fall back to a sequential BFS re-run, which returns
       the canonical (shallowest, first-discovered) event with its
       shortest-path trace. *)
    let r =
      run ~strategy:Bfs ~visited ~store:store_kind ?max_states ?max_mem_bytes
        ?max_time_s ~check_deadlock ~trace ~invariants ?on_progress ?interrupt
        sys
    in
    { r with time_s = Unix.gettimeofday () -. t0 }
  | None, None ->
    {
      outcome = (match !limit_hit with Some o -> o | None -> Complete);
      states = !n_states;
      transitions = Array.fold_left (fun acc r -> acc + !r) 0 trans;
      time_s = Unix.gettimeofday () -. t0;
      mem_bytes = total_bytes ();
      raw_bytes = total_raw ();
      peak_frontier = !peak_frontier;
      max_depth = !cur_depth;
      canon_fallbacks = canon_fallbacks ();
      trace = None;
    }

let pp_outcome pp_state ppf = function
  | Complete -> Fmt.string ppf "complete"
  | Limit L_states -> Fmt.string ppf "unfinished (state cap)"
  | Limit L_memory -> Fmt.string ppf "unfinished (memory cap)"
  | Limit L_time -> Fmt.string ppf "unfinished (time cap)"
  | Limit L_interrupt -> Fmt.string ppf "unfinished (interrupted)"
  | Violation { invariant; state } ->
    Fmt.pf ppf "invariant %s violated at@,%a" invariant pp_state state
  | Deadlock state -> Fmt.pf ppf "deadlock at@,%a" pp_state state
