type ('s, 'l) t = {
  states : 's array;
  edges : ('l * int) list array;
  parents : (int * 'l option) array;
  truncated : bool;
}

let build ?(max_states = 1_000_000) (sys : ('s, 'l) Explore.system) =
  let visited : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref [] and n = ref 0 in
  let parents_acc = ref [] in
  let queue = Queue.create () in
  let truncated = ref false in
  (* Quotient graphs come for free: key by the canonical encoding when the
     system carries a symmetry hook, keeping concrete representatives. *)
  let key_of =
    match sys.canon with None -> sys.encode | Some c -> c.Explore.canon_key
  in
  (* BFS provenance recorded at discovery: the first edge reaching a state
     in BFS order is its tree parent, so witness paths are shortest and
     identical to what a fresh BFS would find. *)
  let discover parent label st =
    let key = key_of st in
    match Hashtbl.find_opt visited key with
    | Some id -> id
    | None ->
      let id = !n in
      incr n;
      Hashtbl.add visited key id;
      states := st :: !states;
      parents_acc := (parent, label) :: !parents_acc;
      Queue.push (st, id) queue;
      id
  in
  ignore (discover 0 None sys.init);
  let edges_acc = ref [] in
  while not (Queue.is_empty queue) do
    let st, id = Queue.pop queue in
    if !n > max_states then truncated := true
    else
      let out =
        List.map (fun (l, st') -> (l, discover id (Some l) st')) (sys.succ st)
      in
      edges_acc := (id, out) :: !edges_acc
  done;
  let states = Array.of_list (List.rev !states) in
  let parents = Array.of_list (List.rev !parents_acc) in
  let edges = Array.make (Array.length states) [] in
  List.iter (fun (id, out) -> edges.(id) <- out) !edges_acc;
  { states; edges; parents; truncated = !truncated }

let deadlocks g =
  Array.to_list
    (Array.mapi (fun i out -> (i, out)) g.edges)
  |> List.filter_map (fun (i, out) -> if out = [] then Some i else None)

(* A state is good iff it can reach the source of a progress edge.
   Compute the set by backward closure over a reversed graph; then report
   the [from]-states outside it. *)
let violates_ag_implies_ef g ~from ~progress =
  let n = Array.length g.states in
  let preds = Array.make n [] in
  Array.iteri
    (fun src out -> List.iter (fun (_, dst) -> preds.(dst) <- src :: preds.(dst)) out)
    g.edges;
  let good = Array.make n false in
  let stack = Stack.create () in
  Array.iteri
    (fun src out ->
      if (not good.(src)) && List.exists (fun (l, _) -> progress l) out then begin
        good.(src) <- true;
        Stack.push src stack
      end)
    g.edges;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    List.iter
      (fun p ->
        if not good.(p) then begin
          good.(p) <- true;
          Stack.push p stack
        end)
      preds.(v)
  done;
  let bad = ref [] in
  for i = n - 1 downto 0 do
    if (not good.(i)) && from g.states.(i) then bad := i :: !bad
  done;
  !bad

let violates_ag_ef g ~progress =
  violates_ag_implies_ef g ~from:(fun _ -> true) ~progress

(* O(depth) walk up the BFS provenance recorded at build time — no
   re-traversal.  Ids are BFS discovery order, so the chain is a shortest
   path and matches what the old fresh-BFS reconstruction returned. *)
let path_to g target =
  if target < 0 || target >= Array.length g.states then []
  else
    let rec up v acc =
      match g.parents.(v) with
      | _, None -> (None, g.states.(v)) :: acc
      | p, Some l -> up p ((Some l, g.states.(v)) :: acc)
    in
    up target []
