(** Materialized reachability graphs for liveness-flavoured analyses.

    {!Explore.run} streams through the state space and keeps only hashes;
    this module instead retains every state and edge so that global
    questions can be asked — chiefly the forward-progress property of
    paper §2.5: from every reachable state, a progress transition (a
    completed rendezvous) must remain reachable.  Intended for the small
    configurations where such questions are tractable. *)

type ('s, 'l) t = {
  states : 's array;
  edges : ('l * int) list array;  (** edges.(i) = outgoing edges of state i *)
  parents : (int * 'l option) array;
      (** BFS provenance recorded at discovery: [parents.(i)] is the tree
          parent of state [i] and the label that reached it first
          ([(0, None)] for the root) — what {!path_to} walks *)
  truncated : bool;  (** true if [max_states] stopped the construction *)
}

val build : ?max_states:int -> ('s, 'l) Explore.system -> ('s, 'l) t

val deadlocks : ('s, 'l) t -> int list
(** Indices of states with no outgoing edges. *)

val violates_ag_ef :
  ('s, 'l) t -> progress:('l -> bool) -> int list
(** Indices of states from which no progress-labeled edge is reachable —
    witnesses against "from everywhere, some rendezvous can still
    complete".  Empty on a truncated graph means nothing; callers should
    check [truncated]. *)

val violates_ag_implies_ef :
  ('s, 'l) t -> from:('s -> bool) -> progress:('l -> bool) -> int list
(** Witnesses against [AG (from ⇒ EF progress)]: indices of states
    satisfying [from] from which no progress-labeled edge is reachable.
    With [from = fun _ -> true] this is {!violates_ag_ef}.  Used for
    per-remote response possibility: "whenever remote i is waiting, its
    completion is still reachable". *)

val path_to : ('s, 'l) t -> int -> ('l option * 's) list
(** A shortest path (by BFS order) from the initial state to the given
    state index: an O(depth) walk up the [parents] chain recorded at
    build time, not a re-traversal.  [[]] on an out-of-range index. *)
