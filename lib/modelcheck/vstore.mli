(** Visited-state stores for the exploration engines.

    Explicit-state exploration is bounded by the visited set (the paper's
    Table 3 "Unfinished" entries are exactly this cliff), so the store is
    pluggable:

    - {!Mem}: the exact interned hash set — fastest, one full key in RAM
      per state.
    - {!Collapse}: SPIN-style collapse compression (Holzmann).  A key is
      cut into per-component substrings by a [split] function; each
      distinct component value is interned once per position and the set
      stores only the tuple of small ids, in a flat byte arena.
      Component values repeat massively across states, so a 50–200 byte
      key shrinks to a handful of bytes.  Exact: key ↦ tuple is a
      bijection (components concatenate back to the key), so counts equal
      {!Mem}'s.
    - {!Disk}: out-of-core.  Key bytes live in an unlinked temporary
      file; RAM holds a one-word-per-slot (offset, hash-tag, length)
      index.  A tag hit is confirmed by reading the stored key back, so —
      unlike bitstate hashing — counts stay exact while resident memory
      drops to ~8 bytes per slot.

    All stores are single-threaded; the parallel engine wraps one store
    per shard behind its own mutex. *)

type t = {
  add : string -> bool;
      (** [add key] is [true] when the key was not seen before (and marks
          it) — the one hot-path operation *)
  mem_bytes : unit -> int;
      (** honest resident memory: key/tuple bytes {e plus} table slots,
          headers, tail buffers — what a memory cap should meter *)
  raw_bytes : unit -> int;
      (** what the plain interned store would hold for the same states
          (key bytes + a fixed per-state overhead): the stable baseline
          for compression-ratio and bytes/state comparisons *)
  count : unit -> int;  (** keys marked *)
  iter_keys : (string -> unit) -> unit;
      (** visit every stored key — in insertion order for the collapse
          and disk stores, in (deterministic) table order for the exact
          store — so serialization of a given run is reproducible.
          @raise Invalid_argument for {!bitstate}, which drops the keys
          by construction. *)
}

type kind = Mem | Collapse of (string -> int array) | Disk
(** Store selector, as exposed by [ccr check --store].  [Collapse]
    carries the component splitter: given an encoded key, the offsets
    just past each component, in order, the last equal to the key length
    (see e.g. {!Ccr_refine.Async.split_key}). *)

val kind_name : kind -> string

val make : ?init_slots:int -> ?tail_cap:int -> kind -> t
(** [init_slots] (default 4096 for {!exact}, 1024 otherwise; must be a
    power of two) sizes the initial index so sharded engines can start
    small — with honest [mem_bytes], 64 eagerly-huge shards would burn a
    small memory cap before exploring a single state.  [tail_cap]
    (default 64 KiB, {!Disk} only) bounds the in-RAM append buffer. *)

val exact : ?init_slots:int -> unit -> t
val collapse : ?init_slots:int -> split:(string -> int array) -> unit -> t
val disk : ?path:string -> ?init_slots:int -> ?tail_cap:int -> unit -> t
(** [?path] names the backing file (created/truncated, left on disk) so a
    checkpointed run can reopen a stable store file; without it the store
    lives in an unlinked temp file that vanishes with the process. *)

val collapse_shared :
  ?init_slots:int -> split:(string -> int array) -> int -> t array
(** [n] collapse stores sharing one mutex-guarded intern layer, for the
    sharded parallel engine: without sharing, every shard would intern
    its own copy of every component value, multiplying the table memory
    by the shard count.  Each store's tuple set stays private (callers
    serialize per-store access, e.g. with per-shard mutexes); only the
    first store's [mem_bytes] counts the shared tables. *)

val bitstate : int -> t
(** Supertrace/bitstate hashing with a [2^bits]-bit table and two
    independent hash positions, as SPIN's [-DBITSTATE].  Collisions
    silently prune states: [count] is a lower bound.  Not a [kind]: the
    engines select it through their [visited] mode, which takes
    precedence over [--store]. *)

val bitstate_positions : bits:int -> string -> int * int
(** The two bit-table positions a key occupies under {!bitstate} (seeded
    hashes 0 and 1, masked to [2^bits]); exposed so tests can pin the
    independence of the two positions. *)

val per_state_overhead : int
(** The fixed per-state overhead {!t.raw_bytes} adds to the key bytes. *)

(** {2 Component interning}

    The collapse store's per-position intern tables, exposed for the
    codec round-trip tests: {!Intern.get} inverts {!Intern.id}. *)
module Intern : sig
  type t

  val create : unit -> t

  val id : t -> string -> int
  (** Intern a component value: a fresh value gets the next id (ids are
      dense from 0, in first-seen order); a seen value returns its id. *)

  val get : t -> int -> string
  (** The component value behind an id.
      @raise Invalid_argument on an id never returned by {!id}. *)

  val count : t -> int
  val mem_bytes : t -> int
end

(** {2 Provenance side-table}

    Optional per-state provenance for the exploration engines: for each
    visited state id (dense, in discovery order) the parent id and the
    ordinal of the fired transition within the parent's successor list.
    One packed 8-byte slot per state, resident ([P_mem]) or appended to
    an unlinked temporary file through a tail buffer ([P_disk]) so the
    table stays out-of-core alongside [--store disk].  Labels are not
    stored — replaying the recorded ordinals from the initial state
    recovers them — so counterexample reconstruction is an O(depth)
    chain walk instead of a sequential re-exploration. *)
module Prov : sig
  type t

  type pkind = P_mem | P_disk

  val pkind_name : pkind -> string

  val create : ?kind:pkind -> ?tail_cap:int -> unit -> t
  (** Defaults: [P_mem]; [tail_cap] (bytes, [P_disk] only) 64 KiB. *)

  val record : t -> id:int -> parent:int -> ord:int -> unit
  (** Record state [id]'s provenance.  Ids must arrive densely in
      increasing order ([id] = number of records so far).  The root is
      recorded as [~parent:0 ~ord:(-1)].
      @raise Invalid_argument on out-of-order ids, ordinals outside
      [-1, 2^16-2], or a non-root parent not preceding its child. *)

  val entry : t -> int -> int * int
  (** [(parent, ord)] of a recorded id; the root yields [(0, -1)]. *)

  val chain : t -> int -> int list
  (** Successor ordinals along the chain from the root to [id], root
      first (the root's pseudo-ordinal excluded). *)

  val count : t -> int

  val mem_bytes : t -> int
  (** Resident bytes (the array, or the tail/read buffers). *)

  val bytes : t -> int
  (** Total provenance bytes recorded, resident or not: 8 per state. *)
end
