(** Crash-safe exploration checkpoints.

    One file, [DIR/ckpt], holds everything a BFS engine needs to continue
    from a level boundary: a JSON manifest (spec hash, instance
    parameters, engine flags, cumulative counts), the serialized visited
    set, the unexpanded frontier, and the provenance slots.  Fault
    budgets have no section of their own — they live inside the states of
    the fault-injected semantics and ride in the marshalled frontier.

    Writes are atomic (temp file, fsync, rename, directory fsync): a
    crash at any byte leaves either the previous checkpoint or a complete
    new one.  Every section carries its length and CRC32, so torn or
    corrupted files are refused on load with a precise message.  The
    engine side of the contract ({!Explore.ckpt}) is deliberately
    format-blind; everything about bytes on disk lives here. *)

val version : int
(** Format version stamped in the header and manifest.  Readers refuse
    checkpoints written by a newer version; compatible format changes
    keep the number, incompatible ones bump it. *)

val file : string -> string
(** [file dir] is the checkpoint path inside [dir] ([dir ^ "/ckpt"]). *)

val crc32 : string -> int
(** IEEE CRC32 (the one in zlib/PNG), exposed for tests. *)

val save :
  dir:string ->
  manifest:(string * Ccr_obs.Journal.value) list ->
  prov:Vstore.Prov.t option ->
  's Explore.ckpt_view ->
  int
(** Write a checkpoint for the boundary [view] into [dir] (created if
    missing), returning the file's size in bytes.  [manifest] is the
    caller's static description of the run (see {!guard_keys}); the
    dynamic fields ([ckpt_version], [states], [transitions], [depth],
    [frontier_len], [prov_records]) are appended here.  When [prov] is
    given it must hold exactly [v_states] records. *)

type 's loaded = {
  l_manifest : (string * Ccr_obs.Journal.value) list;
  l_states : int;
  l_transitions : int;
  l_depth : int;  (** BFS depth of the checkpointed frontier *)
  l_frontier : (int * int * int * 's) array;
      (** [(id, depth, resume_ord, state)], as {!Explore.ckpt_resume} *)
  l_keys : (string -> unit) -> unit;
      (** re-iterate the visited-set keys, insertion order preserved *)
  l_prov : (int * int) array;
      (** [(parent, ord)] per dense id, empty when saved without
          provenance; replay through {!Vstore.Prov.record} before
          resuming *)
  l_bytes : int;  (** checkpoint file size *)
}

val load : dir:string -> ('s loaded, string) result
(** Read and verify [dir]'s checkpoint.  Any damage — missing file, bad
    magic, truncation at whatever byte, CRC mismatch, manifest/section
    disagreement, newer version — yields [Error] with a one-line
    diagnosis; this function never raises on malformed input.

    The ['s] is trusted, not checked: marshalled states carry no type
    information, which is why {!mismatch} must pass before the frontier
    is used. *)

val guard_keys : string list
(** Manifest fields that pin {e what} is being explored ([spec_hash],
    [protocol], [level], [n], [k], [generic], [symmetry], [faults],
    [harden]).  Store kind, provenance kind, job/worker counts and
    resource caps are deliberately absent: they affect how, not what,
    and may change between sessions of one run. *)

val mismatch :
  expected:(string * Ccr_obs.Journal.value) list ->
  found:(string * Ccr_obs.Journal.value) list ->
  string option
(** Compare the current run's manifest ([expected]) against a loaded
    one over {!guard_keys}.  [None] means resuming is safe; [Some diff]
    is a multi-line, field-by-field refusal message. *)

type every = E_states of int | E_secs of float

val parse_every : string -> (every, string) result
(** Parse a [--checkpoint-every] argument: a plain integer is a state
    count, a [30s]/[0.5s] suffix form is a wall-clock period. *)

val saver :
  dir:string ->
  manifest:(string * Ccr_obs.Journal.value) list ->
  prov:Vstore.Prov.t option ->
  ?every:every ->
  ?on_save:(bytes:int -> states:int -> depth:int -> unit) ->
  unit ->
  's Explore.ckpt_view ->
  unit
(** The standard write policy, packaged as an {!Explore.ckpt} [ck_save]
    callback.  Writes at every level boundary by default, or when
    [every] states/seconds have accumulated since the last write.  A
    [v_final] view writes regardless of [every] — but only when its
    frontier is non-empty: a finished exploration has nothing a resume
    could continue, so the (large) final write is skipped.  [on_save]
    observes each completed
    write (for journaling and byte metering).  Honors the [level=L] form
    of [CCR_CRASH_AT] (see {!crash_at}) by killing the process {e after}
    the boundary's write. *)

(** {2 Deterministic crash injection}

    [CCR_CRASH_AT=level=L] kills the checkpoint-writing process at BFS
    level [L]; [CCR_CRASH_AT=worker=W,level=L] kills multi-process
    worker [W] as it is about to expand level [L].  Test-only: this is
    how the resume smoke and the supervision suite make crashes
    reproducible. *)

type crash_at = { ca_worker : int option; ca_level : int }

val crash_at : unit -> crash_at option
(** The parsed [CCR_CRASH_AT] directive, if any. *)

val crash_here : unit -> unit
(** [SIGKILL] the current process — no atexit, no flush, the closest
    portable stand-in for power loss. *)
