(** Synchronous (rendezvous) semantics of a linked protocol.

    This is the atomic-transaction view the designer writes and verifies
    (paper §2.3): a rendezvous between the home and a remote happens in a
    single indivisible step; [Tau] guards interleave freely.  Its state
    space is what the left columns of the paper's Table 3 measure. *)

open Ccr_core

type pstate = { ctl : int; env : Value.t array }

type state = { h : pstate; r : pstate array }

type proc_id = Ph | Pr of int

type label =
  | L_tau of proc_id * string
  | L_rendezvous of {
      active : proc_id;
      passive : proc_id;
      msg : string;
      payload : Value.t list;
    }

val initial : Prog.t -> state

val successors : Prog.t -> state -> (label * state) list
(** All enabled transitions: every [Tau] instance of every process and
    every matching (active send, passive receive) guard pair. *)

val encode : state -> string
(** Injective byte encoding, for visited-state hashing. *)

val encode_perm : p:int array -> inv:int array -> state -> string
(** [encode_perm ~p ~inv st] is byte-identical to [encode] applied to [st]
    with the remotes permuted by [p] ([inv] is [p]'s inverse: slot [j] of
    the permuted state is [st]'s slot [inv.(j)]), without materializing the
    permuted state.  Backbone of fast symmetry canonicalization. *)

val split_key : Prog.t -> string -> int array
(** [split_key prog key] cuts an {!encode}d (or canonical) key into
    per-process components for collapse compression: [1 + n] offsets, one
    just past the home's bytes and one past each remote's.  The last
    offset equals [String.length key]. *)

val pp_proc_id : proc_id Fmt.t
val pp_label : label Fmt.t
val pp_state : Prog.t -> state Fmt.t
