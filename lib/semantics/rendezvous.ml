open Ccr_core

type pstate = { ctl : int; env : Value.t array }

type state = { h : pstate; r : pstate array }

type proc_id = Ph | Pr of int

type label =
  | L_tau of proc_id * string
  | L_rendezvous of {
      active : proc_id;
      passive : proc_id;
      msg : string;
      payload : Value.t list;
    }

let initial (prog : Prog.t) =
  {
    h = { ctl = prog.home.p_init; env = Array.copy prog.home.p_init_env };
    r =
      Array.init prog.n (fun _ ->
          { ctl = prog.remote.p_init; env = Array.copy prog.remote.p_init_env });
  }

let with_home st h = { st with h }
let with_remote st i r = { st with r = (let a = Array.copy st.r in a.(i) <- r; a) }

(* Tau transitions of one process. *)
let taus ~self (proc : Prog.proc) (ps : pstate) =
  let cstate = proc.p_states.(ps.ctl) in
  Array.to_list cstate.cs_guards
  |> List.concat_map (fun (g : Prog.cguard) ->
         match g.cg_action with
         | Prog.C_tau l ->
           Prog.guard_instances ~self ps.env g ~extra:[]
           |> List.map (fun scratch ->
                  let env' = Prog.complete ~self scratch g in
                  (l, { ctl = g.cg_target; env = env' }))
         | _ -> [])

(* Matches of an active send (payload already evaluated) against the
   passive peer's current state. *)
let passive_matches ~self (proc : Prog.proc) (ps : pstate) ~from_home ~sender
    ~msg ~payload =
  let cstate = proc.p_states.(ps.ctl) in
  Array.to_list cstate.cs_guards
  |> List.concat_map (fun (g : Prog.cguard) ->
         let try_with extra ~filter =
           Prog.guard_instances ~self ps.env g ~extra
           |> List.filter filter
           |> List.map (fun scratch ->
                  let env' = Prog.complete ~self scratch g in
                  { ctl = g.cg_target; env = env' })
         in
         match g.cg_action with
         | Prog.C_recv_home (m, slots) when from_home && m = msg ->
           try_with (List.combine slots payload) ~filter:(fun _ -> true)
         | Prog.C_recv_any (binder, m, slots) when (not from_home) && m = msg
           ->
           try_with
             ((binder, Value.Vrid sender) :: List.combine slots payload)
             ~filter:(fun _ -> true)
         | Prog.C_recv_from (e, m, slots) when (not from_home) && m = msg ->
           try_with (List.combine slots payload) ~filter:(fun scratch ->
               match Prog.eval ~env:scratch ~self e with
               | Value.Vrid r -> r = sender
               | _ -> false)
         | _ -> [])

let successors (prog : Prog.t) (st : state) =
  let acc = ref [] in
  let push x = acc := x :: !acc in
  (* home taus *)
  List.iter
    (fun (l, h') -> push (L_tau (Ph, l), with_home st h'))
    (taus ~self:None prog.home st.h);
  (* remote taus *)
  Array.iteri
    (fun i ri ->
      List.iter
        (fun (l, r') -> push (L_tau (Pr i, l), with_remote st i r'))
        (taus ~self:(Some i) prog.remote ri))
    st.r;
  (* home-active rendezvous *)
  let hstate = prog.home.p_states.(st.h.ctl) in
  Array.iter
    (fun (g : Prog.cguard) ->
      match g.cg_action with
      | Prog.C_send_remote (dst, msg, args) ->
        Prog.guard_instances ~self:None st.h.env g ~extra:[]
        |> List.iter (fun scratch ->
               match Prog.eval ~env:scratch ~self:None dst with
               | Value.Vrid j when j >= 0 && j < prog.n ->
                 let payload =
                   List.map (Prog.eval ~env:scratch ~self:None) args
                 in
                 let h' =
                   {
                     ctl = g.cg_target;
                     env = Prog.complete ~self:None scratch g;
                   }
                 in
                 passive_matches ~self:(Some j) prog.remote st.r.(j)
                   ~from_home:true ~sender:(-1) ~msg ~payload
                 |> List.iter (fun r' ->
                        push
                          ( L_rendezvous
                              { active = Ph; passive = Pr j; msg; payload },
                            with_remote (with_home st h') j r' ))
               | _ -> ())
      | _ -> ())
    hstate.cs_guards;
  (* remote-active rendezvous *)
  Array.iteri
    (fun j rj ->
      let rstate = prog.remote.p_states.(rj.ctl) in
      Array.iter
        (fun (g : Prog.cguard) ->
          match g.cg_action with
          | Prog.C_send_home (msg, args) ->
            Prog.guard_instances ~self:(Some j) rj.env g ~extra:[]
            |> List.iter (fun scratch ->
                   let payload =
                     List.map (Prog.eval ~env:scratch ~self:(Some j)) args
                   in
                   let r' =
                     {
                       ctl = g.cg_target;
                       env = Prog.complete ~self:(Some j) scratch g;
                     }
                   in
                   passive_matches ~self:None prog.home st.h ~from_home:false
                     ~sender:j ~msg ~payload
                   |> List.iter (fun h' ->
                          push
                            ( L_rendezvous
                                { active = Pr j; passive = Ph; msg; payload },
                              with_remote (with_home st h') j r' )))
          | _ -> ())
        rstate.cs_guards)
    st.r;
  List.rev !acc

(* [encode] runs once per discovered state on the model checker's hot
   path: reuse a scratch buffer per domain instead of allocating one per
   state.  Domain-local (not global) because the parallel engine calls
   [encode] concurrently from several domains. *)
let scratch = Domain.DLS.new_key (fun () -> Buffer.create 64)

let encode (st : state) =
  let buf = Domain.DLS.get scratch in
  Buffer.clear buf;
  let pstate ps =
    Value.encode_int buf ps.ctl;
    Array.iter (Value.encode buf) ps.env
  in
  pstate st.h;
  Array.iter pstate st.r;
  Buffer.contents buf

(* Byte-identical to [encode (st with remotes permuted by p)]: slot [j] of
   the permuted state is slot [inv.(j)] of [st], and every rid-valued datum
   is renamed through [p].  Used by fast canonicalization to score a
   candidate permutation without building the permuted state. *)
let encode_perm ~p ~inv (st : state) =
  let buf = Domain.DLS.get scratch in
  Buffer.clear buf;
  let pstate ps =
    Value.encode_int buf ps.ctl;
    Array.iter (Value.encode_perm buf p) ps.env
  in
  pstate st.h;
  let n = Array.length st.r in
  for j = 0 to n - 1 do
    pstate st.r.(inv.(j))
  done;
  Buffer.contents buf

(* Cut an [encode]d key into per-process components for the collapse
   store: offsets just past home and past each remote, in order.  Works on
   canonical keys too — [encode_perm] emits the same layout.  Env lengths
   come from the program ([Prog.complete] always returns an env the same
   length as [p_init_env]), so the parse needs no per-value domain info. *)
let split_key (prog : Prog.t) key =
  let bounds = Array.make (1 + prog.n) 0 in
  let pos = ref 0 in
  let pstate (proc : Prog.proc) =
    pos := Value.skip_int key !pos;
    for _ = 1 to Array.length proc.p_init_env do
      pos := Value.skip key !pos
    done
  in
  pstate prog.home;
  bounds.(0) <- !pos;
  for i = 1 to prog.n do
    pstate prog.remote;
    bounds.(i) <- !pos
  done;
  bounds

let pp_proc_id ppf = function
  | Ph -> Fmt.string ppf "home"
  | Pr i -> Fmt.pf ppf "r%d" i

let pp_label ppf = function
  | L_tau (p, l) -> Fmt.pf ppf "%a: tau %s" pp_proc_id p l
  | L_rendezvous { active; passive; msg; payload } ->
    Fmt.pf ppf "%a -> %a: %s(%a)" pp_proc_id active pp_proc_id passive msg
      Fmt.(list ~sep:comma Value.pp)
      payload

let pp_pstate (proc : Prog.proc) ppf (ps : pstate) =
  Fmt.pf ppf "%s" proc.p_states.(ps.ctl).cs_name;
  Array.iteri
    (fun i v ->
      if proc.p_domains.(i) <> Value.Dunit then
        Fmt.pf ppf " %s=%a" proc.p_var_names.(i) Value.pp v)
    ps.env

let pp_state (prog : Prog.t) ppf (st : state) =
  Fmt.pf ppf "@[<v>home: %a@,%a@]" (pp_pstate prog.home) st.h
    Fmt.(
      iter_bindings
        (fun f a -> Array.iteri (fun i x -> f i x) a)
        (fun ppf (i, ps) ->
          Fmt.pf ppf "r%d:   %a" i (pp_pstate prog.remote) ps))
    st.r
