(** Workload-driven simulation of refined protocols.

    Executes the asynchronous semantics under a {!Sched.t} for a number
    of steps, collecting the efficiency metrics the paper uses to judge
    refined protocols: request/ack/nack counts per completed rendezvous
    (§1's quality measure 1) and the buffering behaviour (§1's measure 2,
    §6).  Runs are deterministic given the seed. *)

open Ccr_core
open Ccr_refine
open Ccr_faults

type metrics = {
  steps : int;  (** transitions executed *)
  rendezvous : int;  (** rendezvous completed (counted once each) *)
  per_remote : int array;  (** rendezvous completions involving remote i *)
  reqs : int;  (** request messages sent (incl. replies) *)
  acks : int;
  nacks : int;
  retransmissions : int;  (** requests re-sent after a (implicit) nack *)
  rule_counts : (Async.rule_id * int) list;  (** every rule's firing count *)
  buf_occupancy : int array;  (** histogram: steps spent with i buffered *)
  max_in_flight : int;  (** peak messages in the network *)
  deadlocked : bool;  (** a state without successors was reached *)
  latency_sum : int;
      (** summed transaction latencies, in scheduler steps from a remote's
          first request (leaving [Rcomm] at its initial control state,
          i.e. a transaction start) to its next completed rendezvous.
          Longer protocol chains (extra acks, revocations) show up
          directly here — the figure the paper's §8 future work (direct
          remote-to-remote messages) aims to cut. *)
  latency_count : int;
  latency_max : int;
  faults : Fault.fcounts;
      (** fault-injection accounting (all zero without [?faults]) *)
  wedged : string option;
      (** a reception raised {!Async.Protocol_error} (reachable under
          vanilla duplication faults); the run stopped there *)
  blocked : string option;
      (** rendered configuration at a deadlock or wedge, for reporting *)
}

val mean_latency : metrics -> float

val messages : metrics -> int
(** Total messages sent: requests + acks + nacks. *)

val per_rendezvous : metrics -> float
(** Messages per completed rendezvous — the headline efficiency figure. *)

val data_msgs : Prog.t -> string list
(** Message names sent with a non-empty payload anywhere in the compiled
    program — the protocol's data-bearing traffic (a subset of the
    requests). *)

val run :
  ?seed:int ->
  ?metrics:Ccr_obs.Metrics.t ->
  ?faults:Injected.mode * Plan.t ->
  ?on_progress:(int -> unit) ->
  ?progress_every:int ->
  steps:int -> Prog.t -> Async.config -> Sched.t -> metrics
(** [metrics] (default: none) registers and fills [msg.req]/[msg.ack]/
    [msg.nack]/[msg.data]/[rendezvous] counters plus the
    [home_buffer_occupancy] and [rendezvous_latency_steps] histograms in
    the given {!Ccr_obs.Metrics} registry.  Unlike the model checker's
    per-enumerated-transition meter ({!Async.meter}), the simulator counts
    on the {e picked} label only.  [faults] (default: none) drives the
    run through {!Ccr_faults.Drive}: the plan's drops/dups/delays hit the
    messages the executed transitions enqueue and pause windows mask
    remotes, deterministically in the plan alone (the scheduler seed only
    picks among the legal transitions); [fault.*] counters are added to
    [metrics] when given.  [on_progress] (default: none) is called with
    the executed step count every [progress_every] (default 8192)
    steps. *)

val run_trace :
  ?seed:int -> steps:int -> Prog.t -> Async.config -> Sched.t ->
  Async.label list
(** The sequence of transitions of a (deterministic, seeded) run; feed it
    to [Ccr_viz.Msc.render] for a message-sequence chart. *)

val pp : metrics Fmt.t
