open Ccr_core
open Ccr_refine
open Ccr_faults

type metrics = {
  steps : int;
  rendezvous : int;
  per_remote : int array;
  reqs : int;
  acks : int;
  nacks : int;
  retransmissions : int;
  rule_counts : (Async.rule_id * int) list;
  buf_occupancy : int array;
  max_in_flight : int;
  deadlocked : bool;
  latency_sum : int;
  latency_count : int;
  latency_max : int;
  faults : Fault.fcounts;
  wedged : string option;
  blocked : string option;
}

let mean_latency m =
  if m.latency_count = 0 then Float.nan
  else float_of_int m.latency_sum /. float_of_int m.latency_count

let messages m = m.reqs + m.acks + m.nacks

let per_rendezvous m =
  if m.rendezvous = 0 then Float.infinity
  else float_of_int (messages m) /. float_of_int m.rendezvous

let rule_index =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i r -> Hashtbl.add tbl r i) Async.all_rules;
  fun r -> Hashtbl.find tbl r

(* Message names that carry a payload, statically from the compiled send
   guards: such requests are the protocol's data-bearing traffic (cache
   line contents, writer ids), reported as [msg.data] alongside the plain
   request count. *)
let data_msgs (prog : Prog.t) =
  let acc = ref [] in
  let scan (p : Prog.proc) =
    Array.iter
      (fun (cst : Prog.cstate) ->
        Array.iter
          (fun (g : Prog.cguard) ->
            match g.Prog.cg_action with
            | Prog.C_send_home (name, _ :: _)
            | Prog.C_send_remote (_, name, _ :: _) ->
              if not (List.mem name !acc) then acc := name :: !acc
            | _ -> ())
          cst.Prog.cs_guards)
      p.Prog.p_states
  in
  scan prog.home;
  scan prog.remote;
  !acc

(* Handles into an observability registry, registered up front so the
   metric keys exist even when their counts stay zero. *)
type obs = {
  o_req : Ccr_obs.Metrics.counter;
  o_ack : Ccr_obs.Metrics.counter;
  o_nack : Ccr_obs.Metrics.counter;
  o_data : Ccr_obs.Metrics.counter;
  o_rendezvous : Ccr_obs.Metrics.counter;
  o_occupancy : Ccr_obs.Metrics.histogram;
  o_latency : Ccr_obs.Metrics.histogram;
  o_data_names : string list;
}

let make_obs prog reg =
  let open Ccr_obs.Metrics in
  {
    o_req = counter reg "msg.req";
    o_ack = counter reg "msg.ack";
    o_nack = counter reg "msg.nack";
    o_data = counter reg "msg.data";
    o_rendezvous = counter reg "rendezvous";
    o_occupancy = histogram reg "home_buffer_occupancy";
    o_latency = histogram reg "rendezvous_latency_steps";
    o_data_names = data_msgs prog;
  }

let run ?(seed = 42) ?metrics ?faults ?on_progress ?(progress_every = 8192)
    ~steps (prog : Prog.t) (cfg : Async.config) (sched : Sched.t) =
  let rng = Random.State.make [| seed |] in
  let obs = Option.map (make_obs prog) metrics in
  let drive = Option.map (fun (mode, plan) -> Drive.create mode plan) faults in
  let counts = Array.make (List.length Async.all_rules) 0 in
  let per_remote = Array.make prog.n 0 in
  let buf_occupancy = Array.make (cfg.k + 1) 0 in
  let reqs = ref 0
  and acks = ref 0
  and nacks = ref 0
  and rendezvous = ref 0
  and retrans = ref 0
  and max_in_flight = ref 0 in
  (* "was nacked, will retransmit" flags: remotes and the home *)
  let r_nacked = Array.make prog.n false in
  let h_nacked = ref false in
  (* transaction latency: step of each remote's pending first request *)
  let started = Array.make prog.n (-1) in
  let lat_sum = ref 0 and lat_count = ref 0 and lat_max = ref 0 in
  let st = ref (Async.initial prog cfg) in
  let executed = ref 0 in
  let deadlocked = ref false in
  let wedged = ref None in
  let blocked = ref None in
  (* [now] counts loop iterations (fault-plan ticks, including idle waits
     for a pending re-injection); [executed] counts real transitions. *)
  let now = ref 0 in
  let idle = ref 0 in
  (try
     while !executed < steps do
       incr now;
       (match drive with
       | Some d -> st := Drive.step_begin d ~step:!now !st
       | None -> ());
       let succs, wedge =
         match drive with
         | None -> (Async.successors prog cfg !st, None)
         | Some d -> Drive.successors d ~step:!now prog cfg !st
       in
       (match wedge with
       | Some e ->
         (* a head reception would raise Protocol_error: the run is
            wedged — report it rather than crash *)
         wedged := Some e;
         blocked := Some (Fmt.str "%a" (Async.pp_state prog) !st);
         raise Exit
       | None -> ());
       match sched.Sched.pick rng succs with
       | None ->
         let can_wait =
           match drive with
           | Some d -> Drive.waiting d ~step:!now
           | None -> false
         in
         if can_wait && !idle < 100_000 then incr idle
         else begin
           deadlocked := true;
           blocked := Some (Fmt.str "%a" (Async.pp_state prog) !st);
           raise Exit
         end
       | Some ((l : Async.label), st_picked) ->
         idle := 0;
         let st' =
           match drive with
           | Some d -> Drive.observe d ~step:!now ~before:!st st_picked
           | None -> st_picked
         in
         incr executed;
         counts.(rule_index l.rule) <- counts.(rule_index l.rule) + 1;
         (match obs with
         | Some o -> begin
           match l.rule with
           | Async.R_C1 | Async.R_C2 | Async.R_reply_send | Async.H_reply_send
           | Async.H_C2 ->
             if List.mem l.subject o.o_data_names then
               Ccr_obs.Metrics.incr o.o_data
           | _ -> ()
         end
         | None -> ());
         (match l.rule with
         | Async.R_C1 | Async.R_C2 ->
           incr reqs;
           if r_nacked.(l.actor) then begin
             incr retrans;
             r_nacked.(l.actor) <- false
           end
         | Async.R_reply_send | Async.H_reply_send -> incr reqs
         | Async.H_C2 ->
           incr reqs;
           (* an eviction nack frees the ack-buffer slot *)
           if List.length st'.Async.h.h_buf < List.length !st.Async.h.h_buf
           then incr nacks;
           if !h_nacked then begin
             incr retrans;
             h_nacked := false
           end
         | Async.R_C3_ack | Async.H_C1 -> incr acks
         | Async.R_C3_nack | Async.H_T6 | Async.H_nack_full -> incr nacks
         | Async.R_T2 -> r_nacked.(l.actor) <- true
         | Async.H_T2 | Async.H_T3 -> h_nacked := true
         | _ -> ());
         (match l.rule with
         | Async.H_C1 | Async.H_C1_silent | Async.R_C3_ack | Async.R_C3_silent
         | Async.R_repl_recv | Async.H_T1_repl ->
           incr rendezvous;
           per_remote.(l.actor) <- per_remote.(l.actor) + 1
         | _ -> ());
         (* transaction latency: first request ... own completion *)
         (match l.rule with
         | Async.R_C1 | Async.R_C2 ->
           if started.(l.actor) < 0 then started.(l.actor) <- !executed
         | Async.R_repl_recv | Async.R_T1 ->
           if started.(l.actor) >= 0 then begin
             let d = !executed - started.(l.actor) in
             lat_sum := !lat_sum + d;
             incr lat_count;
             if d > !lat_max then lat_max := d;
             started.(l.actor) <- -1;
             match obs with
             | Some o -> Ccr_obs.Metrics.observe o.o_latency d
             | None -> ()
           end
         | _ -> ());
         let occ = List.length st'.Async.h.h_buf in
         buf_occupancy.(min occ cfg.k) <- buf_occupancy.(min occ cfg.k) + 1;
         (match obs with
         | Some o -> Ccr_obs.Metrics.observe o.o_occupancy occ
         | None -> ());
         (match on_progress with
         | Some f when !executed mod progress_every = 0 -> f !executed
         | _ -> ());
         max_in_flight := max !max_in_flight (Async.messages_in_flight st');
         st := st'
     done
   with Exit -> ());
  (match obs with
  | Some o ->
    let open Ccr_obs.Metrics in
    add o.o_req !reqs;
    add o.o_ack !acks;
    add o.o_nack !nacks;
    add o.o_rendezvous !rendezvous
  | None -> ());
  (match (metrics, drive) with
  | Some reg, Some d ->
    let open Ccr_obs.Metrics in
    let c = Drive.counts d in
    add (counter reg "fault.drop") c.Fault.drops;
    add (counter reg "fault.dup") c.Fault.dups;
    add (counter reg "fault.delay") c.Fault.delays;
    add (counter reg "fault.pause") c.Fault.pauses;
    add (counter reg "fault.retransmit") c.Fault.retransmits;
    add (counter reg "fault.absorbed") c.Fault.absorbed;
    add (counter reg "fault.delivered") c.Fault.delivered
  | _ -> ());
  {
    steps = !executed;
    rendezvous = !rendezvous;
    per_remote;
    reqs = !reqs;
    acks = !acks;
    nacks = !nacks;
    retransmissions = !retrans;
    rule_counts = List.map (fun r -> (r, counts.(rule_index r))) Async.all_rules;
    buf_occupancy;
    max_in_flight = !max_in_flight;
    deadlocked = !deadlocked;
    latency_sum = !lat_sum;
    latency_count = !lat_count;
    latency_max = !lat_max;
    faults =
      (match drive with
      | Some d -> Fault.freeze (Drive.counts d)
      | None -> Fault.freeze (Fault.zero ()));
    wedged = !wedged;
    blocked = !blocked;
  }

let run_trace ?(seed = 42) ~steps (prog : Prog.t) (cfg : Async.config)
    (sched : Sched.t) =
  let rng = Random.State.make [| seed |] in
  let st = ref (Async.initial prog cfg) in
  let acc = ref [] in
  (try
     for _ = 1 to steps do
       match sched.Sched.pick rng (Async.successors prog cfg !st) with
       | None -> raise Exit
       | Some (l, st') ->
         acc := l :: !acc;
         st := st'
     done
   with Exit -> ());
  List.rev !acc

let pp ppf m =
  Fmt.pf ppf
    "@[<v>%d steps, %d rendezvous (%.2f msgs/rendezvous)@,\
     messages: %d req, %d ack, %d nack (%d retransmissions)@,\
     per-remote completions: %s@,\
     peak in-flight: %d%s%a%a@]"
    m.steps m.rendezvous (per_rendezvous m) m.reqs m.acks m.nacks
    m.retransmissions
    (String.concat " "
       (Array.to_list (Array.map string_of_int m.per_remote)))
    m.max_in_flight
    (if m.deadlocked then " DEADLOCKED" else "")
    (fun ppf f ->
      if Fault.injected f > 0 || f.Fault.f_retransmits > 0 then
        Fmt.pf ppf "@,faults: %a" Fault.pp_fcounts f)
    m.faults
    (fun ppf w ->
      match w with
      | Some e -> Fmt.pf ppf "@,WEDGED on protocol error: %s" e
      | None -> ())
    m.wedged
