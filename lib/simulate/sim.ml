open Ccr_core
open Ccr_refine

type metrics = {
  steps : int;
  rendezvous : int;
  per_remote : int array;
  reqs : int;
  acks : int;
  nacks : int;
  retransmissions : int;
  rule_counts : (Async.rule_id * int) list;
  buf_occupancy : int array;
  max_in_flight : int;
  deadlocked : bool;
  latency_sum : int;
  latency_count : int;
  latency_max : int;
}

let mean_latency m =
  if m.latency_count = 0 then Float.nan
  else float_of_int m.latency_sum /. float_of_int m.latency_count

let messages m = m.reqs + m.acks + m.nacks

let per_rendezvous m =
  if m.rendezvous = 0 then Float.infinity
  else float_of_int (messages m) /. float_of_int m.rendezvous

let rule_index =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i r -> Hashtbl.add tbl r i) Async.all_rules;
  fun r -> Hashtbl.find tbl r

(* Message names that carry a payload, statically from the compiled send
   guards: such requests are the protocol's data-bearing traffic (cache
   line contents, writer ids), reported as [msg.data] alongside the plain
   request count. *)
let data_msgs (prog : Prog.t) =
  let acc = ref [] in
  let scan (p : Prog.proc) =
    Array.iter
      (fun (cst : Prog.cstate) ->
        Array.iter
          (fun (g : Prog.cguard) ->
            match g.Prog.cg_action with
            | Prog.C_send_home (name, _ :: _)
            | Prog.C_send_remote (_, name, _ :: _) ->
              if not (List.mem name !acc) then acc := name :: !acc
            | _ -> ())
          cst.Prog.cs_guards)
      p.Prog.p_states
  in
  scan prog.home;
  scan prog.remote;
  !acc

(* Handles into an observability registry, registered up front so the
   metric keys exist even when their counts stay zero. *)
type obs = {
  o_req : Ccr_obs.Metrics.counter;
  o_ack : Ccr_obs.Metrics.counter;
  o_nack : Ccr_obs.Metrics.counter;
  o_data : Ccr_obs.Metrics.counter;
  o_rendezvous : Ccr_obs.Metrics.counter;
  o_occupancy : Ccr_obs.Metrics.histogram;
  o_latency : Ccr_obs.Metrics.histogram;
  o_data_names : string list;
}

let make_obs prog reg =
  let open Ccr_obs.Metrics in
  {
    o_req = counter reg "msg.req";
    o_ack = counter reg "msg.ack";
    o_nack = counter reg "msg.nack";
    o_data = counter reg "msg.data";
    o_rendezvous = counter reg "rendezvous";
    o_occupancy = histogram reg "home_buffer_occupancy";
    o_latency = histogram reg "rendezvous_latency_steps";
    o_data_names = data_msgs prog;
  }

let run ?(seed = 42) ?metrics ?on_progress ?(progress_every = 8192) ~steps
    (prog : Prog.t) (cfg : Async.config) (sched : Sched.t) =
  let rng = Random.State.make [| seed |] in
  let obs = Option.map (make_obs prog) metrics in
  let counts = Array.make (List.length Async.all_rules) 0 in
  let per_remote = Array.make prog.n 0 in
  let buf_occupancy = Array.make (cfg.k + 1) 0 in
  let reqs = ref 0
  and acks = ref 0
  and nacks = ref 0
  and rendezvous = ref 0
  and retrans = ref 0
  and max_in_flight = ref 0 in
  (* "was nacked, will retransmit" flags: remotes and the home *)
  let r_nacked = Array.make prog.n false in
  let h_nacked = ref false in
  (* transaction latency: step of each remote's pending first request *)
  let started = Array.make prog.n (-1) in
  let lat_sum = ref 0 and lat_count = ref 0 and lat_max = ref 0 in
  let st = ref (Async.initial prog cfg) in
  let executed = ref 0 in
  let deadlocked = ref false in
  (try
     for _ = 1 to steps do
       let succs = Async.successors prog cfg !st in
       match sched.Sched.pick rng succs with
       | None ->
         deadlocked := true;
         raise Exit
       | Some ((l : Async.label), st') ->
         incr executed;
         counts.(rule_index l.rule) <- counts.(rule_index l.rule) + 1;
         (match obs with
         | Some o -> begin
           match l.rule with
           | Async.R_C1 | Async.R_C2 | Async.R_reply_send | Async.H_reply_send
           | Async.H_C2 ->
             if List.mem l.subject o.o_data_names then
               Ccr_obs.Metrics.incr o.o_data
           | _ -> ()
         end
         | None -> ());
         (match l.rule with
         | Async.R_C1 | Async.R_C2 ->
           incr reqs;
           if r_nacked.(l.actor) then begin
             incr retrans;
             r_nacked.(l.actor) <- false
           end
         | Async.R_reply_send | Async.H_reply_send -> incr reqs
         | Async.H_C2 ->
           incr reqs;
           (* an eviction nack frees the ack-buffer slot *)
           if List.length st'.Async.h.h_buf < List.length !st.Async.h.h_buf
           then incr nacks;
           if !h_nacked then begin
             incr retrans;
             h_nacked := false
           end
         | Async.R_C3_ack | Async.H_C1 -> incr acks
         | Async.R_C3_nack | Async.H_T6 | Async.H_nack_full -> incr nacks
         | Async.R_T2 -> r_nacked.(l.actor) <- true
         | Async.H_T2 | Async.H_T3 -> h_nacked := true
         | _ -> ());
         (match l.rule with
         | Async.H_C1 | Async.H_C1_silent | Async.R_C3_ack | Async.R_C3_silent
         | Async.R_repl_recv | Async.H_T1_repl ->
           incr rendezvous;
           per_remote.(l.actor) <- per_remote.(l.actor) + 1
         | _ -> ());
         (* transaction latency: first request ... own completion *)
         (match l.rule with
         | Async.R_C1 | Async.R_C2 ->
           if started.(l.actor) < 0 then started.(l.actor) <- !executed
         | Async.R_repl_recv | Async.R_T1 ->
           if started.(l.actor) >= 0 then begin
             let d = !executed - started.(l.actor) in
             lat_sum := !lat_sum + d;
             incr lat_count;
             if d > !lat_max then lat_max := d;
             started.(l.actor) <- -1;
             match obs with
             | Some o -> Ccr_obs.Metrics.observe o.o_latency d
             | None -> ()
           end
         | _ -> ());
         let occ = List.length st'.Async.h.h_buf in
         buf_occupancy.(min occ cfg.k) <- buf_occupancy.(min occ cfg.k) + 1;
         (match obs with
         | Some o -> Ccr_obs.Metrics.observe o.o_occupancy occ
         | None -> ());
         (match on_progress with
         | Some f when !executed mod progress_every = 0 -> f !executed
         | _ -> ());
         max_in_flight := max !max_in_flight (Async.messages_in_flight st');
         st := st'
     done
   with Exit -> ());
  (match obs with
  | Some o ->
    let open Ccr_obs.Metrics in
    add o.o_req !reqs;
    add o.o_ack !acks;
    add o.o_nack !nacks;
    add o.o_rendezvous !rendezvous
  | None -> ());
  {
    steps = !executed;
    rendezvous = !rendezvous;
    per_remote;
    reqs = !reqs;
    acks = !acks;
    nacks = !nacks;
    retransmissions = !retrans;
    rule_counts = List.map (fun r -> (r, counts.(rule_index r))) Async.all_rules;
    buf_occupancy;
    max_in_flight = !max_in_flight;
    deadlocked = !deadlocked;
    latency_sum = !lat_sum;
    latency_count = !lat_count;
    latency_max = !lat_max;
  }

let run_trace ?(seed = 42) ~steps (prog : Prog.t) (cfg : Async.config)
    (sched : Sched.t) =
  let rng = Random.State.make [| seed |] in
  let st = ref (Async.initial prog cfg) in
  let acc = ref [] in
  (try
     for _ = 1 to steps do
       match sched.Sched.pick rng (Async.successors prog cfg !st) with
       | None -> raise Exit
       | Some (l, st') ->
         acc := l :: !acc;
         st := st'
     done
   with Exit -> ());
  List.rev !acc

let pp ppf m =
  Fmt.pf ppf
    "@[<v>%d steps, %d rendezvous (%.2f msgs/rendezvous)@,\
     messages: %d req, %d ack, %d nack (%d retransmissions)@,\
     per-remote completions: %s@,\
     peak in-flight: %d%s@]"
    m.steps m.rendezvous (per_rendezvous m) m.reqs m.acks m.nacks
    m.retransmissions
    (String.concat " "
       (Array.to_list (Array.map string_of_int m.per_remote)))
    m.max_in_flight
    (if m.deadlocked then " DEADLOCKED" else "")
