open Ccr_core

type state_kind = Communication | Internal | Transient

type edge_kind =
  | E_send_req
  | E_recv_req of [ `Ack | `Silent ]
  | E_recv_nomatch
  | E_ack_in
  | E_nack_in
  | E_repl_in
  | E_ignore
  | E_tau
  | E_reply_send
  | E_timeout
  | E_dedup

type edge = {
  e_from : string;
  e_to : string;
  e_kind : edge_kind;
  e_label : string;
}

type automaton = {
  a_name : string;
  a_init : string;
  a_states : (string * state_kind) list;
  a_edges : edge list;
}

let pp_args proc ppf = function
  | [] -> ()
  | l -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma (Prog.pp_cexpr proc)) l

let pp_vars proc ppf = function
  | [] -> ()
  | l ->
    Fmt.pf ppf "(%a)"
      Fmt.(
        list ~sep:comma (fun ppf i -> Fmt.string ppf proc.Prog.p_var_names.(i)))
      l

let guard_prefix proc (g : Prog.cguard) =
  let choose =
    Fmt.str "%a"
      Fmt.(
        list ~sep:nop (fun ppf (slot, s) ->
            Fmt.pf ppf "choose %s in %a; " proc.Prog.p_var_names.(slot)
              (Prog.pp_cexpr proc) s))
      g.cg_choose
  in
  let cond =
    match g.cg_cond with
    | Prog.B_true -> ""
    | _ -> "[...] "
  in
  choose ^ cond

(* Find the guard consuming message [m] in state [ctl]; used to resolve the
   bypassed wait state of a request/reply pair. *)
let consumer_target (proc : Prog.proc) ctl m =
  let st = proc.p_states.(ctl) in
  let found =
    Array.to_list st.cs_guards
    |> List.find_opt (fun (g : Prog.cguard) ->
           match g.cg_action with
           | Prog.C_recv_home (m', _)
           | Prog.C_recv_any (_, m', _)
           | Prog.C_recv_from (_, m', _) ->
             m' = m
           | _ -> false)
  in
  match found with
  | Some g -> g.cg_target
  | None -> invalid_arg ("Compile: no consumer for reply " ^ m)

let prune (a : automaton) =
  let reachable = Hashtbl.create 16 in
  let rec visit s =
    if not (Hashtbl.mem reachable s) then begin
      Hashtbl.add reachable s ();
      List.iter
        (fun e -> if e.e_from = s then visit e.e_to)
        a.a_edges
    end
  in
  visit a.a_init;
  {
    a with
    a_states = List.filter (fun (s, _) -> Hashtbl.mem reachable s) a.a_states;
    a_edges = List.filter (fun e -> Hashtbl.mem reachable e.e_from) a.a_edges;
  }

(* Hardening decoration: a timeout/retransmit self-loop on every transient
   (request-pending) state, and a dedup self-loop on every state with a
   receive edge.  The sequence number lives in the channel layer
   ({!Ccr_runtime.Faultlink}), not in the protocol state, so hardening
   only ever adds self-loops — the state count is untouched. *)
let harden_automaton (a : automaton) =
  let receives s =
    List.exists
      (fun e ->
        e.e_from = s
        &&
        match e.e_kind with
        | E_recv_req _ | E_ack_in | E_nack_in | E_repl_in -> true
        | _ -> false)
      a.a_edges
  in
  let extra =
    List.concat_map
      (fun (s, k) ->
        let timeout =
          if k = Transient then
            [
              {
                e_from = s;
                e_to = s;
                e_kind = E_timeout;
                e_label = "timeout / !!retransmit#seq";
              };
            ]
          else []
        in
        let dedup =
          if receives s then
            [
              {
                e_from = s;
                e_to = s;
                e_kind = E_dedup;
                e_label = "??stale#seq / !!ack#seq";
              };
            ]
          else []
        in
        timeout @ dedup)
      a.a_states
  in
  {
    a with
    a_name = a.a_name ^ " hardened";
    a_edges = a.a_edges @ extra;
  }

let remote_automaton ?(harden = false) (prog : Prog.t) =
  let proc = prog.remote in
  let states = ref [] and edges = ref [] in
  let add_state s k = states := (s, k) :: !states in
  let add e = edges := e :: !edges in
  Array.iter
    (fun (st : Prog.cstate) ->
      let n = st.cs_name in
      match st.cs_active with
      | Some gi -> (
        add_state n Communication;
        let g = st.cs_guards.(gi) in
        let m, args =
          match g.cg_action with
          | Prog.C_send_home (m, args) -> (m, args)
          | _ -> assert false
        in
        let label =
          Fmt.str "%sh!!%s%a" (guard_prefix proc g) m (pp_args proc) args
        in
        match g.cg_ann with
        | Prog.Rr_reply_send ->
          add
            {
              e_from = n;
              e_to = proc.p_states.(g.cg_target).cs_name;
              e_kind = E_reply_send;
              e_label = label;
            }
        | Prog.Rr_request repl ->
          let t = n ^ "'" in
          add_state t Transient;
          add { e_from = n; e_to = t; e_kind = E_send_req; e_label = label };
          add
            {
              e_from = t;
              e_to = n;
              e_kind = E_nack_in;
              e_label = "h??nack";
            };
          let after =
            proc.p_states.(consumer_target proc g.cg_target repl).cs_name
          in
          add
            {
              e_from = t;
              e_to = after;
              e_kind = E_repl_in;
              e_label = "h??" ^ repl;
            };
          add { e_from = t; e_to = t; e_kind = E_ignore; e_label = "h??*" }
        | Prog.Plain | Prog.Rr_silent_consume | Prog.Rr_await_repl _ ->
          let t = n ^ "'" in
          add_state t Transient;
          add { e_from = n; e_to = t; e_kind = E_send_req; e_label = label };
          add
            {
              e_from = t;
              e_to = proc.p_states.(g.cg_target).cs_name;
              e_kind = E_ack_in;
              e_label = "h??ack";
            };
          add
            {
              e_from = t;
              e_to = n;
              e_kind = E_nack_in;
              e_label = "h??nack";
            };
          add { e_from = t; e_to = t; e_kind = E_ignore; e_label = "h??*" })
      | None ->
        add_state n (if st.cs_internal then Internal else Communication);
        let has_recv = ref false in
        Array.iter
          (fun (g : Prog.cguard) ->
            match g.cg_action with
            | Prog.C_tau l ->
              add
                {
                  e_from = n;
                  e_to = proc.p_states.(g.cg_target).cs_name;
                  e_kind = E_tau;
                  e_label = guard_prefix proc g ^ l;
                }
            | Prog.C_recv_home (m, vars) ->
              has_recv := true;
              let silent = g.cg_ann = Prog.Rr_silent_consume in
              add
                {
                  e_from = n;
                  e_to = proc.p_states.(g.cg_target).cs_name;
                  e_kind = E_recv_req (if silent then `Silent else `Ack);
                  e_label =
                    Fmt.str "%sh??%s%a%s" (guard_prefix proc g) m
                      (pp_vars proc) vars
                      (if silent then "" else " / h!!ack");
                }
            | _ -> assert false)
          st.cs_guards;
        if !has_recv then
          add
            {
              e_from = n;
              e_to = n;
              e_kind = E_recv_nomatch;
              e_label = "h??other / h!!nack";
            })
    proc.p_states;
  let a =
    prune
      {
        a_name = prog.t_name ^ ".remote (refined)";
        a_init = proc.p_states.(proc.p_init).cs_name;
        a_states = List.rev !states;
        a_edges = List.rev !edges;
      }
  in
  if harden then harden_automaton a else a

let home_automaton ?(harden = false) (prog : Prog.t) =
  let proc = prog.home in
  let states = ref [] and edges = ref [] in
  let add_state s k = states := (s, k) :: !states in
  let add e = edges := e :: !edges in
  Array.iter
    (fun (st : Prog.cstate) ->
      let n = st.cs_name in
      add_state n (if st.cs_internal then Internal else Communication);
      Array.iter
        (fun (g : Prog.cguard) ->
          let target = proc.p_states.(g.cg_target).cs_name in
          match g.cg_action with
          | Prog.C_tau l ->
            add
              {
                e_from = n;
                e_to = target;
                e_kind = E_tau;
                e_label = guard_prefix proc g ^ l;
              }
          | Prog.C_recv_any (b, m, vars) ->
            let silent = g.cg_ann = Prog.Rr_silent_consume in
            add
              {
                e_from = n;
                e_to = target;
                e_kind = E_recv_req (if silent then `Silent else `Ack);
                e_label =
                  Fmt.str "%sr(%s)??%s%a%s" (guard_prefix proc g)
                    proc.p_var_names.(b) m (pp_vars proc) vars
                    (if silent then "" else " / !!ack");
              }
          | Prog.C_recv_from (e, m, vars) ->
            let silent = g.cg_ann = Prog.Rr_silent_consume in
            add
              {
                e_from = n;
                e_to = target;
                e_kind = E_recv_req (if silent then `Silent else `Ack);
                e_label =
                  Fmt.str "%sr(%a)??%s%a%s" (guard_prefix proc g)
                    (Prog.pp_cexpr proc) e m (pp_vars proc) vars
                    (if silent then "" else " / !!ack");
              }
          | Prog.C_send_remote (e, m, args) -> (
            let label =
              Fmt.str "%sr(%a)!!%s%a" (guard_prefix proc g)
                (Prog.pp_cexpr proc) e m (pp_args proc) args
            in
            match g.cg_ann with
            | Prog.Rr_reply_send ->
              add
                { e_from = n; e_to = target; e_kind = E_reply_send;
                  e_label = label }
            | Prog.Rr_await_repl repl ->
              let t = n ^ "'" ^ m in
              add_state t Transient;
              add { e_from = n; e_to = t; e_kind = E_send_req; e_label = label };
              let after =
                proc.p_states.(consumer_target proc g.cg_target repl).cs_name
              in
              add
                {
                  e_from = t;
                  e_to = after;
                  e_kind = E_repl_in;
                  e_label = Fmt.str "r(%a)??%s" (Prog.pp_cexpr proc) e repl;
                };
              add
                { e_from = t; e_to = n; e_kind = E_nack_in; e_label = "[nack]" };
              add
                {
                  e_from = t;
                  e_to = t;
                  e_kind = E_recv_nomatch;
                  e_label = "r(x)??msg / nack or buffer";
                }
            | Prog.Plain | Prog.Rr_request _ | Prog.Rr_silent_consume ->
              let t = n ^ "'" ^ m in
              add_state t Transient;
              add { e_from = n; e_to = t; e_kind = E_send_req; e_label = label };
              add
                {
                  e_from = t;
                  e_to = target;
                  e_kind = E_ack_in;
                  e_label = Fmt.str "r(%a)??ack" (Prog.pp_cexpr proc) e;
                };
              add
                { e_from = t; e_to = n; e_kind = E_nack_in; e_label = "[nack]" };
              add
                {
                  e_from = t;
                  e_to = t;
                  e_kind = E_recv_nomatch;
                  e_label = "r(x)??msg / nack or buffer";
                })
          | Prog.C_send_home _ | Prog.C_recv_home _ ->
            invalid_arg "Compile: remote action in the home process")
        st.cs_guards)
    proc.p_states;
  let a =
    prune
      {
        a_name = prog.t_name ^ ".home (refined)";
        a_init = proc.p_states.(proc.p_init).cs_name;
        a_states = List.rev !states;
        a_edges = List.rev !edges;
      }
  in
  if harden then harden_automaton a else a

let n_states a = List.length a.a_states

let n_transient a =
  List.length (List.filter (fun (_, k) -> k = Transient) a.a_states)

let n_edges a = List.length a.a_edges
