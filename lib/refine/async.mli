(** The refined asynchronous semantics (paper §3, Tables 1 and 2).

    The rendezvous protocol is executed over reliable in-order
    point-to-point FIFO channels with request/ack/nack messages:

    - every active guard becomes a request followed by a wait in a
      {e transient} mode for an ack, a nack, or a crossing request
      (implicit nack, rule R3);
    - every remote node owns a one-message buffer for a pending home
      request (Table 1);
    - the home owns a [k >= 2]-message buffer with two reservations: the
      {e progress buffer} (last free slot only admits a request that can
      complete a rendezvous in the current communication state) and, while
      the home is transient towards remote [i], the {e ack buffer} (one
      slot kept free so a message from [i] can always be held) — Table 2;
    - on a nack the home rotates to its next output guard (Table 2, T2);
    - guards annotated by the request/reply analysis (§3.3) skip acks: the
      reply doubles as the ack of the request.

    This module is an interpreter for the refined protocol; the
    corresponding explicit automata (paper Figures 4–5) are produced by
    {!Compile}. *)

open Ccr_core

type config = { k : int }  (** home buffer capacity, [k >= 2] *)

type hmode =
  | Hcomm
  | Htrans of {
      guard : int;  (** index of the output guard in the control state *)
      peer : int;  (** remote the home awaits *)
      scratch : Value.t array;
          (** environment with the guard's choose binders applied, kept so
              the assignments can run when the rendezvous completes *)
      await : [ `Ack | `Repl of string ];
    }

type home = {
  h_ctl : int;
  h_env : Value.t array;
  h_mode : hmode;
  h_rot : int;
      (** rotation position over the control state's output guards,
          advanced on (implicit) nacks — Table 2 row T2 *)
  h_buf : (int * Wire.msg) list;  (** buffered requests, oldest first *)
}

type rmode =
  | Rcomm
  | Rtrans of { guard : int; scratch : Value.t array }
  | Rwait of { guard : int; scratch : Value.t array; repl : string }
      (** request sent under request/reply: waiting for the reply (or a
          nack), no ack will come *)

type remote = {
  r_ctl : int;
  r_env : Value.t array;
  r_mode : rmode;
  r_buf : Wire.msg option;  (** the one-message buffer of Table 1 *)
}

type state = {
  h : home;
  r : remote array;
  to_h : Wire.t list array;  (** channel remote [i] → home, head oldest *)
  to_r : Wire.t list array;  (** channel home → remote [i] *)
}

(** Rule identifiers, named after the rows of Tables 1 and 2; used for
    trace explanation and for the rule-coverage experiment. *)
type rule_id =
  | R_C1  (** remote: request for rendezvous sent, buffer was empty *)
  | R_C2  (** remote: request sent, pending home request deleted *)
  | R_C3_ack  (** remote: buffered home request matched, acked *)
  | R_C3_silent  (** remote: request/reply consume, no ack *)
  | R_C3_nack  (** remote: buffered home request matched no guard *)
  | R_T1  (** remote: ack received, rendezvous complete *)
  | R_T2  (** remote: nack received, back to communication state *)
  | R_T3  (** remote: home request ignored while transient *)
  | R_tau
  | R_reply_send  (** remote: fire-and-forget reply *)
  | R_repl_recv  (** remote: reply received, completes both rendezvous *)
  | R_deliver  (** home request moved from channel into remote buffer *)
  | H_C1  (** home: buffered request matched, acked *)
  | H_C1_silent  (** home: request/reply consume, no ack *)
  | H_C2  (** home: request for rendezvous sent, transient entered *)
  | H_T1  (** home: ack received, rendezvous complete *)
  | H_T1_repl  (** home: reply received, completes both rendezvous *)
  | H_T2  (** home: nack received, rotation advanced *)
  | H_T3  (** home: implicit nack — peer's request buffered *)
  | H_T4  (** home: foreign request admitted, > 2 slots free *)
  | H_T5  (** home: foreign request admitted into the progress buffer *)
  | H_T6  (** home: foreign request nacked, buffers exhausted *)
  | H_tau
  | H_reply_send  (** home: fire-and-forget reply *)
  | H_admit  (** home (non-transient): request admitted *)
  | H_admit_progress
      (** home (non-transient): request admitted into the progress buffer *)
  | H_nack_full  (** home (non-transient): request nacked, buffers full *)

type label = {
  rule : rule_id;
  actor : int;  (** remote id, or [-1] for the home *)
  subject : string;  (** message or tau label involved, [""] if none *)
}

exception Protocol_error of string
(** Raised when an execution reaches a configuration the refinement rules
    declare impossible (e.g. an ack arriving at a non-transient process).
    Reachable only if the refinement itself is broken, so tests treat it
    as a hard failure. *)

type meter = {
  m_sent : Wire.t -> unit;
      (** called for every message a generated transition enqueues *)
  m_buf : int -> unit;
      (** called once per {!successors} call with the expanded state's
          home-buffer occupancy *)
}
(** Observation hooks for the model checker's observability layer.  The
    semantics is per {e enumerated} transition: during exploration every
    generated successor edge is counted once, so the derived figure is
    messages per explored transition (a simulator executing one chosen
    successor must count on the picked label instead — see
    {!Ccr_simulate.Sim}). *)

val initial : Prog.t -> config -> state

val successors : ?meter:meter -> Prog.t -> config -> state -> (label * state) list
(** [meter] (default: none, a single option check) feeds the
    observability layer; it does not affect the generated transitions. *)

val encode : state -> string

val encode_perm : p:int array -> inv:int array -> state -> string
(** [encode_perm ~p ~inv st] is byte-identical to [encode] of [st] with
    remotes permuted by [p] ([inv] is [p]'s inverse): slot arrays and both
    channel arrays are read through [inv], while sender ids and rid-valued
    payloads are renamed through [p].  Lets symmetry canonicalization score
    a permutation without building the permuted state. *)

val split_key : Prog.t -> string -> int array
(** [split_key prog key] cuts an {!encode}d (or canonical) key into
    per-component substrings for collapse compression: [1 + 3n] offsets —
    past the home, past each remote, past each home-bound channel, past
    each remote-bound channel.  The last offset equals
    [String.length key]. *)

(** {2 Node-local semantics}

    The refinement rules are local to one node: these functions give each
    node's transitions together with the messages it emits.  The global
    {!successors} is assembled from them, and {!Runtime} executes them
    concurrently over real channels. *)

val initial_home : Prog.t -> home
val initial_remote : Prog.t -> remote

val home_local :
  Prog.t -> config -> home -> (label * home * (int * Wire.t) list) list
(** Taus, row C1 (consume a buffered request — emits the ack) and row C2
    (send a request — emits it plus any eviction nack). *)

val home_recv :
  Prog.t -> config -> home -> int -> Wire.t -> (label * home * (int * Wire.t) list) list
(** Reaction to a message from remote [i]: rows T1-T6 and the admission
    rules.  Always consumes the message.
    @raise Protocol_error on messages the rules declare impossible. *)

val remote_local : Prog.t -> remote -> int -> (label * remote * Wire.t list) list
(** Taus, the active send (rows C1/C2 of Table 1) and passive consumption
    of the buffered home request (row C3). *)

val remote_recv : Prog.t -> remote -> int -> Wire.t -> (label * remote * Wire.t list) list
(** Reaction to a message from the home: rows T1-T3 and buffering.
    Returns [[]] when the one-slot buffer is full and the request cannot
    be accepted yet; the caller must leave the message queued. *)

(** {2 Matching helpers}

    All ways a request from remote [i] could complete a rendezvous of the
    home (resp. of remote [i]) at control state [ctl] under environment
    [env].  Each result is the matching guard's index and the scratch
    environment with bindings applied.  Shared with {!Absmap}. *)

val home_request_instances :
  Prog.t ->
  ctl:int ->
  env:Value.t array ->
  int ->
  Wire.msg ->
  (int * Value.t array) list

val remote_request_instances :
  Prog.t ->
  ctl:int ->
  env:Value.t array ->
  int ->
  Wire.msg ->
  (int * Value.t array) list

val messages_in_flight : state -> int
val all_rules : rule_id list
val rule_name : rule_id -> string
val pp_label : label Fmt.t
val pp_state : Prog.t -> state Fmt.t
