let ident s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    s

let event_of (e : Compile.edge) =
  match e.e_kind with
  | Compile.E_send_req | Compile.E_reply_send -> "EV_LOCAL_DECISION"
  | Compile.E_recv_req _ -> "EV_REQUEST_MATCHED"
  | Compile.E_recv_nomatch -> "EV_REQUEST_UNMATCHED"
  | Compile.E_ack_in -> "EV_ACK"
  | Compile.E_nack_in -> "EV_NACK"
  | Compile.E_repl_in -> "EV_REPLY"
  | Compile.E_ignore -> "EV_REQUEST_IGNORED"
  | Compile.E_tau -> "EV_LOCAL_DECISION"
  | Compile.E_timeout -> "EV_TIMEOUT"
  | Compile.E_dedup -> "EV_STALE_SEQ"

let action_of (e : Compile.edge) =
  match e.e_kind with
  | Compile.E_send_req | Compile.E_reply_send ->
    Fmt.str "send_request(); /* %s */" e.e_label
  | Compile.E_recv_req `Ack -> Fmt.str "consume_and_ack(); /* %s */" e.e_label
  | Compile.E_recv_req `Silent ->
    Fmt.str "consume_silently(); /* %s */" e.e_label
  | Compile.E_recv_nomatch -> "send_nack();"
  | Compile.E_ack_in -> "commit_rendezvous();"
  | Compile.E_nack_in -> "abort_rendezvous(); /* retry from here */"
  | Compile.E_repl_in ->
    Fmt.str "commit_both_rendezvous(); /* %s */" e.e_label
  | Compile.E_ignore -> "drop_request(); /* implicit nack at peer */"
  | Compile.E_tau -> Fmt.str "/* %s */" e.e_label
  | Compile.E_timeout -> Fmt.str "retransmit(); /* %s */" e.e_label
  | Compile.E_dedup -> Fmt.str "reack_and_drop(); /* %s */" e.e_label

let emit_c (a : Compile.automaton) =
  let buf = Buffer.create 2048 in
  let out fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  out "/* generated dispatch table for %s */\n" a.a_name;
  out "enum state { %s };\n\n"
    (String.concat ", "
       (List.map (fun (s, _) -> "S_" ^ ident s) a.a_states));
  out "void dispatch(enum state *state, enum event ev) {\n";
  out "  switch (*state) {\n";
  List.iter
    (fun (s, kind) ->
      out "  case S_%s: /* %s */\n" (ident s)
        (match kind with
        | Compile.Communication -> "communication state"
        | Compile.Internal -> "internal state"
        | Compile.Transient -> "transient state");
      out "    switch (ev) {\n";
      List.iter
        (fun (e : Compile.edge) ->
          if e.e_from = s then begin
            out "    case %s:\n" (event_of e);
            out "      %s\n" (action_of e);
            out "      *state = S_%s; break;\n" (ident e.e_to)
          end)
        a.a_edges;
      out "    default: break; /* held in buffer or nacked */\n";
      out "    }\n    break;\n")
    a.a_states;
  out "  }\n}\n";
  Buffer.contents buf
