open Ccr_core

type msg = { m_name : string; m_payload : Value.t list }

type t = Req of msg | Ack | Nack

let equal (a : t) (b : t) = a = b

let encode buf = function
  | Ack -> Value.encode_int buf 0
  | Nack -> Value.encode_int buf 1
  | Req m ->
    Value.encode_int buf 2;
    Value.encode_int buf (String.length m.m_name);
    Buffer.add_string buf m.m_name;
    Value.encode_int buf (List.length m.m_payload);
    List.iter (Value.encode buf) m.m_payload

let encode_perm buf p = function
  | Ack -> Value.encode_int buf 0
  | Nack -> Value.encode_int buf 1
  | Req m ->
    Value.encode_int buf 2;
    Value.encode_int buf (String.length m.m_name);
    Buffer.add_string buf m.m_name;
    Value.encode_int buf (List.length m.m_payload);
    List.iter (Value.encode_perm buf p) m.m_payload

let skip s pos =
  let tag, pos = Value.read_int s pos in
  match tag with
  | 0 | 1 -> pos (* ack, nack *)
  | 2 ->
    let namelen, pos = Value.read_int s pos in
    let arity, pos = Value.read_int s (pos + namelen) in
    let pos = ref pos in
    for _ = 1 to arity do
      pos := Value.skip s !pos
    done;
    !pos
  | t -> invalid_arg (Printf.sprintf "Wire.skip: bad message tag %d" t)

let pp ppf = function
  | Ack -> Fmt.string ppf "ack"
  | Nack -> Fmt.string ppf "nack"
  | Req m ->
    Fmt.pf ppf "req:%s(%a)" m.m_name
      Fmt.(list ~sep:comma Value.pp)
      m.m_payload
