(** Compiled microcode tables for the event-loop engine.

    {!Async} interprets the refined semantics: every transition re-walks
    the control state's guard array, evaluates [cexpr] trees, copies
    environments and allocates successor lists.  That is what the model
    checker needs (it wants {e all} successors), but an execution engine
    picks {e one} transition per step, so this module compiles a
    {!Prog.t} once into dispatch-table form — the paper's "implementable
    directly, for example in microcode" endpoint (§2.3):

    - guard conditions, choose-sets, assignment right-hand sides and
      send payloads become closures over a scratch environment (no tree
      walking at run time);
    - message names are interned to dense ids and receive dispatch is an
      array indexed by message id (no name comparison on the hot path,
      a one-entry memo catches the common same-sender streak);
    - node state lives in mutable machines ({!home}, {!remote}) updated
      in place: environments are fixed arrays, the home buffer is a pair
      of parallel growable arrays, transient modes are integers.

    The step functions mirror {!Async.home_local}/{!Async.home_recv}/
    {!Async.remote_local}/{!Async.remote_recv} rule for rule — the
    engine==threads differential tests and the [engine] fuzz oracle
    check that correspondence — but execute exactly one uniformly-chosen
    enabled transition (single-pass reservoir selection) instead of
    materializing the successor list.

    Concurrency contract: a [t] is immutable after {!compile} and may be
    shared across domains; each {!home}/{!remote} machine must be owned
    by exactly one domain. *)

open Ccr_core

type t
(** Compiled tables: immutable, shareable across domains. *)

type home
(** Mutable home-node machine; single-owner. *)

type remote
(** Mutable remote-node machine; single-owner. *)

val compile : Prog.t -> t

val home_make : t -> k:int -> seed:int -> home
(** [k] is the home buffer capacity ({!Async.config}); the rng seed
    mirrors {!Runtime.run}'s home thread. *)

val remote_make : t -> seed:int -> int -> remote
(** [remote_make t ~seed i] builds remote [i]'s machine. *)

(** {2 Step functions}

    Each returns the dense rule code of the transition taken ([-1] when
    no transition is enabled or every enabled one is blocked by [room]),
    updating the machine in place.  [room j] must answer whether one
    more message fits the channel towards remote [j] (resp. [room_h]
    towards the home); emission happens through [emit] within the step.
    Blocked transitions are excluded from the random choice but never
    reordered: retrying after the mailbox drains yields a legal
    schedule of the refined semantics.

    @raise Async.Protocol_error exactly where the interpreter would. *)

val home_local :
  home -> room:(int -> bool) -> emit:(int -> Wire.t -> unit) -> int

val home_recv : home -> int -> Wire.t -> emit:(int -> Wire.t -> unit) -> int
(** The caller must ensure [room] for the sender's return channel (a
    nack may be emitted); always consumes the message. *)

val remote_local : remote -> room_h:bool -> emit:(Wire.t -> unit) -> int

val remote_recv : remote -> Wire.t -> int
(** Never emits.  Returns [-2] when the one-slot buffer is full and the
    request must stay queued (the {!Async.remote_recv} [[]] case). *)

(** {2 Rule codes} *)

val n_rules : int
val rule_of_code : int -> Async.rule_id
val code_of_rule : Async.rule_id -> int

val completes : int -> bool
(** Same rendezvous-completion rules as {!Runtime}: true for the codes
    of H-C1, H-C1-silent, H-T1-repl, R-C3-ack, R-C3-silent and
    R-repl-recv. *)

(** {2 Observation}

    [last_actor]/[last_subject] describe the transition most recently
    returned by a step function, in {!Async.label} terms. *)

val home_last_actor : home -> int
val home_last_subject : home -> string
val remote_last_subject : remote -> string

val home_buf_len : home -> int
val home_at_comm : home -> bool
val remote_at_comm : remote -> bool

val remote_at_start : remote -> bool
(** Control at the initial state in communication mode — the condition
    {!Runtime.run} uses to charge the cycle budget. *)

val home_snapshot : home -> Async.home
val remote_snapshot : remote -> Async.remote
(** Fresh {!Async} values (environments copied) for invariant checks,
    trace capture and the watchdog. *)
