(** Materialized refined automata — the paper's Figures 4 and 5.

    {!Async} interprets the refinement rules directly; this module instead
    produces the {e explicit} asynchronous automata, with one transient
    state per output guard, ack/nack edges, the [h??*] ignore self-loops
    of the remote and the [\[nack\]] retry edges of the home.  They are
    what a microcode or RTL implementation would encode, what {!Codegen}
    prints as dispatch tables, and what the figure-reproduction benches
    render. *)

type state_kind = Communication | Internal | Transient

type edge_kind =
  | E_send_req  (** [p!!m(...)]: emit a request for rendezvous *)
  | E_recv_req of [ `Ack | `Silent ]
      (** consume a buffered request, emitting an ack unless the
          request/reply optimization silences it *)
  | E_recv_nomatch  (** nack an unmatched request (self-loop) *)
  | E_ack_in  (** consume an ack: rendezvous complete *)
  | E_nack_in  (** consume a nack (for the home: implicit nacks too) *)
  | E_repl_in  (** consume a reply: completes both rendezvous *)
  | E_ignore  (** remote in a transient state ignoring a home request *)
  | E_tau
  | E_reply_send  (** fire-and-forget reply *)
  | E_timeout  (** hardened: retransmit the pending request after an RTO *)
  | E_dedup
      (** hardened: a stale sequence number is absorbed and re-acked *)

type edge = {
  e_from : string;
  e_to : string;
  e_kind : edge_kind;
  e_label : string;  (** rendered with the paper's [!!]/[??] notation *)
}

type automaton = {
  a_name : string;
  a_init : string;
  a_states : (string * state_kind) list;
  a_edges : edge list;
}

val remote_automaton : ?harden:bool -> Ccr_core.Prog.t -> automaton
val home_automaton : ?harden:bool -> Ccr_core.Prog.t -> automaton
(** With [~harden:true] (default [false]) the automata carry the lossy-
    channel hardening of {!Ccr_faults}: every transient (request-pending)
    state gains a timeout self-loop that retransmits the request under
    the same sequence number, and every receiving state gains a dedup
    self-loop that absorbs a stale sequence number and re-emits its ack.
    Together these make the §2.2 reliable-FIFO assumption a derived
    property instead of an axiom: drops are repaired by the timeout,
    duplicates by the dedup, and the protocol layer above is unchanged. *)

val n_states : automaton -> int
val n_transient : automaton -> int
val n_edges : automaton -> int
