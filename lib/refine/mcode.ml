open Ccr_core

(* Compiled expressions close over a scratch environment and the node id
   ([-1] at the home, like [self:None] in {!Prog.eval}). *)
type ev = Value.t array -> int -> Value.t
type bv = Value.t array -> int -> bool

type gkind =
  | G_tau of string
  | G_send_home of { name : string; args : ev array }
  | G_send_remote of { dst : ev; name : string; args : ev array }
  | G_recv of { msg : int; slots : int array; binder : int; from : ev option }

type guard = {
  g_idx : int;  (* index in the source state's cs_guards, for snapshots *)
  g_target : int;
  g_ann : Prog.ann;
  g_cond : bv;
  g_ch_slots : int array;
  g_ch_sets : ev array;
  g_as_slots : int array;
  g_as_exprs : ev array;
  g_kind : gkind;
}

type stbl = {
  s_internal : bool;
  s_taus : guard array;
  s_recv : guard array array;  (* indexed by message id, guard order kept *)
  s_sends : guard array;  (* home: cs_sends in rotation order *)
  s_active : guard option;  (* remote: the active output guard *)
}

type t = {
  prog : Prog.t;
  n : int;
  n_msgs : int;
  msg_ids : (string, int) Hashtbl.t;
  ff : bool array;
  has_ff : bool;
  h_tbl : stbl array;
  r_tbl : stbl array;
  rids : Value.t array;  (* Vrid i, preallocated *)
  h_init : int;
  r_init : int;
}

let proto_error fmt = Fmt.kstr (fun s -> raise (Async.Protocol_error s)) fmt
let rt_error fmt = Fmt.kstr (fun s -> raise (Prog.Runtime_error s)) fmt

let as_rid = function
  | Value.Vrid r -> r
  | v -> rt_error "expected a remote id, got %a" Value.pp v

let as_int = function
  | Value.Vint i -> i
  | v -> rt_error "expected an int, got %a" Value.pp v

(* ---- expression compilation -------------------------------------------- *)

let rec comp_e (rids : Value.t array) (e : Prog.cexpr) : ev =
  match e with
  | Prog.C_const v -> fun _ _ -> v
  | Prog.C_var i -> fun env _ -> env.(i)
  | Prog.C_self ->
    fun _ self ->
      if self >= 0 then rids.(self) else rt_error "self outside a remote process"
  | Prog.C_set_add (s, r) ->
    let fs = comp_e rids s and fr = comp_e rids r in
    fun env self -> Value.set_add (as_rid (fr env self)) (fs env self)
  | Prog.C_set_remove (s, r) ->
    let fs = comp_e rids s and fr = comp_e rids r in
    fun env self -> Value.set_remove (as_rid (fr env self)) (fs env self)
  | Prog.C_set_singleton r ->
    let fr = comp_e rids r in
    fun env self -> Value.set_add (as_rid (fr env self)) Value.set_empty
  | Prog.C_succ e ->
    let fe = comp_e rids e in
    fun env self -> Value.Vint (as_int (fe env self) + 1)

let rec comp_b (rids : Value.t array) (b : Prog.cbool) : bv =
  match b with
  | Prog.B_true -> fun _ _ -> true
  | Prog.B_not b ->
    let fb = comp_b rids b in
    fun env self -> not (fb env self)
  | Prog.B_and (a, b) ->
    let fa = comp_b rids a and fb = comp_b rids b in
    fun env self -> fa env self && fb env self
  | Prog.B_or (a, b) ->
    let fa = comp_b rids a and fb = comp_b rids b in
    fun env self -> fa env self || fb env self
  | Prog.B_eq (a, b) ->
    let fa = comp_e rids a and fb = comp_e rids b in
    fun env self -> Value.equal (fa env self) (fb env self)
  | Prog.B_mem (r, s) ->
    let fr = comp_e rids r and fs = comp_e rids s in
    fun env self -> Value.set_mem (as_rid (fr env self)) (fs env self)
  | Prog.B_empty s ->
    let fs = comp_e rids s in
    fun env self -> Value.set_is_empty (fs env self)

(* ---- table construction ------------------------------------------------- *)

let comp_guard rids mid gi (g : Prog.cguard) =
  let ce = comp_e rids in
  let ch = Array.of_list g.Prog.cg_choose in
  let asg = Array.of_list g.Prog.cg_assigns in
  let kind =
    match g.Prog.cg_action with
    | Prog.C_tau l -> G_tau l
    | Prog.C_send_home (name, args) ->
      G_send_home { name; args = Array.of_list (List.map ce args) }
    | Prog.C_send_remote (dst, name, args) ->
      G_send_remote
        { dst = ce dst; name; args = Array.of_list (List.map ce args) }
    | Prog.C_recv_home (name, slots) ->
      G_recv
        { msg = mid name; slots = Array.of_list slots; binder = -1; from = None }
    | Prog.C_recv_any (binder, name, slots) ->
      G_recv { msg = mid name; slots = Array.of_list slots; binder; from = None }
    | Prog.C_recv_from (e, name, slots) ->
      G_recv
        {
          msg = mid name;
          slots = Array.of_list slots;
          binder = -1;
          from = Some (ce e);
        }
  in
  {
    g_idx = gi;
    g_target = g.Prog.cg_target;
    g_ann = g.Prog.cg_ann;
    g_cond = comp_b rids g.Prog.cg_cond;
    g_ch_slots = Array.map fst ch;
    g_ch_sets = Array.map (fun (_, e) -> ce e) ch;
    g_as_slots = Array.map fst asg;
    g_as_exprs = Array.map (fun (_, e) -> ce e) asg;
    g_kind = kind;
  }

let dummy_guard =
  {
    g_idx = -1;
    g_target = 0;
    g_ann = Prog.Plain;
    g_cond = (fun _ _ -> false);
    g_ch_slots = [||];
    g_ch_sets = [||];
    g_as_slots = [||];
    g_as_exprs = [||];
    g_kind = G_tau "";
  }

let dummy_msg : Wire.msg = { Wire.m_name = ""; m_payload = [] }

let comp_proc rids mid ~n_msgs (p : Prog.proc) =
  Array.map
    (fun (cst : Prog.cstate) ->
      let guards = Array.mapi (comp_guard rids mid) cst.Prog.cs_guards in
      let taus =
        Array.of_list
          (List.filter
             (fun g -> match g.g_kind with G_tau _ -> true | _ -> false)
             (Array.to_list guards))
      in
      let by_msg = Array.make n_msgs [] in
      Array.iter
        (fun g ->
          match g.g_kind with
          | G_recv rc -> by_msg.(rc.msg) <- g :: by_msg.(rc.msg)
          | _ -> ())
        guards;
      {
        s_internal = cst.Prog.cs_internal;
        s_taus = taus;
        s_recv = Array.map (fun l -> Array.of_list (List.rev l)) by_msg;
        s_sends =
          Array.of_list (List.map (fun gi -> guards.(gi)) cst.Prog.cs_sends);
        s_active = Option.map (fun gi -> guards.(gi)) cst.Prog.cs_active;
      })
    p.Prog.p_states

let compile (prog : Prog.t) : t =
  (* pass 1: intern every message name (sends, receives, reply
     annotations, fire-and-forget declarations) *)
  let ids = Hashtbl.create 32 in
  let count = ref 0 in
  let intern name =
    if not (Hashtbl.mem ids name) then begin
      Hashtbl.add ids name !count;
      incr count
    end
  in
  let scan (p : Prog.proc) =
    Array.iter
      (fun (st : Prog.cstate) ->
        Array.iter
          (fun (g : Prog.cguard) ->
            (match g.Prog.cg_action with
            | Prog.C_send_home (nm, _)
            | Prog.C_send_remote (_, nm, _)
            | Prog.C_recv_home (nm, _)
            | Prog.C_recv_any (_, nm, _)
            | Prog.C_recv_from (_, nm, _) ->
              intern nm
            | Prog.C_tau _ -> ());
            match g.Prog.cg_ann with
            | Prog.Rr_request repl | Prog.Rr_await_repl repl -> intern repl
            | _ -> ())
          st.Prog.cs_guards)
      p.Prog.p_states
  in
  scan prog.Prog.home;
  scan prog.Prog.remote;
  List.iter intern prog.Prog.ff_msgs;
  let n_msgs = !count in
  let ff = Array.make (max 1 n_msgs) false in
  List.iter (fun nm -> ff.(Hashtbl.find ids nm) <- true) prog.Prog.ff_msgs;
  let rids = Array.init (max 1 prog.Prog.n) (fun i -> Value.Vrid i) in
  let mid name = Hashtbl.find ids name in
  {
    prog;
    n = prog.Prog.n;
    n_msgs;
    msg_ids = ids;
    ff;
    has_ff = prog.Prog.ff_msgs <> [];
    h_tbl = comp_proc rids mid ~n_msgs prog.Prog.home;
    r_tbl = comp_proc rids mid ~n_msgs prog.Prog.remote;
    rids;
    h_init = prog.Prog.home.p_init;
    r_init = prog.Prog.remote.p_init;
  }

(* ---- rule codes ---------------------------------------------------------- *)

let all_rules = Array.of_list Async.all_rules
let n_rules = Array.length all_rules
let rule_of_code c = all_rules.(c)

let code_of_rule (r : Async.rule_id) =
  let rec find i = if all_rules.(i) = r then i else find (i + 1) in
  find 0

let c_R_C1 = code_of_rule Async.R_C1
let c_R_C2 = code_of_rule Async.R_C2
let c_R_C3_ack = code_of_rule Async.R_C3_ack
let c_R_C3_silent = code_of_rule Async.R_C3_silent
let c_R_C3_nack = code_of_rule Async.R_C3_nack
let c_R_T1 = code_of_rule Async.R_T1
let c_R_T2 = code_of_rule Async.R_T2
let c_R_T3 = code_of_rule Async.R_T3
let c_R_tau = code_of_rule Async.R_tau
let c_R_reply_send = code_of_rule Async.R_reply_send
let c_R_repl_recv = code_of_rule Async.R_repl_recv
let c_R_deliver = code_of_rule Async.R_deliver
let c_H_C1 = code_of_rule Async.H_C1
let c_H_C1_silent = code_of_rule Async.H_C1_silent
let c_H_C2 = code_of_rule Async.H_C2
let c_H_T1 = code_of_rule Async.H_T1
let c_H_T1_repl = code_of_rule Async.H_T1_repl
let c_H_T2 = code_of_rule Async.H_T2
let c_H_T3 = code_of_rule Async.H_T3
let c_H_T4 = code_of_rule Async.H_T4
let c_H_T5 = code_of_rule Async.H_T5
let c_H_T6 = code_of_rule Async.H_T6
let c_H_tau = code_of_rule Async.H_tau
let c_H_reply_send = code_of_rule Async.H_reply_send
let c_H_admit = code_of_rule Async.H_admit
let c_H_admit_progress = code_of_rule Async.H_admit_progress
let c_H_nack_full = code_of_rule Async.H_nack_full

let completes_tbl =
  Array.map
    (fun r ->
      match r with
      | Async.H_C1 | Async.H_C1_silent | Async.H_T1_repl | Async.R_C3_ack
      | Async.R_C3_silent | Async.R_repl_recv ->
        true
      | _ -> false)
    all_rules

let completes c = completes_tbl.(c)

(* ---- node machines -------------------------------------------------------- *)

type home = {
  hm : t;
  h_k : int;
  h_rng : Random.State.t;
  mutable h_ctl : int;
  h_env : Value.t array;
  mutable h_mode : int;  (* 0 = Hcomm, 1 = Htrans `Ack, 2 = Htrans `Repl *)
  mutable h_guard : guard;
  mutable h_peer : int;
  mutable h_repl_name : string;
  h_scr : Value.t array;  (* transient scratch (choices bound, no assigns) *)
  mutable h_rot : int;
  mutable hb_send : int array;  (* buffered requests: parallel arrays *)
  mutable hb_msg : Wire.msg array;
  mutable hb_len : int;
  h_work : Value.t array;  (* per-step instance scratch *)
  h_env1 : Value.t array;  (* first-stage env of a reply completion *)
  h_tmp : Value.t array;  (* simultaneous-assignment temporaries *)
  mutable h_memo_name : string;
  mutable h_memo_id : int;
  mutable h_last_actor : int;
  mutable h_last_subject : string;
}

type remote = {
  rm : t;
  r_self : int;
  r_rng : Random.State.t;
  mutable r_ctl : int;
  r_env : Value.t array;
  mutable r_mode : int;  (* 0 = Rcomm, 1 = Rtrans, 2 = Rwait *)
  mutable r_guard : guard;
  mutable r_repl_name : string;
  r_scr : Value.t array;
  mutable r_buf : Wire.msg;  (* meaningful iff r_has_buf *)
  mutable r_has_buf : bool;
  r_work : Value.t array;
  r_env1 : Value.t array;
  r_tmp : Value.t array;
  mutable r_memo_name : string;
  mutable r_memo_id : int;
  mutable r_last_subject : string;
}

let max_assigns tbl =
  Array.fold_left
    (fun acc st ->
      let per_state g = Array.length g.g_as_slots in
      let m = ref acc in
      Array.iter (fun g -> m := max !m (per_state g)) st.s_taus;
      Array.iter (Array.iter (fun g -> m := max !m (per_state g))) st.s_recv;
      Array.iter (fun g -> m := max !m (per_state g)) st.s_sends;
      (match st.s_active with Some g -> m := max !m (per_state g) | None -> ());
      !m)
    0 tbl

let home_make t ~k ~seed =
  let init = t.prog.Prog.home.p_init_env in
  {
    hm = t;
    h_k = k;
    h_rng = Random.State.make [| seed; 7919 |];
    h_ctl = t.h_init;
    h_env = Array.copy init;
    h_mode = 0;
    h_guard = dummy_guard;
    h_peer = -1;
    h_repl_name = "";
    h_scr = Array.copy init;
    h_rot = 0;
    hb_send = Array.make 8 0;
    hb_msg = Array.make 8 dummy_msg;
    hb_len = 0;
    h_work = Array.copy init;
    h_env1 = Array.copy init;
    h_tmp = Array.make (max 1 (max_assigns t.h_tbl)) Value.Vunit;
    h_memo_name = "";
    h_memo_id = -1;
    h_last_actor = -1;
    h_last_subject = "";
  }

let remote_make t ~seed i =
  let init = t.prog.Prog.remote.p_init_env in
  {
    rm = t;
    r_self = i;
    r_rng = Random.State.make [| seed; i |];
    r_ctl = t.r_init;
    r_env = Array.copy init;
    r_mode = 0;
    r_guard = dummy_guard;
    r_repl_name = "";
    r_scr = Array.copy init;
    r_buf = dummy_msg;
    r_has_buf = false;
    r_work = Array.copy init;
    r_env1 = Array.copy init;
    r_tmp = Array.make (max 1 (max_assigns t.r_tbl)) Value.Vunit;
    r_memo_name = "";
    r_memo_id = -1;
    r_last_subject = "";
  }

(* ---- shared machinery ----------------------------------------------------- *)

exception Hit

(* Interned id of a received message's name, or [-1] for a name this
   protocol never dispatches on.  Consecutive messages overwhelmingly
   repeat the same (physically shared) name constant, hence the memo. *)
let hmid h name =
  if name == h.h_memo_name then h.h_memo_id
  else begin
    let id = try Hashtbl.find h.hm.msg_ids name with Not_found -> -1 in
    h.h_memo_name <- name;
    h.h_memo_id <- id;
    id
  end

let rmid r name =
  if name == r.r_memo_name then r.r_memo_id
  else begin
    let id = try Hashtbl.find r.rm.msg_ids name with Not_found -> -1 in
    r.r_memo_name <- name;
    r.r_memo_id <- id;
    id
  end

(* Call [f] once per choose-expansion of [g] whose condition holds, with
   the bindings written into [scratch].  Expansion order matches
   {!Prog.guard_instances}: choose binders in declaration order, set
   members in ascending id order, condition filtered at the leaves. *)
let iter_insts t g scratch self (f : unit -> unit) =
  let nch = Array.length g.g_ch_slots in
  let rec go d =
    if d = nch then begin
      if g.g_cond scratch self then f ()
    end
    else begin
      let mask =
        match g.g_ch_sets.(d) scratch self with
        | Value.Vset m -> m
        | _ -> invalid_arg "Value: expected a set"
      in
      let slot = g.g_ch_slots.(d) in
      let r = ref 0 and m = ref mask in
      while !m <> 0 do
        if !m land 1 <> 0 then begin
          scratch.(slot) <- t.rids.(!r);
          go (d + 1)
        end;
        incr r;
        m := !m lsr 1
      done
    end
  in
  go 0

(* Evaluate the simultaneous assignments against [scratch], then install
   [scratch] + assignments into [env] — {!Prog.complete} without the two
   array copies. *)
let apply g scratch self tmp env =
  let na = Array.length g.g_as_slots in
  for i = 0 to na - 1 do
    tmp.(i) <- g.g_as_exprs.(i) scratch self
  done;
  Array.blit scratch 0 env 0 (Array.length env);
  for i = 0 to na - 1 do
    env.(g.g_as_slots.(i)) <- tmp.(i)
  done

let eval_args (args : ev array) scratch self =
  let rec go i =
    if i = Array.length args then [] else args.(i) scratch self :: go (i + 1)
  in
  go 0

let write_payload scratch (slots : int array) (payload : Value.t list) =
  let i = ref 0 in
  List.iter
    (fun v ->
      scratch.(slots.(!i)) <- v;
      incr i)
    payload

let arity_ok (slots : int array) (payload : Value.t list) =
  List.compare_length_with payload (Array.length slots) = 0

(* Iterate the semantic ways request [(sender, m)] matches a receive
   guard of [st] under [env]: mirrors {!Async.home_request_instances} /
   {!Async.remote_request_instances} (guard order, then expansion
   order).  [leaf g] runs with the instance bound in [work]. *)
let match_iter t st ~env ~work ~self ~sender ~mid (m : Wire.msg)
    (leaf : guard -> unit) =
  if mid >= 0 then begin
    let gs = st.s_recv.(mid) in
    for gi = 0 to Array.length gs - 1 do
      let g = gs.(gi) in
      match g.g_kind with
      | G_recv rc when arity_ok rc.slots m.Wire.m_payload ->
        Array.blit env 0 work 0 (Array.length env);
        if rc.binder >= 0 then work.(rc.binder) <- t.rids.(sender);
        write_payload work rc.slots m.Wire.m_payload;
        let f =
          match rc.from with
          | None -> fun () -> leaf g
          | Some fe -> (
            fun () ->
              match fe work self with
              | Value.Vrid r when r = sender -> leaf g
              | _ -> ())
        in
        iter_insts t g work self f
      | _ -> ()
    done
  end

(* ---- home buffer ----------------------------------------------------------- *)

let hb_push h i m =
  if h.hb_len = Array.length h.hb_send then begin
    let cap = 2 * h.hb_len in
    let s = Array.make cap 0 and ms = Array.make cap dummy_msg in
    Array.blit h.hb_send 0 s 0 h.hb_len;
    Array.blit h.hb_msg 0 ms 0 h.hb_len;
    h.hb_send <- s;
    h.hb_msg <- ms
  end;
  h.hb_send.(h.hb_len) <- i;
  h.hb_msg.(h.hb_len) <- m;
  h.hb_len <- h.hb_len + 1

let hb_remove h idx =
  for j = idx to h.hb_len - 2 do
    h.hb_send.(j) <- h.hb_send.(j + 1);
    h.hb_msg.(j) <- h.hb_msg.(j + 1)
  done;
  h.hb_len <- h.hb_len - 1;
  h.hb_msg.(h.hb_len) <- dummy_msg

let is_ff_h h (m : Wire.msg) =
  h.hm.has_ff
  &&
  let id = hmid h m.Wire.m_name in
  id >= 0 && h.hm.ff.(id)

let regular_occ h =
  if not h.hm.has_ff then h.hb_len
  else begin
    let c = ref 0 in
    for j = 0 to h.hb_len - 1 do
      if not (is_ff_h h h.hb_msg.(j)) then incr c
    done;
    !c
  end

let hb_has_sender h j =
  let rec go b = b < h.hb_len && (h.hb_send.(b) = j || go (b + 1)) in
  go 0

(* Oldest evictable (non fire-and-forget) buffered request, or [-1] when
   no eviction is needed. *)
let evict_idx h =
  if regular_occ h < h.h_k then -1
  else begin
    let rec find j =
      if j >= h.hb_len then -1 else if is_ff_h h h.hb_msg.(j) then find (j + 1) else j
    in
    find 0
  end

let rotate_next st rot =
  let nsends = Array.length st.s_sends in
  if nsends = 0 then 0 else (rot + 1) mod nsends

(* ---- home local step -------------------------------------------------------- *)

let prep_h h = Array.blit h.h_env 0 h.h_work 0 (Array.length h.h_env)

(* Single uniformly-random enabled transition out of taus, C1 over the
   buffered requests, and (when no C1 instance exists) the first
   rotation send guard with an instance — the same candidate set
   {!Async.home_local} enumerates, chosen by single-pass reservoir
   sampling over candidate ordinals.  Candidates blocked by [room] keep
   their ordinal but are excluded from the draw, so the selection pass
   and the execution pass (which re-walks the same deterministic
   enumeration to the recorded ordinal) always agree: ring space only
   grows between the two passes, never shrinks. *)
let home_local (h : home) ~(room : int -> bool) ~(emit : int -> Wire.t -> unit) :
    int =
  if h.h_mode <> 0 then -1
  else begin
    let t = h.hm in
    let st = t.h_tbl.(h.h_ctl) in
    let seen = ref 0 in
    let ck = ref 0 and cb = ref (-1) and cord = ref (-1) in
    let ord = ref 0 in
    let consider kind b ok =
      if ok then begin
        incr seen;
        (* reservoir: the first candidate is kept unconditionally, so the
           common singleton case never touches the rng *)
        if !seen = 1 || Random.State.int h.h_rng !seen = 0 then begin
          ck := kind;
          cb := b;
          cord := !ord
        end
      end;
      incr ord
    in
    (* taus: one global ordinal sequence over the tau guards *)
    ord := 0;
    Array.iter
      (fun g ->
        prep_h h;
        iter_insts t g h.h_work (-1) (fun () -> consider 1 (-1) true))
      st.s_taus;
    (* C1: per buffer entry, over the matching receive guards *)
    let c1_sem = ref 0 in
    for b = 0 to h.hb_len - 1 do
      let sender = h.hb_send.(b) and m = h.hb_msg.(b) in
      ord := 0;
      match_iter t st ~env:h.h_env ~work:h.h_work ~self:(-1) ~sender
        ~mid:(hmid h m.Wire.m_name) m (fun g ->
          incr c1_sem;
          let silent = g.g_ann = Prog.Rr_silent_consume in
          consider 2 b (silent || room sender))
    done;
    (* C2: only when no buffered request can complete a rendezvous *)
    let ev = ref (-1) in
    if !c1_sem = 0 then begin
      let nsends = Array.length st.s_sends in
      let goff = ref 0 and found = ref false in
      while (not !found) && !goff < nsends do
        let g = st.s_sends.((h.h_rot + !goff) mod nsends) in
        (match g.g_kind with
        | G_send_remote sr ->
          let is_reply = g.g_ann = Prog.Rr_reply_send in
          if not is_reply then ev := evict_idx h;
          prep_h h;
          ord := 0;
          iter_insts t g h.h_work (-1) (fun () ->
              match sr.dst h.h_work (-1) with
              | Value.Vrid j when j >= 0 && j < t.n ->
                (* condition (c): don't solicit a remote whose own
                   request is pending *)
                if is_reply || not (hb_has_sender h j) then begin
                  found := true;
                  let ok =
                    room j
                    && (is_reply || !ev < 0 || room h.hb_send.(!ev))
                  in
                  consider 3 ((h.h_rot + !goff) mod nsends) ok
                end
              | Value.Vrid _ -> ()
              | v ->
                proto_error "home send target is not a remote id: %a" Value.pp v)
        | _ -> proto_error "cs_sends points at a non-send guard");
        incr goff
      done
    end;
    if !seen = 0 then -1
    else begin
      (* execution: re-walk the chosen group's enumeration to [cord] *)
      let res = ref (-1) in
      let target = !cord in
      let ord2 = ref 0 in
      (match !ck with
      | 1 ->
        (try
           Array.iter
             (fun g ->
               prep_h h;
               iter_insts t g h.h_work (-1) (fun () ->
                   if !ord2 = target then begin
                     apply g h.h_work (-1) h.h_tmp h.h_env;
                     h.h_ctl <- g.g_target;
                     h.h_rot <- 0;
                     h.h_last_actor <- -1;
                     (h.h_last_subject <-
                        (match g.g_kind with G_tau l -> l | _ -> ""));
                     res := c_H_tau;
                     raise_notrace Hit
                   end;
                   incr ord2))
             st.s_taus
         with Hit -> ())
      | 2 ->
        let b = !cb in
        let sender = h.hb_send.(b) and m = h.hb_msg.(b) in
        (try
           match_iter t st ~env:h.h_env ~work:h.h_work ~self:(-1) ~sender
             ~mid:(hmid h m.Wire.m_name) m (fun g ->
               if !ord2 = target then begin
                 apply g h.h_work (-1) h.h_tmp h.h_env;
                 h.h_ctl <- g.g_target;
                 h.h_rot <- 0;
                 hb_remove h b;
                 let silent = g.g_ann = Prog.Rr_silent_consume in
                 if not silent then emit sender Wire.Ack;
                 h.h_last_actor <- sender;
                 h.h_last_subject <- m.Wire.m_name;
                 res := (if silent then c_H_C1_silent else c_H_C1);
                 raise_notrace Hit
               end;
               incr ord2)
         with Hit -> ())
      | 3 ->
        let g = st.s_sends.(!cb) in
        let s_dst, s_name, s_args =
          match g.g_kind with
          | G_send_remote { dst; name; args } -> (dst, name, args)
          | _ -> assert false
        in
        let is_reply = g.g_ann = Prog.Rr_reply_send in
        prep_h h;
        (try
           iter_insts t g h.h_work (-1) (fun () ->
               match s_dst h.h_work (-1) with
               | Value.Vrid j when j >= 0 && j < t.n ->
                 if is_reply || not (hb_has_sender h j) then begin
                   if !ord2 = target then begin
                     let payload = eval_args s_args h.h_work (-1) in
                     let req =
                       Wire.Req { Wire.m_name = s_name; m_payload = payload }
                     in
                     if is_reply then begin
                       apply g h.h_work (-1) h.h_tmp h.h_env;
                       h.h_ctl <- g.g_target;
                       h.h_rot <- 0;
                       emit j req;
                       res := c_H_reply_send
                     end
                     else begin
                       if !ev >= 0 then begin
                         emit h.hb_send.(!ev) Wire.Nack;
                         hb_remove h !ev
                       end;
                       Array.blit h.h_work 0 h.h_scr 0 (Array.length h.h_scr);
                       h.h_guard <- g;
                       h.h_peer <- j;
                       (match g.g_ann with
                       | Prog.Rr_await_repl repl ->
                         h.h_mode <- 2;
                         h.h_repl_name <- repl
                       | _ -> h.h_mode <- 1);
                       emit j req;
                       res := c_H_C2
                     end;
                     h.h_last_actor <- j;
                     h.h_last_subject <- s_name;
                     raise_notrace Hit
                   end;
                   incr ord2
                 end
               | _ -> ())
         with Hit -> ())
      | _ -> assert false);
      !res
    end
  end

(* ---- home receive step ------------------------------------------------------- *)

let home_satisfies h st i (m : Wire.msg) =
  try
    match_iter h.hm st ~env:h.h_env ~work:h.h_work ~self:(-1) ~sender:i
      ~mid:(hmid h m.Wire.m_name) m (fun _ -> raise_notrace Hit);
    false
  with Hit -> true

let home_recv (h : home) i (w : Wire.t) ~(emit : int -> Wire.t -> unit) : int =
  let t = h.hm in
  let st = t.h_tbl.(h.h_ctl) in
  let free = h.h_k - regular_occ h in
  match w with
  | Wire.Ack ->
    if h.h_mode = 1 && h.h_peer = i then begin
      let g = h.h_guard in
      apply g h.h_scr (-1) h.h_tmp h.h_env;
      h.h_ctl <- g.g_target;
      h.h_mode <- 0;
      h.h_rot <- 0;
      h.h_last_actor <- i;
      h.h_last_subject <- "";
      c_H_T1
    end
    else proto_error "home received an unexpected ack from r%d" i
  | Wire.Nack ->
    if h.h_mode <> 0 && h.h_peer = i then begin
      h.h_mode <- 0;
      h.h_rot <- rotate_next st h.h_rot;
      h.h_last_actor <- i;
      h.h_last_subject <- "";
      c_H_T2
    end
    else proto_error "home received an unexpected nack from r%d" i
  | Wire.Req m ->
    h.h_last_actor <- i;
    h.h_last_subject <- m.Wire.m_name;
    if h.h_mode <> 0 && h.h_peer = i then begin
      if h.h_mode = 2 && String.equal m.Wire.m_name h.h_repl_name then begin
        (* the reply completes both rendezvous (§3.3) *)
        let g = h.h_guard in
        apply g h.h_scr (-1) h.h_tmp h.h_env1;
        let ctl1 = g.g_target in
        let st1 = t.h_tbl.(ctl1) in
        let mid = hmid h m.Wire.m_name in
        let cnt = ref 0 in
        match_iter t st1 ~env:h.h_env1 ~work:h.h_work ~self:(-1) ~sender:i ~mid
          m (fun _ -> incr cnt);
        if !cnt = 0 then
          proto_error "home cannot consume reply %s from r%d" m.Wire.m_name i;
        let pick = if !cnt = 1 then 0 else Random.State.int h.h_rng !cnt in
        let ord = ref 0 in
        (try
           match_iter t st1 ~env:h.h_env1 ~work:h.h_work ~self:(-1) ~sender:i
             ~mid m (fun g2 ->
               if !ord = pick then begin
                 apply g2 h.h_work (-1) h.h_tmp h.h_env;
                 h.h_ctl <- g2.g_target;
                 h.h_mode <- 0;
                 h.h_rot <- 0;
                 raise_notrace Hit
               end;
               incr ord)
         with Hit -> ());
        c_H_T1_repl
      end
      else begin
        (* T3: implicit nack plus a request, held by the ack reservation *)
        if free < 1 then
          proto_error "ack-buffer reservation violated (free = %d)" free;
        hb_push h i m;
        h.h_mode <- 0;
        h.h_rot <- rotate_next st h.h_rot;
        c_H_T3
      end
    end
    else if h.h_mode <> 0 then begin
      (* a foreign request while transient: rows T4/T5/T6 *)
      if is_ff_h h m || free > 2 then begin
        hb_push h i m;
        c_H_T4
      end
      else if free = 2 && (not st.s_internal) && home_satisfies h st i m then begin
        hb_push h i m;
        c_H_T5
      end
      else begin
        emit i Wire.Nack;
        c_H_T6
      end
    end
    else if is_ff_h h m || free > 1 then begin
      hb_push h i m;
      c_H_admit
    end
    else if free = 1 && (not st.s_internal) && home_satisfies h st i m then begin
      hb_push h i m;
      c_H_admit_progress
    end
    else begin
      emit i Wire.Nack;
      c_H_nack_full
    end

(* ---- remote steps -------------------------------------------------------------- *)

let prep_r r = Array.blit r.r_env 0 r.r_work 0 (Array.length r.r_env)

let remote_local (r : remote) ~(room_h : bool) ~(emit : Wire.t -> unit) : int =
  if r.r_mode <> 0 then -1
  else begin
    let t = r.rm in
    let st = t.r_tbl.(r.r_ctl) in
    let self = r.r_self in
    let seen = ref 0 in
    (* candidate kinds: 1 tau, 2 active send, 3 C3 match, 4 C3 nack *)
    let ck = ref 0 and cord = ref (-1) in
    let ord = ref 0 in
    let consider kind ok =
      if ok then begin
        incr seen;
        if !seen = 1 || Random.State.int r.r_rng !seen = 0 then begin
          ck := kind;
          cord := !ord
        end
      end;
      incr ord
    in
    ord := 0;
    Array.iter
      (fun g ->
        prep_r r;
        iter_insts t g r.r_work self (fun () -> consider 1 true))
      st.s_taus;
    (match st.s_active with
    | Some g -> (
      match g.g_kind with
      | G_send_home _ ->
        prep_r r;
        ord := 0;
        iter_insts t g r.r_work self (fun () -> consider 2 room_h)
      | _ -> proto_error "cs_active points at a non-send guard")
    | None -> ());
    if r.r_has_buf && st.s_active = None && not st.s_internal then begin
      let m = r.r_buf in
      ord := 0;
      let sem = ref 0 in
      match_iter t st ~env:r.r_env ~work:r.r_work ~self ~sender:self
        ~mid:(rmid r m.Wire.m_name) m (fun g ->
          incr sem;
          let silent = g.g_ann = Prog.Rr_silent_consume in
          consider 3 (silent || room_h));
      if !sem = 0 then begin
        ord := 0;
        consider 4 room_h
      end
    end;
    if !seen = 0 then -1
    else begin
      let res = ref (-1) in
      let target = !cord in
      let ord2 = ref 0 in
      (match !ck with
      | 1 ->
        (try
           Array.iter
             (fun g ->
               prep_r r;
               iter_insts t g r.r_work self (fun () ->
                   if !ord2 = target then begin
                     apply g r.r_work self r.r_tmp r.r_env;
                     r.r_ctl <- g.g_target;
                     (r.r_last_subject <-
                        (match g.g_kind with G_tau l -> l | _ -> ""));
                     res := c_R_tau;
                     raise_notrace Hit
                   end;
                   incr ord2))
             st.s_taus
         with Hit -> ())
      | 2 ->
        let g = Option.get st.s_active in
        let s_name, s_args =
          match g.g_kind with
          | G_send_home { name; args } -> (name, args)
          | _ -> assert false
        in
        prep_r r;
        (try
           iter_insts t g r.r_work self (fun () ->
               if !ord2 = target then begin
                 let payload = eval_args s_args r.r_work self in
                 let req =
                   Wire.Req { Wire.m_name = s_name; m_payload = payload }
                 in
                 (* C2: a pending home request is deleted; the home
                    learns of it through the implicit-nack rule *)
                 let had_buffered = r.r_has_buf in
                 r.r_has_buf <- false;
                 r.r_buf <- dummy_msg;
                 (match g.g_ann with
                 | Prog.Rr_reply_send ->
                   apply g r.r_work self r.r_tmp r.r_env;
                   r.r_ctl <- g.g_target;
                   res := c_R_reply_send
                 | Prog.Rr_request repl ->
                   Array.blit r.r_work 0 r.r_scr 0 (Array.length r.r_scr);
                   r.r_guard <- g;
                   r.r_mode <- 2;
                   r.r_repl_name <- repl;
                   res := (if had_buffered then c_R_C2 else c_R_C1)
                 | _ ->
                   Array.blit r.r_work 0 r.r_scr 0 (Array.length r.r_scr);
                   r.r_guard <- g;
                   r.r_mode <- 1;
                   res := (if had_buffered then c_R_C2 else c_R_C1));
                 emit req;
                 r.r_last_subject <- s_name;
                 raise_notrace Hit
               end;
               incr ord2)
         with Hit -> ())
      | 3 ->
        let m = r.r_buf in
        (try
           match_iter t st ~env:r.r_env ~work:r.r_work ~self ~sender:self
             ~mid:(rmid r m.Wire.m_name) m (fun g ->
               if !ord2 = target then begin
                 apply g r.r_work self r.r_tmp r.r_env;
                 r.r_ctl <- g.g_target;
                 r.r_has_buf <- false;
                 r.r_buf <- dummy_msg;
                 let silent = g.g_ann = Prog.Rr_silent_consume in
                 if not silent then emit Wire.Ack;
                 r.r_last_subject <- m.Wire.m_name;
                 res := (if silent then c_R_C3_silent else c_R_C3_ack);
                 raise_notrace Hit
               end;
               incr ord2)
         with Hit -> ())
      | 4 ->
        let m = r.r_buf in
        r.r_has_buf <- false;
        r.r_buf <- dummy_msg;
        emit Wire.Nack;
        r.r_last_subject <- m.Wire.m_name;
        res := c_R_C3_nack
      | _ -> assert false);
      !res
    end
  end

let remote_recv (r : remote) (w : Wire.t) : int =
  let t = r.rm in
  let self = r.r_self in
  match w with
  | Wire.Ack ->
    if r.r_mode = 1 then begin
      let g = r.r_guard in
      apply g r.r_scr self r.r_tmp r.r_env;
      r.r_ctl <- g.g_target;
      r.r_mode <- 0;
      r.r_last_subject <- "";
      c_R_T1
    end
    else proto_error "remote %d received an unexpected ack" self
  | Wire.Nack ->
    if r.r_mode <> 0 then begin
      r.r_mode <- 0;
      r.r_last_subject <- "";
      c_R_T2
    end
    else proto_error "remote %d received an unexpected nack" self
  | Wire.Req m ->
    r.r_last_subject <- m.Wire.m_name;
    if r.r_mode = 1 then c_R_T3
    else if r.r_mode = 2 then begin
      if String.equal m.Wire.m_name r.r_repl_name then begin
        let g = r.r_guard in
        apply g r.r_scr self r.r_tmp r.r_env1;
        let ctl1 = g.g_target in
        let st1 = t.r_tbl.(ctl1) in
        let mid = rmid r m.Wire.m_name in
        let cnt = ref 0 in
        match_iter t st1 ~env:r.r_env1 ~work:r.r_work ~self ~sender:self ~mid
          m (fun _ -> incr cnt);
        if !cnt = 0 then
          proto_error "remote %d cannot consume reply %s" self m.Wire.m_name;
        let pick = if !cnt = 1 then 0 else Random.State.int r.r_rng !cnt in
        let ord = ref 0 in
        (try
           match_iter t st1 ~env:r.r_env1 ~work:r.r_work ~self ~sender:self
             ~mid m (fun g2 ->
               if !ord = pick then begin
                 apply g2 r.r_work self r.r_tmp r.r_env;
                 r.r_ctl <- g2.g_target;
                 r.r_mode <- 0;
                 raise_notrace Hit
               end;
               incr ord)
         with Hit -> ());
        c_R_repl_recv
      end
      else c_R_T3
    end
    else if r.r_has_buf then -2
    else begin
      r.r_buf <- m;
      r.r_has_buf <- true;
      c_R_deliver
    end

(* ---- observation ----------------------------------------------------------------- *)

let home_last_actor h = h.h_last_actor
let home_last_subject h = h.h_last_subject
let remote_last_subject r = r.r_last_subject
let home_buf_len h = h.hb_len
let home_at_comm h = h.h_mode = 0
let remote_at_comm r = r.r_mode = 0
let remote_at_start r = r.r_ctl = r.rm.r_init && r.r_mode = 0

let home_snapshot (h : home) : Async.home =
  {
    Async.h_ctl = h.h_ctl;
    h_env = Array.copy h.h_env;
    h_mode =
      (if h.h_mode = 0 then Async.Hcomm
       else
         Async.Htrans
           {
             guard = h.h_guard.g_idx;
             peer = h.h_peer;
             scratch = Array.copy h.h_scr;
             await = (if h.h_mode = 1 then `Ack else `Repl h.h_repl_name);
           });
    h_rot = h.h_rot;
    h_buf = List.init h.hb_len (fun b -> (h.hb_send.(b), h.hb_msg.(b)));
  }

let remote_snapshot (r : remote) : Async.remote =
  {
    Async.r_ctl = r.r_ctl;
    r_env = Array.copy r.r_env;
    r_mode =
      (match r.r_mode with
      | 0 -> Async.Rcomm
      | 1 ->
        Async.Rtrans { guard = r.r_guard.g_idx; scratch = Array.copy r.r_scr }
      | _ ->
        Async.Rwait
          {
            guard = r.r_guard.g_idx;
            scratch = Array.copy r.r_scr;
            repl = r.r_repl_name;
          });
    r_buf = (if r.r_has_buf then Some r.r_buf else None);
  }
