(** Messages of the refined (asynchronous) protocol.

    Each rendezvous is split into a {e request} carrying the rendezvous'
    message type and payload, answered by an {e ack} (success), a {e nack}
    (failure: insufficient buffers or no matching guard), or — under the
    request/reply optimization — by the reply request itself.  Acks carry
    no payload: data always flows from the active to the passive party of
    the rendezvous, i.e. inside the request. *)

open Ccr_core

type msg = { m_name : string; m_payload : Value.t list }

type t = Req of msg | Ack | Nack

val equal : t -> t -> bool
val encode : Buffer.t -> t -> unit

val encode_perm : Buffer.t -> int array -> t -> unit
(** [encode_perm buf p m] writes exactly the bytes [encode] would write
    for [m] with every remote id [r] in its payload renamed to [p.(r)]. *)

val skip : string -> int -> int
(** Position just past the {!encode}d message at [pos] in [s]; used when
    re-parsing encoded state keys for collapse compression.
    @raise Invalid_argument if [pos] does not hold a message tag. *)

val pp : t Fmt.t
