open Ccr_core
open Ccr_semantics

(* Rename remote ids through [p] inside a value. *)
let permute_value (p : int array) (v : Value.t) =
  match v with
  | Value.Vrid r -> Value.Vrid p.(r)
  | Value.Vset _ ->
    Value.set_of_list (List.map (fun r -> p.(r)) (Value.set_members v))
  | Value.Vunit | Value.Vbool _ | Value.Vint _ -> v

let permute_env p env = Array.map (permute_value p) env

let permute_msg p (m : Wire.msg) =
  { m with Wire.m_payload = List.map (permute_value p) m.m_payload }

let permute_wire p = function
  | Wire.Req m -> Wire.Req (permute_msg p m)
  | (Wire.Ack | Wire.Nack) as w -> w

(* New array whose slot [p.(i)] holds the (renamed) content of slot [i]. *)
let permute_slots p a f =
  if Array.length a = 0 then [||]
  else begin
    let a' = Array.make (Array.length a) (f a.(0)) in
    Array.iteri (fun i x -> a'.(p.(i)) <- f x) a;
    a'
  end

let permute_rv (_ : Prog.t) p (st : Rendezvous.state) : Rendezvous.state =
  {
    h = { st.h with env = permute_env p st.h.env };
    r =
      permute_slots p st.r (fun (ps : Rendezvous.pstate) ->
          { ps with env = permute_env p ps.env });
  }

let permute_async (_ : Prog.t) p (st : Async.state) : Async.state =
  let home =
    {
      st.Async.h with
      h_env = permute_env p st.Async.h.h_env;
      h_mode =
        (match st.Async.h.h_mode with
        | Async.Hcomm -> Async.Hcomm
        | Async.Htrans t ->
          Async.Htrans
            {
              t with
              peer = p.(t.peer);
              scratch = permute_env p t.scratch;
            });
      h_buf =
        List.map (fun (i, m) -> (p.(i), permute_msg p m)) st.Async.h.h_buf;
    }
  in
  let remote (r : Async.remote) =
    {
      Async.r_ctl = r.Async.r_ctl;
      r_env = permute_env p r.Async.r_env;
      r_mode =
        (match r.Async.r_mode with
        | Async.Rcomm -> Async.Rcomm
        | Async.Rtrans t ->
          Async.Rtrans { t with scratch = permute_env p t.scratch }
        | Async.Rwait t ->
          Async.Rwait { t with scratch = permute_env p t.scratch });
      r_buf = Option.map (permute_msg p) r.Async.r_buf;
    }
  in
  {
    Async.h = home;
    r = permute_slots p st.Async.r remote;
    to_h = permute_slots p st.Async.to_h (List.map (permute_wire p));
    to_r = permute_slots p st.Async.to_r (List.map (permute_wire p));
  }

(* All permutations of [0..n-1], as arrays. *)
let permutations n =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun r -> x :: r) (perms (List.filter (( <> ) x) l)))
        l
  in
  perms (List.init n Fun.id) |> List.map Array.of_list

(* {2 Canonicalization statistics} *)

(* Atomics so the parallel engine's worker domains can share one record;
   [tie_sizes.(s)] counts tie groups of size [s] (sizes >= 2 only). *)
let max_tie_bucket = 32

type stats = {
  st_calls : int Atomic.t;
  st_fallbacks : int Atomic.t;
  st_tied_calls : int Atomic.t;
  st_perms_tried : int Atomic.t;
  st_canon_ns : int Atomic.t;
  st_tie_sizes : int Atomic.t array;
}

let make_stats () =
  {
    st_calls = Atomic.make 0;
    st_fallbacks = Atomic.make 0;
    st_tied_calls = Atomic.make 0;
    st_perms_tried = Atomic.make 0;
    st_canon_ns = Atomic.make 0;
    st_tie_sizes = Array.init (max_tie_bucket + 1) (fun _ -> Atomic.make 0);
  }

let calls s = Atomic.get s.st_calls
let fallbacks s = Atomic.get s.st_fallbacks
let tied_calls s = Atomic.get s.st_tied_calls
let perms_tried s = Atomic.get s.st_perms_tried
let canon_seconds s = float_of_int (Atomic.get s.st_canon_ns) /. 1e9

let iter_tie_groups s f =
  Array.iteri
    (fun size c ->
      let count = Atomic.get c in
      if count > 0 then f ~size ~count)
    s.st_tie_sizes

let bump a k = if k <> 0 then ignore (Atomic.fetch_and_add a k)

let record_tie s len =
  bump s.st_tie_sizes.(min len max_tie_bucket) 1

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* {2 Brute-force canonicalization}

   Kept for [--symmetry brute] and as the test oracle for the fast path.
   The [n > max_fact] fallback returns the plain encoding — sound (it is
   still an injective key, so no two orbits merge) but it reduces nothing;
   it is now counted in [stats] instead of degrading silently. *)

let canonical ~permute ~encode ?stats ?(max_fact = 6) prog n st =
  let t0 = match stats with None -> 0 | Some _ -> now_ns () in
  let key =
    if n > max_fact then begin
      Option.iter (fun s -> bump s.st_fallbacks 1) stats;
      encode st
    end
    else
      List.fold_left
        (fun best p ->
          Option.iter (fun s -> bump s.st_perms_tried 1) stats;
          let e = encode (permute prog p st) in
          match best with
          | Some b when String.compare b e <= 0 -> best
          | _ -> Some e)
        None (permutations n)
      |> Option.get
  in
  Option.iter
    (fun s ->
      bump s.st_calls 1;
      bump s.st_canon_ns (now_ns () - t0))
    stats;
  key

let canonical_rv ?stats ?max_fact (prog : Prog.t) st =
  canonical ~permute:permute_rv ~encode:Rendezvous.encode ?stats ?max_fact
    prog prog.n st

let canonical_async ?stats ?max_fact (prog : Prog.t) st =
  canonical ~permute:permute_async ~encode:Async.encode ?stats ?max_fact prog
    prog.n st

(* {2 Fast canonicalization: signature sort + tie refinement}

   Per remote slot compute a permutation-equivariant {e signature} — a byte
   string such that slot [p.(i)] of the permuted state has the same
   signature as slot [i] of the original.  Sorting slots by signature then
   fixes the canonical position of every slot whose signature is unique;
   only slots inside {e tied} signature groups can still be reordered, so
   the minimal encoding is found by enumerating arrangements within tie
   groups only.  The common case (all signatures distinct) is one sort and
   one [encode_perm] instead of [n!] permute+encode rounds.

   Equivariance is what makes the result exactly canonical: applying the
   candidate set to any orbit member yields the same set of permuted
   states, so the minimum over it does not depend on the representative.
   Rid-valued data is abstracted {e relative to the slot} (self/other bit,
   set cardinality + contains-self) — exactly the features preserved by
   renaming.  A too-coarse signature only costs time (bigger tie groups),
   never correctness. *)

(* Per-domain scratch: signature strings, sort order, candidate
   permutation and its inverse, plus the orbit size of the last
   canonicalized state (0 = unknown, e.g. after a fallback). *)
type scratch = {
  mutable cap : int;
  mutable sigs : string array;
  mutable order : int array;
  mutable perm : int array;
  mutable inv : int array;
  sbuf : Buffer.t;
  mutable last_orbit : int;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        cap = 0;
        sigs = [||];
        order = [||];
        perm = [||];
        inv = [||];
        sbuf = Buffer.create 256;
        last_orbit = 0;
      })

let ensure sc n =
  if sc.cap < n then begin
    sc.cap <- n;
    sc.sigs <- Array.make n "";
    sc.order <- Array.make n 0;
    sc.perm <- Array.make n 0;
    sc.inv <- Array.make n 0
  end

let last_orbit () = (Domain.DLS.get scratch_key).last_orbit

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

(* n! for the orbit-size computation; 0 = too big to represent. *)
let factorial n = if n > 20 then 0 else fact n

(* Slot-relative value abstraction: every feature written here is
   preserved when ids are renamed and the slot moves along. *)
let sig_value buf ~self (v : Value.t) =
  match v with
  | Value.Vrid r ->
    Buffer.add_char buf 'R';
    Buffer.add_char buf (if r = self then '1' else '0')
  | Value.Vset _ ->
    Buffer.add_char buf 'S';
    Value.encode_int buf (Value.set_cardinal v);
    Buffer.add_char buf (if Value.set_mem self v then '1' else '0')
  | Value.Vunit | Value.Vbool _ | Value.Vint _ ->
    Buffer.add_char buf 'V';
    Value.encode buf v

let sig_msg buf ~self (m : Wire.msg) =
  Value.encode_int buf (String.length m.m_name);
  Buffer.add_string buf m.m_name;
  Value.encode_int buf (List.length m.m_payload);
  List.iter (sig_value buf ~self) m.m_payload

let sig_wire buf ~self = function
  | Wire.Ack -> Buffer.add_char buf 'a'
  | Wire.Nack -> Buffer.add_char buf 'n'
  | Wire.Req m ->
    Buffer.add_char buf 'q';
    sig_msg buf ~self m

let rv_sig buf (st : Rendezvous.state) i =
  let r = st.r.(i) in
  Value.encode_int buf r.ctl;
  Array.iter (sig_value buf ~self:i) r.env;
  Buffer.add_char buf '|';
  Array.iter (sig_value buf ~self:i) st.h.env

let async_sig buf (st : Async.state) i =
  let r = st.r.(i) in
  Value.encode_int buf r.Async.r_ctl;
  Array.iter (sig_value buf ~self:i) r.Async.r_env;
  (match r.Async.r_mode with
  | Async.Rcomm -> Buffer.add_char buf 'c'
  | Async.Rtrans { guard; scratch } ->
    Buffer.add_char buf 't';
    Value.encode_int buf guard;
    Array.iter (sig_value buf ~self:i) scratch
  | Async.Rwait { guard; scratch; repl } ->
    Buffer.add_char buf 'w';
    Value.encode_int buf guard;
    Value.encode_int buf (String.length repl);
    Buffer.add_string buf repl;
    Array.iter (sig_value buf ~self:i) scratch);
  (match r.Async.r_buf with
  | None -> Buffer.add_char buf '0'
  | Some m ->
    Buffer.add_char buf '1';
    sig_msg buf ~self:i m);
  Buffer.add_char buf '|';
  List.iter (sig_wire buf ~self:i) st.Async.to_h.(i);
  Buffer.add_char buf '|';
  List.iter (sig_wire buf ~self:i) st.Async.to_r.(i);
  Buffer.add_char buf '|';
  (* Home-side features as seen from slot [i]: whether home data, the
     transient peer, or buffered requests refer to this slot. *)
  Array.iter (sig_value buf ~self:i) st.Async.h.h_env;
  (match st.Async.h.h_mode with
  | Async.Hcomm -> Buffer.add_char buf 'C'
  | Async.Htrans { guard; peer; scratch; await } ->
    Buffer.add_char buf 'T';
    Value.encode_int buf guard;
    Buffer.add_char buf (if peer = i then '1' else '0');
    (match await with
    | `Ack -> Buffer.add_char buf 'A'
    | `Repl repl ->
      Buffer.add_char buf 'P';
      Value.encode_int buf (String.length repl);
      Buffer.add_string buf repl);
    Array.iter (sig_value buf ~self:i) scratch);
  List.iter
    (fun (j, m) ->
      Buffer.add_char buf (if j = i then '1' else '0');
      sig_msg buf ~self:i m)
    st.Async.h.h_buf

let default_max_perms = 5040 (* 7!: brute-force cost we never exceed *)

let canonicalize ~sig_slot ~encode_perm ?stats ?(max_perms = default_max_perms)
    ~n st =
  let sc = Domain.DLS.get scratch_key in
  ensure sc n;
  let t0 = match stats with None -> 0 | Some _ -> now_ns () in
  for i = 0 to n - 1 do
    Buffer.clear sc.sbuf;
    sig_slot sc.sbuf st i;
    sc.sigs.(i) <- Buffer.contents sc.sbuf
  done;
  (* Insertion sort of the slot order by signature: n is small and the
     array is in scratch, so this beats a closure-driven Array.sort. *)
  for i = 0 to n - 1 do
    sc.order.(i) <- i
  done;
  for i = 1 to n - 1 do
    let x = sc.order.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && String.compare sc.sigs.(sc.order.(!j)) sc.sigs.(x) > 0 do
      sc.order.(!j + 1) <- sc.order.(!j);
      decr j
    done;
    sc.order.(!j + 1) <- x
  done;
  (* Tie groups: runs of equal signatures in sorted order.  The number of
     candidate permutations is the product of the group factorials. *)
  let groups = ref [] in
  let candidates = ref 1 in
  let tied = ref false in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    while
      !j < n && String.equal sc.sigs.(sc.order.(!i)) sc.sigs.(sc.order.(!j))
    do
      incr j
    done;
    let len = !j - !i in
    if len > 1 then begin
      tied := true;
      groups := (!i, !j - 1) :: !groups;
      Option.iter (fun s -> record_tie s len) stats;
      let f = factorial len in
      candidates :=
        (if f = 0 || !candidates > max_perms / f then max_perms + 1
         else !candidates * f)
    end;
    i := !j
  done;
  let use_order () =
    for j = 0 to n - 1 do
      sc.inv.(j) <- sc.order.(j);
      sc.perm.(sc.order.(j)) <- j
    done;
    encode_perm ~p:sc.perm ~inv:sc.inv st
  in
  let tried = ref 0 in
  let key =
    if not !tied then begin
      (* All signatures distinct: the sorted order IS the canonical order,
         and distinct signatures rule out any non-trivial stabilizer. *)
      incr tried;
      sc.last_orbit <- factorial n;
      use_order ()
    end
    else if !candidates > max_perms then begin
      (* Too many tied arrangements: keep the signature-sorted order as a
         deterministic (injective, hence sound) key and report the
         degradation instead of hiding it. *)
      Option.iter (fun s -> bump s.st_fallbacks 1) stats;
      sc.last_orbit <- 0;
      use_order ()
    end
    else begin
      let garr = Array.of_list !groups in
      let best = ref "" in
      let stab = ref 0 in
      let try_candidate () =
        incr tried;
        let e = use_order () in
        if !stab = 0 then begin
          best := e;
          stab := 1
        end
        else
          let c = String.compare e !best in
          if c < 0 then begin
            best := e;
            stab := 1
          end
          else if c = 0 then incr stab
      in
      let rec enum gi =
        if gi = Array.length garr then try_candidate ()
        else begin
          let lo, hi = garr.(gi) in
          arrange lo hi gi
        end
      and arrange k hi gi =
        if k >= hi then enum (gi + 1)
        else
          for j = k to hi do
            let t = sc.order.(k) in
            sc.order.(k) <- sc.order.(j);
            sc.order.(j) <- t;
            arrange (k + 1) hi gi;
            let t = sc.order.(k) in
            sc.order.(k) <- sc.order.(j);
            sc.order.(j) <- t
          done
      in
      enum 0;
      (* Candidates achieving the minimum are exactly the stabilizer of
         the canonical representative, so orbit size = n! / |stab|. *)
      let f = factorial n in
      sc.last_orbit <- (if f = 0 then 0 else f / !stab);
      !best
    end
  in
  Option.iter
    (fun s ->
      bump s.st_calls 1;
      if !tied then bump s.st_tied_calls 1;
      bump s.st_perms_tried !tried;
      bump s.st_canon_ns (now_ns () - t0))
    stats;
  key

let canonical_rv_fast ?stats ?max_perms (prog : Prog.t) st =
  canonicalize ~sig_slot:rv_sig ~encode_perm:Rendezvous.encode_perm ?stats
    ?max_perms ~n:prog.n st

let canonical_async_fast ?stats ?max_perms (prog : Prog.t) st =
  canonicalize ~sig_slot:async_sig ~encode_perm:Async.encode_perm ?stats
    ?max_perms ~n:prog.n st
