(** Symmetry reduction over remote identities.

    The paper's systems are fully symmetric in the remote nodes: every
    remote runs the same process, and remote identities appear only as
    interchangeable tokens (directory variables, sharer sets, payload
    values, channel indices).  Any permutation of remote ids is therefore
    an automorphism of the transition system, and reachability only needs
    one representative per orbit.

    These functions produce a {e canonical encoding}: the
    lexicographically smallest encoding over all permutations of remote
    ids.  Plugging one in as the canonical key of
    {!Ccr_modelcheck.Explore.run} explores the quotient space: counts
    shrink by up to [n!] while preserving every property that is itself
    symmetric (coherence invariants, deadlock, progress).

    Two canonicalizers are provided.  The {e brute} one permutes and
    re-encodes the state [n!] times (the test oracle; unusable past
    [max_fact]).  The {e fast} one sorts remote slots by a
    permutation-equivariant per-slot signature (control state, env,
    buffer, transient mode, both channel contents, and the home's
    references to the slot) and enumerates permutations only within tied
    signature groups, so the common case is one sort plus one
    [encode_perm].  Both fall back to a deterministic injective — hence
    still sound, merely less reducing — key when their work bound is
    exceeded, and the fallback is {e counted}, never silent.

    This is an {e extension} beyond the paper — 1997 SPIN had no symmetry
    reduction — quantified by the bench harness. *)

open Ccr_core
open Ccr_semantics

(** {1 Statistics}

    Shared, domain-safe counters: one record can be handed to
    canonicalizers running in all of {!Ccr_modelcheck.Explore.par_run}'s
    worker domains. *)

type stats

val make_stats : unit -> stats

val calls : stats -> int
(** Canonicalizations performed. *)

val fallbacks : stats -> int
(** Calls that gave up on exact canonicalization (brute: [n > max_fact];
    fast: tie-group arrangements exceeded [max_perms]) and returned a
    deterministic non-canonical key instead. *)

val tied_calls : stats -> int
(** Fast-path calls with at least one tied signature group. *)

val perms_tried : stats -> int
(** Candidate encodings computed (1 per untied fast call). *)

val canon_seconds : stats -> float
(** Wall-clock time spent canonicalizing, summed over domains. *)

val iter_tie_groups : stats -> (size:int -> count:int -> unit) -> unit
(** Iterate the tie-group size histogram (sizes >= 2; sizes beyond 32
    are clamped into the last bucket). *)

(** {1 Brute-force canonicalization} *)

val canonical_rv :
  ?stats:stats -> ?max_fact:int -> Prog.t -> Rendezvous.state -> string
(** Canonical encoding of a rendezvous state by exhaustive permutation.
    [max_fact] bounds the number of remotes for which all permutations
    are tried (default 6); beyond it the identity permutation is used and
    the call is counted as a fallback in [stats]. *)

val canonical_async :
  ?stats:stats -> ?max_fact:int -> Prog.t -> Async.state -> string

(** {1 Fast canonicalization} *)

val canonical_rv_fast :
  ?stats:stats -> ?max_perms:int -> Prog.t -> Rendezvous.state -> string
(** Canonical encoding by signature sort + tie refinement: the minimal
    encoding over the {e signature-consistent} permutations (those mapping
    each slot to a position of equal signature).  That candidate set is
    itself permutation-invariant, so the key is constant on each orbit and
    distinct across orbits — the same partition as the brute-force oracle
    (identical quotient counts and verdicts), though the representative
    {e encoding} it picks may differ from brute's global minimum.
    [max_perms] (default 5040) bounds the number of tie-group arrangements
    tried before falling back to the signature-sorted order (counted in
    [stats]). *)

val canonical_async_fast :
  ?stats:stats -> ?max_perms:int -> Prog.t -> Async.state -> string

val last_orbit : unit -> int
(** Orbit size ([n! / |stabilizer|]) of the state passed to the most
    recent fast canonicalization {e in the calling domain}, or [0] when
    unknown (fallback, or [n!] overflows).  Valid until the next fast
    canonicalization in the same domain; feeds the states-per-orbit
    histogram. *)

(** {1 Permutation primitives (exposed for tests and the bench)} *)

val permute_rv : Prog.t -> int array -> Rendezvous.state -> Rendezvous.state
(** [permute_rv prog p st] renames remote [i] to [p.(i)] everywhere:
    remote array slots, rid-valued variables, rid sets, payloads and
    channel contents. *)

val permute_async : Prog.t -> int array -> Async.state -> Async.state

val permute_slots : int array -> 'a array -> ('a -> 'b) -> 'b array
(** New array whose slot [p.(i)] holds [f] of slot [i]; total on the
    empty array. *)

val permutations : int -> int array list
(** All permutations of [0..n-1]. *)
