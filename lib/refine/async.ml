open Ccr_core

type config = { k : int }

type hmode =
  | Hcomm
  | Htrans of {
      guard : int;
      peer : int;
      scratch : Value.t array;
      await : [ `Ack | `Repl of string ];
    }

type home = {
  h_ctl : int;
  h_env : Value.t array;
  h_mode : hmode;
  h_rot : int;
  h_buf : (int * Wire.msg) list;
}

type rmode =
  | Rcomm
  | Rtrans of { guard : int; scratch : Value.t array }
  | Rwait of { guard : int; scratch : Value.t array; repl : string }

type remote = {
  r_ctl : int;
  r_env : Value.t array;
  r_mode : rmode;
  r_buf : Wire.msg option;
}

type state = {
  h : home;
  r : remote array;
  to_h : Wire.t list array;
  to_r : Wire.t list array;
}

type rule_id =
  | R_C1
  | R_C2
  | R_C3_ack
  | R_C3_silent
  | R_C3_nack
  | R_T1
  | R_T2
  | R_T3
  | R_tau
  | R_reply_send
  | R_repl_recv
  | R_deliver
  | H_C1
  | H_C1_silent
  | H_C2
  | H_T1
  | H_T1_repl
  | H_T2
  | H_T3
  | H_T4
  | H_T5
  | H_T6
  | H_tau
  | H_reply_send
  | H_admit
  | H_admit_progress
  | H_nack_full

type label = { rule : rule_id; actor : int; subject : string }

exception Protocol_error of string

let proto_error fmt = Fmt.kstr (fun s -> raise (Protocol_error s)) fmt

let all_rules =
  [
    R_C1; R_C2; R_C3_ack; R_C3_silent; R_C3_nack; R_T1; R_T2; R_T3; R_tau;
    R_reply_send; R_repl_recv; R_deliver; H_C1; H_C1_silent; H_C2; H_T1;
    H_T1_repl; H_T2; H_T3; H_T4; H_T5; H_T6; H_tau; H_reply_send; H_admit;
    H_admit_progress; H_nack_full;
  ]

let rule_name = function
  | R_C1 -> "R-C1"
  | R_C2 -> "R-C2"
  | R_C3_ack -> "R-C3-ack"
  | R_C3_silent -> "R-C3-silent"
  | R_C3_nack -> "R-C3-nack"
  | R_T1 -> "R-T1"
  | R_T2 -> "R-T2"
  | R_T3 -> "R-T3"
  | R_tau -> "R-tau"
  | R_reply_send -> "R-reply-send"
  | R_repl_recv -> "R-repl-recv"
  | R_deliver -> "R-deliver"
  | H_C1 -> "H-C1"
  | H_C1_silent -> "H-C1-silent"
  | H_C2 -> "H-C2"
  | H_T1 -> "H-T1"
  | H_T1_repl -> "H-T1-repl"
  | H_T2 -> "H-T2"
  | H_T3 -> "H-T3"
  | H_T4 -> "H-T4"
  | H_T5 -> "H-T5"
  | H_T6 -> "H-T6"
  | H_tau -> "H-tau"
  | H_reply_send -> "H-reply-send"
  | H_admit -> "H-admit"
  | H_admit_progress -> "H-admit-progress"
  | H_nack_full -> "H-nack-full"

let initial_home (prog : Prog.t) =
  {
    h_ctl = prog.home.p_init;
    h_env = Array.copy prog.home.p_init_env;
    h_mode = Hcomm;
    h_rot = 0;
    h_buf = [];
  }

let initial_remote (prog : Prog.t) =
  {
    r_ctl = prog.remote.p_init;
    r_env = Array.copy prog.remote.p_init_env;
    r_mode = Rcomm;
    r_buf = None;
  }

let initial (prog : Prog.t) (cfg : config) =
  if cfg.k < 2 then
    invalid_arg
      "Async.initial: the home buffer needs k >= 2 (one progress slot plus \
       the ack reservation, paper Table 2)";
  {
    h = initial_home prog;
    r = Array.init prog.n (fun _ -> initial_remote prog);
    to_h = Array.make prog.n [];
    to_r = Array.make prog.n [];
  }

(* ---- matching a buffered request against guards ------------------------ *)

(* All ways a request [(i, m)] can complete a rendezvous in the home control
   state [ctl] under environment [env]. *)
let home_request_instances (prog : Prog.t) ~ctl ~env i (m : Wire.msg) =
  let cst = prog.home.p_states.(ctl) in
  let acc = ref [] in
  Array.iteri
    (fun gi (g : Prog.cguard) ->
      match g.cg_action with
      | Prog.C_recv_any (binder, name, slots)
        when name = m.m_name && List.length slots = List.length m.m_payload ->
        let extra = (binder, Value.Vrid i) :: List.combine slots m.m_payload in
        Prog.guard_instances ~self:None env g ~extra
        |> List.iter (fun scratch -> acc := (gi, scratch) :: !acc)
      | Prog.C_recv_from (e, name, slots)
        when name = m.m_name && List.length slots = List.length m.m_payload ->
        Prog.guard_instances ~self:None env g
          ~extra:(List.combine slots m.m_payload)
        |> List.iter (fun scratch ->
               match Prog.eval ~env:scratch ~self:None e with
               | Value.Vrid r when r = i -> acc := (gi, scratch) :: !acc
               | _ -> ())
      | _ -> ())
    cst.cs_guards;
  List.rev !acc

let home_request_satisfies prog ~ctl ~env i m =
  home_request_instances prog ~ctl ~env i m <> []

(* All ways a buffered home request can complete a rendezvous in remote
   [i]'s current state. *)
let remote_request_instances (prog : Prog.t) ~ctl ~env i (m : Wire.msg) =
  let cst = prog.remote.p_states.(ctl) in
  let acc = ref [] in
  Array.iteri
    (fun gi (g : Prog.cguard) ->
      match g.cg_action with
      | Prog.C_recv_home (name, slots)
        when name = m.m_name && List.length slots = List.length m.m_payload ->
        Prog.guard_instances ~self:(Some i) env g
          ~extra:(List.combine slots m.m_payload)
        |> List.iter (fun scratch -> acc := (gi, scratch) :: !acc)
      | _ -> ())
    cst.cs_guards;
  List.rev !acc

(* ---- node-local home transitions ---------------------------------------- *)

(* Fire-and-forget messages (hand-optimized protocols) ride free: they are
   always admitted and never counted against the k-slot buffer, and they
   cannot be evicted (their sender will not retransmit). *)
let is_ff (prog : Prog.t) (m : Wire.msg) = List.mem m.m_name prog.ff_msgs

let regular_occupancy prog buf =
  List.length (List.filter (fun (_, m) -> not (is_ff prog m)) buf)

let rotate_next (cst : Prog.cstate) rot =
  match cst.cs_sends with [] -> 0 | sends -> (rot + 1) mod List.length sends

(* Transitions the home can take on its own: taus, C1 (consume a buffered
   request) and C2 (send a request).  Each result carries the messages the
   home emits, as [(destination remote, wire)] pairs. *)
let home_local (prog : Prog.t) (cfg : config) (h : home) :
    (label * home * (int * Wire.t) list) list =
  match h.h_mode with
  | Htrans _ -> []
  | Hcomm ->
    let cst = prog.home.p_states.(h.h_ctl) in
    let acc = ref [] in
    let push l h' outs = acc := (l, h', outs) :: !acc in
    (* taus (internal states) *)
    Array.iter
      (fun (g : Prog.cguard) ->
        match g.cg_action with
        | Prog.C_tau l ->
          Prog.guard_instances ~self:None h.h_env g ~extra:[]
          |> List.iter (fun scratch ->
                 let env' = Prog.complete ~self:None scratch g in
                 push
                   { rule = H_tau; actor = -1; subject = l }
                   { h with h_ctl = g.cg_target; h_env = env'; h_rot = 0 }
                   [])
        | _ -> ())
      cst.cs_guards;
    (* C1: complete a rendezvous with a buffered request *)
    let c1 =
      List.concat
        (List.mapi
           (fun idx (i, m) ->
             home_request_instances prog ~ctl:h.h_ctl ~env:h.h_env i m
             |> List.map (fun inst -> (idx, i, m, inst)))
           h.h_buf)
    in
    List.iter
      (fun (idx, i, (m : Wire.msg), (gi, scratch)) ->
        let g = cst.cs_guards.(gi) in
        let env' = Prog.complete ~self:None scratch g in
        let buf' = List.filteri (fun j _ -> j <> idx) h.h_buf in
        let h' =
          { h with h_ctl = g.cg_target; h_env = env'; h_rot = 0; h_buf = buf' }
        in
        let silent = g.cg_ann = Prog.Rr_silent_consume in
        push
          {
            rule = (if silent then H_C1_silent else H_C1);
            actor = i;
            subject = m.m_name;
          }
          h'
          (if silent then [] else [ (i, Wire.Ack) ]))
      c1;
    (* C2: if no buffered request satisfies any guard, try the output
       guards in rotation order; the first one with a valid instance is
       taken (Table 2 rows C2 and T2). *)
    if c1 = [] then begin
      let sends = Array.of_list cst.cs_sends in
      let nsends = Array.length sends in
      let fired = ref false in
      let off = ref 0 in
      while (not !fired) && !off < nsends do
        let gi = sends.((h.h_rot + !off) mod nsends) in
        let g = cst.cs_guards.(gi) in
        (match g.cg_action with
        | Prog.C_send_remote (dst, mname, args) ->
          let is_reply = g.cg_ann = Prog.Rr_reply_send in
          let instances =
            Prog.guard_instances ~self:None h.h_env g ~extra:[]
            |> List.filter_map (fun scratch ->
                   match Prog.eval ~env:scratch ~self:None dst with
                   | Value.Vrid j when j >= 0 && j < prog.n ->
                     (* condition (c): pointless to solicit a remote whose
                        own request is pending (it is committed active) *)
                     if
                       (not is_reply)
                       && List.exists (fun (i, _) -> i = j) h.h_buf
                     then None
                     else Some (scratch, j)
                   | Value.Vrid _ -> None
                   | v ->
                     proto_error "home send target is not a remote id: %a"
                       Value.pp v)
          in
          if instances <> [] then begin
            fired := true;
            List.iter
              (fun (scratch, j) ->
                let payload =
                  List.map (Prog.eval ~env:scratch ~self:None) args
                in
                let req = Wire.Req { m_name = mname; m_payload = payload } in
                if is_reply then begin
                  (* fire-and-forget: the peer is guaranteed waiting *)
                  let env' = Prog.complete ~self:None scratch g in
                  push
                    { rule = H_reply_send; actor = j; subject = mname }
                    { h with h_ctl = g.cg_target; h_env = env'; h_rot = 0 }
                    [ (j, req) ]
                end
                else begin
                  (* reserve the ack buffer, evicting (nacking) the oldest
                     evictable buffered request if the buffer is full *)
                  let evictions, h =
                    if regular_occupancy prog h.h_buf >= cfg.k then begin
                      let rec evict_oldest = function
                        | [] -> assert false
                        | ((v, m) as e) :: rest ->
                          if is_ff prog m then
                            let outs, rest' = evict_oldest rest in
                            (outs, e :: rest')
                          else ([ (v, Wire.Nack) ], rest)
                      in
                      let outs, buf' = evict_oldest h.h_buf in
                      (outs, { h with h_buf = buf' })
                    end
                    else ([], h)
                  in
                  let await =
                    match g.cg_ann with
                    | Prog.Rr_await_repl repl -> `Repl repl
                    | _ -> `Ack
                  in
                  push
                    { rule = H_C2; actor = j; subject = mname }
                    {
                      h with
                      h_mode = Htrans { guard = gi; peer = j; scratch; await };
                    }
                    (evictions @ [ (j, req) ])
                end)
              instances
          end
        | _ -> proto_error "cs_sends points at a non-send guard");
        incr off
      done
    end;
    List.rev !acc

(* Reaction of the home to a message from remote [i].  Always consumes the
   message (the home never blocks reception: it buffers or nacks). *)
let home_recv (prog : Prog.t) (cfg : config) (h : home) i (w : Wire.t) :
    (label * home * (int * Wire.t) list) list =
  let cst = prog.home.p_states.(h.h_ctl) in
  let free = cfg.k - regular_occupancy prog h.h_buf in
  let back_to_comm () =
    { h with h_mode = Hcomm; h_rot = rotate_next cst h.h_rot }
  in
  match (w, h.h_mode) with
  | Wire.Ack, Htrans { guard; peer; scratch; await = `Ack } when peer = i ->
    let g = cst.cs_guards.(guard) in
    let env' = Prog.complete ~self:None scratch g in
    [
      ( { rule = H_T1; actor = i; subject = "" },
        { h with h_ctl = g.cg_target; h_env = env'; h_mode = Hcomm; h_rot = 0 },
        [] );
    ]
  | Wire.Ack, _ -> proto_error "home received an unexpected ack from r%d" i
  | Wire.Nack, Htrans { peer; _ } when peer = i ->
    [ ({ rule = H_T2; actor = i; subject = "" }, back_to_comm (), []) ]
  | Wire.Nack, _ -> proto_error "home received an unexpected nack from r%d" i
  | Wire.Req m, Htrans { guard; peer; scratch; await } when peer = i -> (
    match await with
    | `Repl repl when m.m_name = repl ->
      (* the reply completes both the request rendezvous and the reply
         rendezvous (§3.3) *)
      let g = cst.cs_guards.(guard) in
      let env1 = Prog.complete ~self:None scratch g in
      let ctl1 = g.cg_target in
      let insts = home_request_instances prog ~ctl:ctl1 ~env:env1 i m in
      if insts = [] then
        proto_error "home cannot consume reply %s from r%d" m.m_name i;
      List.map
        (fun (gi2, scratch2) ->
          let g2 = prog.home.p_states.(ctl1).cs_guards.(gi2) in
          let env2 = Prog.complete ~self:None scratch2 g2 in
          ( { rule = H_T1_repl; actor = i; subject = m.m_name },
            {
              h with
              h_ctl = g2.cg_target;
              h_env = env2;
              h_mode = Hcomm;
              h_rot = 0;
            },
            [] ))
        insts
    | _ ->
      (* T3: implicit nack plus a request; the reserved ack-buffer slot
         holds it *)
      if free < 1 then
        proto_error "ack-buffer reservation violated (free = %d)" free;
      let h' = { (back_to_comm ()) with h_buf = h.h_buf @ [ (i, m) ] } in
      [ ({ rule = H_T3; actor = i; subject = m.m_name }, h', []) ])
  | Wire.Req m, Htrans _ ->
    (* a foreign request while transient: rows T4/T5/T6 *)
    if is_ff prog m then
      [
        ( { rule = H_T4; actor = i; subject = m.m_name },
          { h with h_buf = h.h_buf @ [ (i, m) ] },
          [] );
      ]
    else if free > 2 then
      [
        ( { rule = H_T4; actor = i; subject = m.m_name },
          { h with h_buf = h.h_buf @ [ (i, m) ] },
          [] );
      ]
    else if
      free = 2
      && (not cst.cs_internal)
      && home_request_satisfies prog ~ctl:h.h_ctl ~env:h.h_env i m
    then
      [
        ( { rule = H_T5; actor = i; subject = m.m_name },
          { h with h_buf = h.h_buf @ [ (i, m) ] },
          [] );
      ]
    else
      [ ({ rule = H_T6; actor = i; subject = m.m_name }, h, [ (i, Wire.Nack) ]) ]
  | Wire.Req m, Hcomm ->
    (* admission outside a transient: the last free slot is the progress
       buffer and only admits a request that can complete a rendezvous in
       the current communication state *)
    if is_ff prog m then
      [
        ( { rule = H_admit; actor = i; subject = m.m_name },
          { h with h_buf = h.h_buf @ [ (i, m) ] },
          [] );
      ]
    else if free > 1 then
      [
        ( { rule = H_admit; actor = i; subject = m.m_name },
          { h with h_buf = h.h_buf @ [ (i, m) ] },
          [] );
      ]
    else if
      free = 1
      && (not cst.cs_internal)
      && home_request_satisfies prog ~ctl:h.h_ctl ~env:h.h_env i m
    then
      [
        ( { rule = H_admit_progress; actor = i; subject = m.m_name },
          { h with h_buf = h.h_buf @ [ (i, m) ] },
          [] );
      ]
    else
      [
        ( { rule = H_nack_full; actor = i; subject = m.m_name },
          h,
          [ (i, Wire.Nack) ] );
      ]

(* ---- node-local remote transitions --------------------------------------- *)

(* Transitions remote [i] can take on its own: taus, the active-state send
   (rows C1/C2 of Table 1), and passive consumption of a buffered home
   request (row C3).  Outputs travel to the home. *)
let remote_local (prog : Prog.t) (r : remote) i :
    (label * remote * Wire.t list) list =
  match r.r_mode with
  | Rtrans _ | Rwait _ -> []
  | Rcomm ->
    let cst = prog.remote.p_states.(r.r_ctl) in
    let acc = ref [] in
    let push l r' outs = acc := (l, r', outs) :: !acc in
    (* taus *)
    Array.iter
      (fun (g : Prog.cguard) ->
        match g.cg_action with
        | Prog.C_tau l ->
          Prog.guard_instances ~self:(Some i) r.r_env g ~extra:[]
          |> List.iter (fun scratch ->
                 let env' = Prog.complete ~self:(Some i) scratch g in
                 push
                   { rule = R_tau; actor = i; subject = l }
                   { r with r_ctl = g.cg_target; r_env = env' }
                   [])
        | _ -> ())
      cst.cs_guards;
    (* active state: send the request (rows C1/C2 of Table 1) *)
    (match cst.cs_active with
    | Some gi -> (
      let g = cst.cs_guards.(gi) in
      match g.cg_action with
      | Prog.C_send_home (mname, args) ->
        Prog.guard_instances ~self:(Some i) r.r_env g ~extra:[]
        |> List.iter (fun scratch ->
               let payload =
                 List.map (Prog.eval ~env:scratch ~self:(Some i)) args
               in
               let req = Wire.Req { m_name = mname; m_payload = payload } in
               (* C2: a pending home request is deleted; the home learns of
                  it through the implicit-nack rule R3 *)
               let had_buffered = r.r_buf <> None in
               let r = { r with r_buf = None } in
               match g.cg_ann with
               | Prog.Rr_reply_send ->
                 let env' = Prog.complete ~self:(Some i) scratch g in
                 push
                   { rule = R_reply_send; actor = i; subject = mname }
                   { r with r_ctl = g.cg_target; r_env = env' }
                   [ req ]
               | Prog.Rr_request repl ->
                 push
                   {
                     rule = (if had_buffered then R_C2 else R_C1);
                     actor = i;
                     subject = mname;
                   }
                   { r with r_mode = Rwait { guard = gi; scratch; repl } }
                   [ req ]
               | _ ->
                 push
                   {
                     rule = (if had_buffered then R_C2 else R_C1);
                     actor = i;
                     subject = mname;
                   }
                   { r with r_mode = Rtrans { guard = gi; scratch } }
                   [ req ])
      | _ -> proto_error "cs_active points at a non-send guard")
    | None -> ());
    (* passive state with a buffered home request: row C3 *)
    (match r.r_buf with
    | Some m when cst.cs_active = None && not cst.cs_internal ->
      let insts = remote_request_instances prog ~ctl:r.r_ctl ~env:r.r_env i m in
      if insts = [] then
        push
          { rule = R_C3_nack; actor = i; subject = m.m_name }
          { r with r_buf = None }
          [ Wire.Nack ]
      else
        List.iter
          (fun (gi, scratch) ->
            let g = cst.cs_guards.(gi) in
            let env' = Prog.complete ~self:(Some i) scratch g in
            let r' =
              { r with r_ctl = g.cg_target; r_env = env'; r_buf = None }
            in
            let silent = g.cg_ann = Prog.Rr_silent_consume in
            push
              {
                rule = (if silent then R_C3_silent else R_C3_ack);
                actor = i;
                subject = m.m_name;
              }
              r'
              (if silent then [] else [ Wire.Ack ]))
          insts
    | _ -> ());
    List.rev !acc

(* Reaction of remote [i] to a message from the home.  Returns [] when the
   message cannot be consumed yet (a request while the one-slot buffer is
   full): the caller must leave it queued. *)
let remote_recv (prog : Prog.t) (r : remote) i (w : Wire.t) :
    (label * remote * Wire.t list) list =
  match (w, r.r_mode) with
  | Wire.Ack, Rtrans { guard; scratch } ->
    let g = prog.remote.p_states.(r.r_ctl).cs_guards.(guard) in
    let env' = Prog.complete ~self:(Some i) scratch g in
    [
      ( { rule = R_T1; actor = i; subject = "" },
        { r with r_ctl = g.cg_target; r_env = env'; r_mode = Rcomm },
        [] );
    ]
  | Wire.Ack, (Rcomm | Rwait _) ->
    proto_error "remote %d received an unexpected ack" i
  | Wire.Nack, (Rtrans _ | Rwait _) ->
    [ ({ rule = R_T2; actor = i; subject = "" }, { r with r_mode = Rcomm }, []) ]
  | Wire.Nack, Rcomm -> proto_error "remote %d received an unexpected nack" i
  | Wire.Req m, Rtrans _ ->
    (* row T3: the remote knows its own request implicitly nacks this one *)
    [ ({ rule = R_T3; actor = i; subject = m.m_name }, r, []) ]
  | Wire.Req m, Rwait { guard; scratch; repl } ->
    if m.m_name = repl then begin
      (* the reply: completes the request rendezvous and the reply
         rendezvous in one step *)
      let g = prog.remote.p_states.(r.r_ctl).cs_guards.(guard) in
      let env1 = Prog.complete ~self:(Some i) scratch g in
      let ctl1 = g.cg_target in
      let insts = remote_request_instances prog ~ctl:ctl1 ~env:env1 i m in
      match insts with
      | [] -> proto_error "remote %d cannot consume reply %s" i m.m_name
      | insts ->
        List.map
          (fun (gi2, scratch2) ->
            let g2 = prog.remote.p_states.(ctl1).cs_guards.(gi2) in
            let env2 = Prog.complete ~self:(Some i) scratch2 g2 in
            ( { rule = R_repl_recv; actor = i; subject = m.m_name },
              { r with r_ctl = g2.cg_target; r_env = env2; r_mode = Rcomm },
              [] ))
          insts
    end
    else [ ({ rule = R_T3; actor = i; subject = m.m_name }, r, []) ]
  | Wire.Req m, Rcomm -> (
    match r.r_buf with
    | None ->
      [
        ( { rule = R_deliver; actor = i; subject = m.m_name },
          { r with r_buf = Some m },
          [] );
      ]
    | Some _ -> [])

(* ---- global semantics ----------------------------------------------------- *)

let set_arr a i x =
  let a' = Array.copy a in
  a'.(i) <- x;
  a'

let set_home st h = { st with h }
let set_remote st i r = { st with r = set_arr st.r i r }

let send_all_to_r st outs =
  List.fold_left
    (fun st (j, w) ->
      { st with to_r = set_arr st.to_r j (st.to_r.(j) @ [ w ]) })
    st outs

let send_all_to_h st i outs =
  List.fold_left
    (fun st w -> { st with to_h = set_arr st.to_h i (st.to_h.(i) @ [ w ]) })
    st outs

let pop_to_h st i =
  match st.to_h.(i) with
  | [] -> invalid_arg "pop_to_h"
  | _ :: rest -> { st with to_h = set_arr st.to_h i rest }

let pop_to_r st i =
  match st.to_r.(i) with
  | [] -> invalid_arg "pop_to_r"
  | _ :: rest -> { st with to_r = set_arr st.to_r i rest }

type meter = { m_sent : Wire.t -> unit; m_buf : int -> unit }

let successors ?meter (prog : Prog.t) (cfg : config) st =
  let count_h, count_r =
    match meter with
    | None -> ((fun _ -> ()), fun _ -> ())
    | Some m ->
      m.m_buf (List.length st.h.h_buf);
      ( (fun outs -> List.iter (fun (_, w) -> m.m_sent w) outs),
        fun outs -> List.iter m.m_sent outs )
  in
  let acc = ref [] in
  let add l = acc := l :: !acc in
  List.iter
    (fun (l, h', outs) ->
      count_h outs;
      add (l, send_all_to_r (set_home st h') outs))
    (home_local prog cfg st.h);
  for i = 0 to prog.n - 1 do
    List.iter
      (fun (l, r', outs) ->
        count_r outs;
        add (l, send_all_to_h (set_remote st i r') i outs))
      (remote_local prog st.r.(i) i)
  done;
  for i = 0 to prog.n - 1 do
    (match st.to_h.(i) with
    | w :: _ ->
      List.iter
        (fun (l, h', outs) ->
          count_h outs;
          add (l, send_all_to_r (set_home (pop_to_h st i) h') outs))
        (home_recv prog cfg st.h i w)
    | [] -> ());
    match st.to_r.(i) with
    | w :: _ ->
      List.iter
        (fun (l, r', outs) ->
          count_r outs;
          add (l, send_all_to_h (set_remote (pop_to_r st i) i r') i outs))
        (remote_recv prog st.r.(i) i w)
    | [] -> ()
  done;
  List.rev !acc

let messages_in_flight st =
  Array.fold_left (fun n q -> n + List.length q) 0 st.to_h
  + Array.fold_left (fun n q -> n + List.length q) 0 st.to_r

(* Per-domain scratch buffer: [encode] runs once per discovered state on
   the model checker's hot path, and the parallel engine calls it from
   several domains at once. *)
let scratch = Domain.DLS.new_key (fun () -> Buffer.create 128)

let encode (st : state) =
  let buf = Domain.DLS.get scratch in
  Buffer.clear buf;
  let int = Value.encode_int buf in
  let env e = Array.iter (Value.encode buf) e in
  let wire_msg (m : Wire.msg) = Wire.encode buf (Wire.Req m) in
  int st.h.h_ctl;
  int st.h.h_rot;
  env st.h.h_env;
  (match st.h.h_mode with
  | Hcomm -> int 0
  | Htrans { guard; peer; scratch; await } ->
    (match await with
    | `Ack -> int 1
    | `Repl repl ->
      int 2;
      int (String.length repl);
      Buffer.add_string buf repl);
    int guard;
    int peer;
    env scratch);
  int (List.length st.h.h_buf);
  List.iter
    (fun (i, m) ->
      int i;
      wire_msg m)
    st.h.h_buf;
  Array.iter
    (fun r ->
      int r.r_ctl;
      env r.r_env;
      (match r.r_mode with
      | Rcomm -> int 0
      | Rtrans { guard; scratch } ->
        int 1;
        int guard;
        env scratch
      | Rwait { guard; scratch; repl } ->
        int 2;
        int guard;
        int (String.length repl);
        Buffer.add_string buf repl;
        env scratch);
      match r.r_buf with
      | None -> int 0
      | Some m ->
        int 1;
        wire_msg m)
    st.r;
  let channel q =
    int (List.length q);
    List.iter (Wire.encode buf) q
  in
  Array.iter channel st.to_h;
  Array.iter channel st.to_r;
  Buffer.contents buf

(* Byte-identical to [encode (Symmetry.permute_async p st)]: remote slot
   [j] of the permuted state is [st]'s slot [inv.(j)] (likewise for both
   channel arrays), buffered messages keep their queue order but their
   sender id and rid-valued payloads are renamed through [p].  Must mirror
   the [encode] layout above field for field. *)
let encode_perm ~p ~inv (st : state) =
  let buf = Domain.DLS.get scratch in
  Buffer.clear buf;
  let int = Value.encode_int buf in
  let env e = Array.iter (Value.encode_perm buf p) e in
  let wire_msg (m : Wire.msg) = Wire.encode_perm buf p (Wire.Req m) in
  let n = Array.length st.r in
  int st.h.h_ctl;
  int st.h.h_rot;
  env st.h.h_env;
  (match st.h.h_mode with
  | Hcomm -> int 0
  | Htrans { guard; peer; scratch = sc; await } ->
    (match await with
    | `Ack -> int 1
    | `Repl repl ->
      int 2;
      int (String.length repl);
      Buffer.add_string buf repl);
    int guard;
    int p.(peer);
    env sc);
  int (List.length st.h.h_buf);
  List.iter
    (fun (i, m) ->
      int p.(i);
      wire_msg m)
    st.h.h_buf;
  for j = 0 to n - 1 do
    let r = st.r.(inv.(j)) in
    int r.r_ctl;
    env r.r_env;
    (match r.r_mode with
    | Rcomm -> int 0
    | Rtrans { guard; scratch = sc } ->
      int 1;
      int guard;
      env sc
    | Rwait { guard; scratch = sc; repl } ->
      int 2;
      int guard;
      int (String.length repl);
      Buffer.add_string buf repl;
      env sc);
    match r.r_buf with
    | None -> int 0
    | Some m ->
      int 1;
      wire_msg m
  done;
  let channel q =
    int (List.length q);
    List.iter (Wire.encode_perm buf p) q
  in
  for j = 0 to n - 1 do
    channel st.to_h.(inv.(j))
  done;
  for j = 0 to n - 1 do
    channel st.to_r.(inv.(j))
  done;
  Buffer.contents buf

(* Cut an [encode]d key into per-component substrings for the collapse
   store: offsets just past the home, past each remote, then past each
   [to_h] and [to_r] channel — [1 + 3n] of them, the last equal to the key
   length.  Must mirror the [encode] layout field for field; works on
   canonical keys too, since [encode_perm] emits the same layout. *)
let split_key (prog : Prog.t) key =
  let n = prog.n in
  let bounds = Array.make (1 + (3 * n)) 0 in
  let pos = ref 0 in
  let int () =
    let v, pos' = Value.read_int key !pos in
    pos := pos';
    v
  in
  let skip_int () = pos := Value.skip_int key !pos in
  let env (proc : Prog.proc) =
    for _ = 1 to Array.length proc.p_init_env do
      pos := Value.skip key !pos
    done
  in
  let repl () = pos := !pos + int () in
  let wire_msg () = pos := Wire.skip key !pos in
  (* home *)
  skip_int ();
  (* h_ctl *)
  skip_int ();
  (* h_rot *)
  env prog.home;
  (match int () with
  | 0 -> ()
  | mode ->
    if mode = 2 then repl ();
    skip_int ();
    (* guard *)
    skip_int ();
    (* peer *)
    env prog.home);
  for _ = 1 to int () do
    skip_int ();
    (* sender *)
    wire_msg ()
  done;
  bounds.(0) <- !pos;
  (* remotes *)
  for i = 1 to n do
    skip_int ();
    (* r_ctl *)
    env prog.remote;
    (match int () with
    | 0 -> ()
    | mode ->
      skip_int ();
      (* guard *)
      if mode = 2 then repl ();
      env prog.remote);
    if int () = 1 then wire_msg ();
    bounds.(i) <- !pos
  done;
  (* channels: to_h then to_r *)
  for c = 1 to 2 * n do
    for _ = 1 to int () do
      wire_msg ()
    done;
    bounds.(n + c) <- !pos
  done;
  bounds

let pp_label ppf l =
  if l.subject = "" then
    Fmt.pf ppf "%s[%s]" (rule_name l.rule)
      (if l.actor < 0 then "home" else "r" ^ string_of_int l.actor)
  else
    Fmt.pf ppf "%s[%s,%s]" (rule_name l.rule)
      (if l.actor < 0 then "home" else "r" ^ string_of_int l.actor)
      l.subject

let pp_state (prog : Prog.t) ppf st =
  let pp_env proc ppf e =
    Array.iteri
      (fun i v ->
        if proc.Prog.p_domains.(i) <> Value.Dunit then
          Fmt.pf ppf " %s=%a" proc.Prog.p_var_names.(i) Value.pp v)
      e
  in
  let pp_buf ppf buf =
    List.iter (fun (i, m) -> Fmt.pf ppf " [r%d:%s]" i m.Wire.m_name) buf
  in
  Fmt.pf ppf "@[<v>home: %s%a rot=%d%a%s@,"
    prog.home.p_states.(st.h.h_ctl).cs_name (pp_env prog.home) st.h.h_env
    st.h.h_rot pp_buf st.h.h_buf
    (match st.h.h_mode with
    | Hcomm -> ""
    | Htrans { peer; await; _ } ->
      Fmt.str " (transient -> r%d%s)" peer
        (match await with `Ack -> "" | `Repl m -> ", awaiting " ^ m));
  Array.iteri
    (fun i r ->
      Fmt.pf ppf "r%d: %s%a%s%s  ->h:%a  h->:%a@," i
        prog.remote.p_states.(r.r_ctl).cs_name (pp_env prog.remote) r.r_env
        (match r.r_mode with
        | Rcomm -> ""
        | Rtrans _ -> " (transient)"
        | Rwait { repl; _ } -> Fmt.str " (awaiting %s)" repl)
        (match r.r_buf with
        | None -> ""
        | Some m -> Fmt.str " buf=%s" m.Wire.m_name)
        Fmt.(list ~sep:sp Wire.pp)
        st.to_h.(i)
        Fmt.(list ~sep:sp Wire.pp)
        st.to_r.(i))
    st.r;
  Fmt.pf ppf "@]"
