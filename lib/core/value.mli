(** Runtime values and finite domains for protocol variables.

    The refinement framework model-checks protocols by explicit state
    enumeration, so every variable ranges over a small finite domain that is
    declared up front.  Remote-node identities ([Vrid]) and sets of remote
    identities ([Vset], represented as bitmasks) are first-class because
    directory protocols are parameterized by the remote population. *)

type rid = int
(** A remote node identity, [0 .. n-1] for a system with [n] remotes. *)

type t =
  | Vunit
  | Vbool of bool
  | Vint of int
  | Vrid of rid
  | Vset of int  (** bitmask over remote ids; bit [i] = remote [i] present *)

type domain =
  | Dunit
  | Dbool
  | Dint of int * int  (** inclusive range [lo, hi] *)
  | Drid
  | Dset

val equal : t -> t -> bool
val compare : t -> t -> int

val default : domain -> t
(** Initial value of a variable of the given domain: [Vunit], [false],
    the low bound, remote [0], or the empty set. *)

val member : n:int -> domain -> t -> bool
(** Is the value a member of the domain, in a system with [n] remotes? *)

val enumerate : n:int -> domain -> t list
(** All members of the domain in a system with [n] remotes.  [Dset] has
    [2^n] members; callers should restrict themselves to small [n]. *)

(** {2 Set operations (bitmask sets of remote ids)} *)

val set_empty : t
val set_mem : rid -> t -> bool
val set_add : rid -> t -> t
val set_remove : rid -> t -> t
val set_is_empty : t -> bool
val set_members : t -> rid list
val set_of_list : rid list -> t
val set_cardinal : t -> int

(** {2 Printing and encoding} *)

val pp : t Fmt.t
val pp_domain : domain Fmt.t

val encode : Buffer.t -> t -> unit
(** Append a compact, injective byte encoding; used to key hash tables of
    visited states during model checking. *)

val encode_int : Buffer.t -> int -> unit
(** The same variable-length integer encoding used by {!encode}; injective
    over non-negative ints, usable for control states and counters. *)

val encode_perm : Buffer.t -> int array -> t -> unit
(** [encode_perm buf p v] writes exactly the bytes [encode] would write for
    [v] with remote ids renamed by the permutation [p]: [Vrid r] encodes as
    [Vrid p.(r)], [Vset m] as the mask with bit [p.(i)] set for every bit
    [i] of [m].  Lets canonicalization encode a permuted state without
    materializing it. *)

(** {2 Scanning encoded keys}

    The encodings are self-delimiting: an encoded state key can be
    re-parsed from its bytes alone.  The collapse-compression visited
    store uses these scanners to cut a key into per-component substrings
    (see {!Ccr_modelcheck.Vstore}). *)

val read_int : string -> int -> int * int
(** [read_int s pos] decodes the {!encode_int} varint at [pos]; returns
    the value and the position just past it. *)

val skip_int : string -> int -> int
(** Position just past the {!encode_int} varint at [pos]. *)

val skip : string -> int -> int
(** Position just past the {!encode}d value at [pos].
    @raise Invalid_argument if [pos] does not hold a value tag. *)
