type rid = int

type t =
  | Vunit
  | Vbool of bool
  | Vint of int
  | Vrid of rid
  | Vset of int

type domain =
  | Dunit
  | Dbool
  | Dint of int * int
  | Drid
  | Dset

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let default = function
  | Dunit -> Vunit
  | Dbool -> Vbool false
  | Dint (lo, _) -> Vint lo
  | Drid -> Vrid 0
  | Dset -> Vset 0

let member ~n dom v =
  match (dom, v) with
  | Dunit, Vunit -> true
  | Dbool, Vbool _ -> true
  | Dint (lo, hi), Vint i -> lo <= i && i <= hi
  | Drid, Vrid r -> 0 <= r && r < n
  | Dset, Vset m -> m >= 0 && m < 1 lsl n
  | (Dunit | Dbool | Dint _ | Drid | Dset), _ -> false

let enumerate ~n = function
  | Dunit -> [ Vunit ]
  | Dbool -> [ Vbool false; Vbool true ]
  | Dint (lo, hi) -> List.init (hi - lo + 1) (fun i -> Vint (lo + i))
  | Drid -> List.init n (fun i -> Vrid i)
  | Dset -> List.init (1 lsl n) (fun m -> Vset m)

let set_empty = Vset 0

let as_mask = function
  | Vset m -> m
  | Vunit | Vbool _ | Vint _ | Vrid _ -> invalid_arg "Value: expected a set"

let set_mem r s = as_mask s land (1 lsl r) <> 0
let set_add r s = Vset (as_mask s lor (1 lsl r))
let set_remove r s = Vset (as_mask s land lnot (1 lsl r))
let set_is_empty s = as_mask s = 0

let set_members s =
  let m = as_mask s in
  let rec loop i acc =
    if 1 lsl i > m then List.rev acc
    else loop (i + 1) (if m land (1 lsl i) <> 0 then i :: acc else acc)
  in
  loop 0 []

let set_of_list rs = Vset (List.fold_left (fun m r -> m lor (1 lsl r)) 0 rs)
let set_cardinal s = List.length (set_members s)

let pp ppf = function
  | Vunit -> Fmt.string ppf "()"
  | Vbool b -> Fmt.bool ppf b
  | Vint i -> Fmt.int ppf i
  | Vrid r -> Fmt.pf ppf "r%d" r
  | Vset s ->
    Fmt.pf ppf "{%s}"
      (String.concat "," (List.map string_of_int (set_members (Vset s))))

let pp_domain ppf = function
  | Dunit -> Fmt.string ppf "unit"
  | Dbool -> Fmt.string ppf "bool"
  | Dint (lo, hi) -> Fmt.pf ppf "int[%d..%d]" lo hi
  | Drid -> Fmt.string ppf "rid"
  | Dset -> Fmt.string ppf "rid set"

let encode_int buf i =
  let byte i = Buffer.add_char buf (Char.chr (i land 0xff)) in
  (* small non-negative ints in one byte; larger in five *)
  if i >= 0 && i < 0xf8 then byte i
  else begin
    byte 0xf8;
    byte (i land 0xff);
    byte ((i lsr 8) land 0xff);
    byte ((i lsr 16) land 0xff);
    byte ((i asr 24) land 0xff)
  end

(* Single source of the rid/set byte layout, shared with {!encode_perm}:
   a renamed value must encode exactly as the value it renames to. *)
let encode_rid buf r =
  Buffer.add_char buf '\004';
  encode_int buf r

let encode_set buf m =
  Buffer.add_char buf '\005';
  encode_int buf m

let encode buf v =
  let byte i = Buffer.add_char buf (Char.chr (i land 0xff)) in
  let int i = encode_int buf i in
  match v with
  | Vunit -> byte 0
  | Vbool false -> byte 1
  | Vbool true -> byte 2
  | Vint i ->
    byte 3;
    int (if i >= 0 then 2 * i else (-2 * i) + 1)
  | Vrid r -> encode_rid buf r
  | Vset m -> encode_set buf m

let encode_perm buf p v =
  match v with
  | Vrid r -> encode_rid buf p.(r)
  | Vset m ->
    let m' = ref 0 in
    let i = ref 0 in
    while m lsr !i <> 0 do
      if (m lsr !i) land 1 = 1 then m' := !m' lor (1 lsl p.(!i));
      incr i
    done;
    encode_set buf !m'
  | Vunit | Vbool _ | Vint _ -> encode buf v

(* ---- scanning encoded keys ----------------------------------------------

   The encodings above are self-delimiting, so an encoded state can be
   re-parsed from its bytes alone.  The collapse-compression visited store
   uses this to cut a key into per-component substrings without a second
   encoder: the scanners below advance a cursor over one encoded item. *)

let read_int s pos =
  let b = Char.code (String.unsafe_get s pos) in
  if b < 0xf8 then (b, pos + 1)
  else
    let byte i = Char.code (String.unsafe_get s (pos + i)) in
    let v = byte 1 lor (byte 2 lsl 8) lor (byte 3 lsl 16) lor (byte 4 lsl 24) in
    (* byte 4 carries the sign (encode_int wrote [i asr 24]) *)
    ((if byte 4 >= 0x80 then v - (1 lsl 32) else v), pos + 5)

let skip_int s pos =
  if Char.code (String.unsafe_get s pos) < 0xf8 then pos + 1 else pos + 5

let skip s pos =
  match Char.code (String.unsafe_get s pos) with
  | 0 | 1 | 2 -> pos + 1 (* unit, false, true *)
  | 3 | 4 | 5 -> skip_int s (pos + 1) (* int, rid, set: tag then varint *)
  | b -> invalid_arg (Printf.sprintf "Value.skip: bad tag byte %d" b)
