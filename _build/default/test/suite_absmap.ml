open Ccr_core
open Ccr_semantics
open Ccr_refine
open Test_util

let k2 = Async.{ k = 2 }

let assert_eq1 name prog k =
  let v = Absmap.check_eq1 prog Async.{ k } in
  if not v.ok then
    Alcotest.failf "%s: Eq. 1 violated at %a" name Async.pp_label
      (Option.get v.failure).label;
  checkb (name ^ " untruncated") true (not v.truncated);
  v

let tests =
  [
    case "abs of the initial state is the rendezvous initial state" (fun () ->
        List.iter
          (fun prog ->
            checks "init"
              (Rendezvous.encode (Rendezvous.initial prog))
              (Rendezvous.encode (Absmap.abs prog (Async.initial prog k2))))
          [
            compile ~n:2 (Ccr_protocols.Migratory.system ());
            compile ~n:3 Ccr_protocols.Invalidate.system;
            compile ~n:2 ping_system;
          ]);
    case "abs rolls back a transient sender" (fun () ->
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let st = Async.initial prog k2 in
        let st' = fire prog st (by_rule ~actor:0 Async.R_C1) in
        (* the request is in flight: under abs it never happened *)
        checks "stutter" (Rendezvous.encode (Absmap.abs prog st))
          (Rendezvous.encode (Absmap.abs prog st')));
    case "abs advances on silent consumption" (fun () ->
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let st = Async.initial prog k2 in
        let st = fire prog st (by_rule ~actor:0 Async.R_C1) in
        let st = fire prog st (by_rule ~actor:0 Async.H_admit) in
        let before = Absmap.abs prog st in
        let st = fire prog st (by_rule ~actor:0 Async.H_C1_silent) in
        let after = Absmap.abs prog st in
        checkb "abs changed" false
          (Rendezvous.encode before = Rendezvous.encode after);
        (* and the change is a legal rendezvous step *)
        checkb "legal step" true
          (List.exists
             (fun (_, s) ->
               Rendezvous.encode s = Rendezvous.encode after)
             (Rendezvous.successors prog before));
        (* the waiting remote is mapped to its wait state *)
        checki "r0 abs at Wg"
          (Prog.state_index prog.remote "Wg")
          after.Rendezvous.r.(0).ctl);
    case "abs prepays an ack in flight" (fun () ->
        let prog = compile ~reqrep:false ~n:2 (Ccr_protocols.Migratory.system ()) in
        let st = Async.initial prog k2 in
        let st = fire prog st (by_rule ~actor:0 Async.R_C1) in
        let st = fire prog st (by_rule ~actor:0 Async.H_admit) in
        let st = fire prog st (by_rule ~actor:0 Async.H_C1) in
        (* ack in flight towards r0: abs already moved r0 to Wg *)
        let a = Absmap.abs prog st in
        checki "r0 abs at Wg"
          (Prog.state_index prog.remote "Wg")
          a.Rendezvous.r.(0).ctl;
        (* consuming the ack is a stutter *)
        let st' = fire prog st (by_rule ~actor:0 Async.R_T1) in
        checks "stutter" (Rendezvous.encode a)
          (Rendezvous.encode (Absmap.abs prog st')));
    case "abs discards a nack" (fun () ->
        let prog = compile ~n:3 Ccr_protocols.Lock_server.system in
        let st = Async.initial prog k2 in
        let work i st = fire prog st (by_rule ~actor:i Async.R_tau) in
        let st = work 0 st in
        let st = fire prog st (by_rule ~actor:0 Async.R_C1) in
        let st = fire prog st (by_rule ~actor:0 Async.H_admit) in
        let st = fire prog st (by_rule ~actor:0 Async.H_C1_silent) in
        let st = fire prog st (by_rule ~actor:0 Async.H_reply_send) in
        let st = fire prog st (by_rule ~actor:0 Async.R_repl_recv) in
        (* fill the buffer so r2 gets nacked *)
        let st = work 1 st in
        let st = fire prog st (by_rule ~actor:1 Async.R_C1) in
        let st = fire prog st (by_rule ~actor:1 Async.H_admit) in
        let st = work 2 st in
        let st = fire prog st (by_rule ~actor:2 Async.R_C1) in
        let before = Absmap.abs prog st in
        let st = fire prog st (by_rule ~actor:2 Async.H_nack_full) in
        checks "nack emission is a stutter" (Rendezvous.encode before)
          (Rendezvous.encode (Absmap.abs prog st));
        let st' = fire prog st (by_rule ~actor:2 Async.R_T2) in
        checks "nack consumption is a stutter" (Rendezvous.encode before)
          (Rendezvous.encode (Absmap.abs prog st')));
    case "Eq. 1: migratory (optimized, generic, data, hand-free k)" (fun () ->
        let mig = Ccr_protocols.Migratory.system () in
        ignore (assert_eq1 "mig n=1" (compile ~n:1 mig) 2);
        ignore (assert_eq1 "mig n=2" (compile ~n:2 mig) 2);
        ignore (assert_eq1 "mig n=2 k=3" (compile ~n:2 mig) 3);
        ignore (assert_eq1 "generic n=2" (compile ~reqrep:false ~n:2 mig) 2);
        ignore
          (assert_eq1 "data n=2"
             (compile ~n:2 (Ccr_protocols.Migratory.system ~with_data:true ()))
             2));
    slow_case "Eq. 1: migratory n=3" (fun () ->
        ignore
          (assert_eq1 "mig n=3"
             (compile ~n:3 (Ccr_protocols.Migratory.system ()))
             2));
    slow_case "Eq. 1 sweep: every registry protocol, k in {2, 3}" (fun () ->
        List.iter
          (fun (e : Ccr_protocols.Registry.t) ->
            if e.system <> None then
              List.iter
                (fun k ->
                  ignore
                    (assert_eq1
                       (Fmt.str "%s n=2 k=%d" e.name k)
                       (e.instantiate ~reqrep:true ~n:2)
                       k))
                [ 2; 3 ])
          Ccr_protocols.Registry.all);
    slow_case "Eq. 1: invalidate and write-update at n=3" (fun () ->
        ignore
          (assert_eq1 "invalidate n=3"
             (compile ~n:3 Ccr_protocols.Invalidate.system)
             2);
        ignore
          (assert_eq1 "write-update n=3"
             (compile ~n:3 Ccr_protocols.Write_update.system)
             2));
    case "Eq. 1: invalidate and lock" (fun () ->
        ignore (assert_eq1 "inv n=2" (compile ~n:2 Ccr_protocols.Invalidate.system) 2);
        ignore
          (assert_eq1 "inv generic n=2"
             (compile ~reqrep:false ~n:2 Ccr_protocols.Invalidate.system)
             2);
        ignore (assert_eq1 "lock n=3" (compile ~n:3 Ccr_protocols.Lock_server.system) 2);
        ignore (assert_eq1 "ping n=2" (compile ~n:2 ping_system) 2);
        ignore (assert_eq1 "plain n=2" (compile ~n:2 plain_system) 2));
    case "Eq. 1 verdict accounting" (fun () ->
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let v = assert_eq1 "mig" prog 2 in
        checki "states match exploration" (explore_async prog).states v.states;
        checki "every transition classified" v.transitions
          (v.stutters + v.steps);
        checkb "some real steps" true (v.steps > 0);
        checkb "abs image is small" true (v.abs_states < v.states));
    case "abs branch coverage on crafted states" (fun () ->
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let st0 = Async.initial prog k2 in
        let i_send =
          let s = prog.Prog.remote.p_states.(Prog.state_index prog.remote "I") in
          Option.get s.Prog.cs_active
        in
        let scratch = Array.copy st0.Async.r.(0).r_env in
        let rwait =
          {
            (st0.Async.r.(0)) with
            Async.r_mode = Async.Rwait { guard = i_send; scratch; repl = "gr" };
          }
        in
        let with_r0 r to_r0 to_h0 =
          {
            st0 with
            Async.r = (let a = Array.copy st0.Async.r in a.(0) <- r; a);
            to_r = (let a = Array.make 2 [] in a.(0) <- to_r0; a);
            to_h = (let a = Array.make 2 [] in a.(0) <- to_h0; a);
          }
        in
        let ctl_of (a : Ccr_semantics.Rendezvous.state) =
          prog.Prog.remote.p_states.(a.Ccr_semantics.Rendezvous.r.(0).ctl)
            .cs_name
        in
        (* 1. request still in flight: rolled back to I *)
        let st =
          with_r0 rwait []
            [ Wire.Req { m_name = "req"; m_payload = [] } ]
        in
        checks "pending -> rolled back" "I" (ctl_of (Absmap.abs prog st));
        (* 2. nack in flight: rolled back *)
        let st = with_r0 rwait [ Wire.Nack ] [] in
        checks "nack -> rolled back" "I" (ctl_of (Absmap.abs prog st));
        (* 3. consumed silently, no reply yet: advanced to the wait state *)
        let st = with_r0 rwait [] [] in
        checks "consumed -> wait state" "Wg" (ctl_of (Absmap.abs prog st));
        (* 4. reply in flight: both rendezvous prepaid *)
        let st =
          with_r0 rwait [ Wire.Req { m_name = "gr"; m_payload = [] } ] []
        in
        checks "reply -> post-post" "V" (ctl_of (Absmap.abs prog st)));
    case "abs home branch coverage on crafted states" (fun () ->
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let st0 = Async.initial prog k2 in
        let i1 = Prog.state_index prog.home "I1" in
        let inv_guard =
          match prog.Prog.home.p_states.(i1).Prog.cs_sends with
          | [ g ] -> g
          | _ -> assert false
        in
        let env = Array.copy st0.Async.h.h_env in
        (* owner r0, requester r1 *)
        env.(Prog.var_index prog.home "o") <- Value.Vrid 0;
        env.(Prog.var_index prog.home "j") <- Value.Vrid 1;
        let h =
          {
            st0.Async.h with
            Async.h_ctl = i1;
            h_env = env;
            h_mode =
              Async.Htrans
                {
                  guard = inv_guard;
                  peer = 0;
                  scratch = Array.copy env;
                  await = `Repl "ID";
                };
          }
        in
        let hctl (a : Ccr_semantics.Rendezvous.state) =
          prog.Prog.home.p_states.(a.Ccr_semantics.Rendezvous.h.ctl).cs_name
        in
        let with_channels to_r0 to_h0 =
          {
            st0 with
            Async.h;
            to_r = (let a = Array.make 2 [] in a.(0) <- to_r0; a);
            to_h = (let a = Array.make 2 [] in a.(0) <- to_h0; a);
          }
        in
        (* request pending toward the peer: rolled back *)
        let st =
          with_channels [ Wire.Req { m_name = "inv"; m_payload = [] } ] []
        in
        checks "pending -> I1" "I1" (hctl (Absmap.abs prog st));
        (* peer consumed silently: advanced to I2 *)
        let st = with_channels [] [] in
        checks "consumed -> I2" "I2" (hctl (Absmap.abs prog st));
        (* reply in flight: completes both, home at I3 *)
        let st =
          with_channels [] [ Wire.Req { m_name = "ID"; m_payload = [] } ] in
        checks "reply -> I3" "I3" (hctl (Absmap.abs prog st));
        (* crossing LR from the peer: implicit nack coming, rolled back *)
        let st =
          with_channels [] [ Wire.Req { m_name = "LR"; m_payload = [] } ]
        in
        checks "crossing -> I1" "I1" (hctl (Absmap.abs prog st));
        (* explicit nack in flight: rolled back *)
        let st = with_channels [] [ Wire.Nack ] in
        checks "nack -> I1" "I1" (hctl (Absmap.abs prog st)));
    case "abs image is contained in the reachable rendezvous states"
      (fun () ->
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        (* collect reachable rendezvous states *)
        let rv_seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let push st =
          let key = Rendezvous.encode st in
          if not (Hashtbl.mem rv_seen key) then begin
            Hashtbl.add rv_seen key ();
            Queue.push st q
          end
        in
        push (Rendezvous.initial prog);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          List.iter (fun (_, s) -> push s) (Rendezvous.successors prog st)
        done;
        (* walk the async space and check each abs state is known *)
        let seen = Hashtbl.create 64 in
        let qa = Queue.create () in
        let pusha st =
          let key = Async.encode st in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            checkb "abs reachable" true
              (Hashtbl.mem rv_seen (Rendezvous.encode (Absmap.abs prog st)));
            Queue.push st qa
          end
        in
        pusha (Async.initial prog k2);
        while not (Queue.is_empty qa) do
          let st = Queue.pop qa in
          List.iter (fun (_, s) -> pusha s) (Async.successors prog k2 st)
        done);
  ]

let suite = ("absmap", tests)
