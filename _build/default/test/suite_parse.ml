open Ccr_core
open Test_util

let migratory_src =
  {|
# The migratory protocol of paper Figures 2-3, in the concrete syntax.
system migratory

home {
  var o : rid
  var j : rid

  state F {
    recv any j ? req() goto Fg
  }
  state Fg {
    send r[j] ! gr() with o := j goto E
  }
  state E {
    recv r[o] ? LR() with o := @0, j := @0 goto F
    recv any j ? req() goto I1
  }
  state I1 {
    send r[o] ! inv() goto I2
    recv r[o] ? LR() goto I3
  }
  state I2 {
    recv r[o] ? ID() goto I3
  }
  state I3 {
    send r[j] ! gr() with o := j goto E
  }
}

remote {
  state I {
    send h ! req() goto Wg
  }
  state Wg {
    recv h ? gr() goto V
  }
  state V {
    tau evict goto Ev
    recv h ? inv() goto Iv
  }
  state Ev {
    send h ! LR() goto I
  }
  state Iv {
    send h ! ID() goto I
  }
}
|}

let rv_count sys n =
  let prog = Link.compile ~n sys in
  (explore_rv prog).states

let async_count sys n =
  let prog = Link.compile ~n sys in
  (explore_async prog).states

let pairs_of sys =
  List.map
    (fun (p : Reqrep.pair) -> (p.req, p.repl))
    (Reqrep.analyze sys).pairs
  |> List.sort compare

(* Semantic equivalence: same validation, pairs, and state spaces. *)
let assert_equivalent name a b =
  checkb (name ^ " validates") true (Result.is_ok (Validate.check b));
  checkb (name ^ " same pairs") true (pairs_of a = pairs_of b);
  checki (name ^ " same rv space") (rv_count a 2) (rv_count b 2);
  checki (name ^ " same async space") (async_count a 2) (async_count b 2)

let assert_parse_error ?at src =
  match Parse.system src with
  | exception Parse.Error { line; _ } -> (
    match at with
    | Some expected -> checki "error line" expected line
    | None -> ())
  | _ -> Alcotest.fail "expected a parse error"

let tests =
  [
    case "migratory source parses to the library protocol" (fun () ->
        let parsed = Parse.system migratory_src in
        checks "name" "migratory" parsed.Ir.sys_name;
        assert_equivalent "migratory" (Ccr_protocols.Migratory.system ())
          parsed);
    case "every registry protocol round-trips through the syntax" (fun () ->
        List.iter
          (fun (e : Ccr_protocols.Registry.t) ->
            match e.system with
            | None -> ()
            | Some sys ->
              let printed = Parse.to_string sys in
              let reparsed =
                try Parse.system printed
                with exn ->
                  Alcotest.failf "%s: %a@.%s" e.name Parse.pp_error exn
                    printed
              in
              assert_equivalent e.name sys reparsed)
          Ccr_protocols.Registry.all);
    case "comments and whitespace are ignored" (fun () ->
        let sys =
          Parse.system
            "system c // trailing\n\
             home { # comment\n\
             var x : rid\n\
             state U { recv any x ? m() goto G }\n\
             state G { send r[x] ! g() goto U } }\n\
             remote { state T { send h ! m() goto W }\n\
             state W { recv h ? g() goto T } }"
        in
        checkb "valid" true (Result.is_ok (Validate.check sys)));
    case "domains parse, including negative int bounds" (fun () ->
        let sys =
          Parse.system
            "system d home { var a : unit\n var b : bool = true\n\
             var c : int -3 .. 4 = 2\n var s : set = {}\n var r : rid = @1\n\
             state U { recv any r ? m() goto U } }\n\
             remote { state T { send h ! m() goto W }\n\
             state W { recv h ? never() goto T } }"
        in
        let home = sys.Ir.home in
        checkb "int domain" true
          (List.assoc "c" home.Ir.p_vars = Value.Dint (-3, 4));
        checkb "init" true
          (List.assoc "c" home.Ir.p_init_env = Value.Vint 2));
    case "conditions: operators and precedence" (fun () ->
        let parse_cond c =
          let src =
            Fmt.str
              "system x home { var s : set\n var t : set\n var i : rid\n\
               state U { recv any i ? m() when %s goto U } }\n\
               remote { state T { send h ! m() goto W }\n\
               state W { recv h ? never() goto T } }"
              c
          in
          let sys = Parse.system src in
          let st = List.hd sys.Ir.home.Ir.p_states in
          (List.hd st.Ir.s_guards).Ir.g_cond
        in
        checkb "and binds tighter than or" true
          (match parse_cond "empty s or empty t and i in s" with
          | Expr.Or (Expr.Set_is_empty _, Expr.And (_, _)) -> true
          | _ -> false);
        checkb "parens override" true
          (match parse_cond "(empty s or empty t) and i in s" with
          | Expr.And (Expr.Or (_, _), _) -> true
          | _ -> false);
        checkb "neq sugar" true
          (match parse_cond "s + i != t" with
          | Expr.Not (Expr.Eq (Expr.Set_add _, _)) -> true
          | _ -> false);
        checkb "parenthesized comparison" true
          (match parse_cond "(s = t)" with Expr.Eq _ -> true | _ -> false));
    case "choose, when, with clauses" (fun () ->
        let sys =
          Parse.system
            "system y home { var s : set\n var j : rid\n var i : rid\n\
             state U { recv any i ? m() with s := s + i goto G }\n\
             state G { send r[j] ! g() choose j in s when not empty s\n\
             with s := s - j goto U } }\n\
             remote { state T { send h ! m() goto W }\n\
             state W { recv h ? g() goto T } }"
        in
        let g =
          List.nth sys.Ir.home.Ir.p_states 1 |> fun st ->
          List.hd st.Ir.s_guards
        in
        checkb "choose" true (g.Ir.g_choose = [ ("j", Expr.Var "s") ]);
        checkb "cond" true
          (match g.Ir.g_cond with
          | Expr.Not (Expr.Set_is_empty _) -> true
          | _ -> false);
        checki "assigns" 1 (List.length g.Ir.g_assigns));
    case "the first state is initial" (fun () ->
        let sys =
          Parse.system
            "system z home { var i : rid state B { recv any i ? m() goto A }\n\
             state A { recv any i ? m() goto B } }\n\
             remote { state T { send h ! m() goto T } }"
        in
        checks "home init" "B" sys.Ir.home.Ir.p_init_state;
        checks "remote init" "T" sys.Ir.remote.Ir.p_init_state);
    case "errors carry positions" (fun () ->
        assert_parse_error ~at:1 "syste m";
        assert_parse_error ~at:2 "system x\nhome { var : rid }";
        assert_parse_error "system x home { state U { zap } } remote {}";
        assert_parse_error
          "system x home { state U { recv any i ? m() } } remote {}";
        (* star topology enforced at parse time *)
        assert_parse_error
          "system x home { state U { send h ! m() goto U } } remote {}";
        assert_parse_error
          "system x home { state U { recv any i ? m() goto U } }\n\
           remote { state T { send r[@0] ! m() goto T } }");
    case "self and all in expressions" (fun () ->
        let sys =
          Parse.system
            "system w home { var s : set\n var i : rid\n\
             state U { recv any i ? m() when s + i = all goto U } }\n\
             remote { state T { send h ! m() goto W }\n\
             state W { recv h ? never() goto T } }"
        in
        let g = List.hd (List.hd sys.Ir.home.Ir.p_states).Ir.s_guards in
        checkb "full set" true
          (match g.Ir.g_cond with
          | Expr.Eq (_, Expr.Full_set) -> true
          | _ -> false));
    case "parse errors from files are wrapped" (fun () ->
        checkb "missing file" true
          (match Parse.system_of_file "/nonexistent.ccr" with
          | exception Sys_error _ -> true
          | _ -> false));
    case "shipped .ccr files stay in sync with the library" (fun () ->
        let dir =
          List.find_opt Sys.file_exists
            [ "../protocols"; "../../protocols"; "protocols" ]
        in
        match dir with
        | None -> Alcotest.skip ()
        | Some dir ->
          List.iter
            (fun (e : Ccr_protocols.Registry.t) ->
              match e.system with
              | None -> ()
              | Some sys ->
                let path = Filename.concat dir (e.name ^ ".ccr") in
                if Sys.file_exists path then
                  assert_equivalent e.name sys (Parse.system_of_file path)
                else Alcotest.failf "missing shipped file %s" path)
            Ccr_protocols.Registry.all;
          (* and the file-only protocol is well-formed *)
          let rw = Parse.system_of_file (Filename.concat dir "rwlock.ccr") in
          checkb "rwlock validates" true (Result.is_ok (Validate.check rw)));
    qcase ~count:200 "the parser never fails with anything but Parse.Error"
      QCheck2.Gen.(string_size ~gen:printable (int_bound 120))
      (fun src ->
        match Parse.system src with
        | _ -> true
        | exception Parse.Error _ -> true
        | exception _ -> false);
    qcase ~count:120 "mutated migratory sources fail cleanly or parse"
      QCheck2.Gen.(pair (int_bound (String.length migratory_src - 2)) printable)
      (fun (i, c) ->
        let b = Bytes.of_string migratory_src in
        Bytes.set b i c;
        match Parse.system (Bytes.to_string b) with
        | sys -> (
          (* if it still parses it must still be a checkable system *)
          match Validate.check sys with _ -> true)
        | exception Parse.Error _ -> true
        | exception _ -> false);
  ]

let suite = ("parse", tests)
