(* Property-based testing over a generated family of star protocols.

   Each generated protocol is a set of "transactions": the remote sends
   [a_i] and eventually waits for the home's [b_i]; the home serves any
   transaction from a hub state.  Generation knobs (per transaction):
   whether the remote pauses between request and wait (breaking the
   request/reply pattern), payload arity, and whether the home takes an
   internal detour before replying.  Every instance is a valid protocol
   by construction, so the refinement pipeline must hold end to end:
   validation, exploration without protocol errors or deadlock, and the
   Eq. 1 simulation. *)

open Ccr_core
open Test_util

type txn = {
  pause : bool;  (** remote taus between send and wait *)
  arity : int;  (** 0, 1 or 2 payload values on both messages *)
  detour : bool;  (** home taus before replying *)
}

type spec = { txns : txn list; n : int; k : int; reqrep : bool }

let build_system (s : spec) : Ir.system =
  let open Dsl in
  let txn_name i = string_of_int i in
  let payload_vars arity = List.init arity (fun p -> Fmt.str "p%d" p) in
  let home =
    let vars =
      ("c", Value.Drid)
      :: List.map (fun p -> (p, Value.Drid)) (payload_vars 2)
    in
    let hub_guards =
      List.mapi
        (fun i (t : txn) ->
          recv_any "c"
            ("a" ^ txn_name i)
            (payload_vars t.arity)
            ~goto:(if t.detour then "D" ^ txn_name i else "G" ^ txn_name i))
        s.txns
    in
    let txn_states =
      List.concat
        (List.mapi
           (fun i (t : txn) ->
             let g =
               state ("G" ^ txn_name i)
                 [
                   send_to (v "c")
                     ("b" ^ txn_name i)
                     (List.map v (payload_vars t.arity))
                     ~goto:"U";
                 ]
             in
             if t.detour then
               [
                 state ("D" ^ txn_name i)
                   [ tau ("d" ^ txn_name i) ~goto:("G" ^ txn_name i) ];
                 g;
               ]
             else [ g ])
           s.txns)
    in
    process "h" ~vars ~init:"U" (state "U" hub_guards :: txn_states)
  in
  let remote =
    let vars = List.map (fun p -> (p, Value.Drid)) (payload_vars 2) in
    let pick_guards =
      List.mapi
        (fun i (_ : txn) -> tau ("pick" ^ txn_name i) ~goto:("S" ^ txn_name i))
        s.txns
    in
    let txn_states =
      List.concat
        (List.mapi
           (fun i (t : txn) ->
             let args = List.init t.arity (fun _ -> self) in
             let send =
               state ("S" ^ txn_name i)
                 [
                   send_home ("a" ^ txn_name i) args
                     ~goto:
                       (if t.pause then "P" ^ txn_name i else "W" ^ txn_name i);
                 ]
             in
             let wait =
               state ("W" ^ txn_name i)
                 [
                   recv_home ("b" ^ txn_name i) (payload_vars t.arity)
                     ~goto:"T";
                 ]
             in
             if t.pause then
               [
                 send;
                 state ("P" ^ txn_name i)
                   [ tau ("z" ^ txn_name i) ~goto:("W" ^ txn_name i) ];
                 wait;
               ]
             else [ send; wait ])
           s.txns)
    in
    process "r" ~vars ~init:"T" (state "T" pick_guards :: txn_states)
  in
  system "random" ~home ~remote

let gen_spec =
  let open QCheck2.Gen in
  let gen_txn =
    let* pause = bool in
    let* arity = int_bound 2 in
    let* detour = bool in
    return { pause; arity; detour }
  in
  let* txns = list_size (int_range 1 3) gen_txn in
  let* n = int_range 1 2 in
  let* k = int_range 2 3 in
  let* reqrep = bool in
  return { txns; n; k; reqrep }

let print_spec (s : spec) =
  Fmt.str "{n=%d k=%d reqrep=%b txns=[%s]}" s.n s.k s.reqrep
    (String.concat "; "
       (List.map
          (fun t ->
            Fmt.str "pause=%b arity=%d detour=%b" t.pause t.arity t.detour)
          s.txns))

let compile_spec (s : spec) =
  Link.compile ~reqrep:s.reqrep ~n:s.n (build_system s)

let tests =
  [
    qcase ~count:120 ~print:print_spec "generated protocols validate"
      QCheck2.Gen.(map (fun s -> s) gen_spec)
      (fun s ->
        match Validate.check (build_system s) with
        | Ok _ -> true
        | Error _ -> false);
    qcase ~count:60 ~print:print_spec "no pause means a request/reply pair" gen_spec (fun s ->
        let report = Reqrep.analyze (build_system s) in
        List.for_all
          (fun i ->
            let t = List.nth s.txns i in
            let is_pair =
              List.exists
                (fun (p : Reqrep.pair) -> p.req = "a" ^ string_of_int i)
                report.pairs
            in
            is_pair = not t.pause)
          (List.init (List.length s.txns) Fun.id));
    qcase ~count:60 ~print:print_spec "async exploration: no deadlock, no protocol error"
      gen_spec (fun s ->
        let prog = compile_spec s in
        let r = explore_async ~k:s.k ~max_states:30_000 prog in
        match r.outcome with
        | Ccr_modelcheck.Explore.Complete
        | Ccr_modelcheck.Explore.Limit Ccr_modelcheck.Explore.L_states ->
          true
        | _ -> false);
    qcase ~count:40 ~print:print_spec "Eq. 1 holds across the family" gen_spec (fun s ->
        let prog = compile_spec s in
        let v =
          Ccr_refine.Absmap.check_eq1 ~max_states:20_000 prog
            Ccr_refine.Async.{ k = s.k }
        in
        v.ok);
    qcase ~count:30 ~print:print_spec "simulation completes transactions and accounts messages"
      gen_spec (fun s ->
        let prog = compile_spec s in
        let m =
          Ccr_simulate.Sim.run ~steps:3000 prog
            Ccr_refine.Async.{ k = s.k }
            Ccr_simulate.Sched.uniform
        in
        (not m.Ccr_simulate.Sim.deadlocked)
        && m.Ccr_simulate.Sim.rendezvous > 0
        && m.Ccr_simulate.Sim.acks + m.Ccr_simulate.Sim.nacks
           <= m.Ccr_simulate.Sim.reqs);
    qcase ~count:40 ~print:print_spec
      "fire-and-forget requests keep the family deadlock-free" gen_spec
      (fun s ->
        (* mark the first transaction's request fire-and-forget (the
           hand-optimization machinery): sender moves on, home always
           admits; the reply still arrives as a plain send *)
        let sys = build_system s in
        let prog =
          Link.compile ~reqrep:s.reqrep ~fire_and_forget:[ "a0" ] ~n:s.n sys
        in
        let r = explore_async ~k:s.k ~max_states:30_000 prog in
        match r.outcome with
        | Ccr_modelcheck.Explore.Complete
        | Ccr_modelcheck.Explore.Limit Ccr_modelcheck.Explore.L_states ->
          true
        | _ -> false);
    qcase ~count:30 ~print:print_spec "abs maps into the reachable rendezvous space" gen_spec
      (fun s ->
        let prog = compile_spec s in
        (* enumerate rendezvous states (these protocols are small) *)
        let rv_seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let push st =
          let key = Ccr_semantics.Rendezvous.encode st in
          if not (Hashtbl.mem rv_seen key) then begin
            Hashtbl.add rv_seen key ();
            Queue.push st q
          end
        in
        push (Ccr_semantics.Rendezvous.initial prog);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          List.iter
            (fun (_, x) -> push x)
            (Ccr_semantics.Rendezvous.successors prog st)
        done;
        let cfg = Ccr_refine.Async.{ k = s.k } in
        let ok = ref true in
        let seen = Hashtbl.create 64 in
        let qa = Queue.create () in
        let budget = ref 10_000 in
        let pusha st =
          let key = Ccr_refine.Async.encode st in
          if (not (Hashtbl.mem seen key)) && !budget > 0 then begin
            decr budget;
            Hashtbl.add seen key ();
            if
              not
                (Hashtbl.mem rv_seen
                   (Ccr_semantics.Rendezvous.encode
                      (Ccr_refine.Absmap.abs prog st)))
            then ok := false;
            Queue.push st qa
          end
        in
        pusha (Ccr_refine.Async.initial prog cfg);
        while not (Queue.is_empty qa) do
          let st = Queue.pop qa in
          List.iter
            (fun (_, x) -> pusha x)
            (Ccr_refine.Async.successors prog cfg st)
        done;
        !ok);
  ]

let suite = ("random", tests)
